/**
 * @file
 * Device tour: simulate one qubit pair of the case-study
 * architecture end to end -- zero-ZZ bias, drive calibration,
 * trajectory generation -- and compare what each selection criterion
 * picks from the same nonstandard trajectory.
 */

#include <cstdio>

#include "core/criteria.hpp"
#include "core/selector.hpp"
#include "sim/device.hpp"
#include "sim/propagator.hpp"
#include "util/table.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

int
main()
{
    std::printf("== basis selection tour on one simulated pair ==\n\n");

    GridDeviceParams params;
    params.rows = 2;
    params.cols = 2;
    const GridDevice device{params};
    const PairDeviceParams pair = device.edgeParams(0);

    std::printf("pair: f_a = %.3f GHz, f_b = %.3f GHz, coupler "
                "g/2pi = %.0f MHz\n", pair.qubit_a.omega / kTwoPi,
                pair.qubit_b.omega / kTwoPi,
                1e3 * pair.g_ac / kTwoPi);

    const PairSimulator sim(pair, device.couplerOmegaMax());
    std::printf("zero-ZZ bias at omega_c = %.3f GHz (flux %.3f "
                "Phi0), residual %.1e rad/ns\n", sim.omegaC0() / kTwoPi,
                sim.phiDc(), sim.zzResidual());

    const double xi = 0.04;
    const double wd = sim.calibrateDriveFrequency(xi);
    std::printf("drive: xi = %.3f Phi0 at %.4f GHz\n\n", xi,
                wd / kTwoPi);

    const Trajectory traj = sim.simulateTrajectory(xi, wd, 30.0);
    std::printf("trajectory: %zu samples, max leakage %.1e\n\n",
                traj.size(), traj.maxLeakage());

    TextTable table({"criterion", "t (ns)", "coords", "ep",
                     "leakage"});
    for (SelectionCriterion crit :
         {SelectionCriterion::Criterion1,
          SelectionCriterion::Criterion2,
          SelectionCriterion::PerfectEntangler,
          SelectionCriterion::PeAndSwap3}) {
        const auto sel = selectBasisGate(traj, crit);
        if (!sel) {
            table.addRow({criterionName(crit), "-", "no crossing",
                          "-", "-"});
            continue;
        }
        table.addRow({criterionName(crit),
                      fmtFixed(sel->duration_ns, 0),
                      sel->coords.str(4),
                      fmtFixed(entanglingPower(sel->coords), 4),
                      strformat("%.1e", sel->leakage)});
    }
    table.print();

    std::printf("\nCriterion 1 picks the fastest SWAP-capable gate; "
                "Criterion 2 waits slightly longer for a 2-layer "
                "CNOT; the PE criterion fires first but may cost "
                "deeper SWAP circuits.\n");
    return 0;
}
