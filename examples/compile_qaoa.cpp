/**
 * @file
 * End-to-end compilation example: calibrate per-edge basis gates on
 * a small grid device (baseline XY gates vs nonstandard strong-drive
 * gates), compile a QAOA MaxCut circuit with SABRE + per-edge basis
 * translation, and compare the coherence-limited fidelities.
 */

#include <cstdio>

#include "apps/qaoa.hpp"
#include "core/experiment.hpp"
#include "serve/api.hpp"
#include "util/table.hpp"

using namespace qbasis;

int
main()
{
    std::printf("== compiling QAOA with heterogeneous basis gates "
                "==\n\n");
    setLogLevel(LogLevel::Warn);

    GridDeviceParams dp;
    dp.rows = 2;
    dp.cols = 3;
    const GridDevice device{dp};

    std::printf("calibrating %zu edges (baseline xi = 0.005 and "
                "nonstandard xi = 0.04)...\n",
                device.coupling().edges().size());

    DeviceCalibrationOptions copts;
    copts.max_ns = 130.0;
    const CalibratedBasisSet baseline = calibrateDevice(
        device, 0.005, SelectionCriterion::Criterion1, "baseline",
        copts);
    copts.max_ns = 30.0;
    const CalibratedBasisSet nonstandard = calibrateDevice(
        device, 0.04, SelectionCriterion::Criterion2, "criterion2",
        copts);

    TextTable edges({"edge", "baseline (ns)", "nonstandard (ns)",
                     "nonstandard coords"});
    for (size_t e = 0; e < baseline.edges.size(); ++e) {
        edges.addRow({strformat("%zu", e),
                      fmtFixed(baseline.bases[e].duration_ns, 1),
                      fmtFixed(nonstandard.bases[e].duration_ns, 1),
                      nonstandard.edges[e].gate.coords.str(3)});
    }
    edges.print();

    const Circuit qaoa = qaoaErdosRenyiCircuit(6, 0.4);
    std::printf("\nQAOA instance: %d qubits, %zu RZZ gates\n",
                qaoa.numQubits(), qaoa.count(GateKind::RZZ));

    DecompositionCache cache_b, cache_n;
    CompileRequest req(1, 0, "qaoa", qaoa);
    const CompiledCircuitResult rb =
        runCompile(device, baseline, SynthRoute::local(&cache_b), req)
            .result;
    req.request_id = 2;
    const CompiledCircuitResult rn =
        runCompile(device, nonstandard, SynthRoute::local(&cache_n),
                   req)
            .result;

    TextTable results({"basis set", "fidelity", "makespan (us)",
                       "2Q gates", "swaps"});
    results.addRow({"baseline", fmtPercent(rb.fidelity, 4),
                    fmtFixed(rb.makespan_ns / 1e3, 2),
                    strformat("%zu", rb.two_qubit_gates),
                    strformat("%zu", rb.swaps_inserted)});
    results.addRow({"criterion2", fmtPercent(rn.fidelity, 4),
                    fmtFixed(rn.makespan_ns / 1e3, 2),
                    strformat("%zu", rn.two_qubit_gates),
                    strformat("%zu", rn.swaps_inserted)});
    std::printf("\n");
    results.print();

    std::printf("\nletting each pair keep its own fast nonstandard "
                "gate shortens the schedule and raises the circuit "
                "fidelity -- the paper's headline result.\n");
    return 0;
}
