/**
 * @file
 * Quickstart: pick a basis gate from a nonstandard Cartan trajectory
 * and compile with it -- no device simulation required.
 *
 * Flow:
 *  1. build a synthetic trajectory that deviates from the XY family
 *     (an iSWAP-like drive with a growing ZZ systematic),
 *  2. select the fastest gate able to synthesize SWAP in 3 layers
 *     and CNOT in 2 layers (the paper's Criterion 2),
 *  3. synthesize SWAP and CNOT into that gate with the numerical
 *     NuOp-style engine, starting at the analytically predicted
 *     depth,
 *  4. report durations under the paper's timing model.
 */

#include <cstdio>

#include "core/criteria.hpp"
#include "core/selector.hpp"
#include "monodromy/depth.hpp"
#include "synth/numerical.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

int
main()
{
    std::printf("== qbasis quickstart ==\n\n");

    // 1. A nonstandard trajectory: tx = ty grow at 0.025 / ns, with
    //    a coherent ZZ deviation (tz) that standard compilers would
    //    reject as an error.
    Trajectory trajectory;
    for (double t = 0.0; t <= 30.0; t += 1.0) {
        TrajectoryPoint pt;
        pt.duration = t;
        const double s = 0.025 * t;
        pt.coords = canonicalize({s, s, 0.1 * s});
        pt.unitary =
            canonicalGate(pt.coords.tx, pt.coords.ty, pt.coords.tz);
        trajectory.append(std::move(pt));
    }
    std::printf("trajectory: %zu samples at 1 ns controller "
                "resolution, XY-like with a ZZ systematic\n",
                trajectory.size());

    // 2. Criterion 2 selection.
    const auto selected = selectBasisGate(
        trajectory, SelectionCriterion::Criterion2);
    if (!selected) {
        std::printf("no usable basis gate on this trajectory\n");
        return 1;
    }
    std::printf("selected basis gate: t = %.0f ns, coords %s, "
                "entangling power %.4f\n",
                selected->duration_ns,
                selected->coords.str(4).c_str(),
                entanglingPower(selected->coords));
    std::printf("(continuous entry-face crossing at %.2f ns)\n\n",
                selected->continuous_crossing_ns);

    // 3. Synthesize SWAP and CNOT into the selected gate.
    const SynthOptions opts;
    std::printf("analytic depth prediction: SWAP needs %d layers, "
                "CNOT needs %d layers\n",
                predictSwapDepth(selected->coords),
                predictCnotDepth(selected->gate));

    const TwoQubitDecomposition swap_dec =
        synthesizeGate(swapGate(), selected->gate, opts);
    const TwoQubitDecomposition cnot_dec =
        synthesizeGate(cnotGate(), selected->gate, opts);

    // 4. Durations: n layers of the basis gate + (n+1) 1Q layers.
    const double t1q = 20.0;
    std::printf("\nSWAP: %d layers, infidelity %.1e, duration %.1f "
                "ns\n", swap_dec.layers(), swap_dec.infidelity,
                swap_dec.duration(selected->duration_ns, t1q));
    std::printf("CNOT: %d layers, infidelity %.1e, duration %.1f "
                "ns\n", cnot_dec.layers(), cnot_dec.infidelity,
                cnot_dec.duration(selected->duration_ns, t1q));

    std::printf("\nlocal gates of the SWAP decomposition "
                "(Fig. 3(d) form):\n");
    for (int j = 0; j <= swap_dec.layers(); ++j) {
        std::printf("  K%d:\n%s", j,
                    swap_dec.locals[j].q1.str(3).c_str());
    }
    return 0;
}
