/**
 * @file
 * Calibration-cycle example (paper Section VI): run the initial
 * tuneup with simulated QPT + GST on one pair, then a daily retune
 * after parameter drift, and show the decomposition cache being
 * rebuilt once per cycle.
 */

#include <cstdio>

#include "calib/drift.hpp"
#include "calib/protocol.hpp"
#include "core/criteria.hpp"
#include "sim/device.hpp"
#include "synth/cache.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

int
main()
{
    std::printf("== one calibration cycle on one pair ==\n\n");
    setLogLevel(LogLevel::Warn);

    GridDeviceParams dp;
    dp.rows = 2;
    dp.cols = 2;
    const GridDevice device{dp};
    const PairDeviceParams pair = device.edgeParams(0);
    const PairSimulator sim(pair, device.couplerOmegaMax());

    Rng rng(99);
    TuneupOptions opts;
    opts.xi = 0.04;
    opts.max_ns = 25.0;
    opts.qpt.shots = 1500;
    opts.qpt.spam_error = 0.02;

    std::printf("[initial tuneup]\n");
    const TuneupResult tuneup = initialTuneup(
        sim, criterionPredicate(SelectionCriterion::Criterion1),
        opts, rng);
    if (!tuneup.success) {
        std::printf("tuneup failed\n");
        return 1;
    }
    std::printf("  QPT candidates: %zu; chosen %.0f ns gate at %s\n",
                tuneup.candidates.size(), tuneup.duration_ns,
                cartanCoords(tuneup.gate).str(4).c_str());

    std::printf("\n[per-cycle decomposition cache]\n");
    DecompositionCache cache;
    const SynthOptions synth;
    const auto &swap_dec =
        cache.getOrSynthesize(0, swapGate(), tuneup.gate, synth);
    const auto &cnot_dec =
        cache.getOrSynthesize(0, cnotGate(), tuneup.gate, synth);
    std::printf("  SWAP: %d layers (infidelity %.1e); CNOT: %d "
                "layers (infidelity %.1e)\n", swap_dec.layers(),
                swap_dec.infidelity, cnot_dec.layers(),
                cnot_dec.infidelity);
    std::printf("  cache holds %zu entries for this cycle\n",
                cache.size());

    std::printf("\n[next day: drift + retune]\n");
    DriftModel drift;
    const PairDeviceParams drifted =
        driftParams(pair, drift, rng);
    const PairSimulator day2(drifted, device.couplerOmegaMax());
    const RetuneResult r = retune(day2, tuneup, opts.gst, rng);
    if (!r.success) {
        std::printf("  retune failed: %s\n", r.error.c_str());
        return 1;
    }
    std::printf("  drive refreshed to %.4f GHz; gate moved by "
                "%.2e (trace infidelity)\n", r.omega_d / kTwoPi,
                r.gate_shift);

    // The cache is rebuilt against the refreshed gate.
    cache.clear();
    const auto &swap2 =
        cache.getOrSynthesize(0, swapGate(), r.gate, synth);
    std::printf("  new cycle cache: SWAP again %d layers "
                "(infidelity %.1e)\n", swap2.layers(),
                swap2.infidelity);
    return 0;
}
