/**
 * @file
 * Weyl-chamber explorer: inspect any two-qubit gate class from the
 * command line.
 *
 * Usage:
 *   weyl_explorer                 # tour of the named gates
 *   weyl_explorer tx ty tz        # inspect CAN(tx, ty, tz)
 *
 * For each gate it prints the canonical coordinates, Makhlin
 * invariants, entangling power, perfect-entangler status, the
 * SWAP-mirror partner, and the decomposition-power facts of
 * Section V (SWAP in 1/2/3 layers, CNOT in 2 layers, predicted
 * depths).
 */

#include <cstdio>
#include <cstdlib>

#include "monodromy/depth.hpp"
#include "monodromy/mirror.hpp"
#include "monodromy/regions.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

using namespace qbasis;

namespace {

void
inspect(const char *name, const CartanCoords &raw)
{
    const CartanCoords c = canonicalize(raw);
    const MakhlinInvariants inv = invariantsFromCoords(c);
    std::printf("%s\n", name);
    std::printf("  canonical coords : %s\n", c.str(4).c_str());
    std::printf("  Makhlin invariants: g1 = %+.4f%+.4fi, g2 = %+.4f\n",
                inv.g1.real(), inv.g1.imag(), inv.g2);
    std::printf("  entangling power : %.4f (max 2/9 = %.4f)\n",
                entanglingPower(c), 2.0 / 9.0);
    std::printf("  perfect entangler: %s\n",
                isPerfectEntangler(c) ? "yes" : "no");
    std::printf("  SWAP mirror      : %s%s\n",
                swapMirror(c).str(4).c_str(),
                isSwapMirrorFixedPoint(c)
                    ? "  (self-mirror: SWAP in 2 layers)"
                    : "");
    std::printf("  SWAP in <=3 layers: %s   CNOT in <=2 layers: %s\n",
                canSynthesizeSwapIn3Layers(c) ? "yes" : "no",
                canSynthesizeCnotIn2Layers(c) ? "yes" : "no");
    const Mat4 g = canonicalGate(c.tx, c.ty, c.tz);
    std::printf("  predicted depths : SWAP %d, CNOT %d\n\n",
                predictSwapDepth(c), predictCnotDepth(g));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 4) {
        const CartanCoords c{std::atof(argv[1]), std::atof(argv[2]),
                             std::atof(argv[3])};
        inspect("CAN(custom)", c);
        return 0;
    }

    std::printf("== Weyl chamber tour (pass 'tx ty tz' to inspect "
                "your own point) ==\n\n");
    inspect("CNOT / CZ", coords::cnot());
    inspect("iSWAP", coords::iswap());
    inspect("SWAP", coords::swap());
    inspect("sqrt(iSWAP)", coords::sqrtIswap());
    inspect("sqrt(SWAP)", coords::sqrtSwap());
    inspect("B gate", coords::bGate());
    inspect("a nonstandard strong-drive gate", {0.25, 0.25, 0.03});
    return 0;
}
