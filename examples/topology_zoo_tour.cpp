/**
 * @file
 * Topology + workload-zoo tour: the lattices and circuit families
 * behind bench_scale, without any device simulation.
 *
 * Flow:
 *  1. walk the heavy-hex lattice sizes bench_scale drives (7 to 115
 *     qubits) and print the qubit/edge counts and degree bound,
 *  2. print the registered workload zoo (apps/workloads.hpp),
 *  3. route a full-width trotterized Ising chain onto the 115-qubit
 *     heavy-hex lattice with SABRE and report the swap overhead --
 *     the routing half of what bench_scale then compiles.
 */

#include <algorithm>
#include <cstdio>

#include "apps/workloads.hpp"
#include "circuit/coupling.hpp"
#include "transpile/layout.hpp"
#include "transpile/routing.hpp"

using namespace qbasis;

int
main()
{
    std::printf("== topology + workload zoo tour ==\n\n");

    // 1. The heavy-hex ladder bench_scale climbs.
    std::printf("heavy-hex lattices (degree <= 3 everywhere):\n");
    for (const auto [rows, cols] :
         {std::pair{1, 1}, {2, 2}, {2, 4}, {3, 6}, {4, 9}}) {
        const CouplingMap cm = CouplingMap::heavyHex(rows, cols);
        size_t max_degree = 0;
        for (int q = 0; q < cm.numQubits(); ++q)
            max_degree = std::max(max_degree, cm.neighbors(q).size());
        std::printf("  hh(%d,%d): %3d qubits, %3zu edges, "
                    "max degree %zu, connected %s\n",
                    rows, cols, cm.numQubits(), cm.edges().size(),
                    max_degree, cm.isConnected() ? "yes" : "no");
    }

    // 2. The registered workload zoo.
    std::printf("\nworkload zoo (apps/workloads.hpp):\n");
    for (const WorkloadInfo &info : workloadZoo()) {
        WorkloadParams p;
        p.qubits = 8;
        const Circuit c = info.make(p);
        std::printf("  %-12s [%-10s] %d qubits, %zu gates "
                    "(%zu two-qubit): %s\n",
                    info.name.c_str(), info.family.c_str(),
                    c.numQubits(), c.gates().size(),
                    c.countTwoQubit(), info.description.c_str());
    }

    // 3. Route a lattice-wide Ising chain on the 115-qubit lattice.
    const CouplingMap cm = CouplingMap::heavyHex(4, 9);
    WorkloadParams wp;
    wp.qubits = cm.numQubits();
    const Circuit logical = trotterIsingCircuit(wp);
    const std::vector<int> layout = sabreLayout(logical, cm, 1);
    const RoutedCircuit routed = sabreRoute(logical, cm, layout);
    for (const Gate &g : routed.circuit.gates()) {
        if (g.qubits.size() == 2 &&
            !cm.connected(g.qubits[0], g.qubits[1])) {
            std::printf("uncoupled 2Q op after routing -- bug\n");
            return 1;
        }
    }
    std::printf("\nising%d on hh(4,9): %zu logical 2Q gates routed "
                "with %zu swaps (%.2f swaps per 2Q gate), every 2Q "
                "op on a coupled pair\n",
                cm.numQubits(), logical.countTwoQubit(),
                routed.swaps_inserted,
                static_cast<double>(routed.swaps_inserted) /
                    static_cast<double>(logical.countTwoQubit()));
    std::printf("\nbench_scale compiles exactly these circuits on "
                "per-edge drifted calibrations -- see "
                "docs/workloads.md and docs/benchmarks.md.\n");
    return 0;
}
