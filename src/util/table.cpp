#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace qbasis {

const char *const TextTable::kSeparator = "\x01--sep--";

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        panic("TextTable row arity %zu != header arity %zu",
              row.size(), headers_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparator});
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparator)
            continue;
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string s = "+";
        for (size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            s += " " + cells[c]
                 + std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return s + "\n";
    };

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    out << rule() << line(headers_) << rule();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparator)
            out << rule();
        else
            out << line(row);
    }
    out << rule();
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
fmtFixed(double x, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
    return buf;
}

std::string
fmtPercent(double frac, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g%%", precision, frac * 100.0);
    return buf;
}

void
writeCsv(const std::string &path,
         const std::vector<std::string> &header,
         const std::vector<std::vector<double>> &rows)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open CSV output file '%s'", path.c_str());
    for (size_t i = 0; i < header.size(); ++i)
        out << header[i] << (i + 1 < header.size() ? "," : "\n");
    out.precision(12);
    for (const auto &row : rows) {
        for (size_t i = 0; i < row.size(); ++i)
            out << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
}

} // namespace qbasis
