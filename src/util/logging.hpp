#ifndef QBASIS_UTIL_LOGGING_HPP
#define QBASIS_UTIL_LOGGING_HPP

/**
 * @file
 * Status-message helpers in the spirit of gem5's logging.hh.
 *
 * `fatal()` is for user-caused conditions the program cannot recover
 * from (bad configuration, impossible requests); `panic()` is for
 * conditions that indicate a bug in qbasis itself. `warn()`/`inform()`
 * never stop execution.
 */

#include <cstdarg>
#include <cstdint>
#include <string>

namespace qbasis {

/**
 * Small sequential id of the calling thread (first caller gets 0).
 * Stable for the thread's lifetime; stamped onto every log line and
 * reused as the `tid` of trace exports (obs/trace.hpp) so log output
 * and Perfetto tracks attribute to the same thread numbers.
 */
uint32_t threadLogId();

/** Monotonic milliseconds since the first logging/trace call in this
 *  process -- the timestamp prefixed to every log line. */
double logElapsedMs();

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity; defaults to Inform. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Print an informational message (printf formatting). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about questionable-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug trace message (only at LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable, user-caused error and throw.
 *
 * Throws std::runtime_error so tests can assert on failure paths
 * instead of killing the process.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation (a qbasis bug) and throw. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace qbasis

#endif // QBASIS_UTIL_LOGGING_HPP
