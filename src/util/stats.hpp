#ifndef QBASIS_UTIL_STATS_HPP
#define QBASIS_UTIL_STATS_HPP

/**
 * @file
 * Small summary-statistics helpers used by benches and reports.
 */

#include <cstddef>
#include <vector>

namespace qbasis {

/** Running mean/min/max/stddev accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample standard deviation (0 for n < 2). */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &v);

/** Unbiased standard deviation of a vector (0 for n < 2). */
double stddev(const std::vector<double> &v);

/** Median (by copy-and-sort; 0 when empty). */
double median(std::vector<double> v);

} // namespace qbasis

#endif // QBASIS_UTIL_STATS_HPP
