#ifndef QBASIS_UTIL_STATS_HPP
#define QBASIS_UTIL_STATS_HPP

/**
 * @file
 * Small summary-statistics helpers used by benches and reports.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qbasis {

/** Running mean/min/max/stddev accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample standard deviation (0 for n < 2). */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &v);

/** Unbiased standard deviation of a vector (0 for n < 2). */
double stddev(const std::vector<double> &v);

/** Median (by copy-and-sort; 0 when empty). */
double median(std::vector<double> v);

/**
 * Quantile of an already-sorted vector using the nearest-index rule
 * `v[round(p * (n - 1))]` (0 when empty). This is the definition
 * bench_serve has always reported; keep them in sync.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

// ---------------------------------------------------------------------------
// Log-bucketed histogram math (the value side of obs/metrics.hpp's
// atomic histograms; plain and copyable so it is unit-testable).
// ---------------------------------------------------------------------------

/** Bucket count: one bucket for 0, one per power of two up to 2^63. */
constexpr int kLogHistogramBuckets = 65;

/** Bucket index of a value: 0 holds exactly {0}; bucket b >= 1 holds
 *  [2^(b-1), 2^b - 1]. */
int logBucketIndex(uint64_t value);

/** Smallest value bucket `b` can hold. */
uint64_t logBucketLowerBound(int b);

/** Largest value bucket `b` can hold. */
uint64_t logBucketUpperBound(int b);

/**
 * Power-of-two-bucketed histogram of non-negative integer samples
 * (latencies in us, batch sizes, queue depths). Percentiles resolve
 * to the containing bucket, so they are exact to within one bucket
 * width -- a factor-of-two bound at any scale.
 */
class LogHistogram
{
  public:
    /** Add one sample. */
    void record(uint64_t value);

    /** Merge `n` pre-counted samples into bucket `b` (snapshotting
     *  atomic histograms; see obs/metrics.hpp). */
    void accumulateBucket(int b, uint64_t n);

    /** Add to the running sample sum (paired with accumulateBucket). */
    void accumulateSum(uint64_t s) { sum_ += s; }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }

    /** Mean sample (0 when empty). */
    double mean() const;

    /** Samples recorded into bucket `b`. */
    uint64_t bucketCount(int b) const;

    /**
     * Bucket holding the nearest-rank p-quantile (p in [0, 1]), or
     * -1 when empty. The exact quantile lies in
     * [logBucketLowerBound(b), logBucketUpperBound(b)].
     */
    int percentileBucket(double p) const;

    /** Upper bound of percentileBucket(p) (0 when empty). */
    uint64_t percentile(double p) const;

  private:
    std::array<uint64_t, kLogHistogramBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
};

} // namespace qbasis

#endif // QBASIS_UTIL_STATS_HPP
