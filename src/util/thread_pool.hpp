#ifndef QBASIS_UTIL_THREAD_POOL_HPP
#define QBASIS_UTIL_THREAD_POOL_HPP

/**
 * @file
 * Work-stealing thread pool for the synthesis engine.
 *
 * Each worker owns a deque of tasks: it pops work from the front of
 * its own deque and, when empty, steals from the back of a sibling's
 * deque (classic Chase-Lev shape, implemented with per-deque locks --
 * task bodies here run for milliseconds, so queue contention is
 * negligible and correctness stays obvious). External threads submit
 * round-robin across workers; worker threads submit to their own
 * deque for locality.
 *
 * Tasks may themselves submit further tasks (the synthesis engine's
 * depth waves do), so workers never block waiting on other tasks;
 * completion signalling is the caller's responsibility (see
 * SynthEngine) or use parallelFor() for the simple fork-join case.
 *
 * Two priority lanes: every worker owns a Normal and a Background
 * deque, and both the local pop and the steal scan exhaust Normal
 * work pool-wide before touching a Background task. Background is
 * for work that must not starve the serving path -- recalibration
 * pipelines submit there so compile-path synthesis restarts always
 * win a free worker first. A Background task that is already running
 * is never preempted; the lane only biases dequeue order, so overall
 * throughput (and determinism) is unchanged.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qbasis {

/** Dequeue lane of a submitted task. */
enum class TaskPriority
{
    Normal,     ///< Serving path (default); always dequeued first.
    Background, ///< Maintenance work (recalibration pipelines);
                ///< runs only when no Normal task is pending.
};

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers; 0 means hardwareThreads().
     * The pool is non-copyable and joins all workers on destruction.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Safe to call from worker threads. */
    void submit(std::function<void()> task,
                TaskPriority priority = TaskPriority::Normal);

    /**
     * Run fn(i) for i in [0, n) across the pool and block until all
     * are done. Exceptions thrown by tasks are captured and the one
     * with the smallest index is rethrown on the caller (results for
     * other indices are still completed first).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** Number of worker threads. */
    int size() const { return static_cast<int>(threads_.size()); }

    /** Detected hardware concurrency (at least 1). */
    static int hardwareThreads();

  private:
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::deque<std::function<void()>> background;
        std::mutex mutex;
    };

    void workerLoop(size_t self);
    bool tryRun(size_t self);
    bool tryRunLane(size_t self, bool background);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> submit_counter_{0};
};

} // namespace qbasis

#endif // QBASIS_UTIL_THREAD_POOL_HPP
