#ifndef QBASIS_UTIL_FAULT_HPP
#define QBASIS_UTIL_FAULT_HPP

/**
 * @file
 * Deterministic fault injection.
 *
 * Every recoverable failure domain in the system (a recalibration
 * stage, a synthesis restart, a snapshot load) hosts a named probe:
 *
 *     faultPoint(kFaultRecalibSimulate, edge_key);
 *
 * When injection is disabled (the default) a probe is a single relaxed
 * atomic load — it never perturbs timing, numerics, or output, so
 * fault-free runs are byte-identical to a build without probes.
 *
 * When a FaultPlan is armed, a probe's fire/no-fire decision is a pure
 * function of (plan seed, site name, probe key, per-(site,key)
 * invocation index). Logical identity — not thread identity or wall
 * clock — keys the decision, so a faulted run replays bit-identically:
 * the k-th attempt at a given (site, key) fires in every run or in
 * none, regardless of scheduling. A firing probe throws FaultInjected,
 * which then exercises the same unwind paths a real failure would.
 *
 * Sites self-register at static-initialization time through the
 * FaultSite constructor, so tests can sweep every registered site
 * without maintaining a parallel list.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qbasis {

/** Thrown by a firing probe; carries the site and key for reporting. */
class FaultInjected : public std::runtime_error
{
  public:
    FaultInjected(const std::string &site, uint64_t key,
                  uint64_t invocation);

    const std::string &site() const { return site_; }
    uint64_t key() const { return key_; }
    /** Zero-based invocation index at which the probe fired. */
    uint64_t invocation() const { return invocation_; }

  private:
    std::string site_;
    uint64_t key_ = 0;
    uint64_t invocation_ = 0;
};

/**
 * A named probe location. Define one per failure domain at namespace
 * scope; the constructor registers the name in the global site
 * registry (duplicate names are rejected with panic()).
 */
class FaultSite
{
  public:
    explicit FaultSite(const char *name);

    FaultSite(const FaultSite &) = delete;
    FaultSite &operator=(const FaultSite &) = delete;

    const char *name() const { return name_; }
    /** Precomputed FNV-1a hash of the site name. */
    uint64_t nameHash() const { return name_hash_; }

  private:
    const char *name_;
    uint64_t name_hash_;
};

/** Configuration for one armed injection campaign. */
struct FaultPlan
{
    /** Base seed; the sole source of randomness for fire decisions. */
    uint64_t seed = 0;

    /** Per-invocation fire probability in [0, 1]. */
    double probability = 0.0;

    /**
     * When non-empty, only the site with this exact name fires;
     * probes at other sites count invocations but never fire.
     */
    std::string site_filter;

    /**
     * When non-zero, at most this many probes fire campaign-wide.
     * Deterministic only when the probes it gates are totally ordered
     * (e.g. a single-threaded engine); sweeping tests use it to inject
     * exactly one fault.
     */
    uint64_t max_fires = 0;
};

/** Counters accumulated since the last configure()/disable(). */
struct FaultStats
{
    uint64_t probes = 0; ///< Probe invocations while armed.
    uint64_t fired = 0;  ///< Probes that threw FaultInjected.
};

/** Arm fault injection with the given plan; resets all counters. */
void configureFaults(const FaultPlan &plan);

/** Disarm fault injection; probes return to the single-load fast path. */
void disableFaults();

/** True when a plan is armed. */
bool faultsEnabled();

/** Counters for the current (or most recent) campaign. */
FaultStats faultStats();

/** Names of every registered site, sorted (stable across runs). */
std::vector<std::string> registeredFaultSites();

/**
 * The probe. No-op unless a plan is armed and the decision function
 * fires for this (site, key, invocation); then throws FaultInjected.
 *
 * `key` must encode the *logical* identity of the protected work item
 * (an edge id, a synthesis-class hash) so the invocation index is
 * stable across thread interleavings.
 */
void faultPoint(const FaultSite &site, uint64_t key);

} // namespace qbasis

#endif // QBASIS_UTIL_FAULT_HPP
