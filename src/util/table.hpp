#ifndef QBASIS_UTIL_TABLE_HPP
#define QBASIS_UTIL_TABLE_HPP

/**
 * @file
 * Plain-text table rendering for the paper-style bench reports.
 */

#include <string>
#include <vector>

namespace qbasis {

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set a title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Append a data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    // A row with exactly one element equal to kSeparator renders as a
    // horizontal rule.
    std::vector<std::vector<std::string>> rows_;

    static const char *const kSeparator;
};

/** Format a double with the given precision (fixed notation). */
std::string fmtFixed(double x, int precision);

/** Format a fraction as a percentage string, e.g. 0.123 -> "12.3%". */
std::string fmtPercent(double frac, int precision = 3);

/** Write rows of doubles as CSV (with header) to the given path. */
void writeCsv(const std::string &path,
              const std::vector<std::string> &header,
              const std::vector<std::vector<double>> &rows);

} // namespace qbasis

#endif // QBASIS_UTIL_TABLE_HPP
