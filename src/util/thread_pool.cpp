#include "util/thread_pool.hpp"

#include <chrono>
#include <exception>
#include <string>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace qbasis {

namespace {

/** Worker index of the current thread, or SIZE_MAX off-pool. */
thread_local size_t tls_worker_index = SIZE_MAX;
/** Pool owning the current worker thread. */
thread_local const void *tls_worker_pool = nullptr;

} // namespace

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        fatal("ThreadPool: negative thread count %d", threads);
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] {
            setTraceThreadName("pool-worker-" + std::to_string(i));
            workerLoop(static_cast<size_t>(i));
        });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true);
    sleep_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task, TaskPriority priority)
{
    size_t slot;
    if (tls_worker_pool == this) {
        // Worker threads push to their own deque for locality.
        slot = tls_worker_index;
    } else {
        slot = submit_counter_.fetch_add(1) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
        if (priority == TaskPriority::Background)
            workers_[slot]->background.push_back(std::move(task));
        else
            workers_[slot]->tasks.push_back(std::move(task));
    }
    // Serialize against the worker's empty-rescan before notifying:
    // without this a push landing between a worker's rescan and its
    // wait() would have its notification dropped, stalling the task
    // for a full wait_for timeout.
    { std::lock_guard<std::mutex> lock(sleep_mutex_); }
    sleep_cv_.notify_one();
}

bool
ThreadPool::tryRunLane(size_t self, bool background)
{
    std::function<void()> task;
    {
        // Own deque first (front; most recently local-submitted work
        // stays hot at the back for thieves).
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        auto &lane = background ? w.background : w.tasks;
        if (!lane.empty()) {
            task = std::move(lane.front());
            lane.pop_front();
        }
    }
    if (!task) {
        // Steal from the back of a sibling deque.
        const size_t n = workers_.size();
        for (size_t k = 1; k < n && !task; ++k) {
            Worker &v = *workers_[(self + k) % n];
            std::lock_guard<std::mutex> lock(v.mutex);
            auto &lane = background ? v.background : v.tasks;
            if (!lane.empty()) {
                task = std::move(lane.back());
                lane.pop_back();
            }
        }
    }
    if (!task)
        return false;
    task();
    return true;
}

bool
ThreadPool::tryRun(size_t self)
{
    // Exhaust the Normal lane pool-wide before taking a Background
    // task: recalibration work never outcompetes the serving path
    // for a free worker.
    return tryRunLane(self, /*background=*/false)
           || tryRunLane(self, /*background=*/true);
}

void
ThreadPool::workerLoop(size_t self)
{
    tls_worker_index = self;
    tls_worker_pool = this;
    for (;;) {
        if (tryRun(self))
            continue;
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stop_.load())
            break;
        // Re-check for work while holding the sleep lock; submit()
        // touches the sleep lock after pushing, so any push landing
        // after this rescan notifies once we are in wait_for below.
        bool any = false;
        for (const auto &w : workers_) {
            std::lock_guard<std::mutex> wl(w->mutex);
            if (!w->tasks.empty() || !w->background.empty()) {
                any = true;
                break;
            }
        }
        if (any)
            continue;
        sleep_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
    tls_worker_pool = nullptr;
    tls_worker_index = SIZE_MAX;
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    struct State
    {
        std::atomic<size_t> remaining;
        std::mutex mutex;
        std::condition_variable done;
        std::vector<std::exception_ptr> errors;
    };
    auto state = std::make_shared<State>();
    state->remaining.store(n);
    state->errors.resize(n);

    for (size_t i = 0; i < n; ++i) {
        submit([state, i, &fn] {
            try {
                fn(i);
            } catch (...) {
                state->errors[i] = std::current_exception();
            }
            if (state->remaining.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done.notify_all();
            }
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] { return state->remaining.load() == 0; });
    for (size_t i = 0; i < n; ++i) {
        if (state->errors[i])
            std::rethrow_exception(state->errors[i]);
    }
}

} // namespace qbasis
