#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qbasis {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
mean(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.mean();
}

double
stddev(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.stddev();
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

int
logBucketIndex(uint64_t value)
{
    int b = 0;
    while (value != 0) {
        ++b;
        value >>= 1;
    }
    return b;
}

uint64_t
logBucketLowerBound(int b)
{
    if (b <= 0)
        return 0;
    return uint64_t{1} << (b - 1);
}

uint64_t
logBucketUpperBound(int b)
{
    if (b <= 0)
        return 0;
    if (b >= 64)
        return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
}

void
LogHistogram::record(uint64_t value)
{
    ++buckets_[static_cast<size_t>(logBucketIndex(value))];
    ++count_;
    sum_ += value;
}

void
LogHistogram::accumulateBucket(int b, uint64_t n)
{
    if (b < 0 || b >= kLogHistogramBuckets)
        return;
    buckets_[static_cast<size_t>(b)] += n;
    count_ += n;
}

double
LogHistogram::mean() const
{
    return count_ > 0 ? static_cast<double>(sum_)
                            / static_cast<double>(count_)
                      : 0.0;
}

uint64_t
LogHistogram::bucketCount(int b) const
{
    if (b < 0 || b >= kLogHistogramBuckets)
        return 0;
    return buckets_[static_cast<size_t>(b)];
}

int
LogHistogram::percentileBucket(double p) const
{
    if (count_ == 0)
        return -1;
    p = std::min(1.0, std::max(0.0, p));
    // Nearest-rank: the smallest bucket whose cumulative count
    // reaches ceil(p * count) (rank 1 for p == 0).
    const double exact = p * static_cast<double>(count_);
    uint64_t rank = static_cast<uint64_t>(std::ceil(exact));
    if (rank == 0)
        rank = 1;
    uint64_t cum = 0;
    for (int b = 0; b < kLogHistogramBuckets; ++b) {
        cum += buckets_[static_cast<size_t>(b)];
        if (cum >= rank)
            return b;
    }
    return kLogHistogramBuckets - 1;
}

uint64_t
LogHistogram::percentile(double p) const
{
    const int b = percentileBucket(p);
    return b < 0 ? 0 : logBucketUpperBound(b);
}

} // namespace qbasis
