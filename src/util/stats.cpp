#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qbasis {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
mean(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.mean();
}

double
stddev(const std::vector<double> &v)
{
    RunningStats s;
    for (double x : v)
        s.add(x);
    return s.stddev();
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace qbasis
