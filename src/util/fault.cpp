#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <sstream>

#include "util/fnv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {
namespace {

/**
 * Global injector state. The armed flag lives in a lone atomic so the
 * disabled fast path costs one relaxed load; everything else sits
 * behind a mutex taken only while a plan is armed (fault campaigns are
 * test/bench-only, so the lock is not on any production hot path).
 */
struct Injector
{
    std::atomic<bool> armed{false};
    std::mutex mu;
    FaultPlan plan;
    FaultStats stats;
    /** Invocation counters keyed by (site hash, probe key). */
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> invocations;
};

Injector &
injector()
{
    static Injector inj;
    return inj;
}

/** Registry of site names; populated by FaultSite constructors. */
struct SiteRegistry
{
    std::mutex mu;
    std::vector<const char *> names;
};

SiteRegistry &
siteRegistry()
{
    static SiteRegistry reg;
    return reg;
}

uint64_t
hashName(const char *name)
{
    Fnv64 f;
    f.mixString(name);
    return f.h;
}

} // namespace

FaultInjected::FaultInjected(const std::string &site, uint64_t key,
                             uint64_t invocation)
    : std::runtime_error([&] {
          std::ostringstream os;
          os << "fault injected at " << site << " (key=" << key
             << ", invocation=" << invocation << ")";
          return os.str();
      }()),
      site_(site), key_(key), invocation_(invocation)
{
}

FaultSite::FaultSite(const char *name)
    : name_(name), name_hash_(hashName(name))
{
    SiteRegistry &reg = siteRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const char *existing : reg.names)
        if (std::string(existing) == name)
            panic("duplicate fault site: %s", name);
    reg.names.push_back(name);
}

void
configureFaults(const FaultPlan &plan)
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mu);
    inj.plan = plan;
    inj.stats = FaultStats{};
    inj.invocations.clear();
    inj.armed.store(true, std::memory_order_release);
}

void
disableFaults()
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mu);
    inj.armed.store(false, std::memory_order_release);
}

bool
faultsEnabled()
{
    return injector().armed.load(std::memory_order_acquire);
}

FaultStats
faultStats()
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.mu);
    return inj.stats;
}

std::vector<std::string>
registeredFaultSites()
{
    SiteRegistry &reg = siteRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::vector<std::string> names(reg.names.begin(), reg.names.end());
    std::sort(names.begin(), names.end());
    return names;
}

void
faultPoint(const FaultSite &site, uint64_t key)
{
    Injector &inj = injector();
    if (!inj.armed.load(std::memory_order_acquire))
        return;

    uint64_t invocation = 0;
    {
        std::lock_guard<std::mutex> lock(inj.mu);
        if (!inj.armed.load(std::memory_order_relaxed))
            return;
        ++inj.stats.probes;
        invocation = inj.invocations[{site.nameHash(), key}]++;

        if (!inj.plan.site_filter.empty() &&
            inj.plan.site_filter != site.name())
            return;
        if (inj.plan.max_fires != 0 &&
            inj.stats.fired >= inj.plan.max_fires)
            return;

        // Pure function of (seed, site, key, invocation): chain the
        // splitmix64 finalizer, then map the top 53 bits to [0, 1).
        const uint64_t h = Rng::deriveSeed(
            Rng::deriveSeed(Rng::deriveSeed(inj.plan.seed,
                                            site.nameHash()),
                            key),
            invocation);
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        if (u >= inj.plan.probability)
            return;
        ++inj.stats.fired;
    }
    throw FaultInjected(site.name(), key, invocation);
}

} // namespace qbasis
