#ifndef QBASIS_UTIL_FNV_HPP
#define QBASIS_UTIL_FNV_HPP

/**
 * @file
 * FNV-1a 64-bit mixing, shared by every report digest.
 *
 * The determinism contracts (fleet sharding, persistence, the
 * simd-determinism CI matrix) compare digests produced in different
 * processes and across builds, so every producer must use the exact
 * same mixing. This is the single definition; do not hand-roll the
 * constants at call sites.
 */

#include <cstdint>
#include <cstring>
#include <string>

namespace qbasis {

/** Incremental FNV-1a 64-bit hasher. */
struct Fnv64
{
    uint64_t h = 1469598103934665603ull;

    /** Mix one byte. */
    void
    mixByte(uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    /** Mix a u64 little-endian byte by byte (endianness-stable). */
    void
    mix(uint64_t v)
    {
        for (int byte = 0; byte < 8; ++byte)
            mixByte(static_cast<uint8_t>((v >> (8 * byte)) & 0xffull));
    }

    /** Mix a double's bit pattern. */
    void
    mixDouble(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    /** Mix a string's bytes (no length separator; callers needing
     *  unambiguous field boundaries should mix the size first). */
    void
    mixString(const std::string &s)
    {
        for (const char c : s)
            mixByte(static_cast<uint8_t>(c));
    }
};

} // namespace qbasis

#endif // QBASIS_UTIL_FNV_HPP
