#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace qbasis {

namespace {

LogLevel g_level = LogLevel::Inform;

std::chrono::steady_clock::time_point
logEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

/**
 * Every line carries a monotonic [seconds.ms] timestamp and the
 * caller's small thread id so interleaved shard/dispatcher output
 * stays attributable. Level gating happens in the callers, so
 * LogLevel::Silent keeps the stream truly silent.
 */
void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "[%11.3f] [T%02u] %s%s\n",
                 logElapsedMs() / 1000.0, threadLogId(), prefix,
                 msg.c_str());
}

} // namespace

uint32_t
threadLogId()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

double
logElapsedMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - logEpoch())
        .count();
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info: ", vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn: ", vformat(fmt, ap));
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug: ", vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("fatal: ", msg);
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("panic: ", msg);
    throw std::logic_error("panic: " + msg);
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace qbasis
