#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    has_spare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::split()
{
    return Rng(next());
}

uint64_t
Rng::deriveSeed(uint64_t base, uint64_t stream)
{
    // Mix the stream index into the base with one golden-ratio step,
    // then run two splitmix64 rounds so single-bit differences in
    // either input avalanche across the whole word.
    uint64_t x = base ^ (stream * 0x9e3779b97f4a7c15ull);
    splitmix64(x);
    return splitmix64(x);
}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    for (size_t i = v.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(uniformInt(i));
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace qbasis
