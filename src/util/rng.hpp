#ifndef QBASIS_UTIL_RNG_HPP
#define QBASIS_UTIL_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of qbasis (device sampling, optimizer
 * restarts, Monte-Carlo volume estimates, tomography shot noise) draw
 * from explicitly seeded Rng instances so that every experiment is
 * exactly reproducible. The generator is xoshiro256** seeded through
 * splitmix64.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qbasis {

/** Small, fast, seedable random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal deviate (Box–Muller, cached spare). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fork an independent stream (useful for parallel substreams). */
    Rng split();

    /**
     * Derive an independent stream seed from a base seed and a stream
     * index (splitmix64 finalizer over the mixed pair).
     *
     * Unlike naive `base + k * constant` arithmetic, nearby stream
     * indices yield statistically unrelated xoshiro states, so
     * parallel restarts seeded with consecutive indices do not start
     * from correlated points. Chain calls to derive nested streams:
     * `deriveSeed(deriveSeed(base, depth), restart)`.
     */
    static uint64_t deriveSeed(uint64_t base, uint64_t stream);

    /** Fisher–Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &v);

  private:
    uint64_t s_[4];
    bool has_spare_ = false;
    double spare_ = 0.0;
};

} // namespace qbasis

#endif // QBASIS_UTIL_RNG_HPP
