#include "circuit/schedule.hpp"

#include <algorithm>

namespace qbasis {

DurationModel
uniformDurations(double t_1q_ns, double t_2q_ns)
{
    return [t_1q_ns, t_2q_ns](const Gate &g) {
        return g.isTwoQubit() ? t_2q_ns : t_1q_ns;
    };
}

Schedule
scheduleAsap(const Circuit &circuit, const DurationModel &durations)
{
    const int n = circuit.numQubits();
    Schedule sched;
    sched.first_busy.assign(n, -1.0);
    sched.last_busy.assign(n, -1.0);
    std::vector<double> ready(n, 0.0);

    sched.ops.reserve(circuit.size());
    for (size_t i = 0; i < circuit.gates().size(); ++i) {
        const Gate &g = circuit.gates()[i];
        double start = 0.0;
        for (int q : g.qubits)
            start = std::max(start, ready[q]);
        const double dur = durations(g);
        const double end = start + dur;
        for (int q : g.qubits) {
            ready[q] = end;
            if (sched.first_busy[q] < 0.0)
                sched.first_busy[q] = start;
            sched.last_busy[q] = end;
        }
        sched.ops.push_back({i, start, end});
        sched.makespan = std::max(sched.makespan, end);
    }
    return sched;
}

} // namespace qbasis
