#include "circuit/gate.hpp"

#include <cmath>

#include "linalg/su2.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

std::string
Gate::name() const
{
    switch (kind) {
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::Phase: return "p";
      case GateKind::U3: return "u3";
      case GateKind::Unitary1Q:
        return label.empty() ? "u1q" : label;
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::Swap: return "swap";
      case GateKind::ISwap: return "iswap";
      case GateKind::SqrtISwap: return "sqisw";
      case GateKind::CPhase: return "cp";
      case GateKind::CRZ: return "crz";
      case GateKind::RZZ: return "rzz";
      case GateKind::Unitary2Q:
        return label.empty() ? "u2q" : label;
    }
    return "?";
}

Mat2
Gate::matrix2() const
{
    const double p0 = params.empty() ? 0.0 : params[0];
    switch (kind) {
      case GateKind::H: return hadamard();
      case GateKind::X: return pauliX();
      case GateKind::Y: return pauliY();
      case GateKind::Z: return pauliZ();
      case GateKind::S: return phaseGate(kPi / 2.0);
      case GateKind::Sdg: return phaseGate(-kPi / 2.0);
      case GateKind::T: return phaseGate(kPi / 4.0);
      case GateKind::Tdg: return phaseGate(-kPi / 4.0);
      case GateKind::RX: return rx(p0);
      case GateKind::RY: return ry(p0);
      case GateKind::RZ: return rz(p0);
      case GateKind::Phase: return phaseGate(p0);
      case GateKind::U3:
        return u3(params.at(0), params.at(1), params.at(2));
      case GateKind::Unitary1Q: return custom2;
      default:
        panic("matrix2() called on two-qubit gate '%s'",
              name().c_str());
    }
}

Mat4
Gate::matrix4() const
{
    const double p0 = params.empty() ? 0.0 : params[0];
    switch (kind) {
      case GateKind::CX: return cnotGate();
      case GateKind::CZ: return czGate();
      case GateKind::Swap: return swapGate();
      case GateKind::ISwap: return iswapGate();
      case GateKind::SqrtISwap: return sqrtIswapGate();
      case GateKind::CPhase: return cphaseGate(p0);
      case GateKind::CRZ: return crzGate(p0);
      case GateKind::RZZ: return rzzGate(p0);
      case GateKind::Unitary2Q: return custom4;
      default:
        panic("matrix4() called on single-qubit gate '%s'",
              name().c_str());
    }
}

Gate
makeGate1(GateKind kind, int q, std::vector<double> params)
{
    Gate g;
    g.kind = kind;
    g.qubits = {q};
    g.params = std::move(params);
    return g;
}

Gate
makeGate2(GateKind kind, int a, int b, std::vector<double> params)
{
    if (a == b)
        fatal("two-qubit gate needs distinct qubits (got %d, %d)", a, b);
    Gate g;
    g.kind = kind;
    g.qubits = {a, b};
    g.params = std::move(params);
    return g;
}

Gate
makeUnitary2(int a, int b, const Mat4 &u, std::string label)
{
    Gate g = makeGate2(GateKind::Unitary2Q, a, b);
    g.custom4 = u;
    g.label = std::move(label);
    return g;
}

Gate
makeUnitary1(int q, const Mat2 &u, std::string label)
{
    Gate g = makeGate1(GateKind::Unitary1Q, q);
    g.custom2 = u;
    g.label = std::move(label);
    return g;
}

} // namespace qbasis
