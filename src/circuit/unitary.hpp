#ifndef QBASIS_CIRCUIT_UNITARY_HPP
#define QBASIS_CIRCUIT_UNITARY_HPP

/**
 * @file
 * Full-circuit unitary construction and equivalence checks for small
 * registers (used heavily by transpiler correctness tests).
 */

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qbasis {

/** Dense 2^n x 2^n unitary of a circuit (n <= 10). */
CMat circuitUnitary(const Circuit &c);

/**
 * True when the circuits implement the same unitary up to global
 * phase.
 */
bool circuitsEquivalent(const Circuit &a, const Circuit &b,
                        double tol = 1e-8);

/**
 * True when circuit `b` equals circuit `a` followed by a relabeling
 * of qubits (out_perm[logical] = physical), as produced by routing
 * passes that leave SWAP permutations in place.
 */
bool circuitsEquivalentUpToPermutation(
    const Circuit &a, const Circuit &b,
    const std::vector<int> &out_perm, double tol = 1e-8);

} // namespace qbasis

#endif // QBASIS_CIRCUIT_UNITARY_HPP
