#ifndef QBASIS_CIRCUIT_STATEVECTOR_HPP
#define QBASIS_CIRCUIT_STATEVECTOR_HPP

/**
 * @file
 * Dense statevector simulator (up to ~20 qubits), used for circuit
 * equivalence checks in tests and for verifying benchmark
 * generators (e.g. the Cuccaro adder's arithmetic).
 */

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/types.hpp"

namespace qbasis {

/** Dense quantum state on n qubits (qubit 0 = least significant bit). */
class Statevector
{
  public:
    /** |0...0> on n qubits. */
    explicit Statevector(int num_qubits);

    /** Number of qubits. */
    int numQubits() const { return num_qubits_; }

    /** Amplitude vector (size 2^n). */
    const std::vector<Complex> &amplitudes() const { return amps_; }

    /** Amplitude of one computational basis state. */
    Complex amplitude(size_t basis_state) const
    {
        return amps_.at(basis_state);
    }

    /** Set to a computational basis state. */
    void setBasisState(size_t basis_state);

    /** Apply a 2x2 unitary to one qubit. */
    void apply1Q(const Mat2 &u, int qubit);

    /** Apply a 4x4 unitary; `high` is the most significant qubit. */
    void apply2Q(const Mat4 &u, int high, int low);

    /** Apply one IR gate. */
    void applyGate(const Gate &g);

    /** Apply a whole circuit. */
    void applyCircuit(const Circuit &c);

    /** Probability of one basis state. */
    double probability(size_t basis_state) const;

    /** Index of the most likely basis state. */
    size_t mostLikely() const;

    /** |<this|other>|^2. */
    double overlap(const Statevector &other) const;

    /** L2 norm (should stay 1 under unitaries). */
    double norm() const;

  private:
    int num_qubits_;
    std::vector<Complex> amps_;
};

} // namespace qbasis

#endif // QBASIS_CIRCUIT_STATEVECTOR_HPP
