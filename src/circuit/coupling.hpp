#ifndef QBASIS_CIRCUIT_COUPLING_HPP
#define QBASIS_CIRCUIT_COUPLING_HPP

/**
 * @file
 * Device connectivity: undirected coupling graphs with edge ids,
 * adjacency, and all-pairs shortest-path distances (the routing
 * heuristic's cost function).
 */

#include <utility>
#include <vector>

namespace qbasis {

/** Undirected coupling graph of a device. */
class CouplingMap
{
  public:
    /** Build from an explicit edge list (validated, deduplicated). */
    CouplingMap(int num_qubits,
                std::vector<std::pair<int, int>> edge_list);

    /** rows x cols grid lattice (the paper's Fig. 7 topology). */
    static CouplingMap grid(int rows, int cols);

    /** Linear chain of n qubits. */
    static CouplingMap line(int n);

    /** Ring of n qubits. */
    static CouplingMap ring(int n);

    /**
     * IBM-style heavy-hexagon lattice built from `rows` x `cols`
     * hexagon cells (degree <= 3 everywhere). The paper's Section VI
     * notes that sparser connectivity like heavy-hex needs fewer
     * edge-coloring rounds for parallel calibration.
     */
    static CouplingMap heavyHex(int rows, int cols);

    /** Number of device qubits. */
    int numQubits() const { return num_qubits_; }

    /** Canonicalized edge list (lo < hi), indexed by edge id. */
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edges_;
    }

    /** True when qubits a and b share an edge. */
    bool connected(int a, int b) const;

    /** Edge id for (a, b) in either order, or -1. */
    int edgeId(int a, int b) const;

    /** Neighbor list of a qubit. */
    const std::vector<int> &neighbors(int q) const
    {
        return adjacency_.at(q);
    }

    /** BFS hop distance between two qubits. */
    int distance(int a, int b) const
    {
        return distance_.at(a).at(b);
    }

    /** True when the graph is connected. */
    bool isConnected() const;

  private:
    int num_qubits_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adjacency_;
    std::vector<std::vector<int>> edge_id_;   // dense lookup
    std::vector<std::vector<int>> distance_;  // BFS all-pairs
};

} // namespace qbasis

#endif // QBASIS_CIRCUIT_COUPLING_HPP
