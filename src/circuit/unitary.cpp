#include "circuit/unitary.hpp"

#include <cmath>

#include "circuit/statevector.hpp"
#include "linalg/su2.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

CMat
circuitUnitary(const Circuit &c)
{
    const int n = c.numQubits();
    if (n > 10)
        fatal("circuitUnitary limited to 10 qubits (got %d)", n);
    const size_t dim = size_t{1} << n;
    CMat u(dim, dim);
    for (size_t col = 0; col < dim; ++col) {
        Statevector sv(n);
        sv.setBasisState(col);
        sv.applyCircuit(c);
        for (size_t row = 0; row < dim; ++row)
            u(row, col) = sv.amplitude(row);
    }
    return u;
}

bool
circuitsEquivalent(const Circuit &a, const Circuit &b, double tol)
{
    if (a.numQubits() != b.numQubits())
        return false;
    const CMat ua = circuitUnitary(a);
    const CMat ub = circuitUnitary(b);
    const size_t dim = ua.rows();
    Complex tr{};
    for (size_t i = 0; i < dim; ++i)
        for (size_t k = 0; k < dim; ++k)
            tr += std::conj(ua(k, i)) * ub(k, i);
    const double overlap = std::abs(tr) / static_cast<double>(dim);
    return overlap >= 1.0 - tol;
}

bool
circuitsEquivalentUpToPermutation(const Circuit &a, const Circuit &b,
                                  const std::vector<int> &out_perm,
                                  double tol)
{
    const int n = a.numQubits();
    if (b.numQubits() != n
        || out_perm.size() != static_cast<size_t>(n))
        return false;

    // Compare action on a few random product states: the amplitude
    // of logical state x after `a` must match the amplitude of the
    // physical state y (bit out_perm[i] of y = bit i of x) after `b`.
    Rng rng(0xc14cull); // deterministic
    for (int trial = 0; trial < 3; ++trial) {
        Statevector sa(n), sb(n);
        // Random product input (same for both).
        Circuit prep(n);
        for (int q = 0; q < n; ++q) {
            prep.u3(q, rng.uniform(0, kPi), rng.uniform(0, kTwoPi),
                    rng.uniform(0, kTwoPi));
        }
        sa.applyCircuit(prep);
        sb.applyCircuit(prep);
        sa.applyCircuit(a);
        sb.applyCircuit(b);

        // Un-permute sb.
        const size_t dim = size_t{1} << n;
        std::vector<Complex> collected(dim);
        for (size_t x = 0; x < dim; ++x) {
            size_t y = 0;
            for (int i = 0; i < n; ++i) {
                if (x & (size_t{1} << i))
                    y |= size_t{1} << out_perm[i];
            }
            collected[x] = sb.amplitude(y);
        }
        Complex ov{};
        for (size_t x = 0; x < dim; ++x)
            ov += std::conj(sa.amplitude(x)) * collected[x];
        if (std::norm(ov) < 1.0 - tol)
            return false;
    }
    return true;
}

} // namespace qbasis
