#ifndef QBASIS_CIRCUIT_GATE_HPP
#define QBASIS_CIRCUIT_GATE_HPP

/**
 * @file
 * Gate representation for the circuit IR.
 *
 * Conventions: for two-qubit gates, qubits[0] is the first/most
 * significant qubit of the 4x4 matrix and the control of controlled
 * gates. Matrices follow the same |q0 q1| ordering as the weyl
 * library.
 */

#include <string>
#include <vector>

#include "linalg/mat2.hpp"
#include "linalg/mat4.hpp"

namespace qbasis {

/** Supported gate kinds. */
enum class GateKind {
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    RX,
    RY,
    RZ,
    Phase,     ///< diag(1, e^{i theta})
    U3,        ///< generic 1Q gate by Euler angles
    Unitary1Q, ///< raw 2x2 matrix
    CX,
    CZ,
    Swap,
    ISwap,
    SqrtISwap,
    CPhase,    ///< diag(1,1,1,e^{i theta})
    CRZ,
    RZZ,       ///< exp(-i theta/2 ZZ)
    Unitary2Q, ///< raw 4x4 matrix (basis gates, synthesized gates)
};

/** One gate application in a circuit. */
struct Gate
{
    GateKind kind = GateKind::H;
    std::vector<int> qubits;     ///< 1 or 2 targets.
    std::vector<double> params;  ///< Rotation angles, if any.
    Mat4 custom4;                ///< For Unitary2Q.
    Mat2 custom2;                ///< For Unitary1Q.
    std::string label;           ///< Optional display label.

    /** True for two-qubit gates. */
    bool isTwoQubit() const { return qubits.size() == 2; }

    /** Human-readable mnemonic. */
    std::string name() const;

    /** 2x2 matrix of a 1Q gate. */
    Mat2 matrix2() const;

    /** 4x4 matrix of a 2Q gate (qubits[0] = most significant). */
    Mat4 matrix4() const;
};

/** Construct helpers (free functions keep Gate an aggregate). */
Gate makeGate1(GateKind kind, int q, std::vector<double> params = {});
Gate makeGate2(GateKind kind, int a, int b,
               std::vector<double> params = {});
Gate makeUnitary2(int a, int b, const Mat4 &u, std::string label = {});
Gate makeUnitary1(int q, const Mat2 &u, std::string label = {});

} // namespace qbasis

#endif // QBASIS_CIRCUIT_GATE_HPP
