#include "circuit/statevector.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits)
{
    if (num_qubits <= 0 || num_qubits > 26)
        fatal("Statevector supports 1..26 qubits (got %d)", num_qubits);
    amps_.assign(size_t{1} << num_qubits, Complex{});
    amps_[0] = 1.0;
}

void
Statevector::setBasisState(size_t basis_state)
{
    if (basis_state >= amps_.size())
        fatal("basis state %zu out of range", basis_state);
    std::fill(amps_.begin(), amps_.end(), Complex{});
    amps_[basis_state] = 1.0;
}

void
Statevector::apply1Q(const Mat2 &u, int qubit)
{
    const size_t stride = size_t{1} << qubit;
    const size_t n = amps_.size();
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t off = 0; off < stride; ++off) {
            const size_t i0 = base + off;
            const size_t i1 = i0 + stride;
            const Complex a0 = amps_[i0];
            const Complex a1 = amps_[i1];
            amps_[i0] = u(0, 0) * a0 + u(0, 1) * a1;
            amps_[i1] = u(1, 0) * a0 + u(1, 1) * a1;
        }
    }
}

void
Statevector::apply2Q(const Mat4 &u, int high, int low)
{
    const size_t hbit = size_t{1} << high;
    const size_t lbit = size_t{1} << low;
    const size_t n = amps_.size();
    for (size_t i = 0; i < n; ++i) {
        if ((i & hbit) || (i & lbit))
            continue; // Visit each group once via its 00 member.
        const size_t i00 = i;
        const size_t i01 = i | lbit;
        const size_t i10 = i | hbit;
        const size_t i11 = i | hbit | lbit;
        const Complex a00 = amps_[i00];
        const Complex a01 = amps_[i01];
        const Complex a10 = amps_[i10];
        const Complex a11 = amps_[i11];
        amps_[i00] = u(0, 0) * a00 + u(0, 1) * a01 + u(0, 2) * a10
                     + u(0, 3) * a11;
        amps_[i01] = u(1, 0) * a00 + u(1, 1) * a01 + u(1, 2) * a10
                     + u(1, 3) * a11;
        amps_[i10] = u(2, 0) * a00 + u(2, 1) * a01 + u(2, 2) * a10
                     + u(2, 3) * a11;
        amps_[i11] = u(3, 0) * a00 + u(3, 1) * a01 + u(3, 2) * a10
                     + u(3, 3) * a11;
    }
}

void
Statevector::applyGate(const Gate &g)
{
    if (g.isTwoQubit())
        apply2Q(g.matrix4(), g.qubits[0], g.qubits[1]);
    else
        apply1Q(g.matrix2(), g.qubits[0]);
}

void
Statevector::applyCircuit(const Circuit &c)
{
    if (c.numQubits() != num_qubits_)
        fatal("applyCircuit: register size mismatch");
    for (const auto &g : c.gates())
        applyGate(g);
}

double
Statevector::probability(size_t basis_state) const
{
    return std::norm(amps_.at(basis_state));
}

size_t
Statevector::mostLikely() const
{
    size_t best = 0;
    double best_p = -1.0;
    for (size_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p > best_p) {
            best_p = p;
            best = i;
        }
    }
    return best;
}

double
Statevector::overlap(const Statevector &other) const
{
    Complex s{};
    for (size_t i = 0; i < amps_.size(); ++i)
        s += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(s);
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const auto &a : amps_)
        s += std::norm(a);
    return std::sqrt(s);
}

} // namespace qbasis
