#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace qbasis {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits)
{
    if (num_qubits <= 0)
        fatal("Circuit requires a positive qubit count (got %d)",
              num_qubits);
}

void
Circuit::append(Gate g)
{
    for (int q : g.qubits) {
        if (q < 0 || q >= num_qubits_)
            fatal("gate '%s' addresses qubit %d outside register of "
                  "size %d", g.name().c_str(), q, num_qubits_);
    }
    gates_.push_back(std::move(g));
}

void
Circuit::extend(const Circuit &other)
{
    if (other.num_qubits_ != num_qubits_)
        fatal("extend: register size mismatch (%d vs %d)",
              other.num_qubits_, num_qubits_);
    gates_.insert(gates_.end(), other.gates_.begin(),
                  other.gates_.end());
}

size_t
Circuit::countTwoQubit() const
{
    size_t n = 0;
    for (const auto &g : gates_)
        n += g.isTwoQubit();
    return n;
}

size_t
Circuit::count(GateKind kind) const
{
    size_t n = 0;
    for (const auto &g : gates_)
        n += (g.kind == kind);
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> level(num_qubits_, 0);
    int depth = 0;
    for (const auto &g : gates_) {
        int start = 0;
        for (int q : g.qubits)
            start = std::max(start, level[q]);
        for (int q : g.qubits)
            level[q] = start + 1;
        depth = std::max(depth, start + 1);
    }
    return depth;
}

std::string
Circuit::str() const
{
    std::ostringstream out;
    out << "circuit(" << num_qubits_ << " qubits, " << gates_.size()
        << " gates)\n";
    for (const auto &g : gates_) {
        out << "  " << g.name();
        if (!g.params.empty()) {
            out << "(";
            for (size_t i = 0; i < g.params.size(); ++i)
                out << (i ? ", " : "") << g.params[i];
            out << ")";
        }
        for (int q : g.qubits)
            out << " q" << q;
        out << "\n";
    }
    return out.str();
}

} // namespace qbasis
