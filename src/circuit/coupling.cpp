#include "circuit/coupling.hpp"

#include <algorithm>
#include <deque>

#include "util/logging.hpp"

namespace qbasis {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edge_list)
    : num_qubits_(num_qubits)
{
    if (num_qubits <= 0)
        fatal("CouplingMap needs a positive qubit count");

    // Canonicalize, validate, deduplicate.
    for (auto &e : edge_list) {
        if (e.first == e.second)
            fatal("self-loop edge (%d, %d)", e.first, e.second);
        if (e.first < 0 || e.second < 0 || e.first >= num_qubits
            || e.second >= num_qubits)
            fatal("edge (%d, %d) out of range", e.first, e.second);
        if (e.first > e.second)
            std::swap(e.first, e.second);
    }
    std::sort(edge_list.begin(), edge_list.end());
    edge_list.erase(std::unique(edge_list.begin(), edge_list.end()),
                    edge_list.end());
    edges_ = std::move(edge_list);

    adjacency_.assign(num_qubits_, {});
    edge_id_.assign(num_qubits_, std::vector<int>(num_qubits_, -1));
    for (size_t id = 0; id < edges_.size(); ++id) {
        const auto [a, b] = edges_[id];
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
        edge_id_[a][b] = static_cast<int>(id);
        edge_id_[b][a] = static_cast<int>(id);
    }

    // All-pairs BFS.
    distance_.assign(num_qubits_,
                     std::vector<int>(num_qubits_, 1 << 28));
    for (int src = 0; src < num_qubits_; ++src) {
        auto &dist = distance_[src];
        dist[src] = 0;
        std::deque<int> queue{src};
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int v : adjacency_[u]) {
                if (dist[v] > dist[u] + 1) {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

CouplingMap
CouplingMap::grid(int rows, int cols)
{
    std::vector<std::pair<int, int>> edges;
    auto idx = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(idx(r, c), idx(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(idx(r, c), idx(r + 1, c));
        }
    }
    return CouplingMap(rows * cols, std::move(edges));
}

CouplingMap
CouplingMap::line(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return CouplingMap(n, std::move(edges));
}

CouplingMap
CouplingMap::ring(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    if (n > 2)
        edges.emplace_back(0, n - 1);
    return CouplingMap(n, std::move(edges));
}

CouplingMap
CouplingMap::heavyHex(int rows, int cols)
{
    if (rows < 1 || cols < 1)
        fatal("heavyHex needs positive cell counts");
    // Construction: (rows + 1) horizontal chains of 2*cols + 1
    // sites, joined by dedicated bridge qubits on alternating
    // columns (offset flips per row), giving the degree-<=3
    // heavy-hexagon pattern.
    const int row_len = 2 * cols + 1;
    const int n_row_qubits = (rows + 1) * row_len;
    auto rowQubit = [row_len](int r, int c) {
        return r * row_len + c;
    };
    std::vector<std::pair<int, int>> edges;
    for (int r = 0; r <= rows; ++r)
        for (int c = 0; c + 1 < row_len; ++c)
            edges.emplace_back(rowQubit(r, c), rowQubit(r, c + 1));

    int next = n_row_qubits;
    for (int r = 0; r < rows; ++r) {
        const int offset = (r % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_len; c += 4) {
            edges.emplace_back(rowQubit(r, c), next);
            edges.emplace_back(next, rowQubit(r + 1, c));
            ++next;
        }
    }
    return CouplingMap(next, std::move(edges));
}

bool
CouplingMap::connected(int a, int b) const
{
    return edgeId(a, b) >= 0;
}

int
CouplingMap::edgeId(int a, int b) const
{
    if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_)
        return -1;
    return edge_id_[a][b];
}

bool
CouplingMap::isConnected() const
{
    for (int q = 0; q < num_qubits_; ++q)
        if (distance_[0][q] >= (1 << 28))
            return false;
    return true;
}

} // namespace qbasis
