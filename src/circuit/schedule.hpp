#ifndef QBASIS_CIRCUIT_SCHEDULE_HPP
#define QBASIS_CIRCUIT_SCHEDULE_HPP

/**
 * @file
 * ASAP (as-soon-as-possible) scheduling of circuits with per-gate
 * durations; provides the per-qubit activity windows that the
 * paper's decoherence model (Section VIII-C) integrates over.
 */

#include <functional>
#include <vector>

#include "circuit/circuit.hpp"

namespace qbasis {

/** One scheduled gate instance. */
struct ScheduledGate
{
    size_t gate_index = 0; ///< Index into Circuit::gates().
    double start = 0.0;    ///< Start time (ns).
    double end = 0.0;      ///< End time (ns).
};

/** Result of scheduling a circuit. */
struct Schedule
{
    std::vector<ScheduledGate> ops; ///< In program order.
    double makespan = 0.0;          ///< Total circuit duration.
    /** First gate start per qubit (-1 when the qubit is untouched). */
    std::vector<double> first_busy;
    /** Last gate end per qubit (-1 when the qubit is untouched). */
    std::vector<double> last_busy;
};

/** Maps a gate to its duration in ns. */
using DurationModel = std::function<double(const Gate &)>;

/** Uniform duration model: fixed 1Q and 2Q gate lengths. */
DurationModel uniformDurations(double t_1q_ns, double t_2q_ns);

/** Greedy ASAP schedule honoring qubit exclusivity. */
Schedule scheduleAsap(const Circuit &circuit,
                      const DurationModel &durations);

} // namespace qbasis

#endif // QBASIS_CIRCUIT_SCHEDULE_HPP
