#ifndef QBASIS_CIRCUIT_CIRCUIT_HPP
#define QBASIS_CIRCUIT_CIRCUIT_HPP

/**
 * @file
 * Quantum circuit IR: an ordered gate list on a fixed qubit register,
 * with builder helpers and structural statistics.
 */

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qbasis {

/** A quantum circuit (ordered gate list). */
class Circuit
{
  public:
    /** Create an empty circuit on `num_qubits` qubits. */
    explicit Circuit(int num_qubits);

    /** Number of qubits in the register. */
    int numQubits() const { return num_qubits_; }

    /** All gates in program order. */
    const std::vector<Gate> &gates() const { return gates_; }

    /** Number of gates. */
    size_t size() const { return gates_.size(); }

    /** Append a gate (validates qubit indices). */
    void append(Gate g);

    /** Append every gate of another circuit (same register size). */
    void extend(const Circuit &other);

    // Builder helpers.
    void h(int q) { append(makeGate1(GateKind::H, q)); }
    void x(int q) { append(makeGate1(GateKind::X, q)); }
    void y(int q) { append(makeGate1(GateKind::Y, q)); }
    void z(int q) { append(makeGate1(GateKind::Z, q)); }
    void s(int q) { append(makeGate1(GateKind::S, q)); }
    void t(int q) { append(makeGate1(GateKind::T, q)); }
    void rx(int q, double theta)
    {
        append(makeGate1(GateKind::RX, q, {theta}));
    }
    void ry(int q, double theta)
    {
        append(makeGate1(GateKind::RY, q, {theta}));
    }
    void rz(int q, double theta)
    {
        append(makeGate1(GateKind::RZ, q, {theta}));
    }
    void phase(int q, double theta)
    {
        append(makeGate1(GateKind::Phase, q, {theta}));
    }
    void u3(int q, double theta, double phi, double lambda)
    {
        append(makeGate1(GateKind::U3, q, {theta, phi, lambda}));
    }
    void cx(int control, int target)
    {
        append(makeGate2(GateKind::CX, control, target));
    }
    void cz(int a, int b) { append(makeGate2(GateKind::CZ, a, b)); }
    void swap(int a, int b)
    {
        append(makeGate2(GateKind::Swap, a, b));
    }
    void iswap(int a, int b)
    {
        append(makeGate2(GateKind::ISwap, a, b));
    }
    void cphase(int a, int b, double theta)
    {
        append(makeGate2(GateKind::CPhase, a, b, {theta}));
    }
    void crz(int control, int target, double theta)
    {
        append(makeGate2(GateKind::CRZ, control, target, {theta}));
    }
    void rzz(int a, int b, double theta)
    {
        append(makeGate2(GateKind::RZZ, a, b, {theta}));
    }
    void unitary2q(int a, int b, const Mat4 &u, std::string label = {})
    {
        append(makeUnitary2(a, b, u, std::move(label)));
    }
    void unitary1q(int q, const Mat2 &u, std::string label = {})
    {
        append(makeUnitary1(q, u, std::move(label)));
    }

    /** Total two-qubit gate count. */
    size_t countTwoQubit() const;

    /** Count of gates of one kind. */
    size_t count(GateKind kind) const;

    /** Logical depth (greedy layering by qubit availability). */
    int depth() const;

    /** Multi-line textual dump (QASM-flavored). */
    std::string str() const;

  private:
    int num_qubits_;
    std::vector<Gate> gates_;
};

} // namespace qbasis

#endif // QBASIS_CIRCUIT_CIRCUIT_HPP
