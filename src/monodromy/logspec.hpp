#ifndef QBASIS_MONODROMY_LOGSPEC_HPP
#define QBASIS_MONODROMY_LOGSPEC_HPP

/**
 * @file
 * The LogSpec representation of two-qubit nonlocal classes used by
 * Peterson et al. (Quantum 4, 247) and referenced by the paper's
 * Theorem 5.1 discussion.
 *
 * LogSpec(U) is the sorted vector of magic-basis eigenphase fractions
 * (a, b, c, d), a >= b >= c >= d, a+b+c+d = 0. A gate generally maps
 * to two LogSpec points related by the involution
 *   rho(a, b, c, d) = (c + 1/2, d + 1/2, a - 1/2, b - 1/2).
 */

#include <array>

#include "linalg/mat4.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/** LogSpec 4-vector (descending, zero-sum). */
using LogSpec = std::array<double, 4>;

/** LogSpec of canonical coordinates. */
LogSpec logSpecFromCoords(const CartanCoords &c);

/** LogSpec of a unitary (via its canonical coordinates). */
LogSpec logSpec(const Mat4 &u);

/** The rho involution from the paper's Theorem 5.1 discussion. */
LogSpec rho(const LogSpec &a);

/** Canonical coordinates of a LogSpec point (inverse map). */
CartanCoords coordsFromLogSpec(const LogSpec &a);

/** True when the two LogSpec vectors agree within eps. */
bool logSpecEqual(const LogSpec &a, const LogSpec &b, double eps = 1e-9);

} // namespace qbasis

#endif // QBASIS_MONODROMY_LOGSPEC_HPP
