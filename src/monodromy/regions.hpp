#ifndef QBASIS_MONODROMY_REGIONS_HPP
#define QBASIS_MONODROMY_REGIONS_HPP

/**
 * @file
 * Closed-form decomposition-power regions from the paper's Section V
 * and Fig. 4.
 *
 * - SWAP in 1 layer: the SWAP vertex itself.
 * - SWAP in 2 layers (single gate): the segments L0 and L1.
 * - SWAP in 3 layers: everything except four tetrahedra (Fig. 4(d));
 *   the able set covers 68.5% of the chamber.
 * - CNOT in 2 layers: everything except three tetrahedra (Fig. 4(e));
 *   the able set covers 75% of the chamber.
 *
 * Trajectory selection uses the "entry faces": the first crossing of
 * a trajectory from the identity corner into the able region happens
 * through {CZ, (1/4,1/4,0), (1/6,1/6,1/6)} (or its mirror) for SWAP-3
 * and through the tx = 1/4 (or 3/4) face for CNOT-2.
 */

#include <array>
#include <vector>

#include "weyl/cartan.hpp"
#include "weyl/geometry.hpp"

namespace qbasis {

/** The four tetrahedra of gates unable to do SWAP in 3 layers. */
const std::array<Tetrahedron, 4> &swap3ComplementTetrahedra();

/** The three tetrahedra of gates unable to do CNOT in 2 layers. */
const std::array<Tetrahedron, 3> &cnot2ComplementTetrahedra();

/** Entry faces for the SWAP-3 region (Fig. 4(d) crossing faces). */
const std::vector<Triangle> &swap3EntryFaces();

/** Entry faces for the CNOT-2 region (tx = 1/4 and tx = 3/4). */
const std::vector<Triangle> &cnot2EntryFaces();

/** True iff the class of c is SWAP itself (1-layer synthesis). */
bool canSynthesizeSwapIn1Layer(const CartanCoords &c, double eps = 1e-9);

/**
 * True iff one gate of class c repeated twice synthesizes SWAP
 * (c on L0 or L1, Appendix B fixed points).
 */
bool canSynthesizeSwapIn2Layers(const CartanCoords &c, double eps = 1e-9);

/**
 * True iff classes b and c together synthesize SWAP in 2 layers
 * (c equals the SWAP-mirror of b).
 */
bool canSynthesizeSwapIn2Layers(const CartanCoords &b,
                                const CartanCoords &c, double eps = 1e-9);

/** True iff class c synthesizes SWAP in at most 3 layers. */
bool canSynthesizeSwapIn3Layers(const CartanCoords &c, double eps = 1e-9);

/** True iff class c synthesizes CNOT in at most 2 layers. */
bool canSynthesizeCnotIn2Layers(const CartanCoords &c, double eps = 1e-9);

/** Criterion 2 region: SWAP in <= 3 layers AND CNOT in <= 2 layers. */
bool inCriterion2Region(const CartanCoords &c, double eps = 1e-9);

} // namespace qbasis

#endif // QBASIS_MONODROMY_REGIONS_HPP
