#ifndef QBASIS_MONODROMY_VOLUME_HPP
#define QBASIS_MONODROMY_VOLUME_HPP

/**
 * @file
 * Monte-Carlo volume estimation over the Weyl chamber, used to
 * reproduce the paper's 68.5% / 75% region volumes and the PE = 50%
 * check, and to cross-validate the closed-form regions against the
 * numerical oracle.
 */

#include <functional>

#include "util/rng.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/** Uniform sample inside the canonical Weyl chamber. */
CartanCoords sampleChamberPoint(Rng &rng);

/**
 * Fraction of chamber volume where `pred` holds, from `samples`
 * uniform chamber points.
 */
double chamberVolumeFraction(
    const std::function<bool(const CartanCoords &)> &pred, int samples,
    Rng &rng);

} // namespace qbasis

#endif // QBASIS_MONODROMY_VOLUME_HPP
