#include "monodromy/mirror.hpp"

#include <algorithm>

#include "weyl/geometry.hpp"

namespace qbasis {

CartanCoords
swapMirror(const CartanCoords &b)
{
    const CartanCoords canon = canonicalize(b);
    return canonicalize(
        {0.5 - canon.tx, 0.5 - canon.ty, 0.5 - canon.tz});
}

bool
isSwapMirrorFixedPoint(const CartanCoords &c, double eps)
{
    const CartanCoords canon = canonicalize(c);
    return canon.distance(swapMirror(canon)) <= eps;
}

void
l0Segment(CartanCoords &a, CartanCoords &b)
{
    a = coords::bGate();
    b = coords::sqrtSwap();
}

void
l1Segment(CartanCoords &a, CartanCoords &b)
{
    a = coords::bGate();
    b = coords::sqrtSwapDag();
}

double
distanceToL0L1(const CartanCoords &c)
{
    const CartanCoords canon = canonicalize(c);
    CartanCoords a0, b0, a1, b1;
    l0Segment(a0, b0);
    l1Segment(a1, b1);
    return std::min(pointSegmentDistance(canon, a0, b0),
                    pointSegmentDistance(canon, a1, b1));
}

} // namespace qbasis
