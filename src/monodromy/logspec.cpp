#include "monodromy/logspec.hpp"

#include <algorithm>
#include <cmath>

namespace qbasis {

namespace {

/** Wrap into (-1/2, 1/2]. */
double
wrapHalf(double v)
{
    v -= std::floor(v + 0.5);
    if (v <= -0.5)
        v += 1.0;
    return v;
}

/** Sort descending and shift branch so the entries sum to zero. */
LogSpec
normalizeLogSpec(LogSpec a)
{
    for (double &v : a)
        v = wrapHalf(v);
    std::sort(a.begin(), a.end(), std::greater<double>());
    // Entries are each defined mod 1 with zero total; distribute the
    // integer surplus (sum is an integer by construction).
    double sum = a[0] + a[1] + a[2] + a[3];
    int k = static_cast<int>(std::lround(sum));
    // Subtract 1 from the largest entries (keeps descending order
    // after re-sorting) until the sum vanishes.
    int idx = 0;
    while (k > 0) {
        a[idx % 4] -= 1.0;
        ++idx;
        --k;
    }
    idx = 3;
    while (k < 0) {
        a[idx % 4] += 1.0;
        --idx;
        ++k;
    }
    std::sort(a.begin(), a.end(), std::greater<double>());
    return a;
}

} // namespace

LogSpec
logSpecFromCoords(const CartanCoords &c)
{
    // Magic-basis eigenphases of CAN(t) are -pi/2 (s . t) over the
    // sign triples with sx sy sz = -1; in units of 2 pi the fractions
    // are -(s . t)/4 ... the LogSpec convention uses phase / (2 pi)
    // scaled so that coordinates live on the same footing as t/2.
    const double x = c.tx, y = c.ty, z = c.tz;
    LogSpec a{
        -(x + y - z) / 2.0,
        -(x - y + z) / 2.0,
        -(-x + y + z) / 2.0,
        (x + y + z) / 2.0,
    };
    return normalizeLogSpec(a);
}

LogSpec
logSpec(const Mat4 &u)
{
    return logSpecFromCoords(cartanCoords(u));
}

LogSpec
rho(const LogSpec &a)
{
    LogSpec r{a[2] + 0.5, a[3] + 0.5, a[0] - 0.5, a[1] - 0.5};
    return normalizeLogSpec(r);
}

CartanCoords
coordsFromLogSpec(const LogSpec &a)
{
    // Invert the linear map of logSpecFromCoords: with
    //   a1 = -(x+y-z)/2, a2 = -(x-y+z)/2, a3 = -(-x+y+z)/2,
    //   a4 = (x+y+z)/2   (up to ordering and branch),
    // x = -(a1+a2), y = -(a1+a3), z = -(a2+a3), then canonicalize.
    const double x = -(a[0] + a[1]);
    const double y = -(a[0] + a[2]);
    const double z = -(a[1] + a[2]);
    return canonicalize({x, y, z});
}

bool
logSpecEqual(const LogSpec &a, const LogSpec &b, double eps)
{
    for (int i = 0; i < 4; ++i)
        if (std::abs(a[i] - b[i]) > eps)
            return false;
    return true;
}

} // namespace qbasis
