#include "monodromy/volume.hpp"

#include "weyl/geometry.hpp"

namespace qbasis {

CartanCoords
sampleChamberPoint(Rng &rng)
{
    static const Tetrahedron chamber = weylChamberTetrahedron();
    // Rejection sampling from the bounding box; acceptance ~ 1/6.
    for (;;) {
        const CartanCoords p{rng.uniform(0.0, 1.0),
                             rng.uniform(0.0, 0.5),
                             rng.uniform(0.0, 0.5)};
        if (chamber.contains(p))
            return p;
    }
}

double
chamberVolumeFraction(
    const std::function<bool(const CartanCoords &)> &pred, int samples,
    Rng &rng)
{
    int hits = 0;
    for (int i = 0; i < samples; ++i) {
        if (pred(sampleChamberPoint(rng)))
            ++hits;
    }
    return static_cast<double>(hits) / samples;
}

} // namespace qbasis
