#ifndef QBASIS_MONODROMY_DEPTH_HPP
#define QBASIS_MONODROMY_DEPTH_HPP

/**
 * @file
 * Analytic-first circuit-depth prediction (the paper's Section VII
 * speedup: skip straight to the provably feasible layer count in the
 * numerical search).
 */

#include "linalg/mat4.hpp"
#include "monodromy/oracle.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/**
 * Predict the minimum number of basis-gate layers needed to realize
 * `target` (up to locals) from repeated applications of `basis`.
 *
 * Uses closed-form region data for SWAP and CNOT targets and the
 * numerical oracle for everything else.
 *
 * @param target      target 2Q gate.
 * @param basis       basis 2Q gate.
 * @param max_layers  give up beyond this depth (returns max_layers+1).
 */
int predictDepth(const Mat4 &target, const Mat4 &basis,
                 int max_layers = 4, const OracleOptions &opts = {});

/** Depth for a SWAP target from the closed-form regions (1..3, or 4+). */
int predictSwapDepth(const CartanCoords &basis_class, double eps = 1e-9);

/**
 * Depth for a CNOT target: 1 if the basis is CNOT-class, 2 from the
 * Fig. 4(e) region, otherwise falls back to the oracle ladder.
 */
int predictCnotDepth(const Mat4 &basis, int max_layers = 4,
                     const OracleOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_MONODROMY_DEPTH_HPP
