#ifndef QBASIS_MONODROMY_MIRROR_HPP
#define QBASIS_MONODROMY_MIRROR_HPP

/**
 * @file
 * The SWAP-mirror map of the paper's Appendix B.
 *
 * For every local class [B] there is exactly one class [C] such that
 * B and C synthesize SWAP in two layers:
 *   coords([C]) = canonicalize((1/2,1/2,1/2) - coords([B])).
 * Example: mirror(CNOT) = iSWAP. Fixed points form the segments
 * L0 (B to sqrt(SWAP)) and L1 (B to sqrt(SWAP)^dag) -- exactly the
 * gates that synthesize SWAP in two layers of a single basis gate.
 */

#include "weyl/cartan.hpp"

namespace qbasis {

/** Mirror class for 2-layer SWAP synthesis (Appendix B). */
CartanCoords swapMirror(const CartanCoords &b);

/** True iff coords are their own SWAP mirror (within eps). */
bool isSwapMirrorFixedPoint(const CartanCoords &c, double eps = 1e-9);

/** Endpoints of the L0 segment: B gate to sqrt(SWAP). */
void l0Segment(CartanCoords &a, CartanCoords &b);

/** Endpoints of the L1 segment: B gate to sqrt(SWAP)^dag. */
void l1Segment(CartanCoords &a, CartanCoords &b);

/**
 * Distance from canonical coords to L0 union L1; zero exactly for
 * gates able to synthesize SWAP in 2 layers of one basis gate.
 */
double distanceToL0L1(const CartanCoords &c);

} // namespace qbasis

#endif // QBASIS_MONODROMY_MIRROR_HPP
