#ifndef QBASIS_MONODROMY_ORACLE_HPP
#define QBASIS_MONODROMY_ORACLE_HPP

/**
 * @file
 * Numerical feasibility oracle for layered two-qubit decompositions.
 *
 * Decides whether a target gate A can be written as
 *   A = k0 B1 k1 B2 k2 ... Bn kn        (k* local, B* fixed 2Q gates)
 * which holds iff there exist middle locals w1..w(n-1) such that
 *   invariants(B1 w1 B2 ... Bn) == invariants(A).
 * The outer locals never change the nonlocal class, so only
 * 6(n-1) real parameters need to be searched. This is the functional
 * equivalent of the paper's Theorem 5.1 (Peterson et al.'s monodromy
 * inequalities); DESIGN.md section 4 documents the substitution and
 * the cross-validation against the paper's closed-form regions.
 */

#include <vector>

#include "linalg/mat4.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/** Options controlling the oracle's numerical search. */
struct OracleOptions
{
    int restarts = 8;            ///< Multistart count.
    int nm_iters = 500;          ///< Nelder-Mead iterations per start.
    double residual_tol = 1e-6;  ///< Feasible iff residual <= tol.
    uint64_t seed = 0x0bac1e5ull; ///< Deterministic search seed.
};

/**
 * Minimum invariant-space residual for decomposing `target` into the
 * given layer gates (2 or more layers) with arbitrary locals.
 * A residual of ~0 certifies feasibility; the converse direction is
 * heuristic but validated against closed-form region data.
 */
double layeredResidual(const Mat4 &target,
                       const std::vector<Mat4> &layers,
                       const OracleOptions &opts = {});

/** Feasibility predicate on layeredResidual(). */
bool layeredFeasible(const Mat4 &target, const std::vector<Mat4> &layers,
                     const OracleOptions &opts = {});

/** Two-layer special case (Theorem 5.1 interface): A from B then C. */
double twoLayerResidual(const Mat4 &target, const Mat4 &b, const Mat4 &c,
                        const OracleOptions &opts = {});

/** Two-layer feasibility. */
bool twoLayerFeasible(const Mat4 &target, const Mat4 &b, const Mat4 &c,
                      const OracleOptions &opts = {});

/** n identical layers of one basis gate. */
double uniformLayerResidual(const Mat4 &target, const Mat4 &basis,
                            int layers, const OracleOptions &opts = {});

/** Feasibility for n identical layers. */
bool uniformLayerFeasible(const Mat4 &target, const Mat4 &basis,
                          int layers, const OracleOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_MONODROMY_ORACLE_HPP
