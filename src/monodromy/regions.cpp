#include "monodromy/regions.hpp"

#include "monodromy/mirror.hpp"

namespace qbasis {

namespace {

constexpr double k16 = 1.0 / 6.0;
constexpr double k13 = 1.0 / 3.0;
constexpr double k14 = 0.25;
constexpr double k12 = 0.5;
constexpr double k34 = 0.75;
constexpr double k56 = 5.0 / 6.0;
constexpr double k23 = 2.0 / 3.0;

/** True when p lies on any of the faces, within eps. */
bool
onAnyFace(const CartanCoords &p, const std::vector<Triangle> &faces,
          double eps)
{
    for (const Triangle &f : faces) {
        // Distance check via barycentric projection: reuse the
        // segment-triangle helper by casting a tiny segment through
        // the point along the face normal. Cheaper: check that p is
        // within eps of the face plane and inside the 2D triangle by
        // solving least squares on the two edge vectors.
        const CartanCoords e1 = f.v[1] - f.v[0];
        const CartanCoords e2 = f.v[2] - f.v[0];
        const CartanCoords r = p - f.v[0];
        // Solve [e1 e2] [u v]^T ~= r in least squares.
        const double a11 = e1.tx * e1.tx + e1.ty * e1.ty + e1.tz * e1.tz;
        const double a12 = e1.tx * e2.tx + e1.ty * e2.ty + e1.tz * e2.tz;
        const double a22 = e2.tx * e2.tx + e2.ty * e2.ty + e2.tz * e2.tz;
        const double b1 = e1.tx * r.tx + e1.ty * r.ty + e1.tz * r.tz;
        const double b2 = e2.tx * r.tx + e2.ty * r.ty + e2.tz * r.tz;
        const double det = a11 * a22 - a12 * a12;
        if (std::abs(det) < 1e-300)
            continue;
        const double u = (b1 * a22 - b2 * a12) / det;
        const double v = (a11 * b2 - a12 * b1) / det;
        if (u < -eps || v < -eps || u + v > 1.0 + eps)
            continue;
        const CartanCoords proj = f.v[0] + e1 * u + e2 * v;
        if (p.distance(proj) <= eps)
            return true;
    }
    return false;
}

} // namespace

const std::array<Tetrahedron, 4> &
swap3ComplementTetrahedra()
{
    static const std::array<Tetrahedron, 4> tets = {
        // Bottom-left: around I0.
        Tetrahedron{{coords::identity0(), coords::cnot(),
                     CartanCoords{k14, k14, 0.0},
                     CartanCoords{k16, k16, k16}}},
        // Bottom-right: around I1.
        Tetrahedron{{coords::cnot(), coords::identity1(),
                     CartanCoords{k34, k14, 0.0},
                     CartanCoords{k56, k16, k16}}},
        // Upper-left sliver at SWAP.
        Tetrahedron{{coords::swap(), CartanCoords{k12, k16, k16},
                     CartanCoords{k16, k16, k16},
                     CartanCoords{k13, k13, k16}}},
        // Upper-right sliver at SWAP.
        Tetrahedron{{coords::swap(), CartanCoords{k12, k16, k16},
                     CartanCoords{k56, k16, k16},
                     CartanCoords{k23, k13, k16}}},
    };
    return tets;
}

const std::array<Tetrahedron, 3> &
cnot2ComplementTetrahedra()
{
    static const std::array<Tetrahedron, 3> tets = {
        // Around I0, capped by the tx = 1/4 face.
        Tetrahedron{{coords::identity0(), CartanCoords{k14, 0.0, 0.0},
                     CartanCoords{k14, k14, 0.0}, coords::sqrtSwap()}},
        // Around I1, capped by the tx = 3/4 face.
        Tetrahedron{{coords::identity1(), CartanCoords{k34, 0.0, 0.0},
                     CartanCoords{k34, k14, 0.0},
                     coords::sqrtSwapDag()}},
        // Around SWAP.
        Tetrahedron{{coords::swap(), coords::sqrtSwap(),
                     coords::sqrtSwapDag(),
                     CartanCoords{k12, k12, k14}}},
    };
    return tets;
}

const std::vector<Triangle> &
swap3EntryFaces()
{
    static const std::vector<Triangle> faces = {
        Triangle{{coords::cnot(), CartanCoords{k14, k14, 0.0},
                  CartanCoords{k16, k16, k16}}},
        Triangle{{coords::cnot(), CartanCoords{k34, k14, 0.0},
                  CartanCoords{k56, k16, k16}}},
    };
    return faces;
}

const std::vector<Triangle> &
cnot2EntryFaces()
{
    static const std::vector<Triangle> faces = {
        Triangle{{CartanCoords{k14, 0.0, 0.0},
                  CartanCoords{k14, k14, 0.0}, coords::sqrtSwap()}},
        Triangle{{CartanCoords{k34, 0.0, 0.0},
                  CartanCoords{k34, k14, 0.0}, coords::sqrtSwapDag()}},
    };
    return faces;
}

bool
canSynthesizeSwapIn1Layer(const CartanCoords &c, double eps)
{
    return canonicalize(c).distance(coords::swap()) <= eps;
}

bool
canSynthesizeSwapIn2Layers(const CartanCoords &c, double eps)
{
    return distanceToL0L1(c) <= eps;
}

bool
canSynthesizeSwapIn2Layers(const CartanCoords &b, const CartanCoords &c,
                           double eps)
{
    return canonicalize(c).distance(swapMirror(b)) <= eps;
}

bool
canSynthesizeSwapIn3Layers(const CartanCoords &c, double eps)
{
    const CartanCoords canon = canonicalize(c);
    // "<= 3 layers": gates that do SWAP in 1 or 2 layers qualify
    // even where they touch the complement tetrahedra (e.g. the
    // SWAP vertex itself, since SWAP^3 = SWAP).
    if (canSynthesizeSwapIn1Layer(canon, eps)
        || canSynthesizeSwapIn2Layers(canon, eps)) {
        return true;
    }
    // Points strictly inside any complement tetrahedron are unable;
    // boundary points are able only on the published entry faces
    // (the rest of the boundary, e.g. the CPHASE axis, stays unable).
    if (onAnyFace(canon, swap3EntryFaces(), eps))
        return true;
    for (const Tetrahedron &t : swap3ComplementTetrahedra()) {
        if (t.contains(canon, eps))
            return false;
    }
    return true;
}

bool
canSynthesizeCnotIn2Layers(const CartanCoords &c, double eps)
{
    const CartanCoords canon = canonicalize(c);
    if (onAnyFace(canon, cnot2EntryFaces(), eps))
        return true;
    for (const Tetrahedron &t : cnot2ComplementTetrahedra()) {
        if (t.contains(canon, eps))
            return false;
    }
    return true;
}

bool
inCriterion2Region(const CartanCoords &c, double eps)
{
    return canSynthesizeSwapIn3Layers(c, eps)
           && canSynthesizeCnotIn2Layers(c, eps);
}

} // namespace qbasis
