#include "monodromy/depth.hpp"

#include "monodromy/regions.hpp"
#include "weyl/gates.hpp"
#include "util/logging.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {

int
predictSwapDepth(const CartanCoords &basis_class, double eps)
{
    const CartanCoords c = canonicalize(basis_class);
    if (canSynthesizeSwapIn1Layer(c, eps))
        return 1;
    if (canSynthesizeSwapIn2Layers(c, eps))
        return 2;
    if (canSynthesizeSwapIn3Layers(c, eps))
        return 3;
    return 4;
}

int
predictCnotDepth(const Mat4 &basis, int max_layers,
                 const OracleOptions &opts)
{
    const CartanCoords c = cartanCoords(basis);
    if (c.distance(coords::cnot()) <= 1e-9)
        return 1;
    if (canSynthesizeCnotIn2Layers(c))
        return 2;
    for (int n = 3; n <= max_layers; ++n) {
        if (uniformLayerFeasible(cnotGate(), basis, n, opts))
            return n;
    }
    return max_layers + 1;
}

int
predictDepth(const Mat4 &target, const Mat4 &basis, int max_layers,
             const OracleOptions &opts)
{
    const CartanCoords tc = cartanCoords(target);
    // Zero layers: target is local.
    if (tc.distance(coords::identity0()) <= 1e-9)
        return 0;

    const CartanCoords bc = cartanCoords(basis);

    // Closed-form fast paths from the paper's Section V.
    if (tc.distance(coords::swap()) <= 1e-9) {
        const int d = predictSwapDepth(bc);
        if (d <= 3)
            return d;
        // Fall through to the oracle ladder beyond 3 layers.
        for (int n = 4; n <= max_layers; ++n) {
            if (uniformLayerFeasible(target, basis, n, opts))
                return n;
        }
        return max_layers + 1;
    }
    if (tc.distance(coords::cnot()) <= 1e-9)
        return predictCnotDepth(basis, max_layers, opts);

    // Generic ladder: 1 layer is a direct class comparison, beyond
    // that ask the oracle.
    if (tc.distance(bc) <= 1e-9)
        return 1;
    for (int n = 2; n <= max_layers; ++n) {
        if (uniformLayerFeasible(target, basis, n, opts))
            return n;
    }
    return max_layers + 1;
}

} // namespace qbasis
