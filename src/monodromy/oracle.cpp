#include "monodromy/oracle.hpp"

#include <array>
#include <cmath>

#include "linalg/su2.hpp"
#include "opt/adam.hpp"
#include "opt/lbfgs.hpp"
#include "opt/multistart.hpp"
#include "opt/nelder_mead.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {

namespace {

/** ZYZ Euler rotation (always det +1). */
Mat2
zyz(double a, double b, double c)
{
    return rz(a) * ry(b) * rz(c);
}

/** Derivatives of the ZYZ rotation with respect to its angles. */
void
zyzWithDerivs(double a, double b, double c, Mat2 &w, Mat2 da[3])
{
    const Mat2 za = rz(a);
    const Mat2 yb = ry(b);
    const Mat2 zc = rz(c);
    w = za * yb * zc;
    const Complex half(0.0, -0.5);
    da[0] = (pauliZ() * za * half) * yb * zc;
    da[1] = za * (pauliY() * yb * half) * zc;
    da[2] = za * yb * (pauliZ() * zc * half);
}

/** Tr(G (x1 kron x0)). */
Complex
traceWithKron(const Mat4 &g, const Mat2 &x1, const Mat2 &x0)
{
    Complex s{};
    for (int r1 = 0; r1 < 2; ++r1)
        for (int c1 = 0; c1 < 2; ++c1)
            for (int r0 = 0; r0 < 2; ++r0)
                for (int c0 = 0; c0 < 2; ++c0) {
                    s += g(2 * c1 + c0, 2 * r1 + r0) * x1(r1, c1)
                         * x0(r0, c0);
                }
    return s;
}

/**
 * Invariant-distance objective (with analytic gradient) over the
 * middle local layers of the sandwich
 *   M(w) = (Q^dag B1) W1 (B2) W2 ... (Bn Q),
 * all fixed factors special so the product stays in SU(4).
 */
struct Chain
{
    std::vector<Mat4> factors; ///< n+1 fixed factors between locals.
    MakhlinInvariants target;

    size_t middles() const { return factors.size() - 1; }

    double
    valueAndGrad(const std::vector<double> &p,
                 std::vector<double> &grad) const
    {
        const size_t nw = middles();

        // Build locals with derivatives.
        std::vector<Mat2> w1(nw), w0(nw);
        std::vector<std::array<Mat2, 3>> d1(nw), d0(nw);
        std::vector<Mat4> wk(nw);
        for (size_t j = 0; j < nw; ++j) {
            Mat2 da[3];
            zyzWithDerivs(p[6 * j], p[6 * j + 1], p[6 * j + 2], w1[j],
                          da);
            d1[j] = {da[0], da[1], da[2]};
            zyzWithDerivs(p[6 * j + 3], p[6 * j + 4], p[6 * j + 5],
                          w0[j], da);
            d0[j] = {da[0], da[1], da[2]};
            wk[j] = Mat4::kron(w1[j], w0[j]);
        }

        // Prefix products A_j = F0 W1 F1 ... W_j F_j.
        std::vector<Mat4> prefix(nw + 1);
        prefix[0] = factors[0];
        for (size_t j = 0; j < nw; ++j)
            prefix[j + 1] = prefix[j] * wk[j] * factors[j + 1];
        const Mat4 &m = prefix[nw];

        // Suffix products R_j = F_j W_{j+1} F_{j+1} ... F_n
        // (everything right of W_j).
        std::vector<Mat4> suffix(nw + 1);
        suffix[nw] = factors[nw];
        for (size_t j = nw; j-- > 1;)
            suffix[j] = factors[j] * wk[j] * suffix[j + 1];

        // Invariants of M.
        const Mat4 mtm = m.transpose() * m;
        const Complex tr = mtm.trace();
        Complex tr2{};
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                tr2 += mtm(i, j) * mtm(j, i);
        const Complex g1 = tr * tr / 16.0;
        const Complex g2c = (tr * tr - tr2) / 4.0;
        const Complex dg1_t = g1 - target.g1;
        const double dg2_t = g2c.real() - target.g2;
        const double f = std::norm(dg1_t) + dg2_t * dg2_t;

        // Gradient: dtr = 2 Tr(M^T dM); dtr2 = 4 Tr(mtm M^T dM);
        // dM = A_{j-1} dW_j R_{j+1-ish}. Precompute the two
        // "cotangent" matrices contracted around each W slot.
        const Mat4 mt = m.transpose();
        const Mat4 mtm_mt = mtm * mt;
        for (size_t j = 0; j < nw; ++j) {
            // dM = prefix[j] dW_j suffix[j+1].
            const Mat4 &l = prefix[j];
            const Mat4 &r = suffix[j + 1];
            const Mat4 ga = r * mt * l;      // Tr(ga dW) = Tr(M^T dM)
            const Mat4 gb = r * mtm_mt * l;  // Tr(gb dW) = Tr(mtm M^T dM)

            for (int k = 0; k < 6; ++k) {
                Complex ta, tb;
                if (k < 3) {
                    ta = traceWithKron(ga, d1[j][k], w0[j]);
                    tb = traceWithKron(gb, d1[j][k], w0[j]);
                } else {
                    ta = traceWithKron(ga, w1[j], d0[j][k - 3]);
                    tb = traceWithKron(gb, w1[j], d0[j][k - 3]);
                }
                const Complex dtr = 2.0 * ta;
                const Complex dtr2 = 4.0 * tb;
                const Complex dg1 = 2.0 * tr * dtr / 16.0;
                const Complex dg2 = (2.0 * tr * dtr - dtr2) / 4.0;
                grad[6 * j + k] =
                    2.0 * std::real(std::conj(dg1_t) * dg1)
                    + 2.0 * dg2_t * dg2.real();
            }
        }
        return f;
    }

    double
    value(const std::vector<double> &p) const
    {
        const size_t nw = middles();
        Mat4 m = factors[0];
        for (size_t j = 0; j < nw; ++j) {
            const Mat2 a = zyz(p[6 * j], p[6 * j + 1], p[6 * j + 2]);
            const Mat2 b =
                zyz(p[6 * j + 3], p[6 * j + 4], p[6 * j + 5]);
            m = m * Mat4::kron(a, b) * factors[j + 1];
        }
        const Mat4 mtm = m.transpose() * m;
        const Complex tr = mtm.trace();
        Complex tr2{};
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                tr2 += mtm(i, j) * mtm(j, i);
        MakhlinInvariants inv;
        inv.g1 = tr * tr / 16.0;
        inv.g2 = ((tr * tr - tr2) / 4.0).real();
        return invariantDistanceSq(inv, target);
    }
};

Chain
makeChain(const Mat4 &target, const std::vector<Mat4> &layers)
{
    if (layers.size() < 2)
        panic("layered oracle requires at least two layers");
    const Mat4 q = magicBasis();
    const Mat4 qd = q.dagger();

    Chain chain;
    chain.target = makhlinInvariants(target);
    chain.factors.reserve(layers.size() + 1);
    chain.factors.push_back(qd * layers.front().toSU4());
    for (size_t i = 1; i + 1 < layers.size(); ++i)
        chain.factors.push_back(layers[i].toSU4());
    chain.factors.push_back(layers.back().toSU4() * q);
    return chain;
}

} // namespace

double
layeredResidual(const Mat4 &target, const std::vector<Mat4> &layers,
                const OracleOptions &opts)
{
    const Chain chain = makeChain(target, layers);
    const size_t dim = 6 * chain.middles();

    const auto grad_obj = [&chain](const std::vector<double> &x,
                                   std::vector<double> &g) {
        return chain.valueAndGrad(x, g);
    };

    MultistartOptions ms;
    ms.max_restarts = opts.restarts;
    ms.target = opts.residual_tol * opts.residual_tol;
    ms.seed = opts.seed;

    AdamOptions adam;
    adam.max_iters = opts.nm_iters / 2;
    adam.lr = 0.15;
    adam.target = ms.target * 0.01;

    LbfgsOptions lbfgs;
    lbfgs.max_iters = opts.nm_iters;
    lbfgs.target = adam.target;

    const OptResult best = multistart(
        [dim](Rng &rng) {
            std::vector<double> x(dim);
            for (double &v : x)
                v = rng.uniform(-kPi, kPi);
            return x;
        },
        [&](std::vector<double> x0) {
            OptResult r = adamMinimize(grad_obj, std::move(x0), adam);
            OptResult p = lbfgsMinimize(grad_obj, r.x, lbfgs);
            p.iterations += r.iterations;
            return p.fval < r.fval ? p : r;
        },
        ms);

    return std::sqrt(std::max(best.fval, 0.0));
}

bool
layeredFeasible(const Mat4 &target, const std::vector<Mat4> &layers,
                const OracleOptions &opts)
{
    return layeredResidual(target, layers, opts) <= opts.residual_tol;
}

double
twoLayerResidual(const Mat4 &target, const Mat4 &b, const Mat4 &c,
                 const OracleOptions &opts)
{
    return layeredResidual(target, {b, c}, opts);
}

bool
twoLayerFeasible(const Mat4 &target, const Mat4 &b, const Mat4 &c,
                 const OracleOptions &opts)
{
    return layeredFeasible(target, {b, c}, opts);
}

double
uniformLayerResidual(const Mat4 &target, const Mat4 &basis, int layers,
                     const OracleOptions &opts)
{
    if (layers < 1)
        panic("uniformLayerResidual requires layers >= 1");
    if (layers == 1) {
        // Direct invariant comparison; no free parameters.
        const MakhlinInvariants a = makhlinInvariants(target);
        const MakhlinInvariants g = makhlinInvariants(basis);
        return std::sqrt(invariantDistanceSq(a, g));
    }
    return layeredResidual(target,
                           std::vector<Mat4>(layers, basis), opts);
}

bool
uniformLayerFeasible(const Mat4 &target, const Mat4 &basis, int layers,
                     const OracleOptions &opts)
{
    return uniformLayerResidual(target, basis, layers, opts)
           <= opts.residual_tol;
}

} // namespace qbasis
