#include "apps/workloads.hpp"

#include <algorithm>

#include "apps/cuccaro.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

/** Brickwork RZZ over the chain: even bonds, then odd bonds. */
void
appendBrickworkRzz(Circuit &c, int n, double theta)
{
    for (int parity = 0; parity < 2; ++parity)
        for (int q = parity; q + 1 < n; q += 2)
            c.rzz(q, q + 1, theta);
}

} // namespace

Circuit
trotterIsingCircuit(const WorkloadParams &params)
{
    const int n = std::max(2, params.qubits);
    const int steps = std::max(1, params.depth);
    Circuit c(n);
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q < n; ++q)
            c.rx(q, params.theta);
        appendBrickworkRzz(c, n, params.theta);
    }
    return c;
}

Circuit
trotterHeisenbergCircuit(const WorkloadParams &params)
{
    const int n = std::max(2, params.qubits);
    const int steps = std::max(1, params.depth);
    Circuit c(n);
    for (int s = 0; s < steps; ++s) {
        for (int parity = 0; parity < 2; ++parity) {
            for (int q = parity; q + 1 < n; q += 2) {
                // XX: conjugate ZZ into the X basis.
                c.h(q);
                c.h(q + 1);
                c.rzz(q, q + 1, params.theta);
                c.h(q);
                c.h(q + 1);
                // YY: conjugate ZZ into the Y basis.
                c.rx(q, kPi / 2);
                c.rx(q + 1, kPi / 2);
                c.rzz(q, q + 1, params.theta);
                c.rx(q, -kPi / 2);
                c.rx(q + 1, -kPi / 2);
                // ZZ.
                c.rzz(q, q + 1, params.theta);
            }
        }
    }
    return c;
}

Circuit
rcsLayersCircuit(const WorkloadParams &params)
{
    const int n = std::max(2, params.qubits);
    const int layers = std::max(1, params.depth);
    Circuit c(n);
    Rng rng(Rng::deriveSeed(params.seed,
                            static_cast<uint64_t>(n)));
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < n; ++q) {
            switch (rng.uniformInt(3)) {
            case 0: c.rx(q, kPi / 2); break; // sqrt-X
            case 1: c.ry(q, kPi / 2); break; // sqrt-Y
            default: c.t(q); break;
            }
        }
        for (int q = l % 2; q + 1 < n; q += 2)
            c.cz(q, q + 1);
    }
    return c;
}

Circuit
adderChainCircuit(const WorkloadParams &params)
{
    // Cuccaro needs an even register of at least 6 qubits.
    int n = std::max(6, params.qubits);
    n -= n % 2;
    const int repeats = std::max(1, params.depth);
    Circuit chain = cuccaroAdderByTotalQubits(n);
    const Circuit adder = chain;
    for (int r = 1; r < repeats; ++r)
        chain.extend(adder);
    return chain;
}

const std::vector<WorkloadInfo> &
workloadZoo()
{
    static const std::vector<WorkloadInfo> zoo = {
        {"ising", "trotter",
         "trotterized transverse-field Ising chain (RX + brickwork "
         "RZZ per step)",
         &trotterIsingCircuit},
        {"heisenberg", "trotter",
         "trotterized Heisenberg chain (XX/YY/ZZ terms via "
         "basis-conjugated RZZ)",
         &trotterHeisenbergCircuit},
        {"rcs", "sampling",
         "random-circuit sampling layers (seeded 1Q gates + CZ "
         "brickwork entanglers)",
         &rcsLayersCircuit},
        {"adder_chain", "arithmetic",
         "deep ripple-carry adder chain (Cuccaro adders back-to-back)",
         &adderChainCircuit},
    };
    return zoo;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : workloadZoo())
        if (w.name == name)
            return &w;
    return nullptr;
}

Circuit
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    const WorkloadInfo *info = findWorkload(name);
    if (info == nullptr)
        fatal("unknown workload '%s'", name.c_str());
    return info->make(params);
}

CompileRequest
workloadRequest(uint64_t request_id, int device_id,
                const std::string &name, const WorkloadParams &params)
{
    Circuit circuit = makeWorkload(name, params);
    return CompileRequest(request_id, device_id,
                          name + std::to_string(circuit.numQubits()),
                          std::move(circuit));
}

} // namespace qbasis
