#ifndef QBASIS_APPS_CUCCARO_HPP
#define QBASIS_APPS_CUCCARO_HPP

/**
 * @file
 * Cuccaro ripple-carry adder [11] on 2n+2 qubits, with Toffolis
 * decomposed into the standard 6-CNOT construction (the paper's
 * evaluation compiles to 1Q/2Q gates only).
 *
 * Register layout: qubit 0 = carry-in ancilla, qubits 1..n = a
 * (LSB first at 1), qubits n+1..2n = b, qubit 2n+1 = carry-out.
 * Computes |a>|b> -> |a>|a+b>, carry-out in the last qubit.
 */

#include "circuit/circuit.hpp"

namespace qbasis {

/** Decomposed Toffoli appended in place (controls a, b; target c). */
void appendToffoli(Circuit &c, int ctrl_a, int ctrl_b, int target);

/** Cuccaro adder for n-bit operands (total 2n+2 qubits). */
Circuit cuccaroAdderCircuit(int n_bits);

/**
 * Cuccaro adder sized by total qubit count (must be even, >= 6);
 * "cuccaro 10" means 10 qubits = 4-bit operands.
 */
Circuit cuccaroAdderByTotalQubits(int total_qubits);

} // namespace qbasis

#endif // QBASIS_APPS_CUCCARO_HPP
