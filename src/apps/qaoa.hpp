#ifndef QBASIS_APPS_QAOA_HPP
#define QBASIS_APPS_QAOA_HPP

/**
 * @file
 * QAOA MaxCut benchmark [9]: p rounds of cost (RZZ per graph edge)
 * and mixer (RX per qubit) layers over an Erdos-Renyi instance.
 * The paper's Table II uses p = 1 with edge probabilities 0.1 and
 * 0.33.
 */

#include "apps/graphs.hpp"
#include "circuit/circuit.hpp"

namespace qbasis {

/** Parameters of a QAOA instance. */
struct QaoaParams
{
    int rounds = 1;      ///< p, the number of cost/mixer repetitions.
    double gamma = 0.7;  ///< Cost angle (arbitrary fixed value).
    double beta = 0.3;   ///< Mixer angle.
};

/** QAOA circuit over an explicit edge list. */
Circuit qaoaCircuit(int n,
                    const std::vector<std::pair<int, int>> &edges,
                    const QaoaParams &params = {});

/**
 * QAOA over G(n, edge_probability) with a deterministic seed derived
 * from (n, probability) so every run of the benchmark sees the same
 * instance.
 */
Circuit qaoaErdosRenyiCircuit(int n, double edge_probability,
                              const QaoaParams &params = {});

} // namespace qbasis

#endif // QBASIS_APPS_QAOA_HPP
