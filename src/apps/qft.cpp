#include "apps/qft.hpp"

#include <cmath>

#include "linalg/types.hpp"
#include "util/logging.hpp"

namespace qbasis {

Circuit
qftCircuit(int n, bool with_swaps)
{
    if (n < 1)
        fatal("qftCircuit needs n >= 1");
    Circuit c(n);
    // Convention: qubit n-1 is the most significant.
    for (int i = n - 1; i >= 0; --i) {
        c.h(i);
        for (int j = i - 1; j >= 0; --j) {
            const double angle = kPi / std::pow(2.0, i - j);
            c.cphase(j, i, angle);
        }
    }
    if (with_swaps) {
        for (int i = 0; i < n / 2; ++i)
            c.swap(i, n - 1 - i);
    }
    return c;
}

Circuit
inverseQftCircuit(int n, bool with_swaps)
{
    const Circuit fwd = qftCircuit(n, with_swaps);
    Circuit inv(n);
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend();
         ++it) {
        Gate g = *it;
        // Invert angles; H and SWAP are self-inverse.
        for (double &p : g.params)
            p = -p;
        inv.append(std::move(g));
    }
    return inv;
}

Circuit
qftAdderCircuit(int n_bits)
{
    if (n_bits < 1)
        fatal("qftAdderCircuit needs n >= 1");
    const int n = n_bits;
    Circuit c(2 * n);
    // phi(b): QFT on the b register (no swaps needed; the phase
    // additions below account for the bit order directly).
    auto b_qubit = [n](int i) { return n + i; };

    for (int i = n - 1; i >= 0; --i) {
        c.h(b_qubit(i));
        for (int j = i - 1; j >= 0; --j)
            c.cphase(b_qubit(j), b_qubit(i),
                     kPi / std::pow(2.0, i - j));
    }
    // Controlled phase additions from the a register.
    for (int i = n - 1; i >= 0; --i) {
        for (int j = i; j >= 0; --j)
            c.cphase(j, b_qubit(i), kPi / std::pow(2.0, i - j));
    }
    // Inverse QFT on b.
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < i; ++j)
            c.cphase(b_qubit(j), b_qubit(i),
                     -kPi / std::pow(2.0, i - j));
        c.h(b_qubit(i));
    }
    return c;
}

} // namespace qbasis
