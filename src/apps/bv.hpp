#ifndef QBASIS_APPS_BV_HPP
#define QBASIS_APPS_BV_HPP

/**
 * @file
 * Bernstein-Vazirani benchmark [8]: recover a hidden bit string with
 * one oracle query. "bv n" uses n qubits: n-1 data qubits plus one
 * ancilla.
 */

#include <vector>

#include "circuit/circuit.hpp"

namespace qbasis {

/**
 * BV circuit on `total_qubits` qubits (data = total - 1, ancilla is
 * the last qubit). `secret` holds the hidden bits (size data count);
 * each set bit contributes one CX into the ancilla.
 */
Circuit bvCircuit(int total_qubits, const std::vector<bool> &secret);

/**
 * BV with the all-ones secret (the hardest instance; the paper does
 * not specify the secret, see DESIGN.md section 7).
 */
Circuit bvAllOnesCircuit(int total_qubits);

} // namespace qbasis

#endif // QBASIS_APPS_BV_HPP
