#include "apps/qaoa.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

Circuit
qaoaCircuit(int n, const std::vector<std::pair<int, int>> &edges,
            const QaoaParams &params)
{
    if (n < 2)
        fatal("qaoaCircuit needs n >= 2");
    Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int round = 0; round < params.rounds; ++round) {
        for (const auto &[u, v] : edges)
            c.rzz(u, v, 2.0 * params.gamma);
        for (int q = 0; q < n; ++q)
            c.rx(q, 2.0 * params.beta);
    }
    return c;
}

Circuit
qaoaErdosRenyiCircuit(int n, double edge_probability,
                      const QaoaParams &params)
{
    const uint64_t seed =
        0x9a0aull * 1000003ull + static_cast<uint64_t>(n) * 1009ull
        + static_cast<uint64_t>(std::llround(edge_probability * 1000));
    const auto edges = erdosRenyiGraph(n, edge_probability, seed);
    return qaoaCircuit(n, edges, params);
}

} // namespace qbasis
