#include "apps/graphs.hpp"

#include "util/rng.hpp"

namespace qbasis {

std::vector<std::pair<int, int>>
erdosRenyiGraph(int n, double p, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (rng.uniform() < p)
                edges.emplace_back(i, j);
    return edges;
}

} // namespace qbasis
