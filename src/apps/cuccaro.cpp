#include "apps/cuccaro.hpp"

#include "util/logging.hpp"

namespace qbasis {

void
appendToffoli(Circuit &c, int ctrl_a, int ctrl_b, int target)
{
    // Standard 6-CNOT, 7-T decomposition.
    c.h(target);
    c.cx(ctrl_b, target);
    c.append(makeGate1(GateKind::Tdg, target));
    c.cx(ctrl_a, target);
    c.t(target);
    c.cx(ctrl_b, target);
    c.append(makeGate1(GateKind::Tdg, target));
    c.cx(ctrl_a, target);
    c.t(ctrl_b);
    c.t(target);
    c.h(target);
    c.cx(ctrl_a, ctrl_b);
    c.t(ctrl_a);
    c.append(makeGate1(GateKind::Tdg, ctrl_b));
    c.cx(ctrl_a, ctrl_b);
}

namespace {

/** MAJ block: (x, y, z) with carry x, sum bit y, operand z. */
void
maj(Circuit &c, int x, int y, int z)
{
    c.cx(z, y);
    c.cx(z, x);
    appendToffoli(c, x, y, z);
}

/** UMA block (2-CNOT variant). */
void
uma(Circuit &c, int x, int y, int z)
{
    appendToffoli(c, x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

} // namespace

Circuit
cuccaroAdderCircuit(int n_bits)
{
    if (n_bits < 1)
        fatal("cuccaroAdderCircuit needs n >= 1");
    const int n = n_bits;
    Circuit c(2 * n + 2);
    auto a = [](int i) { return 1 + i; };
    auto b = [n](int i) { return 1 + n + i; };
    const int carry_in = 0;
    const int carry_out = 2 * n + 1;

    maj(c, carry_in, b(0), a(0));
    for (int i = 1; i < n; ++i)
        maj(c, a(i - 1), b(i), a(i));
    c.cx(a(n - 1), carry_out);
    for (int i = n - 1; i >= 1; --i)
        uma(c, a(i - 1), b(i), a(i));
    uma(c, carry_in, b(0), a(0));
    return c;
}

Circuit
cuccaroAdderByTotalQubits(int total_qubits)
{
    if (total_qubits < 4 || total_qubits % 2 != 0)
        fatal("cuccaro total qubits must be even and >= 4 (got %d)",
              total_qubits);
    return cuccaroAdderCircuit((total_qubits - 2) / 2);
}

} // namespace qbasis
