#ifndef QBASIS_APPS_WORKLOADS_HPP
#define QBASIS_APPS_WORKLOADS_HPP

/**
 * @file
 * Registered workload zoo: the benchmark circuits beyond
 * QFT/QAOA/BV/Cuccaro, built from the standard elementary-gate
 * constructions (Barenco et al.) and exposed through a name-keyed
 * registry so benches and the serving layer can draw workloads
 * without hard-coding generators.
 *
 * Families (see docs/workloads.md for the full catalog):
 *  - trotter:    first-order trotterized Ising / Heisenberg
 *                evolution on a nearest-neighbor chain. Fixed-angle
 *                RZZ terms map to one Weyl class per edge, so
 *                repeats are memo/shared-cache traffic; a fresh
 *                angle per request shifts the class and stresses
 *                the full synthesis path instead.
 *  - sampling:   random-circuit sampling layers (brickwork CZ/CX
 *                entanglers under seeded random 1Q gates) -- the
 *                entangler class is shared across every edge, so
 *                RCS measures pure cross-edge dedupe at fan-out.
 *  - arithmetic: deep ripple-carry adder chains (Cuccaro adders
 *                applied back-to-back), the long-circuit stress for
 *                routing and the plan-replay tier.
 *
 * Every generator is a pure function of WorkloadParams, so request
 * streams built from the zoo inherit the serving layer's determinism
 * contract (serve/api.hpp).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "serve/api.hpp"

namespace qbasis {

/** Knobs of one zoo circuit (every generator reads a subset). */
struct WorkloadParams
{
    int qubits = 4;       ///< Register size (generators clamp to
                          ///< their own minimum).
    int depth = 1;        ///< Trotter steps / RCS layers / chained
                          ///< adders.
    double theta = 0.35;  ///< Rotation angle of the trotterized
                          ///< two-qubit terms.
    uint64_t seed = 2022; ///< RCS gate-sampling seed.
};

/** One registered generator of the zoo. */
struct WorkloadInfo
{
    std::string name;        ///< Registry key ("ising", ...).
    std::string family;      ///< "trotter", "sampling", "arithmetic".
    std::string description; ///< One-line catalog entry.
    Circuit (*make)(const WorkloadParams &params);
};

/**
 * First-order trotterized transverse-field Ising evolution on a
 * nearest-neighbor chain: per step, RX(theta) on every qubit, then
 * RZZ(theta) over even bonds, then odd bonds (brickwork order keeps
 * the logical depth independent of the chain length).
 */
Circuit trotterIsingCircuit(const WorkloadParams &params);

/**
 * First-order trotterized Heisenberg (XXX) evolution on a chain:
 * per bond, the XX and YY terms are RZZ conjugated into the X/Y
 * bases by H and RX(+-pi/2) respectively, then the bare ZZ term --
 * three two-qubit interactions per bond, all in the same RZZ(theta)
 * Weyl class (basis changes are one-qubit).
 */
Circuit trotterHeisenbergCircuit(const WorkloadParams &params);

/**
 * Random-circuit sampling layers: per layer, a seeded random
 * one-qubit gate from {sqrt-X, sqrt-Y, T} on every qubit, then CZ
 * brickwork entanglers on alternating bonds.
 */
Circuit rcsLayersCircuit(const WorkloadParams &params);

/**
 * Deep ripple-carry adder chain: `depth` Cuccaro adders applied
 * back-to-back on the same (even-sized, >= 6 qubit) register.
 */
Circuit adderChainCircuit(const WorkloadParams &params);

/** The full registry, in stable catalog order. */
const std::vector<WorkloadInfo> &workloadZoo();

/** Registry lookup by name; nullptr when unknown. */
const WorkloadInfo *findWorkload(const std::string &name);

/** Build a zoo circuit by registry name (fatal on unknown names). */
Circuit makeWorkload(const std::string &name,
                     const WorkloadParams &params = {});

/**
 * Build a serve/api CompileRequest from a zoo entry: the request
 * name is "<workload><qubits>" (e.g. "ising12"), matching the
 * naming convention of the existing benchmark circuits.
 */
CompileRequest workloadRequest(uint64_t request_id, int device_id,
                               const std::string &name,
                               const WorkloadParams &params = {});

} // namespace qbasis

#endif // QBASIS_APPS_WORKLOADS_HPP
