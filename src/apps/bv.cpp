#include "apps/bv.hpp"

#include "util/logging.hpp"

namespace qbasis {

Circuit
bvCircuit(int total_qubits, const std::vector<bool> &secret)
{
    if (total_qubits < 2)
        fatal("bvCircuit needs at least 2 qubits");
    const int data = total_qubits - 1;
    if (secret.size() != static_cast<size_t>(data))
        fatal("secret size %zu != data qubit count %d", secret.size(),
              data);

    Circuit c(total_qubits);
    const int anc = data;
    // Prepare |-> on the ancilla, |+> on the data qubits.
    c.x(anc);
    c.h(anc);
    for (int q = 0; q < data; ++q)
        c.h(q);
    // Oracle: phase kickback per secret bit.
    for (int q = 0; q < data; ++q) {
        if (secret[q])
            c.cx(q, anc);
    }
    // Decode.
    for (int q = 0; q < data; ++q)
        c.h(q);
    c.h(anc);
    c.x(anc);
    return c;
}

Circuit
bvAllOnesCircuit(int total_qubits)
{
    return bvCircuit(total_qubits,
                     std::vector<bool>(total_qubits - 1, true));
}

} // namespace qbasis
