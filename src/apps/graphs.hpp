#ifndef QBASIS_APPS_GRAPHS_HPP
#define QBASIS_APPS_GRAPHS_HPP

/**
 * @file
 * Random graph generation for the QAOA benchmarks: Erdos-Renyi
 * G(n, p) with a fixed seed per instance (paper Table II uses edge
 * probabilities 0.1 and 0.33).
 */

#include <cstdint>
#include <utility>
#include <vector>

namespace qbasis {

/** Erdos-Renyi G(n, p) edge list (deterministic for a given seed). */
std::vector<std::pair<int, int>> erdosRenyiGraph(int n, double p,
                                                 uint64_t seed);

} // namespace qbasis

#endif // QBASIS_APPS_GRAPHS_HPP
