#ifndef QBASIS_APPS_QFT_HPP
#define QBASIS_APPS_QFT_HPP

/**
 * @file
 * Quantum Fourier transform benchmarks: the plain QFT circuit and
 * the QFT-based adder of Ruiz-Perez and Garcia-Escartin [10] used in
 * the paper's evaluation ("qft n" rows of Table II).
 */

#include "circuit/circuit.hpp"

namespace qbasis {

/**
 * Plain n-qubit QFT: H + controlled-phase ladder, with the final
 * qubit-reversal SWAPs (`with_swaps`). The controlled phases are
 * CP(pi/2^k), the "CRZ gates in the QFT benchmarks" of Section VII.
 */
Circuit qftCircuit(int n, bool with_swaps = true);

/** Inverse QFT. */
Circuit inverseQftCircuit(int n, bool with_swaps = true);

/**
 * QFT adder on 2n qubits: computes (a + b) mod 2^n into the b
 * register. Register layout: qubits [0, n) hold a (a0 = LSB),
 * qubits [n, 2n) hold b.
 */
Circuit qftAdderCircuit(int n_bits);

} // namespace qbasis

#endif // QBASIS_APPS_QFT_HPP
