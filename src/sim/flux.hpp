#ifndef QBASIS_SIM_FLUX_HPP
#define QBASIS_SIM_FLUX_HPP

/**
 * @file
 * Flux dependence of the tunable coupler frequency.
 *
 * omega_c(Phi) = omega_max sqrt(|cos(pi Phi)|), the standard
 * flux-tunable-element curve (Phi in units of Phi0). Strong-drive
 * nonstandard behaviour emerges physically from the curvature of
 * this map: a sinusoidal flux drive produces a rectified DC shift
 * and harmonics of the coupler frequency, which reintroduces
 * transient ZZ during the pulse (paper Sections IV and VIII-B).
 */

namespace qbasis {

/** Tunable-coupler flux curve. */
class FluxCurve
{
  public:
    /** Construct with the zero-flux (maximum) coupler frequency. */
    explicit FluxCurve(double omega_max_rad_ns);

    /** Coupler frequency at flux phi (units of Phi0). */
    double frequency(double phi) const;

    /** Flux in [0, 1/2) that gives the requested frequency. */
    double fluxForFrequency(double omega_rad_ns) const;

    /** d omega / d phi at the given flux. */
    double slope(double phi) const;

    /** Maximum (zero-flux) frequency. */
    double omegaMax() const { return omega_max_; }

  private:
    double omega_max_;
};

} // namespace qbasis

#endif // QBASIS_SIM_FLUX_HPP
