#ifndef QBASIS_SIM_PROPAGATOR_HPP
#define QBASIS_SIM_PROPAGATOR_HPP

/**
 * @file
 * Time-domain simulation of the unit cell (paper Section VIII-B):
 *
 *  1. bias the coupler to the zero-ZZ point,
 *  2. pick the entangling pulse drive frequency that maximizes
 *     population swapping between the qubits,
 *  3. integrate the Schrodinger equation for the flux-modulated
 *     Hamiltonian (rectangular envelope) and project onto the
 *     dressed computational subspace, producing a Cartan trajectory
 *     sampled at the 1 ns controller resolution,
 *
 * with leakage tracked via the norm lost from the computational
 * subspace. Integration happens in the interaction picture of the
 * static diagonal Hamiltonian (phases carried by per-coupling
 * rotors), so the RK4 step is limited by the detunings rather than
 * by the ~5 GHz qubit frequencies.
 */

#include "sim/bias.hpp"
#include "sim/flux.hpp"
#include "sim/hamiltonian.hpp"
#include "weyl/trajectory.hpp"

namespace qbasis {

/** Numerical options of the simulator. */
struct SimOptions
{
    double dt = 0.005;        ///< RK4 step for trajectories (ns).
    double probe_dt = 0.02;   ///< Coarser step for calibration probes.
    double sample_dt = 1.0;   ///< Trajectory sampling (controller res).
    double bias_margin = 1.5; ///< rad/ns margin from qubit freqs in
                              ///< the zero-ZZ scan window.
    int drive_scan_points = 11;   ///< Coarse drive-frequency scan.
    double drive_scan_span = 0.5; ///< Half-width of the scan (rad/ns).
    double probe_duration = 120.0; ///< Population-probe length (ns).
};

/** One qubit-pair simulator instance. */
class PairSimulator
{
  public:
    /**
     * @param params           unit-cell parameters (coupler.omega is
     *                         ignored; the bias search sets it).
     * @param coupler_omega_max zero-flux coupler frequency (rad/ns).
     */
    PairSimulator(const PairDeviceParams &params,
                  double coupler_omega_max, SimOptions opts = {});

    /** Zero-ZZ bias results. */
    double omegaC0() const { return omega_c0_; }
    double phiDc() const { return phi_dc_; }
    double zzResidual() const { return zz_residual_; }

    /** Dressed qubit-qubit splitting |E10 - E01| at the bias. */
    double dressedSplitting() const;

    /** Dressed states at the bias point. */
    const DressedStates &dressed() const { return dressed_; }

    /**
     * Coarse + fine scan for the drive frequency maximizing
     * population transfer at amplitude `xi` (flux units of Phi0).
     * This is calibration step 1 of Section VI.
     */
    double calibrateDriveFrequency(double xi) const;

    /**
     * Peak |<10|psi(t)>|^2 from |01> over the probe window -- the
     * "population swapping" score used by the drive calibration.
     */
    double swapTransferScore(double xi, double omega_d,
                             double duration_ns, double dt) const;

    /**
     * Integrate the driven evolution and sample the effective 2Q
     * gate every `sample_dt` ns up to `max_ns`.
     */
    Trajectory simulateTrajectory(double xi, double omega_d,
                                  double max_ns) const;

    const PairHamiltonian &hamiltonian() const { return ham_; }
    const SimOptions &options() const { return opts_; }

  private:
    /** delta omega_c(t) from the flux drive. */
    double driveDelta(double xi, double omega_d, double t) const;

    PairHamiltonian ham_;
    FluxCurve flux_;
    SimOptions opts_;
    double omega_c0_ = 0.0;
    double phi_dc_ = 0.0;
    double zz_residual_ = 0.0;
    DressedStates dressed_;
    std::vector<double> bare_energies_;
    std::vector<CouplingEntry> couplings_; ///< With energy gaps set.
};

} // namespace qbasis

#endif // QBASIS_SIM_PROPAGATOR_HPP
