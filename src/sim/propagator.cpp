#include "sim/propagator.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/polar.hpp"
#include "util/logging.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

namespace {

/**
 * Interaction-picture right-hand side evaluator with per-coupling
 * phase rotors: k = -i H_I(t) psi for a panel of columns.
 */
class RhsEvaluator
{
  public:
    RhsEvaluator(const std::vector<CouplingEntry> &couplings,
                 const std::vector<double> &coupler_occ, int dim,
                 int cols, double dt)
        : couplings_(couplings), coupler_occ_(coupler_occ), dim_(dim),
          cols_(cols)
    {
        phase_.resize(couplings.size());
        half_step_.resize(couplings.size());
        for (size_t e = 0; e < couplings.size(); ++e) {
            phase_[e] = Complex(1.0, 0.0);
            half_step_[e] = std::exp(
                Complex(0.0, couplings[e].energy_gap * dt * 0.5));
        }
    }

    /**
     * Evaluate k = -i H_I(t) psi using the rotor bank at `substep`
     * half-steps past the rotor base time (0, 1, or 2).
     */
    void
    eval(const std::vector<Complex> &psi, int substep,
         double drive_delta, std::vector<Complex> &out) const
    {
        std::fill(out.begin(), out.end(), Complex{});
        for (size_t e = 0; e < couplings_.size(); ++e) {
            Complex ph = phase_[e];
            if (substep == 1)
                ph *= half_step_[e];
            else if (substep == 2)
                ph *= half_step_[e] * half_step_[e];
            const int i = couplings_[e].row;
            const int j = couplings_[e].col;
            const Complex vij = couplings_[e].value * ph;
            const Complex vji = std::conj(vij);
            for (int c = 0; c < cols_; ++c) {
                out[i * cols_ + c] += vij * psi[j * cols_ + c];
                out[j * cols_ + c] += vji * psi[i * cols_ + c];
            }
        }
        if (drive_delta != 0.0) {
            for (int i = 0; i < dim_; ++i) {
                const double d = drive_delta * coupler_occ_[i];
                if (d == 0.0)
                    continue;
                for (int c = 0; c < cols_; ++c)
                    out[i * cols_ + c] += d * psi[i * cols_ + c];
            }
        }
        // Multiply by -i.
        for (auto &v : out)
            v = Complex(v.imag(), -v.real());
    }

    /** Advance the rotor base time by one full step. */
    void
    advance()
    {
        for (size_t e = 0; e < phase_.size(); ++e)
            phase_[e] *= half_step_[e] * half_step_[e];
        if (++steps_ % 8192 == 0) {
            for (auto &p : phase_)
                p /= std::abs(p);
        }
    }

  private:
    const std::vector<CouplingEntry> &couplings_;
    const std::vector<double> &coupler_occ_;
    int dim_;
    int cols_;
    std::vector<Complex> phase_;
    std::vector<Complex> half_step_;
    mutable size_t steps_ = 0;
};

} // namespace

PairSimulator::PairSimulator(const PairDeviceParams &params,
                             double coupler_omega_max, SimOptions opts)
    : ham_(params), flux_(coupler_omega_max), opts_(opts)
{
    const double w_lo =
        std::min(params.qubit_a.omega, params.qubit_b.omega);
    const double w_hi =
        std::max(params.qubit_a.omega, params.qubit_b.omega);
    // Keep the scan window above the coupler two-photon resonance
    // 2 w_c + alpha_c = w_a + w_b, whose hybridization would fool
    // the zero-ZZ search.
    const double two_photon =
        0.5 * (params.qubit_a.omega + params.qubit_b.omega
               - params.coupler.alpha);
    const double scan_lo =
        std::max(w_lo, two_photon) + opts_.bias_margin;

    const ZzBiasResult bias = findZeroZzBias(
        ham_, scan_lo, w_hi - opts_.bias_margin);
    omega_c0_ = bias.omega_c0;
    zz_residual_ = bias.zz_residual;
    phi_dc_ = flux_.fluxForFrequency(omega_c0_);

    dressed_ = dressedComputationalStates(ham_, omega_c0_);
    bare_energies_ = ham_.bareEnergies(omega_c0_);
    couplings_ = ham_.couplings();
    for (auto &e : couplings_) {
        e.energy_gap =
            bare_energies_[e.row] - bare_energies_[e.col];
    }
}

double
PairSimulator::dressedSplitting() const
{
    return std::abs(dressed_.energies[2] - dressed_.energies[1]);
}

double
PairSimulator::driveDelta(double xi, double omega_d, double t) const
{
    const double phi = phi_dc_ + xi * std::sin(omega_d * t);
    return flux_.frequency(phi) - omega_c0_;
}

double
PairSimulator::swapTransferScore(double xi, double omega_d,
                                 double duration_ns, double dt) const
{
    const int dim = ham_.dim();
    const int cols = 1;
    RhsEvaluator rhs(couplings_, ham_.couplerOccupation(), dim, cols,
                     dt);

    // Start in the dressed |01> state.
    std::vector<Complex> psi(dim);
    for (int i = 0; i < dim; ++i)
        psi[i] = dressed_.vectors(i, 1);

    // Dressed |10> bra, for the transfer projection.
    std::vector<Complex> target(dim);
    for (int i = 0; i < dim; ++i)
        target[i] = dressed_.vectors(i, 2);

    std::vector<Complex> k1(dim), k2(dim), k3(dim), k4(dim), tmp(dim);
    const int steps =
        static_cast<int>(std::ceil(duration_ns / dt));
    double best = 0.0;
    double t = 0.0;
    for (int s = 0; s < steps; ++s) {
        rhs.eval(psi, 0, driveDelta(xi, omega_d, t), k1);
        for (int i = 0; i < dim; ++i)
            tmp[i] = psi[i] + 0.5 * dt * k1[i];
        rhs.eval(tmp, 1, driveDelta(xi, omega_d, t + 0.5 * dt), k2);
        for (int i = 0; i < dim; ++i)
            tmp[i] = psi[i] + 0.5 * dt * k2[i];
        rhs.eval(tmp, 1, driveDelta(xi, omega_d, t + 0.5 * dt), k3);
        for (int i = 0; i < dim; ++i)
            tmp[i] = psi[i] + dt * k3[i];
        rhs.eval(tmp, 2, driveDelta(xi, omega_d, t + dt), k4);
        for (int i = 0; i < dim; ++i) {
            psi[i] += dt / 6.0
                      * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        rhs.advance();
        t += dt;

        // Projection onto the (bare-phase-rotating) target: the
        // interaction picture keeps populations directly comparable.
        Complex ov{};
        for (int i = 0; i < dim; ++i)
            ov += std::conj(target[i]) * psi[i];
        best = std::max(best, std::norm(ov));
    }
    return best;
}

double
PairSimulator::calibrateDriveFrequency(double xi) const
{
    const double center = dressedSplitting();
    double best_w = center;
    double best_score = -1.0;

    // The transfer probe needs roughly half a swap period; the swap
    // rate grows linearly with the amplitude, so strong drives can
    // use much shorter probes.
    const double probe_ns =
        xi > 1e-6
            ? std::min(opts_.probe_duration, 0.9 / xi + 20.0)
            : opts_.probe_duration;

    auto scan = [&](double lo, double hi, int points) {
        for (int i = 0; i < points; ++i) {
            const double w =
                lo + (hi - lo) * i / std::max(points - 1, 1);
            const double score =
                swapTransferScore(xi, w, probe_ns, opts_.probe_dt);
            if (score > best_score) {
                best_score = score;
                best_w = w;
            }
        }
    };

    scan(center - opts_.drive_scan_span,
         center + opts_.drive_scan_span, opts_.drive_scan_points);
    // Two refinement passes around the running winner; the final
    // resolution must resolve detunings small compared to the
    // effective coupling J to land full population transfer.
    const double span2 =
        2.0 * opts_.drive_scan_span / (opts_.drive_scan_points - 1);
    scan(best_w - span2, best_w + span2, 9);
    const double span3 = span2 / 4.0;
    scan(best_w - span3, best_w + span3, 9);
    return best_w;
}

Trajectory
PairSimulator::simulateTrajectory(double xi, double omega_d,
                                  double max_ns) const
{
    const int dim = ham_.dim();
    const int cols = 4;
    const double dt = opts_.dt;
    RhsEvaluator rhs(couplings_, ham_.couplerOccupation(), dim, cols,
                     dt);

    // Panel initialized with the dressed computational columns.
    std::vector<Complex> psi(dim * cols);
    for (int i = 0; i < dim; ++i)
        for (int c = 0; c < cols; ++c)
            psi[i * cols + c] = dressed_.vectors(i, c);

    std::vector<Complex> k1(psi.size()), k2(psi.size()),
        k3(psi.size()), k4(psi.size()), tmp(psi.size());

    Trajectory traj;

    auto sampleGate = [&](double t) {
        // G_kl = e^{i E~_k t} sum_i conj(V(i,k)) e^{-i E_i t} P(i,l).
        Mat4 g;
        for (int k = 0; k < 4; ++k) {
            const Complex frame =
                std::exp(Complex(0.0, dressed_.energies[k] * t));
            for (int l = 0; l < 4; ++l) {
                Complex s{};
                for (int i = 0; i < dim; ++i) {
                    const Complex lab =
                        std::exp(Complex(0.0,
                                         -bare_energies_[i] * t))
                        * psi[i * cols + l];
                    s += std::conj(dressed_.vectors(i, k)) * lab;
                }
                g(k, l) = frame * s;
            }
        }
        double max_leak = 0.0;
        for (int l = 0; l < 4; ++l) {
            double col_norm = 0.0;
            for (int k = 0; k < 4; ++k)
                col_norm += std::norm(g(k, l));
            max_leak = std::max(max_leak, 1.0 - col_norm);
        }
        TrajectoryPoint pt;
        pt.duration = t;
        pt.unitary = nearestUnitary4(g);
        pt.coords = cartanCoords(pt.unitary);
        pt.leakage = std::max(max_leak, 0.0);
        traj.append(std::move(pt));
    };

    sampleGate(0.0);
    const int steps = static_cast<int>(std::ceil(max_ns / dt));
    double t = 0.0;
    double next_sample = opts_.sample_dt;
    for (int s = 0; s < steps; ++s) {
        rhs.eval(psi, 0, driveDelta(xi, omega_d, t), k1);
        for (size_t i = 0; i < psi.size(); ++i)
            tmp[i] = psi[i] + 0.5 * dt * k1[i];
        rhs.eval(tmp, 1, driveDelta(xi, omega_d, t + 0.5 * dt), k2);
        for (size_t i = 0; i < psi.size(); ++i)
            tmp[i] = psi[i] + 0.5 * dt * k2[i];
        rhs.eval(tmp, 1, driveDelta(xi, omega_d, t + 0.5 * dt), k3);
        for (size_t i = 0; i < psi.size(); ++i)
            tmp[i] = psi[i] + dt * k3[i];
        rhs.eval(tmp, 2, driveDelta(xi, omega_d, t + dt), k4);
        for (size_t i = 0; i < psi.size(); ++i) {
            psi[i] += dt / 6.0
                      * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        rhs.advance();
        t += dt;
        if (t + 1e-9 >= next_sample) {
            sampleGate(t);
            next_sample += opts_.sample_dt;
        }
    }
    return traj;
}

} // namespace qbasis
