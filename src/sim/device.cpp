#include "sim/device.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

CouplingMap
makeCoupling(const GridDeviceParams &params)
{
    switch (params.topology) {
    case DeviceTopology::HeavyHex:
        return CouplingMap::heavyHex(params.rows, params.cols);
    case DeviceTopology::Grid:
        break;
    }
    return CouplingMap::grid(params.rows, params.cols);
}

} // namespace

GridDevice::GridDevice(const GridDeviceParams &params)
    : params_(params), coupling_(makeCoupling(params))
{
    if (params.rows < 1 || params.cols < 1)
        fatal("GridDevice needs positive dimensions");

    group_.resize(coupling_.numQubits());
    for (int q = 0; q < coupling_.numQubits(); ++q) {
        if (params_.topology == DeviceTopology::Grid) {
            const int r = q / params_.cols;
            const int c = q % params_.cols;
            group_[q] = (r + c) % 2 == 1;
        } else {
            // Bipartite lattice: color by BFS parity from qubit 0
            // (equals the checkerboard color on a grid).
            group_[q] = coupling_.distance(0, q) % 2 == 1;
        }
    }

    Rng rng(params.seed);
    freq_.resize(coupling_.numQubits());
    for (int q = 0; q < coupling_.numQubits(); ++q) {
        const double mean = isHighFrequency(q) ? params.f_high_ghz
                                               : params.f_low_ghz;
        freq_[q] = ghz(rng.normal(mean, params.rel_std * mean));
    }
}

PairDeviceParams
GridDevice::edgeParams(int edge_id) const
{
    const auto &[lo, hi] = coupling_.edges().at(edge_id);
    PairDeviceParams p;
    p.qubit_a.omega = freq_[lo];
    p.qubit_a.alpha = ghz(params_.alpha_q_ghz);
    p.qubit_b.omega = freq_[hi];
    p.qubit_b.alpha = ghz(params_.alpha_q_ghz);
    p.coupler.omega = 0.0; // set by the bias search
    p.coupler.alpha = ghz(params_.alpha_c_ghz);
    p.g_ac = ghz(params_.g_qc_ghz);
    p.g_bc = ghz(params_.g_qc_ghz);
    p.g_ab = ghz(params_.g_qq_ghz);
    p.levels_q = params_.levels_q;
    p.levels_c = params_.levels_c;
    return p;
}

double
GridDevice::couplerOmegaMax() const
{
    return ghz(params_.coupler_max_ghz);
}

} // namespace qbasis
