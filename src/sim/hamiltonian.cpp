#include "sim/hamiltonian.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

PairHamiltonian::PairHamiltonian(const PairDeviceParams &params)
    : params_(params)
{
    const int lq = params.levels_q;
    const int lc = params.levels_c;
    if (lq < 2 || lc < 2)
        fatal("PairHamiltonian needs at least 2 levels per mode");
    dim_ = lq * lq * lc;

    coupler_occ_.resize(dim_);
    for (int idx = 0; idx < dim_; ++idx) {
        int na, nb, nc;
        occupations(idx, na, nb, nc);
        coupler_occ_[idx] = nc;
    }

    // Exchange terms: -g (x' y + x y'), matrix elements
    // <..., nx+1, ny-1, ...| x' y |..., nx, ny, ...>
    //   = sqrt((nx+1) ny).
    auto addExchange = [this, lq, lc](double g, char mode_x,
                                      char mode_y) {
        if (g == 0.0)
            return;
        for (int idx = 0; idx < dim_; ++idx) {
            int n[3];
            occupations(idx, n[0], n[1], n[2]);
            auto level = [&](char m) -> int & {
                return n[m == 'a' ? 0 : (m == 'b' ? 1 : 2)];
            };
            auto cap = [&](char m) {
                return m == 'c' ? lc : lq;
            };
            // Raise x, lower y.
            int &nx = level(mode_x);
            int &ny = level(mode_y);
            if (nx + 1 >= cap(mode_x) + 0 || ny < 1)
                continue;
            if (nx + 1 > cap(mode_x) - 1)
                continue;
            const double val =
                -g * std::sqrt((nx + 1.0) * ny);
            nx += 1;
            ny -= 1;
            const int jdx = index(n[0], n[1], n[2]);
            nx -= 1;
            ny += 1;
            CouplingEntry e;
            e.row = std::min(idx, jdx);
            e.col = std::max(idx, jdx);
            e.value = val;
            couplings_.push_back(e);
        }
    };
    addExchange(params.g_ab, 'a', 'b');
    addExchange(params.g_bc, 'b', 'c');
    addExchange(params.g_ac, 'c', 'a');
}

int
PairHamiltonian::index(int na, int nb, int nc) const
{
    const int lq = params_.levels_q;
    const int lc = params_.levels_c;
    return (na * lq + nb) * lc + nc;
}

void
PairHamiltonian::occupations(int idx, int &na, int &nb, int &nc) const
{
    const int lq = params_.levels_q;
    const int lc = params_.levels_c;
    nc = idx % lc;
    const int rest = idx / lc;
    nb = rest % lq;
    na = rest / lq;
}

std::vector<double>
PairHamiltonian::bareEnergies(double omega_c) const
{
    std::vector<double> e(dim_);
    for (int idx = 0; idx < dim_; ++idx) {
        int na, nb, nc;
        occupations(idx, na, nb, nc);
        auto duffing = [](int n, double w, double a) {
            return w * n + 0.5 * a * n * (n - 1);
        };
        e[idx] = duffing(na, params_.qubit_a.omega,
                         params_.qubit_a.alpha)
                 + duffing(nb, params_.qubit_b.omega,
                           params_.qubit_b.alpha)
                 + duffing(nc, omega_c, params_.coupler.alpha);
    }
    return e;
}

CMat
PairHamiltonian::staticHamiltonian(double omega_c) const
{
    CMat h(dim_, dim_);
    const std::vector<double> diag = bareEnergies(omega_c);
    for (int i = 0; i < dim_; ++i)
        h(i, i) = diag[i];
    for (const CouplingEntry &e : couplings_) {
        h(e.row, e.col) += e.value;
        h(e.col, e.row) += e.value;
    }
    return h;
}

std::vector<int>
PairHamiltonian::computationalIndices() const
{
    return {index(0, 0, 0), index(0, 1, 0), index(1, 0, 0),
            index(1, 1, 0)};
}

} // namespace qbasis
