#include "sim/bias.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eig_herm.hpp"
#include "util/logging.hpp"

namespace qbasis {

DressedStates
dressedComputationalStates(const PairHamiltonian &h, double omega_c)
{
    const CMat hmat = h.staticHamiltonian(omega_c);
    const HermEig eig = jacobiEigHerm(hmat);
    const int dim = h.dim();
    const std::vector<int> comp = h.computationalIndices();

    DressedStates out;
    out.vectors = CMat(dim, 4);

    std::vector<bool> taken(dim, false);
    for (int k = 0; k < 4; ++k) {
        const int bare = comp[k];
        int best = -1;
        double best_overlap = -1.0;
        for (int e = 0; e < dim; ++e) {
            if (taken[e])
                continue;
            const double ov = std::norm(eig.vectors(bare, e));
            if (ov > best_overlap) {
                best_overlap = ov;
                best = e;
            }
        }
        if (best < 0 || best_overlap < 0.5) {
            warn("dressed state %d has weak bare overlap %.3f "
                 "(strong hybridization at this bias)", k,
                 best_overlap);
        }
        taken[best] = true;
        // Phase fix: bare component real positive.
        Complex phase = eig.vectors(bare, best);
        const double mag = std::abs(phase);
        phase = mag > 1e-12 ? phase / mag : Complex(1.0);
        for (int i = 0; i < dim; ++i)
            out.vectors(i, k) = eig.vectors(i, best) / phase;
        out.energies[k] = eig.values[best];
    }
    return out;
}

double
staticZZ(const PairHamiltonian &h, double omega_c)
{
    return dressedComputationalStates(h, omega_c).staticZZ();
}

ZzBiasResult
findZeroZzBias(const PairHamiltonian &h, double omega_lo,
               double omega_hi, int scan_points, double tol)
{
    if (omega_hi <= omega_lo)
        fatal("findZeroZzBias: empty frequency window");
    if (scan_points < 3)
        scan_points = 3;

    // Coarse scan.
    std::vector<double> omegas(scan_points), zz(scan_points);
    for (int i = 0; i < scan_points; ++i) {
        omegas[i] = omega_lo
                    + (omega_hi - omega_lo) * i / (scan_points - 1);
        zz[i] = staticZZ(h, omegas[i]);
    }

    ZzBiasResult result;
    // Collect all sign-change brackets and keep the gentlest one:
    // sharp sign flips are resonance artifacts (e.g. the coupler
    // two-photon level crossing |11>), not the smooth dispersive
    // zero-ZZ point the bias procedure targets.
    int bracket = -1;
    double bracket_mag = 1e300;
    for (int i = 0; i + 1 < scan_points; ++i) {
        if (zz[i] == 0.0) {
            result.omega_c0 = omegas[i];
            result.zz_residual = 0.0;
            result.found_zero = true;
            return result;
        }
        if (zz[i] * zz[i + 1] < 0.0) {
            const double mag =
                std::max(std::abs(zz[i]), std::abs(zz[i + 1]));
            if (mag < bracket_mag) {
                bracket_mag = mag;
                bracket = i;
            }
        }
    }

    if (bracket < 0) {
        // No crossing: return the scanned minimum.
        int best = 0;
        for (int i = 1; i < scan_points; ++i)
            if (std::abs(zz[i]) < std::abs(zz[best]))
                best = i;
        result.omega_c0 = omegas[best];
        result.zz_residual = std::abs(zz[best]);
        result.found_zero = false;
        warn("no zero-ZZ crossing in [%.3f, %.3f] rad/ns; residual "
             "ZZ %.3e", omega_lo, omega_hi, result.zz_residual);
        return result;
    }

    double lo = omegas[bracket], hi = omegas[bracket + 1];
    double f_lo = zz[bracket];
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double f_mid = staticZZ(h, mid);
        if (std::abs(f_mid) < tol) {
            result.omega_c0 = mid;
            result.zz_residual = std::abs(f_mid);
            result.found_zero = true;
            return result;
        }
        if (f_lo * f_mid < 0.0) {
            hi = mid;
        } else {
            lo = mid;
            f_lo = f_mid;
        }
    }
    result.omega_c0 = 0.5 * (lo + hi);
    result.zz_residual = std::abs(staticZZ(h, result.omega_c0));
    result.found_zero = true;
    return result;
}

} // namespace qbasis
