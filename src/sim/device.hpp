#ifndef QBASIS_SIM_DEVICE_HPP
#define QBASIS_SIM_DEVICE_HPP

/**
 * @file
 * The paper's simulated device (Fig. 7): a rows x cols grid of
 * fixed-frequency transmons in two frequency groups arranged as a
 * checkerboard (every edge couples a low- and a high-frequency
 * qubit), frequencies sampled from two normal distributions whose
 * means differ by 2 GHz with 5% relative standard deviation.
 */

#include <cstdint>

#include "circuit/coupling.hpp"
#include "sim/hamiltonian.hpp"

namespace qbasis {

/**
 * Lattice family of a simulated device. Grid is the paper's Fig. 7
 * topology; HeavyHex is the IBM-style sparse lattice the paper's
 * Section VI discusses for parallel calibration.
 */
enum class DeviceTopology
{
    Grid,     ///< rows x cols square lattice (CouplingMap::grid).
    HeavyHex, ///< rows x cols hexagon cells (CouplingMap::heavyHex).
};

/** Parameters of the simulated grid device. */
struct GridDeviceParams
{
    int rows = 10;
    int cols = 10;
    double f_low_ghz = 4.2;      ///< Low-group mean frequency.
    double f_high_ghz = 6.2;     ///< High-group mean (2 GHz above).
    double rel_std = 0.05;       ///< 5% relative standard deviation.
    double alpha_q_ghz = -0.25;  ///< Transmon anharmonicity.
    double alpha_c_ghz = 1.0;    ///< Coupler (positive) anharmonicity;
                                 ///< large enough to keep the
                                 ///< two-photon level away from |11>.
    double coupler_max_ghz = 7.5;  ///< Zero-flux coupler frequency
                                 ///< (sets a moderate flux slope at
                                 ///< the bias point so strong drives
                                 ///< do not sweep the coupler through
                                 ///< the qubit resonances).
    double g_qc_ghz = 0.20;      ///< Qubit-coupler coupling.
    double g_qq_ghz = 0.009;     ///< Direct qubit-qubit coupling.
    int levels_q = 3;            ///< Levels per transmon.
    int levels_c = 3;            ///< Levels for the coupler.
    uint64_t seed = 2022;        ///< Frequency sampling seed.
    /**
     * Lattice family. For Grid the frequency groups are the
     * checkerboard colors; for HeavyHex (bipartite, but not a grid)
     * the groups are the BFS-parity classes from qubit 0, which
     * coincide with the checkerboard on a grid. Defaults to Grid so
     * existing devices keep byte-identical frequencies.
     */
    DeviceTopology topology = DeviceTopology::Grid;
};

/** A sampled grid device instance. */
class GridDevice
{
  public:
    explicit GridDevice(const GridDeviceParams &params = {});

    /** Device connectivity (edge ids index all per-edge tables). */
    const CouplingMap &coupling() const { return coupling_; }

    int numQubits() const { return coupling_.numQubits(); }
    int rows() const { return params_.rows; }
    int cols() const { return params_.cols; }

    /** Sampled 0->1 frequency of a qubit (rad/ns). */
    double qubitFrequency(int q) const { return freq_.at(q); }

    /**
     * Frequency-group color: true for the high-frequency group.
     * Checkerboard (r+c) parity on grids, BFS parity on heavy-hex;
     * every edge couples a low- and a high-frequency qubit either
     * way (both lattices are bipartite).
     */
    bool isHighFrequency(int q) const { return group_.at(q); }

    /**
     * Unit-cell parameters of an edge; qubit_a is the edge's
     * lower-indexed physical qubit (matching the lo-first matrix
     * orientation used by the transpiler).
     */
    PairDeviceParams edgeParams(int edge_id) const;

    /** Zero-flux coupler frequency (rad/ns). */
    double couplerOmegaMax() const;

    const GridDeviceParams &params() const { return params_; }

  private:
    GridDeviceParams params_;
    CouplingMap coupling_;
    std::vector<double> freq_;
    std::vector<char> group_; ///< Per-qubit frequency-group color.
};

} // namespace qbasis

#endif // QBASIS_SIM_DEVICE_HPP
