#include "sim/flux.hpp"

#include <cmath>

#include "linalg/types.hpp"
#include "util/logging.hpp"

namespace qbasis {

FluxCurve::FluxCurve(double omega_max_rad_ns)
    : omega_max_(omega_max_rad_ns)
{
    if (omega_max_rad_ns <= 0.0)
        fatal("FluxCurve requires a positive maximum frequency");
}

double
FluxCurve::frequency(double phi) const
{
    return omega_max_ * std::sqrt(std::abs(std::cos(kPi * phi)));
}

double
FluxCurve::fluxForFrequency(double omega_rad_ns) const
{
    if (omega_rad_ns <= 0.0 || omega_rad_ns > omega_max_)
        fatal("requested coupler frequency %.3f rad/ns outside "
              "(0, %.3f]", omega_rad_ns, omega_max_);
    const double c = omega_rad_ns / omega_max_;
    return std::acos(c * c) / kPi;
}

double
FluxCurve::slope(double phi) const
{
    const double c = std::cos(kPi * phi);
    const double s = std::sin(kPi * phi);
    const double ac = std::abs(c);
    if (ac < 1e-12)
        return 0.0; // cusp; callers avoid biasing here
    const double sign = c >= 0.0 ? 1.0 : -1.0;
    return -omega_max_ * kPi * sign * s / (2.0 * std::sqrt(ac));
}

} // namespace qbasis
