#ifndef QBASIS_SIM_HAMILTONIAN_HPP
#define QBASIS_SIM_HAMILTONIAN_HPP

/**
 * @file
 * The paper's Appendix A model: two fixed-frequency transmons coupled
 * through a flux-tunable coupler,
 *   H = sum_k (w_k n_k + a_k/2 n_k (n_k - 1))
 *       - g_ab (a'b + ab') - g_bc (b'c + bc') - g_ca (c'a + ca'),
 * with each element truncated to a configurable number of levels
 * (default 3: the paper's strong-drive physics needs the coupler's
 * second excited state).
 *
 * Frequencies are angular (rad/ns); 1 GHz = 2 pi * 1e0 rad/ns... i.e.
 * omega[rad/ns] = 2 pi * f[GHz].
 */

#include <vector>

#include "linalg/matrix.hpp"

namespace qbasis {

/** One anharmonic (Duffing) mode. */
struct ModeParams
{
    double omega = 0.0; ///< 0->1 transition frequency (rad/ns).
    double alpha = 0.0; ///< Anharmonicity (rad/ns), negative for
                        ///< transmons, positive for the coupler.
};

/** Full parameter set of one qubit-coupler-qubit unit cell. */
struct PairDeviceParams
{
    ModeParams qubit_a;  ///< Lower-frequency transmon.
    ModeParams qubit_b;  ///< Higher-frequency transmon.
    ModeParams coupler;  ///< omega field = idle (DC-biased) value.
    double g_ac = 0.0;   ///< Qubit-a to coupler coupling (rad/ns).
    double g_bc = 0.0;   ///< Qubit-b to coupler coupling (rad/ns).
    double g_ab = 0.0;   ///< Direct qubit-qubit coupling (rad/ns).
    int levels_q = 3;    ///< Levels kept per transmon.
    int levels_c = 3;    ///< Levels kept for the coupler.
};

/** Exchange-coupling matrix element (sparse off-diagonal entry). */
struct CouplingEntry
{
    int row = 0;
    int col = 0;          ///< row < col by construction.
    double value = 0.0;   ///< -g sqrt((n+1)(m)) etc. (real).
    double energy_gap = 0.0; ///< E_bare[row] - E_bare[col], set by
                             ///< the propagator's interaction frame.
};

/** Dense + sparse views of the unit-cell Hamiltonian. */
class PairHamiltonian
{
  public:
    explicit PairHamiltonian(const PairDeviceParams &params);

    /** Hilbert-space dimension (levels_q^2 * levels_c). */
    int dim() const { return dim_; }

    const PairDeviceParams &params() const { return params_; }

    /** Flattened index of the bare state |na, nb, nc>. */
    int index(int na, int nb, int nc) const;

    /** Occupations of the flattened basis state. */
    void occupations(int idx, int &na, int &nb, int &nc) const;

    /** Coupler occupation of each basis state. */
    const std::vector<double> &couplerOccupation() const
    {
        return coupler_occ_;
    }

    /**
     * Bare (diagonal) energies with the coupler frequency overridden
     * to `omega_c` (the DC bias point under study).
     */
    std::vector<double> bareEnergies(double omega_c) const;

    /** Exchange-coupling entries (upper triangle, real values). */
    const std::vector<CouplingEntry> &couplings() const
    {
        return couplings_;
    }

    /** Dense Hermitian Hamiltonian at the given coupler frequency. */
    CMat staticHamiltonian(double omega_c) const;

    /**
     * The four computational bare-state indices in gate order
     * |00>, |01>, |10>, |11> (qubit a is the most significant; the
     * coupler stays in its ground state).
     */
    std::vector<int> computationalIndices() const;

  private:
    PairDeviceParams params_;
    int dim_;
    std::vector<CouplingEntry> couplings_;
    std::vector<double> coupler_occ_;
};

/** Convenience: angular frequency from GHz. */
inline double
ghz(double f)
{
    return kTwoPi * f;
}

} // namespace qbasis

#endif // QBASIS_SIM_HAMILTONIAN_HPP
