#ifndef QBASIS_SIM_BIAS_HPP
#define QBASIS_SIM_BIAS_HPP

/**
 * @file
 * Static spectrum analysis of the unit cell: dressed computational
 * states and the zero-ZZ coupler bias search (paper Section VIII-B,
 * protocol step 2).
 */

#include <array>

#include "linalg/matrix.hpp"
#include "sim/hamiltonian.hpp"

namespace qbasis {

/** Dressed computational states at a given coupler frequency. */
struct DressedStates
{
    CMat vectors{0, 0};            ///< dim x 4 (|00>,|01>,|10>,|11>).
    std::array<double, 4> energies{}; ///< Dressed energies (rad/ns).

    /** Static ZZ: E11 - E10 - E01 + E00. */
    double staticZZ() const
    {
        return energies[3] - energies[2] - energies[1] + energies[0];
    }
};

/**
 * Diagonalize the static Hamiltonian and pick the eigenstates
 * adiabatically connected to the bare computational states (largest
 * overlap, greedily, with the phase fixed so the bare component is
 * real positive).
 */
DressedStates dressedComputationalStates(const PairHamiltonian &h,
                                         double omega_c);

/** Static ZZ at the given coupler frequency. */
double staticZZ(const PairHamiltonian &h, double omega_c);

/** Result of the zero-ZZ bias search. */
struct ZzBiasResult
{
    double omega_c0 = 0.0;  ///< Chosen coupler idle frequency.
    double zz_residual = 0.0; ///< |ZZ| at the chosen bias (rad/ns).
    bool found_zero = false; ///< Whether a sign change was bracketed.
};

/**
 * Scan [omega_lo, omega_hi] for a zero crossing of the static ZZ and
 * bisect it. Falls back to the scanned minimum-|ZZ| point (with
 * found_zero = false) when no crossing exists in the window.
 */
ZzBiasResult findZeroZzBias(const PairHamiltonian &h, double omega_lo,
                            double omega_hi, int scan_points = 33,
                            double tol = 1e-9);

} // namespace qbasis

#endif // QBASIS_SIM_BIAS_HPP
