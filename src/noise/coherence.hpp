#ifndef QBASIS_NOISE_COHERENCE_HPP
#define QBASIS_NOISE_COHERENCE_HPP

/**
 * @file
 * Coherence-limited fidelity models (paper Section VIII-C).
 *
 * Two models are provided:
 *  - the per-qubit e^{-t/T} circuit model the paper uses for
 *    Table II (t spans from a qubit's first gate to its last), and
 *  - a Qiskit-Ignis-style coherence_limit for individual gates
 *    (Table I): average gate fidelity of idling under amplitude and
 *    phase damping for the gate duration.
 */

#include "circuit/schedule.hpp"

namespace qbasis {

/** e^{-t/T} decoherence survival factor. */
double idleSurvival(double t_ns, double t_coherence_ns);

/**
 * Coherence-limited average gate error for an n-qubit gate of the
 * given duration (n = 1 or 2), equal T1 = T2 = T as in the paper.
 *
 * 1Q process fidelity: (1 + 2 e^{-t/T2} + e^{-t/T1}) / 4;
 * nQ process fidelity multiplies per qubit; average fidelity is
 * (d F_pro + 1) / (d + 1) with d = 2^n.
 */
double coherenceLimitError(int n_qubits, double t_ns, double t1_ns,
                           double t2_ns);

/** coherenceLimitError with T1 = T2 = T. */
double coherenceLimitError(int n_qubits, double t_ns, double t_ns_T);

/**
 * The paper's Table II circuit fidelity: product over qubits of
 * e^{-(t_last - t_first)/T}; untouched qubits contribute 1.
 */
double circuitCoherenceFidelity(const Schedule &schedule,
                                double t_coherence_ns);

} // namespace qbasis

#endif // QBASIS_NOISE_COHERENCE_HPP
