#include "noise/coherence.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

double
idleSurvival(double t_ns, double t_coherence_ns)
{
    if (t_ns < 0.0)
        panic("idleSurvival: negative duration");
    return std::exp(-t_ns / t_coherence_ns);
}

double
coherenceLimitError(int n_qubits, double t_ns, double t1_ns,
                    double t2_ns)
{
    if (n_qubits < 1 || n_qubits > 2)
        fatal("coherenceLimitError supports 1 or 2 qubits (got %d)",
              n_qubits);
    const double f1_pro = (1.0 + 2.0 * std::exp(-t_ns / t2_ns)
                           + std::exp(-t_ns / t1_ns))
                          / 4.0;
    const double f_pro =
        n_qubits == 1 ? f1_pro : f1_pro * f1_pro;
    const double d = n_qubits == 1 ? 2.0 : 4.0;
    const double f_avg = (d * f_pro + 1.0) / (d + 1.0);
    return 1.0 - f_avg;
}

double
coherenceLimitError(int n_qubits, double t_ns, double t_ns_T)
{
    return coherenceLimitError(n_qubits, t_ns, t_ns_T, t_ns_T);
}

double
circuitCoherenceFidelity(const Schedule &schedule,
                         double t_coherence_ns)
{
    double fidelity = 1.0;
    for (size_t q = 0; q < schedule.first_busy.size(); ++q) {
        if (schedule.first_busy[q] < 0.0)
            continue;
        const double span =
            schedule.last_busy[q] - schedule.first_busy[q];
        fidelity *= idleSurvival(span, t_coherence_ns);
    }
    return fidelity;
}

} // namespace qbasis
