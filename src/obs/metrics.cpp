#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "util/logging.hpp"

namespace qbasis {

LogHistogram
Histogram::snapshot() const
{
    LogHistogram h;
    for (int b = 0; b < kLogHistogramBuckets; ++b)
        h.accumulateBucket(
            b, buckets_[static_cast<size_t>(b)].load(
                   std::memory_order_relaxed));
    h.accumulateSum(sum_.load(std::memory_order_relaxed));
    return h;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

/** node-based maps keep metric addresses stable across inserts. */
struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl &
MetricsRegistry::impl() const
{
    // Leaked singleton: metrics outlive every static destructor that
    // might still record on shutdown paths.
    static Impl *impl = new Impl();
    return *impl;
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    auto &slot = i.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    MetricsSnapshot snap;
    snap.counters.reserve(i.counters.size());
    for (const auto &[name, c] : i.counters)
        snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(i.gauges.size());
    for (const auto &[name, g] : i.gauges)
        snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(i.histograms.size());
    for (const auto &[name, h] : i.histograms)
        snap.histograms.push_back({name, h->snapshot()});
    return snap;
}

void
MetricsRegistry::reset()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (const auto &[name, c] : i.counters) {
        (void)name;
        c->reset();
    }
    for (const auto &[name, g] : i.gauges) {
        (void)name;
        g->reset();
    }
    for (const auto &[name, h] : i.histograms) {
        (void)name;
        h->reset();
    }
}

uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const CounterValue &c : counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

std::string
MetricsSnapshot::text() const
{
    std::string out;
    for (const CounterValue &c : counters)
        out += strformat("%-28s %llu\n", c.name.c_str(),
                         static_cast<unsigned long long>(c.value));
    for (const GaugeValue &g : gauges)
        out += strformat("%-28s %.6g\n", g.name.c_str(), g.value);
    for (const HistogramValue &h : histograms)
        out += strformat(
            "%-28s count=%llu mean=%.1f p50<=%llu p95<=%llu "
            "p99<=%llu\n",
            h.name.c_str(),
            static_cast<unsigned long long>(h.hist.count()),
            h.hist.mean(),
            static_cast<unsigned long long>(h.hist.percentile(0.50)),
            static_cast<unsigned long long>(h.hist.percentile(0.95)),
            static_cast<unsigned long long>(h.hist.percentile(0.99)));
    return out;
}

std::string
MetricsSnapshot::json() const
{
    // Metric names are code-controlled identifiers ([a-z0-9._]), so
    // they embed into JSON without escaping.
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const CounterValue &c : counters) {
        out += strformat("%s\"%s\":%llu", first ? "" : ",",
                         c.name.c_str(),
                         static_cast<unsigned long long>(c.value));
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const GaugeValue &g : gauges) {
        out += strformat("%s\"%s\":%.17g", first ? "" : ",",
                         g.name.c_str(), g.value);
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const HistogramValue &h : histograms) {
        out += strformat(
            "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"mean\":%.6f,"
            "\"p50\":%llu,\"p95\":%llu,\"p99\":%llu}",
            first ? "" : ",", h.name.c_str(),
            static_cast<unsigned long long>(h.hist.count()),
            static_cast<unsigned long long>(h.hist.sum()),
            h.hist.mean(),
            static_cast<unsigned long long>(h.hist.percentile(0.50)),
            static_cast<unsigned long long>(h.hist.percentile(0.95)),
            static_cast<unsigned long long>(h.hist.percentile(0.99)));
        first = false;
    }
    out += "}}";
    return out;
}

MetricsSnapshot
metricsSnapshot()
{
    return MetricsRegistry::instance().snapshot();
}

} // namespace qbasis
