#ifndef QBASIS_OBS_METRICS_HPP
#define QBASIS_OBS_METRICS_HPP

/**
 * @file
 * Process-wide MetricsRegistry: named monotonic counters, gauges,
 * and log-bucketed histograms, in the spirit of c10d's monitored
 * flight-recorder counters.
 *
 * The registry unifies the serving stack's previously ad-hoc stats:
 * CompileService, SynthEngine, the shared decomposition cache, and
 * the recalibration scheduler all mirror their counters here under
 * stable dotted names (see the catalog in README "Observability"),
 * so one `metricsSnapshot()` reports the whole stack. The legacy
 * per-instance structs (`CompileServiceStats`, `SynthEngine::Stats`,
 * ...) remain the authoritative inputs of the bit-identity digests;
 * registry values track them exactly on any fixed workload
 * (asserted in tests/test_obs).
 *
 * Hot-path cost: call sites hold a `static Counter &` resolved once
 * through instance(), so recording is a single relaxed fetch_add --
 * always on, and numerically invisible (counters never feed digest
 * or result math; the zero-perturbation contract is gated by
 * bench_obs + the obs-determinism CI job).
 *
 * Lifetime: metric references returned by counter()/gauge()/
 * histogram() are stable for the process lifetime. reset() zeroes
 * values but never invalidates references (tests and bench windows).
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace qbasis {

/** Monotonic counter (relaxed atomic). */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Concurrent log2-bucketed histogram; snapshot() yields the plain
 *  util/stats LogHistogram for percentile math. */
class Histogram
{
  public:
    void
    record(uint64_t value)
    {
        buckets_[static_cast<size_t>(logBucketIndex(value))].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    LogHistogram snapshot() const;

    void reset();

  private:
    std::atomic<uint64_t> buckets_[kLogHistogramBuckets] = {};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time copy of every registered metric, sorted by name. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        uint64_t value = 0;
    };

    struct GaugeValue
    {
        std::string name;
        double value = 0.0;
    };

    struct HistogramValue
    {
        std::string name;
        LogHistogram hist;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Value of a counter by name (0 when absent). */
    uint64_t counterValue(const std::string &name) const;

    /** Human-readable multi-line table. */
    std::string text() const;

    /** Single JSON object: {"counters":{...},"gauges":{...},
     *  "histograms":{name:{count,sum,mean,p50,p95,p99}}}. */
    std::string json() const;
};

/** Global name -> metric registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create; the reference is stable forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    MetricsSnapshot snapshot() const;

    /** Zero every value (references stay valid). */
    void reset();

  private:
    MetricsRegistry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Snapshot of the global registry. */
MetricsSnapshot metricsSnapshot();

} // namespace qbasis

#endif // QBASIS_OBS_METRICS_HPP
