#ifndef QBASIS_OBS_TRACE_HPP
#define QBASIS_OBS_TRACE_HPP

/**
 * @file
 * Zero-perturbation scoped tracing in the spirit of PyTorch's
 * RecordFunction/Kineto profiler.
 *
 * `QBASIS_TRACE_SCOPE("synth.restart", "context", key.context)`
 * opens an RAII span. While tracing is *disabled* (the default) a
 * scope costs one relaxed atomic load and a bool store -- nothing is
 * allocated, no clock is read, and no lock is taken, so instrumented
 * hot paths stay byte-identical in both results and timing noise
 * (the `obs-determinism` CI check and `bench_obs` gate this). While
 * *enabled*, completed spans are appended as fixed-size records into
 * a per-thread ring buffer (TLS pointer, per-buffer mutex taken only
 * on the enabled path) and drained on demand into Chrome trace-event
 * JSON (`traceEvents` with pid/tid/ts/dur/args) that loads directly
 * in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Request correlation: a `TraceCorrelation` RAII sets the
 * thread-local current request id; every span opened underneath it
 * carries that id as a `request_id` arg, so one served request's
 * full lifecycle (admit -> dispatch -> transpile -> synth batch ->
 * cache claim/publish/wait) is a single filterable track. Pool-task
 * closures capture the submitter's correlation explicitly (see
 * synth/engine.cpp) so the id crosses thread-pool boundaries.
 *
 * Names and arg names must be string literals (or otherwise outlive
 * the recorder): records store the pointers, never copies.
 *
 * Environment activation (any qbasis binary, zero code changes):
 *   QBASIS_TRACE=1             enable tracing at startup
 *   QBASIS_TRACE_FILE=x.json   write the Chrome trace at exit
 *   QBASIS_TRACE_CAPACITY=N    per-thread ring capacity (events)
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qbasis {

namespace obs_detail {
extern std::atomic<bool> g_trace_enabled;
extern thread_local uint64_t g_trace_correlation;
} // namespace obs_detail

/** True while spans are being recorded (relaxed read; hot path). */
inline bool
traceEnabled()
{
    return obs_detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/** Turn span recording on/off. Existing records are kept. */
void setTraceEnabled(bool enabled);

/** Current thread's request correlation id (0 = none). */
inline uint64_t
currentTraceCorrelation()
{
    return obs_detail::g_trace_correlation;
}

/** One completed span, fixed-size (drained via traceSnapshot()). */
struct TraceEvent
{
    const char *name = nullptr; ///< Span name (string literal).
    uint64_t start_ns = 0;      ///< Since the process trace epoch.
    uint64_t dur_ns = 0;
    uint32_t tid = 0;        ///< threadLogId() of the opening thread.
    uint64_t correlation = 0; ///< request_id in scope (0 = none).
    const char *arg_names[2] = {nullptr, nullptr};
    uint64_t arg_values[2] = {0, 0};
};

/**
 * RAII scoped span. Prefer the QBASIS_TRACE_SCOPE macro. The
 * disabled path is fully inline: one relaxed load, no clock read.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
    {
        if (traceEnabled())
            begin(name, nullptr, 0, nullptr, 0);
    }

    TraceScope(const char *name, const char *a0, uint64_t v0)
    {
        if (traceEnabled())
            begin(name, a0, v0, nullptr, 0);
    }

    TraceScope(const char *name, const char *a0, uint64_t v0,
               const char *a1, uint64_t v1)
    {
        if (traceEnabled())
            begin(name, a0, v0, a1, v1);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (active_)
            end();
    }

  private:
    void begin(const char *name, const char *a0, uint64_t v0,
               const char *a1, uint64_t v1);
    void end();

    TraceEvent ev_{};
    bool active_ = false;
};

/**
 * RAII thread-local request-correlation scope: spans opened while
 * this is alive carry `id` as their request_id. Nestable (restores
 * the previous id); always-on and branch-free, so it is safe on
 * paths that run with tracing disabled.
 */
class TraceCorrelation
{
  public:
    explicit TraceCorrelation(uint64_t id)
        : prev_(obs_detail::g_trace_correlation)
    {
        obs_detail::g_trace_correlation = id;
    }

    TraceCorrelation(const TraceCorrelation &) = delete;
    TraceCorrelation &operator=(const TraceCorrelation &) = delete;

    ~TraceCorrelation() { obs_detail::g_trace_correlation = prev_; }

  private:
    uint64_t prev_;
};

#define QBASIS_TRACE_CONCAT2(a, b) a##b
#define QBASIS_TRACE_CONCAT(a, b) QBASIS_TRACE_CONCAT2(a, b)

/** Open an RAII span for the rest of the enclosing block:
 *  QBASIS_TRACE_SCOPE("name"[, "arg", value[, "arg2", value2]]). */
#define QBASIS_TRACE_SCOPE(...)                                       \
    ::qbasis::TraceScope QBASIS_TRACE_CONCAT(qbasis_trace_scope_,     \
                                             __LINE__)(__VA_ARGS__)

/** Monotonic ns since the process trace epoch (steady clock). */
uint64_t traceNowNs();

/** Label the calling thread in trace exports ("dispatcher-0"...). */
void setTraceThreadName(const std::string &name);

/**
 * Drain every thread's ring (including exited threads') into one
 * start-time-ordered vector. Safe while other threads keep tracing.
 */
std::vector<TraceEvent> traceSnapshot();

/** Spans overwritten by ring wrap-around since the last clearTrace()
 *  (0 means traceSnapshot() is complete). */
uint64_t traceDroppedEvents();

/** Drop all recorded spans (buffers of live threads are kept). */
void clearTrace();

/** Render the current snapshot as Chrome trace-event JSON. */
std::string chromeTraceJson();

/** Write chromeTraceJson() to `path`; false on I/O failure. */
bool writeChromeTrace(const std::string &path);

} // namespace qbasis

#endif // QBASIS_OBS_TRACE_HPP
