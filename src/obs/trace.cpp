#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/logging.hpp"

namespace qbasis {

namespace obs_detail {
std::atomic<bool> g_trace_enabled{false};
thread_local uint64_t g_trace_correlation = 0;
} // namespace obs_detail

namespace {

/** Default per-thread ring capacity (events). ~80 B/event keeps a
 *  busy 16-thread process around 20 MB at this size. */
constexpr size_t kDefaultCapacity = size_t{1} << 14;

size_t
ringCapacity()
{
    static const size_t cap = [] {
        if (const char *env = std::getenv("QBASIS_TRACE_CAPACITY")) {
            const long v = std::atol(env);
            if (v > 0)
                return static_cast<size_t>(v);
        }
        return kDefaultCapacity;
    }();
    return cap;
}

/** One thread's span ring. Lives in a shared_ptr held by both the
 *  owning thread's TLS slot and the global registry, so records
 *  survive thread exit until clearTrace(). The mutex is taken only
 *  on the enabled path (append) and by drains. */
struct ThreadTraceBuffer
{
    std::mutex mutex;
    std::vector<TraceEvent> ring; ///< Size fixed at ringCapacity().
    size_t next = 0;              ///< Write cursor (wraps).
    uint64_t recorded = 0;        ///< Total appends ever.
    uint32_t tid = 0;
    std::string thread_name;
    bool retired = false; ///< Owning thread exited.

    void
    append(const TraceEvent &ev)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (ring.empty())
            ring.resize(ringCapacity());
        ring[next] = ev;
        next = (next + 1) % ring.size();
        ++recorded;
    }
};

struct TraceRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;

    static TraceRegistry &
    instance()
    {
        static TraceRegistry *reg = new TraceRegistry(); // never dtor
        return *reg;
    }
};

/** TLS slot; the destructor marks the buffer retired (its events
 *  stay drainable through the registry's shared_ptr). */
struct ThreadTraceSlot
{
    std::shared_ptr<ThreadTraceBuffer> buffer;

    ~ThreadTraceSlot()
    {
        if (buffer) {
            std::lock_guard<std::mutex> lock(buffer->mutex);
            buffer->retired = true;
        }
    }
};

thread_local ThreadTraceSlot t_trace_slot;

ThreadTraceBuffer &
threadBuffer()
{
    if (!t_trace_slot.buffer) {
        auto buf = std::make_shared<ThreadTraceBuffer>();
        // Trace tids are the logging thread ids, so Perfetto tracks
        // and [Tnn] log prefixes name the same threads.
        buf->tid = threadLogId();
        TraceRegistry &reg = TraceRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.buffers.push_back(buf);
        t_trace_slot.buffer = std::move(buf);
    }
    return *t_trace_slot.buffer;
}

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

void
jsonEscape(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x",
                              static_cast<unsigned>(c));
                out += hex;
            } else {
                out += c;
            }
        }
    }
}

/** QBASIS_TRACE / QBASIS_TRACE_FILE startup activation. The static
 *  instance below runs its constructor in any binary that links an
 *  instrumented call site, so every bench/test can be traced with
 *  environment variables alone. */
struct TraceEnvActivation
{
    TraceEnvActivation()
    {
        (void)traceEpoch(); // pin the epoch before any span
        const char *on = std::getenv("QBASIS_TRACE");
        if (on != nullptr && on[0] != '\0' && on[0] != '0')
            setTraceEnabled(true);
        if (std::getenv("QBASIS_TRACE_FILE") != nullptr)
            std::atexit([] {
                const char *path = std::getenv("QBASIS_TRACE_FILE");
                if (path != nullptr && !writeChromeTrace(path))
                    warn("trace: failed to write %s", path);
            });
    }
};

const TraceEnvActivation g_trace_env_activation;

} // namespace

void
setTraceEnabled(bool enabled)
{
    obs_detail::g_trace_enabled.store(enabled,
                                      std::memory_order_relaxed);
}

uint64_t
traceNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch())
            .count());
}

void
TraceScope::begin(const char *name, const char *a0, uint64_t v0,
                  const char *a1, uint64_t v1)
{
    ev_.name = name;
    ev_.arg_names[0] = a0;
    ev_.arg_values[0] = v0;
    ev_.arg_names[1] = a1;
    ev_.arg_values[1] = v1;
    ev_.correlation = obs_detail::g_trace_correlation;
    ev_.start_ns = traceNowNs();
    active_ = true;
}

void
TraceScope::end()
{
    ev_.dur_ns = traceNowNs() - ev_.start_ns;
    ThreadTraceBuffer &buf = threadBuffer();
    ev_.tid = buf.tid;
    buf.append(ev_);
}

void
setTraceThreadName(const std::string &name)
{
    ThreadTraceBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.thread_name = name;
}

std::vector<TraceEvent>
traceSnapshot()
{
    // Copy the buffer list first so appends on other threads only
    // contend on their own buffer's mutex, never the registry's.
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    {
        TraceRegistry &reg = TraceRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mutex);
        buffers = reg.buffers;
    }
    std::vector<TraceEvent> out;
    for (const auto &buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        const size_t n = std::min<uint64_t>(buf->recorded,
                                            buf->ring.size());
        // Oldest-first: the cursor points at the oldest record once
        // the ring has wrapped.
        const size_t start = buf->recorded > buf->ring.size()
                                 ? buf->next
                                 : 0;
        for (size_t i = 0; i < n; ++i)
            out.push_back(buf->ring[(start + i) % buf->ring.size()]);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start_ns < b.start_ns;
                     });
    return out;
}

uint64_t
traceDroppedEvents()
{
    TraceRegistry &reg = TraceRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    uint64_t dropped = 0;
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mutex);
        if (buf->recorded > buf->ring.size())
            dropped += buf->recorded - buf->ring.size();
    }
    return dropped;
}

void
clearTrace()
{
    TraceRegistry &reg = TraceRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.buffers.begin();
    while (it != reg.buffers.end()) {
        std::lock_guard<std::mutex> buf_lock((*it)->mutex);
        (*it)->next = 0;
        (*it)->recorded = 0;
        if ((*it)->retired)
            it = reg.buffers.erase(it);
        else
            ++it;
    }
}

std::string
chromeTraceJson()
{
    // Thread-name metadata first, then every span as a "complete"
    // (ph:"X") event; ts/dur are microseconds per the trace-event
    // spec, emitted with ns resolution.
    std::vector<std::pair<uint32_t, std::string>> names;
    {
        TraceRegistry &reg = TraceRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (const auto &buf : reg.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mutex);
            if (!buf->thread_name.empty())
                names.emplace_back(buf->tid, buf->thread_name);
        }
    }
    const std::vector<TraceEvent> events = traceSnapshot();

    std::string out;
    out.reserve(128 + events.size() * 96);
    out += "{\"traceEvents\":[";
    char line[256];
    bool first = true;
    for (const auto &[tid, name] : names) {
        std::snprintf(line, sizeof(line),
                      "%s\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                      first ? "" : ",", tid);
        out += line;
        jsonEscape(out, name);
        out += "\"}}";
        first = false;
    }
    for (const TraceEvent &ev : events) {
        std::snprintf(line, sizeof(line),
                      "%s\n{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f",
                      first ? "" : ",", ev.tid,
                      ev.name != nullptr ? ev.name : "?",
                      static_cast<double>(ev.start_ns) / 1000.0,
                      static_cast<double>(ev.dur_ns) / 1000.0);
        out += line;
        first = false;
        const bool has_args = ev.correlation != 0
                              || ev.arg_names[0] != nullptr
                              || ev.arg_names[1] != nullptr;
        if (has_args) {
            out += ",\"args\":{";
            bool first_arg = true;
            if (ev.correlation != 0) {
                std::snprintf(line, sizeof(line),
                              "\"request_id\":%llu",
                              static_cast<unsigned long long>(
                                  ev.correlation));
                out += line;
                first_arg = false;
            }
            for (int a = 0; a < 2; ++a) {
                if (ev.arg_names[a] == nullptr)
                    continue;
                // Some call sites pass the request id explicitly as
                // an arg AND run under a correlation scope; emit the
                // key once.
                if (ev.correlation != 0
                    && std::string(ev.arg_names[a]) == "request_id")
                    continue;
                std::snprintf(line, sizeof(line), "%s\"%s\":%llu",
                              first_arg ? "" : ",", ev.arg_names[a],
                              static_cast<unsigned long long>(
                                  ev.arg_values[a]));
                out += line;
                first_arg = false;
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = chromeTraceJson();
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (ok)
        inform("trace: wrote %zu events to %s",
               traceSnapshot().size(), path.c_str());
    return ok;
}

} // namespace qbasis
