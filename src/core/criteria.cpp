#include "core/criteria.hpp"

#include "monodromy/regions.hpp"
#include "util/logging.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {

std::string
criterionName(SelectionCriterion c)
{
    switch (c) {
      case SelectionCriterion::Criterion1: return "criterion1";
      case SelectionCriterion::Criterion2: return "criterion2";
      case SelectionCriterion::PerfectEntangler: return "pe";
      case SelectionCriterion::PeAndSwap3: return "pe+swap3";
    }
    return "?";
}

bool
criterionSatisfied(SelectionCriterion c, const CartanCoords &coords,
                   double eps)
{
    const CartanCoords canon = canonicalize(coords);
    switch (c) {
      case SelectionCriterion::Criterion1:
        return canSynthesizeSwapIn3Layers(canon, eps);
      case SelectionCriterion::Criterion2:
        return canSynthesizeSwapIn3Layers(canon, eps)
               && canSynthesizeCnotIn2Layers(canon, eps);
      case SelectionCriterion::PerfectEntangler:
        return isPerfectEntangler(canon, eps);
      case SelectionCriterion::PeAndSwap3:
        return isPerfectEntangler(canon, eps)
               && canSynthesizeSwapIn3Layers(canon, eps);
    }
    panic("unknown criterion");
}

std::function<bool(const CartanCoords &)>
criterionPredicate(SelectionCriterion c)
{
    return [c](const CartanCoords &coords) {
        return criterionSatisfied(c, coords);
    };
}

} // namespace qbasis
