#include "core/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

bool
mat4BitIdentical(const Mat4 &a, const Mat4 &b)
{
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (a(i, j).real() != b(i, j).real()
                || a(i, j).imag() != b(i, j).imag())
                return false;
        }
    }
    return true;
}

bool
summariesBitIdentical(const GateSetSummary &a, const GateSetSummary &b)
{
    return a.label == b.label && a.avg_basis_ns == b.avg_basis_ns
           && a.avg_swap_ns == b.avg_swap_ns
           && a.avg_cnot_ns == b.avg_cnot_ns
           && a.avg_basis_fidelity == b.avg_basis_fidelity
           && a.avg_swap_fidelity == b.avg_swap_fidelity
           && a.avg_cnot_fidelity == b.avg_cnot_fidelity
           && a.avg_swap_layers == b.avg_swap_layers
           && a.avg_cnot_layers == b.avg_cnot_layers
           && a.one_q_share_swap == b.one_q_share_swap
           && a.max_decomposition_infidelity
                  == b.max_decomposition_infidelity;
}

bool
circuitResultsBitIdentical(const CompiledCircuitResult &a,
                           const CompiledCircuitResult &b)
{
    return a.fidelity == b.fidelity && a.makespan_ns == b.makespan_ns
           && a.swaps_inserted == b.swaps_inserted
           && a.two_qubit_gates == b.two_qubit_gates
           && a.depth == b.depth;
}

} // namespace

bool
fleetReportsBitIdentical(const FleetReport &a, const FleetReport &b)
{
    if (a.devices.size() != b.devices.size())
        return false;
    for (size_t d = 0; d < a.devices.size(); ++d) {
        const FleetDeviceReport &da = a.devices[d];
        const FleetDeviceReport &db = b.devices[d];
        if (da.device_id != db.device_id || da.label != db.label)
            return false;
        if (da.set.bases.size() != db.set.bases.size())
            return false;
        for (size_t e = 0; e < da.set.bases.size(); ++e) {
            if (da.set.bases[e].duration_ns
                    != db.set.bases[e].duration_ns
                || !mat4BitIdentical(da.set.bases[e].gate,
                                     db.set.bases[e].gate))
                return false;
        }
        for (size_t e = 0; e < da.set.edges.size(); ++e) {
            const EdgeCalibration &ea = da.set.edges[e];
            const EdgeCalibration &eb = db.set.edges[e];
            if (ea.omega_d != eb.omega_d
                || ea.gate.duration_ns != eb.gate.duration_ns)
                return false;
        }
        if (!summariesBitIdentical(da.summary, db.summary))
            return false;
        if (da.circuits.size() != db.circuits.size())
            return false;
        for (size_t c = 0; c < da.circuits.size(); ++c) {
            if (da.circuits[c].name != db.circuits[c].name
                || !circuitResultsBitIdentical(da.circuits[c].result,
                                               db.circuits[c].result))
                return false;
        }
    }
    return true;
}

FleetDriver::FleetDriver(FleetOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.threads),
      cache_(opts_.cache_stripes)
{
}

FleetDeviceReport
FleetDriver::runDevice(int device_id, const FleetDeviceSpec &spec,
                       const std::vector<FleetCircuit> &circuits,
                       SynthEngine &engine)
{
    FleetDeviceReport report;
    report.device_id = device_id;
    report.label = spec.label.empty()
                       ? "dev" + std::to_string(device_id)
                       : spec.label;

    const GridDevice device(spec.grid);

    DeviceCalibrationOptions calib = opts_.calib;
    if (spec.apply_drift) {
        calib.apply_drift = true;
        calib.drift = spec.drift;
        calib.drift_seed = Rng::deriveSeed(opts_.seed,
                                           static_cast<uint64_t>(
                                               device_id));
    }
    report.set = calibrateDevice(device, spec.xi, spec.criterion,
                                 report.label, calib);

    const SynthClient client{engine, cache_, device_id};
    report.summary = summarizeGateSet(device, report.set, client,
                                      opts_.synth, opts_.t_1q_ns,
                                      opts_.t_coherence_ns);

    report.circuits.reserve(circuits.size());
    for (const FleetCircuit &fc : circuits) {
        FleetCircuitResult cr;
        cr.name = fc.name;
        TranspileOptions topts = opts_.transpile;
        topts.synth = opts_.synth; // one options set = one cache key
        cr.result = compileAndScore(device, report.set, client,
                                    fc.circuit, topts, opts_.t_1q_ns,
                                    opts_.t_coherence_ns);
        report.circuits.push_back(std::move(cr));
    }
    return report;
}

FleetReport
FleetDriver::run(const std::vector<FleetDeviceSpec> &specs,
                 const std::vector<FleetCircuit> &circuits)
{
    const auto t0 = std::chrono::steady_clock::now();

    FleetReport report;
    report.devices.resize(specs.size());
    const int n_devices = static_cast<int>(specs.size());
    if (n_devices == 0) {
        report.cache = cache_.stats();
        return report;
    }

    const int shards =
        opts_.shards <= 0 ? n_devices
                          : std::min(opts_.shards, n_devices);
    report.shards = shards;

    // One engine per shard, all borrowing the shared pool; one
    // std::thread per shard (shard threads block in shared-cache
    // waits and batch joins, so they must not be pool workers).
    std::vector<std::exception_ptr> errors(
        static_cast<size_t>(shards));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        threads.emplace_back([this, s, shards, n_devices, &specs,
                              &circuits, &report, &errors] {
            SynthEngine engine(pool_);
            try {
                for (int d = s; d < n_devices; d += shards) {
                    report.devices[static_cast<size_t>(d)] =
                        runDevice(d, specs[static_cast<size_t>(d)],
                                  circuits, engine);
                }
            } catch (...) {
                errors[static_cast<size_t>(s)] =
                    std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    // Rethrow in shard order ~ first failing device order.
    for (const auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }

    report.cache = cache_.stats();
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return report;
}

} // namespace qbasis
