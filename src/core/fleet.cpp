#include "core/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/api.hpp"
#include "util/fault.hpp"
#include "util/fnv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

/** Forces loadCache() down its rejected-snapshot quarantine path. */
const FaultSite kFaultFleetLoadCache("fleet.load_cache");

/** Registry mirrors of the driver's failure-domain counters. */
struct FleetMetrics
{
    Counter &cycles;
    Counter &compile_passes;
    Counter &device_failures;
    Counter &cache_quarantines;

    static FleetMetrics &
    instance()
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        static FleetMetrics m{reg.counter("fleet.cycles"),
                              reg.counter("fleet.compile_passes"),
                              reg.counter("fleet.device_failures"),
                              reg.counter("fleet.cache_quarantines")};
        return m;
    }
};

bool
mat4BitIdentical(const Mat4 &a, const Mat4 &b)
{
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (a(i, j).real() != b(i, j).real()
                || a(i, j).imag() != b(i, j).imag())
                return false;
        }
    }
    return true;
}

bool
summariesBitIdentical(const GateSetSummary &a, const GateSetSummary &b)
{
    return a.label == b.label && a.avg_basis_ns == b.avg_basis_ns
           && a.avg_swap_ns == b.avg_swap_ns
           && a.avg_cnot_ns == b.avg_cnot_ns
           && a.avg_basis_fidelity == b.avg_basis_fidelity
           && a.avg_swap_fidelity == b.avg_swap_fidelity
           && a.avg_cnot_fidelity == b.avg_cnot_fidelity
           && a.avg_swap_layers == b.avg_swap_layers
           && a.avg_cnot_layers == b.avg_cnot_layers
           && a.one_q_share_swap == b.one_q_share_swap
           && a.max_decomposition_infidelity
                  == b.max_decomposition_infidelity;
}

bool
circuitResultsBitIdentical(const CompiledCircuitResult &a,
                           const CompiledCircuitResult &b)
{
    return a.fidelity == b.fidelity && a.makespan_ns == b.makespan_ns
           && a.swaps_inserted == b.swaps_inserted
           && a.two_qubit_gates == b.two_qubit_gates
           && a.depth == b.depth;
}

bool
edgeCalibrationsBitIdentical(const EdgeCalibration &a,
                             const EdgeCalibration &b)
{
    return a.edge_id == b.edge_id && a.xi == b.xi
           && a.omega_d == b.omega_d && a.omega_c0 == b.omega_c0
           && a.zz_residual == b.zz_residual
           && a.calibrated_cycle == b.calibrated_cycle
           && a.gate.duration_ns == b.gate.duration_ns
           && mat4BitIdentical(a.gate.gate, b.gate.gate);
}

/** Build the unified compile request for one fleet circuit. */
CompileRequest
fleetRequest(const FleetOptions &opts, const FleetCircuit &fc,
             int device_id)
{
    CompileRequest req;
    req.device_id = device_id;
    req.name = fc.name;
    req.circuit = fc.circuit;
    req.options.transpile = opts.transpile;
    req.options.transpile.synth =
        opts.synth; // one options set = one cache key
    req.options.t_1q_ns = opts.t_1q_ns;
    req.options.t_coherence_ns = opts.t_coherence_ns;
    return req;
}

} // namespace

bool
recalibReportsBitIdentical(const RecalibCycleReport &a,
                           const RecalibCycleReport &b)
{
    if (a.cycle != b.cycle || a.devices.size() != b.devices.size())
        return false;
    for (size_t d = 0; d < a.devices.size(); ++d) {
        const RecalibDeviceCycle &da = a.devices[d];
        const RecalibDeviceCycle &db = b.devices[d];
        if (da.device_id != db.device_id
            || da.calibration_version != db.calibration_version
            || da.edges.size() != db.edges.size()
            || da.bases.size() != db.bases.size()
            || da.verify.size() != db.verify.size())
            return false;
        for (size_t e = 0; e < da.edges.size(); ++e) {
            if (!edgeCalibrationsBitIdentical(da.edges[e],
                                              db.edges[e]))
                return false;
        }
        for (size_t e = 0; e < da.bases.size(); ++e) {
            if (da.bases[e].duration_ns != db.bases[e].duration_ns
                || da.bases[e].label != db.bases[e].label
                || !mat4BitIdentical(da.bases[e].gate,
                                     db.bases[e].gate))
                return false;
        }
        for (size_t c = 0; c < da.verify.size(); ++c) {
            if (da.verify[c].name != db.verify[c].name
                || !circuitResultsBitIdentical(da.verify[c].result,
                                               db.verify[c].result))
                return false;
        }
    }
    return true;
}

bool
healthReportsBitIdentical(const HealthReport &a, const HealthReport &b)
{
    if (a.stage_retries != b.stage_retries
        || a.contained_errors != b.contained_errors
        || a.quarantine_skipped != b.quarantine_skipped
        || a.synth_restarts_failed != b.synth_restarts_failed
        || a.cache_quarantines != b.cache_quarantines
        || a.last_cache_quarantine != b.last_cache_quarantine
        || a.max_stale_cycles != b.max_stale_cycles
        || a.device_failures != b.device_failures
        || a.first_device_error != b.first_device_error
        || a.quarantined.size() != b.quarantined.size())
        return false;
    for (size_t i = 0; i < a.quarantined.size(); ++i) {
        const EdgeQuarantine &qa = a.quarantined[i];
        const EdgeQuarantine &qb = b.quarantined[i];
        if (qa.device_id != qb.device_id || qa.edge_id != qb.edge_id
            || qa.since_cycle != qb.since_cycle
            || qa.release_cycle != qb.release_cycle
            || qa.failures != qb.failures || qa.error != qb.error
            || qa.stale_cycles != qb.stale_cycles)
            return false;
    }
    return true;
}

uint64_t
healthReportDigest(const HealthReport &report)
{
    // Mixes exactly the fields healthReportsBitIdentical (above)
    // compares; extend both together.
    Fnv64 fnv;
    fnv.mix(report.stage_retries);
    fnv.mix(report.contained_errors);
    fnv.mix(report.quarantine_skipped);
    fnv.mix(report.synth_restarts_failed);
    fnv.mix(report.cache_quarantines);
    fnv.mix(report.last_cache_quarantine.size());
    fnv.mixString(report.last_cache_quarantine);
    fnv.mix(report.max_stale_cycles);
    fnv.mix(report.device_failures);
    fnv.mix(report.first_device_error.size());
    fnv.mixString(report.first_device_error);
    fnv.mix(report.quarantined.size());
    for (const EdgeQuarantine &q : report.quarantined) {
        fnv.mix(static_cast<uint64_t>(q.device_id));
        fnv.mix(static_cast<uint64_t>(q.edge_id));
        fnv.mix(q.since_cycle);
        fnv.mix(q.release_cycle);
        fnv.mix(q.failures);
        fnv.mix(q.error.size());
        fnv.mixString(q.error);
        fnv.mix(q.stale_cycles);
    }
    return fnv.h;
}

bool
compilePassesBitIdentical(const FleetCompilePass &a,
                          const FleetCompilePass &b)
{
    if (a.results.size() != b.results.size())
        return false;
    for (size_t d = 0; d < a.results.size(); ++d) {
        if (a.results[d].size() != b.results[d].size())
            return false;
        for (size_t c = 0; c < a.results[d].size(); ++c) {
            const VersionedCompileResult &ra = a.results[d][c];
            const VersionedCompileResult &rb = b.results[d][c];
            if (ra.basis_version != rb.basis_version
                || !circuitResultsBitIdentical(ra.result, rb.result))
                return false;
        }
    }
    return true;
}

uint64_t
compilePassDigest(const FleetCompilePass &pass)
{
    // Mixes exactly the fields compilePassesBitIdentical (via
    // circuitResultsBitIdentical, above) compares; extend both
    // together when CompiledCircuitResult grows a scored field.
    Fnv64 fnv;
    for (const auto &device : pass.results) {
        for (const VersionedCompileResult &r : device) {
            fnv.mix(r.basis_version);
            fnv.mixDouble(r.result.fidelity);
            fnv.mixDouble(r.result.makespan_ns);
            fnv.mix(static_cast<uint64_t>(r.result.swaps_inserted));
            fnv.mix(static_cast<uint64_t>(r.result.two_qubit_gates));
            fnv.mix(static_cast<uint64_t>(r.result.depth));
        }
    }
    return fnv.h;
}

bool
fleetReportsBitIdentical(const FleetReport &a, const FleetReport &b)
{
    if (a.devices.size() != b.devices.size())
        return false;
    for (size_t d = 0; d < a.devices.size(); ++d) {
        const FleetDeviceReport &da = a.devices[d];
        const FleetDeviceReport &db = b.devices[d];
        if (da.device_id != db.device_id || da.label != db.label)
            return false;
        if (da.set.bases.size() != db.set.bases.size())
            return false;
        for (size_t e = 0; e < da.set.bases.size(); ++e) {
            if (da.set.bases[e].duration_ns
                    != db.set.bases[e].duration_ns
                || !mat4BitIdentical(da.set.bases[e].gate,
                                     db.set.bases[e].gate))
                return false;
        }
        for (size_t e = 0; e < da.set.edges.size(); ++e) {
            const EdgeCalibration &ea = da.set.edges[e];
            const EdgeCalibration &eb = db.set.edges[e];
            if (ea.omega_d != eb.omega_d
                || ea.gate.duration_ns != eb.gate.duration_ns)
                return false;
        }
        if (!summariesBitIdentical(da.summary, db.summary))
            return false;
        if (da.circuits.size() != db.circuits.size())
            return false;
        for (size_t c = 0; c < da.circuits.size(); ++c) {
            if (da.circuits[c].name != db.circuits[c].name
                || !circuitResultsBitIdentical(da.circuits[c].result,
                                               db.circuits[c].result))
                return false;
        }
    }
    return true;
}

uint64_t
fleetReportDigest(const FleetReport &report)
{
    // Mixes exactly the fields fleetReportsBitIdentical (above)
    // compares; extend both together.
    Fnv64 fnv;
    const auto mix_mat4 = [&fnv](const Mat4 &m) {
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                fnv.mixDouble(m(i, j).real());
                fnv.mixDouble(m(i, j).imag());
            }
        }
    };
    for (const FleetDeviceReport &d : report.devices) {
        fnv.mix(static_cast<uint64_t>(d.device_id));
        fnv.mixString(d.label);
        for (const EdgeBasis &b : d.set.bases) {
            fnv.mixDouble(b.duration_ns);
            mix_mat4(b.gate);
        }
        for (const EdgeCalibration &e : d.set.edges) {
            fnv.mixDouble(e.omega_d);
            fnv.mixDouble(e.gate.duration_ns);
        }
        fnv.mixString(d.summary.label);
        fnv.mixDouble(d.summary.avg_basis_ns);
        fnv.mixDouble(d.summary.avg_swap_ns);
        fnv.mixDouble(d.summary.avg_cnot_ns);
        fnv.mixDouble(d.summary.avg_basis_fidelity);
        fnv.mixDouble(d.summary.avg_swap_fidelity);
        fnv.mixDouble(d.summary.avg_cnot_fidelity);
        fnv.mixDouble(d.summary.avg_swap_layers);
        fnv.mixDouble(d.summary.avg_cnot_layers);
        fnv.mixDouble(d.summary.one_q_share_swap);
        fnv.mixDouble(d.summary.max_decomposition_infidelity);
        for (const FleetCircuitResult &c : d.circuits) {
            fnv.mixString(c.name);
            fnv.mixDouble(c.result.fidelity);
            fnv.mixDouble(c.result.makespan_ns);
            fnv.mix(static_cast<uint64_t>(c.result.swaps_inserted));
            fnv.mix(static_cast<uint64_t>(c.result.two_qubit_gates));
            fnv.mix(static_cast<uint64_t>(c.result.depth));
        }
    }
    return fnv.h;
}

FleetDriver::FleetDriver(FleetOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.threads),
      cache_(opts_.cache_stripes)
{
}

CalibratedBasisSet
FleetDriver::calibrateSpec(int device_id, const FleetDeviceSpec &spec,
                           const GridDevice &device,
                           const std::string &label) const
{
    DeviceCalibrationOptions calib = opts_.calib;
    if (spec.apply_drift) {
        calib.apply_drift = true;
        calib.drift = spec.drift;
        calib.drift_seed = Rng::deriveSeed(opts_.seed,
                                           static_cast<uint64_t>(
                                               device_id));
    }
    return calibrateDevice(device, spec.xi, spec.criterion, label,
                           calib);
}

FleetDeviceReport
FleetDriver::runDevice(int device_id, const FleetDeviceSpec &spec,
                       const std::vector<FleetCircuit> &circuits,
                       SynthEngine &engine)
{
    FleetDeviceReport report;
    report.device_id = device_id;
    report.label = spec.label.empty()
                       ? "dev" + std::to_string(device_id)
                       : spec.label;

    const GridDevice device(spec.grid);
    report.set = calibrateSpec(device_id, spec, device, report.label);

    const SynthClient client{engine, cache_, device_id};
    report.summary = summarizeGateSet(device, report.set, client,
                                      opts_.synth, opts_.t_1q_ns,
                                      opts_.t_coherence_ns);

    report.circuits.reserve(circuits.size());
    for (const FleetCircuit &fc : circuits) {
        FleetCircuitResult cr;
        cr.name = fc.name;
        const CompileRequest req =
            fleetRequest(opts_, fc, device_id);
        const CompileResponse resp = runCompile(
            device, report.set, SynthRoute(client), req);
        if (resp.status != CompileStatus::Ok)
            throw std::runtime_error(resp.error);
        cr.result = resp.result;
        report.circuits.push_back(std::move(cr));
    }
    return report;
}

FleetReport
FleetDriver::run(const std::vector<FleetDeviceSpec> &specs,
                 const std::vector<FleetCircuit> &circuits)
{
    const auto t0 = std::chrono::steady_clock::now();

    FleetReport report;
    report.devices.resize(specs.size());
    report.statuses.resize(specs.size());
    const int n_devices = static_cast<int>(specs.size());
    if (n_devices == 0) {
        report.cache = cache_.stats();
        return report;
    }
    report.shards = shardCount(n_devices);

    // Engines borrow the shared pool and carry no synthesis state
    // of their own, so each device gets a fresh one; shard threads
    // block in shared-cache waits and batch joins, which is why
    // they are std::threads rather than pool workers.
    //
    // Per-device failure domain: a throwing device is contained into
    // its FleetDeviceStatus -- the rest of the fleet completes and
    // run() never throws for a device-scoped error.
    forEachDeviceSharded(specs.size(), [&, this](int d) {
        const size_t di = static_cast<size_t>(d);
        FleetDeviceStatus &status = report.statuses[di];
        status.device_id = d;
        try {
            SynthEngine engine(pool_);
            report.devices[di] =
                runDevice(d, specs[di], circuits, engine);
            absorbEngineStats(engine);
            status.ok = true;
        } catch (const std::exception &e) {
            status.ok = false;
            status.error = e.what();
        } catch (...) {
            status.ok = false;
            status.error = "unknown error";
        }
        if (!status.ok) {
            report.devices[di] = FleetDeviceReport{};
            report.devices[di].device_id = d;
            report.devices[di].label =
                specs[di].label.empty() ? "dev" + std::to_string(d)
                                        : specs[di].label;
            warn("FleetDriver: device %d (%s) failed, contained: %s",
                 d, report.devices[di].label.c_str(),
                 status.error.c_str());
            device_failures_.fetch_add(1);
            FleetMetrics::instance().device_failures.add();
            std::lock_guard<std::mutex> lock(health_mutex_);
            if (d < first_device_error_id_) {
                first_device_error_id_ = d;
                first_device_error_ = status.error;
            }
        }
    });

    report.cache = cache_.stats();
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return report;
}

// ---------------------------------------------------------------------------
// Cycle serving
// ---------------------------------------------------------------------------

int
FleetDriver::shardCount(int n_devices) const
{
    return opts_.shards <= 0 ? n_devices
                             : std::min(opts_.shards, n_devices);
}

void
FleetDriver::forEachDeviceSharded(
    size_t n, const std::function<void(int)> &fn) const
{
    const int n_devices = static_cast<int>(n);
    if (n_devices == 0)
        return;
    const int shards = shardCount(n_devices);
    std::vector<std::exception_ptr> errors(
        static_cast<size_t>(shards));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        threads.emplace_back([s, shards, n_devices, &fn, &errors] {
            try {
                for (int d = s; d < n_devices; d += shards)
                    fn(d);
            } catch (...) {
                errors[static_cast<size_t>(s)] =
                    std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (const auto &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
}

void
FleetDriver::initDevices(const std::vector<FleetDeviceSpec> &specs)
{
    // In-flight pipelines hold pointers into the device states being
    // replaced; settle them before tearing anything down.
    drainRecalibration();
    devices_.clear();
    devices_.reserve(specs.size());
    for (size_t d = 0; d < specs.size(); ++d) {
        devices_.push_back(std::make_unique<FleetDeviceState>(
            static_cast<int>(d), specs[d]));
    }
    forEachDeviceSharded(devices_.size(), [this](int d) {
        FleetDeviceState &state = *devices_[static_cast<size_t>(d)];
        state.calibration.publish(calibrateSpec(
            d, state.spec, state.device, state.label));
    });
}

const FleetDeviceState &
FleetDriver::device(int device_id) const
{
    if (device_id < 0
        || static_cast<size_t>(device_id) >= devices_.size())
        panic("FleetDriver: unknown device %d", device_id);
    return *devices_[static_cast<size_t>(device_id)];
}

CalibrationSnapshot
FleetDriver::calibrationSnapshot(int device_id) const
{
    return device(device_id).calibration.snapshot();
}

RecalibScheduler &
FleetDriver::scheduler()
{
    if (!recalib_) {
        RecalibSchedulerOptions opts;
        opts.calib = opts_.calib;
        opts.synth = opts_.synth; // shared cache lines with compile
        opts.policy = opts_.recalib;
        recalib_ = std::make_unique<RecalibScheduler>(pool_, cache_,
                                                      opts);
    }
    return *recalib_;
}

void
FleetDriver::recalibrate(const std::vector<RecalibEdgeRequest> &edges)
{
    RecalibScheduler &sched = scheduler();
    for (const RecalibEdgeRequest &req : edges) {
        FleetDeviceState &state =
            *devices_.at(static_cast<size_t>(req.device_id));
        RecalibJob job;
        job.device = &state.device;
        job.target = &state.calibration;
        job.device_id = req.device_id;
        job.edge_id = req.edge_id;
        job.cycle = req.cycle;
        job.params = req.params;
        job.xi = state.spec.xi;
        job.criterion = state.spec.criterion;
        job.label = state.label;
        sched.schedule(std::move(job));
    }
}

void
FleetDriver::drainRecalibration()
{
    if (recalib_)
        recalib_->drain();
}

RecalibScheduler::Stats
FleetDriver::recalibStats() const
{
    return recalib_ ? recalib_->stats() : RecalibScheduler::Stats{};
}

double
FleetDriver::recalibNowMs()
{
    return scheduler().nowMs();
}

void
FleetDriver::resetRecalibWindow()
{
    if (recalib_)
        recalib_->resetWindow();
}

void
FleetDriver::absorbEngineStats(const SynthEngine &engine)
{
    const SynthEngine::Stats s = engine.stats();
    restarts_run_.fetch_add(s.restarts_run);
    restarts_pruned_.fetch_add(s.restarts_pruned);
    restarts_failed_.fetch_add(s.restarts_failed);
}

SynthEngine::Stats
FleetDriver::engineStats() const
{
    SynthEngine::Stats s;
    s.restarts_run = restarts_run_.load();
    s.restarts_pruned = restarts_pruned_.load();
    s.restarts_failed = restarts_failed_.load();
    return s;
}

CacheIoResult
FleetDriver::saveCache(const std::string &path)
{
    return saveCacheSnapshot(cache_, plan_cache_, path);
}

CacheIoResult
FleetDriver::loadCache(const std::string &path)
{
    CacheIoResult r;
    try {
        Fnv64 path_hash;
        path_hash.mixString(path);
        faultPoint(kFaultFleetLoadCache, path_hash.h);
        r = loadCacheSnapshot(path, cache_, &plan_cache_);
    } catch (const FaultInjected &e) {
        r.status = CacheIoStatus::Malformed;
        r.message = e.what();
    }
    if (r.ok()) {
        warm_base_hits_.store(cache_.hits());
        warm_base_misses_.store(cache_.misses());
        return r;
    }
    if (r.status == CacheIoStatus::IoError)
        return r; // Missing/unreadable file: ordinary cold start.

    // The file exists but was rejected (corrupt, incompatible, or a
    // forced fault): quarantine it so the next start does not trip
    // over the same bytes, and fall back to a cold start. The rename
    // preserves the evidence for offline inspection.
    const std::string quarantine_path = path + ".quarantine";
    const char *status_name = cacheIoStatusName(r.status);
    if (std::rename(path.c_str(), quarantine_path.c_str()) == 0) {
        warn("FleetDriver: quarantined rejected cache snapshot %s -> "
             "%s (%s: %s); cold start",
             path.c_str(), quarantine_path.c_str(), status_name,
             r.message.c_str());
    } else {
        warn("FleetDriver: rejected cache snapshot %s (%s: %s) could "
             "not be quarantined; cold start",
             path.c_str(), status_name, r.message.c_str());
    }
    cache_quarantines_.fetch_add(1);
    FleetMetrics::instance().cache_quarantines.add();
    {
        std::lock_guard<std::mutex> lock(health_mutex_);
        last_cache_quarantine_ = status_name;
    }
    return r;
}

std::vector<uint64_t>
FleetDriver::liveContexts() const
{
    std::vector<uint64_t> contexts;
    for (const auto &state : devices_) {
        appendLiveContexts(state->calibration.snapshot(), opts_.synth,
                           contexts);
    }
    std::sort(contexts.begin(), contexts.end());
    contexts.erase(std::unique(contexts.begin(), contexts.end()),
                   contexts.end());
    return contexts;
}

std::vector<DeviceEpoch>
FleetDriver::liveDeviceEpochs() const
{
    std::vector<DeviceEpoch> epochs;
    epochs.reserve(devices_.size());
    for (const auto &state : devices_) {
        DeviceEpoch de;
        de.device_id = state->device_id;
        de.epoch = state->calibration.version();
        epochs.push_back(de);
    }
    std::sort(epochs.begin(), epochs.end());
    return epochs;
}

size_t
FleetDriver::retireCache()
{
    if (devices_.empty())
        return 0;
    // Sweep the plan tier first: a plan whose epoch vector died may
    // reference classes the context sweep below is about to drop.
    plan_cache_.retire(liveDeviceEpochs());
    return cache_.retireExcept(liveContexts());
}

CacheManifest
FleetDriver::cacheManifest() const
{
    CacheManifest m;
    const std::vector<uint64_t> live = liveContexts();
    m.live_contexts = live.size();
    // One pass under the stripe locks -- no entry copies, no encoder
    // run: the snapshot size is arithmetic over per-entry payload
    // sizes.
    size_t payload_bytes = 0;
    cache_.forEachPublished([&](const DecompositionCache::ClassKey &key,
                                const TwoQubitDecomposition &dec) {
        ++m.entries;
        payload_bytes += cacheEntryEncodedBytes(dec);
        if (std::binary_search(live.begin(), live.end(), key.context))
            ++m.live_entries;
        else
            ++m.dead_entries;
    });
    m.bytes = cacheSnapshotEncodedBytes(m.entries, payload_bytes);
    const uint64_t hits = cache_.hits();
    const uint64_t misses = cache_.misses();
    const uint64_t base_hits = warm_base_hits_.load();
    const uint64_t base_misses = warm_base_misses_.load();
    m.warm_hits = hits >= base_hits ? hits - base_hits : 0;
    m.warm_misses =
        misses >= base_misses ? misses - base_misses : 0;
    return m;
}

FleetCompilePass
FleetDriver::compileCircuits(const std::vector<FleetCircuit> &circuits)
{
    QBASIS_TRACE_SCOPE("fleet.compile_pass", "circuits",
                       circuits.size(), "devices", devices_.size());
    FleetMetrics::instance().compile_passes.add();
    const auto t0 = std::chrono::steady_clock::now();
    FleetCompilePass pass;
    pass.results.resize(devices_.size());

    std::mutex wait_mutex;
    double snapshot_wait_ms = 0.0;
    forEachDeviceSharded(devices_.size(), [&, this](int d) {
        FleetDeviceState &state = *devices_[static_cast<size_t>(d)];
        SynthEngine engine(pool_);
        const SynthClient client{engine, cache_, d,
                                 TaskPriority::Normal};
        std::vector<VersionedCompileResult> &out =
            pass.results[static_cast<size_t>(d)];
        out.reserve(circuits.size());
        double waited = 0.0;
        for (const FleetCircuit &fc : circuits) {
            const CompileRequest req = fleetRequest(opts_, fc, d);
            const CompileResponse resp =
                runCompile(state.device, state.calibration,
                           SynthRoute(client), req);
            if (resp.status != CompileStatus::Ok)
                throw std::runtime_error(resp.error);
            VersionedCompileResult r;
            r.basis_version = resp.basis_epoch;
            r.snapshot_wait_ms = resp.snapshot_wait_ms;
            r.result = resp.result;
            waited += r.snapshot_wait_ms;
            out.push_back(std::move(r));
        }
        absorbEngineStats(engine);
        std::lock_guard<std::mutex> lock(wait_mutex);
        snapshot_wait_ms += waited;
    });

    pass.snapshot_wait_ms = snapshot_wait_ms;
    pass.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return pass;
}

RecalibCycleReport
FleetDriver::cycleReport(uint64_t cycle,
                         const std::vector<FleetCircuit> &verify)
{
    QBASIS_TRACE_SCOPE("fleet.cycle", "cycle", cycle);
    FleetMetrics::instance().cycles.add();
    RecalibCycleReport report;
    report.cycle = cycle;
    report.devices.resize(devices_.size());
    forEachDeviceSharded(devices_.size(), [&, this](int d) {
        FleetDeviceState &state = *devices_[static_cast<size_t>(d)];
        RecalibDeviceCycle &out =
            report.devices[static_cast<size_t>(d)];
        out.device_id = d;
        const CalibrationSnapshot snap = state.calibration.snapshot();
        out.calibration_version = snap.version;
        out.edges = snap.set->edges;
        out.bases = snap.set->bases;
        SynthEngine engine(pool_);
        const SynthClient client{engine, cache_, d,
                                 TaskPriority::Normal};
        out.verify.reserve(verify.size());
        for (const FleetCircuit &fc : verify) {
            FleetCircuitResult cr;
            cr.name = fc.name;
            const CompileRequest req = fleetRequest(opts_, fc, d);
            const CompileResponse resp = runCompile(
                state.device, *snap.set, SynthRoute(client), req);
            if (resp.status != CompileStatus::Ok)
                throw std::runtime_error(resp.error);
            cr.result = resp.result;
            out.verify.push_back(std::move(cr));
        }
        absorbEngineStats(engine);
    });
    report.cache = cacheManifest();

    // Failure-domain accounting (excluded from the bit-identical
    // contract, like `cache`; deterministic for a fixed fault seed).
    HealthReport &health = report.health;
    const RecalibScheduler::Stats rs = recalibStats();
    health.stage_retries = rs.retries;
    health.contained_errors = rs.contained_errors;
    health.quarantine_skipped = rs.quarantine_skipped;
    health.synth_restarts_failed = restarts_failed_.load();
    health.cache_quarantines = cache_quarantines_.load();
    health.device_failures = device_failures_.load();
    {
        std::lock_guard<std::mutex> lock(health_mutex_);
        health.last_cache_quarantine = last_cache_quarantine_;
        health.first_device_error = first_device_error_;
    }
    if (recalib_)
        health.quarantined = recalib_->quarantined();
    for (EdgeQuarantine &quar : health.quarantined) {
        // Staleness = report cycle minus the edge's last published
        // calibration cycle, read from the snapshot captured above
        // -- the quarantined edge still serves that basis.
        const auto &edges =
            report.devices.at(static_cast<size_t>(quar.device_id))
                .edges;
        for (const EdgeCalibration &edge : edges) {
            if (edge.edge_id == quar.edge_id) {
                quar.stale_cycles =
                    cycle >= edge.calibrated_cycle
                        ? cycle - edge.calibrated_cycle
                        : 0;
                break;
            }
        }
        health.max_stale_cycles =
            std::max(health.max_stale_cycles, quar.stale_cycles);
    }
    // Cycle-level observability: the unified registry view rides
    // along with every cycle report at Debug verbosity. Strictly a
    // reporting side channel -- nothing here feeds the report's
    // bit-identity digests.
    if (logLevel() >= LogLevel::Debug)
        debugLog("fleet cycle %llu metrics:\n%s",
                 static_cast<unsigned long long>(cycle),
                 metricsSnapshot().text().c_str());
    return report;
}

} // namespace qbasis
