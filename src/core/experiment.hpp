#ifndef QBASIS_CORE_EXPERIMENT_HPP
#define QBASIS_CORE_EXPERIMENT_HPP

/**
 * @file
 * End-to-end device experiment driver reproducing the paper's case
 * study (Section VIII): per-edge trajectory simulation and basis
 * selection, Table I gate summaries (durations + coherence-limited
 * fidelities of the basis, SWAP, and CNOT gates), and Table II
 * compiled-circuit fidelities.
 */

#include <map>
#include <string>
#include <vector>

#include "calib/drift.hpp"
#include "core/selector.hpp"
#include "sim/device.hpp"
#include "sim/propagator.hpp"
#include "synth/cache.hpp"
#include "synth/engine.hpp"
#include "transpile/pipeline.hpp"

namespace qbasis {

/** Per-edge calibration outcome. */
struct EdgeCalibration
{
    int edge_id = -1;
    double xi = 0.0;
    double omega_d = 0.0;
    double omega_c0 = 0.0;
    double zz_residual = 0.0;
    /** Drift cycle this edge was last retuned in (0 = initial
     *  tuneup; maintained by the async recalibration scheduler). */
    uint64_t calibrated_cycle = 0;
    SelectedBasisGate gate;
};

/** One calibrated basis-gate set over the whole device. */
struct CalibratedBasisSet
{
    std::string label;
    double xi = 0.0;
    SelectionCriterion criterion = SelectionCriterion::Criterion1;
    std::vector<EdgeCalibration> edges; ///< Indexed by edge id.
    std::vector<EdgeBasis> bases;       ///< For the transpiler.
};

/** Options of the device-wide calibration loop. */
struct DeviceCalibrationOptions
{
    double max_ns = 30.0;      ///< Initial trajectory window.
    int max_extensions = 2;    ///< Window doublings when no crossing.
    SimOptions sim;            ///< Propagator settings.
    SelectorOptions selector;  ///< Selection settings.
    int edge_limit = -1;       ///< Calibrate only the first k edges
                               ///< (< 0 = all); remaining edges copy
                               ///< the calibrated ones round-robin
                               ///< (fast-mode for smoke runs).
    /**
     * Apply per-edge parameter drift before calibrating (fleet
     * devices carry their own drifted unit cells). Each edge draws
     * from an Rng::deriveSeed(drift_seed, edge) stream, so drifted
     * parameters are deterministic and independent of edge order or
     * edge_limit.
     */
    bool apply_drift = false;
    DriftModel drift;          ///< Magnitudes when apply_drift is set.
    uint64_t drift_seed = 0;   ///< Base seed of the per-edge streams.
};

/**
 * Calibrate a basis gate on every edge of the device at amplitude
 * `xi` using the given selection criterion.
 */
CalibratedBasisSet calibrateDevice(const GridDevice &device, double xi,
                                   SelectionCriterion criterion,
                                   const std::string &label,
                                   const DeviceCalibrationOptions &opts
                                   = {});

/** Table I row: average durations and coherence-limited fidelities. */
struct GateSetSummary
{
    std::string label;
    double avg_basis_ns = 0.0;
    double avg_swap_ns = 0.0;
    double avg_cnot_ns = 0.0;
    double avg_basis_fidelity = 0.0;
    double avg_swap_fidelity = 0.0;
    double avg_cnot_fidelity = 0.0;
    double avg_swap_layers = 0.0;
    double avg_cnot_layers = 0.0;
    /** Fraction of the synthesized SWAP duration spent in 1Q gates
     *  (the Section VIII-D discussion). */
    double one_q_share_swap = 0.0;
    double max_decomposition_infidelity = 0.0;
};

/**
 * Synthesize SWAP and CNOT on every calibrated edge and summarize
 * durations/fidelities (Table I).
 *
 * The sweep is batched through SynthEngine::shared() (thread count
 * from QBASIS_SYNTH_THREADS; set it to 1 to pin the sweep to a
 * single worker -- results are bit-identical either way).
 *
 * @param t_1q_ns       single-qubit gate duration (20 ns).
 * @param t_coherence_ns qubit coherence time (80 us).
 */
GateSetSummary summarizeGateSet(const GridDevice &device,
                                const CalibratedBasisSet &set,
                                DecompositionCache &cache,
                                const SynthOptions &synth,
                                double t_1q_ns, double t_coherence_ns);

/**
 * Fleet-mode Table I sweep: the device's SWAP/CNOT batch is submitted
 * through `client` into the fleet-wide shared cache, so a sibling
 * device with byte-identical bases reuses every class synthesis.
 */
GateSetSummary summarizeGateSet(const GridDevice &device,
                                const CalibratedBasisSet &set,
                                const SynthClient &client,
                                const SynthOptions &synth,
                                double t_1q_ns, double t_coherence_ns);

/** Table II cell: one benchmark compiled against one basis set. */
struct CompiledCircuitResult
{
    double fidelity = 0.0;   ///< Coherence-limited circuit fidelity.
    double makespan_ns = 0.0; ///< Scheduled duration.
    size_t swaps_inserted = 0;
    size_t two_qubit_gates = 0; ///< Basis applications in the result.
    int depth = 0;
};

/**
 * @deprecated Legacy Table II entry point; use `runCompile` with a
 * `CompileRequest` (serve/api.hpp), which subsumes both overloads
 * via SynthRoute and reports failures as a status instead of
 * throwing. Kept as a thin shim so out-of-tree callers keep
 * building; definitions live in serve/api.cpp.
 */
[[deprecated("use runCompile(device, set, SynthRoute::local(&cache), "
             "request) from serve/api.hpp")]]
CompiledCircuitResult compileAndScore(const GridDevice &device,
                                      const CalibratedBasisSet &set,
                                      DecompositionCache &cache,
                                      const Circuit &logical,
                                      const TranspileOptions &opts,
                                      double t_1q_ns,
                                      double t_coherence_ns);

/** @deprecated Fleet-mode shim; use `runCompile` with
 *  `SynthRoute(client)` (serve/api.hpp). */
[[deprecated("use runCompile(device, set, SynthRoute(client), "
             "request) from serve/api.hpp")]]
CompiledCircuitResult compileAndScore(const GridDevice &device,
                                      const CalibratedBasisSet &set,
                                      const SynthClient &client,
                                      const Circuit &logical,
                                      const TranspileOptions &opts,
                                      double t_1q_ns,
                                      double t_coherence_ns);

} // namespace qbasis

#endif // QBASIS_CORE_EXPERIMENT_HPP
