#ifndef QBASIS_CORE_SELECTOR_HPP
#define QBASIS_CORE_SELECTOR_HPP

/**
 * @file
 * First-intersection basis-gate selection on sampled Cartan
 * trajectories (paper Section V-E): walk the trajectory at
 * controller resolution and return the first sample whose canonical
 * coordinates satisfy the criterion. The continuous crossing of the
 * paper's entry faces is also reported for comparison.
 */

#include <optional>

#include "core/criteria.hpp"
#include "weyl/trajectory.hpp"

namespace qbasis {

/** A selected per-edge basis gate. */
struct SelectedBasisGate
{
    size_t index = 0;         ///< Sample index in the trajectory.
    double duration_ns = 0.0; ///< Pulse duration of the gate.
    Mat4 gate;                ///< Unitary (unitarized propagator).
    CartanCoords coords;      ///< Canonical coordinates.
    double leakage = 0.0;     ///< Leakage at this sample.
    /** Entry-face crossing time from segment intersection (-1 when
     *  not applicable for the criterion). */
    double continuous_crossing_ns = -1.0;
};

/** Options for selectBasisGate(). */
struct SelectorOptions
{
    double min_duration_ns = 1.0; ///< Skip the trivial t ~ 0 samples.
    double max_leakage = 1.0;     ///< Reject samples leaking more.
};

/**
 * First trajectory sample satisfying the criterion, or nullopt when
 * the trajectory never enters the target region.
 */
std::optional<SelectedBasisGate>
selectBasisGate(const Trajectory &traj, SelectionCriterion criterion,
                const SelectorOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_CORE_SELECTOR_HPP
