#ifndef QBASIS_CORE_RECALIB_HPP
#define QBASIS_CORE_RECALIB_HPP

/**
 * @file
 * Versioned, atomically-swapped calibration state -- the handle that
 * lets circuit compilation keep serving while edges recalibrate.
 *
 * A VersionedBasisSet holds an immutable CalibratedBasisSet behind a
 * shared_ptr. Readers take a CalibrationSnapshot (one pointer copy
 * under a briefly-held lock -- no waiting on any in-flight
 * recalibration) and compile against that frozen set for the whole
 * pass; writers publish copy-on-write replacements, either a whole
 * set or a single edge. A reader therefore never observes a
 * half-published basis: it either sees the old set or the new one,
 * never a mix of a new `edges[e]` with an old `bases[e]`.
 *
 * Versions count publishes. Post-cycle version numbers are
 * deterministic (one publish per recalibrated edge per cycle), even
 * though the publish *order* of concurrent edges is not -- which is
 * exactly what the sync-vs-async bit-identical report contract
 * needs.
 *
 * The Weyl-class caches make this coexistence cheap: cache keys
 * include the basis hash, so decompositions against the last
 * published basis and against the in-flight replacement live in
 * different cache lines and never invalidate each other.
 */

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/experiment.hpp"

namespace qbasis {

/** One frozen view of a device's calibration. */
struct CalibrationSnapshot
{
    uint64_t version = 0;
    std::shared_ptr<const CalibratedBasisSet> set;

    const CalibratedBasisSet &operator*() const { return *set; }
    const CalibratedBasisSet *operator->() const { return set.get(); }
};

/** Atomically-swapped, versioned calibration state of one device. */
class VersionedBasisSet
{
  public:
    VersionedBasisSet() = default;
    explicit VersionedBasisSet(CalibratedBasisSet initial);

    VersionedBasisSet(const VersionedBasisSet &) = delete;
    VersionedBasisSet &operator=(const VersionedBasisSet &) = delete;

    /**
     * Current set + version. Never blocks on recalibration: the lock
     * protects only the pointer/version copy.
     */
    CalibrationSnapshot snapshot() const;

    /** Publish a whole replacement set; returns the new version. */
    uint64_t publish(CalibratedBasisSet next);

    /**
     * Publish one edge's recalibration outcome: copy-on-write the
     * current set, replace `edges[cal.edge_id]` and
     * `bases[cal.edge_id]` together, swap. Readers see both arrays
     * change atomically.
     */
    uint64_t publishEdge(const EdgeCalibration &cal,
                         const EdgeBasis &basis);

    /** Publishes so far (0 until the first publish()). */
    uint64_t version() const;

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const CalibratedBasisSet> current_;
    uint64_t version_ = 0;
};

/** Compile result annotated with the calibration version it used. */
struct VersionedCompileResult
{
    uint64_t basis_version = 0;
    /** Wall time spent acquiring the snapshot -- the only point at
     *  which the compile path could ever have waited on
     *  recalibration state (it holds no lock beyond a pointer copy,
     *  so this stays at microseconds by construction). */
    double snapshot_wait_ms = 0.0;
    CompiledCircuitResult result;
};

/**
 * @deprecated Legacy versioned entry point; use `runCompile` with a
 * `CompileRequest` against the VersionedBasisSet (serve/api.hpp),
 * which snapshots identically and additionally reports failures as a
 * status. Kept as a thin shim so out-of-tree callers keep building;
 * the definition lives in serve/api.cpp.
 */
[[deprecated("use runCompile(device, calibration, "
             "SynthRoute(client), request) from serve/api.hpp")]]
VersionedCompileResult compileAndScore(const GridDevice &device,
                                       const VersionedBasisSet &calibration,
                                       const SynthClient &client,
                                       const Circuit &logical,
                                       const TranspileOptions &opts,
                                       double t_1q_ns,
                                       double t_coherence_ns);

/**
 * Append the (basis gate, synthesis options) context hashes of every
 * edge of the snapshot's set to `out` (unsorted, duplicates kept --
 * callers sort+unique fleet-wide). These are the refcount roots of
 * cycle-aware cache retirement: a Weyl-class entry is *live* exactly
 * when its key.context appears in some live VersionedBasisSet
 * snapshot, and retirable otherwise (its basis was drifted away and
 * no compile can ever look it up again).
 */
void appendLiveContexts(const CalibrationSnapshot &snap,
                        const SynthOptions &synth,
                        std::vector<uint64_t> &out);

} // namespace qbasis

#endif // QBASIS_CORE_RECALIB_HPP
