#include "core/selector.hpp"

#include <algorithm>

#include "monodromy/regions.hpp"
#include "weyl/geometry.hpp"

namespace qbasis {

namespace {

/**
 * Continuous crossing estimate: first intersection of the sampled
 * coordinate polyline with the criterion's entry faces (Fig. 4 of
 * the paper). Only the SWAP-3 and CNOT-2 faces have closed forms.
 */
double
continuousCrossing(const Trajectory &traj, SelectionCriterion criterion)
{
    std::vector<Triangle> faces;
    switch (criterion) {
      case SelectionCriterion::Criterion1:
        faces = swap3EntryFaces();
        break;
      case SelectionCriterion::Criterion2: {
        faces = swap3EntryFaces();
        const auto &cnot_faces = cnot2EntryFaces();
        faces.insert(faces.end(), cnot_faces.begin(),
                     cnot_faces.end());
        break;
      }
      default:
        return -1.0;
    }
    for (size_t i = 0; i + 1 < traj.size(); ++i) {
        const CartanCoords &a = traj.at(i).coords;
        const CartanCoords &b = traj.at(i + 1).coords;
        for (const Triangle &f : faces) {
            const auto s = segmentTriangleIntersection(a, b, f);
            if (s) {
                return traj.at(i).duration
                       + *s
                             * (traj.at(i + 1).duration
                                - traj.at(i).duration);
            }
        }
    }
    return -1.0;
}

} // namespace

std::optional<SelectedBasisGate>
selectBasisGate(const Trajectory &traj, SelectionCriterion criterion,
                const SelectorOptions &opts)
{
    const auto idx = traj.firstIndexWhere(
        [&](const TrajectoryPoint &pt) {
            return pt.duration >= opts.min_duration_ns
                   && pt.leakage <= opts.max_leakage
                   && criterionSatisfied(criterion, pt.coords);
        });
    if (!idx)
        return std::nullopt;

    const TrajectoryPoint &pt = traj.at(*idx);
    SelectedBasisGate sel;
    sel.index = *idx;
    sel.duration_ns = pt.duration;
    sel.gate = pt.unitary;
    sel.coords = pt.coords;
    sel.leakage = pt.leakage;
    sel.continuous_crossing_ns = continuousCrossing(traj, criterion);
    return sel;
}

} // namespace qbasis
