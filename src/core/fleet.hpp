#ifndef QBASIS_CORE_FLEET_HPP
#define QBASIS_CORE_FLEET_HPP

/**
 * @file
 * Fleet-level experiment driver: N simulated devices calibrated,
 * summarized (Table I), and compiled against (Table II) concurrently.
 *
 * The driver owns one process-wide ThreadPool and one process-wide
 * SharedDecompositionCache. Devices are dealt round-robin onto
 * `shards` shard threads; each shard runs its devices in increasing
 * device order through its own SynthEngine that *borrows* the shared
 * pool. Every synthesis job, regardless of originating device, lands
 * in the shared cache keyed by (basis hash, options, Weyl class) --
 * so two devices with byte-identical bases (replicated hardware, or
 * a device whose drift left an edge unchanged) synthesize each class
 * exactly once fleet-wide.
 *
 * Determinism: per-device work only reads fleet-global state through
 * the shared cache, whose published entries are pure functions of
 * (class gate, basis, options) with derived RNG streams. Reports are
 * therefore bit-identical for a fixed seed at 1 shard and at N
 * shards; see fleetReportsBitIdentical(), which the bench and tests
 * gate on. Per-device drift streams derive from the fleet seed via
 * Rng::deriveSeed(seed, device_id), independent of shard layout.
 */

#include <atomic>
#include <climits>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "calib/async/recalib_scheduler.hpp"
#include "core/experiment.hpp"
#include "core/recalib.hpp"
#include "synth/cache_io.hpp"
#include "synth/plan_cache.hpp"
#include "synth/shared_cache.hpp"

namespace qbasis {

/** One device of the fleet. */
struct FleetDeviceSpec
{
    GridDeviceParams grid;   ///< Device sample (seed may be shared
                             ///< across devices to model replicated
                             ///< hardware).
    double xi = 0.04;        ///< Drive amplitude for calibration.
    SelectionCriterion criterion = SelectionCriterion::Criterion1;
    std::string label;       ///< Defaults to "dev<id>".
    /**
     * Give this device its own drifted unit-cell parameters: each
     * edge's PairDeviceParams drifts on a stream derived from the
     * fleet seed and the device id, so replicated devices with
     * drift disabled stay byte-identical (and share cache lines)
     * while drifted ones diverge (and synthesize their own classes).
     */
    bool apply_drift = false;
    DriftModel drift;        ///< Magnitudes when apply_drift is set.
};

/** A named logical circuit compiled on every device (Table II). */
struct FleetCircuit
{
    std::string name;
    Circuit circuit;
};

/** Options of the fleet driver. */
struct FleetOptions
{
    /** Shard threads; <= 0 means one shard per device. */
    int shards = 0;
    /** Workers in the shared pool; 0 = hardware concurrency. */
    int threads = 0;
    /** Lock stripes of the shared cache. */
    int cache_stripes = 16;
    /** Fleet master seed (per-device drift streams derive from it). */
    uint64_t seed = 2022;
    DeviceCalibrationOptions calib; ///< Per-device calibration.
    SynthOptions synth;             ///< Fleet-wide synthesis options
                                    ///< (part of the cache key: all
                                    ///< devices must share them to
                                    ///< share classes).
    TranspileOptions transpile;     ///< Circuit compilation options.
    /** Failure-domain policy for async recalibration (retry budget,
     *  quarantine length, containment on/off). */
    RecalibPolicy recalib;
    double t_1q_ns = 20.0;
    double t_coherence_ns = 80e3;
};

/** One compiled circuit on one device. */
struct FleetCircuitResult
{
    std::string name;
    CompiledCircuitResult result;
};

/** Everything the fleet produced for one device. */
struct FleetDeviceReport
{
    int device_id = -1;
    std::string label;
    CalibratedBasisSet set;
    GateSetSummary summary;
    std::vector<FleetCircuitResult> circuits;
};

/**
 * Terminal state of one device in a run() pass. A failed device's
 * FleetDeviceReport keeps its id/label but carries no results; the
 * fleet keeps serving the other devices (failure-domain isolation --
 * a serving daemon must not tear down the fleet because one device
 * failed).
 */
struct FleetDeviceStatus
{
    int device_id = -1;
    bool ok = false;
    std::string error; ///< what() of the contained failure.
};

/** Fleet-wide outcome of one run() call. */
struct FleetReport
{
    std::vector<FleetDeviceReport> devices; ///< Indexed by device id.
    /** Per-device outcome, indexed by device id. Excluded from the
     *  bit-identical contract (fault-free runs keep every entry ok);
     *  failures also count into the HealthReport, whose fixed-fault-
     *  seed contract covers them. */
    std::vector<FleetDeviceStatus> statuses;
    SharedDecompositionCache::Stats cache;  ///< Cumulative stats.
    int shards = 0;
    double wall_ms = 0.0;

    /** Devices whose status is not ok. */
    size_t
    failedDevices() const
    {
        size_t n = 0;
        for (const FleetDeviceStatus &s : statuses)
            n += s.ok ? 0 : 1;
        return n;
    }
};

/**
 * True when two reports are bit-identical in every result field
 * (basis matrices, durations, summaries, circuit scores). This is
 * the determinism contract the bench gates on: a fixed-seed fleet
 * must produce equal reports at 1 shard and at N shards.
 */
bool fleetReportsBitIdentical(const FleetReport &a,
                              const FleetReport &b);

/**
 * FNV-64 digest over exactly the fields fleetReportsBitIdentical
 * compares (defined beside it so the two can never drift apart).
 * The simd-determinism CI job runs the fleet smoke under
 * forced-scalar and auto-dispatch kernel backends and diffs this
 * digest for bit-identity.
 */
uint64_t fleetReportDigest(const FleetReport &report);

// ---------------------------------------------------------------------------
// Cycle serving: live devices with versioned calibrations, async
// per-edge recalibration overlapped with circuit compilation.
// ---------------------------------------------------------------------------

/** One live device of a serving fleet (see initDevices()). */
struct FleetDeviceState
{
    int device_id = -1;
    std::string label;
    FleetDeviceSpec spec;
    GridDevice device;
    VersionedBasisSet calibration;

    FleetDeviceState(int id, FleetDeviceSpec s)
        : device_id(id),
          label(s.label.empty() ? "dev" + std::to_string(id)
                                : s.label),
          spec(std::move(s)), device(spec.grid)
    {
    }
};

/** One drifted edge to retune asynchronously. */
struct RecalibEdgeRequest
{
    int device_id = 0;
    int edge_id = 0;
    uint64_t cycle = 0;
    PairDeviceParams params; ///< Drifted unit cell (e.g. from
                             ///< DriftCycle::paramsAt()).
};

/** One compile pass over the whole fleet (compileCircuits()). */
struct FleetCompilePass
{
    /** results[device][circuit], annotated with the calibration
     *  version each compile was served from. */
    std::vector<std::vector<VersionedCompileResult>> results;
    double wall_ms = 0.0;
    /** Total time compile threads spent acquiring calibration
     *  snapshots -- the only place the compile path could ever wait
     *  on recalibration state. Stays at microseconds by design. */
    double snapshot_wait_ms = 0.0;
};

/**
 * Accounting view of the shared Weyl-class cache against the fleet's
 * live calibrations (see FleetDriver::cacheManifest()).
 *
 * Live/dead is defined by basis-context refcounting: an entry is
 * live when its key.context (basis gate + synthesis options hash)
 * appears in at least one live VersionedBasisSet snapshot, dead
 * otherwise -- dead entries are what retireCache() drops. The warm
 * window starts at construction or at the last loadCache(), so
 * warm_hit_rate measures how much of the post-restore workload was
 * served without resynthesis.
 */
struct CacheManifest
{
    size_t entries = 0;       ///< Published classes in the cache.
    size_t bytes = 0;         ///< Encoded snapshot size (cache_io).
    size_t live_contexts = 0; ///< Distinct live basis contexts.
    size_t live_entries = 0;  ///< Entries keyed by a live context.
    size_t dead_entries = 0;  ///< Entries a retirement sweep drops.
    uint64_t warm_hits = 0;   ///< Hits since the warm window opened.
    uint64_t warm_misses = 0; ///< Misses since the warm window opened.

    double
    warmHitRate() const
    {
        const uint64_t total = warm_hits + warm_misses;
        return total > 0 ? static_cast<double>(warm_hits)
                               / static_cast<double>(total)
                         : 0.0;
    }
};

/** Post-drain state of one device after a drift cycle. */
struct RecalibDeviceCycle
{
    int device_id = -1;
    uint64_t calibration_version = 0;
    std::vector<EdgeCalibration> edges;
    std::vector<EdgeBasis> bases;
    std::vector<FleetCircuitResult> verify; ///< Compiled post-drain.
};

/**
 * Failure-domain accounting of one serving fleet, reported per cycle.
 *
 * Like CacheManifest, this is *excluded* from the bit-identical
 * contract over fault-free runs (recalibReportsBitIdentical ignores
 * it); its own determinism contract is weaker but still exact: for a
 * fixed fault seed, two runs produce bit-identical HealthReports
 * (healthReportsBitIdentical / healthReportDigest).
 */
struct HealthReport
{
    /** Quarantined edges, sorted by (device, edge), with
     *  stale_cycles filled in from the live snapshots (report cycle
     *  minus the edge's last published calibration cycle). */
    std::vector<EdgeQuarantine> quarantined;
    uint64_t stage_retries = 0;      ///< Pipeline restarts (scheduler).
    uint64_t contained_errors = 0;   ///< Tasks quarantined, not failed.
    uint64_t quarantine_skipped = 0; ///< Jobs dropped in quarantine.
    /** Synthesis restarts that threw and were contained as aborted
     *  slots (summed over every engine the driver ran). */
    uint64_t synth_restarts_failed = 0;
    uint64_t cache_quarantines = 0;  ///< Snapshots renamed .quarantine.
    /** CacheIoStatus name of the last quarantined snapshot (empty
     *  when cache_quarantines == 0). */
    std::string last_cache_quarantine;
    /** Max stale_cycles over the quarantined edges (0 when none). */
    uint64_t max_stale_cycles = 0;
    /** run() devices whose failure was contained into a
     *  FleetDeviceStatus instead of tearing the fleet down. */
    uint64_t device_failures = 0;
    /** what() of the lowest-device-id contained failure so far
     *  (empty when device_failures == 0); deterministic regardless
     *  of shard interleaving. */
    std::string first_device_error;
};

/** Bitwise equality of two health reports -- the fixed-fault-seed
 *  replay contract (fault-free runs trivially satisfy it with empty
 *  reports). */
bool healthReportsBitIdentical(const HealthReport &a,
                               const HealthReport &b);

/** FNV-64 digest over exactly the fields healthReportsBitIdentical
 *  compares (defined beside it so the two can never drift apart);
 *  bench_recalib --faults diffs this across replayed runs. */
uint64_t healthReportDigest(const HealthReport &report);

/**
 * Post-cycle report: the settled calibration state plus verification
 * compiles against the final published sets. This is the object the
 * determinism contract quantifies over -- for a fixed seed it is
 * bit-identical whether the cycle's recalibration ran synchronously
 * or fully overlapped with serving, at 1 or N shards.
 */
struct RecalibCycleReport
{
    uint64_t cycle = 0;
    std::vector<RecalibDeviceCycle> devices;
    /** Cache accounting at report time. Excluded from the
     *  bit-identical contract: hit/miss history legitimately differs
     *  between a warm-started and a cold run that agree on every
     *  result. */
    CacheManifest cache;
    /** Failure-domain accounting. Excluded from the bit-identical
     *  contract like `cache` (fault-free runs keep it empty); gated
     *  separately by healthReportsBitIdentical under a fixed fault
     *  seed. */
    HealthReport health;
};

/** Bitwise equality of two post-cycle reports (the CacheManifest is
 *  excluded; see RecalibCycleReport::cache). */
bool recalibReportsBitIdentical(const RecalibCycleReport &a,
                                const RecalibCycleReport &b);

/** Bitwise equality of two compile passes' results (per-cell scores
 *  and served calibration versions; wall/wait times excluded). The
 *  warm-start contract gates on this: a fleet compilation restored
 *  from a snapshot must reproduce the cold pass exactly. */
bool compilePassesBitIdentical(const FleetCompilePass &a,
                               const FleetCompilePass &b);

/**
 * FNV-64 digest over exactly the fields compilePassesBitIdentical
 * compares (defined beside it so the two can never drift apart).
 * The CI persist-roundtrip job writes this next to the snapshot and
 * a later process asserts equality -- the cross-process form of the
 * bit-identical contract.
 */
uint64_t compilePassDigest(const FleetCompilePass &pass);

/** Shard-parallel fleet driver. */
class FleetDriver
{
  public:
    explicit FleetDriver(FleetOptions opts = {});

    /**
     * Calibrate + summarize every device and compile every circuit
     * on it, sharded across threads. A failing device never throws
     * out of run(): its error is contained into
     * FleetReport::statuses[d] (and counted into the HealthReport's
     * device_failures) while every other device completes normally.
     * The shared cache persists across run() calls (a warm fleet
     * recompiles without resynthesis); call cache().clear() between
     * calibration cycles instead.
     */
    FleetReport run(const std::vector<FleetDeviceSpec> &specs,
                    const std::vector<FleetCircuit> &circuits = {});

    // -- Cycle serving (async recalibration subsystem) --------------

    /**
     * Build persistent device state: sample every device, calibrate
     * it (sharded, like run()), and install the result behind a
     * VersionedBasisSet. Drains any in-flight recalibration first
     * (pipelines hold pointers into the states being replaced),
     * then replaces any previous device state.
     */
    void initDevices(const std::vector<FleetDeviceSpec> &specs);

    size_t deviceCount() const { return devices_.size(); }
    const FleetDeviceState &device(int device_id) const;

    /** Snapshot a device's current calibration (never blocks). */
    CalibrationSnapshot calibrationSnapshot(int device_id) const;

    /**
     * Schedule per-edge recalibration pipelines on the shared pool
     * (Background lane) and return immediately. Compilation keeps
     * serving the last published basis of every edge; each pipeline
     * atomically swaps its edge when done.
     */
    void recalibrate(const std::vector<RecalibEdgeRequest> &edges);

    /** Join every in-flight recalibration (rethrows task errors). */
    void drainRecalibration();

    /** Scheduler counters (zeroed when no recalibrate() ran yet). */
    RecalibScheduler::Stats recalibStats() const;

    /** Scheduler clock for overlap measurements (ms since the
     *  scheduler epoch); creates the scheduler on first use. */
    double recalibNowMs();

    /** Reset the scheduler's stats window (per-cycle overlap). */
    void resetRecalibWindow();

    /** Restart accounting summed over every engine the driver ran
     *  (run(), compileCircuits(), cycleReport()). */
    SynthEngine::Stats engineStats() const;

    /**
     * Compile every circuit on every initDevices() device against
     * its current calibration snapshot, sharded across threads. The
     * compile path never blocks on recalibration: an edge
     * mid-recalibration serves its last published basis.
     */
    FleetCompilePass
    compileCircuits(const std::vector<FleetCircuit> &circuits);

    /**
     * Post-drain cycle report: final published calibrations plus
     * verification compiles of `verify` against them. Call after
     * drainRecalibration().
     */
    RecalibCycleReport
    cycleReport(uint64_t cycle,
                const std::vector<FleetCircuit> &verify = {});

    // -- Cache persistence + retirement ------------------------------

    /**
     * Snapshot the shared Weyl-class cache to `path` (synth/cache_io
     * format). Call after drainRecalibration() -- and, to keep files
     * from growing unboundedly, after retireCache() -- so the
     * snapshot holds exactly the settled, live-referenced state.
     */
    CacheIoResult saveCache(const std::string &path);

    /**
     * Warm-start: merge a snapshot into the shared cache (existing
     * entries win; see SharedDecompositionCache::insertLoaded) and
     * open the warm-hit-rate window. Loaded classes are bit-identical
     * to freshly synthesized ones and re-dress through the same
     * canonicalKakDecompose() path, so a warm compile pass reproduces
     * the cold pass exactly.
     *
     * Failure domain: a *rejected* snapshot (bad magic, version or
     * quantum mismatch, truncation, checksum failure, malformed
     * contents) is quarantined -- renamed to `path + ".quarantine"`,
     * its CacheIoStatus logged and counted into the HealthReport --
     * and the fleet falls back to a cold start instead of aborting.
     * A missing/unreadable file (IoError) is a normal cold start and
     * is not quarantined.
     */
    CacheIoResult loadCache(const std::string &path);

    /**
     * Epoch-sweep retirement: drop every cached class whose basis
     * context no longer appears in any live device's VersionedBasisSet
     * snapshot, and every transpile plan whose basis-epoch vector
     * died (some device it references was recalibrated past the
     * epoch the plan was captured at, or no longer exists). Run
     * between drift cycles, after drainRecalibration() and before
     * saveCache() (a sweep during an in-flight recalibration could
     * drop classes presynthesized for a not yet published basis). A
     * no-op (returns 0) when no devices are live: run()-style fleets
     * have no versioned calibrations to refcount against. Returns the
     * number of *classes* retired; plan sweeps are reported through
     * planCache().stats().retired.
     */
    size_t retireCache();

    /** Sorted, deduplicated basis contexts of every live device --
     *  the refcount roots retireCache() sweeps against. */
    std::vector<uint64_t> liveContexts() const;

    /** Current (device id, basis epoch) of every live device, sorted
     *  by device id -- the liveness roots the plan sweep checks
     *  epoch vectors against. */
    std::vector<DeviceEpoch> liveDeviceEpochs() const;

    /** Cache accounting against the live calibrations (entry/byte
     *  counts, live/dead split, warm hit rate). */
    CacheManifest cacheManifest() const;

    SharedDecompositionCache &cache() { return cache_; }
    /** Fleet-wide transpile-plan cache (tier above the Weyl-class
     *  cache; see synth/plan_cache.hpp). The serving layer consults
     *  it through runCompile's PlanCache overload. */
    PlanCache &planCache() { return plan_cache_; }
    ThreadPool &pool() { return pool_; }
    const FleetOptions &options() const { return opts_; }

  private:
    FleetDeviceReport
    runDevice(int device_id, const FleetDeviceSpec &spec,
              const std::vector<FleetCircuit> &circuits,
              SynthEngine &engine);

    CalibratedBasisSet calibrateSpec(int device_id,
                                     const FleetDeviceSpec &spec,
                                     const GridDevice &device,
                                     const std::string &label) const;

    RecalibScheduler &scheduler();

    /** Run fn(device_id) for device ids [0, n), dealt round-robin
     *  onto opts_.shards shard threads; collects per-shard errors
     *  and rethrows the first in shard order (~ first failing
     *  device order). */
    void forEachDeviceSharded(
        size_t n, const std::function<void(int)> &fn) const;

    void absorbEngineStats(const SynthEngine &engine);

    /** Shard threads used for `n` devices (opts_.shards clamped). */
    int shardCount(int n_devices) const;

    FleetOptions opts_;
    ThreadPool pool_;
    SharedDecompositionCache cache_;
    PlanCache plan_cache_;
    std::vector<std::unique_ptr<FleetDeviceState>> devices_;
    std::unique_ptr<RecalibScheduler> recalib_;
    std::atomic<uint64_t> restarts_run_{0};
    std::atomic<uint64_t> restarts_pruned_{0};
    std::atomic<uint64_t> restarts_failed_{0};
    /** Snapshots loadCache() rejected and renamed to .quarantine. */
    std::atomic<uint64_t> cache_quarantines_{0};
    /** run() device failures contained into FleetDeviceStatus. */
    std::atomic<uint64_t> device_failures_{0};
    mutable std::mutex health_mutex_; ///< Guards the strings below.
    std::string last_cache_quarantine_;
    std::string first_device_error_;
    /** Device id of first_device_error_ (INT_MAX until a failure). */
    int first_device_error_id_ = INT_MAX;
    /** Cache counters at the last loadCache() (0 until then): the
     *  base of the warm-hit-rate window. */
    std::atomic<uint64_t> warm_base_hits_{0};
    std::atomic<uint64_t> warm_base_misses_{0};
};

} // namespace qbasis

#endif // QBASIS_CORE_FLEET_HPP
