#ifndef QBASIS_CORE_FLEET_HPP
#define QBASIS_CORE_FLEET_HPP

/**
 * @file
 * Fleet-level experiment driver: N simulated devices calibrated,
 * summarized (Table I), and compiled against (Table II) concurrently.
 *
 * The driver owns one process-wide ThreadPool and one process-wide
 * SharedDecompositionCache. Devices are dealt round-robin onto
 * `shards` shard threads; each shard runs its devices in increasing
 * device order through its own SynthEngine that *borrows* the shared
 * pool. Every synthesis job, regardless of originating device, lands
 * in the shared cache keyed by (basis hash, options, Weyl class) --
 * so two devices with byte-identical bases (replicated hardware, or
 * a device whose drift left an edge unchanged) synthesize each class
 * exactly once fleet-wide.
 *
 * Determinism: per-device work only reads fleet-global state through
 * the shared cache, whose published entries are pure functions of
 * (class gate, basis, options) with derived RNG streams. Reports are
 * therefore bit-identical for a fixed seed at 1 shard and at N
 * shards; see fleetReportsBitIdentical(), which the bench and tests
 * gate on. Per-device drift streams derive from the fleet seed via
 * Rng::deriveSeed(seed, device_id), independent of shard layout.
 */

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "synth/shared_cache.hpp"

namespace qbasis {

/** One device of the fleet. */
struct FleetDeviceSpec
{
    GridDeviceParams grid;   ///< Device sample (seed may be shared
                             ///< across devices to model replicated
                             ///< hardware).
    double xi = 0.04;        ///< Drive amplitude for calibration.
    SelectionCriterion criterion = SelectionCriterion::Criterion1;
    std::string label;       ///< Defaults to "dev<id>".
    /**
     * Give this device its own drifted unit-cell parameters: each
     * edge's PairDeviceParams drifts on a stream derived from the
     * fleet seed and the device id, so replicated devices with
     * drift disabled stay byte-identical (and share cache lines)
     * while drifted ones diverge (and synthesize their own classes).
     */
    bool apply_drift = false;
    DriftModel drift;        ///< Magnitudes when apply_drift is set.
};

/** A named logical circuit compiled on every device (Table II). */
struct FleetCircuit
{
    std::string name;
    Circuit circuit;
};

/** Options of the fleet driver. */
struct FleetOptions
{
    /** Shard threads; <= 0 means one shard per device. */
    int shards = 0;
    /** Workers in the shared pool; 0 = hardware concurrency. */
    int threads = 0;
    /** Lock stripes of the shared cache. */
    int cache_stripes = 16;
    /** Fleet master seed (per-device drift streams derive from it). */
    uint64_t seed = 2022;
    DeviceCalibrationOptions calib; ///< Per-device calibration.
    SynthOptions synth;             ///< Fleet-wide synthesis options
                                    ///< (part of the cache key: all
                                    ///< devices must share them to
                                    ///< share classes).
    TranspileOptions transpile;     ///< Circuit compilation options.
    double t_1q_ns = 20.0;
    double t_coherence_ns = 80e3;
};

/** One compiled circuit on one device. */
struct FleetCircuitResult
{
    std::string name;
    CompiledCircuitResult result;
};

/** Everything the fleet produced for one device. */
struct FleetDeviceReport
{
    int device_id = -1;
    std::string label;
    CalibratedBasisSet set;
    GateSetSummary summary;
    std::vector<FleetCircuitResult> circuits;
};

/** Fleet-wide outcome of one run() call. */
struct FleetReport
{
    std::vector<FleetDeviceReport> devices; ///< Indexed by device id.
    SharedDecompositionCache::Stats cache;  ///< Cumulative stats.
    int shards = 0;
    double wall_ms = 0.0;
};

/**
 * True when two reports are bit-identical in every result field
 * (basis matrices, durations, summaries, circuit scores). This is
 * the determinism contract the bench gates on: a fixed-seed fleet
 * must produce equal reports at 1 shard and at N shards.
 */
bool fleetReportsBitIdentical(const FleetReport &a,
                              const FleetReport &b);

/** Shard-parallel fleet driver. */
class FleetDriver
{
  public:
    explicit FleetDriver(FleetOptions opts = {});

    /**
     * Calibrate + summarize every device and compile every circuit
     * on it, sharded across threads. Throws the first (device-order)
     * error if any device fails. The shared cache persists across
     * run() calls (a warm fleet recompiles without resynthesis);
     * call cache().clear() between calibration cycles instead.
     */
    FleetReport run(const std::vector<FleetDeviceSpec> &specs,
                    const std::vector<FleetCircuit> &circuits = {});

    SharedDecompositionCache &cache() { return cache_; }
    ThreadPool &pool() { return pool_; }
    const FleetOptions &options() const { return opts_; }

  private:
    FleetDeviceReport
    runDevice(int device_id, const FleetDeviceSpec &spec,
              const std::vector<FleetCircuit> &circuits,
              SynthEngine &engine);

    FleetOptions opts_;
    ThreadPool pool_;
    SharedDecompositionCache cache_;
};

} // namespace qbasis

#endif // QBASIS_CORE_FLEET_HPP
