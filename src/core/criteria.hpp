#ifndef QBASIS_CORE_CRITERIA_HPP
#define QBASIS_CORE_CRITERIA_HPP

/**
 * @file
 * Basis-gate selection criteria (paper Section V-E).
 *
 * Criterion 1: the fastest gate on the trajectory that synthesizes
 * SWAP in 3 layers. Criterion 2 additionally requires CNOT in
 * 2 layers. The extension criteria illustrate Section V-E's remark
 * that the framework composes with other metrics (perfect
 * entanglement, entangling power).
 */

#include <functional>
#include <string>

#include "weyl/cartan.hpp"

namespace qbasis {

/** Selection criteria for per-edge basis gates. */
enum class SelectionCriterion {
    Criterion1,       ///< SWAP in <= 3 layers.
    Criterion2,       ///< SWAP in <= 3 AND CNOT in <= 2 layers.
    PerfectEntangler, ///< First perfect entangler on the trajectory.
    PeAndSwap3,       ///< PE and SWAP in <= 3 layers (Section V-E).
};

/** Human-readable criterion name. */
std::string criterionName(SelectionCriterion c);

/** Whether canonical coordinates satisfy the criterion. */
bool criterionSatisfied(SelectionCriterion c, const CartanCoords &coords,
                        double eps = 1e-9);

/** The criterion as a reusable predicate. */
std::function<bool(const CartanCoords &)>
criterionPredicate(SelectionCriterion c);

} // namespace qbasis

#endif // QBASIS_CORE_CRITERIA_HPP
