#include "core/recalib.hpp"

#include "util/logging.hpp"

namespace qbasis {

VersionedBasisSet::VersionedBasisSet(CalibratedBasisSet initial)
{
    publish(std::move(initial));
}

CalibrationSnapshot
VersionedBasisSet::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CalibrationSnapshot snap;
    snap.version = version_;
    snap.set = current_;
    return snap;
}

uint64_t
VersionedBasisSet::publish(CalibratedBasisSet next)
{
    auto replacement = std::make_shared<const CalibratedBasisSet>(
        std::move(next));
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(replacement);
    return ++version_;
}

uint64_t
VersionedBasisSet::publishEdge(const EdgeCalibration &cal,
                               const EdgeBasis &basis)
{
    const size_t edge = static_cast<size_t>(cal.edge_id);
    // Copy-on-write with a compare-and-swap retry: the whole-set
    // copy always happens outside the lock, so the lock is never
    // held longer than a pointer compare + swap and snapshot()
    // stays wait-free in practice. Concurrent publishers to
    // *different* edges (the normal case when a cycle retunes
    // several edges of one device) just retry against the freshest
    // set; publishers to the *same* edge are serialized by the
    // scheduler's per-edge FIFO queues.
    for (;;) {
        CalibrationSnapshot snap = snapshot();
        if (!snap.set || edge >= snap.set->edges.size())
            panic("VersionedBasisSet: publishEdge on unknown edge %d",
                  cal.edge_id);
        CalibratedBasisSet next = *snap.set;
        next.edges[edge] = cal;
        next.bases[edge] = basis;
        auto replacement = std::make_shared<const CalibratedBasisSet>(
            std::move(next));

        std::lock_guard<std::mutex> lock(mutex_);
        if (current_ != snap.set)
            continue; // lost a race; rebuild from the fresher set
        current_ = std::move(replacement);
        return ++version_;
    }
}

uint64_t
VersionedBasisSet::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return version_;
}

// The versioned compileAndScore shim (deprecated) is defined in
// serve/api.cpp on top of runCompile.

void
appendLiveContexts(const CalibrationSnapshot &snap,
                   const SynthOptions &synth,
                   std::vector<uint64_t> &out)
{
    if (!snap.set)
        return;
    for (const EdgeBasis &basis : snap.set->bases)
        out.push_back(DecompositionCache::contextHash(basis.gate,
                                                      synth));
}

} // namespace qbasis
