#include "core/experiment.hpp"

#include <algorithm>

#include "noise/coherence.hpp"
#include "synth/engine.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

CalibratedBasisSet
calibrateDevice(const GridDevice &device, double xi,
                SelectionCriterion criterion, const std::string &label,
                const DeviceCalibrationOptions &opts)
{
    const CouplingMap &cm = device.coupling();
    const size_t n_edges = cm.edges().size();
    const size_t simulate_edges =
        opts.edge_limit > 0
            ? std::min<size_t>(opts.edge_limit, n_edges)
            : n_edges;

    CalibratedBasisSet set;
    set.label = label;
    set.xi = xi;
    set.criterion = criterion;
    set.edges.resize(n_edges);
    set.bases.resize(n_edges);

    for (size_t eid = 0; eid < simulate_edges; ++eid) {
        PairDeviceParams params =
            device.edgeParams(static_cast<int>(eid));
        if (opts.apply_drift) {
            // Per-edge derived stream: drifted parameters do not
            // depend on edge order or on edge_limit.
            Rng rng(Rng::deriveSeed(opts.drift_seed, eid));
            params = driftParams(params, opts.drift, rng);
        }
        const PairSimulator sim(params, device.couplerOmegaMax(),
                                opts.sim);

        EdgeCalibration cal;
        cal.edge_id = static_cast<int>(eid);
        cal.xi = xi;
        cal.omega_c0 = sim.omegaC0();
        cal.zz_residual = sim.zzResidual();
        cal.omega_d = sim.calibrateDriveFrequency(xi);

        double window = opts.max_ns;
        std::optional<SelectedBasisGate> sel;
        for (int ext = 0; ext <= opts.max_extensions && !sel; ++ext) {
            const Trajectory traj =
                sim.simulateTrajectory(xi, cal.omega_d, window);
            sel = selectBasisGate(traj, criterion, opts.selector);
            window *= 2.0;
        }
        if (!sel) {
            fatal("edge %zu: no basis gate satisfied criterion '%s' "
                  "within %.0f ns", eid,
                  criterionName(criterion).c_str(), window / 2.0);
        }
        cal.gate = *sel;
        set.edges[eid] = cal;
        set.bases[eid].gate = sel->gate;
        set.bases[eid].duration_ns = sel->duration_ns;
        set.bases[eid].label = label;

        if ((eid + 1) % 20 == 0) {
            inform("[%s] calibrated %zu/%zu edges", label.c_str(),
                   eid + 1, simulate_edges);
        }
    }

    // Fast mode: replicate calibrated edges round-robin so the basis
    // table stays complete for the transpiler.
    for (size_t eid = simulate_edges; eid < n_edges; ++eid) {
        const size_t src = eid % simulate_edges;
        set.edges[eid] = set.edges[src];
        set.edges[eid].edge_id = static_cast<int>(eid);
        set.bases[eid] = set.bases[src];
    }
    return set;
}

namespace {

/** SWAP + CNOT synthesis request per edge (the Table I batch). */
std::vector<SynthRequest>
gateSetRequests(const CouplingMap &cm, const CalibratedBasisSet &set)
{
    std::vector<SynthRequest> requests;
    requests.reserve(2 * cm.edges().size());
    for (size_t eid = 0; eid < cm.edges().size(); ++eid) {
        SynthRequest swap_req;
        swap_req.edge_id = static_cast<int>(eid);
        swap_req.target = swapGate();
        swap_req.basis = set.bases[eid].gate;
        requests.push_back(swap_req);
        SynthRequest cnot_req;
        cnot_req.edge_id = static_cast<int>(eid);
        cnot_req.target = cnotGate();
        cnot_req.basis = set.bases[eid].gate;
        requests.push_back(cnot_req);
    }
    return requests;
}

/** Fold the per-edge decompositions into the Table I row. */
GateSetSummary
summarizeFromDecompositions(
    const CouplingMap &cm, const CalibratedBasisSet &set,
    const std::vector<TwoQubitDecomposition> &decs, double t_1q_ns,
    double t_coherence_ns)
{
    GateSetSummary s;
    s.label = set.label;

    RunningStats basis_ns, swap_ns, cnot_ns;
    RunningStats basis_fid, swap_fid, cnot_fid;
    RunningStats swap_layers, cnot_layers, oneq_share;

    for (size_t eid = 0; eid < cm.edges().size(); ++eid) {
        const EdgeBasis &eb = set.bases[eid];
        basis_ns.add(eb.duration_ns);
        basis_fid.add(1.0
                      - coherenceLimitError(2, eb.duration_ns,
                                            t_coherence_ns));

        const TwoQubitDecomposition &swap_dec = decs[2 * eid];
        const TwoQubitDecomposition &cnot_dec = decs[2 * eid + 1];

        const double swap_t =
            swap_dec.duration(eb.duration_ns, t_1q_ns);
        const double cnot_t =
            cnot_dec.duration(eb.duration_ns, t_1q_ns);
        swap_ns.add(swap_t);
        cnot_ns.add(cnot_t);
        swap_fid.add(
            1.0 - coherenceLimitError(2, swap_t, t_coherence_ns));
        cnot_fid.add(
            1.0 - coherenceLimitError(2, cnot_t, t_coherence_ns));
        swap_layers.add(swap_dec.layers());
        cnot_layers.add(cnot_dec.layers());
        oneq_share.add((swap_dec.layers() + 1.0) * t_1q_ns / swap_t);
        s.max_decomposition_infidelity =
            std::max({s.max_decomposition_infidelity,
                      swap_dec.infidelity, cnot_dec.infidelity});
    }

    s.avg_basis_ns = basis_ns.mean();
    s.avg_swap_ns = swap_ns.mean();
    s.avg_cnot_ns = cnot_ns.mean();
    s.avg_basis_fidelity = basis_fid.mean();
    s.avg_swap_fidelity = swap_fid.mean();
    s.avg_cnot_fidelity = cnot_fid.mean();
    s.avg_swap_layers = swap_layers.mean();
    s.avg_cnot_layers = cnot_layers.mean();
    s.one_q_share_swap = oneq_share.mean();
    return s;
}

} // namespace

GateSetSummary
summarizeGateSet(const GridDevice &device, const CalibratedBasisSet &set,
                 DecompositionCache &cache, const SynthOptions &synth,
                 double t_1q_ns, double t_coherence_ns)
{
    // Batch the whole device sweep (SWAP + CNOT per edge) through
    // the engine: distinct Weyl classes synthesize in parallel,
    // repeated basis gates collapse onto shared cache lines.
    const CouplingMap &cm = device.coupling();
    const std::vector<TwoQubitDecomposition> decs =
        SynthEngine::shared().synthesizeBatch(
            gateSetRequests(cm, set), cache, synth);
    return summarizeFromDecompositions(cm, set, decs, t_1q_ns,
                                       t_coherence_ns);
}

GateSetSummary
summarizeGateSet(const GridDevice &device, const CalibratedBasisSet &set,
                 const SynthClient &client, const SynthOptions &synth,
                 double t_1q_ns, double t_coherence_ns)
{
    const CouplingMap &cm = device.coupling();
    const std::vector<TwoQubitDecomposition> decs =
        client.synthesizeBatch(gateSetRequests(cm, set), synth);
    return summarizeFromDecompositions(cm, set, decs, t_1q_ns,
                                       t_coherence_ns);
}

// The compileAndScore shims (deprecated Table II entry points) are
// defined in serve/api.cpp on top of runCompile.

} // namespace qbasis
