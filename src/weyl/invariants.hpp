#ifndef QBASIS_WEYL_INVARIANTS_HPP
#define QBASIS_WEYL_INVARIANTS_HPP

/**
 * @file
 * Local invariants of two-qubit gates: Makhlin invariants, entangling
 * power, and the perfect-entangler predicate.
 */

#include "linalg/mat4.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/**
 * The Makhlin local invariants (g1 complex, g2 real). Two 2Q gates
 * are locally equivalent iff their invariants agree.
 */
struct MakhlinInvariants
{
    Complex g1;
    double g2 = 0.0;
};

/** Invariants of a unitary (phase-normalized internally). */
MakhlinInvariants makhlinInvariants(const Mat4 &u);

/** Invariants of the canonical gate with the given coordinates. */
MakhlinInvariants invariantsFromCoords(const CartanCoords &c);

/**
 * Squared distance in invariant space; zero iff locally equivalent.
 * This is the (smooth) objective used by the two-layer feasibility
 * oracle.
 */
double invariantDistanceSq(const MakhlinInvariants &a,
                           const MakhlinInvariants &b);

/**
 * Entangling power ep in [0, 2/9] from canonical coordinates
 * (Zanardi et al.):
 *   ep = (3 - cos(2 pi tx) cos(2 pi ty) - cos(2 pi ty) cos(2 pi tz)
 *           - cos(2 pi tz) cos(2 pi tx)) / 18.
 * ep(CNOT) = ep(iSWAP) = ep(B) = 2/9; ep(sqrt(iSWAP)) = 1/6;
 * ep(I) = ep(SWAP) = 0.
 */
double entanglingPower(const CartanCoords &c);

/** Entangling power of a unitary (through its Cartan coordinates). */
double entanglingPower(const Mat4 &u);

/**
 * Perfect-entangler predicate on canonical coordinates:
 * tx + ty >= 1/2 and tx - ty <= 1/2 and ty + tz <= 1/2.
 * The PE polyhedron occupies exactly half the chamber volume.
 */
bool isPerfectEntangler(const CartanCoords &canonical, double eps = 1e-9);

} // namespace qbasis

#endif // QBASIS_WEYL_INVARIANTS_HPP
