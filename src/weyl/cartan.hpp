#ifndef QBASIS_WEYL_CARTAN_HPP
#define QBASIS_WEYL_CARTAN_HPP

/**
 * @file
 * Cartan (Weyl-chamber) coordinates of two-qubit gates.
 *
 * Coordinates follow the paper's Eq. (1):
 *   U = k1 exp(-i pi/2 (tx XX + ty YY + tz ZZ)) k2,
 * so CNOT/CZ = (1/2,0,0), iSWAP = (1/2,1/2,0), SWAP = (1/2,1/2,1/2).
 * The canonical chamber is the tetrahedron {I0, I1, iSWAP, SWAP} with
 * the bottom-plane identification (tx,ty,0) ~ (1-tx,ty,0) resolved
 * toward tx <= 1/2.
 */

#include <string>

#include "linalg/mat4.hpp"

namespace qbasis {

/** A point in Cartan-coordinate space. */
struct CartanCoords
{
    double tx = 0.0;
    double ty = 0.0;
    double tz = 0.0;

    CartanCoords() = default;
    CartanCoords(double x, double y, double z) : tx(x), ty(y), tz(z) {}

    CartanCoords operator+(const CartanCoords &o) const
    {
        return {tx + o.tx, ty + o.ty, tz + o.tz};
    }
    CartanCoords operator-(const CartanCoords &o) const
    {
        return {tx - o.tx, ty - o.ty, tz - o.tz};
    }
    CartanCoords operator*(double s) const
    {
        return {tx * s, ty * s, tz * s};
    }

    /** Euclidean distance to another coordinate triple. */
    double distance(const CartanCoords &o) const;

    /** Human-readable "(tx, ty, tz)". */
    std::string str(int precision = 4) const;
};

/** Named canonical-chamber points used throughout the paper. */
namespace coords {
CartanCoords identity0();   ///< (0, 0, 0)
CartanCoords identity1();   ///< (1, 0, 0)
CartanCoords cnot();        ///< (1/2, 0, 0) -- also CZ
CartanCoords iswap();       ///< (1/2, 1/2, 0)
CartanCoords swap();        ///< (1/2, 1/2, 1/2)
CartanCoords sqrtIswap();   ///< (1/4, 1/4, 0)
CartanCoords sqrtIswapMirror(); ///< (3/4, 1/4, 0), same class as sqiSW
CartanCoords sqrtSwap();    ///< (1/4, 1/4, 1/4)
CartanCoords sqrtSwapDag(); ///< (3/4, 1/4, 1/4)
CartanCoords bGate();       ///< (1/2, 1/4, 0)
} // namespace coords

/**
 * Reduce arbitrary Cartan coordinates into the canonical chamber.
 *
 * The reduction applies the local-equivalence symmetries: coordinate
 * shifts by integers, pairwise sign flips, coordinate permutations,
 * and the bottom-plane mirror.
 *
 * @param t    raw coordinates (any real values).
 * @param eps  snapping tolerance for boundary decisions.
 */
CartanCoords canonicalize(const CartanCoords &t, double eps = 1e-10);

/** True iff t lies inside the canonical chamber (within eps). */
bool inCanonicalChamber(const CartanCoords &t, double eps = 1e-9);

/**
 * Canonical Cartan coordinates of a two-qubit unitary.
 *
 * Computed through the full KAK decomposition, then canonicalized.
 */
CartanCoords cartanCoords(const Mat4 &u);

/**
 * Distance between the local-equivalence classes of two coordinate
 * triples: Euclidean distance after canonicalizing both (not a true
 * quotient metric, but zero iff locally equivalent and smooth enough
 * for the uses here).
 */
double canonicalDistance(const CartanCoords &a, const CartanCoords &b);

} // namespace qbasis

#endif // QBASIS_WEYL_CARTAN_HPP
