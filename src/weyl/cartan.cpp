#include "weyl/cartan.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "weyl/kak.hpp"

namespace qbasis {

double
CartanCoords::distance(const CartanCoords &o) const
{
    const double dx = tx - o.tx;
    const double dy = ty - o.ty;
    const double dz = tz - o.tz;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

std::string
CartanCoords::str(int precision) const
{
    return strformat("(%.*f, %.*f, %.*f)", precision, tx, precision, ty,
                     precision, tz);
}

namespace coords {

CartanCoords identity0() { return {0.0, 0.0, 0.0}; }
CartanCoords identity1() { return {1.0, 0.0, 0.0}; }
CartanCoords cnot() { return {0.5, 0.0, 0.0}; }
CartanCoords iswap() { return {0.5, 0.5, 0.0}; }
CartanCoords swap() { return {0.5, 0.5, 0.5}; }
CartanCoords sqrtIswap() { return {0.25, 0.25, 0.0}; }
CartanCoords sqrtIswapMirror() { return {0.75, 0.25, 0.0}; }
CartanCoords sqrtSwap() { return {0.25, 0.25, 0.25}; }
CartanCoords sqrtSwapDag() { return {0.75, 0.25, 0.25}; }
CartanCoords bGate() { return {0.5, 0.25, 0.0}; }

} // namespace coords

CartanCoords
canonicalize(const CartanCoords &t, double eps)
{
    // Reduce each coordinate mod 1 into [0, 1), snapping values that
    // round up to 1 back to 0.
    auto mod1 = [eps](double v) {
        v -= std::floor(v);
        if (v >= 1.0 - eps)
            v = 0.0;
        return v;
    };

    double a[3] = {mod1(t.tx), mod1(t.ty), mod1(t.tz)};

    // Iterate: sort descending; while the leading pair violates
    // tx + ty <= 1, apply the pairwise sign flip (x,y) -> (1-x, 1-y),
    // which is a local symmetry. Each application strictly decreases
    // the coordinate sum, so this terminates.
    for (int iter = 0; iter < 64; ++iter) {
        std::sort(a, a + 3, std::greater<double>());
        if (a[0] + a[1] <= 1.0 + eps)
            break;
        a[0] = mod1(1.0 - a[0]);
        a[1] = mod1(1.0 - a[1]);
    }
    std::sort(a, a + 3, std::greater<double>());

    // Bottom-plane identification: (tx, ty, 0) ~ (1-tx, ty, 0).
    if (a[2] <= eps) {
        a[2] = 0.0;
        if (a[0] > 0.5 + eps) {
            a[0] = mod1(1.0 - a[0]);
            std::sort(a, a + 3, std::greater<double>());
        }
    }
    // Snap exact boundary representations.
    for (double &v : a) {
        if (v <= eps)
            v = 0.0;
    }
    return {a[0], a[1], a[2]};
}

bool
inCanonicalChamber(const CartanCoords &t, double eps)
{
    if (!(t.tx >= -eps && t.ty >= -eps && t.tz >= -eps))
        return false;
    if (!(t.tx >= t.ty - eps && t.ty >= t.tz - eps))
        return false;
    if (t.tx + t.ty > 1.0 + eps)
        return false;
    if (t.tz <= eps && t.tx > 0.5 + eps)
        return false;
    return true;
}

CartanCoords
cartanCoords(const Mat4 &u)
{
    const KakDecomposition kak = kakDecompose(u);
    return canonicalize(kak.coords);
}

double
canonicalDistance(const CartanCoords &a, const CartanCoords &b)
{
    return canonicalize(a).distance(canonicalize(b));
}

} // namespace qbasis
