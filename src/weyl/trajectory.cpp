#include "weyl/trajectory.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace qbasis {

Trajectory::Trajectory(std::vector<TrajectoryPoint> points)
    : points_(std::move(points))
{
    for (size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].duration < points_[i - 1].duration)
            fatal("Trajectory points must be sorted by duration");
    }
}

void
Trajectory::append(TrajectoryPoint p)
{
    if (!points_.empty() && p.duration < points_.back().duration)
        fatal("Trajectory::append requires non-decreasing durations");
    points_.push_back(std::move(p));
}

std::optional<size_t>
Trajectory::firstIndexWhere(
    const std::function<bool(const TrajectoryPoint &)> &pred) const
{
    for (size_t i = 0; i < points_.size(); ++i) {
        if (pred(points_[i]))
            return i;
    }
    return std::nullopt;
}

double
Trajectory::maxLeakage() const
{
    double m = 0.0;
    for (const auto &p : points_)
        m = std::max(m, p.leakage);
    return m;
}

} // namespace qbasis
