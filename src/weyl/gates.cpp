#include "weyl/gates.hpp"

#include <cmath>

#include "linalg/types.hpp"

namespace qbasis {

Mat4
cnotGate()
{
    return Mat4::fromRows({
        Complex(1), 0, 0, 0,
        0, Complex(1), 0, 0,
        0, 0, 0, Complex(1),
        0, 0, Complex(1), 0,
    });
}

Mat4
czGate()
{
    return Mat4::diag(1.0, 1.0, 1.0, -1.0);
}

Mat4
swapGate()
{
    return Mat4::fromRows({
        Complex(1), 0, 0, 0,
        0, 0, Complex(1), 0,
        0, Complex(1), 0, 0,
        0, 0, 0, Complex(1),
    });
}

Mat4
iswapGate()
{
    return Mat4::fromRows({
        Complex(1), 0, 0, 0,
        0, 0, kI, 0,
        0, kI, 0, 0,
        0, 0, 0, Complex(1),
    });
}

Mat4
sqrtIswapGate()
{
    const double s = 1.0 / std::sqrt(2.0);
    return Mat4::fromRows({
        Complex(1), 0, 0, 0,
        0, Complex(s), kI * s, 0,
        0, kI * s, Complex(s), 0,
        0, 0, 0, Complex(1),
    });
}

Mat4
sqrtSwapGate()
{
    const Complex p(0.5, 0.5);
    const Complex m(0.5, -0.5);
    return Mat4::fromRows({
        Complex(1), 0, 0, 0,
        0, p, m, 0,
        0, m, p, 0,
        0, 0, 0, Complex(1),
    });
}

Mat4
sqrtSwapDagGate()
{
    return sqrtSwapGate().dagger();
}

Mat4
bGate()
{
    return canonicalGate(0.5, 0.25, 0.0);
}

Mat4
cphaseGate(double theta)
{
    return Mat4::diag(1.0, 1.0, 1.0, std::exp(kI * theta));
}

Mat4
crzGate(double theta)
{
    return Mat4::diag(1.0, 1.0, std::exp(-kI * (theta / 2.0)),
                      std::exp(kI * (theta / 2.0)));
}

Mat4
rzzGate(double theta)
{
    const Complex em = std::exp(-kI * (theta / 2.0));
    const Complex ep = std::exp(kI * (theta / 2.0));
    return Mat4::diag(em, ep, ep, em);
}

Mat4
xxOp()
{
    Mat4 m;
    m(0, 3) = 1.0;
    m(1, 2) = 1.0;
    m(2, 1) = 1.0;
    m(3, 0) = 1.0;
    return m;
}

Mat4
yyOp()
{
    Mat4 m;
    m(0, 3) = -1.0;
    m(1, 2) = 1.0;
    m(2, 1) = 1.0;
    m(3, 0) = -1.0;
    return m;
}

Mat4
zzOp()
{
    return Mat4::diag(1.0, -1.0, -1.0, 1.0);
}

Mat4
canonicalGate(double tx, double ty, double tz)
{
    // XX, YY, ZZ commute; exp of each factor is cos - i sin * P.
    auto factor = [](const Mat4 &p, double t) {
        const double ang = kPi / 2.0 * t;
        Mat4 m = Mat4::identity() * Complex(std::cos(ang), 0.0);
        m += p * (-kI * std::sin(ang));
        return m;
    };
    return factor(xxOp(), tx) * factor(yyOp(), ty) * factor(zzOp(), tz);
}

Mat4
magicBasis()
{
    const double s = 1.0 / std::sqrt(2.0);
    return Mat4::fromRows({
        Complex(s), 0, 0, kI * s,
        0, kI * s, Complex(s), 0,
        0, kI * s, Complex(-s), 0,
        Complex(s), 0, 0, -kI * s,
    });
}

} // namespace qbasis
