#include "weyl/invariants.hpp"

#include <cmath>

#include "weyl/gates.hpp"

namespace qbasis {

MakhlinInvariants
makhlinInvariants(const Mat4 &u)
{
    static const Mat4 q = magicBasis();
    static const Mat4 qd = q.dagger();

    const Mat4 m = qd * u.toSU4() * q;
    const Mat4 mt_m = m.transpose() * m;

    const Complex tr = mt_m.trace();
    // Tr(mtm^2) without forming the square.
    Complex tr2{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            tr2 += mt_m(i, j) * mt_m(j, i);

    MakhlinInvariants inv;
    inv.g1 = tr * tr / 16.0;
    inv.g2 = ((tr * tr - tr2) / 4.0).real();
    return inv;
}

MakhlinInvariants
invariantsFromCoords(const CartanCoords &c)
{
    // Closed form via the magic-basis spectrum of the canonical gate:
    // eigenphases are -pi/2 (s . t) over the sign triples s with
    // sx sy sz = -1.
    const double px = kPi * c.tx;
    const double py = kPi * c.ty;
    const double pz = kPi * c.tz;
    // Sum over the four triples (+,+,-),(+,-,+),(-,+,+),(-,-,-):
    const Complex e1 = std::exp(Complex(0.0, -(px + py - pz) / 1.0));
    const Complex e2 = std::exp(Complex(0.0, -(px - py + pz)));
    const Complex e3 = std::exp(Complex(0.0, -(-px + py + pz)));
    const Complex e4 = std::exp(Complex(0.0, (px + py + pz)));
    const Complex tr = e1 + e2 + e3 + e4;
    const Complex tr2 = e1 * e1 + e2 * e2 + e3 * e3 + e4 * e4;

    MakhlinInvariants inv;
    inv.g1 = tr * tr / 16.0;
    inv.g2 = ((tr * tr - tr2) / 4.0).real();
    return inv;
}

double
invariantDistanceSq(const MakhlinInvariants &a, const MakhlinInvariants &b)
{
    const double d1 = std::norm(a.g1 - b.g1);
    const double d2 = a.g2 - b.g2;
    return d1 + d2 * d2;
}

double
entanglingPower(const CartanCoords &c)
{
    const double cx = std::cos(kTwoPi * c.tx);
    const double cy = std::cos(kTwoPi * c.ty);
    const double cz = std::cos(kTwoPi * c.tz);
    return (3.0 - cx * cy - cy * cz - cz * cx) / 18.0;
}

double
entanglingPower(const Mat4 &u)
{
    return entanglingPower(cartanCoords(u));
}

bool
isPerfectEntangler(const CartanCoords &c, double eps)
{
    return c.tx + c.ty >= 0.5 - eps && c.tx - c.ty <= 0.5 + eps
           && c.ty + c.tz <= 0.5 + eps;
}

} // namespace qbasis
