#include "weyl/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace qbasis {

namespace {

/** 3x3 determinant of column vectors. */
double
det3(const CartanCoords &a, const CartanCoords &b, const CartanCoords &c)
{
    return a.tx * (b.ty * c.tz - b.tz * c.ty)
           - a.ty * (b.tx * c.tz - b.tz * c.tx)
           + a.tz * (b.tx * c.ty - b.ty * c.tx);
}

CartanCoords
cross(const CartanCoords &a, const CartanCoords &b)
{
    return {a.ty * b.tz - a.tz * b.ty, a.tz * b.tx - a.tx * b.tz,
            a.tx * b.ty - a.ty * b.tx};
}

double
dot(const CartanCoords &a, const CartanCoords &b)
{
    return a.tx * b.tx + a.ty * b.ty + a.tz * b.tz;
}

} // namespace

double
Tetrahedron::volume() const
{
    const CartanCoords e1 = v[1] - v[0];
    const CartanCoords e2 = v[2] - v[0];
    const CartanCoords e3 = v[3] - v[0];
    return std::abs(det3(e1, e2, e3)) / 6.0;
}

bool
Tetrahedron::contains(const CartanCoords &p, double eps) const
{
    // Barycentric coordinates via Cramer's rule.
    const CartanCoords e1 = v[1] - v[0];
    const CartanCoords e2 = v[2] - v[0];
    const CartanCoords e3 = v[3] - v[0];
    const double d = det3(e1, e2, e3);
    if (std::abs(d) < 1e-300)
        return false;
    const CartanCoords r = p - v[0];
    const double b1 = det3(r, e2, e3) / d;
    const double b2 = det3(e1, r, e3) / d;
    const double b3 = det3(e1, e2, r) / d;
    const double b0 = 1.0 - b1 - b2 - b3;
    return b0 >= -eps && b1 >= -eps && b2 >= -eps && b3 >= -eps;
}

double
weylChamberVolume()
{
    return 1.0 / 24.0;
}

Tetrahedron
weylChamberTetrahedron()
{
    return Tetrahedron{{coords::identity0(), coords::identity1(),
                        coords::iswap(), coords::swap()}};
}

std::optional<double>
segmentTriangleIntersection(const CartanCoords &p0, const CartanCoords &p1,
                            const Triangle &tri, double eps)
{
    // Moller-Trumbore adapted to segments.
    const CartanCoords dir = p1 - p0;
    const CartanCoords e1 = tri.v[1] - tri.v[0];
    const CartanCoords e2 = tri.v[2] - tri.v[0];
    const CartanCoords h = cross(dir, e2);
    const double a = dot(e1, h);
    if (std::abs(a) < eps)
        return std::nullopt; // Parallel to the triangle plane.
    const double f = 1.0 / a;
    const CartanCoords s = p0 - tri.v[0];
    const double u = f * dot(s, h);
    if (u < -1e-9 || u > 1.0 + 1e-9)
        return std::nullopt;
    const CartanCoords q = cross(s, e1);
    const double v = f * dot(dir, q);
    if (v < -1e-9 || u + v > 1.0 + 1e-9)
        return std::nullopt;
    const double t = f * dot(e2, q);
    if (t < -1e-9 || t > 1.0 + 1e-9)
        return std::nullopt;
    return std::clamp(t, 0.0, 1.0);
}

double
pointSegmentDistance(const CartanCoords &p, const CartanCoords &a,
                     const CartanCoords &b)
{
    const CartanCoords ab = b - a;
    const double len2 = dot(ab, ab);
    if (len2 < 1e-300)
        return p.distance(a);
    double t = dot(p - a, ab) / len2;
    t = std::clamp(t, 0.0, 1.0);
    const CartanCoords proj = a + ab * t;
    return p.distance(proj);
}

} // namespace qbasis
