#ifndef QBASIS_WEYL_TRAJECTORY_HPP
#define QBASIS_WEYL_TRAJECTORY_HPP

/**
 * @file
 * Cartan trajectories: time-ordered sequences of two-qubit unitaries
 * produced by increasing the entangling pulse duration.
 */

#include <functional>
#include <optional>
#include <vector>

#include "linalg/mat4.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/** One sampled point of a Cartan trajectory. */
struct TrajectoryPoint
{
    double duration = 0.0;   ///< Entangling pulse duration (ns).
    Mat4 unitary;            ///< Effective 2Q unitary at this duration.
    CartanCoords coords;     ///< Canonical Cartan coordinates.
    double leakage = 0.0;    ///< Population left outside the 2Q space.
};

/**
 * A sampled Cartan trajectory (typically at the 1 ns controller
 * resolution the paper assumes).
 */
class Trajectory
{
  public:
    Trajectory() = default;

    /** Construct from pre-computed points (sorted by duration). */
    explicit Trajectory(std::vector<TrajectoryPoint> points);

    /** Append one sample; durations must be non-decreasing. */
    void append(TrajectoryPoint p);

    /** Number of samples. */
    size_t size() const { return points_.size(); }

    /** True when no samples are present. */
    bool empty() const { return points_.empty(); }

    /** Access a sample. */
    const TrajectoryPoint &at(size_t i) const { return points_.at(i); }

    /** All samples. */
    const std::vector<TrajectoryPoint> &points() const { return points_; }

    /**
     * First sample (by duration) satisfying `pred`, or nullopt.
     * This models selecting the fastest gate at controller
     * resolution.
     */
    std::optional<size_t>
    firstIndexWhere(const std::function<bool(const TrajectoryPoint &)> &pred)
        const;

    /** Largest leakage over all samples. */
    double maxLeakage() const;

  private:
    std::vector<TrajectoryPoint> points_;
};

} // namespace qbasis

#endif // QBASIS_WEYL_TRAJECTORY_HPP
