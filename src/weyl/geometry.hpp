#ifndef QBASIS_WEYL_GEOMETRY_HPP
#define QBASIS_WEYL_GEOMETRY_HPP

/**
 * @file
 * Euclidean geometry primitives in Cartan-coordinate space:
 * tetrahedra, triangular faces, segments, intersections.
 *
 * These primitives back the closed-form region descriptions from the
 * paper's Fig. 4 (the tetrahedra of gates unable to synthesize SWAP
 * in 3 layers / CNOT in 2 layers, and the faces whose crossing marks
 * the fastest usable basis gate).
 */

#include <array>
#include <optional>

#include "weyl/cartan.hpp"

namespace qbasis {

/** A tetrahedron given by its four vertices. */
struct Tetrahedron
{
    std::array<CartanCoords, 4> v;

    /** Signed volume / 6 formula; returns the absolute volume. */
    double volume() const;

    /** Containment test with boundary tolerance eps. */
    bool contains(const CartanCoords &p, double eps = 1e-9) const;
};

/** A triangle (used as a chamber face). */
struct Triangle
{
    std::array<CartanCoords, 3> v;
};

/** Volume of the canonical Weyl chamber tetrahedron (1/24). */
double weylChamberVolume();

/** The canonical chamber as a tetrahedron {I0, I1, iSWAP, SWAP}. */
Tetrahedron weylChamberTetrahedron();

/**
 * Intersect segment p0->p1 with a triangle. Returns the segment
 * parameter s in [0,1] of the first crossing, or nullopt.
 */
std::optional<double> segmentTriangleIntersection(
    const CartanCoords &p0, const CartanCoords &p1, const Triangle &tri,
    double eps = 1e-12);

/**
 * Distance from a point to a segment a->b (used for L0/L1 membership
 * checks in the 2-layer SWAP analysis).
 */
double pointSegmentDistance(const CartanCoords &p, const CartanCoords &a,
                            const CartanCoords &b);

} // namespace qbasis

#endif // QBASIS_WEYL_GEOMETRY_HPP
