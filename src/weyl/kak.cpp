#include "weyl/kak.hpp"

#include <array>
#include <cmath>

#include "linalg/factor.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simdiag.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

namespace {

/**
 * Diagonal sign patterns of XX, YY, ZZ in the magic basis.
 *
 * In the magic basis the three interaction generators are diagonal
 * with entries +-1; the patterns are computed once from the basis
 * definition rather than hardcoded, keeping them consistent with any
 * change of the magic matrix convention.
 */
struct MagicPatterns
{
    std::array<double, 4> px, py, pz;
};

const MagicPatterns &
magicPatterns()
{
    static const MagicPatterns patterns = [] {
        const Mat4 q = magicBasis();
        const Mat4 qd = q.dagger();
        MagicPatterns p{};
        const Mat4 xs = qd * xxOp() * q;
        const Mat4 ys = qd * yyOp() * q;
        const Mat4 zs = qd * zzOp() * q;
        for (int k = 0; k < 4; ++k) {
            p.px[k] = xs(k, k).real();
            p.py[k] = ys(k, k).real();
            p.pz[k] = zs(k, k).real();
        }
        // Validate: strictly diagonal +-1 entries.
        for (int k = 0; k < 4; ++k) {
            if (std::abs(std::abs(p.px[k]) - 1.0) > 1e-12
                || std::abs(std::abs(p.py[k]) - 1.0) > 1e-12
                || std::abs(std::abs(p.pz[k]) - 1.0) > 1e-12) {
                panic("magic-basis interaction patterns are not +-1");
            }
        }
        return p;
    }();
    return patterns;
}

/** Convert a Mat4 into the dynamic type for the simdiag helpers. */
CMat
toCMat(const Mat4 &m)
{
    CMat r(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = m(i, j);
    return r;
}

Mat4
fromRMat(const RMat &m)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = m(i, j);
    return r;
}

} // namespace

Mat4
KakDecomposition::reconstruct() const
{
    const Mat4 left = Mat4::kron(a1, a0);
    const Mat4 right = Mat4::kron(b1, b0);
    const Mat4 can = canonicalGate(coords.tx, coords.ty, coords.tz);
    return (left * can * right) * phase;
}

KakDecomposition
kakDecompose(const Mat4 &u, double tol)
{
    if (!u.isUnitary(1e-7))
        panic("kakDecompose requires a unitary input");

    // Phase-normalize into SU(4), remembering the global phase.
    const Mat4 usu = u.toSU4();
    Complex global = 0.0;
    {
        // u = g * usu with |g| = 1.
        Complex overlap{};
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                overlap += std::conj(usu(i, j)) * u(i, j);
        global = overlap / 4.0;
        global /= std::abs(global);
    }

    const Mat4 q = magicBasis();
    const Mat4 qd = q.dagger();
    const Mat4 m = qd * usu * q;

    // Bidiagonalize M = L D R^T with L, R in SO(4), D diagonal
    // unitary. L simultaneously diagonalizes Re/Im of M M^T.
    const Mat4 mmt = m * m.transpose();
    std::vector<Complex> d2;
    const RMat l_r = diagonalizeSymmetricUnitary(toCMat(mmt), d2);
    const Mat4 l = fromRMat(l_r);

    // Rows of L^T M equal d_k times real orthonormal rows of R^T.
    const Mat4 ltm = l.transpose() * m;
    std::array<Complex, 4> d{};
    Mat4 rt;
    for (int k = 0; k < 4; ++k) {
        // Phase of the largest entry in the row.
        int jbest = 0;
        double best = 0.0;
        for (int j = 0; j < 4; ++j) {
            const double mag = std::abs(ltm(k, j));
            if (mag > best) {
                best = mag;
                jbest = j;
            }
        }
        if (best < 1e-12)
            panic("kakDecompose: zero row in bidiagonalization");
        Complex phase = ltm(k, jbest) / std::abs(ltm(k, jbest));
        double imag_residual = 0.0;
        for (int j = 0; j < 4; ++j) {
            const Complex v = ltm(k, j) / phase;
            rt(k, j) = v.real();
            imag_residual = std::max(imag_residual, std::abs(v.imag()));
        }
        if (imag_residual > tol) {
            panic("kakDecompose: bidiagonalization residual %.3e "
                  "exceeds tolerance", imag_residual);
        }
        d[k] = phase;
    }

    // Enforce det(R^T) = +1 (flip one row and its phase).
    Mat4 rt_real = rt;
    {
        // det of a real 4x4 via the complex routine.
        const Complex detr = rt_real.det();
        if (detr.real() < 0.0) {
            for (int j = 0; j < 4; ++j)
                rt_real(3, j) = -rt_real(3, j).real();
            d[3] = -d[3];
        }
    }

    // Solve theta_k = w - (pi/2)(tx px_k + ty py_k + tz pz_k).
    const MagicPatterns &pat = magicPatterns();
    std::array<double, 4> theta{};
    for (int k = 0; k < 4; ++k)
        theta[k] = std::arg(d[k]);
    double w = 0.0, sx = 0.0, sy = 0.0, sz = 0.0;
    for (int k = 0; k < 4; ++k) {
        w += theta[k];
        sx += theta[k] * pat.px[k];
        sy += theta[k] * pat.py[k];
        sz += theta[k] * pat.pz[k];
    }
    w /= 4.0;
    KakDecomposition out;
    out.coords.tx = -sx / (2.0 * kPi / 2.0 * 2.0);
    out.coords.ty = -sy / (2.0 * kPi / 2.0 * 2.0);
    out.coords.tz = -sz / (2.0 * kPi / 2.0 * 2.0);

    // Residual of the linear solve must vanish: the four angles live
    // in span{1, px, py, pz} only up to 2pi jumps, which the solve
    // absorbs exactly because the patterns are orthogonal sign
    // vectors. Verify by direct reconstruction below instead.

    const Mat4 k1_4 = q * l * qd * std::exp(Complex(0.0, w));
    const Mat4 k2_4 = q * rt_real * qd;

    const TensorFactor f1 = factorTensorProduct(k1_4);
    const TensorFactor f2 = factorTensorProduct(k2_4);
    if (f1.residual > tol || f2.residual > tol) {
        panic("kakDecompose: local factors are not tensor products "
              "(residuals %.3e, %.3e)", f1.residual, f2.residual);
    }

    out.a1 = f1.a;
    out.a0 = f1.b;
    out.b1 = f2.a;
    out.b0 = f2.b;
    out.phase = global * f1.phase * f2.phase;

    // Final validation against the input.
    const double err = out.reconstruct().maxAbsDiff(u);
    if (err > 100.0 * tol) {
        panic("kakDecompose: reconstruction error %.3e exceeds "
              "tolerance", err);
    }
    return out;
}

} // namespace qbasis
