#include "weyl/kak.hpp"

#include <array>
#include <cmath>

#include "linalg/factor.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simdiag.hpp"
#include "linalg/su2.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

namespace {

/**
 * Diagonal sign patterns of XX, YY, ZZ in the magic basis.
 *
 * In the magic basis the three interaction generators are diagonal
 * with entries +-1; the patterns are computed once from the basis
 * definition rather than hardcoded, keeping them consistent with any
 * change of the magic matrix convention.
 */
struct MagicPatterns
{
    std::array<double, 4> px, py, pz;
};

const MagicPatterns &
magicPatterns()
{
    static const MagicPatterns patterns = [] {
        const Mat4 q = magicBasis();
        const Mat4 qd = q.dagger();
        MagicPatterns p{};
        const Mat4 xs = qd * xxOp() * q;
        const Mat4 ys = qd * yyOp() * q;
        const Mat4 zs = qd * zzOp() * q;
        for (int k = 0; k < 4; ++k) {
            p.px[k] = xs(k, k).real();
            p.py[k] = ys(k, k).real();
            p.pz[k] = zs(k, k).real();
        }
        // Validate: strictly diagonal +-1 entries.
        for (int k = 0; k < 4; ++k) {
            if (std::abs(std::abs(p.px[k]) - 1.0) > 1e-12
                || std::abs(std::abs(p.py[k]) - 1.0) > 1e-12
                || std::abs(std::abs(p.pz[k]) - 1.0) > 1e-12) {
                panic("magic-basis interaction patterns are not +-1");
            }
        }
        return p;
    }();
    return patterns;
}

/** Convert a Mat4 into the dynamic type for the simdiag helpers. */
CMat
toCMat(const Mat4 &m)
{
    CMat r(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = m(i, j);
    return r;
}

Mat4
fromRMat(const RMat &m)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = m(i, j);
    return r;
}

} // namespace

Mat4
KakDecomposition::reconstruct() const
{
    const Mat4 left = Mat4::kron(a1, a0);
    const Mat4 right = Mat4::kron(b1, b0);
    const Mat4 can = canonicalGate(coords.tx, coords.ty, coords.tz);
    return (left * can * right) * phase;
}

KakDecomposition
kakDecompose(const Mat4 &u, double tol)
{
    if (!u.isUnitary(1e-7))
        panic("kakDecompose requires a unitary input");

    // Phase-normalize into SU(4), remembering the global phase.
    const Mat4 usu = u.toSU4();
    Complex global = 0.0;
    {
        // u = g * usu with |g| = 1; the overlap is the dispatched
        // adjoint-trace reduction Tr(usu^dag u).
        Complex overlap = adjointTraceDot(usu, u);
        global = overlap / 4.0;
        global /= std::abs(global);
    }

    const Mat4 q = magicBasis();
    const Mat4 qd = q.dagger();
    // Magic-basis conjugation via the fused adjoint-multiply kernel.
    Mat4 qdu;
    adjointMulInto(q, usu, qdu);
    const Mat4 m = qdu * q;

    // Bidiagonalize M = L D R^T with L, R in SO(4), D diagonal
    // unitary. L simultaneously diagonalizes Re/Im of M M^T.
    const Mat4 mmt = m * m.transpose();
    std::vector<Complex> d2;
    const RMat l_r = diagonalizeSymmetricUnitary(toCMat(mmt), d2);
    const Mat4 l = fromRMat(l_r);

    // Rows of L^T M equal d_k times real orthonormal rows of R^T.
    const Mat4 ltm = l.transpose() * m;
    std::array<Complex, 4> d{};
    Mat4 rt;
    for (int k = 0; k < 4; ++k) {
        // Phase of the largest entry in the row.
        int jbest = 0;
        double best = 0.0;
        for (int j = 0; j < 4; ++j) {
            const double mag = std::abs(ltm(k, j));
            if (mag > best) {
                best = mag;
                jbest = j;
            }
        }
        if (best < 1e-12)
            panic("kakDecompose: zero row in bidiagonalization");
        Complex phase = ltm(k, jbest) / std::abs(ltm(k, jbest));
        double imag_residual = 0.0;
        for (int j = 0; j < 4; ++j) {
            const Complex v = ltm(k, j) / phase;
            rt(k, j) = v.real();
            imag_residual = std::max(imag_residual, std::abs(v.imag()));
        }
        if (imag_residual > tol) {
            panic("kakDecompose: bidiagonalization residual %.3e "
                  "exceeds tolerance", imag_residual);
        }
        d[k] = phase;
    }

    // Enforce det(R^T) = +1 (flip one row and its phase).
    Mat4 rt_real = rt;
    {
        // det of a real 4x4 via the complex routine.
        const Complex detr = rt_real.det();
        if (detr.real() < 0.0) {
            for (int j = 0; j < 4; ++j)
                rt_real(3, j) = -rt_real(3, j).real();
            d[3] = -d[3];
        }
    }

    // Solve theta_k = w - (pi/2)(tx px_k + ty py_k + tz pz_k).
    const MagicPatterns &pat = magicPatterns();
    std::array<double, 4> theta{};
    for (int k = 0; k < 4; ++k)
        theta[k] = std::arg(d[k]);
    double w = 0.0, sx = 0.0, sy = 0.0, sz = 0.0;
    for (int k = 0; k < 4; ++k) {
        w += theta[k];
        sx += theta[k] * pat.px[k];
        sy += theta[k] * pat.py[k];
        sz += theta[k] * pat.pz[k];
    }
    w /= 4.0;
    KakDecomposition out;
    out.coords.tx = -sx / (2.0 * kPi / 2.0 * 2.0);
    out.coords.ty = -sy / (2.0 * kPi / 2.0 * 2.0);
    out.coords.tz = -sz / (2.0 * kPi / 2.0 * 2.0);

    // Residual of the linear solve must vanish: the four angles live
    // in span{1, px, py, pz} only up to 2pi jumps, which the solve
    // absorbs exactly because the patterns are orthogonal sign
    // vectors. Verify by direct reconstruction below instead.

    const Mat4 k1_4 = q * l * qd * std::exp(Complex(0.0, w));
    const Mat4 k2_4 = q * rt_real * qd;

    const TensorFactor f1 = factorTensorProduct(k1_4);
    const TensorFactor f2 = factorTensorProduct(k2_4);
    if (f1.residual > tol || f2.residual > tol) {
        panic("kakDecompose: local factors are not tensor products "
              "(residuals %.3e, %.3e)", f1.residual, f2.residual);
    }

    out.a1 = f1.a;
    out.a0 = f1.b;
    out.b1 = f2.a;
    out.b0 = f2.b;
    out.phase = global * f1.phase * f2.phase;

    // Final validation against the input.
    const double err = out.reconstruct().maxAbsDiff(u);
    if (err > 100.0 * tol) {
        panic("kakDecompose: reconstruction error %.3e exceeds "
              "tolerance", err);
    }
    return out;
}

Mat4
CanonicalKak::reconstruct() const
{
    const Mat4 left = Mat4::kron(a1, a0);
    const Mat4 right = Mat4::kron(b1, b0);
    const Mat4 can = canonicalGate(coords.tx, coords.ty, coords.tz);
    return (left * can * right) * phase;
}

namespace {

/**
 * Mutable reduction state maintaining the exact invariant
 *   u = phase * (a1 (x) a0) * CAN(c) * (b1 (x) b0)
 * while the chamber symmetries walk c into the canonical region.
 *
 * Each move below is an exact operator identity:
 *  - CAN(c + e_k) = (-i) (P_k (x) P_k) CAN(c)   [shift]
 *  - (P_k (x) I) CAN(c) (P_k (x) I) negates the two coordinates
 *    other than k                                 [pair sign flip]
 *  - (V (x) V) CAN(c) (V (x) V)^dag permutes two coordinates for
 *    V in {S, RX(pi/2), RY(pi/2)}                 [axis swap]
 * The bottom-plane mirror is the composition flip(tx, tz) then
 * shift tx by +1.
 */
struct ChamberReducer
{
    Complex phase;
    Mat2 a1, a0, b1, b0;
    double c[3];

    /** phase *= (-i)^m for any (possibly negative) integer m. */
    void
    mulPhaseMinusIPow(long m)
    {
        switch (((m % 4) + 4) % 4) {
        case 0: break;
        case 1: phase *= Complex(0.0, -1.0); break;
        case 2: phase *= -1.0; break;
        case 3: phase *= Complex(0.0, 1.0); break;
        }
    }

    /** c[k] -= m via CAN(c) = [(-i)(P_k x P_k)]^m CAN(c - m e_k). */
    void
    shiftInt(int k, long m)
    {
        if (m == 0)
            return;
        static const Mat2 paulis[3] = {pauliX(), pauliY(), pauliZ()};
        c[k] -= static_cast<double>(m);
        mulPhaseMinusIPow(m);
        if (m % 2 != 0) {
            a1 = a1 * paulis[k];
            a0 = a0 * paulis[k];
        }
    }

    /** Reduce c[k] into [0, 1). */
    void
    modOne(int k)
    {
        shiftInt(k, static_cast<long>(std::floor(c[k])));
    }

    /** Negate the two coordinates other than k. */
    void
    flipPair(int k)
    {
        static const Mat2 paulis[3] = {pauliX(), pauliY(), pauliZ()};
        for (int i = 0; i < 3; ++i) {
            if (i != k)
                c[i] = -c[i];
        }
        a1 = a1 * paulis[k];
        b1 = paulis[k] * b1;
    }

    /** Exchange coordinates i < j via the local Clifford conjugator. */
    void
    swapCoords(int i, int j)
    {
        // (V x V) CAN(c) (V x V)^dag = CAN(c with i, j exchanged), so
        // CAN(c) = (V^dag x V^dag) CAN(c_swapped) (V x V).
        Mat2 v;
        if (i == 0 && j == 1)
            v = phaseGate(kPi / 2.0); // S: X -> Y, Y -> -X
        else if (i == 1 && j == 2)
            v = rx(kPi / 2.0); // Y -> Z, Z -> -Y
        else if (i == 0 && j == 2)
            v = ry(kPi / 2.0); // Z -> X, X -> -Z
        else
            panic("ChamberReducer::swapCoords: bad axes %d, %d", i, j);
        std::swap(c[i], c[j]);
        const Mat2 vd = v.dagger();
        a1 = a1 * vd;
        a0 = a0 * vd;
        b1 = v * b1;
        b0 = v * b0;
    }

    /** Sort coordinates descending with explicit swap moves. */
    void
    sortDesc()
    {
        if (c[0] < c[1])
            swapCoords(0, 1);
        if (c[1] < c[2])
            swapCoords(1, 2);
        if (c[0] < c[1])
            swapCoords(0, 1);
    }

    /** Walk c into the canonical chamber (same branches as
     *  canonicalize() in weyl/cartan.cpp, but tracked exactly). */
    void
    reduce(double eps)
    {
        for (int k = 0; k < 3; ++k)
            modOne(k);
        for (int iter = 0; iter < 64; ++iter) {
            sortDesc();
            if (c[0] + c[1] <= 1.0 + eps)
                break;
            // (c0, c1) -> (1 - c0, 1 - c1): flip the leading pair's
            // signs (conjugation by the remaining axis), then shift
            // both up by one.
            flipPair(2);
            shiftInt(0, -1);
            shiftInt(1, -1);
            modOne(0);
            modOne(1);
        }
        sortDesc();
        // Bottom-plane identification (tx, ty, 0) ~ (1 - tx, ty, 0).
        if (c[2] <= eps && c[0] > 0.5 + eps) {
            flipPair(1);
            shiftInt(0, -1);
            sortDesc();
        }
    }
};

} // namespace

CanonicalKak
canonicalKakDecompose(const Mat4 &u, double tol)
{
    const KakDecomposition kak = kakDecompose(u, tol);

    ChamberReducer red;
    red.phase = kak.phase;
    red.a1 = kak.a1;
    red.a0 = kak.a0;
    red.b1 = kak.b1;
    red.b0 = kak.b0;
    red.c[0] = kak.coords.tx;
    red.c[1] = kak.coords.ty;
    red.c[2] = kak.coords.tz;
    red.reduce(1e-10);

    CanonicalKak out;
    out.phase = red.phase;
    out.a1 = red.a1;
    out.a0 = red.a0;
    out.b1 = red.b1;
    out.b0 = red.b0;
    out.coords = {red.c[0], red.c[1], red.c[2]};

    if (!inCanonicalChamber(out.coords, 1e-8)) {
        panic("canonicalKakDecompose: reduction left the chamber at "
              "%s", out.coords.str(6).c_str());
    }
    const double err = out.reconstruct().maxAbsDiff(u);
    if (err > 100.0 * tol) {
        panic("canonicalKakDecompose: reconstruction error %.3e "
              "exceeds tolerance", err);
    }
    return out;
}

} // namespace qbasis
