#ifndef QBASIS_WEYL_GATES_HPP
#define QBASIS_WEYL_GATES_HPP

/**
 * @file
 * Standard two-qubit gate matrices and the canonical (Cartan) gate.
 *
 * Basis ordering is |00>, |01>, |10>, |11> with the first qubit as
 * the most significant bit; controlled gates use the first qubit as
 * control.
 */

#include "linalg/mat4.hpp"

namespace qbasis {

/** CNOT (control = first qubit). */
Mat4 cnotGate();

/** Controlled-Z. */
Mat4 czGate();

/** SWAP. */
Mat4 swapGate();

/** iSWAP. */
Mat4 iswapGate();

/** sqrt(iSWAP). */
Mat4 sqrtIswapGate();

/** sqrt(SWAP). */
Mat4 sqrtSwapGate();

/** sqrt(SWAP) dagger. */
Mat4 sqrtSwapDagGate();

/** The B gate (midpoint of the CNOT-iSWAP segment). */
Mat4 bGate();

/** Controlled-phase diag(1, 1, 1, e^{i theta}). */
Mat4 cphaseGate(double theta);

/** Controlled-RZ diag(1, 1, e^{-i theta/2}, e^{i theta/2}). */
Mat4 crzGate(double theta);

/** Two-qubit ZZ rotation exp(-i theta/2 Z(x)Z). */
Mat4 rzzGate(double theta);

/** Pauli products X(x)X, Y(x)Y, Z(x)Z. */
Mat4 xxOp();
Mat4 yyOp();
Mat4 zzOp();

/**
 * Canonical gate CAN(tx, ty, tz) =
 * exp(-i pi/2 (tx X(x)X + ty Y(x)Y + tz Z(x)Z)),
 * the paper's Eq. (1) nonlocal factor. CAN(1/2,0,0) ~ CNOT,
 * CAN(1/2,1/2,0) = iSWAP, CAN(1/2,1/2,1/2) ~ SWAP.
 */
Mat4 canonicalGate(double tx, double ty, double tz);

/**
 * The magic (Bell) basis change matrix Q; Q maps the magic basis to
 * the computational basis. Q^dag U Q is real-orthogonal-diagonal
 * factorizable for any U in SU(4) (Cartan / KAK decomposition).
 */
Mat4 magicBasis();

} // namespace qbasis

#endif // QBASIS_WEYL_GATES_HPP
