#ifndef QBASIS_WEYL_KAK_HPP
#define QBASIS_WEYL_KAK_HPP

/**
 * @file
 * Full KAK (Cartan) decomposition of two-qubit unitaries.
 *
 * Any U in U(4) factors as
 *   U = phase * (a1 (x) a0) * CAN(tx,ty,tz) * (b1 (x) b0)
 * with a*, b* in SU(2). The coordinates returned here are a valid
 * representative, not necessarily canonical; use cartanCoords() for
 * canonical chamber coordinates.
 */

#include "linalg/mat2.hpp"
#include "linalg/mat4.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

/** Result of the KAK decomposition. */
struct KakDecomposition
{
    Complex phase;       ///< Global phase.
    Mat2 a1;             ///< Left local on the first qubit.
    Mat2 a0;             ///< Left local on the second qubit.
    CartanCoords coords; ///< Interaction coordinates (representative).
    Mat2 b1;             ///< Right local on the first qubit.
    Mat2 b0;             ///< Right local on the second qubit.

    /** Rebuild the unitary from the factors. */
    Mat4 reconstruct() const;
};

/**
 * Compute the KAK decomposition of a 4x4 unitary.
 *
 * @param u    the unitary (need not be special).
 * @param tol  validation tolerance; exceeding it raises panic().
 */
KakDecomposition kakDecompose(const Mat4 &u, double tol = 1e-8);

/**
 * KAK decomposition whose coordinates lie inside the canonical Weyl
 * chamber.
 *
 * Unlike cartanCoords() -- which canonicalizes the coordinate triple
 * and discards the factors -- this reduction applies each chamber
 * symmetry (integer shifts, pairwise sign flips, axis permutations,
 * bottom-plane mirror) as an exact local-gate and phase update, so
 * the identity
 *   u = phase * (a1 (x) a0) * CAN(coords) * (b1 (x) b0)
 * holds exactly with canonical `coords`. This is what lets the
 * synthesis cache share one decomposition across every locally-
 * equivalent target: synthesize CAN(coords) once, then re-dress each
 * target with its own (a*, b*, phase).
 */
struct CanonicalKak
{
    Complex phase;       ///< Global phase.
    Mat2 a1;             ///< Left local on the first qubit.
    Mat2 a0;             ///< Left local on the second qubit.
    CartanCoords coords; ///< Canonical-chamber coordinates.
    Mat2 b1;             ///< Right local on the first qubit.
    Mat2 b0;             ///< Right local on the second qubit.

    /** Rebuild the unitary from the factors. */
    Mat4 reconstruct() const;
};

/**
 * Canonical-chamber KAK decomposition (see CanonicalKak).
 *
 * @param u    the unitary (need not be special).
 * @param tol  validation tolerance; exceeding it raises panic().
 */
CanonicalKak canonicalKakDecompose(const Mat4 &u, double tol = 1e-8);

} // namespace qbasis

#endif // QBASIS_WEYL_KAK_HPP
