#include "serve/compile_service.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace qbasis {

namespace {

/** Forces submit() down its admission-rejection path. Keyed by
 *  compileRequestFingerprint (which mixes the request id), so fire
 *  decisions are per-request and replay bit-identically regardless
 *  of client-thread interleaving. */
const FaultSite kFaultServeAdmit("serve.admit");

/** Registry mirrors of the per-service counters (global: several
 *  service instances aggregate into one process-wide view). */
struct ServeMetrics
{
    Counter &submitted;
    Counter &admitted;
    Counter &rejected;
    Counter &completed;
    Counter &failed;
    Counter &batches;
    Counter &plan_hits;
    Histogram &queue_us;
    Histogram &compile_us;
    Histogram &batch_size;

    static ServeMetrics &
    instance()
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        static ServeMetrics m{reg.counter("serve.submitted"),
                              reg.counter("serve.admitted"),
                              reg.counter("serve.rejected"),
                              reg.counter("serve.completed"),
                              reg.counter("serve.failed"),
                              reg.counter("serve.batches"),
                              reg.counter("serve.plan_hits"),
                              reg.histogram("serve.queue_us"),
                              reg.histogram("serve.compile_us"),
                              reg.histogram("serve.batch_size")};
        return m;
    }
};

} // namespace

CompileService::CompileService(CompileServiceOptions opts)
    : opts_(std::move(opts)), driver_(opts_.fleet)
{
    if (opts_.queue_capacity == 0)
        opts_.queue_capacity = 1;
    if (opts_.dispatchers <= 0)
        opts_.dispatchers = 1;
    if (opts_.max_batch == 0)
        opts_.max_batch = 1;
}

CompileService::~CompileService()
{
    stop();
}

void
CompileService::start(const std::vector<FleetDeviceSpec> &specs)
{
    stop(); // settle any previous incarnation first
    driver_.initDevices(specs);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        accepting_ = true;
        draining_ = false;
    }
    dispatchers_.reserve(static_cast<size_t>(opts_.dispatchers));
    for (int i = 0; i < opts_.dispatchers; ++i)
        dispatchers_.emplace_back([this, i] {
            setTraceThreadName("dispatcher-" + std::to_string(i));
            dispatchLoop();
        });
    inform("CompileService: serving %zu devices "
           "(queue %zu, %d dispatchers, batch %zu)",
           driver_.deviceCount(), opts_.queue_capacity,
           opts_.dispatchers, opts_.max_batch);
}

void
CompileService::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dispatchers_.empty() && !accepting_)
            return;
        accepting_ = false;
        draining_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : dispatchers_) {
        if (t.joinable())
            t.join();
    }
    dispatchers_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = false;
}

bool
CompileService::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepting_;
}

CompileResponse
CompileService::rejectResponse(const CompileRequest &req,
                               std::string why)
{
    CompileResponse resp;
    resp.request_id = req.request_id;
    resp.status = CompileStatus::Rejected;
    resp.error = std::move(why);
    return resp;
}

std::future<CompileResponse>
CompileService::submit(CompileRequest req)
{
    QBASIS_TRACE_SCOPE("serve.admit", "request_id", req.request_id,
                       "device",
                       static_cast<uint64_t>(
                           static_cast<uint32_t>(req.device_id)));
    // One options set = one shared-cache context: requests compile
    // with the fleet's synthesis options, exactly like the batch
    // compileCircuits() path.
    req.options.transpile.synth = opts_.fleet.synth;

    PendingRequest pending;
    pending.req = std::move(req);
    pending.enqueued = std::chrono::steady_clock::now();
    std::future<CompileResponse> fut = pending.promise.get_future();

    const uint64_t fingerprint =
        compileRequestFingerprint(pending.req);
    std::string reject_why;
    try {
        faultPoint(kFaultServeAdmit, fingerprint);
    } catch (const FaultInjected &e) {
        reject_why = e.what();
    }

    ServeMetrics &metrics = ServeMetrics::instance();
    // `submitted` is incremented before the admit/reject outcome and
    // the outcome counter before the queue push; snapshot() reads in
    // the reverse order, which is what makes mid-flight views
    // coherent.
    counters_.submitted.fetch_add(1);
    metrics.submitted.add();

    std::lock_guard<std::mutex> lock(mutex_);
    if (reject_why.empty() && !accepting_)
        reject_why = "service not accepting requests";
    if (reject_why.empty() && queue_.size() >= opts_.queue_capacity)
        reject_why = "admission queue full (capacity "
                     + std::to_string(opts_.queue_capacity) + ")";
    if (!reject_why.empty()) {
        counters_.rejected.fetch_add(1);
        metrics.rejected.add();
        pending.promise.set_value(
            rejectResponse(pending.req, std::move(reject_why)));
        return fut;
    }

    counters_.admitted.fetch_add(1);
    metrics.admitted.add();
    queue_.push_back(std::move(pending));
    const uint64_t depth = queue_.size();
    uint64_t high = counters_.max_queue_depth.load();
    while (depth > high
           && !counters_.max_queue_depth.compare_exchange_weak(
               high, depth)) {
    }
    cv_.notify_one();
    return fut;
}

CompileResponse
CompileService::compileSync(CompileRequest req)
{
    return submit(std::move(req)).get();
}

void
CompileService::serveOne(PendingRequest &pending,
                         const SynthClient &client)
{
    // Correlate everything underneath (transpile, synth batches,
    // cache claim/publish/wait) with this request's id.
    TraceCorrelation correlation(pending.req.request_id);
    QBASIS_TRACE_SCOPE("serve.compile", "request_id",
                       pending.req.request_id, "device",
                       static_cast<uint64_t>(static_cast<uint32_t>(
                           pending.req.device_id)));
    const auto dispatched = std::chrono::steady_clock::now();
    CompileResponse resp;
    try {
        const FleetDeviceState &state =
            driver_.device(pending.req.device_id);
        // runCompile contains pipeline errors into status == Failed;
        // this try only guards pre-pipeline faults (unknown device).
        resp = runCompile(state.device, state.calibration,
                          SynthRoute(client), pending.req,
                          opts_.plan_cache ? &driver_.planCache()
                                           : nullptr);
    } catch (const std::exception &e) {
        resp = CompileResponse{};
        resp.request_id = pending.req.request_id;
        resp.status = CompileStatus::Failed;
        resp.error = e.what();
    }
    resp.queue_ms = std::chrono::duration<double, std::milli>(
                        dispatched - pending.enqueued)
                        .count();
    ServeMetrics &metrics = ServeMetrics::instance();
    metrics.queue_us.record(
        static_cast<uint64_t>(std::max(0.0, resp.queue_ms * 1000.0)));
    metrics.compile_us.record(static_cast<uint64_t>(
        std::max(0.0, resp.compile_ms * 1000.0)));
    // `failed` before `completed`, the reverse of snapshot()'s read
    // order, so failed <= completed in any mid-flight view.
    if (resp.status == CompileStatus::Failed) {
        counters_.failed.fetch_add(1);
        metrics.failed.add();
    }
    // Same ordering argument: plan_hits before completed, so
    // plan_hits <= completed in any mid-flight view.
    if (resp.plan_path != PlanServePath::None) {
        counters_.plan_hits.fetch_add(1);
        metrics.plan_hits.add();
    }
    counters_.completed.fetch_add(1);
    metrics.completed.add();
    pending.promise.set_value(std::move(resp));
}

void
CompileService::dispatchLoop()
{
    for (;;) {
        std::vector<PendingRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return !queue_.empty() || draining_;
            });
            if (queue_.empty() && draining_)
                return;
            const size_t take =
                std::min(opts_.max_batch, queue_.size());
            batch.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            counters_.batches.fetch_add(1);
        }
        ServeMetrics &metrics = ServeMetrics::instance();
        metrics.batches.add();
        metrics.batch_size.record(batch.size());
        QBASIS_TRACE_SCOPE("serve.dispatch", "batch", batch.size());
        // One engine per dispatch round: the round's requests batch
        // their class syntheses on the shared pool and publish into
        // the fleet-wide cache, so concurrent rounds (and devices)
        // dedupe structurally.
        SynthEngine engine(driver_.pool());
        for (PendingRequest &pending : batch) {
            const SynthClient client{engine, driver_.cache(),
                                     pending.req.device_id,
                                     TaskPriority::Normal};
            serveOne(pending, client);
        }
    }
}

void
CompileService::recalibrate(const std::vector<RecalibEdgeRequest> &edges)
{
    driver_.recalibrate(edges);
}

void
CompileService::drainRecalibration()
{
    driver_.drainRecalibration();
}

uint64_t
CompileService::basisEpoch(int device_id) const
{
    return driver_.device(device_id).calibration.version();
}

size_t
CompileService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

CompileServiceStats
CompileService::snapshot() const
{
    // Load in the *reverse* of the increment order (outcome counters
    // first, their prerequisites last). Every increment of a
    // dependent counter is preceded by the increment it depends on
    // (failed -> completed -> admitted -> submitted, rejected ->
    // submitted), and all counters are monotonic, so reading the
    // dependency *after* its dependent can only over-satisfy the
    // invariants: submitted >= admitted + rejected and
    // admitted >= completed >= failed hold in any mid-flight view.
    CompileServiceStats s;
    s.plan_hits = counters_.plan_hits.load();
    s.failed = counters_.failed.load();
    s.completed = counters_.completed.load();
    s.batches = counters_.batches.load();
    s.max_queue_depth = counters_.max_queue_depth.load();
    s.rejected = counters_.rejected.load();
    s.admitted = counters_.admitted.load();
    s.submitted = counters_.submitted.load();
    return s;
}

} // namespace qbasis
