#ifndef QBASIS_SERVE_COMPILE_SERVICE_HPP
#define QBASIS_SERVE_COMPILE_SERVICE_HPP

/**
 * @file
 * CompileService: the long-lived compilation-as-a-service frontend.
 *
 * A CompileService owns a FleetDriver for its lifetime and turns the
 * batch fleet machinery into a serving daemon:
 *
 *  - **Admission control.** submit() either enqueues the request
 *    into a bounded queue or rejects it immediately with
 *    CompileStatus::Rejected (queue full, or the service is not
 *    accepting). Admission never blocks the caller and a rejection
 *    always resolves the returned future — under saturation the
 *    service degrades to rejections, never to hangs.
 *
 *  - **Batch coalescing.** Dispatcher threads drain the queue in
 *    FIFO order, up to `max_batch` requests per round, and compile
 *    them through one SynthEngine per round on the driver's shared
 *    pool. Every synthesis of every request lands in the fleet-wide
 *    SharedDecompositionCache, so concurrent clients compiling
 *    against byte-identical bases dedupe onto one Weyl-class
 *    synthesis — cross-request coalescing is structural, not
 *    heuristic.
 *
 *  - **Serving during recalibration.** recalibrate() schedules
 *    per-edge retuning pipelines on the Background lane of the same
 *    pool; compile traffic keeps being served from each device's
 *    last published VersionedBasisSet snapshot and never blocks on a
 *    retune (see core/recalib.hpp).
 *
 * Determinism contract (verified in tests/test_serve and gated by
 * bench_serve): a CompileResponse is a pure function of the
 * CompileRequest and the basis epoch it was served at — same request
 * + same epoch give bit-identical responses (compileResponseDigest)
 * regardless of arrival order, client thread, queue depth, or which
 * dispatcher picked the request up. Across an epoch swap, responses
 * legitimately change and carry the new epoch.
 *
 * Fault site: `serve.admit` (keyed by compileRequestFingerprint, so
 * a firing decision is per-request and replays bit-identically under
 * any interleaving) forces admission rejections for degraded-mode
 * drills; see bench_serve --faults.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "serve/api.hpp"

namespace qbasis {

/** Tunables of one service instance. */
struct CompileServiceOptions
{
    FleetOptions fleet;         ///< Owned FleetDriver configuration.
    /** Admission queue bound; a submit() beyond it is rejected. */
    size_t queue_capacity = 256;
    /** Dispatcher threads draining the queue. */
    int dispatchers = 2;
    /** Max requests one dispatcher coalesces per round (they share
     *  one SynthEngine and, through it, the shared class cache). */
    size_t max_batch = 8;
    /** Serve repeat requests from the fleet's transpile-plan cache
     *  (synth/plan_cache.hpp). Off = every request runs the full
     *  pipeline; responses are bit-identical either way at a fixed
     *  basis epoch (gated by bench_serve's Zipf sub-suite). */
    bool plan_cache = true;
};

/**
 * Serving-side counters (monotonic since construction). Obtained
 * through CompileService::snapshot(), which guarantees a *coherent*
 * mid-flight view: submitted >= admitted + rejected,
 * admitted >= completed >= failed (asserted in tests/test_serve).
 * The same counters are mirrored into the global MetricsRegistry
 * under serve.* names (obs/metrics.hpp).
 */
struct CompileServiceStats
{
    uint64_t submitted = 0; ///< submit() calls.
    uint64_t admitted = 0;  ///< Entered the queue.
    uint64_t rejected = 0;  ///< Refused at admission.
    uint64_t completed = 0; ///< Responses delivered (any status).
    uint64_t failed = 0;    ///< Responses with status == Failed.
    uint64_t batches = 0;   ///< Dispatch rounds that compiled >= 1.
    uint64_t max_queue_depth = 0; ///< High-water mark.
    /** Responses served from the plan tier (memo or replay). */
    uint64_t plan_hits = 0;
};

/** Long-lived compile serving daemon over an owned FleetDriver. */
class CompileService
{
  public:
    explicit CompileService(CompileServiceOptions opts = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Bring the fleet up (calibrate every device, sharded) and start
     * accepting traffic. Throws on calibration failure. May be
     * called again after stop() to restart with new devices.
     */
    void start(const std::vector<FleetDeviceSpec> &specs);

    /**
     * Stop admitting, drain every queued request through the
     * dispatchers (their futures all resolve), and join. Idempotent.
     */
    void stop();

    bool running() const;

    /**
     * Admission point. Returns a future that always resolves:
     * with the compile outcome when admitted, or immediately with
     * CompileStatus::Rejected when the queue is at capacity, the
     * service is not running, or the `serve.admit` fault fires.
     * The request's synthesis options are pinned to the fleet's at
     * admission (one options set = one shared-cache context).
     */
    std::future<CompileResponse> submit(CompileRequest req);

    /** submit() + wait: one request end to end. */
    CompileResponse compileSync(CompileRequest req);

    // -- Recalibration passthrough (Background lane) -----------------

    /** Schedule per-edge retuning; serving continues meanwhile. */
    void recalibrate(const std::vector<RecalibEdgeRequest> &edges);

    /** Join in-flight recalibration (compile traffic unaffected). */
    void drainRecalibration();

    /** Current basis epoch (VersionedBasisSet version) of a device. */
    uint64_t basisEpoch(int device_id) const;

    size_t deviceCount() const { return driver_.deviceCount(); }

    /** Queue depth right now (diagnostics). */
    size_t queueDepth() const;

    /**
     * Coherent point-in-time view of the serving counters. Counters
     * are lock-free atomics; coherence comes from load order against
     * the increment order (submitted is bumped before the
     * admit/reject outcome, admission before completion), so a
     * snapshot taken mid-flight still satisfies
     * submitted >= admitted + rejected and
     * admitted >= completed >= failed.
     */
    CompileServiceStats snapshot() const;

    /** Alias of snapshot() (historical name). */
    CompileServiceStats stats() const { return snapshot(); }

    /** The owned fleet (cache persistence, manifests, reports). */
    FleetDriver &driver() { return driver_; }
    const FleetDriver &driver() const { return driver_; }

    const CompileServiceOptions &options() const { return opts_; }

  private:
    struct PendingRequest
    {
        CompileRequest req;
        std::promise<CompileResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatchLoop();
    void serveOne(PendingRequest &pending, const SynthClient &client);
    static CompileResponse rejectResponse(const CompileRequest &req,
                                          std::string why);

    CompileServiceOptions opts_;
    FleetDriver driver_;

    mutable std::mutex mutex_; ///< Guards queue_, accepting_.
    std::condition_variable cv_;
    std::deque<PendingRequest> queue_;
    bool accepting_ = false; ///< submit() admits only when true.
    bool draining_ = false;  ///< Dispatchers exit once queue empties.

    /** Lock-free serving counters; see snapshot() for the coherence
     *  contract. seq_cst increments keep the load-order argument
     *  simple (all on cold control paths). */
    struct
    {
        std::atomic<uint64_t> submitted{0};
        std::atomic<uint64_t> admitted{0};
        std::atomic<uint64_t> rejected{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> failed{0};
        std::atomic<uint64_t> batches{0};
        std::atomic<uint64_t> max_queue_depth{0};
        std::atomic<uint64_t> plan_hits{0};
    } counters_;

    std::vector<std::thread> dispatchers_;
};

} // namespace qbasis

#endif // QBASIS_SERVE_COMPILE_SERVICE_HPP
