#include "serve/api.hpp"

#include <chrono>
#include <exception>

#include "circuit/schedule.hpp"
#include "noise/coherence.hpp"
#include "obs/trace.hpp"
#include "util/fnv.hpp"

namespace qbasis {

const char *
compileStatusName(CompileStatus status)
{
    switch (status) {
    case CompileStatus::Ok:
        return "ok";
    case CompileStatus::Rejected:
        return "rejected";
    case CompileStatus::Failed:
        return "failed";
    }
    return "unknown";
}

bool
compileResponsesBitIdentical(const CompileResponse &a,
                             const CompileResponse &b)
{
    return a.request_id == b.request_id && a.status == b.status
           && a.error == b.error && a.basis_epoch == b.basis_epoch
           && a.result.fidelity == b.result.fidelity
           && a.result.makespan_ns == b.result.makespan_ns
           && a.result.swaps_inserted == b.result.swaps_inserted
           && a.result.two_qubit_gates == b.result.two_qubit_gates
           && a.result.depth == b.result.depth;
}

uint64_t
compileResponseDigest(const CompileResponse &resp)
{
    // Mixes exactly the fields compileResponsesBitIdentical (above)
    // compares; extend both together.
    Fnv64 fnv;
    fnv.mix(resp.request_id);
    fnv.mix(static_cast<uint64_t>(resp.status));
    fnv.mix(resp.error.size());
    fnv.mixString(resp.error);
    fnv.mix(resp.basis_epoch);
    fnv.mixDouble(resp.result.fidelity);
    fnv.mixDouble(resp.result.makespan_ns);
    fnv.mix(static_cast<uint64_t>(resp.result.swaps_inserted));
    fnv.mix(static_cast<uint64_t>(resp.result.two_qubit_gates));
    fnv.mix(static_cast<uint64_t>(resp.result.depth));
    return fnv.h;
}

uint64_t
compileRequestFingerprint(const CompileRequest &req)
{
    Fnv64 fnv;
    fnv.mix(req.request_id);
    fnv.mix(static_cast<uint64_t>(req.device_id));
    fnv.mix(req.name.size());
    fnv.mixString(req.name);
    fnv.mix(static_cast<uint64_t>(req.circuit.numQubits()));
    fnv.mix(req.circuit.size());
    for (const Gate &g : req.circuit.gates()) {
        fnv.mix(static_cast<uint64_t>(g.kind));
        for (const int q : g.qubits)
            fnv.mix(static_cast<uint64_t>(q));
        for (const double p : g.params)
            fnv.mixDouble(p);
    }
    fnv.mixDouble(req.options.t_1q_ns);
    fnv.mixDouble(req.options.t_coherence_ns);
    return fnv.h;
}

namespace {

/** Schedule + score one transpiled circuit into `resp.result`. Both
 *  the full pipeline and the plan-replay path fund the response
 *  through this single definition, so a replayed (bit-identical)
 *  physical circuit scores bit-identically. */
void
scoreCompiled(CompileResponse &resp, const GridDevice &device,
              const CalibratedBasisSet &set, const CompileRequest &req,
              const TranspileResult &compiled)
{
    QBASIS_TRACE_SCOPE("compile.schedule");
    const CouplingMap &cm = device.coupling();
    const Schedule sched = scheduleAsap(
        compiled.physical,
        edgeDurationModel(cm, set.bases, req.options.t_1q_ns));

    resp.result.fidelity =
        circuitCoherenceFidelity(sched, req.options.t_coherence_ns);
    resp.result.makespan_ns = sched.makespan;
    resp.result.swaps_inserted = compiled.swaps_inserted;
    resp.result.two_qubit_gates = compiled.physical.countTwoQubit();
    resp.result.depth = compiled.physical.depth();
    resp.status = CompileStatus::Ok;
}

/** Full-pipeline compile, optionally capturing the routed circuit so
 *  the caller can store a transpile plan. */
CompileResponse
runCompileCaptured(const GridDevice &device,
                   const CalibratedBasisSet &set,
                   const SynthRoute &route, const CompileRequest &req,
                   RoutedCircuit *captured_routing)
{
    // Root correlation for direct callers (the service's serveOne
    // sets the same id one frame up; re-setting is idempotent).
    TraceCorrelation correlation(req.request_id);
    QBASIS_TRACE_SCOPE("compile.run", "request_id", req.request_id,
                       "gates", req.circuit.size());
    CompileResponse resp;
    resp.request_id = req.request_id;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        const CouplingMap &cm = device.coupling();
        const TranspileResult compiled = transpileCircuit(
            req.circuit, cm, set.bases, route, req.options.transpile,
            captured_routing);
        scoreCompiled(resp, device, set, req, compiled);
    } catch (const std::exception &e) {
        // One bad request must not take a serving daemon down with
        // it: contain the pipeline error into the response.
        resp.status = CompileStatus::Failed;
        resp.error = e.what();
        resp.result = CompiledCircuitResult{};
    }
    resp.compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return resp;
}

} // namespace

CompileResponse
runCompile(const GridDevice &device, const CalibratedBasisSet &set,
           const SynthRoute &route, const CompileRequest &req)
{
    return runCompileCaptured(device, set, route, req, nullptr);
}

CompileResponse
runCompile(const GridDevice &device,
           const VersionedBasisSet &calibration, const SynthRoute &route,
           const CompileRequest &req)
{
    TraceCorrelation correlation(req.request_id);
    const auto t0 = std::chrono::steady_clock::now();
    const CalibrationSnapshot snap = [&] {
        QBASIS_TRACE_SCOPE("compile.snapshot", "request_id",
                           req.request_id);
        return calibration.snapshot();
    }();
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    CompileResponse resp = runCompile(device, *snap.set, route, req);
    resp.basis_epoch = snap.version;
    resp.snapshot_wait_ms = wait_ms;
    return resp;
}

namespace {

/** Parameter fingerprint of the memo tier: everything the plan key's
 *  structural hash ignores but the result depends on. */
uint64_t
planMemoFingerprint(const CompileRequest &req)
{
    Fnv64 fnv;
    fnv.mix(circuitParamFingerprint(req.circuit));
    fnv.mixDouble(req.options.t_1q_ns);
    fnv.mixDouble(req.options.t_coherence_ns);
    return fnv.h;
}

PlanMemoResult
toPlanMemo(const CompiledCircuitResult &r)
{
    PlanMemoResult m;
    m.fidelity = r.fidelity;
    m.makespan_ns = r.makespan_ns;
    m.swaps_inserted = r.swaps_inserted;
    m.two_qubit_gates = r.two_qubit_gates;
    m.depth = r.depth;
    return m;
}

/** Published-class peek of the route's cache, or an empty callback
 *  when the route has no persistent cache to replay against. */
PlanClassLookup
planPeekOf(const SynthRoute &route)
{
    if (route.isFleet()) {
        SharedDecompositionCache &shared = route.client().cache;
        return [&shared](const DecompositionCache::ClassKey &key) {
            return shared.peekPublished(key);
        };
    }
    if (DecompositionCache *local = route.localCache()) {
        return [local](const DecompositionCache::ClassKey &key) {
            return local->peekClass(key);
        };
    }
    return {};
}

} // namespace

CompileResponse
runCompile(const GridDevice &device,
           const VersionedBasisSet &calibration, const SynthRoute &route,
           const CompileRequest &req, PlanCache *plans)
{
    if (plans == nullptr)
        return runCompile(device, calibration, route, req);

    TraceCorrelation correlation(req.request_id);
    const auto t0 = std::chrono::steady_clock::now();
    const CalibrationSnapshot snap = [&] {
        QBASIS_TRACE_SCOPE("compile.snapshot", "request_id",
                           req.request_id);
        return calibration.snapshot();
    }();
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    PlanKey key;
    key.structural_hash = structuralCircuitHash(req.circuit);
    key.options_hash = transpilePlanOptionsHash(req.options.transpile);
    key.epochs = {{req.device_id, snap.version}};
    const uint64_t fingerprint = planMemoFingerprint(req);

    // Tier 1: exact repeat. Skips transpile, schedule, and score;
    // the stored result was produced by the full pipeline at this
    // same epoch, so returning it is trivially bit-identical.
    PlanMemoResult memo;
    if (plans->lookupMemo(key, fingerprint, &memo)) {
        QBASIS_TRACE_SCOPE("compile.plan_memo", "request_id",
                           req.request_id);
        CompileResponse resp;
        resp.request_id = req.request_id;
        resp.basis_epoch = snap.version;
        resp.snapshot_wait_ms = wait_ms;
        resp.status = CompileStatus::Ok;
        resp.plan_path = PlanServePath::Memo;
        resp.result.fidelity = memo.fidelity;
        resp.result.makespan_ns = memo.makespan_ns;
        resp.result.swaps_inserted =
            static_cast<size_t>(memo.swaps_inserted);
        resp.result.two_qubit_gates =
            static_cast<size_t>(memo.two_qubit_gates);
        resp.result.depth = memo.depth;
        resp.compile_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return resp;
    }

    // Tier 2: replay the routing program with this request's
    // parameters against published Weyl classes only. Any
    // irregularity -- unpublished class, plan that does not fit
    // (hash collision), exception -- falls through to the full
    // pipeline so failure behavior matches the plan-off path exactly.
    if (const std::shared_ptr<const TranspilePlan> plan =
            plans->lookup(key)) {
        if (const PlanClassLookup peek = planPeekOf(route)) {
            const auto tr0 = std::chrono::steady_clock::now();
            try {
                QBASIS_TRACE_SCOPE("compile.plan_replay",
                                   "request_id", req.request_id);
                TranspileResult compiled;
                if (replayTranspilePlan(
                        *plan, req.circuit, device.coupling(),
                        snap.set->bases,
                        req.options.transpile.synth, peek,
                        &compiled)) {
                    CompileResponse resp;
                    resp.request_id = req.request_id;
                    resp.basis_epoch = snap.version;
                    resp.snapshot_wait_ms = wait_ms;
                    resp.plan_path = PlanServePath::Replay;
                    scoreCompiled(resp, device, *snap.set, req,
                                  compiled);
                    plans->noteReplayHit();
                    plans->memoize(key, fingerprint,
                                   toPlanMemo(resp.result));
                    resp.compile_ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - tr0)
                            .count();
                    return resp;
                }
            } catch (const std::exception &) {
                // Fall through to the full pipeline, which contains
                // (or reproduces) the failure identically to a
                // plan-off compile.
            }
        }
    }

    // Tier 3: full pipeline, then capture the plan for the next
    // repeat of this shape.
    plans->noteMiss();
    RoutedCircuit routed;
    CompileResponse resp =
        runCompileCaptured(device, *snap.set, route, req, &routed);
    resp.basis_epoch = snap.version;
    resp.snapshot_wait_ms = wait_ms;
    if (resp.status == CompileStatus::Ok) {
        try {
            plans->store(captureTranspilePlan(
                key, routed, device.coupling(), snap.set->bases,
                req.options.transpile.synth));
            plans->memoize(key, fingerprint, toPlanMemo(resp.result));
        } catch (const std::exception &) {
            // A capture failure must never fail a served request.
        }
    }
    return resp;
}

// ---------------------------------------------------------------------------
// Deprecated shims (declared in core/experiment.hpp and
// core/recalib.hpp). They preserve the historical throwing behavior
// by re-throwing a Failed response's error.
// ---------------------------------------------------------------------------

namespace {

CompiledCircuitResult
shimCompile(const GridDevice &device, const CalibratedBasisSet &set,
            const SynthRoute &route, const Circuit &logical,
            const TranspileOptions &opts, double t_1q_ns,
            double t_coherence_ns)
{
    CompileRequest req;
    req.circuit = logical;
    req.options.transpile = opts;
    req.options.t_1q_ns = t_1q_ns;
    req.options.t_coherence_ns = t_coherence_ns;
    const CompileResponse resp = runCompile(device, set, route, req);
    if (resp.status != CompileStatus::Ok)
        throw std::runtime_error(resp.error);
    return resp.result;
}

} // namespace

CompiledCircuitResult
compileAndScore(const GridDevice &device, const CalibratedBasisSet &set,
                DecompositionCache &cache, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    return shimCompile(device, set, SynthRoute::local(&cache), logical,
                       opts, t_1q_ns, t_coherence_ns);
}

CompiledCircuitResult
compileAndScore(const GridDevice &device, const CalibratedBasisSet &set,
                const SynthClient &client, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    return shimCompile(device, set, SynthRoute(client), logical, opts,
                       t_1q_ns, t_coherence_ns);
}

VersionedCompileResult
compileAndScore(const GridDevice &device,
                const VersionedBasisSet &calibration,
                const SynthClient &client, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    CompileRequest req;
    req.circuit = logical;
    req.options.transpile = opts;
    req.options.t_1q_ns = t_1q_ns;
    req.options.t_coherence_ns = t_coherence_ns;
    const CompileResponse resp =
        runCompile(device, calibration, SynthRoute(client), req);
    if (resp.status != CompileStatus::Ok)
        throw std::runtime_error(resp.error);
    VersionedCompileResult out;
    out.basis_version = resp.basis_epoch;
    out.snapshot_wait_ms = resp.snapshot_wait_ms;
    out.result = resp.result;
    return out;
}

} // namespace qbasis
