#include "serve/api.hpp"

#include <chrono>
#include <exception>

#include "circuit/schedule.hpp"
#include "noise/coherence.hpp"
#include "obs/trace.hpp"
#include "util/fnv.hpp"

namespace qbasis {

const char *
compileStatusName(CompileStatus status)
{
    switch (status) {
    case CompileStatus::Ok:
        return "ok";
    case CompileStatus::Rejected:
        return "rejected";
    case CompileStatus::Failed:
        return "failed";
    }
    return "unknown";
}

bool
compileResponsesBitIdentical(const CompileResponse &a,
                             const CompileResponse &b)
{
    return a.request_id == b.request_id && a.status == b.status
           && a.error == b.error && a.basis_epoch == b.basis_epoch
           && a.result.fidelity == b.result.fidelity
           && a.result.makespan_ns == b.result.makespan_ns
           && a.result.swaps_inserted == b.result.swaps_inserted
           && a.result.two_qubit_gates == b.result.two_qubit_gates
           && a.result.depth == b.result.depth;
}

uint64_t
compileResponseDigest(const CompileResponse &resp)
{
    // Mixes exactly the fields compileResponsesBitIdentical (above)
    // compares; extend both together.
    Fnv64 fnv;
    fnv.mix(resp.request_id);
    fnv.mix(static_cast<uint64_t>(resp.status));
    fnv.mix(resp.error.size());
    fnv.mixString(resp.error);
    fnv.mix(resp.basis_epoch);
    fnv.mixDouble(resp.result.fidelity);
    fnv.mixDouble(resp.result.makespan_ns);
    fnv.mix(static_cast<uint64_t>(resp.result.swaps_inserted));
    fnv.mix(static_cast<uint64_t>(resp.result.two_qubit_gates));
    fnv.mix(static_cast<uint64_t>(resp.result.depth));
    return fnv.h;
}

uint64_t
compileRequestFingerprint(const CompileRequest &req)
{
    Fnv64 fnv;
    fnv.mix(req.request_id);
    fnv.mix(static_cast<uint64_t>(req.device_id));
    fnv.mix(req.name.size());
    fnv.mixString(req.name);
    fnv.mix(static_cast<uint64_t>(req.circuit.numQubits()));
    fnv.mix(req.circuit.size());
    for (const Gate &g : req.circuit.gates()) {
        fnv.mix(static_cast<uint64_t>(g.kind));
        for (const int q : g.qubits)
            fnv.mix(static_cast<uint64_t>(q));
        for (const double p : g.params)
            fnv.mixDouble(p);
    }
    fnv.mixDouble(req.options.t_1q_ns);
    fnv.mixDouble(req.options.t_coherence_ns);
    return fnv.h;
}

CompileResponse
runCompile(const GridDevice &device, const CalibratedBasisSet &set,
           const SynthRoute &route, const CompileRequest &req)
{
    // Root correlation for direct callers (the service's serveOne
    // sets the same id one frame up; re-setting is idempotent).
    TraceCorrelation correlation(req.request_id);
    QBASIS_TRACE_SCOPE("compile.run", "request_id", req.request_id,
                       "gates", req.circuit.size());
    CompileResponse resp;
    resp.request_id = req.request_id;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        const CouplingMap &cm = device.coupling();
        const TranspileResult compiled =
            transpileCircuit(req.circuit, cm, set.bases, route,
                             req.options.transpile);
        QBASIS_TRACE_SCOPE("compile.schedule");
        const Schedule sched = scheduleAsap(
            compiled.physical,
            edgeDurationModel(cm, set.bases, req.options.t_1q_ns));

        resp.result.fidelity = circuitCoherenceFidelity(
            sched, req.options.t_coherence_ns);
        resp.result.makespan_ns = sched.makespan;
        resp.result.swaps_inserted = compiled.swaps_inserted;
        resp.result.two_qubit_gates =
            compiled.physical.countTwoQubit();
        resp.result.depth = compiled.physical.depth();
        resp.status = CompileStatus::Ok;
    } catch (const std::exception &e) {
        // One bad request must not take a serving daemon down with
        // it: contain the pipeline error into the response.
        resp.status = CompileStatus::Failed;
        resp.error = e.what();
        resp.result = CompiledCircuitResult{};
    }
    resp.compile_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    return resp;
}

CompileResponse
runCompile(const GridDevice &device,
           const VersionedBasisSet &calibration, const SynthRoute &route,
           const CompileRequest &req)
{
    TraceCorrelation correlation(req.request_id);
    const auto t0 = std::chrono::steady_clock::now();
    const CalibrationSnapshot snap = [&] {
        QBASIS_TRACE_SCOPE("compile.snapshot", "request_id",
                           req.request_id);
        return calibration.snapshot();
    }();
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    CompileResponse resp = runCompile(device, *snap.set, route, req);
    resp.basis_epoch = snap.version;
    resp.snapshot_wait_ms = wait_ms;
    return resp;
}

// ---------------------------------------------------------------------------
// Deprecated shims (declared in core/experiment.hpp and
// core/recalib.hpp). They preserve the historical throwing behavior
// by re-throwing a Failed response's error.
// ---------------------------------------------------------------------------

namespace {

CompiledCircuitResult
shimCompile(const GridDevice &device, const CalibratedBasisSet &set,
            const SynthRoute &route, const Circuit &logical,
            const TranspileOptions &opts, double t_1q_ns,
            double t_coherence_ns)
{
    CompileRequest req;
    req.circuit = logical;
    req.options.transpile = opts;
    req.options.t_1q_ns = t_1q_ns;
    req.options.t_coherence_ns = t_coherence_ns;
    const CompileResponse resp = runCompile(device, set, route, req);
    if (resp.status != CompileStatus::Ok)
        throw std::runtime_error(resp.error);
    return resp.result;
}

} // namespace

CompiledCircuitResult
compileAndScore(const GridDevice &device, const CalibratedBasisSet &set,
                DecompositionCache &cache, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    return shimCompile(device, set, SynthRoute::local(&cache), logical,
                       opts, t_1q_ns, t_coherence_ns);
}

CompiledCircuitResult
compileAndScore(const GridDevice &device, const CalibratedBasisSet &set,
                const SynthClient &client, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    return shimCompile(device, set, SynthRoute(client), logical, opts,
                       t_1q_ns, t_coherence_ns);
}

VersionedCompileResult
compileAndScore(const GridDevice &device,
                const VersionedBasisSet &calibration,
                const SynthClient &client, const Circuit &logical,
                const TranspileOptions &opts, double t_1q_ns,
                double t_coherence_ns)
{
    CompileRequest req;
    req.circuit = logical;
    req.options.transpile = opts;
    req.options.t_1q_ns = t_1q_ns;
    req.options.t_coherence_ns = t_coherence_ns;
    const CompileResponse resp =
        runCompile(device, calibration, SynthRoute(client), req);
    if (resp.status != CompileStatus::Ok)
        throw std::runtime_error(resp.error);
    VersionedCompileResult out;
    out.basis_version = resp.basis_epoch;
    out.snapshot_wait_ms = resp.snapshot_wait_ms;
    out.result = resp.result;
    return out;
}

} // namespace qbasis
