#ifndef QBASIS_SERVE_API_HPP
#define QBASIS_SERVE_API_HPP

/**
 * @file
 * The unified compile request/response API.
 *
 * Before this layer existed, every caller picked from an
 * overload zoo: two `transpileCircuit` overloads, two (plus one
 * versioned) `compileAndScore` overloads, and hand-threaded
 * `SynthClient` construction. This header collapses all of that into
 * three value types — CompileRequest in, CompileOptions inside,
 * CompileResponse out — consumed identically by the batch
 * `FleetDriver::compileCircuits` path and the streaming
 * `CompileService` (serve/compile_service.hpp). The old entry points
 * survive as `[[deprecated]]` shims defined in serve/api.cpp.
 *
 * Determinism contract: a CompileResponse is a pure function of
 * (CompileRequest, calibrated basis set at the served epoch,
 * SynthOptions seed). The per-request digest below is the enforcement
 * handle — same request + same basis epoch must produce bit-identical
 * responses regardless of how requests interleave.
 */

#include <cstdint>
#include <string>

#include "core/recalib.hpp"
#include "synth/plan_cache.hpp"

namespace qbasis {

/** Which plan-cache tier served a request. Diagnostic only:
 *  deliberately excluded from compileResponseDigest, because the
 *  determinism contract requires plan-hit and plan-miss responses to
 *  stay bit-identical. */
enum class PlanServePath : int
{
    None = 0,   ///< Full pipeline (miss, or plan cache off).
    Replay = 1, ///< Plan replayed with this request's parameters.
    Memo = 2,   ///< Exact repeat served from the memo tier.
};

/** Everything tunable about one compile, in one place. */
struct CompileOptions
{
    TranspileOptions transpile; ///< Routing + synthesis settings.
    double t_1q_ns = 20.0;      ///< 1Q gate duration for scheduling.
    double t_coherence_ns = 80e3; ///< Coherence time for scoring.
};

/**
 * One unit of compile traffic: a logical circuit bound for one
 * device. Requests are value types — safe to queue, copy across
 * threads, and replay.
 */
struct CompileRequest
{
    uint64_t request_id = 0; ///< Client-chosen id, echoed in the
                             ///< response (and mixed into fault
                             ///< keys, so replays are per-request).
    int device_id = 0;       ///< Fleet device the circuit targets.
    std::string name;        ///< Diagnostic label ("qft4", ...).
    Circuit circuit{1};      ///< Logical circuit to compile.
    CompileOptions options;

    CompileRequest() = default;
    CompileRequest(uint64_t id, int device, std::string label,
                   Circuit logical)
        : request_id(id), device_id(device), name(std::move(label)),
          circuit(std::move(logical))
    {
    }
};

/** Terminal state of one request. */
enum class CompileStatus : int
{
    Ok = 0,       ///< Compiled; `result` is valid.
    Rejected = 1, ///< Admission control refused it (queue full or
                  ///< service stopping); never entered the pipeline.
    Failed = 2,   ///< Compile pipeline threw; `error` has the cause.
};

const char *compileStatusName(CompileStatus status);

/** What the caller gets back, whatever happened. */
struct CompileResponse
{
    uint64_t request_id = 0;
    CompileStatus status = CompileStatus::Ok;
    std::string error; ///< Empty unless Rejected/Failed.
    /** VersionedBasisSet version this request compiled against
     *  (0 when unversioned or never admitted). */
    uint64_t basis_epoch = 0;
    double snapshot_wait_ms = 0.0; ///< Snapshot acquisition wall time.
    double queue_ms = 0.0;   ///< Admission-to-dispatch wall time.
    double compile_ms = 0.0; ///< Pipeline wall time.
    /** Plan-cache disposition (diagnostic; not in the digest). */
    PlanServePath plan_path = PlanServePath::None;
    CompiledCircuitResult result; ///< Valid only when status == Ok.
};

/**
 * Bitwise comparison of the deterministic payload of two responses:
 * request_id, status, error, basis_epoch, and every result field.
 * Wall-clock fields (queue/compile/snapshot times) are excluded —
 * they are measurements, not results. Extend together with
 * compileResponseDigest.
 */
bool compileResponsesBitIdentical(const CompileResponse &a,
                                  const CompileResponse &b);

/**
 * FNV-64 digest over exactly the fields compileResponsesBitIdentical
 * compares. Two responses are bit-identical iff digests match (up to
 * FNV collisions); the serve determinism tests and bench_serve gate
 * on this. Extend together with compileResponsesBitIdentical.
 */
uint64_t compileResponseDigest(const CompileResponse &resp);

/**
 * Structural fingerprint of a request: request_id, device, name,
 * circuit shape, and the scheduling constants. Used as the
 * `serve.admit` fault key (so fault replay is per-request and
 * independent of arrival interleaving) and for diagnostics; it is
 * NOT a cache key.
 */
uint64_t compileRequestFingerprint(const CompileRequest &req);

/**
 * Compile one request against a frozen calibrated set.
 *
 * The single compile entry point: transpile via `route` (local cache
 * or fleet shared cache — see SynthRoute), schedule ASAP against the
 * set's per-edge durations, and score with the paper's e^{-t/T}
 * model. Pipeline exceptions are contained into status == Failed
 * (with `error` = what()) rather than thrown, because a serving
 * daemon must not die on one bad request; batch callers that want
 * the old throwing behavior re-throw on !Ok.
 *
 * `basis_epoch` is left at 0 — the caller owns epoch semantics (see
 * the VersionedBasisSet overload).
 */
CompileResponse runCompile(const GridDevice &device,
                           const CalibratedBasisSet &set,
                           const SynthRoute &route,
                           const CompileRequest &req);

/**
 * Versioned variant: snapshot `calibration`, compile against the
 * frozen set, and record the served epoch + snapshot wait. An edge
 * mid-recalibration serves its last published basis.
 */
CompileResponse runCompile(const GridDevice &device,
                           const VersionedBasisSet &calibration,
                           const SynthRoute &route,
                           const CompileRequest &req);

/**
 * Plan-cached variant: consult `plans` before the pipeline and feed
 * it afterwards. Tier order per request:
 *
 *  1. memo — exact repeat (same shape, parameter fingerprint, and
 *     timing model at the same basis epoch): the stored result is
 *     returned without transpiling, scheduling, or scoring;
 *  2. replay — same shape at the same epoch with new parameters: the
 *     stored routing program is replayed and translated against
 *     published Weyl classes only (bypassing the SynthEngine batch),
 *     then scheduled and scored normally;
 *  3. miss — full pipeline; on success the plan is captured and the
 *     result memoized.
 *
 * Any replay irregularity (unpublished class, structural-hash
 * collision, exception) falls back to the full pipeline, so the
 * response — including a Failed response's error text — is always
 * bit-identical to what the plan-off path produces at the same
 * epoch. `plans == nullptr` degrades to the overload above.
 */
CompileResponse runCompile(const GridDevice &device,
                           const VersionedBasisSet &calibration,
                           const SynthRoute &route,
                           const CompileRequest &req, PlanCache *plans);

} // namespace qbasis

#endif // QBASIS_SERVE_API_HPP
