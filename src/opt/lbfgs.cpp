#include "opt/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "util/logging.hpp"

namespace qbasis {

namespace {

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

} // namespace

OptResult
lbfgsMinimize(const GradObjective &f, std::vector<double> x0,
              const LbfgsOptions &opts)
{
    const size_t n = x0.size();
    if (n == 0)
        panic("lbfgsMinimize requires at least one parameter");

    std::vector<double> x = std::move(x0);
    std::vector<double> g(n, 0.0);
    double fx = f(x, g);

    OptResult best;
    best.x = x;
    best.fval = fx;

    std::deque<std::vector<double>> s_hist, y_hist;
    std::deque<double> rho_hist;

    int iter = 0;
    for (; iter < opts.max_iters; ++iter) {
        if (opts.should_stop && opts.should_stop())
            break;
        if (fx <= opts.target) {
            best.converged = true;
            break;
        }
        const double gnorm = std::sqrt(dot(g, g));
        if (gnorm <= opts.gtol) {
            best.converged = true;
            break;
        }

        // Two-loop recursion for d = -H g.
        std::vector<double> d = g;
        std::vector<double> alpha(s_hist.size());
        for (size_t i = s_hist.size(); i-- > 0;) {
            alpha[i] = rho_hist[i] * dot(s_hist[i], d);
            for (size_t k = 0; k < n; ++k)
                d[k] -= alpha[i] * y_hist[i][k];
        }
        if (!y_hist.empty()) {
            const double gamma = dot(s_hist.back(), y_hist.back())
                                 / dot(y_hist.back(), y_hist.back());
            for (double &v : d)
                v *= gamma;
        }
        for (size_t i = 0; i < s_hist.size(); ++i) {
            const double beta = rho_hist[i] * dot(y_hist[i], d);
            for (size_t k = 0; k < n; ++k)
                d[k] += (alpha[i] - beta) * s_hist[i][k];
        }
        for (double &v : d)
            v = -v;

        double dir_deriv = dot(g, d);
        if (dir_deriv >= 0.0) {
            // Not a descent direction; reset to steepest descent.
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
            for (size_t k = 0; k < n; ++k)
                d[k] = -g[k];
            dir_deriv = -gnorm * gnorm;
        }

        // Armijo backtracking.
        double step = 1.0;
        std::vector<double> x_new(n), g_new(n, 0.0);
        double f_new = fx;
        bool accepted = false;
        for (int bt = 0; bt < opts.max_backtracks; ++bt) {
            for (size_t k = 0; k < n; ++k)
                x_new[k] = x[k] + step * d[k];
            f_new = f(x_new, g_new);
            if (f_new <= fx + opts.c1 * step * dir_deriv) {
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if (!accepted)
            break; // Line search failed; fx is (numerically) optimal.

        // Curvature pair update.
        std::vector<double> s(n), y(n);
        for (size_t k = 0; k < n; ++k) {
            s[k] = x_new[k] - x[k];
            y[k] = g_new[k] - g[k];
        }
        const double sy = dot(s, y);
        if (sy > 1e-14 * std::sqrt(dot(s, s)) * std::sqrt(dot(y, y))) {
            s_hist.push_back(std::move(s));
            y_hist.push_back(std::move(y));
            rho_hist.push_back(1.0 / sy);
            if (static_cast<int>(s_hist.size()) > opts.history) {
                s_hist.pop_front();
                y_hist.pop_front();
                rho_hist.pop_front();
            }
        }

        x = std::move(x_new);
        g = g_new;
        fx = f_new;
        if (fx < best.fval) {
            best.fval = fx;
            best.x = x;
        }
    }

    best.iterations = iter;
    if (best.fval <= opts.target)
        best.converged = true;
    return best;
}

} // namespace qbasis
