#ifndef QBASIS_OPT_ADAM_HPP
#define QBASIS_OPT_ADAM_HPP

/**
 * @file
 * Adam gradient-descent minimizer for objectives with analytic
 * gradients (the layered-synthesis trace-fidelity objective).
 */

#include <functional>

#include "opt/result.hpp"

namespace qbasis {

/** Options for adamMinimize(). */
struct AdamOptions
{
    int max_iters = 800;    ///< Gradient steps.
    double lr = 0.08;       ///< Base learning rate.
    double beta1 = 0.9;     ///< First-moment decay.
    double beta2 = 0.999;   ///< Second-moment decay.
    double eps = 1e-9;      ///< Denominator regularizer.
    double target = -1e300; ///< Early stop when f <= target.
    double gtol = 1e-12;    ///< Gradient-norm convergence threshold.
    /**
     * Cooperative cancellation: polled once per iteration; when it
     * returns true the optimizer returns its best iterate so far with
     * converged = false. Used by the synthesis engine's first-success
     * cancellation of losing restarts.
     */
    std::function<bool()> should_stop;
};

/**
 * Objective with gradient: returns f(x) and fills grad (resized by
 * the caller contract to x.size()).
 */
using GradObjective = std::function<double(const std::vector<double> &,
                                           std::vector<double> &)>;

/** Minimize with Adam; returns the best iterate seen. */
OptResult adamMinimize(const GradObjective &f, std::vector<double> x0,
                       const AdamOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_OPT_ADAM_HPP
