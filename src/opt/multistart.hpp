#ifndef QBASIS_OPT_MULTISTART_HPP
#define QBASIS_OPT_MULTISTART_HPP

/**
 * @file
 * Multistart driver: run a local optimizer from random initial
 * points until an objective target is reached.
 */

#include <functional>

#include "opt/result.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Options for multistart(). */
struct MultistartOptions
{
    int max_restarts = 12;   ///< Upper bound on local runs.
    double target = 1e-10;   ///< Stop once fval <= target.
    uint64_t seed = 0xabcdefull; ///< RNG seed for initial points.
};

/**
 * Run `local` from initial points drawn by `sampler` until the target
 * is met or restarts are exhausted; returns the best result.
 *
 * @param sampler  draws an initial parameter vector.
 * @param local    runs one local optimization from a start point.
 */
OptResult multistart(
    const std::function<std::vector<double>(Rng &)> &sampler,
    const std::function<OptResult(std::vector<double>)> &local,
    const MultistartOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_OPT_MULTISTART_HPP
