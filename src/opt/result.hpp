#ifndef QBASIS_OPT_RESULT_HPP
#define QBASIS_OPT_RESULT_HPP

/**
 * @file
 * Common result type for local optimizers.
 */

#include <vector>

namespace qbasis {

/** Outcome of a local or multistart optimization. */
struct OptResult
{
    std::vector<double> x;  ///< Best parameter vector found.
    double fval = 0.0;      ///< Objective at x.
    int iterations = 0;     ///< Iterations (or total across restarts).
    bool converged = false; ///< Whether a tolerance criterion was met.
};

} // namespace qbasis

#endif // QBASIS_OPT_RESULT_HPP
