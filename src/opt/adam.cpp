#include "opt/adam.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

OptResult
adamMinimize(const GradObjective &f, std::vector<double> x0,
             const AdamOptions &opts)
{
    const size_t n = x0.size();
    if (n == 0)
        panic("adamMinimize requires at least one parameter");

    std::vector<double> x = std::move(x0);
    std::vector<double> grad(n, 0.0);
    std::vector<double> m(n, 0.0), v(n, 0.0);

    OptResult best;
    best.x = x;
    best.fval = 1e300;

    int iter = 0;
    for (; iter < opts.max_iters; ++iter) {
        if (opts.should_stop && opts.should_stop())
            break;
        const double fx = f(x, grad);
        if (fx < best.fval) {
            best.fval = fx;
            best.x = x;
        }
        if (fx <= opts.target) {
            best.converged = true;
            break;
        }
        double gnorm2 = 0.0;
        for (double g : grad)
            gnorm2 += g * g;
        if (gnorm2 < opts.gtol * opts.gtol) {
            best.converged = true;
            break;
        }

        const double b1t = 1.0 - std::pow(opts.beta1, iter + 1);
        const double b2t = 1.0 - std::pow(opts.beta2, iter + 1);
        for (size_t i = 0; i < n; ++i) {
            m[i] = opts.beta1 * m[i] + (1.0 - opts.beta1) * grad[i];
            v[i] = opts.beta2 * v[i]
                   + (1.0 - opts.beta2) * grad[i] * grad[i];
            const double mhat = m[i] / b1t;
            const double vhat = v[i] / b2t;
            x[i] -= opts.lr * mhat / (std::sqrt(vhat) + opts.eps);
        }
    }

    best.iterations = iter;
    if (best.fval <= opts.target)
        best.converged = true;
    return best;
}

} // namespace qbasis
