#include "opt/multistart.hpp"

namespace qbasis {

OptResult
multistart(const std::function<std::vector<double>(Rng &)> &sampler,
           const std::function<OptResult(std::vector<double>)> &local,
           const MultistartOptions &opts)
{
    Rng rng(opts.seed);
    OptResult best;
    best.fval = 1e300;
    int total_iters = 0;
    for (int r = 0; r < opts.max_restarts; ++r) {
        OptResult res = local(sampler(rng));
        total_iters += res.iterations;
        if (res.fval < best.fval) {
            best = std::move(res);
        }
        if (best.fval <= opts.target) {
            best.converged = true;
            break;
        }
    }
    best.iterations = total_iters;
    if (best.fval <= opts.target)
        best.converged = true;
    return best;
}

} // namespace qbasis
