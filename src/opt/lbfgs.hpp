#ifndef QBASIS_OPT_LBFGS_HPP
#define QBASIS_OPT_LBFGS_HPP

/**
 * @file
 * Limited-memory BFGS with Armijo backtracking line search.
 *
 * Used as the high-precision endgame of gate synthesis: Adam's
 * fixed-step bounce floor sits near lr^2 while L-BFGS converges
 * superlinearly to machine precision on the smooth trace-fidelity
 * objective.
 */

#include "opt/adam.hpp"
#include "opt/result.hpp"

namespace qbasis {

/** Options for lbfgsMinimize(). */
struct LbfgsOptions
{
    int max_iters = 300;    ///< Outer iterations.
    int history = 8;        ///< Number of curvature pairs kept.
    double target = -1e300; ///< Early stop when f <= target.
    double gtol = 1e-13;    ///< Gradient-norm stopping threshold.
    double c1 = 1e-4;       ///< Armijo sufficient-decrease constant.
    int max_backtracks = 30; ///< Line-search halvings.
    /**
     * Cooperative cancellation: polled once per outer iteration; when
     * it returns true the optimizer returns its best iterate so far
     * with converged = false (see AdamOptions::should_stop).
     */
    std::function<bool()> should_stop;
};

/** Minimize a gradient objective with L-BFGS. */
OptResult lbfgsMinimize(const GradObjective &f, std::vector<double> x0,
                        const LbfgsOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_OPT_LBFGS_HPP
