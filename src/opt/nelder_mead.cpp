#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

OptResult
nelderMead(const ScalarObjective &f, std::vector<double> x0,
           const NelderMeadOptions &opts)
{
    const size_t n = x0.size();
    if (n == 0)
        panic("nelderMead requires at least one parameter");

    // Initial simplex: x0 plus one perturbed vertex per dimension.
    std::vector<std::vector<double>> simplex(n + 1, x0);
    std::vector<double> fv(n + 1);
    for (size_t i = 0; i < n; ++i)
        simplex[i + 1][i] += opts.init_step;
    for (size_t i = 0; i <= n; ++i)
        fv[i] = f(simplex[i]);

    std::vector<size_t> order(n + 1);
    auto sortSimplex = [&] {
        for (size_t i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return fv[a] < fv[b]; });
    };

    int iter = 0;
    for (; iter < opts.max_iters; ++iter) {
        sortSimplex();
        const size_t best = order[0];
        const size_t worst = order[n];
        const size_t second_worst = order[n - 1];

        if (fv[best] <= opts.target)
            break;
        // Converged only when both the function spread and the
        // simplex diameter are small: a symmetric simplex around a
        // minimum has zero spread but is not yet converged.
        if (fv[worst] - fv[best] < opts.ftol) {
            double diam = 0.0;
            for (size_t i = 1; i <= n; ++i)
                for (size_t d = 0; d < n; ++d)
                    diam = std::max(diam,
                                    std::abs(simplex[i][d]
                                             - simplex[0][d]));
            if (diam < opts.xtol)
                break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (size_t d = 0; d < n; ++d)
                centroid[d] += simplex[i][d];
        }
        for (double &c : centroid)
            c /= static_cast<double>(n);

        auto affine = [&](double coeff) {
            std::vector<double> p(n);
            for (size_t d = 0; d < n; ++d) {
                p[d] = centroid[d]
                       + coeff * (simplex[worst][d] - centroid[d]);
            }
            return p;
        };

        const std::vector<double> reflected = affine(-1.0);
        const double fr = f(reflected);

        if (fr < fv[best]) {
            // Try expansion.
            const std::vector<double> expanded = affine(-2.0);
            const double fe = f(expanded);
            if (fe < fr) {
                simplex[worst] = expanded;
                fv[worst] = fe;
            } else {
                simplex[worst] = reflected;
                fv[worst] = fr;
            }
        } else if (fr < fv[second_worst]) {
            simplex[worst] = reflected;
            fv[worst] = fr;
        } else {
            // Contraction (outside if reflection helped, else inside).
            const double coeff = fr < fv[worst] ? -0.5 : 0.5;
            const std::vector<double> contracted = affine(coeff);
            const double fc = f(contracted);
            if (fc < std::min(fr, fv[worst])) {
                simplex[worst] = contracted;
                fv[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                for (size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    for (size_t d = 0; d < n; ++d) {
                        simplex[i][d] = simplex[best][d]
                                        + 0.5 * (simplex[i][d]
                                                 - simplex[best][d]);
                    }
                    fv[i] = f(simplex[i]);
                }
            }
        }
    }

    sortSimplex();
    OptResult out;
    out.x = simplex[order[0]];
    out.fval = fv[order[0]];
    out.iterations = iter;
    out.converged = out.fval <= opts.target || iter < opts.max_iters;
    return out;
}

} // namespace qbasis
