#ifndef QBASIS_OPT_NELDER_MEAD_HPP
#define QBASIS_OPT_NELDER_MEAD_HPP

/**
 * @file
 * Derivative-free Nelder-Mead simplex minimizer.
 *
 * Used by the two-layer feasibility oracle (6-parameter invariant
 * matching) and as a fallback in gate synthesis where gradients are
 * not available.
 */

#include <functional>

#include "opt/result.hpp"

namespace qbasis {

/** Options for nelderMead(). */
struct NelderMeadOptions
{
    int max_iters = 600;      ///< Maximum simplex updates.
    double init_step = 0.4;   ///< Initial simplex edge length.
    double ftol = 1e-14;      ///< Function-spread convergence threshold.
    double xtol = 1e-9;       ///< Simplex-diameter convergence threshold.
    double target = -1e300;   ///< Early stop when f <= target.
};

/** Objective type: maps a parameter vector to a scalar. */
using ScalarObjective =
    std::function<double(const std::vector<double> &)>;

/**
 * Minimize `f` starting from `x0` with the Nelder-Mead method
 * (standard reflection/expansion/contraction/shrink coefficients).
 */
OptResult nelderMead(const ScalarObjective &f, std::vector<double> x0,
                     const NelderMeadOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_OPT_NELDER_MEAD_HPP
