/**
 * @file
 * Scalar reference backend for the Mat4 kernel table.
 *
 * Every kernel here pins the accumulation order and per-operation
 * rounding that the SIMD backends must reproduce bit-exactly (see
 * mat4_kernels.hpp). This translation unit compiles with
 * -ffp-contract=off (CMakeLists.txt) so a QBASIS_NATIVE build cannot
 * fuse the complex products into FMAs and silently fork the scalar
 * reference from itself.
 */

#include "linalg/mat4_kernels.hpp"

namespace qbasis {
namespace mat4_scalar {

namespace {

inline Complex
at4(const Complex *m, int r, int c)
{
    return m[4 * r + c];
}

inline Complex
at2(const Complex *m, int r, int c)
{
    return m[2 * r + c];
}

} // namespace

void
matmul(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 4; ++i) {
        Complex r0{}, r1{}, r2{}, r3{};
        for (int k = 0; k < 4; ++k) {
            const Complex aik = at4(a, i, k);
            r0 += aik * at4(b, k, 0);
            r1 += aik * at4(b, k, 1);
            r2 += aik * at4(b, k, 2);
            r3 += aik * at4(b, k, 3);
        }
        out[4 * i + 0] = r0;
        out[4 * i + 1] = r1;
        out[4 * i + 2] = r2;
        out[4 * i + 3] = r3;
    }
}

void
adjointMul(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 4; ++i) {
        Complex r0{}, r1{}, r2{}, r3{};
        for (int k = 0; k < 4; ++k) {
            const Complex aki = std::conj(at4(a, k, i));
            r0 += aki * at4(b, k, 0);
            r1 += aki * at4(b, k, 1);
            r2 += aki * at4(b, k, 2);
            r3 += aki * at4(b, k, 3);
        }
        out[4 * i + 0] = r0;
        out[4 * i + 1] = r1;
        out[4 * i + 2] = r2;
        out[4 * i + 3] = r3;
    }
}

void
kron2(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    out[4 * (2 * i + k) + 2 * j + l] =
                        at2(a, i, j) * at2(b, k, l);
}

void
kronMulLeft(const Complex *a1, const Complex *a0, const Complex *m,
            Complex *out)
{
    // p[j][k][c] holds the inner contraction over the second qubit.
    Complex p[2][2][4];
    for (int j = 0; j < 2; ++j) {
        for (int k = 0; k < 2; ++k) {
            const Complex a0k0 = at2(a0, k, 0);
            const Complex a0k1 = at2(a0, k, 1);
            for (int c = 0; c < 4; ++c)
                p[j][k][c] = a0k0 * at4(m, 2 * j, c)
                             + a0k1 * at4(m, 2 * j + 1, c);
        }
    }
    for (int i = 0; i < 2; ++i) {
        const Complex a1i0 = at2(a1, i, 0);
        const Complex a1i1 = at2(a1, i, 1);
        for (int k = 0; k < 2; ++k) {
            for (int c = 0; c < 4; ++c) {
                out[4 * (2 * i + k) + c] =
                    a1i0 * p[0][k][c] + a1i1 * p[1][k][c];
            }
        }
    }
}

void
mulKronRight(const Complex *m, const Complex *a1, const Complex *a0,
             Complex *out)
{
    // q[r][i][l] holds the inner contraction over the second qubit.
    Complex q[4][2][2];
    for (int r = 0; r < 4; ++r) {
        for (int i = 0; i < 2; ++i) {
            const Complex m0 = at4(m, r, 2 * i);
            const Complex m1 = at4(m, r, 2 * i + 1);
            for (int l = 0; l < 2; ++l)
                q[r][i][l] = m0 * at2(a0, 0, l) + m1 * at2(a0, 1, l);
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int j = 0; j < 2; ++j) {
            for (int l = 0; l < 2; ++l) {
                out[4 * r + 2 * j + l] =
                    at2(a1, 0, j) * q[r][0][l]
                    + at2(a1, 1, j) * q[r][1][l];
            }
        }
    }
}

Complex
adjointTraceDot(const Complex *a, const Complex *b)
{
    // Two interleaved partial sums (the SIMD lane split), combined
    // once at the end -- see the table contract in mat4_kernels.hpp.
    Complex even{}, odd{};
    for (int m = 0; m < 16; m += 2) {
        even += std::conj(a[m]) * b[m];
        odd += std::conj(a[m + 1]) * b[m + 1];
    }
    return even + odd;
}

void
kronTraceQ1(const Complex *g, const Complex *x0, Complex *s)
{
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            // r0-lane pairing: (t(0,0) + t(0,1)) + (t(1,0) + t(1,1))
            // with t(r0,c0) = g(2c1+c0, 2r1+r0) x0(r0,c0).
            const Complex lane0 =
                at4(g, 2 * c1, 2 * r1) * at2(x0, 0, 0)
                + at4(g, 2 * c1 + 1, 2 * r1) * at2(x0, 0, 1);
            const Complex lane1 =
                at4(g, 2 * c1, 2 * r1 + 1) * at2(x0, 1, 0)
                + at4(g, 2 * c1 + 1, 2 * r1 + 1) * at2(x0, 1, 1);
            s[2 * r1 + c1] = lane0 + lane1;
        }
    }
}

void
kronTraceQ0(const Complex *g, const Complex *x1, Complex *s)
{
    for (int r0 = 0; r0 < 2; ++r0) {
        for (int c0 = 0; c0 < 2; ++c0) {
            // r1-lane pairing: (t(0,0) + t(0,1)) + (t(1,0) + t(1,1))
            // with t(r1,c1) = g(2c1+c0, 2r1+r0) x1(r1,c1).
            const Complex lane0 =
                at4(g, c0, r0) * at2(x1, 0, 0)
                + at4(g, 2 + c0, r0) * at2(x1, 0, 1);
            const Complex lane1 =
                at4(g, c0, 2 + r0) * at2(x1, 1, 0)
                + at4(g, 2 + c0, 2 + r0) * at2(x1, 1, 1);
            s[2 * r0 + c0] = lane0 + lane1;
        }
    }
}

void
layerFwd(const Complex *layer, const Complex *u1, const Complex *u0,
         const Complex *r_prev, Complex *bright, Complex *right)
{
    matmul(layer, r_prev, bright);
    kronMulLeft(u1, u0, bright, right);
}

void
layerBwd(const Complex *left, const Complex *u1, const Complex *u0,
         const Complex *layer, Complex *out)
{
    Complex tmp[16];
    mulKronRight(left, u1, u0, tmp);
    if (layer == nullptr) {
        for (int i = 0; i < 16; ++i)
            out[i] = tmp[i];
        return;
    }
    matmul(tmp, layer, out);
}

} // namespace mat4_scalar

const Mat4KernelTable *
mat4ScalarTable()
{
    static const Mat4KernelTable table = {
        mat4_scalar::matmul,       mat4_scalar::adjointMul,
        mat4_scalar::kron2,        mat4_scalar::kronMulLeft,
        mat4_scalar::mulKronRight, mat4_scalar::adjointTraceDot,
        mat4_scalar::kronTraceQ1,  mat4_scalar::kronTraceQ0,
        mat4_scalar::layerFwd,     mat4_scalar::layerBwd,
    };
    return &table;
}

} // namespace qbasis
