#include "linalg/eig_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace qbasis {

SymEig
jacobiEigSym(const RMat &a_in, double tol)
{
    const size_t n = a_in.rows();
    if (a_in.cols() != n)
        panic("jacobiEigSym requires a square matrix");

    // Symmetrize defensively; callers may pass data with rounding skew.
    RMat a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));

    RMat v = RMat::identity(n);
    const double scale = std::max(a.frobeniusNorm(), 1e-300);

    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                off += a(i, j) * a(i, j);
        if (std::sqrt(2.0 * off) <= tol * scale)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::abs(apq) <= 1e-300)
                    continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double theta = 0.5 * (aqq - app) / apq;
                // Stable tangent of the rotation angle.
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0)
                    / (std::abs(theta)
                       + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs ascending.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        return a(i, i) < a(j, j);
    });

    SymEig out;
    out.values.resize(n);
    out.vectors = RMat(n, n);
    for (size_t c = 0; c < n; ++c) {
        out.values[c] = a(order[c], order[c]);
        for (size_t r = 0; r < n; ++r)
            out.vectors(r, c) = v(r, order[c]);
    }
    return out;
}

} // namespace qbasis
