#include "linalg/polar.hpp"

#include <cmath>

#include "linalg/eig_herm.hpp"
#include "util/logging.hpp"

namespace qbasis {

Mat4
nearestUnitary4(const Mat4 &m)
{
    // (m^dag m) = V diag(lam) V^dag; U = m V diag(lam^{-1/2}) V^dag.
    CMat h(4, 4);
    const Mat4 mtm = m.dagger() * m;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            h(i, j) = mtm(i, j);
    const HermEig eig = jacobiEigHerm(h);
    for (double lam : eig.values) {
        if (lam < 1e-12)
            panic("nearestUnitary4: singular input");
    }
    Mat4 inv_sqrt;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            Complex s{};
            for (int k = 0; k < 4; ++k) {
                s += eig.vectors(i, k)
                     * (1.0 / std::sqrt(eig.values[k]))
                     * std::conj(eig.vectors(j, k));
            }
            inv_sqrt(i, j) = s;
        }
    }
    return m * inv_sqrt;
}

} // namespace qbasis
