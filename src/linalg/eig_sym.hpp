#ifndef QBASIS_LINALG_EIG_SYM_HPP
#define QBASIS_LINALG_EIG_SYM_HPP

/**
 * @file
 * Cyclic Jacobi eigensolver for real symmetric matrices.
 */

#include <vector>

#include "linalg/matrix.hpp"

namespace qbasis {

/** Eigendecomposition result: A = V diag(values) V^T. */
struct SymEig
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Orthogonal matrix whose columns are the eigenvectors. */
    RMat vectors;
};

/**
 * Diagonalize a real symmetric matrix with the cyclic Jacobi method.
 *
 * @param a    symmetric input (symmetry is enforced by averaging).
 * @param tol  off-diagonal convergence threshold relative to the norm.
 * @return eigenvalues ascending + orthogonal eigenvector matrix.
 */
SymEig jacobiEigSym(const RMat &a, double tol = 1e-13);

} // namespace qbasis

#endif // QBASIS_LINALG_EIG_SYM_HPP
