#include "linalg/factor.hpp"

#include <cmath>

namespace qbasis {

TensorFactor
factorTensorProduct(const Mat4 &m)
{
    // View m as 2x2 blocks: m[(2a+c),(2b+d)] = A(a,b) * B(c,d).
    auto block = [&](int a, int b) {
        Mat2 r;
        for (int c = 0; c < 2; ++c)
            for (int d = 0; d < 2; ++d)
                r(c, d) = m(2 * a + c, 2 * b + d);
        return r;
    };

    // Pick the block with the largest norm as the B reference.
    int a0 = 0, b0 = 0;
    double best = -1.0;
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) {
            const double n = block(a, b).frobeniusNorm();
            if (n > best) {
                best = n;
                a0 = a;
                b0 = b;
            }
        }

    Mat2 b_unit = block(a0, b0);
    const double bn = b_unit.frobeniusNorm();
    if (bn > 1e-300)
        b_unit *= Complex(1.0 / bn, 0.0);

    // A(a,b) = <b_unit, block(a,b)>  (Hilbert-Schmidt inner product).
    Mat2 a_mat;
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) {
            Complex s{};
            const Mat2 blk = block(a, b);
            const Mat2 bu_dag = b_unit.dagger();
            const Mat2 prod = bu_dag * blk;
            s = prod.trace();
            a_mat(a, b) = s;
        }

    // Normalize both factors into SU(2).
    TensorFactor out;
    const Complex det_a = a_mat.det();
    const Complex det_b = b_unit.det();
    const Complex sqrt_da = std::sqrt(det_a);
    const Complex sqrt_db = std::sqrt(det_b);
    out.a = (std::abs(sqrt_da) > 1e-300)
                ? a_mat * (Complex(1.0) / sqrt_da)
                : a_mat;
    out.b = (std::abs(sqrt_db) > 1e-300)
                ? b_unit * (Complex(1.0) / sqrt_db)
                : b_unit;

    // Phase from the overlap with the reconstruction.
    const Mat4 rec = Mat4::kron(out.a, out.b);
    Complex overlap{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            overlap += std::conj(rec(i, j)) * m(i, j);
    out.phase = overlap / 4.0;
    // Snap near-unit phases onto the unit circle for exact inputs.
    const double mag = std::abs(out.phase);
    if (mag > 1e-300)
        out.phase /= mag;

    out.residual = (rec * out.phase).maxAbsDiff(m);
    return out;
}

} // namespace qbasis
