#ifndef QBASIS_LINALG_MAT2_HPP
#define QBASIS_LINALG_MAT2_HPP

/**
 * @file
 * Fixed-size 2x2 complex matrix for single-qubit operators.
 *
 * Mat2 is a value type stored on the stack; all arithmetic is inlined
 * since 1Q gate algebra sits in the synthesis hot path.
 */

#include <array>
#include <string>

#include "linalg/types.hpp"

namespace qbasis {

/** Dense 2x2 complex matrix (row-major). */
class Mat2
{
  public:
    /** Zero matrix. */
    Mat2() : a_{} {}

    /** Construct from row-major entries. */
    Mat2(Complex a00, Complex a01, Complex a10, Complex a11)
        : a_{a00, a01, a10, a11}
    {}

    /** Element access (row, col). */
    Complex &operator()(int r, int c) { return a_[2 * r + c]; }

    /** Element access (row, col), const. */
    const Complex &operator()(int r, int c) const { return a_[2 * r + c]; }

    /** Row-major interleaved storage (the kernel-table layout). */
    Complex *data() { return a_.data(); }
    const Complex *data() const { return a_.data(); }

    /** 2x2 identity. */
    static Mat2 identity()
    {
        return Mat2(1.0, 0.0, 0.0, 1.0);
    }

    Mat2 operator+(const Mat2 &o) const;
    Mat2 operator-(const Mat2 &o) const;
    Mat2 operator*(const Mat2 &o) const;
    Mat2 operator*(Complex s) const;
    Mat2 &operator+=(const Mat2 &o);
    Mat2 &operator*=(Complex s);

    /** Conjugate transpose. */
    Mat2 dagger() const;

    /** Trace. */
    Complex trace() const { return a_[0] + a_[3]; }

    /** Determinant. */
    Complex det() const { return a_[0] * a_[3] - a_[1] * a_[2]; }

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute entry of (this - o). */
    double maxAbsDiff(const Mat2 &o) const;

    /** True iff this' * this == I within tol. */
    bool isUnitary(double tol = kMatTol) const;

    /** Render as a readable multi-line string. */
    std::string str(int precision = 4) const;

  private:
    std::array<Complex, 4> a_;
};

/** Scalar-matrix product. */
inline Mat2
operator*(Complex s, const Mat2 &m)
{
    return m * s;
}

} // namespace qbasis

#endif // QBASIS_LINALG_MAT2_HPP
