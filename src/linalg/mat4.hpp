#ifndef QBASIS_LINALG_MAT4_HPP
#define QBASIS_LINALG_MAT4_HPP

/**
 * @file
 * Fixed-size 4x4 complex matrix for two-qubit operators.
 *
 * Mat4 is the workhorse of the Weyl-chamber, monodromy, and synthesis
 * code. It is a stack value type. Multiplies, fused Kronecker
 * products, and the adjoint-trace reductions route through the
 * runtime-dispatched kernel backends in linalg/mat4_kernels.hpp
 * (scalar reference or AVX2), which are bit-identical by contract.
 */

#include <array>
#include <string>

#include "linalg/mat2.hpp"
#include "linalg/types.hpp"

namespace qbasis {

/** Dense 4x4 complex matrix (row-major). */
class Mat4
{
  public:
    /** Zero matrix. */
    Mat4() : a_{} {}

    /** Element access (row, col). */
    Complex &operator()(int r, int c) { return a_[4 * r + c]; }

    /** Element access (row, col), const. */
    const Complex &operator()(int r, int c) const { return a_[4 * r + c]; }

    /** Row-major interleaved storage (the kernel-table layout). */
    Complex *data() { return a_.data(); }
    const Complex *data() const { return a_.data(); }

    /** 4x4 identity. */
    static Mat4 identity();

    /** Build from 16 row-major entries. */
    static Mat4 fromRows(const std::array<Complex, 16> &rows);

    /** Kronecker product a (x) b of two 2x2 matrices. */
    static Mat4 kron(const Mat2 &a, const Mat2 &b);

    /** Diagonal matrix from 4 entries. */
    static Mat4 diag(Complex d0, Complex d1, Complex d2, Complex d3);

    Mat4 operator+(const Mat4 &o) const;
    Mat4 operator-(const Mat4 &o) const;
    Mat4 operator*(const Mat4 &o) const;
    Mat4 operator*(Complex s) const;
    Mat4 &operator+=(const Mat4 &o);
    Mat4 &operator*=(Complex s);

    /** Conjugate transpose. */
    Mat4 dagger() const;

    /** Transpose (no conjugation). */
    Mat4 transpose() const;

    /** Entry-wise complex conjugate. */
    Mat4 conjugate() const;

    /** Trace. */
    Complex trace() const;

    /** Determinant (Gaussian elimination with partial pivoting). */
    Complex det() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute entry of (this - o). */
    double maxAbsDiff(const Mat4 &o) const;

    /** True iff this' * this == I within tol. */
    bool isUnitary(double tol = kMatTol) const;

    /**
     * Phase-normalize toward SU(4): returns U / det(U)^{1/4}.
     *
     * The branch of the quartic root is chosen so the result is
     * continuous for matrices near the identity.
     */
    Mat4 toSU4() const;

    /** Render as a readable multi-line string. */
    std::string str(int precision = 4) const;

  private:
    std::array<Complex, 16> a_;
};

/** Scalar-matrix product. */
inline Mat4
operator*(Complex s, const Mat4 &m)
{
    return m * s;
}

/**
 * Entanglement (trace) infidelity between two-qubit unitaries:
 * 1 - |Tr(A^dag B)|^2 / 16. Zero iff A == B up to global phase.
 */
double traceInfidelity(const Mat4 &a, const Mat4 &b);

// ---------------------------------------------------------------------------
// Allocation-free hot-path kernels for the synthesis objective.
//
// The multistart gradient descent evaluates millions of products of
// the form (k1 (x) k0) * M and gradient traces Tr(G (x1 (x) x0));
// these kernels fuse the Kronecker structure instead of materializing
// 4x4 local operators, and write into caller-provided scratch so the
// inner loop performs no allocation. All of them dispatch to the
// active backend of linalg/mat4_kernels.hpp.
// ---------------------------------------------------------------------------

/**
 * out = a * b without constructing a temporary. `out` must not alias
 * `a` or `b`.
 */
void matmulInto(const Mat4 &a, const Mat4 &b, Mat4 &out);

/**
 * out = a^dag * b without materializing the adjoint. `out` must not
 * alias `a` or `b`.
 */
void adjointMulInto(const Mat4 &a, const Mat4 &b, Mat4 &out);

/**
 * Tr(a^dag b) = sum_{i,j} conj(a(i,j)) b(i,j) -- the Frobenius
 * inner product behind every trace-fidelity reduction. Accumulation
 * order is pinned by the kernel contract (mat4_kernels.hpp), so the
 * value is bit-identical across backends.
 */
Complex adjointTraceDot(const Mat4 &a, const Mat4 &b);

/**
 * Fused forward layer step of the synthesis objective:
 * bright = layer * r_prev, right = (u1 (x) u0) * bright. One
 * dispatch for the innermost product chain of valueAndGrad; the
 * outputs must not alias each other or the inputs.
 */
void fusedLayerForward(const Mat4 &layer, const Mat2 &u1,
                       const Mat2 &u0, const Mat4 &r_prev,
                       Mat4 &bright, Mat4 &right);

/**
 * Fused backward layer step: out = (left * (u1 (x) u0)) * layer, or
 * just left * (u1 (x) u0) when layer == nullptr. `out` may alias
 * `left`.
 */
void fusedLayerBackward(const Mat4 &left, const Mat2 &u1,
                        const Mat2 &u0, const Mat4 *layer,
                        Mat4 &out);

/**
 * out = (a1 (x) a0) * m, fused over the 2x2 block structure (never
 * builds the 4x4 Kronecker factor). `out` must not alias `m`.
 */
void kronMulLeft(const Mat2 &a1, const Mat2 &a0, const Mat4 &m,
                 Mat4 &out);

/**
 * out = m * (a1 (x) a0), fused over the 2x2 block structure.
 * `out` must not alias `m`.
 */
void mulKronRight(const Mat4 &m, const Mat2 &a1, const Mat2 &a0,
                  Mat4 &out);

/**
 * Half-contraction of the gradient trace Tr(G (x1 (x) x0)) over the
 * second-qubit factor: fills s with
 *   s(r1, c1) = sum_{r0, c0} g(2 c1 + c0, 2 r1 + r0) * x0(r0, c0)
 * so that Tr(G (x1 (x) x0)) = sum_{r1, c1} x1(r1, c1) * s(r1, c1).
 * Amortizes the 4x4 contraction across the three U3 partial
 * derivatives sharing one fixed x0.
 */
void kronTracePartialQ1(const Mat4 &g, const Mat2 &x0, Mat2 &s);

/**
 * Half-contraction over the first-qubit factor: fills s with
 *   s(r0, c0) = sum_{r1, c1} g(2 c1 + c0, 2 r1 + r0) * x1(r1, c1)
 * so that Tr(G (x1 (x) x0)) = sum_{r0, c0} x0(r0, c0) * s(r0, c0).
 */
void kronTracePartialQ0(const Mat4 &g, const Mat2 &x1, Mat2 &s);

/** Element-wise (unconjugated) dot sum_{i,j} a(i,j) * b(i,j). */
inline Complex
mat2ElementDot(const Mat2 &a, const Mat2 &b)
{
    return a(0, 0) * b(0, 0) + a(0, 1) * b(0, 1) + a(1, 0) * b(1, 0)
           + a(1, 1) * b(1, 1);
}

} // namespace qbasis

#endif // QBASIS_LINALG_MAT4_HPP
