#ifndef QBASIS_LINALG_MAT4_HPP
#define QBASIS_LINALG_MAT4_HPP

/**
 * @file
 * Fixed-size 4x4 complex matrix for two-qubit operators.
 *
 * Mat4 is the workhorse of the Weyl-chamber, monodromy, and synthesis
 * code. It is a stack value type; the multiply is fully unrolled by
 * the compiler at -O2.
 */

#include <array>
#include <string>

#include "linalg/mat2.hpp"
#include "linalg/types.hpp"

namespace qbasis {

/** Dense 4x4 complex matrix (row-major). */
class Mat4
{
  public:
    /** Zero matrix. */
    Mat4() : a_{} {}

    /** Element access (row, col). */
    Complex &operator()(int r, int c) { return a_[4 * r + c]; }

    /** Element access (row, col), const. */
    const Complex &operator()(int r, int c) const { return a_[4 * r + c]; }

    /** 4x4 identity. */
    static Mat4 identity();

    /** Build from 16 row-major entries. */
    static Mat4 fromRows(const std::array<Complex, 16> &rows);

    /** Kronecker product a (x) b of two 2x2 matrices. */
    static Mat4 kron(const Mat2 &a, const Mat2 &b);

    /** Diagonal matrix from 4 entries. */
    static Mat4 diag(Complex d0, Complex d1, Complex d2, Complex d3);

    Mat4 operator+(const Mat4 &o) const;
    Mat4 operator-(const Mat4 &o) const;
    Mat4 operator*(const Mat4 &o) const;
    Mat4 operator*(Complex s) const;
    Mat4 &operator+=(const Mat4 &o);
    Mat4 &operator*=(Complex s);

    /** Conjugate transpose. */
    Mat4 dagger() const;

    /** Transpose (no conjugation). */
    Mat4 transpose() const;

    /** Entry-wise complex conjugate. */
    Mat4 conjugate() const;

    /** Trace. */
    Complex trace() const;

    /** Determinant (Gaussian elimination with partial pivoting). */
    Complex det() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest absolute entry of (this - o). */
    double maxAbsDiff(const Mat4 &o) const;

    /** True iff this' * this == I within tol. */
    bool isUnitary(double tol = kMatTol) const;

    /**
     * Phase-normalize toward SU(4): returns U / det(U)^{1/4}.
     *
     * The branch of the quartic root is chosen so the result is
     * continuous for matrices near the identity.
     */
    Mat4 toSU4() const;

    /** Render as a readable multi-line string. */
    std::string str(int precision = 4) const;

  private:
    std::array<Complex, 16> a_;
};

/** Scalar-matrix product. */
inline Mat4
operator*(Complex s, const Mat4 &m)
{
    return m * s;
}

/**
 * Entanglement (trace) infidelity between two-qubit unitaries:
 * 1 - |Tr(A^dag B)|^2 / 16. Zero iff A == B up to global phase.
 */
double traceInfidelity(const Mat4 &a, const Mat4 &b);

} // namespace qbasis

#endif // QBASIS_LINALG_MAT4_HPP
