#include "linalg/su2.hpp"

#include <cmath>

#include "linalg/types.hpp"

namespace qbasis {

Mat2
pauliX()
{
    return Mat2(0.0, 1.0, 1.0, 0.0);
}

Mat2
pauliY()
{
    return Mat2(0.0, -kI, kI, 0.0);
}

Mat2
pauliZ()
{
    return Mat2(1.0, 0.0, 0.0, -1.0);
}

Mat2
hadamard()
{
    const double s = 1.0 / std::sqrt(2.0);
    return Mat2(s, s, s, -s);
}

Mat2
rx(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Mat2(c, -kI * s, -kI * s, c);
}

Mat2
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Mat2(c, -s, s, c);
}

Mat2
rz(double theta)
{
    return Mat2(std::exp(-kI * (theta / 2.0)), 0.0, 0.0,
                std::exp(kI * (theta / 2.0)));
}

Mat2
phaseGate(double phi)
{
    return Mat2(1.0, 0.0, 0.0, std::exp(kI * phi));
}

Mat2
u3(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Mat2(c, -std::exp(kI * lambda) * s,
                std::exp(kI * phi) * s,
                std::exp(kI * (phi + lambda)) * c);
}

Mat2
du3DTheta(double theta, double phi, double lambda)
{
    const double c = 0.5 * std::cos(theta / 2.0);
    const double s = 0.5 * std::sin(theta / 2.0);
    return Mat2(-s, -std::exp(kI * lambda) * c,
                std::exp(kI * phi) * c,
                -std::exp(kI * (phi + lambda)) * s);
}

Mat2
du3DPhi(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Mat2(0.0, 0.0, kI * std::exp(kI * phi) * s,
                kI * std::exp(kI * (phi + lambda)) * c);
}

Mat2
du3DLambda(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Mat2(0.0, -kI * std::exp(kI * lambda) * s, 0.0,
                kI * std::exp(kI * (phi + lambda)) * c);
}

Mat2
randomSU2(Rng &rng)
{
    // Unit quaternion (w, x, y, z) -> w I - i (x X + y Y + z Z).
    double w = rng.normal();
    double x = rng.normal();
    double y = rng.normal();
    double z = rng.normal();
    const double n = std::sqrt(w * w + x * x + y * y + z * z);
    if (n < 1e-12)
        return Mat2::identity();
    w /= n;
    x /= n;
    y /= n;
    z /= n;
    return Mat2(Complex(w, -z), Complex(-y, -x),
                Complex(y, -x), Complex(w, z));
}

U3Angles
toU3Angles(const Mat2 &u)
{
    U3Angles out{};
    const double c = std::abs(u(0, 0));
    const double s = std::abs(u(1, 0));
    out.theta = 2.0 * std::atan2(s, c);

    // Global phase: make the (0,0) entry real positive when possible.
    if (c > 1e-12) {
        out.alpha = std::arg(u(0, 0));
    } else {
        // theta == pi: u(0,0) == 0, use u(1,0) = e^{i(alpha+phi)}.
        out.alpha = 0.0;
    }
    const Complex e_alpha = std::exp(Complex(0.0, -out.alpha));
    const Mat2 v = u * e_alpha;

    if (s > 1e-12)
        out.phi = std::arg(v(1, 0));
    else
        out.phi = 0.0;
    if (s > 1e-12 && c > 1e-12) {
        out.lambda = std::arg(-v(0, 1));
    } else if (c > 1e-12) {
        // theta == 0: only phi + lambda defined; fold into lambda.
        out.lambda = std::arg(v(1, 1)) - out.phi;
    } else {
        // theta == pi: only phi - lambda defined; v(0,1) = -e^{i l}.
        out.lambda = std::arg(-v(0, 1));
    }
    return out;
}

} // namespace qbasis
