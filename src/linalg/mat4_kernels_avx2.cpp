/**
 * @file
 * AVX2 backend for the Mat4 kernel table.
 *
 * Packing: complex entries stay in their natural interleaved
 * [re, im] layout, two complex entries per 256-bit register -- a
 * Mat4 row is exactly two registers, a Mat2 row is one. A complex
 * product is one swap-permute, two multiplies, and one addsub, which
 * reproduces the naive per-component rounding of the scalar
 * reference exactly (see the bit-identity contract in
 * mat4_kernels.hpp).
 *
 * Deliberately no FMA: a fused product rounds once where the scalar
 * reference rounds twice. This file compiles with
 * "-mavx2 -ffp-contract=off" (CMakeLists.txt) and is built as an
 * empty stub when the compiler cannot target AVX2 (QBASIS_SIMD=OFF,
 * non-x86 targets) -- the dispatcher then sees a null table and
 * falls back to scalar.
 *
 * All loads/stores are unaligned (vmovupd): Mat4 lives wherever the
 * caller put it (stack, std::vector, snapshot buffers) and carries
 * only alignof(double) == 8 alignment; on every AVX2-era core the
 * unaligned forms cost the same as aligned ones when the address
 * happens to be aligned.
 */

#include "linalg/mat4_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace qbasis {
namespace mat4_avx2 {

namespace {

inline const double *
dp(const Complex *p)
{
    return reinterpret_cast<const double *>(p);
}

inline double *
dp(Complex *p)
{
    return reinterpret_cast<double *>(p);
}

/** Two complex entries. */
inline __m256d
load2(const Complex *p)
{
    return _mm256_loadu_pd(dp(p));
}

/** One complex entry into a 128-bit half. */
inline __m128d
load1(const Complex *p)
{
    return _mm_loadu_pd(dp(p));
}

inline void
store2(Complex *p, __m256d v)
{
    _mm256_storeu_pd(dp(p), v);
}

/** [re0, im0, re1, im1] -> [im0, re0, im1, re1]. */
inline __m256d
swapReIm(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

/** Exact sign flip of every lane. */
inline __m256d
neg(__m256d v)
{
    return _mm256_xor_pd(v, _mm256_set1_pd(-0.0));
}

/**
 * (ar + i ai) * v for a broadcast complex scalar and two packed
 * complex entries; rounding identical to the scalar naive formula:
 * [ar*br - ai*bi, ar*bi + ai*br].
 */
inline __m256d
cmulScalarVec(__m256d ar, __m256d ai, __m256d v)
{
    const __m256d t1 = _mm256_mul_pd(ar, v);
    const __m256d t2 = _mm256_mul_pd(ai, swapReIm(v));
    return _mm256_addsub_pd(t1, t2);
}

/** Element-wise complex product of two packed pairs. */
inline __m256d
cmulVecVec(__m256d u, __m256d v)
{
    const __m256d ur = _mm256_movedup_pd(u);     // [re, re, ...]
    const __m256d ui = _mm256_permute_pd(u, 0xF); // [im, im, ...]
    const __m256d t1 = _mm256_mul_pd(ur, v);
    const __m256d t2 = _mm256_mul_pd(ui, swapReIm(v));
    return _mm256_addsub_pd(t1, t2);
}

/** Element-wise conj(u) * v of two packed pairs:
 *  [ur*vr + ui*vi, ur*vi - ui*vr] via addsub against the negated
 *  cross terms -- identical rounding to conj-then-multiply. */
inline __m256d
cmulConjVecVec(__m256d u, __m256d v)
{
    const __m256d ur = _mm256_movedup_pd(u);
    const __m256d ui = _mm256_permute_pd(u, 0xF);
    const __m256d t1 = _mm256_mul_pd(ur, v);
    const __m256d t2 = _mm256_mul_pd(ui, swapReIm(v));
    return _mm256_addsub_pd(t1, neg(t2));
}

/** Sum of the two complex lanes as one complex. */
inline Complex
horizontalAdd(__m256d acc)
{
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    alignas(16) double out[2];
    _mm_store_pd(out, s);
    return Complex(out[0], out[1]);
}

/** Broadcast the real / imaginary part of entry `p`. */
inline __m256d
bre(const Complex *p)
{
    return _mm256_broadcast_sd(dp(p));
}

inline __m256d
bim(const Complex *p)
{
    return _mm256_broadcast_sd(dp(p) + 1);
}

} // namespace

void
matmul(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 4; ++i) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int k = 0; k < 4; ++k) {
            const __m256d ar = bre(a + 4 * i + k);
            const __m256d ai = bim(a + 4 * i + k);
            acc0 = _mm256_add_pd(
                acc0, cmulScalarVec(ar, ai, load2(b + 4 * k)));
            acc1 = _mm256_add_pd(
                acc1, cmulScalarVec(ar, ai, load2(b + 4 * k + 2)));
        }
        store2(out + 4 * i, acc0);
        store2(out + 4 * i + 2, acc1);
    }
}

void
adjointMul(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 4; ++i) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (int k = 0; k < 4; ++k) {
            // conj(a(k, i)): exact sign flip of the imaginary part.
            const __m256d ar = bre(a + 4 * k + i);
            const __m256d ai = neg(bim(a + 4 * k + i));
            acc0 = _mm256_add_pd(
                acc0, cmulScalarVec(ar, ai, load2(b + 4 * k)));
            acc1 = _mm256_add_pd(
                acc1, cmulScalarVec(ar, ai, load2(b + 4 * k + 2)));
        }
        store2(out + 4 * i, acc0);
        store2(out + 4 * i + 2, acc1);
    }
}

void
kron2(const Complex *a, const Complex *b, Complex *out)
{
    for (int i = 0; i < 2; ++i) {
        for (int k = 0; k < 2; ++k) {
            const __m256d brow = load2(b + 2 * k);
            // Row 2i+k = [a(i,0) b_row, a(i,1) b_row].
            Complex *row = out + 4 * (2 * i + k);
            store2(row, cmulScalarVec(bre(a + 2 * i),
                                      bim(a + 2 * i), brow));
            store2(row + 2, cmulScalarVec(bre(a + 2 * i + 1),
                                          bim(a + 2 * i + 1), brow));
        }
    }
}

void
kronMulLeft(const Complex *a1, const Complex *a0, const Complex *m,
            Complex *out)
{
    // p[j][k] spans the 4 columns in two registers each.
    __m256d p[2][2][2];
    for (int j = 0; j < 2; ++j) {
        const __m256d m0a = load2(m + 4 * (2 * j));
        const __m256d m0b = load2(m + 4 * (2 * j) + 2);
        const __m256d m1a = load2(m + 4 * (2 * j + 1));
        const __m256d m1b = load2(m + 4 * (2 * j + 1) + 2);
        for (int k = 0; k < 2; ++k) {
            const __m256d a0r = bre(a0 + 2 * k);
            const __m256d a0i = bim(a0 + 2 * k);
            const __m256d a1r = bre(a0 + 2 * k + 1);
            const __m256d a1i = bim(a0 + 2 * k + 1);
            p[j][k][0] =
                _mm256_add_pd(cmulScalarVec(a0r, a0i, m0a),
                              cmulScalarVec(a1r, a1i, m1a));
            p[j][k][1] =
                _mm256_add_pd(cmulScalarVec(a0r, a0i, m0b),
                              cmulScalarVec(a1r, a1i, m1b));
        }
    }
    for (int i = 0; i < 2; ++i) {
        const __m256d a1i0r = bre(a1 + 2 * i);
        const __m256d a1i0i = bim(a1 + 2 * i);
        const __m256d a1i1r = bre(a1 + 2 * i + 1);
        const __m256d a1i1i = bim(a1 + 2 * i + 1);
        for (int k = 0; k < 2; ++k) {
            Complex *row = out + 4 * (2 * i + k);
            store2(row, _mm256_add_pd(
                            cmulScalarVec(a1i0r, a1i0i, p[0][k][0]),
                            cmulScalarVec(a1i1r, a1i1i, p[1][k][0])));
            store2(row + 2,
                   _mm256_add_pd(
                       cmulScalarVec(a1i0r, a1i0i, p[0][k][1]),
                       cmulScalarVec(a1i1r, a1i1i, p[1][k][1])));
        }
    }
}

void
mulKronRight(const Complex *m, const Complex *a1, const Complex *a0,
             Complex *out)
{
    const __m256d a0row0 = load2(a0);     // [a0(0,0), a0(0,1)]
    const __m256d a0row1 = load2(a0 + 2); // [a0(1,0), a0(1,1)]
    const __m256d a100r = bre(a1), a100i = bim(a1);
    const __m256d a101r = bre(a1 + 1), a101i = bim(a1 + 1);
    const __m256d a110r = bre(a1 + 2), a110i = bim(a1 + 2);
    const __m256d a111r = bre(a1 + 3), a111i = bim(a1 + 3);
    for (int r = 0; r < 4; ++r) {
        // q[i] = m(r,2i) a0_row0 + m(r,2i+1) a0_row1, lanes over l.
        __m256d q[2];
        for (int i = 0; i < 2; ++i) {
            const Complex *mp = m + 4 * r + 2 * i;
            q[i] = _mm256_add_pd(
                cmulScalarVec(bre(mp), bim(mp), a0row0),
                cmulScalarVec(bre(mp + 1), bim(mp + 1), a0row1));
        }
        // out(r, 2j+l) = a1(0,j) q[0][l] + a1(1,j) q[1][l].
        store2(out + 4 * r,
               _mm256_add_pd(cmulScalarVec(a100r, a100i, q[0]),
                             cmulScalarVec(a110r, a110i, q[1])));
        store2(out + 4 * r + 2,
               _mm256_add_pd(cmulScalarVec(a101r, a101i, q[0]),
                             cmulScalarVec(a111r, a111i, q[1])));
    }
}

Complex
adjointTraceDot(const Complex *a, const Complex *b)
{
    __m256d acc = _mm256_setzero_pd();
    for (int m = 0; m < 16; m += 2) {
        acc = _mm256_add_pd(
            acc, cmulConjVecVec(load2(a + m), load2(b + m)));
    }
    // Lane 0 accumulated even flat indices, lane 1 odd ones; the
    // final (even + odd) add matches the scalar reference.
    return horizontalAdd(acc);
}

void
kronTraceQ1(const Complex *g, const Complex *x0, Complex *s)
{
    // Columns of x0 as packed pairs: [x0(0,c0), x0(1,c0)].
    const __m256d xcol0 =
        _mm256_set_m128d(load1(x0 + 2), load1(x0));
    const __m256d xcol1 =
        _mm256_set_m128d(load1(x0 + 3), load1(x0 + 1));
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            // Lanes over r0: g(2c1+c0, 2r1+r0) for c0 = 0, 1.
            const __m256d g0 = load2(g + 4 * (2 * c1) + 2 * r1);
            const __m256d g1 = load2(g + 4 * (2 * c1 + 1) + 2 * r1);
            const __m256d acc =
                _mm256_add_pd(cmulVecVec(g0, xcol0),
                              cmulVecVec(g1, xcol1));
            s[2 * r1 + c1] = horizontalAdd(acc);
        }
    }
}

void
kronTraceQ0(const Complex *g, const Complex *x1, Complex *s)
{
    // Columns of x1 as packed pairs: [x1(0,c1), x1(1,c1)].
    const __m256d xcol0 =
        _mm256_set_m128d(load1(x1 + 2), load1(x1));
    const __m256d xcol1 =
        _mm256_set_m128d(load1(x1 + 3), load1(x1 + 1));
    for (int r0 = 0; r0 < 2; ++r0) {
        for (int c0 = 0; c0 < 2; ++c0) {
            // Lanes over r1: g(2c1+c0, 2r1+r0) for c1 = 0, 1 --
            // columns r0 and r0+2 of rows c0 and c0+2.
            const __m256d ga = _mm256_set_m128d(
                load1(g + 4 * c0 + r0 + 2), load1(g + 4 * c0 + r0));
            const __m256d gb = _mm256_set_m128d(
                load1(g + 4 * (2 + c0) + r0 + 2),
                load1(g + 4 * (2 + c0) + r0));
            const __m256d acc = _mm256_add_pd(
                cmulVecVec(ga, xcol0), cmulVecVec(gb, xcol1));
            s[2 * r0 + c0] = horizontalAdd(acc);
        }
    }
}

void
layerFwd(const Complex *layer, const Complex *u1, const Complex *u0,
         const Complex *r_prev, Complex *bright, Complex *right)
{
    matmul(layer, r_prev, bright);
    kronMulLeft(u1, u0, bright, right);
}

void
layerBwd(const Complex *left, const Complex *u1, const Complex *u0,
         const Complex *layer, Complex *out)
{
    Complex tmp[16];
    mulKronRight(left, u1, u0, tmp);
    if (layer == nullptr) {
        for (int i = 0; i < 16; ++i)
            out[i] = tmp[i];
        return;
    }
    matmul(tmp, layer, out);
}

} // namespace mat4_avx2

const Mat4KernelTable *
mat4Avx2Table()
{
    static const Mat4KernelTable table = {
        mat4_avx2::matmul,       mat4_avx2::adjointMul,
        mat4_avx2::kron2,        mat4_avx2::kronMulLeft,
        mat4_avx2::mulKronRight, mat4_avx2::adjointTraceDot,
        mat4_avx2::kronTraceQ1,  mat4_avx2::kronTraceQ0,
        mat4_avx2::layerFwd,     mat4_avx2::layerBwd,
    };
    return &table;
}

} // namespace qbasis

#else // !__AVX2__

namespace qbasis {

/** Stub when the backend is compiled without AVX2 support
 *  (QBASIS_SIMD=OFF or a non-x86 target): dispatch falls back to
 *  the scalar reference. */
const Mat4KernelTable *
mat4Avx2Table()
{
    return nullptr;
}

} // namespace qbasis

#endif // __AVX2__
