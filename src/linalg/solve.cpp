#include "linalg/solve.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

RMat
solveLinearSystem(RMat a, RMat b)
{
    const size_t n = a.rows();
    if (a.cols() != n || b.rows() != n)
        panic("solveLinearSystem shape mismatch");

    // Forward elimination with partial pivoting.
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::abs(a(r, col)) > std::abs(a(pivot, col)))
                pivot = r;
        if (std::abs(a(pivot, col)) < 1e-300)
            fatal("solveLinearSystem: singular matrix");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a(pivot, c), a(col, c));
            for (size_t c = 0; c < b.cols(); ++c)
                std::swap(b(pivot, c), b(col, c));
        }
        const double d = a(col, col);
        for (size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) / d;
            if (f == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a(r, c) -= f * a(col, c);
            for (size_t c = 0; c < b.cols(); ++c)
                b(r, c) -= f * b(col, c);
        }
    }
    // Back substitution.
    RMat x(n, b.cols());
    for (size_t r = n; r-- > 0;) {
        for (size_t c = 0; c < b.cols(); ++c) {
            double s = b(r, c);
            for (size_t k = r + 1; k < n; ++k)
                s -= a(r, k) * x(k, c);
            x(r, c) = s / a(r, r);
        }
    }
    return x;
}

RMat
inverseMatrix(const RMat &a)
{
    return solveLinearSystem(a, RMat::identity(a.rows()));
}

} // namespace qbasis
