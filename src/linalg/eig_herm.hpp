#ifndef QBASIS_LINALG_EIG_HERM_HPP
#define QBASIS_LINALG_EIG_HERM_HPP

/**
 * @file
 * Cyclic Jacobi eigensolver for complex Hermitian matrices.
 *
 * Used for static Hamiltonian spectra (dressed states, ZZ-null bias
 * search) and Hermitian matrix functions.
 */

#include <vector>

#include "linalg/matrix.hpp"

namespace qbasis {

/** Eigendecomposition result: H = V diag(values) V^dag. */
struct HermEig
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the eigenvectors. */
    CMat vectors;
};

/**
 * Diagonalize a complex Hermitian matrix with the cyclic Jacobi
 * method using complex plane rotations.
 *
 * @param h    Hermitian input (Hermiticity enforced by averaging).
 * @param tol  off-diagonal convergence threshold relative to the norm.
 */
HermEig jacobiEigHerm(const CMat &h, double tol = 1e-13);

} // namespace qbasis

#endif // QBASIS_LINALG_EIG_HERM_HPP
