/**
 * @file
 * Backend probe and dispatch for the Mat4 kernel table.
 *
 * Resolution happens once, on first use: AVX2 when the host
 * supports it and the backend was compiled in, unless
 * QBASIS_FORCE_SCALAR pins the scalar reference (the forced-scalar
 * side of the simd-determinism CI matrix). The active table is held
 * in a relaxed atomic so test-only overrides (setMat4Backend) are
 * race-free against concurrent readers.
 */

#include "linalg/mat4_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qbasis {

// Backend tables (mat4_kernels_scalar.cpp / mat4_kernels_avx2.cpp;
// the AVX2 one returns nullptr when compiled without -mavx2).
const Mat4KernelTable *mat4ScalarTable();
const Mat4KernelTable *mat4Avx2Table();

namespace {

bool
cpuSupports(const char *feature)
{
#if defined(__x86_64__) || defined(__i386__)
    // libgcc/compiler-rt's probe checks XCR0 state for the AVX
    // family, so "avx2" here implies OS ymm-save support too.
    if (std::strcmp(feature, "avx2") == 0)
        return __builtin_cpu_supports("avx2");
    if (std::strcmp(feature, "fma") == 0)
        return __builtin_cpu_supports("fma");
    return false;
#else
    (void)feature;
    return false;
#endif
}

struct Dispatch
{
    std::atomic<const Mat4KernelTable *> table;
    std::atomic<Mat4Backend> backend;

    Dispatch()
    {
        const Mat4Backend resolved = resolveMat4Backend(
            std::getenv("QBASIS_FORCE_SCALAR"),
            mat4HostHasAvx2() && mat4Avx2Table() != nullptr);
        backend.store(resolved, std::memory_order_relaxed);
        table.store(resolved == Mat4Backend::Avx2 ? mat4Avx2Table()
                                                  : mat4ScalarTable(),
                    std::memory_order_relaxed);
    }
};

Dispatch &
dispatch()
{
    static Dispatch d;
    return d;
}

} // namespace

bool
mat4HostHasAvx2()
{
    static const bool has = cpuSupports("avx2");
    return has;
}

bool
mat4HostHasFma()
{
    static const bool has = cpuSupports("fma");
    return has;
}

Mat4Backend
resolveMat4Backend(const char *force_scalar_env, bool avx2_usable)
{
    if (force_scalar_env != nullptr && *force_scalar_env != '\0'
        && std::strcmp(force_scalar_env, "0") != 0)
        return Mat4Backend::Scalar;
    return avx2_usable ? Mat4Backend::Avx2 : Mat4Backend::Scalar;
}

const Mat4KernelTable &
mat4Kernels()
{
    return *dispatch().table.load(std::memory_order_relaxed);
}

Mat4Backend
activeMat4Backend()
{
    return dispatch().backend.load(std::memory_order_relaxed);
}

const Mat4KernelTable *
mat4BackendTable(Mat4Backend backend)
{
    switch (backend) {
    case Mat4Backend::Scalar:
        return mat4ScalarTable();
    case Mat4Backend::Avx2:
        return mat4HostHasAvx2() ? mat4Avx2Table() : nullptr;
    }
    return nullptr;
}

const char *
mat4BackendName(Mat4Backend backend)
{
    return backend == Mat4Backend::Avx2 ? "avx2" : "scalar";
}

std::string
mat4BackendBanner()
{
    std::string host = "baseline";
    if (mat4HostHasAvx2())
        host = mat4HostHasFma() ? "avx2+fma" : "avx2";
    std::string banner = mat4BackendName(activeMat4Backend());
    banner += " [host: " + host + "]";
    if (activeMat4Backend() == Mat4Backend::Avx2)
        banner += " (fp-contract off for bit-identity)";
    else if (mat4HostHasAvx2())
        banner += " (scalar pinned: QBASIS_FORCE_SCALAR or "
                  "QBASIS_SIMD=OFF build)";
    return banner;
}

bool
setMat4Backend(Mat4Backend backend)
{
    const Mat4KernelTable *table = mat4BackendTable(backend);
    if (table == nullptr)
        return false;
    Dispatch &d = dispatch();
    d.table.store(table, std::memory_order_relaxed);
    d.backend.store(backend, std::memory_order_relaxed);
    return true;
}

} // namespace qbasis
