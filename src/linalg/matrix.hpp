#ifndef QBASIS_LINALG_MATRIX_HPP
#define QBASIS_LINALG_MATRIX_HPP

/**
 * @file
 * Dynamic dense matrix template for real and complex scalars.
 *
 * Used where dimensions exceed 4 (the 27-dimensional device
 * Hamiltonian, tomography linear systems, statevector utilities).
 * Fixed 2x2/4x4 work should use Mat2/Mat4 instead.
 */

#include <cmath>
#include <vector>

#include "linalg/types.hpp"
#include "util/logging.hpp"

namespace qbasis {

/** Dense row-major matrix of scalar type T. */
template <typename T>
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() : rows_(0), cols_(0) {}

    /** Zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), a_(rows * cols, T{})
    {}

    /** Number of rows. */
    size_t rows() const { return rows_; }

    /** Number of columns. */
    size_t cols() const { return cols_; }

    /** Element access (row, col). */
    T &operator()(size_t r, size_t c) { return a_[r * cols_ + c]; }

    /** Element access (row, col), const. */
    const T &operator()(size_t r, size_t c) const
    {
        return a_[r * cols_ + c];
    }

    /** Raw storage pointer (row-major). */
    T *data() { return a_.data(); }

    /** Raw storage pointer (row-major), const. */
    const T *data() const { return a_.data(); }

    /** n x n identity. */
    static Matrix identity(size_t n)
    {
        Matrix m(n, n);
        for (size_t i = 0; i < n; ++i)
            m(i, i) = T{1};
        return m;
    }

    Matrix operator+(const Matrix &o) const
    {
        checkSameShape(o);
        Matrix r(rows_, cols_);
        for (size_t i = 0; i < a_.size(); ++i)
            r.a_[i] = a_[i] + o.a_[i];
        return r;
    }

    Matrix operator-(const Matrix &o) const
    {
        checkSameShape(o);
        Matrix r(rows_, cols_);
        for (size_t i = 0; i < a_.size(); ++i)
            r.a_[i] = a_[i] - o.a_[i];
        return r;
    }

    Matrix operator*(const Matrix &o) const
    {
        if (cols_ != o.rows_)
            panic("Matrix multiply shape mismatch: %zux%zu * %zux%zu",
                  rows_, cols_, o.rows_, o.cols_);
        Matrix r(rows_, o.cols_);
        for (size_t i = 0; i < rows_; ++i) {
            for (size_t k = 0; k < cols_; ++k) {
                const T aik = (*this)(i, k);
                if (aik == T{})
                    continue;
                const T *orow = &o.a_[k * o.cols_];
                T *rrow = &r.a_[i * o.cols_];
                for (size_t j = 0; j < o.cols_; ++j)
                    rrow[j] += aik * orow[j];
            }
        }
        return r;
    }

    Matrix operator*(T s) const
    {
        Matrix r(rows_, cols_);
        for (size_t i = 0; i < a_.size(); ++i)
            r.a_[i] = a_[i] * s;
        return r;
    }

    Matrix &operator+=(const Matrix &o)
    {
        checkSameShape(o);
        for (size_t i = 0; i < a_.size(); ++i)
            a_[i] += o.a_[i];
        return *this;
    }

    /** Transpose (no conjugation). */
    Matrix transpose() const
    {
        Matrix r(cols_, rows_);
        for (size_t i = 0; i < rows_; ++i)
            for (size_t j = 0; j < cols_; ++j)
                r(j, i) = (*this)(i, j);
        return r;
    }

    /** Conjugate transpose (equals transpose for real T). */
    Matrix dagger() const
    {
        Matrix r(cols_, rows_);
        for (size_t i = 0; i < rows_; ++i)
            for (size_t j = 0; j < cols_; ++j) {
                if constexpr (std::is_same_v<T, Complex>)
                    r(j, i) = std::conj((*this)(i, j));
                else
                    r(j, i) = (*this)(i, j);
            }
        return r;
    }

    /** Trace (square matrices). */
    T trace() const
    {
        if (rows_ != cols_)
            panic("trace of non-square matrix");
        T t{};
        for (size_t i = 0; i < rows_; ++i)
            t += (*this)(i, i);
        return t;
    }

    /** Frobenius norm. */
    double frobeniusNorm() const
    {
        double s = 0.0;
        for (const auto &x : a_)
            s += std::norm(Complex(x));
        return std::sqrt(s);
    }

    /** Largest absolute entry of (this - o). */
    double maxAbsDiff(const Matrix &o) const
    {
        checkSameShape(o);
        double m = 0.0;
        for (size_t i = 0; i < a_.size(); ++i)
            m = std::max(m, std::abs(Complex(a_[i]) - Complex(o.a_[i])));
        return m;
    }

    /** True iff dagger() * this == I within tol (square only). */
    bool isUnitary(double tol = kMatTol) const
    {
        if (rows_ != cols_)
            return false;
        return (dagger() * (*this)).maxAbsDiff(identity(rows_)) <= tol;
    }

  private:
    void checkSameShape(const Matrix &o) const
    {
        if (rows_ != o.rows_ || cols_ != o.cols_)
            panic("Matrix shape mismatch: %zux%zu vs %zux%zu",
                  rows_, cols_, o.rows_, o.cols_);
    }

    size_t rows_;
    size_t cols_;
    std::vector<T> a_;
};

/** Dynamic real matrix. */
using RMat = Matrix<double>;

/** Dynamic complex matrix. */
using CMat = Matrix<Complex>;

/** Kronecker product of dynamic matrices. */
template <typename T>
Matrix<T>
kron(const Matrix<T> &a, const Matrix<T> &b)
{
    Matrix<T> r(a.rows() * b.rows(), a.cols() * b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j) {
            const T aij = a(i, j);
            if (aij == T{})
                continue;
            for (size_t k = 0; k < b.rows(); ++k)
                for (size_t l = 0; l < b.cols(); ++l)
                    r(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
    return r;
}

} // namespace qbasis

#endif // QBASIS_LINALG_MATRIX_HPP
