#include "linalg/random.hpp"

#include <cmath>

#include "linalg/su2.hpp"

namespace qbasis {

CMat
randomUnitary(size_t n, Rng &rng)
{
    // Ginibre ensemble + Gram-Schmidt with phase fix gives Haar.
    CMat g(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            g(i, j) = Complex(rng.normal(), rng.normal());

    CMat q(n, n);
    for (size_t col = 0; col < n; ++col) {
        std::vector<Complex> v(n);
        for (size_t r = 0; r < n; ++r)
            v[r] = g(r, col);
        // Orthogonalize against previous columns (twice for stability).
        for (int pass = 0; pass < 2; ++pass) {
            for (size_t prev = 0; prev < col; ++prev) {
                Complex dot{};
                for (size_t r = 0; r < n; ++r)
                    dot += std::conj(q(r, prev)) * v[r];
                for (size_t r = 0; r < n; ++r)
                    v[r] -= dot * q(r, prev);
            }
        }
        double norm = 0.0;
        for (size_t r = 0; r < n; ++r)
            norm += std::norm(v[r]);
        norm = std::sqrt(norm);
        // Classical Gram-Schmidt realizes the unique QR with
        // R_ii > 0, which maps the Ginibre ensemble to Haar measure.
        for (size_t r = 0; r < n; ++r)
            q(r, col) = v[r] * (1.0 / norm);
    }
    return q;
}

Mat4
randomUnitary4(Rng &rng)
{
    const CMat q = randomUnitary(4, rng);
    Mat4 m;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            m(i, j) = q(i, j);
    return m;
}

Mat4
randomSU4(Rng &rng)
{
    return randomUnitary4(rng).toSU4();
}

Mat4
randomLocal4(Rng &rng)
{
    return Mat4::kron(randomSU2(rng), randomSU2(rng));
}

} // namespace qbasis
