#ifndef QBASIS_LINALG_POLAR_HPP
#define QBASIS_LINALG_POLAR_HPP

/**
 * @file
 * Polar decomposition utilities: project a near-unitary matrix onto
 * the closest unitary (used to extract gate unitaries from simulated
 * propagators with small leakage).
 */

#include "linalg/mat4.hpp"

namespace qbasis {

/**
 * Closest unitary to `m` in Frobenius norm: U = m (m^dag m)^{-1/2}.
 * Requires m to be nonsingular.
 */
Mat4 nearestUnitary4(const Mat4 &m);

} // namespace qbasis

#endif // QBASIS_LINALG_POLAR_HPP
