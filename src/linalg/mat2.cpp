#include "linalg/mat2.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

Mat2
Mat2::operator+(const Mat2 &o) const
{
    Mat2 r;
    for (int i = 0; i < 4; ++i)
        r.a_[i] = a_[i] + o.a_[i];
    return r;
}

Mat2
Mat2::operator-(const Mat2 &o) const
{
    Mat2 r;
    for (int i = 0; i < 4; ++i)
        r.a_[i] = a_[i] - o.a_[i];
    return r;
}

Mat2
Mat2::operator*(const Mat2 &o) const
{
    return Mat2(a_[0] * o.a_[0] + a_[1] * o.a_[2],
                a_[0] * o.a_[1] + a_[1] * o.a_[3],
                a_[2] * o.a_[0] + a_[3] * o.a_[2],
                a_[2] * o.a_[1] + a_[3] * o.a_[3]);
}

Mat2
Mat2::operator*(Complex s) const
{
    Mat2 r;
    for (int i = 0; i < 4; ++i)
        r.a_[i] = a_[i] * s;
    return r;
}

Mat2 &
Mat2::operator+=(const Mat2 &o)
{
    for (int i = 0; i < 4; ++i)
        a_[i] += o.a_[i];
    return *this;
}

Mat2 &
Mat2::operator*=(Complex s)
{
    for (auto &x : a_)
        x *= s;
    return *this;
}

Mat2
Mat2::dagger() const
{
    return Mat2(std::conj(a_[0]), std::conj(a_[2]),
                std::conj(a_[1]), std::conj(a_[3]));
}

double
Mat2::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &x : a_)
        s += std::norm(x);
    return std::sqrt(s);
}

double
Mat2::maxAbsDiff(const Mat2 &o) const
{
    double m = 0.0;
    for (int i = 0; i < 4; ++i)
        m = std::max(m, std::abs(a_[i] - o.a_[i]));
    return m;
}

bool
Mat2::isUnitary(double tol) const
{
    return (dagger() * (*this)).maxAbsDiff(identity()) <= tol;
}

std::string
Mat2::str(int precision) const
{
    std::string s;
    for (int r = 0; r < 2; ++r) {
        s += "[ ";
        for (int c = 0; c < 2; ++c) {
            const Complex &z = (*this)(r, c);
            s += strformat("%+.*f%+.*fi  ", precision, z.real(),
                           precision, z.imag());
        }
        s += "]\n";
    }
    return s;
}

} // namespace qbasis
