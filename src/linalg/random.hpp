#ifndef QBASIS_LINALG_RANDOM_HPP
#define QBASIS_LINALG_RANDOM_HPP

/**
 * @file
 * Haar-random unitary sampling for tests and Monte-Carlo studies.
 */

#include "linalg/mat4.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Haar-random 4x4 unitary (QR of a complex Ginibre matrix). */
Mat4 randomUnitary4(Rng &rng);

/** Haar-random SU(4) element. */
Mat4 randomSU4(Rng &rng);

/** Random local operation u (x) v with u, v Haar on SU(2). */
Mat4 randomLocal4(Rng &rng);

/** Haar-random n x n unitary. */
CMat randomUnitary(size_t n, Rng &rng);

} // namespace qbasis

#endif // QBASIS_LINALG_RANDOM_HPP
