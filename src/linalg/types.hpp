#ifndef QBASIS_LINALG_TYPES_HPP
#define QBASIS_LINALG_TYPES_HPP

/**
 * @file
 * Shared scalar types and numeric constants for the linalg library.
 */

#include <complex>

namespace qbasis {

/** Complex scalar used throughout qbasis. */
using Complex = std::complex<double>;

/** Imaginary unit. */
inline constexpr Complex kI{0.0, 1.0};

/** pi with full double precision. */
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/** 2*pi. */
inline constexpr double kTwoPi = 2.0 * kPi;

/** Default tolerance for matrix identities (unitarity, equality). */
inline constexpr double kMatTol = 1e-9;

} // namespace qbasis

#endif // QBASIS_LINALG_TYPES_HPP
