#ifndef QBASIS_LINALG_SOLVE_HPP
#define QBASIS_LINALG_SOLVE_HPP

/**
 * @file
 * Dense linear solves (Gaussian elimination with partial pivoting),
 * used by the tomography reconstruction.
 */

#include "linalg/matrix.hpp"

namespace qbasis {

/** Solve A X = B for X (A square, nonsingular). */
RMat solveLinearSystem(RMat a, RMat b);

/** Inverse of a square nonsingular matrix. */
RMat inverseMatrix(const RMat &a);

} // namespace qbasis

#endif // QBASIS_LINALG_SOLVE_HPP
