#include "linalg/simdiag.hpp"

#include <cmath>

#include "linalg/eig_sym.hpp"
#include "util/logging.hpp"

namespace qbasis {

RMat
simultaneouslyDiagonalize(const RMat &a, const RMat &b, double degen_tol)
{
    const size_t n = a.rows();
    if (a.cols() != n || b.rows() != n || b.cols() != n)
        panic("simultaneouslyDiagonalize requires square same-size inputs");

    const SymEig ea = jacobiEigSym(a);
    RMat v = ea.vectors;

    // Walk eigenvalue clusters of `a`; rotate inside each cluster to
    // diagonalize the restriction of `b`.
    size_t start = 0;
    while (start < n) {
        size_t end = start + 1;
        while (end < n
               && std::abs(ea.values[end] - ea.values[start]) < degen_tol) {
            ++end;
        }
        const size_t k = end - start;
        if (k > 1) {
            // bsub = V_block^T b V_block  (k x k)
            RMat bsub(k, k);
            for (size_t i = 0; i < k; ++i) {
                for (size_t j = 0; j < k; ++j) {
                    double s = 0.0;
                    for (size_t r = 0; r < n; ++r) {
                        double t = 0.0;
                        for (size_t c = 0; c < n; ++c)
                            t += b(r, c) * v(c, start + j);
                        s += v(r, start + i) * t;
                    }
                    bsub(i, j) = s;
                }
            }
            const SymEig eb = jacobiEigSym(bsub);
            // V_block <- V_block * W
            RMat vnew(n, k);
            for (size_t r = 0; r < n; ++r)
                for (size_t j = 0; j < k; ++j) {
                    double s = 0.0;
                    for (size_t i = 0; i < k; ++i)
                        s += v(r, start + i) * eb.vectors(i, j);
                    vnew(r, j) = s;
                }
            for (size_t r = 0; r < n; ++r)
                for (size_t j = 0; j < k; ++j)
                    v(r, start + j) = vnew(r, j);
        }
        start = end;
    }
    return v;
}

RMat
diagonalizeSymmetricUnitary(const CMat &m_in, std::vector<Complex> &d)
{
    const size_t n = m_in.rows();
    if (m_in.cols() != n)
        panic("diagonalizeSymmetricUnitary requires a square matrix");

    // Symmetrize defensively.
    CMat m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            m(i, j) = 0.5 * (m_in(i, j) + m_in(j, i));

    RMat re(n, n), im(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j) {
            re(i, j) = m(i, j).real();
            im(i, j) = m(i, j).imag();
        }

    RMat v = simultaneouslyDiagonalize(re, im);

    // Force det(V) = +1 so downstream SO(4) mappings are valid.
    // Determinant of an orthogonal matrix is +-1; compute via the
    // permanent-free route: use the eigen decomposition trick is
    // overkill -- a 4x4-or-small LU suffices, but n is tiny here, so
    // do a simple Gaussian elimination determinant.
    {
        RMat lu = v;
        double det = 1.0;
        for (size_t col = 0; col < n; ++col) {
            size_t piv = col;
            for (size_t r = col + 1; r < n; ++r)
                if (std::abs(lu(r, col)) > std::abs(lu(piv, col)))
                    piv = r;
            if (piv != col) {
                for (size_t c = 0; c < n; ++c)
                    std::swap(lu(piv, c), lu(col, c));
                det = -det;
            }
            det *= lu(col, col);
            if (lu(col, col) == 0.0)
                break;
            for (size_t r = col + 1; r < n; ++r) {
                const double f = lu(r, col) / lu(col, col);
                for (size_t c = col; c < n; ++c)
                    lu(r, c) -= f * lu(col, c);
            }
        }
        if (det < 0.0) {
            for (size_t r = 0; r < n; ++r)
                v(r, 0) = -v(r, 0);
        }
    }

    d.assign(n, Complex{});
    for (size_t k = 0; k < n; ++k) {
        Complex s{};
        for (size_t r = 0; r < n; ++r) {
            Complex t{};
            for (size_t c = 0; c < n; ++c)
                t += m(r, c) * v(c, k);
            s += v(r, k) * t;
        }
        d[k] = s;
    }
    return v;
}

} // namespace qbasis
