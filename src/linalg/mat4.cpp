#include "linalg/mat4.hpp"

#include <cmath>

#include "linalg/mat4_kernels.hpp"
#include "util/logging.hpp"

namespace qbasis {

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        r(i, i) = 1.0;
    return r;
}

Mat4
Mat4::fromRows(const std::array<Complex, 16> &rows)
{
    Mat4 r;
    r.a_ = rows;
    return r;
}

Mat4
Mat4::kron(const Mat2 &a, const Mat2 &b)
{
    Mat4 r;
    mat4Kernels().kron2(a.data(), b.data(), r.data());
    return r;
}

Mat4
Mat4::diag(Complex d0, Complex d1, Complex d2, Complex d3)
{
    Mat4 r;
    r(0, 0) = d0;
    r(1, 1) = d1;
    r(2, 2) = d2;
    r(3, 3) = d3;
    return r;
}

Mat4
Mat4::operator+(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] + o.a_[i];
    return r;
}

Mat4
Mat4::operator-(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] - o.a_[i];
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    // Dispatched dense kernel; no zero-skip so every backend walks
    // the identical accumulation sequence.
    Mat4 r;
    mat4Kernels().matmul(data(), o.data(), r.data());
    return r;
}

Mat4
Mat4::operator*(Complex s) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] * s;
    return r;
}

Mat4 &
Mat4::operator+=(const Mat4 &o)
{
    for (int i = 0; i < 16; ++i)
        a_[i] += o.a_[i];
    return *this;
}

Mat4 &
Mat4::operator*=(Complex s)
{
    for (auto &x : a_)
        x *= s;
    return *this;
}

Mat4
Mat4::dagger() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = std::conj((*this)(j, i));
    return r;
}

Mat4
Mat4::transpose() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat4
Mat4::conjugate() const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = std::conj(a_[i]);
    return r;
}

Complex
Mat4::trace() const
{
    return a_[0] + a_[5] + a_[10] + a_[15];
}

Complex
Mat4::det() const
{
    // Gaussian elimination with partial pivoting on a local copy.
    std::array<Complex, 16> m = a_;
    Complex det_val = 1.0;
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        double best = std::abs(m[4 * col + col]);
        for (int r = col + 1; r < 4; ++r) {
            const double mag = std::abs(m[4 * r + col]);
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (pivot != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(m[4 * pivot + c], m[4 * col + c]);
            det_val = -det_val;
        }
        const Complex d = m[4 * col + col];
        det_val *= d;
        for (int r = col + 1; r < 4; ++r) {
            const Complex f = m[4 * r + col] / d;
            if (f == Complex{})
                continue;
            for (int c = col; c < 4; ++c)
                m[4 * r + c] -= f * m[4 * col + c];
        }
    }
    return det_val;
}

double
Mat4::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &x : a_)
        s += std::norm(x);
    return std::sqrt(s);
}

double
Mat4::maxAbsDiff(const Mat4 &o) const
{
    double m = 0.0;
    for (int i = 0; i < 16; ++i)
        m = std::max(m, std::abs(a_[i] - o.a_[i]));
    return m;
}

bool
Mat4::isUnitary(double tol) const
{
    Mat4 prod;
    adjointMulInto(*this, *this, prod);
    return prod.maxAbsDiff(identity()) <= tol;
}

Mat4
Mat4::toSU4() const
{
    const Complex d = det();
    const double mag = std::abs(d);
    if (mag < 1e-14)
        panic("toSU4 called on a singular matrix");
    // Principal quartic root of the phase.
    const double phase = std::arg(d) / 4.0;
    const Complex scale =
        std::pow(mag, -0.25) * std::exp(Complex(0.0, -phase));
    return (*this) * scale;
}

std::string
Mat4::str(int precision) const
{
    std::string s;
    for (int r = 0; r < 4; ++r) {
        s += "[ ";
        for (int c = 0; c < 4; ++c) {
            const Complex &z = (*this)(r, c);
            s += strformat("%+.*f%+.*fi  ", precision, z.real(),
                           precision, z.imag());
        }
        s += "]\n";
    }
    return s;
}

void
matmulInto(const Mat4 &a, const Mat4 &b, Mat4 &out)
{
    mat4Kernels().matmul(a.data(), b.data(), out.data());
}

void
adjointMulInto(const Mat4 &a, const Mat4 &b, Mat4 &out)
{
    mat4Kernels().adjoint_mul(a.data(), b.data(), out.data());
}

Complex
adjointTraceDot(const Mat4 &a, const Mat4 &b)
{
    return mat4Kernels().adjoint_trace_dot(a.data(), b.data());
}

void
kronMulLeft(const Mat2 &a1, const Mat2 &a0, const Mat4 &m, Mat4 &out)
{
    mat4Kernels().kron_mul_left(a1.data(), a0.data(), m.data(),
                                out.data());
}

void
mulKronRight(const Mat4 &m, const Mat2 &a1, const Mat2 &a0, Mat4 &out)
{
    mat4Kernels().mul_kron_right(m.data(), a1.data(), a0.data(),
                                 out.data());
}

void
kronTracePartialQ1(const Mat4 &g, const Mat2 &x0, Mat2 &s)
{
    mat4Kernels().kron_trace_q1(g.data(), x0.data(), s.data());
}

void
kronTracePartialQ0(const Mat4 &g, const Mat2 &x1, Mat2 &s)
{
    mat4Kernels().kron_trace_q0(g.data(), x1.data(), s.data());
}

void
fusedLayerForward(const Mat4 &layer, const Mat2 &u1, const Mat2 &u0,
                  const Mat4 &r_prev, Mat4 &bright, Mat4 &right)
{
    mat4Kernels().layer_fwd(layer.data(), u1.data(), u0.data(),
                            r_prev.data(), bright.data(),
                            right.data());
}

void
fusedLayerBackward(const Mat4 &left, const Mat2 &u1, const Mat2 &u0,
                   const Mat4 *layer, Mat4 &out)
{
    mat4Kernels().layer_bwd(left.data(), u1.data(), u0.data(),
                            layer != nullptr ? layer->data()
                                             : nullptr,
                            out.data());
}

double
traceInfidelity(const Mat4 &a, const Mat4 &b)
{
    // Tr(a^dag b) without forming the product matrix.
    const Complex t = adjointTraceDot(a, b);
    const double overlap = std::norm(t) / 16.0;
    return 1.0 - overlap;
}

} // namespace qbasis
