#include "linalg/mat4.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qbasis {

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        r(i, i) = 1.0;
    return r;
}

Mat4
Mat4::fromRows(const std::array<Complex, 16> &rows)
{
    Mat4 r;
    r.a_ = rows;
    return r;
}

Mat4
Mat4::kron(const Mat2 &a, const Mat2 &b)
{
    Mat4 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    r(2 * i + k, 2 * j + l) = a(i, j) * b(k, l);
    return r;
}

Mat4
Mat4::diag(Complex d0, Complex d1, Complex d2, Complex d3)
{
    Mat4 r;
    r(0, 0) = d0;
    r(1, 1) = d1;
    r(2, 2) = d2;
    r(3, 3) = d3;
    return r;
}

Mat4
Mat4::operator+(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] + o.a_[i];
    return r;
}

Mat4
Mat4::operator-(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] - o.a_[i];
    return r;
}

Mat4
Mat4::operator*(const Mat4 &o) const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 4; ++k) {
            const Complex aik = a_[4 * i + k];
            if (aik == Complex{})
                continue;
            for (int j = 0; j < 4; ++j)
                r.a_[4 * i + j] += aik * o.a_[4 * k + j];
        }
    }
    return r;
}

Mat4
Mat4::operator*(Complex s) const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = a_[i] * s;
    return r;
}

Mat4 &
Mat4::operator+=(const Mat4 &o)
{
    for (int i = 0; i < 16; ++i)
        a_[i] += o.a_[i];
    return *this;
}

Mat4 &
Mat4::operator*=(Complex s)
{
    for (auto &x : a_)
        x *= s;
    return *this;
}

Mat4
Mat4::dagger() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = std::conj((*this)(j, i));
    return r;
}

Mat4
Mat4::transpose() const
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = (*this)(j, i);
    return r;
}

Mat4
Mat4::conjugate() const
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.a_[i] = std::conj(a_[i]);
    return r;
}

Complex
Mat4::trace() const
{
    return a_[0] + a_[5] + a_[10] + a_[15];
}

Complex
Mat4::det() const
{
    // Gaussian elimination with partial pivoting on a local copy.
    std::array<Complex, 16> m = a_;
    Complex det_val = 1.0;
    for (int col = 0; col < 4; ++col) {
        int pivot = col;
        double best = std::abs(m[4 * col + col]);
        for (int r = col + 1; r < 4; ++r) {
            const double mag = std::abs(m[4 * r + col]);
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (pivot != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(m[4 * pivot + c], m[4 * col + c]);
            det_val = -det_val;
        }
        const Complex d = m[4 * col + col];
        det_val *= d;
        for (int r = col + 1; r < 4; ++r) {
            const Complex f = m[4 * r + col] / d;
            if (f == Complex{})
                continue;
            for (int c = col; c < 4; ++c)
                m[4 * r + c] -= f * m[4 * col + c];
        }
    }
    return det_val;
}

double
Mat4::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &x : a_)
        s += std::norm(x);
    return std::sqrt(s);
}

double
Mat4::maxAbsDiff(const Mat4 &o) const
{
    double m = 0.0;
    for (int i = 0; i < 16; ++i)
        m = std::max(m, std::abs(a_[i] - o.a_[i]));
    return m;
}

bool
Mat4::isUnitary(double tol) const
{
    return (dagger() * (*this)).maxAbsDiff(identity()) <= tol;
}

Mat4
Mat4::toSU4() const
{
    const Complex d = det();
    const double mag = std::abs(d);
    if (mag < 1e-14)
        panic("toSU4 called on a singular matrix");
    // Principal quartic root of the phase.
    const double phase = std::arg(d) / 4.0;
    const Complex scale =
        std::pow(mag, -0.25) * std::exp(Complex(0.0, -phase));
    return (*this) * scale;
}

std::string
Mat4::str(int precision) const
{
    std::string s;
    for (int r = 0; r < 4; ++r) {
        s += "[ ";
        for (int c = 0; c < 4; ++c) {
            const Complex &z = (*this)(r, c);
            s += strformat("%+.*f%+.*fi  ", precision, z.real(),
                           precision, z.imag());
        }
        s += "]\n";
    }
    return s;
}

void
matmulInto(const Mat4 &a, const Mat4 &b, Mat4 &out)
{
    for (int i = 0; i < 4; ++i) {
        Complex r0{}, r1{}, r2{}, r3{};
        for (int k = 0; k < 4; ++k) {
            const Complex aik = a(i, k);
            r0 += aik * b(k, 0);
            r1 += aik * b(k, 1);
            r2 += aik * b(k, 2);
            r3 += aik * b(k, 3);
        }
        out(i, 0) = r0;
        out(i, 1) = r1;
        out(i, 2) = r2;
        out(i, 3) = r3;
    }
}

void
kronMulLeft(const Mat2 &a1, const Mat2 &a0, const Mat4 &m, Mat4 &out)
{
    // out(2i+k, c) = sum_j a1(i, j) * (sum_l a0(k, l) m(2j+l, c)).
    // p[j][k][c] holds the inner contraction over the second qubit.
    Complex p[2][2][4];
    for (int j = 0; j < 2; ++j) {
        for (int k = 0; k < 2; ++k) {
            const Complex a0k0 = a0(k, 0);
            const Complex a0k1 = a0(k, 1);
            for (int c = 0; c < 4; ++c)
                p[j][k][c] =
                    a0k0 * m(2 * j, c) + a0k1 * m(2 * j + 1, c);
        }
    }
    for (int i = 0; i < 2; ++i) {
        const Complex a1i0 = a1(i, 0);
        const Complex a1i1 = a1(i, 1);
        for (int k = 0; k < 2; ++k) {
            for (int c = 0; c < 4; ++c) {
                out(2 * i + k, c) =
                    a1i0 * p[0][k][c] + a1i1 * p[1][k][c];
            }
        }
    }
}

void
mulKronRight(const Mat4 &m, const Mat2 &a1, const Mat2 &a0, Mat4 &out)
{
    // out(r, 2j+l) = sum_i a1(i, j) * (sum_k m(r, 2i+k) a0(k, l)).
    // q[r][i][l] holds the inner contraction over the second qubit.
    Complex q[4][2][2];
    for (int r = 0; r < 4; ++r) {
        for (int i = 0; i < 2; ++i) {
            const Complex m0 = m(r, 2 * i);
            const Complex m1 = m(r, 2 * i + 1);
            for (int l = 0; l < 2; ++l)
                q[r][i][l] = m0 * a0(0, l) + m1 * a0(1, l);
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int j = 0; j < 2; ++j) {
            for (int l = 0; l < 2; ++l) {
                out(r, 2 * j + l) = a1(0, j) * q[r][0][l]
                                    + a1(1, j) * q[r][1][l];
            }
        }
    }
}

void
kronTracePartialQ1(const Mat4 &g, const Mat2 &x0, Mat2 &s)
{
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            Complex acc{};
            for (int r0 = 0; r0 < 2; ++r0)
                for (int c0 = 0; c0 < 2; ++c0)
                    acc += g(2 * c1 + c0, 2 * r1 + r0) * x0(r0, c0);
            s(r1, c1) = acc;
        }
    }
}

void
kronTracePartialQ0(const Mat4 &g, const Mat2 &x1, Mat2 &s)
{
    for (int r0 = 0; r0 < 2; ++r0) {
        for (int c0 = 0; c0 < 2; ++c0) {
            Complex acc{};
            for (int r1 = 0; r1 < 2; ++r1)
                for (int c1 = 0; c1 < 2; ++c1)
                    acc += g(2 * c1 + c0, 2 * r1 + r0) * x1(r1, c1);
            s(r0, c0) = acc;
        }
    }
}

double
traceInfidelity(const Mat4 &a, const Mat4 &b)
{
    Complex t{};
    // Tr(a^dag b) without forming the product matrix.
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            t += std::conj(a(j, i)) * b(j, i);
    const double overlap = std::norm(t) / 16.0;
    return 1.0 - overlap;
}

} // namespace qbasis
