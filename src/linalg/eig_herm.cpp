#include "linalg/eig_herm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace qbasis {

HermEig
jacobiEigHerm(const CMat &h_in, double tol)
{
    const size_t n = h_in.rows();
    if (h_in.cols() != n)
        panic("jacobiEigHerm requires a square matrix");

    CMat a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            a(i, j) = 0.5 * (h_in(i, j) + std::conj(h_in(j, i)));

    CMat v = CMat::identity(n);
    const double scale = std::max(a.frobeniusNorm(), 1e-300);

    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                off += std::norm(a(i, j));
        if (std::sqrt(2.0 * off) <= tol * scale)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const Complex apq = a(p, q);
                const double mag = std::abs(apq);
                if (mag <= 1e-300)
                    continue;
                const double app = a(p, p).real();
                const double aqq = a(q, q).real();
                // Phase that makes the pivot real, then a real
                // Jacobi rotation on the phased pair.
                const Complex phase = apq / mag;
                const double theta = 0.5 * (aqq - app) / mag;
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0)
                    / (std::abs(theta)
                       + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                const Complex sp = s * phase;

                // Columns update: A <- A * R
                for (size_t k = 0; k < n; ++k) {
                    const Complex akp = a(k, p);
                    const Complex akq = a(k, q);
                    a(k, p) = c * akp - std::conj(sp) * akq;
                    a(k, q) = sp * akp + c * akq;
                }
                // Rows update: A <- R^dag * A
                for (size_t k = 0; k < n; ++k) {
                    const Complex apk = a(p, k);
                    const Complex aqk = a(q, k);
                    a(p, k) = c * apk - sp * aqk;
                    a(q, k) = std::conj(sp) * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const Complex vkp = v(k, p);
                    const Complex vkq = v(k, q);
                    v(k, p) = c * vkp - std::conj(sp) * vkq;
                    v(k, q) = sp * vkp + c * vkq;
                }
            }
        }
    }

    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
        return a(i, i).real() < a(j, j).real();
    });

    HermEig out;
    out.values.resize(n);
    out.vectors = CMat(n, n);
    for (size_t c = 0; c < n; ++c) {
        out.values[c] = a(order[c], order[c]).real();
        for (size_t r = 0; r < n; ++r)
            out.vectors(r, c) = v(r, order[c]);
    }
    return out;
}

} // namespace qbasis
