#ifndef QBASIS_LINALG_SIMDIAG_HPP
#define QBASIS_LINALG_SIMDIAG_HPP

/**
 * @file
 * Simultaneous diagonalization of commuting real symmetric matrices.
 *
 * This is the numerical core of the KAK decomposition: in the magic
 * basis, M M^T is a complex symmetric unitary whose real and imaginary
 * parts commute and are simultaneously diagonalized by one real
 * orthogonal matrix.
 */

#include "linalg/matrix.hpp"

namespace qbasis {

/**
 * Find a real orthogonal V such that V^T a V and V^T b V are both
 * diagonal, for commuting symmetric a and b.
 *
 * Degenerate eigenvalues of `a` are resolved by diagonalizing the
 * restriction of `b` to each eigenspace.
 *
 * @param a          first symmetric matrix.
 * @param b          second symmetric matrix, commuting with `a`.
 * @param degen_tol  eigenvalue clustering tolerance for `a`.
 * @return orthogonal matrix of joint eigenvectors (columns).
 */
RMat simultaneouslyDiagonalize(const RMat &a, const RMat &b,
                               double degen_tol = 1e-8);

/**
 * Diagonalize a complex symmetric unitary m = V diag(d) V^T with V
 * real orthogonal (Takagi-like form for the unitary-symmetric case).
 *
 * @param m    complex symmetric unitary (defensively symmetrized).
 * @param d    output diagonal (unit-modulus entries).
 * @return real orthogonal V with det +1.
 */
RMat diagonalizeSymmetricUnitary(const CMat &m, std::vector<Complex> &d);

} // namespace qbasis

#endif // QBASIS_LINALG_SIMDIAG_HPP
