#include "linalg/expm.hpp"

#include <cmath>

#include "linalg/eig_herm.hpp"

namespace qbasis {

CMat
expiHermitian(const CMat &h, double factor)
{
    const HermEig eig = jacobiEigHerm(h);
    const size_t n = h.rows();
    CMat out(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            Complex s{};
            for (size_t k = 0; k < n; ++k) {
                const Complex phase =
                    std::exp(Complex(0.0, factor * eig.values[k]));
                s += eig.vectors(i, k) * phase
                     * std::conj(eig.vectors(j, k));
            }
            out(i, j) = s;
        }
    }
    return out;
}

Mat4
expiHermitian4(const Mat4 &h, double factor)
{
    CMat hd(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            hd(i, j) = h(i, j);
    const CMat ed = expiHermitian(hd, factor);
    Mat4 out;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            out(i, j) = ed(i, j);
    return out;
}

} // namespace qbasis
