#ifndef QBASIS_LINALG_FACTOR_HPP
#define QBASIS_LINALG_FACTOR_HPP

/**
 * @file
 * Tensor-product factorization of two-qubit local operations.
 */

#include "linalg/mat2.hpp"
#include "linalg/mat4.hpp"

namespace qbasis {

/** Result of factoring M ~ phase * (a (x) b). */
struct TensorFactor
{
    Mat2 a;           ///< First-qubit factor, det +1.
    Mat2 b;           ///< Second-qubit factor, det +1.
    Complex phase;    ///< Global phase.
    double residual;  ///< Frobenius distance of the reconstruction.
};

/**
 * Factor a (near) tensor-product 4x4 unitary into SU(2) (x) SU(2)
 * times a global phase.
 *
 * The residual reports how far the input is from an exact product;
 * callers verifying locality should check it against a tolerance.
 */
TensorFactor factorTensorProduct(const Mat4 &m);

} // namespace qbasis

#endif // QBASIS_LINALG_FACTOR_HPP
