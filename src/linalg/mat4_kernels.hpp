#ifndef QBASIS_LINALG_MAT4_KERNELS_HPP
#define QBASIS_LINALG_MAT4_KERNELS_HPP

/**
 * @file
 * Runtime-dispatched dense kernel backends for Mat4/Mat2 hot paths.
 *
 * The synthesis objective evaluates millions of 4x4 complex products
 * per restart; this layer splits those kernels into a scalar
 * reference backend and an AVX2 backend (interleaved re/im packing,
 * two complex entries per 256-bit lane) selected once per process by
 * a cpuid probe.
 *
 * Bit-identity contract
 * ---------------------
 * Every backend must produce bit-identical results to the scalar
 * reference for every kernel: the fleet / persistence determinism
 * guarantees (PRs 2-4) hash synthesis reports, and a snapshot written
 * by an AVX2 host must restore bit-exactly on a scalar one. Two rules
 * enforce this:
 *
 *  1. kernels accumulate in a pinned order (documented per entry
 *     point below) that both backends implement literally, and
 *  2. no fused-multiply-add rounding anywhere: the SIMD translation
 *     unit compiles with -ffp-contract=off and uses mul/add/addsub
 *     intrinsics only. FMA hardware is probed and reported (banner,
 *     BENCH_mat4.json) but deliberately unused in value-bearing
 *     kernels -- a fused product rounds once where the scalar
 *     reference rounds twice, which would fork the report digests
 *     the simd-determinism CI job diffs.
 *
 * Dispatch
 * --------
 * The active table is resolved once on first use: AVX2 when the host
 * supports it (and the backend was compiled in; see QBASIS_SIMD in
 * CMakeLists.txt), else scalar. QBASIS_FORCE_SCALAR=1 in the
 * environment pins the scalar backend at startup -- CI uses it to
 * run the forced-scalar side of the determinism matrix on AVX2
 * runners. Tests may flip the table with setMat4Backend(); that is
 * not thread-safe against in-flight kernels and is test-only.
 *
 * Kernels take raw Complex pointers (row-major, re/im interleaved --
 * the std::complex array layout) so the AVX2 translation unit never
 * needs the Mat4/Mat2 class definitions. Output buffers must not
 * alias inputs unless an entry point documents otherwise.
 */

#include <string>

#include "linalg/types.hpp"

namespace qbasis {

/** Kernel backend identity. */
enum class Mat4Backend
{
    Scalar, ///< Portable reference (always available).
    Avx2,   ///< 256-bit interleaved complex kernels.
};

/**
 * Dispatched kernel entry points. All matrices are row-major
 * Complex arrays: 16 entries for a 4x4, 4 entries for a 2x2.
 */
struct Mat4KernelTable
{
    /** out = a * b. Per output entry, terms accumulate in k order:
     *  out(i,j) = (((a(i,0)b(0,j) + a(i,1)b(1,j)) + a(i,2)b(2,j)) +
     *  a(i,3)b(3,j)), each complex product rounded component-wise
     *  (naive formula). */
    void (*matmul)(const Complex *a, const Complex *b, Complex *out);

    /** out = a^dag * b, accumulated in k order like matmul. */
    void (*adjoint_mul)(const Complex *a, const Complex *b,
                        Complex *out);

    /** out = a (x) b of two 2x2 factors (single rounded product per
     *  entry). */
    void (*kron2)(const Complex *a, const Complex *b, Complex *out);

    /** out = (a1 (x) a0) * m, fused over the 2x2 block structure:
     *  p[j][k][c] = a0(k,0) m(2j,c) + a0(k,1) m(2j+1,c), then
     *  out(2i+k,c) = a1(i,0) p[0][k][c] + a1(i,1) p[1][k][c]. */
    void (*kron_mul_left)(const Complex *a1, const Complex *a0,
                          const Complex *m, Complex *out);

    /** out = m * (a1 (x) a0), fused over the 2x2 block structure:
     *  q[r][i][l] = m(r,2i) a0(0,l) + m(r,2i+1) a0(1,l), then
     *  out(r,2j+l) = a1(0,j) q[r][0][l] + a1(1,j) q[r][1][l]. */
    void (*mul_kron_right)(const Complex *m, const Complex *a1,
                           const Complex *a0, Complex *out);

    /** Tr(a^dag b) = sum_m conj(a[m]) b[m] over the flat 16-entry
     *  array, accumulated as two interleaved partial sums (even flat
     *  indices, odd flat indices -- the SIMD lane split) added once
     *  at the end: (sum_even) + (sum_odd). */
    Complex (*adjoint_trace_dot)(const Complex *a, const Complex *b);

    /** Gradient half-contraction over the second-qubit factor:
     *  s(r1,c1) = (t(0,0) + t(0,1)) + (t(1,0) + t(1,1)) with
     *  t(r0,c0) = g(2c1+c0, 2r1+r0) x0(r0,c0) -- the r0-lane pairing
     *  both backends implement literally. */
    void (*kron_trace_q1)(const Complex *g, const Complex *x0,
                          Complex *s);

    /** Half-contraction over the first-qubit factor:
     *  s(r0,c0) = (t(0,0) + t(0,1)) + (t(1,0) + t(1,1)) with
     *  t(r1,c1) = g(2c1+c0, 2r1+r0) x1(r1,c1) -- the r1-lane pairing
     *  both backends implement literally. */
    void (*kron_trace_q0)(const Complex *g, const Complex *x1,
                          Complex *s);

    /** Fused forward layer step of the synthesis objective:
     *  bright = layer * r_prev, right = (u1 (x) u0) * bright, with
     *  the same rounding as the unfused matmul + kron_mul_left pair.
     *  bright/right must not alias each other or the inputs. */
    void (*layer_fwd)(const Complex *layer, const Complex *u1,
                      const Complex *u0, const Complex *r_prev,
                      Complex *bright, Complex *right);

    /** Fused backward layer step: out = (left * (u1 (x) u0)) * layer
     *  (mul_kron_right then matmul), or just the first factor when
     *  layer == nullptr. `out` MAY alias `left` (an internal scratch
     *  decouples them). */
    void (*layer_bwd)(const Complex *left, const Complex *u1,
                      const Complex *u0, const Complex *layer,
                      Complex *out);
};

/** Active kernel table (resolved once; see file comment). */
const Mat4KernelTable &mat4Kernels();

/** Backend the active table belongs to. */
Mat4Backend activeMat4Backend();

/** Table of a specific backend, or nullptr when it is unavailable
 *  (AVX2 not compiled in / not supported by this host). The bench
 *  times both backends through this without flipping global state. */
const Mat4KernelTable *mat4BackendTable(Mat4Backend backend);

/** "scalar" or "avx2". */
const char *mat4BackendName(Mat4Backend backend);

/**
 * One-line dispatch banner, e.g.
 *   "avx2 [host: avx2+fma] (fp-contract off for bit-identity)"
 * printed by the benches, scripts/verify.sh, and every CI job.
 */
std::string mat4BackendBanner();

/** Host ISA probe results (cpuid; false on non-x86 builds). */
bool mat4HostHasAvx2();
bool mat4HostHasFma();

/**
 * Pure resolution rule behind the startup dispatch, exposed for
 * tests: `force_scalar_env` is the raw QBASIS_FORCE_SCALAR value
 * (nullptr when unset; any value other than "" and "0" forces
 * scalar), `avx2_usable` is "host supports AVX2 and the backend was
 * compiled in".
 */
Mat4Backend resolveMat4Backend(const char *force_scalar_env,
                               bool avx2_usable);

/**
 * Override the active table (tests only; not thread-safe against
 * in-flight kernels). Returns false and leaves the dispatch
 * unchanged when the requested backend is unavailable.
 */
bool setMat4Backend(Mat4Backend backend);

} // namespace qbasis

#endif // QBASIS_LINALG_MAT4_KERNELS_HPP
