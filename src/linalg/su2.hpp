#ifndef QBASIS_LINALG_SU2_HPP
#define QBASIS_LINALG_SU2_HPP

/**
 * @file
 * Single-qubit operators: Paulis, rotations, U3, Haar sampling.
 */

#include "linalg/mat2.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Pauli X. */
Mat2 pauliX();

/** Pauli Y. */
Mat2 pauliY();

/** Pauli Z. */
Mat2 pauliZ();

/** Hadamard. */
Mat2 hadamard();

/** RX(theta) = exp(-i theta X / 2). */
Mat2 rx(double theta);

/** RY(theta) = exp(-i theta Y / 2). */
Mat2 ry(double theta);

/** RZ(theta) = exp(-i theta Z / 2). */
Mat2 rz(double theta);

/** Phase gate diag(1, e^{i phi}). */
Mat2 phaseGate(double phi);

/**
 * The standard U3 gate:
 * [[cos(t/2), -e^{i l} sin(t/2)], [e^{i p} sin(t/2), e^{i(p+l)} cos(t/2)]].
 */
Mat2 u3(double theta, double phi, double lambda);

/** Derivative of u3 with respect to theta. */
Mat2 du3DTheta(double theta, double phi, double lambda);

/** Derivative of u3 with respect to phi. */
Mat2 du3DPhi(double theta, double phi, double lambda);

/** Derivative of u3 with respect to lambda. */
Mat2 du3DLambda(double theta, double phi, double lambda);

/** Haar-random SU(2) element (via unit quaternion). */
Mat2 randomSU2(Rng &rng);

/**
 * Recover U3 angles (theta, phi, lambda) and a global phase such that
 * u = e^{i alpha} U3(theta, phi, lambda), for any unitary 2x2 u.
 *
 * @param u      input unitary.
 * @param alpha  output global phase.
 * @return {theta, phi, lambda}.
 */
struct U3Angles
{
    double theta;
    double phi;
    double lambda;
    double alpha;
};
U3Angles toU3Angles(const Mat2 &u);

} // namespace qbasis

#endif // QBASIS_LINALG_SU2_HPP
