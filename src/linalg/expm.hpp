#ifndef QBASIS_LINALG_EXPM_HPP
#define QBASIS_LINALG_EXPM_HPP

/**
 * @file
 * Matrix exponentials of Hermitian generators.
 */

#include "linalg/mat4.hpp"
#include "linalg/matrix.hpp"

namespace qbasis {

/**
 * exp(i * factor * H) for Hermitian H via eigendecomposition.
 */
CMat expiHermitian(const CMat &h, double factor);

/**
 * exp(i * factor * H) for a Hermitian 4x4 matrix.
 */
Mat4 expiHermitian4(const Mat4 &h, double factor);

} // namespace qbasis

#endif // QBASIS_LINALG_EXPM_HPP
