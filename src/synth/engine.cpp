#include "synth/engine.hpp"

#include <atomic>
#include <climits>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>

#include "linalg/mat4_kernels.hpp"
#include "monodromy/depth.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/depth_cache.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

/** A throwing restart is contained as an aborted slot. */
const FaultSite kFaultSynthRestart("synth.restart");
/** The phase-3b serial re-claim fallback after an owner abandoned. */
const FaultSite kFaultSynthFallback("synth.fallback");

/** Registry mirrors of the engine's atomic counters (aggregated
 *  process-wide across engine instances; per-instance values stay in
 *  SynthEngine::Stats). */
struct SynthMetrics
{
    Counter &batches;
    Counter &requests;
    Counter &jobs;
    Counter &restarts_run;
    Counter &restarts_pruned;
    Counter &restarts_failed;

    static SynthMetrics &
    instance()
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        static SynthMetrics m{reg.counter("synth.batches"),
                              reg.counter("synth.requests"),
                              reg.counter("synth.jobs"),
                              reg.counter("synth.restarts_run"),
                              reg.counter("synth.restarts_pruned"),
                              reg.counter("synth.restarts_failed")};
        return m;
    }
};

/** Result slot of one restart in the current wave. */
struct RestartSlot
{
    std::vector<double> params;
    double infidelity = 1.0;
    bool aborted = false;
    /** Set when the restart threw (contained, not job-fatal). */
    std::exception_ptr error;
};

/** One Weyl-class synthesis running through depth waves. */
struct ClassJob
{
    DecompositionCache::ClassKey key{};
    Mat4 class_gate;
    Mat4 basis;
    std::vector<Mat4> layers; ///< Current wave's layer sequence.
    int depth = 1;
    /** Depth-oracle verdict prefetched in parallel before job start
     *  (see prefetchDepthVerdicts); -1 when not prefetched. */
    int predicted_depth = -1;

    std::vector<RestartSlot> slots;
    std::atomic<int> remaining{0};
    /** Smallest restart index that reached the target; restarts with
     *  a larger index may cancel (smaller ones must finish, which is
     *  what keeps the winner independent of scheduling). */
    std::atomic<int> min_success{INT_MAX};

    // Best-so-far across completed (failed) waves.
    double best_infidelity = 1.0;
    std::vector<double> best_params;
    int best_depth = 0;

    TwoQubitDecomposition result;
    std::exception_ptr error;

    // Contained per-restart failures, folded by reduceWave (which
    // runs on one thread at a time, after every slot has settled).
    uint64_t restarts_failed = 0;
    std::exception_ptr first_restart_error;
};

/** Shared completion state of one synthesizeBatch() call. */
struct BatchState
{
    ThreadPool &pool;
    const SynthOptions &opts;
    TaskPriority priority;
    std::atomic<uint64_t> &restarts_run;
    std::atomic<uint64_t> &restarts_pruned;
    std::atomic<uint64_t> &restarts_failed;
    size_t jobs_remaining = 0; ///< Guarded by `mutex`.
    std::mutex mutex;
    std::condition_variable done_cv;

    BatchState(ThreadPool &p, const SynthOptions &o, TaskPriority pr,
               std::atomic<uint64_t> &run,
               std::atomic<uint64_t> &pruned,
               std::atomic<uint64_t> &failed)
        : pool(p), opts(o), priority(pr), restarts_run(run),
          restarts_pruned(pruned), restarts_failed(failed)
    {
    }

    void
    finishJob()
    {
        // Decrement under the lock: the waiter's predicate also runs
        // under it, so it cannot observe zero (and destroy this
        // stack-allocated state) while a worker is still between the
        // decrement and the notify.
        std::lock_guard<std::mutex> lock(mutex);
        if (--jobs_remaining == 0)
            done_cv.notify_all();
    }

    void
    recordError(ClassJob &job)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!job.error)
            job.error = std::current_exception();
    }

    void runRestart(ClassJob &job, int restart);
    void launchWave(ClassJob &job);
    void reduceWave(ClassJob &job);
    void startJob(ClassJob &job);
};

void
BatchState::launchWave(ClassJob &job)
{
    const int restarts = opts.restarts;
    job.slots.assign(static_cast<size_t>(restarts), RestartSlot{});
    job.min_success.store(INT_MAX);
    job.remaining.store(restarts);
    // Thread-pool closures re-establish the submitter's request
    // correlation so a request's restart spans stay on its track
    // even though they run on pool workers.
    const uint64_t corr = currentTraceCorrelation();
    int submitted = 0;
    try {
        for (int r = 0; r < restarts; ++r) {
            pool.submit(
                [this, &job, r, corr] {
                    TraceCorrelation correlation(corr);
                    runRestart(job, r);
                },
                priority);
            ++submitted;
        }
    } catch (...) {
        // Submission failed partway (e.g. allocation): the job must
        // not finish while already-submitted restarts still run.
        // Account for the never-submitted ones; whichever side takes
        // `remaining` to zero performs the (error-aware) reduction.
        recordError(job);
        const int missing = restarts - submitted;
        if (job.remaining.fetch_sub(missing) == missing)
            reduceWave(job);
    }
}

void
BatchState::runRestart(ClassJob &job, int restart)
{
    RestartSlot &slot = job.slots[static_cast<size_t>(restart)];
    try {
        const auto should_stop = [&job, restart] {
            return job.min_success.load(std::memory_order_relaxed)
                   < restart;
        };
        // Submission-time pruning: a queued restart whose wave was
        // already won by a smaller index never starts. This cannot
        // change the winner -- the winner is the smallest successful
        // index, pruning only fires for strictly larger indices, and
        // pruned slots are marked aborted exactly as a cooperative
        // cancellation would have -- so results stay bit-identical.
        if (should_stop()) {
            slot.aborted = true;
            restarts_pruned.fetch_add(1, std::memory_order_relaxed);
            SynthMetrics::instance().restarts_pruned.add();
            if (job.remaining.fetch_sub(1) == 1)
                reduceWave(job);
            return;
        }
        restarts_run.fetch_add(1, std::memory_order_relaxed);
        SynthMetrics::instance().restarts_run.add();
        QBASIS_TRACE_SCOPE("synth.restart", "context",
                           job.key.context, "restart",
                           static_cast<uint64_t>(restart));
        // Keyed by logical identity (class, depth, restart index) so
        // the fire decision replays across thread interleavings.
        faultPoint(kFaultSynthRestart,
                   Rng::deriveSeed(
                       Rng::deriveSeed(job.key.context,
                                       job.layers.size()),
                       static_cast<uint64_t>(restart)));
        SynthRestartResult res = synthesizeRestart(
            job.class_gate, job.layers,
            synthRestartSeed(opts.seed, job.layers.size(), restart),
            opts, should_stop);

        slot.params = std::move(res.params);
        slot.infidelity = res.infidelity;
        slot.aborted = res.aborted;

        if (!slot.aborted
            && slot.infidelity <= opts.target_infidelity) {
            int cur = job.min_success.load();
            while (restart < cur
                   && !job.min_success.compare_exchange_weak(cur,
                                                             restart)) {
            }
        }
    } catch (...) {
        // Contain the failure to this slot: the restart is folded as
        // aborted (exactly like a cooperative cancellation, so the
        // winner rule is unchanged) and the wave keeps going. The job
        // only fails if every restart of every wave fails.
        slot.params.clear();
        slot.infidelity = 1.0;
        slot.aborted = true;
        slot.error = std::current_exception();
        restarts_failed.fetch_add(1, std::memory_order_relaxed);
        SynthMetrics::instance().restarts_failed.add();
    }
    if (job.remaining.fetch_sub(1) == 1)
        reduceWave(job);
}

void
BatchState::reduceWave(ClassJob &job)
{
    try {
        if (job.error) {
            finishJob();
            return;
        }

        // First successful restart in index order wins (identical to
        // the serial early-break rule).
        for (size_t r = 0; r < job.slots.size(); ++r) {
            const RestartSlot &slot = job.slots[r];
            if (!slot.aborted
                && slot.infidelity <= opts.target_infidelity) {
                job.result = assembleDecomposition(
                    job.class_gate, job.layers, slot.params,
                    slot.infidelity);
                finishJob();
                return;
            }
        }

        // Failed wave: fold into the cross-depth best (strict-less
        // with earliest-index tie-break, matching the serial loop)
        // and bank contained restart errors in index order.
        for (size_t r = 0; r < job.slots.size(); ++r) {
            RestartSlot &slot = job.slots[r];
            if (slot.error) {
                ++job.restarts_failed;
                if (!job.first_restart_error)
                    job.first_restart_error = slot.error;
            }
            if (!slot.aborted
                && slot.infidelity < job.best_infidelity) {
                job.best_infidelity = slot.infidelity;
                job.best_params = std::move(slot.params);
                job.best_depth = job.depth;
            }
        }

        if (job.depth < opts.max_layers) {
            ++job.depth;
            job.layers.assign(static_cast<size_t>(job.depth),
                              job.basis);
            launchWave(job);
            return;
        }

        if (job.best_params.empty()) {
            if (job.restarts_failed > 0) {
                // Every usable restart threw: surface one clean error
                // for the whole job instead of the first raw
                // exception (deterministic: first error in
                // (wave, index) order).
                std::string first = "unknown error";
                try {
                    std::rethrow_exception(job.first_restart_error);
                } catch (const std::exception &e) {
                    first = e.what();
                } catch (...) {
                }
                std::ostringstream os;
                os << "SynthEngine: all " << job.restarts_failed
                   << " restarts failed for class (context="
                   << job.key.context << "); first error: " << first;
                throw std::runtime_error(os.str());
            }
            panic("synthesis produced no candidate parameters");
        }
        warn("SynthEngine: target not reached (best infidelity %.3e "
             "at %d layers)", job.best_infidelity, job.best_depth);
        job.layers.assign(static_cast<size_t>(job.best_depth),
                          job.basis);
        job.result = assembleDecomposition(job.class_gate, job.layers,
                                           job.best_params,
                                           job.best_infidelity);
        finishJob();
    } catch (...) {
        recordError(job);
        finishJob();
    }
}

void
BatchState::startJob(ClassJob &job)
{
    QBASIS_TRACE_SCOPE("synth.job", "context", job.key.context);
    try {
        int start = 1;
        if (opts.use_depth_prediction) {
            // Normally served from the batch's prefetch pass
            // (prefetchDepthVerdicts); the fallback predict() hits
            // the shared verdict cache at most once per
            // (basis, options, class) process-wide.
            start = job.predicted_depth >= 0
                        ? job.predicted_depth
                        : DepthOracleCache::shared().predict(
                              job.class_gate, job.basis,
                              opts.max_layers, opts.oracle);
            if (start == 0) {
                job.result = synthesizeLocalTarget(job.class_gate);
                finishJob();
                return;
            }
            if (start > opts.max_layers)
                start = opts.max_layers; // best effort at the cap
        }
        job.depth = start;
        job.layers.assign(static_cast<size_t>(start), job.basis);
        launchWave(job);
    } catch (...) {
        recordError(job);
        finishJob();
    }
}

/**
 * Depth-prediction batching: resolve every job's depth-oracle
 * verdict through the pool *before* the first job starts, instead of
 * serially at the head of each job's startJob. Jobs are distinct
 * Weyl classes by construction, so the batch's uncached verdicts
 * (each a multistart Nelder-Mead search) fan out across workers;
 * repeat classes hit DepthOracleCache and concurrent batches dedupe
 * through its in-flight claims. Verdicts are pure functions of
 * (class, basis, options), so prefetching cannot change any result
 * -- it only moves oracle work off the jobs' critical path. Like the
 * phase-1 KAK pass, the prefetch runs on the default (Normal) lane
 * regardless of the batch's wave priority.
 */
void
prefetchDepthVerdicts(ThreadPool &pool, const SynthOptions &opts,
                      std::vector<std::unique_ptr<ClassJob>> &jobs)
{
    if (!opts.use_depth_prediction || jobs.empty())
        return;
    pool.parallelFor(jobs.size(), [&](size_t i) {
        jobs[i]->predicted_depth =
            DepthOracleCache::shared().predict(jobs[i]->class_gate,
                                               jobs[i]->basis,
                                               opts.max_layers,
                                               opts.oracle);
    });
}

/**
 * Run every job to completion on the pool and rethrow the first
 * (job-order) error once all of them have settled.
 */
void
runJobsOnPool(ThreadPool &pool, const SynthOptions &opts,
              std::vector<std::unique_ptr<ClassJob>> &jobs,
              TaskPriority priority,
              std::atomic<uint64_t> &restarts_run,
              std::atomic<uint64_t> &restarts_pruned,
              std::atomic<uint64_t> &restarts_failed)
{
    if (jobs.empty())
        return;
    SynthMetrics::instance().jobs.add(jobs.size());
    BatchState state(pool, opts, priority, restarts_run,
                     restarts_pruned, restarts_failed);
    state.jobs_remaining = jobs.size();
    const uint64_t corr = currentTraceCorrelation();
    for (auto &job : jobs) {
        ClassJob *j = job.get();
        pool.submit(
            [&state, j, corr] {
                TraceCorrelation correlation(corr);
                state.startJob(*j);
            },
            priority);
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock,
                       [&state] { return state.jobs_remaining == 0; });
    for (const auto &job : jobs) {
        if (job->error)
            std::rethrow_exception(job->error);
    }
}

} // namespace

SynthEngine::SynthEngine(int threads)
    : owned_(std::make_unique<ThreadPool>(threads)),
      pool_(owned_.get())
{
}

SynthEngine::SynthEngine(ThreadPool &pool) : pool_(&pool) {}

SynthEngine &
SynthEngine::shared()
{
    static SynthEngine engine = [] {
        int threads = 0;
        if (const char *env = std::getenv("QBASIS_SYNTH_THREADS")) {
            threads = std::atoi(env);
            if (threads < 0)
                threads = 0;
        }
        return SynthEngine(threads);
    }();
    return engine;
}

SynthEngine::Stats
SynthEngine::stats() const
{
    Stats s;
    s.restarts_run = restarts_run_.load();
    s.restarts_pruned = restarts_pruned_.load();
    s.restarts_failed = restarts_failed_.load();
    s.mat4_backend = mat4BackendName(activeMat4Backend());
    return s;
}

void
SynthEngine::resetStats()
{
    restarts_run_.store(0);
    restarts_pruned_.store(0);
    restarts_failed_.store(0);
}

std::vector<TwoQubitDecomposition>
SynthEngine::synthesizeBatch(const std::vector<SynthRequest> &requests,
                             DecompositionCache &cache,
                             const SynthOptions &opts,
                             TaskPriority priority)
{
    const size_t n = requests.size();
    std::vector<TwoQubitDecomposition> results(n);
    if (n == 0)
        return results;
    QBASIS_TRACE_SCOPE("synth.batch", "requests", n);
    SynthMetrics::instance().batches.add();
    SynthMetrics::instance().requests.add(n);

    // Phase 1: canonical KAK of every target (embarrassingly
    // parallel; deterministic because results land in per-index
    // slots).
    std::vector<CanonicalKak> kaks(n);
    pool_->parallelFor(n, [&](size_t i) {
        kaks[i] = canonicalKakDecompose(requests[i].target);
    });

    // Phase 2: dedupe into class jobs, in request order so job
    // indices (and therefore cache insertion order) are deterministic.
    std::vector<DecompositionCache::ClassKey> keys(n);
    std::set<DecompositionCache::ClassKey> scheduled;
    std::vector<std::unique_ptr<ClassJob>> jobs;
    for (size_t i = 0; i < n; ++i) {
        keys[i] = DecompositionCache::classKey(kaks[i].coords,
                                               requests[i].basis, opts);
        if (cache.peekClass(keys[i]) || !scheduled.insert(keys[i]).second)
            continue;
        auto job = std::make_unique<ClassJob>();
        job->key = keys[i];
        job->class_gate = DecompositionCache::classGate(keys[i]);
        job->basis = requests[i].basis;
        jobs.push_back(std::move(job));
    }

    // Phase 3: batch the depth-oracle verdicts through the pool,
    // then run all jobs to completion and insert in job order
    // (= first-appearance order) so cache contents never depend on
    // completion order.
    prefetchDepthVerdicts(*pool_, opts, jobs);
    runJobsOnPool(*pool_, opts, jobs, priority, restarts_run_,
                  restarts_pruned_, restarts_failed_);
    for (auto &job : jobs)
        cache.storeClass(job->key, std::move(job->result));
    cache.noteHits(n - jobs.size());

    // Phase 4: dress every request from its class decomposition.
    pool_->parallelFor(n, [&](size_t i) {
        const TwoQubitDecomposition *cls = cache.peekClass(keys[i]);
        if (cls == nullptr)
            panic("SynthEngine: class missing after batch");
        results[i] = DecompositionCache::dressClassDecomposition(
            *cls, kaks[i], requests[i].target);
    });
    return results;
}

std::vector<TwoQubitDecomposition>
SynthEngine::synthesizeBatch(const std::vector<SynthRequest> &requests,
                             SharedDecompositionCache &cache,
                             const SynthOptions &opts, int device_id,
                             TaskPriority priority)
{
    using ClassKey = DecompositionCache::ClassKey;
    const size_t n = requests.size();
    std::vector<TwoQubitDecomposition> results(n);
    if (n == 0)
        return results;
    QBASIS_TRACE_SCOPE("synth.batch", "requests", n, "device",
                       static_cast<uint64_t>(
                           static_cast<uint32_t>(device_id)));
    SynthMetrics::instance().batches.add();
    SynthMetrics::instance().requests.add(n);

    // Phase 1: canonical KAK of every target.
    std::vector<CanonicalKak> kaks(n);
    pool_->parallelFor(n, [&](size_t i) {
        kaks[i] = canonicalKakDecompose(requests[i].target);
    });

    // Phase 2: collapse the batch onto unique classes in
    // first-appearance order, then acquire each against the shared
    // cache: published classes resolve immediately, unclaimed ones
    // become this client's jobs, and classes a concurrent client is
    // already synthesizing are awaited in phase 3b instead of being
    // synthesized twice.
    std::vector<ClassKey> keys(n);
    std::vector<ClassKey> order;
    std::map<ClassKey, uint64_t> lookups;
    std::map<ClassKey, Mat4> basis_of;
    for (size_t i = 0; i < n; ++i) {
        keys[i] = DecompositionCache::classKey(kaks[i].coords,
                                               requests[i].basis, opts);
        if (lookups[keys[i]]++ == 0) {
            order.push_back(keys[i]);
            basis_of.emplace(keys[i], requests[i].basis);
        }
    }

    std::map<ClassKey, const TwoQubitDecomposition *> resolved;
    std::vector<ClassKey> pending;
    std::vector<std::unique_ptr<ClassJob>> jobs;
    std::vector<ClaimGuard> guards; ///< Parallel to `jobs`.
    for (const ClassKey &key : order) {
        const TwoQubitDecomposition *dec = nullptr;
        switch (cache.acquire(key, device_id, lookups[key], &dec)) {
        case SharedDecompositionCache::Claim::Ready:
            resolved[key] = dec;
            break;
        case SharedDecompositionCache::Claim::Owner: {
            auto job = std::make_unique<ClassJob>();
            job->key = key;
            job->class_gate = DecompositionCache::classGate(key);
            job->basis = basis_of.at(key);
            jobs.push_back(std::move(job));
            guards.emplace_back(&cache, key);
            break;
        }
        case SharedDecompositionCache::Claim::Pending:
            pending.push_back(key);
            break;
        }
    }

    // Phase 3: batch the depth-oracle verdicts for the owned jobs,
    // then run them; publish in job order. The guards abandon every
    // unpublished claim if this batch unwinds, so concurrent waiters
    // wake and take over instead of blocking forever.
    prefetchDepthVerdicts(*pool_, opts, jobs);
    runJobsOnPool(*pool_, opts, jobs, priority, restarts_run_,
                  restarts_pruned_, restarts_failed_);
    for (size_t j = 0; j < jobs.size(); ++j) {
        resolved[jobs[j]->key] =
            cache.publish(jobs[j]->key, std::move(jobs[j]->result));
        guards[j].release();
    }

    // Phase 3b: await classes owned by concurrent clients. This
    // thread must not be a pool worker (clients are shard threads),
    // so the owner's jobs keep making progress underneath the wait.
    for (const ClassKey &key : pending) {
        const TwoQubitDecomposition *dec =
            cache.wait(key, lookups.at(key));
        while (dec == nullptr) {
            // The concurrent owner abandoned (its batch threw):
            // recover by re-claiming; synthesis is deterministic, so
            // the serial fallback publishes the same bytes the owner
            // would have.
            switch (cache.acquire(key, device_id, 0, &dec)) {
            case SharedDecompositionCache::Claim::Ready:
                break;
            case SharedDecompositionCache::Claim::Owner: {
                ClaimGuard guard(&cache, key);
                faultPoint(kFaultSynthFallback, key.context);
                dec = cache.publish(
                    key, synthesizeGate(
                             DecompositionCache::classGate(key),
                             basis_of.at(key), opts));
                guard.release();
                break;
            }
            case SharedDecompositionCache::Claim::Pending:
                dec = cache.wait(key, 0);
                break;
            }
        }
        resolved[key] = dec;
    }

    // Phase 4: dress every request from its class decomposition
    // (read-only over `resolved`; pointers are stable until clear()).
    pool_->parallelFor(n, [&](size_t i) {
        results[i] = DecompositionCache::dressClassDecomposition(
            *resolved.at(keys[i]), kaks[i], requests[i].target);
    });
    return results;
}

} // namespace qbasis
