#ifndef QBASIS_SYNTH_DEPTH_CACHE_HPP
#define QBASIS_SYNTH_DEPTH_CACHE_HPP

/**
 * @file
 * Process-wide cache of predictDepth() verdicts.
 *
 * The depth oracle is itself a multistart Nelder-Mead search, and
 * before this cache it reran once per class job -- every engine batch
 * and every serial synthesizeGate() paid the full oracle ladder even
 * when the (target class, basis, options) triple had been decided
 * before. Verdicts are pure functions of that triple, so they are
 * cached under a key of (basis hash + oracle-options hash +
 * max_layers, exact canonical-coordinate bit patterns).
 *
 * Exact-bits coordinates (rather than the decomposition cache's
 * 1e-8 bins) keep the verdict namespace collision-free: predictDepth
 * branches on 1e-9 tolerances, so two *distinct* gates sharing a
 * coarse bin near a region boundary could legitimately receive
 * different verdicts, and letting the first writer decide for both
 * would make results depend on population order. The recurrences
 * that matter -- the same class gate resubmitted across batches,
 * devices, and calibration cycles -- are byte-identical matrices
 * with byte-identical coordinates, so exact keying loses none of
 * them.
 *
 * In-flight dedupe mirrors SharedDecompositionCache: the first
 * client to miss computes the verdict outside the lock while
 * concurrent clients for the same key wait on the condition
 * variable. Waiting inside pool workers is safe because the owner is
 * compute-bound (it never blocks on pool tasks). Counters are
 * deterministic: misses() equals the number of distinct keys.
 */

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

#include "monodromy/oracle.hpp"

namespace qbasis {

/** Shared verdict cache for the analytic/numerical depth oracle. */
class DepthOracleCache
{
  public:
    /**
     * Cached predictDepth(): same contract (0 = local target,
     * max_layers + 1 = infeasible within the cap), computed at most
     * once per (basis, options, target class) triple per process.
     */
    int predict(const Mat4 &target, const Mat4 &basis, int max_layers,
                const OracleOptions &opts);

    uint64_t hits() const;
    uint64_t misses() const;

    /** Stored verdicts. */
    size_t size() const;

    /** Drop everything (tests). No predict() may be in flight. */
    void clear();

    /** Process-wide instance shared by the engine and serial paths. */
    static DepthOracleCache &shared();

  private:
    /** (context hash, coordinate bit patterns). */
    struct Key
    {
        uint64_t context;
        int64_t bx, by, bz;

        bool
        operator<(const Key &o) const
        {
            if (context != o.context)
                return context < o.context;
            if (bx != o.bx)
                return bx < o.bx;
            if (by != o.by)
                return by < o.by;
            return bz != o.bz ? bz < o.bz : false;
        }
    };

    struct Entry
    {
        bool ready = false;
        int depth = 0;
    };

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<Key, Entry> entries_;
    uint64_t hits_ = 0;   ///< Guarded by mutex_.
    uint64_t misses_ = 0; ///< Guarded by mutex_.
};

} // namespace qbasis

#endif // QBASIS_SYNTH_DEPTH_CACHE_HPP
