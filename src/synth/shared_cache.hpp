#ifndef QBASIS_SYNTH_SHARED_CACHE_HPP
#define QBASIS_SYNTH_SHARED_CACHE_HPP

/**
 * @file
 * Process-wide, thread-safe Weyl-class decomposition cache shared by
 * every device of a fleet.
 *
 * Keys are the same (basis hash, options hash, quantized canonical
 * coords) classes as DecompositionCache, so identical bases on
 * *different* devices collapse onto one cache line: fleet compilation
 * dedupes across shards instead of paying an N-device cost
 * multiplier. The map is striped -- each stripe owns a mutex, a
 * condition variable, and a node-based map -- so concurrent shards
 * contend only when they touch the same stripe.
 *
 * In-flight dedupe: the first client to miss a class *claims* it
 * (Claim::Owner) and must publish() the synthesized decomposition (or
 * abandon() it on error). Clients that request the class while the
 * owner is still synthesizing get Claim::Pending and block in wait()
 * instead of re-synthesizing -- a class is synthesized exactly once
 * per process no matter how many shards race on it.
 *
 * Determinism: synthesis is a pure function of (class gate, basis,
 * options) with derived RNG streams, so whichever shard wins the
 * claim publishes bit-identical bytes; fleet results therefore do not
 * depend on shard count or scheduling. Counters are deterministic
 * too: misses() equals the number of distinct classes and hits()
 * equals lookups minus misses regardless of claim order. Cross-device
 * statistics are defined against each class's lowest-numbered device
 * (not the racy claim winner) so they are schedule-independent as
 * well.
 *
 * Pointer stability: published decompositions live in map nodes and
 * stay valid until clear(); clear() must not run while any batch is
 * in flight.
 */

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "synth/cache.hpp"

namespace qbasis {

/** Striped-lock Weyl-class cache shared across fleet devices. */
class SharedDecompositionCache
{
  public:
    using ClassKey = DecompositionCache::ClassKey;

    /** Outcome of an acquire() call. */
    enum class Claim
    {
        Ready,   ///< Published; *out points at the decomposition.
        Owner,   ///< Caller claimed the class: publish() or abandon().
        Pending, ///< Another client is synthesizing: wait().
    };

    /** @param stripes lock-stripe count (clamped to >= 1). */
    explicit SharedDecompositionCache(int stripes = 16);

    /**
     * Look up (or claim) a class on behalf of `device`, crediting
     * `lookups` batched requests that collapse onto it (hit/miss
     * counters advance as if the requests were looked up serially:
     * one miss for a claim, hits for everything else).
     */
    Claim acquire(const ClassKey &key, int device, uint64_t lookups,
                  const TwoQubitDecomposition **out);

    /**
     * Publish the owner's synthesized class; wakes every waiter.
     * Returns the stable in-cache pointer.
     */
    const TwoQubitDecomposition *publish(const ClassKey &key,
                                         TwoQubitDecomposition dec);

    /**
     * Give up a claim without publishing (synthesis threw). Waiters
     * wake with nullptr and re-acquire; one of them becomes the new
     * owner.
     */
    void abandon(const ClassKey &key);

    /**
     * Block until `key` is published (crediting `lookups` hits), or
     * return nullptr if the owner abandoned it -- the caller should
     * then re-acquire. Must only be called after Claim::Pending.
     */
    const TwoQubitDecomposition *wait(const ClassKey &key,
                                      uint64_t lookups);

    /** Aggregate fleet statistics (scans all stripes). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        size_t classes = 0;
        /** Classes looked up by two or more distinct devices. */
        size_t multi_device_classes = 0;
        /**
         * Lookups served to devices other than each class's
         * lowest-numbered device -- the work the fleet did NOT
         * re-synthesize thanks to cross-device sharing. Deterministic
         * by construction (independent of which device won the
         * claim).
         */
        uint64_t cross_device_hits = 0;

        double
        hitRate() const
        {
            const uint64_t total = hits + misses;
            return total > 0 ? static_cast<double>(hits)
                                   / static_cast<double>(total)
                             : 0.0;
        }

        double
        crossDeviceHitRate() const
        {
            const uint64_t total = hits + misses;
            return total > 0 ? static_cast<double>(cross_device_hits)
                                   / static_cast<double>(total)
                             : 0.0;
        }
    };

    /**
     * Plan-replay lookup: the published decomposition of `key`, or
     * nullptr if the class is absent or still being synthesized.
     * Credits NO hit/miss counters and no per-device lookups -- the
     * plan tier does its own accounting (PlanCache::Stats), so the
     * Weyl-tier hit-rate semantics (bench_persist warm rates, fleet
     * cross-device rates) are unchanged by plan traffic. Pointer
     * validity follows the same rules as acquire(): stable until
     * clear()/retireExcept(), which must not run concurrently.
     */
    const TwoQubitDecomposition *peekPublished(const ClassKey &key)
        const;

    Stats stats() const;

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

    /** Published classes across all stripes. */
    size_t size() const;

    /** Drop everything. No batch may be in flight. */
    void clear();

    // -- Persistence + retirement (synth/cache_io, core/fleet) ------

    /**
     * Snapshot every *published* class, sorted by key -- the input of
     * the serializer (sorting makes snapshot bytes a pure function of
     * the entry set). Claimed-but-unpublished classes are skipped:
     * their owner publishes the same bytes later anyway.
     */
    std::vector<std::pair<ClassKey, TwoQubitDecomposition>>
    exportEntries() const;

    /**
     * Visit every published class under the stripe locks, without
     * copying decompositions -- manifest accounting (live/dead
     * counts, encoded-size sums) at O(1) extra memory. `fn` must not
     * reenter the cache. Visit order is stripe-interleaved, not
     * key-sorted.
     */
    void forEachPublished(
        const std::function<void(const ClassKey &,
                                 const TwoQubitDecomposition &)> &fn)
        const;

    /**
     * Merge one deserialized class into the cache. Returns true when
     * inserted; an entry already present -- published, or claimed by
     * an in-flight owner -- wins and the loaded copy is dropped
     * (published entries are pure functions of the key, so the owner
     * converges on the same bytes). Loaded entries advance neither
     * the hit nor the miss counter: warm hit rates measure lookups,
     * not loads.
     */
    bool insertLoaded(const ClassKey &key, TwoQubitDecomposition dec);

    /**
     * Epoch-sweep retirement: drop every published class whose
     * key.context is absent from `live_contexts` (sorted ascending;
     * see DecompositionCache::contextHash and appendLiveContexts()).
     * Returns the number of classes dropped. In-flight claims are
     * never touched, but published-entry pointers held by a running
     * batch would dangle -- like clear(), this must not run while any
     * batch is in flight (the fleet driver runs it between drift
     * cycles, after drainRecalibration()).
     */
    size_t retireExcept(const std::vector<uint64_t> &live_contexts);

  private:
    /** One class entry; lives in a stable map node. */
    struct Entry
    {
        bool ready = false; ///< false while the owner synthesizes.
        TwoQubitDecomposition dec;
        /** Lookup counts per device id (fleets are small). */
        std::vector<std::pair<int, uint64_t>> device_lookups;

        void credit(int device, uint64_t lookups);
    };

    struct Stripe
    {
        mutable std::mutex mutex;
        std::condition_variable cv;
        std::map<ClassKey, Entry> entries;
    };

    Stripe &stripeOf(const ClassKey &key);
    const Stripe &stripeOf(const ClassKey &key) const;

    std::vector<std::unique_ptr<Stripe>> stripes_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

/**
 * RAII holder for a Claim::Owner claim. If the claimant unwinds (a
 * synthesis failure, an injected fault) before publishing, the
 * destructor abandons the claim so waiters wake and one of them
 * re-claims -- wait() can never block on a publisher that died.
 * Call release() after a successful publish() to dismiss the guard.
 */
class ClaimGuard
{
  public:
    ClaimGuard() = default;
    ClaimGuard(SharedDecompositionCache *cache,
               const SharedDecompositionCache::ClassKey &key)
        : cache_(cache), key_(key)
    {
    }

    ClaimGuard(const ClaimGuard &) = delete;
    ClaimGuard &operator=(const ClaimGuard &) = delete;

    ClaimGuard(ClaimGuard &&other) noexcept
        : cache_(other.cache_), key_(other.key_)
    {
        other.cache_ = nullptr;
    }

    ClaimGuard &
    operator=(ClaimGuard &&other) noexcept
    {
        if (this != &other) {
            abandonIfHeld();
            cache_ = other.cache_;
            key_ = other.key_;
            other.cache_ = nullptr;
        }
        return *this;
    }

    ~ClaimGuard() { abandonIfHeld(); }

    /** Dismiss the guard (the claim was published or handed off). */
    void release() { cache_ = nullptr; }

    /** True while the guard still owns an unpublished claim. */
    bool held() const { return cache_ != nullptr; }

  private:
    void
    abandonIfHeld()
    {
        if (cache_ != nullptr) {
            cache_->abandon(key_);
            cache_ = nullptr;
        }
    }

    SharedDecompositionCache *cache_ = nullptr;
    SharedDecompositionCache::ClassKey key_{};
};

} // namespace qbasis

#endif // QBASIS_SYNTH_SHARED_CACHE_HPP
