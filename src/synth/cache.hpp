#ifndef QBASIS_SYNTH_CACHE_HPP
#define QBASIS_SYNTH_CACHE_HPP

/**
 * @file
 * Per-calibration-cycle decomposition cache (paper Section VII),
 * keyed on Weyl equivalence classes.
 *
 * Synthesis cost depends on the target gate only through its
 * canonical Cartan (Weyl-chamber) coordinates: if T and T' are
 * locally equivalent, a decomposition of one differs from the other
 * only in the outermost single-qubit layers. The cache therefore
 * stores one synthesized decomposition per
 *   (basis gate, synthesis options, quantized canonical coordinates)
 * class -- the decomposition of the canonical gate CAN(c) itself --
 * and re-dresses it per target with the exact local factors from
 * canonicalKakDecompose(). All CPhase(theta) instances recurring
 * across QFT/QAOA edges, both orientations of every gate, and any
 * locally-dressed variant hit the same cache line.
 *
 * Folding the basis gate and options into the key also fixes the
 * stale-decomposition bug the raw (edge, target-hash) key had: after
 * a drift/recalibration cycle changes an edge's basis gate, lookups
 * miss instead of silently returning decompositions for the old
 * basis.
 */

#include <cstdint>
#include <map>

#include "synth/numerical.hpp"
#include "weyl/kak.hpp"

namespace qbasis {

/** Cache of Weyl-class -> decomposition of the canonical gate. */
class DecompositionCache
{
  public:
    /** Identifier of one synthesis equivalence class. */
    struct ClassKey
    {
        uint64_t context; ///< Basis-gate (+) synthesis-options hash.
        int64_t qx, qy, qz; ///< Canonical coords / kCoordQuantum.

        bool
        operator<(const ClassKey &o) const
        {
            if (context != o.context)
                return context < o.context;
            if (qx != o.qx)
                return qx < o.qx;
            if (qy != o.qy)
                return qy < o.qy;
            return qz != o.qz ? qz < o.qz : false;
        }
    };

    /**
     * Gate-matrix hashing resolution of hashGate(): entries are
     * quantized to this step before hashing, so hashes are stable
     * against sub-resolution rounding noise. Recorded in cache
     * snapshots (synth/cache_io) -- a snapshot hashed at a different
     * resolution must not be merged.
     */
    static constexpr double kGateHashQuantum = 1e-9;

    /**
     * Canonical-coordinate quantization step for class keys. The
     * class decomposition is synthesized for CAN at the *quantized*
     * coordinates, so re-dressing a target whose exact coordinates
     * sit anywhere in the bin adds at most O(kCoordQuantum^2) ~ 1e-16
     * trace infidelity -- far below every synthesis tolerance used
     * here. (Targets jittering across a bin edge merely synthesize
     * twice; correctness is unaffected.)
     */
    static constexpr double kCoordQuantum = 1e-8;

    /**
     * Return the decomposition of `target` into `basis`, synthesizing
     * the target's Weyl class on first use and re-dressing the class
     * decomposition with the target's own local factors.
     *
     * `edge_id` no longer participates in the key (the basis hash
     * subsumes it); it is kept for call-site compatibility and
     * diagnostics.
     */
    TwoQubitDecomposition getOrSynthesize(int edge_id,
                                          const Mat4 &target,
                                          const Mat4 &basis,
                                          const SynthOptions &opts = {});

    // -- Class-level interface (used by SynthEngine) ----------------

    /** Key of the class with the given canonical coordinates. */
    static ClassKey classKey(const CartanCoords &canonical,
                             const Mat4 &basis,
                             const SynthOptions &opts);

    /** The canonical gate CAN(c) at the key's quantized coords. */
    static Mat4 classGate(const ClassKey &key);

    /** Look up a class without touching the hit/miss counters.
     *  Pointers stay valid until clear(). */
    const TwoQubitDecomposition *peekClass(const ClassKey &key) const;

    /** Insert a synthesized class decomposition (counts one miss). */
    void storeClass(const ClassKey &key, TwoQubitDecomposition dec);

    /** Credit `n` batched lookups that were served from classes
     *  already present (or just stored) -- keeps engine-batch counter
     *  semantics identical to the serial lookup loop. */
    void noteHits(uint64_t n) { hits_ += n; }

    /**
     * Re-dress a class decomposition for a concrete target:
     * graft the target's KAK local factors onto the outermost local
     * layers and recompute phase + exact infidelity against `target`.
     */
    static TwoQubitDecomposition dressClassDecomposition(
        const TwoQubitDecomposition &cls, const CanonicalKak &kak,
        const Mat4 &target);

    /** Number of cache hits so far. */
    uint64_t hits() const { return hits_; }

    /** Number of synthesis calls (misses) so far. */
    uint64_t misses() const { return misses_; }

    /** Number of stored class decompositions. */
    size_t size() const { return cache_.size(); }

    /** Drop all entries (start of a new calibration cycle). */
    void clear();

    /**
     * Content hash of a gate matrix (entries quantized to 1e-9);
     * gates must be bitwise-stable across calls to hit the cache.
     */
    static uint64_t hashGate(const Mat4 &m);

    /** Content hash of the synthesis options that affect results. */
    static uint64_t hashOptions(const SynthOptions &opts);

    /**
     * Context half of the class key: the combined (basis gate,
     * synthesis options) hash shared by every Weyl class synthesized
     * against them. Cache retirement refcounts these against the
     * fleet's live calibrations (see appendLiveContexts()).
     */
    static uint64_t contextHash(const Mat4 &basis,
                                const SynthOptions &opts);

  private:
    std::map<ClassKey, TwoQubitDecomposition> cache_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_CACHE_HPP
