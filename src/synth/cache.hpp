#ifndef QBASIS_SYNTH_CACHE_HPP
#define QBASIS_SYNTH_CACHE_HPP

/**
 * @file
 * Per-calibration-cycle decomposition cache (paper Section VII):
 * decompositions of common target gates into each edge's basis gate
 * are computed once and reused across every circuit compiled in the
 * cycle.
 */

#include <cstdint>
#include <map>
#include <utility>

#include "synth/numerical.hpp"

namespace qbasis {

/** Cache of (edge, target-gate) -> decomposition. */
class DecompositionCache
{
  public:
    /**
     * Return the cached decomposition of `target` into `basis` for
     * the given edge, synthesizing and inserting it on first use.
     */
    const TwoQubitDecomposition &
    getOrSynthesize(int edge_id, const Mat4 &target, const Mat4 &basis,
                    const SynthOptions &opts = {});

    /** Number of cache hits so far. */
    uint64_t hits() const { return hits_; }

    /** Number of synthesis calls (misses) so far. */
    uint64_t misses() const { return misses_; }

    /** Number of stored decompositions. */
    size_t size() const { return cache_.size(); }

    /** Drop all entries (start of a new calibration cycle). */
    void clear();

    /**
     * Content hash of a gate matrix (entries quantized to 1e-9);
     * gates must be bitwise-stable across calls to hit the cache.
     */
    static uint64_t hashGate(const Mat4 &m);

  private:
    std::map<std::pair<int, uint64_t>, TwoQubitDecomposition> cache_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_CACHE_HPP
