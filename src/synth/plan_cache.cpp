#include "synth/plan_cache.hpp"

#include <algorithm>
#include <utility>

namespace qbasis {

std::shared_ptr<const TranspilePlan>
PlanCache::lookup(const PlanKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = plans_.find(key);
    return it != plans_.end() ? it->second.plan : nullptr;
}

bool
PlanCache::lookupMemo(const PlanKey &key, uint64_t fingerprint,
                      PlanMemoResult *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = plans_.find(key);
    if (it == plans_.end() || !it->second.has_memo ||
        it->second.memo_fingerprint != fingerprint)
        return false;
    *out = it->second.memo;
    ++memo_hits_;
    return true;
}

void
PlanCache::store(TranspilePlan plan)
{
    auto shared =
        std::make_shared<const TranspilePlan>(std::move(plan));
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = plans_[shared->key];
    e.plan = std::move(shared);
    e.has_memo = false;
    ++stores_;
}

void
PlanCache::memoize(const PlanKey &key, uint64_t fingerprint,
                   const PlanMemoResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = plans_.find(key);
    if (it == plans_.end())
        return;
    it->second.has_memo = true;
    it->second.memo_fingerprint = fingerprint;
    it->second.memo = result;
}

void
PlanCache::noteReplayHit()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++replay_hits_;
}

void
PlanCache::noteMiss()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
}

size_t
PlanCache::retire(const std::vector<DeviceEpoch> &live)
{
    const auto isLive = [&](const DeviceEpoch &de) {
        const auto it = std::lower_bound(
            live.begin(), live.end(), de.device_id,
            [](const DeviceEpoch &a, int device) {
                return a.device_id < device;
            });
        return it != live.end() && it->device_id == de.device_id &&
               it->epoch == de.epoch;
    };

    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    for (auto it = plans_.begin(); it != plans_.end();) {
        const std::vector<DeviceEpoch> &epochs = it->first.epochs;
        const bool alive =
            std::all_of(epochs.begin(), epochs.end(), isLive);
        if (alive) {
            ++it;
        } else {
            it = plans_.erase(it);
            ++dropped;
        }
    }
    retired_ += dropped;
    return dropped;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plans_.clear();
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PlanCacheStats st;
    st.memo_hits = memo_hits_;
    st.replay_hits = replay_hits_;
    st.misses = misses_;
    st.stores = stores_;
    st.retired = retired_;
    st.loaded = loaded_;
    st.plans = plans_.size();
    return st;
}

std::vector<TranspilePlan>
PlanCache::exportPlans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TranspilePlan> out;
    out.reserve(plans_.size());
    for (const auto &[key, entry] : plans_)
        out.push_back(*entry.plan); // map order == key-sorted
    return out;
}

bool
PlanCache::insertLoaded(TranspilePlan plan)
{
    auto shared =
        std::make_shared<const TranspilePlan>(std::move(plan));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        plans_.try_emplace(shared->key, Entry{});
    if (!inserted)
        return false; // resident entry wins
    it->second.plan = std::move(shared);
    ++loaded_;
    return true;
}

} // namespace qbasis
