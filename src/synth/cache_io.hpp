#ifndef QBASIS_SYNTH_CACHE_IO_HPP
#define QBASIS_SYNTH_CACHE_IO_HPP

/**
 * @file
 * Versioned binary snapshot format for the shared Weyl-class cache.
 *
 * A cache entry is a pure function of (basis gate, synthesis options,
 * quantized canonical coordinates), so a snapshot written by one
 * process is valid in any later process compiled from the same code:
 * warm-start fleet compilation loads the snapshot and serves every
 * previously synthesized class as a pure lookup. Restored entries are
 * byte-identical to freshly synthesized ones and re-dress per target
 * through the same canonicalKakDecompose() path, so warm compile
 * reports are bit-identical to cold ones.
 *
 * Snapshot layout (all integers little-endian, doubles as IEEE-754
 * bit patterns in little-endian u64s -- the format is endian-stable
 * and independent of the host):
 *
 *   header (92 bytes)
 *     magic            8 bytes  "QBWCACHE"
 *     format_version   u32      kCacheFormatVersion
 *     header_bytes     u32      92
 *     coord_quantum    f64      DecompositionCache::kCoordQuantum
 *     gate_quantum     f64      DecompositionCache::kGateHashQuantum
 *     entry_count      u64
 *     section table    2 x {offset u64, size u64, crc32 u32, pad u32}
 *     header_crc       u32      CRC-32 over the preceding 88 bytes
 *   index section (entry_count x 48 bytes, sorted by ClassKey)
 *     context u64, qx i64, qy i64, qz i64,
 *     payload_offset u64 (relative to the payload section),
 *     payload_size u64
 *   payload section (one blob per entry, in index order)
 *     n_locals u32, n_basis u32 (n_basis + 1 == n_locals),
 *     phase_re f64, phase_im f64, infidelity f64,
 *     locals: n_locals x (q1 then q0, row-major, 8 f64 each),
 *     basis:  n_basis x (row-major Mat4, 32 f64)
 *
 * Every byte of the file is covered by a checksum (the header by
 * header_crc, each section by its table entry), so any single-byte
 * corruption is rejected at load time. Version or quantization
 * mismatches are rejected before any entry is parsed; a failed load
 * never modifies the destination cache.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "synth/shared_cache.hpp"

namespace qbasis {

/** Bump on any incompatible layout change OR numerics epoch: a
 *  snapshot's entries must be byte-identical to what the current
 *  build would synthesize, so a change to kernel rounding or
 *  accumulation order (e.g. v2: the dispatched SIMD Mat4 kernel
 *  layer repinned the trace-reduction accumulation) retires old
 *  snapshots even though the layout still parses. CI keys its
 *  snapshot artifact cache on this value (see
 *  .github/workflows/ci.yml). */
constexpr uint32_t kCacheFormatVersion = 2;

/** Outcome classes of snapshot encode/decode/save/load. */
enum class CacheIoStatus
{
    Ok,
    IoError,          ///< File could not be read or written.
    BadMagic,         ///< Not a cache snapshot.
    VersionMismatch,  ///< Written by an incompatible format version.
    QuantumMismatch,  ///< Different quantization parameters.
    Truncated,        ///< Shorter than its header claims.
    ChecksumMismatch, ///< Header or section CRC failed.
    Malformed,        ///< Structurally inconsistent contents.
};

/** Stable name of a status value (diagnostics, JSON). */
const char *cacheIoStatusName(CacheIoStatus status);

/** Result of a snapshot operation. */
struct CacheIoResult
{
    CacheIoStatus status = CacheIoStatus::Ok;
    std::string message;  ///< Human-readable detail on failure.
    size_t entries = 0;   ///< Entries encoded or decoded.
    size_t merged = 0;    ///< Entries actually inserted on load
                          ///< (existing cache entries win the merge).
    size_t bytes = 0;     ///< Snapshot size in bytes.

    bool ok() const { return status == CacheIoStatus::Ok; }
};

/** One serializable cache entry. */
using CacheSnapshotEntry =
    std::pair<DecompositionCache::ClassKey, TwoQubitDecomposition>;

/** CRC-32 (IEEE, reflected 0xEDB88320) used by the snapshot format.
 *  Exposed so tests can forge section checksums deliberately. */
uint32_t cacheCrc32(const uint8_t *data, size_t size);

/** Encoded payload bytes of one entry (its blob in the payload
 *  section, excluding its 48-byte index row). */
size_t cacheEntryEncodedBytes(const TwoQubitDecomposition &dec);

/** Total snapshot bytes for `entries` entries whose payload blobs
 *  sum to `payload_bytes` -- manifest accounting without running the
 *  encoder (header + index rows + payload). */
size_t cacheSnapshotEncodedBytes(size_t entries, size_t payload_bytes);

/**
 * Encode entries into snapshot bytes. Entries are sorted by ClassKey
 * internally, so the encoding of a given entry *set* is unique:
 * snapshot -> restore -> snapshot reproduces the exact bytes.
 */
std::vector<uint8_t>
encodeCacheSnapshot(std::vector<CacheSnapshotEntry> entries);

/**
 * Decode snapshot bytes into `out` (appended). On any failure `out`
 * is untouched and the result carries the status + a message;
 * corrupt, truncated, or version-mismatched inputs are rejected
 * without UB regardless of content.
 */
CacheIoResult decodeCacheSnapshot(const uint8_t *data, size_t size,
                                  std::vector<CacheSnapshotEntry> *out);

/** Read a whole file into `out` (replacing its contents). Returns
 *  false on open or read error. Shared by loadCacheSnapshot and the
 *  bench/test corruption drills, so ferror handling lives in one
 *  place. */
bool readFileBytes(const std::string &path, std::vector<uint8_t> *out);

/** Snapshot every published class of `cache` to `path`. */
CacheIoResult saveCacheSnapshot(const SharedDecompositionCache &cache,
                                const std::string &path);

/**
 * Load a snapshot and merge it into `cache`. Merge semantics: an
 * entry already present (published *or* claimed by an in-flight
 * owner) wins; loaded entries only fill absent classes, so the
 * claim/publish dedupe protocol is unaffected by a concurrent load.
 */
CacheIoResult loadCacheSnapshot(const std::string &path,
                                SharedDecompositionCache &cache);

} // namespace qbasis

#endif // QBASIS_SYNTH_CACHE_IO_HPP
