#ifndef QBASIS_SYNTH_CACHE_IO_HPP
#define QBASIS_SYNTH_CACHE_IO_HPP

/**
 * @file
 * Versioned binary snapshot format for the shared Weyl-class cache.
 *
 * A cache entry is a pure function of (basis gate, synthesis options,
 * quantized canonical coordinates), so a snapshot written by one
 * process is valid in any later process compiled from the same code:
 * warm-start fleet compilation loads the snapshot and serves every
 * previously synthesized class as a pure lookup. Restored entries are
 * byte-identical to freshly synthesized ones and re-dress per target
 * through the same canonicalKakDecompose() path, so warm compile
 * reports are bit-identical to cold ones.
 *
 * Since v3 a snapshot also persists the transpile-plan tier
 * (synth/plan_cache.hpp) alongside the class entries, so a warm
 * start replays whole routing programs, not just class
 * decompositions. Plan keys embed the basis-epoch vector they were
 * captured at; a restarted fleet whose deterministic calibration
 * reproduces those epochs serves them directly, and anything else is
 * epoch-swept by the next retireCache().
 *
 * Snapshot layout (all integers little-endian, doubles as IEEE-754
 * bit patterns in little-endian u64s -- the format is endian-stable
 * and independent of the host):
 *
 *   header (124 bytes)
 *     magic            8 bytes  "QBWCACHE"
 *     format_version   u32      kCacheFormatVersion
 *     header_bytes     u32      124
 *     coord_quantum    f64      DecompositionCache::kCoordQuantum
 *     gate_quantum     f64      DecompositionCache::kGateHashQuantum
 *     entry_count      u64
 *     plan_count       u64
 *     section table    3 x {offset u64, size u64, crc32 u32, pad u32}
 *                      (index, payload, plans -- back to back)
 *     header_crc       u32      CRC-32 over the preceding 120 bytes
 *   index section (entry_count x 48 bytes, sorted by ClassKey)
 *     context u64, qx i64, qy i64, qz i64,
 *     payload_offset u64 (relative to the payload section),
 *     payload_size u64
 *   payload section (one blob per entry, in index order)
 *     n_locals u32, n_basis u32 (n_basis + 1 == n_locals),
 *     phase_re f64, phase_im f64, infidelity f64,
 *     locals: n_locals x (q1 then q0, row-major, 8 f64 each),
 *     basis:  n_basis x (row-major Mat4, 32 f64)
 *   plans section (plan_count records, sorted by PlanKey)
 *     structural_hash u64, options_hash u64,
 *     n_epochs u32, n_ops u32, n_classes u32, num_physical u32,
 *     n_init u32, n_final u32, swaps u64,
 *     epochs:  n_epochs x (device i64, epoch u64),
 *     layouts: n_init x i64, then n_final x i64,
 *     ops:     n_ops x (source i64, q0 i64, q1 i64),
 *     classes: n_classes x (context u64, qx i64, qy i64, qz i64)
 *
 * Every byte of the file is covered by a checksum (the header by
 * header_crc, each section by its table entry), so any single-byte
 * corruption is rejected at load time. Version or quantization
 * mismatches are rejected before any entry is parsed; a failed load
 * never modifies the destination cache.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "synth/plan_cache.hpp"
#include "synth/shared_cache.hpp"

namespace qbasis {

/** Bump on any incompatible layout change OR numerics epoch: a
 *  snapshot's entries must be byte-identical to what the current
 *  build would synthesize, so a change to kernel rounding or
 *  accumulation order (e.g. v2: the dispatched SIMD Mat4 kernel
 *  layer repinned the trace-reduction accumulation) retires old
 *  snapshots even though the layout still parses. v3 added the
 *  transpile-plans section (and grew the header), so v2 snapshots
 *  are rejected with VersionMismatch. CI keys its snapshot artifact
 *  cache on this value (see .github/workflows/ci.yml). */
constexpr uint32_t kCacheFormatVersion = 3;

/** Outcome classes of snapshot encode/decode/save/load. */
enum class CacheIoStatus
{
    Ok,
    IoError,          ///< File could not be read or written.
    BadMagic,         ///< Not a cache snapshot.
    VersionMismatch,  ///< Written by an incompatible format version.
    QuantumMismatch,  ///< Different quantization parameters.
    Truncated,        ///< Shorter than its header claims.
    ChecksumMismatch, ///< Header or section CRC failed.
    Malformed,        ///< Structurally inconsistent contents.
};

/** Stable name of a status value (diagnostics, JSON). */
const char *cacheIoStatusName(CacheIoStatus status);

/** Result of a snapshot operation. */
struct CacheIoResult
{
    CacheIoStatus status = CacheIoStatus::Ok;
    std::string message;  ///< Human-readable detail on failure.
    size_t entries = 0;   ///< Entries encoded or decoded.
    size_t merged = 0;    ///< Entries actually inserted on load
                          ///< (existing cache entries win the merge).
    size_t bytes = 0;     ///< Snapshot size in bytes.

    bool ok() const { return status == CacheIoStatus::Ok; }
};

/** One serializable cache entry. */
using CacheSnapshotEntry =
    std::pair<DecompositionCache::ClassKey, TwoQubitDecomposition>;

/** CRC-32 (IEEE, reflected 0xEDB88320) used by the snapshot format.
 *  Exposed so tests can forge section checksums deliberately. */
uint32_t cacheCrc32(const uint8_t *data, size_t size);

/** Encoded payload bytes of one entry (its blob in the payload
 *  section, excluding its 48-byte index row). */
size_t cacheEntryEncodedBytes(const TwoQubitDecomposition &dec);

/** Total snapshot bytes for `entries` entries whose payload blobs
 *  sum to `payload_bytes` -- manifest accounting without running the
 *  encoder (header + index rows + payload). */
size_t cacheSnapshotEncodedBytes(size_t entries, size_t payload_bytes);

/** Encoded bytes of one plan record in the plans section. */
size_t planEncodedBytes(const TranspilePlan &plan);

/**
 * Encode entries into snapshot bytes (with an empty plans section).
 * Entries are sorted by ClassKey internally, so the encoding of a
 * given entry *set* is unique: snapshot -> restore -> snapshot
 * reproduces the exact bytes.
 */
std::vector<uint8_t>
encodeCacheSnapshot(std::vector<CacheSnapshotEntry> entries);

/** Encode entries and transpile plans. Both are sorted by key
 *  internally, preserving the unique-bytes property. */
std::vector<uint8_t>
encodeCacheSnapshot(std::vector<CacheSnapshotEntry> entries,
                    std::vector<TranspilePlan> plans);

/**
 * Decode snapshot bytes into `out` (appended). On any failure `out`
 * is untouched and the result carries the status + a message;
 * corrupt, truncated, or version-mismatched inputs are rejected
 * without UB regardless of content.
 */
CacheIoResult decodeCacheSnapshot(const uint8_t *data, size_t size,
                                  std::vector<CacheSnapshotEntry> *out);

/** Decode including the plans section (appended to `plans_out` when
 *  non-null; same all-or-nothing failure semantics). */
CacheIoResult decodeCacheSnapshot(const uint8_t *data, size_t size,
                                  std::vector<CacheSnapshotEntry> *out,
                                  std::vector<TranspilePlan> *plans_out);

/** Read a whole file into `out` (replacing its contents). Returns
 *  false on open or read error. Shared by loadCacheSnapshot and the
 *  bench/test corruption drills, so ferror handling lives in one
 *  place. */
bool readFileBytes(const std::string &path, std::vector<uint8_t> *out);

/** Snapshot every published class of `cache` to `path` (empty plans
 *  section). */
CacheIoResult saveCacheSnapshot(const SharedDecompositionCache &cache,
                                const std::string &path);

/** Snapshot published classes AND the plan tier to `path`. Memo
 *  entries are not persisted (see PlanCache::exportPlans). */
CacheIoResult saveCacheSnapshot(const SharedDecompositionCache &cache,
                                const PlanCache &plans,
                                const std::string &path);

/**
 * Load a snapshot and merge it into `cache`. Merge semantics: an
 * entry already present (published *or* claimed by an in-flight
 * owner) wins; loaded entries only fill absent classes, so the
 * claim/publish dedupe protocol is unaffected by a concurrent load.
 */
CacheIoResult loadCacheSnapshot(const std::string &path,
                                SharedDecompositionCache &cache);

/** Load classes and (when `plans` is non-null) merge persisted
 *  transpile plans too -- resident plans win, mirroring the class
 *  merge. CacheIoResult::merged counts classes only; plan merges are
 *  visible through PlanCache::stats().loaded. */
CacheIoResult loadCacheSnapshot(const std::string &path,
                                SharedDecompositionCache &cache,
                                PlanCache *plans);

} // namespace qbasis

#endif // QBASIS_SYNTH_CACHE_IO_HPP
