#ifndef QBASIS_SYNTH_DECOMPOSITION_HPP
#define QBASIS_SYNTH_DECOMPOSITION_HPP

/**
 * @file
 * Representation of layered two-qubit gate decompositions
 * (Fig. 3 of the paper): alternating local layers and 2Q basis
 * gates,
 *   T ~ phase * K_n B_n K_{n-1} ... B_1 K_0,
 * where each K_j = k1_j (x) k0_j is a pair of single-qubit gates.
 */

#include <vector>

#include "linalg/mat2.hpp"
#include "linalg/mat4.hpp"

namespace qbasis {

/** A pair of single-qubit gates applied as one local layer. */
struct LocalPair
{
    Mat2 q1; ///< Gate on the first (most significant) qubit.
    Mat2 q0; ///< Gate on the second qubit.

    /** The 4x4 operator q1 (x) q0. */
    Mat4 toMat4() const { return Mat4::kron(q1, q0); }
};

/** A layered decomposition of a two-qubit gate. */
struct TwoQubitDecomposition
{
    /** Local layers; size is layers() + 1. */
    std::vector<LocalPair> locals;
    /** 2Q basis gates between the locals; size is layers(). */
    std::vector<Mat4> basis;
    /** Global phase of the reconstruction. */
    Complex phase{1.0, 0.0};
    /** Trace infidelity of the reconstruction vs the target. */
    double infidelity = 1.0;

    /** Number of 2Q layers. */
    int layers() const { return static_cast<int>(basis.size()); }

    /** Rebuild the full 4x4 operator. */
    Mat4 reconstruct() const;

    /**
     * Wall-clock duration under the paper's model:
     * layers * t_basis + (layers + 1) * t_1q.
     */
    double duration(double t_basis_ns, double t_1q_ns) const;

    /** Validate structural invariants (sizes, unitarity). */
    bool wellFormed(double tol = 1e-8) const;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_DECOMPOSITION_HPP
