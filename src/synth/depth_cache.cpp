#include "synth/depth_cache.hpp"

#include <cstring>

#include "monodromy/depth.hpp"
#include "synth/cache.hpp"
#include "util/rng.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {

namespace {

int64_t
doubleBits(double v)
{
    int64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double width");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Hash of everything but the target class that sways a verdict. */
uint64_t
contextHash(const Mat4 &basis, int max_layers,
            const OracleOptions &opts)
{
    uint64_t h = DecompositionCache::hashGate(basis);
    h = Rng::deriveSeed(h, static_cast<uint64_t>(max_layers));
    h = Rng::deriveSeed(h, static_cast<uint64_t>(opts.restarts));
    h = Rng::deriveSeed(h, static_cast<uint64_t>(opts.nm_iters));
    h = Rng::deriveSeed(
        h, static_cast<uint64_t>(doubleBits(opts.residual_tol)));
    return Rng::deriveSeed(h, opts.seed);
}

} // namespace

int
DepthOracleCache::predict(const Mat4 &target, const Mat4 &basis,
                          int max_layers, const OracleOptions &opts)
{
    const CartanCoords tc = cartanCoords(target);
    const Key key{contextHash(basis, max_layers, opts),
                  doubleBits(tc.tx), doubleBits(tc.ty),
                  doubleBits(tc.tz)};

    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            auto [it, inserted] = entries_.try_emplace(key);
            if (inserted) {
                ++misses_;
                break; // this thread owns the verdict computation
            }
            if (it->second.ready) {
                ++hits_;
                return it->second.depth;
            }
            // Another thread is computing the same verdict; wait for
            // publish (or for an abandoned claim to vanish).
            cv_.wait(lock);
        }
    }

    int depth = 0;
    try {
        depth = predictDepth(target, basis, max_layers, opts);
    } catch (...) {
        // Release the claim so a waiter can take over.
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
        cv_.notify_all();
        throw;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = entries_[key];
    entry.depth = depth;
    entry.ready = true;
    cv_.notify_all();
    return depth;
}

uint64_t
DepthOracleCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

uint64_t
DepthOracleCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

size_t
DepthOracleCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &[key, entry] : entries_) {
        (void)key;
        if (entry.ready)
            ++n;
    }
    return n;
}

void
DepthOracleCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

DepthOracleCache &
DepthOracleCache::shared()
{
    static DepthOracleCache cache;
    return cache;
}

} // namespace qbasis
