#ifndef QBASIS_SYNTH_TEXTBOOK_HPP
#define QBASIS_SYNTH_TEXTBOOK_HPP

/**
 * @file
 * Exact textbook decompositions used as references and fast paths:
 * the 3-CNOT SWAP of the paper's Fig. 3(c) and the CZ-to-CNOT local
 * conversion.
 */

#include "synth/decomposition.hpp"

namespace qbasis {

/** SWAP = CNOT (H(x)H) CNOT (H(x)H) CNOT, exactly (Fig. 3(c)). */
TwoQubitDecomposition swapFromThreeCnots();

/** CNOT = (I(x)H) CZ (I(x)H), exactly. */
TwoQubitDecomposition cnotFromCz();

} // namespace qbasis

#endif // QBASIS_SYNTH_TEXTBOOK_HPP
