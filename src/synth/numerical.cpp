#include "synth/numerical.hpp"

#include <cmath>

#include "linalg/factor.hpp"
#include "linalg/su2.hpp"
#include "monodromy/depth.hpp"
#include "opt/adam.hpp"
#include "opt/lbfgs.hpp"
#include "util/logging.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

namespace {

/**
 * Trace-infidelity objective over the U3 angles of the local layers.
 *
 * Parameter layout: 6 angles per local layer
 * (theta, phi, lambda for qubit 1, then for qubit 0), n+1 layers.
 * The 2Q layer gates may differ per layer (heterogeneous sequences,
 * e.g. a gate and its SWAP mirror).
 */
class SynthObjective
{
  public:
    SynthObjective(const Mat4 &target, std::vector<Mat4> layers)
        : target_dag_(target.dagger()), layers_(std::move(layers)),
          n_(static_cast<int>(layers_.size()))
    {
    }

    int paramCount() const { return 6 * (n_ + 1); }

    /** V = K_n B_n ... B_1 K_0 for the given parameters. */
    Mat4
    build(const std::vector<double> &p) const
    {
        Mat4 v = localLayer(p, 0);
        for (int j = 1; j <= n_; ++j)
            v = localLayer(p, j) * (layers_[j - 1] * v);
        return v;
    }

    double
    value(const std::vector<double> &p) const
    {
        return infidelity(build(p));
    }

    /** Objective value and analytic gradient. */
    double
    valueAndGrad(const std::vector<double> &p,
                 std::vector<double> &grad) const
    {
        // Forward pass with right partial products:
        // right[j] = K_j B_j K_{j-1} ... K_0 (after applying K_j).
        std::vector<Mat4> right(n_ + 1);
        right[0] = localLayer(p, 0);
        for (int j = 1; j <= n_; ++j) {
            right[j] =
                localLayer(p, j) * (layers_[j - 1] * right[j - 1]);
        }
        const Mat4 &v = right[n_];

        Complex tr{};
        for (int i = 0; i < 4; ++i)
            for (int k = 0; k < 4; ++k)
                tr += target_dag_(i, k) * v(k, i);
        const double f = 1.0 - std::norm(tr) / 16.0;

        // Backward pass: left[j] = K_n B ... B (up to, excluding K_j).
        // G_j = (right-of-K_j) T^dag (left-of-K_j), so that
        // dTr/dp = Tr(G_j dK_j/dp).
        Mat4 left = Mat4::identity();
        for (int j = n_; j >= 0; --j) {
            // right-of-K_j = B K_{j-1} ... K_0 = right[j] with K_j
            // stripped; easier: right_excl = (K_j)^-1 right[j], but
            // we can use right[j-1] and the basis factor directly.
            Mat4 right_excl;
            if (j == 0)
                right_excl = Mat4::identity();
            else
                right_excl = layers_[j - 1] * right[j - 1];

            const Mat4 g = right_excl * target_dag_ * left;

            // Gradient w.r.t. the six angles of layer j.
            const double *a = &p[6 * j];
            const Mat2 u1 = u3(a[0], a[1], a[2]);
            const Mat2 u0 = u3(a[3], a[4], a[5]);
            const Mat2 d1t = du3DTheta(a[0], a[1], a[2]);
            const Mat2 d1p = du3DPhi(a[0], a[1], a[2]);
            const Mat2 d1l = du3DLambda(a[0], a[1], a[2]);
            const Mat2 d0t = du3DTheta(a[3], a[4], a[5]);
            const Mat2 d0p = du3DPhi(a[3], a[4], a[5]);
            const Mat2 d0l = du3DLambda(a[3], a[4], a[5]);

            auto trace_with = [&g](const Mat2 &x1, const Mat2 &x0) {
                // Tr(G (x1 kron x0)).
                Complex s{};
                for (int r1 = 0; r1 < 2; ++r1)
                    for (int c1 = 0; c1 < 2; ++c1)
                        for (int r0 = 0; r0 < 2; ++r0)
                            for (int c0 = 0; c0 < 2; ++c0) {
                                s += g(2 * c1 + c0, 2 * r1 + r0)
                                     * x1(r1, c1) * x0(r0, c0);
                            }
                return s;
            };

            const Complex dtr[6] = {
                trace_with(d1t, u0), trace_with(d1p, u0),
                trace_with(d1l, u0), trace_with(u1, d0t),
                trace_with(u1, d0p), trace_with(u1, d0l),
            };
            for (int k = 0; k < 6; ++k) {
                grad[6 * j + k] =
                    -2.0 * std::real(std::conj(tr) * dtr[k]) / 16.0;
            }

            // Extend the left product to include K_j (and the basis
            // gate separating it from layer j-1).
            left = left * localLayer(p, j);
            if (j > 0)
                left = left * layers_[j - 1];
        }
        return f;
    }

    double
    infidelity(const Mat4 &v) const
    {
        Complex tr{};
        for (int i = 0; i < 4; ++i)
            for (int k = 0; k < 4; ++k)
                tr += target_dag_(i, k) * v(k, i);
        return 1.0 - std::norm(tr) / 16.0;
    }

    Mat4
    localLayer(const std::vector<double> &p, int j) const
    {
        const double *a = &p[6 * j];
        return Mat4::kron(u3(a[0], a[1], a[2]), u3(a[3], a[4], a[5]));
    }

  private:
    Mat4 target_dag_;
    std::vector<Mat4> layers_;
    int n_;
};

TwoQubitDecomposition
assemble(const Mat4 &target, const std::vector<Mat4> &basis_layers,
         const std::vector<double> &p, double infid)
{
    const int layers = static_cast<int>(basis_layers.size());
    TwoQubitDecomposition d;
    d.infidelity = infid;
    d.basis = basis_layers;
    d.locals.resize(layers + 1);
    for (int j = 0; j <= layers; ++j) {
        const double *a = &p[6 * j];
        d.locals[j].q1 = u3(a[0], a[1], a[2]);
        d.locals[j].q0 = u3(a[3], a[4], a[5]);
    }
    // Phase aligning the reconstruction with the target.
    const Mat4 v = d.reconstruct();
    Complex overlap{};
    for (int i = 0; i < 4; ++i)
        for (int k = 0; k < 4; ++k)
            overlap += std::conj(v(i, k)) * target(i, k);
    const double mag = std::abs(overlap);
    d.phase = mag > 1e-300 ? overlap / mag : Complex(1.0);
    return d;
}

/** Zero-layer case: the target must be (approximately) local. */
TwoQubitDecomposition
synthesizeLocal(const Mat4 &target)
{
    const TensorFactor f = factorTensorProduct(target);
    TwoQubitDecomposition d;
    d.locals.resize(1);
    d.locals[0].q1 = f.a;
    d.locals[0].q0 = f.b;
    d.phase = f.phase;
    d.infidelity = traceInfidelity(d.reconstruct(), target);
    return d;
}

} // namespace

TwoQubitDecomposition
synthesizeGateSequence(const Mat4 &target,
                       const std::vector<Mat4> &layers,
                       const SynthOptions &opts)
{
    if (layers.empty())
        return synthesizeLocal(target);

    const SynthObjective obj(target, layers);
    const int dim = obj.paramCount();

    Rng rng(opts.seed + layers.size() * 7919);

    TwoQubitDecomposition best;
    best.infidelity = 1.0;
    std::vector<double> best_p;

    for (int r = 0; r < opts.restarts; ++r) {
        std::vector<double> x0(dim);
        for (double &v : x0)
            v = rng.uniform(-kPi, kPi);

        const auto grad_obj = [&obj](const std::vector<double> &x,
                                     std::vector<double> &g) {
            return obj.valueAndGrad(x, g);
        };

        // Coarse global descent with Adam (robust against the many
        // saddle points), then a superlinear L-BFGS endgame (Adam's
        // fixed-lr bounce floor sits around lr^2 and cannot certify
        // the ~1e-12 infidelities expected at feasible depths).
        AdamOptions adam;
        adam.max_iters = opts.adam_iters;
        adam.lr = 0.1;
        adam.target = opts.target_infidelity * 0.1;
        OptResult ares = adamMinimize(grad_obj, std::move(x0), adam);

        LbfgsOptions lbfgs;
        lbfgs.max_iters = opts.polish_iters;
        lbfgs.target = adam.target;
        const OptResult pres = lbfgsMinimize(grad_obj, ares.x, lbfgs);

        const std::vector<double> &px =
            pres.fval < ares.fval ? pres.x : ares.x;
        const double pf = std::min(pres.fval, ares.fval);
        if (pf < best.infidelity) {
            best_p = px;
            best.infidelity = pf;
        }
        if (best.infidelity <= opts.target_infidelity)
            break;
    }

    if (best_p.empty())
        panic("synthesis produced no candidate parameters");
    return assemble(target, layers, best_p, best.infidelity);
}

TwoQubitDecomposition
synthesizeGateFixedDepth(const Mat4 &target, const Mat4 &basis,
                         int layers, const SynthOptions &opts)
{
    if (layers < 0)
        panic("synthesizeGateFixedDepth: negative layer count");
    return synthesizeGateSequence(
        target, std::vector<Mat4>(layers, basis), opts);
}

TwoQubitDecomposition
synthesizeGate(const Mat4 &target, const Mat4 &basis,
               const SynthOptions &opts)
{
    int start = 1;
    if (opts.use_depth_prediction) {
        start = predictDepth(target, basis, opts.max_layers,
                             opts.oracle);
        if (start == 0)
            return synthesizeLocal(target);
        if (start > opts.max_layers)
            start = opts.max_layers; // best effort at the cap
    }

    TwoQubitDecomposition best;
    best.infidelity = 1.0;
    for (int n = start; n <= opts.max_layers; ++n) {
        TwoQubitDecomposition d =
            synthesizeGateFixedDepth(target, basis, n, opts);
        if (d.infidelity < best.infidelity)
            best = std::move(d);
        if (best.infidelity <= opts.target_infidelity)
            return best;
    }
    warn("synthesizeGate: target not reached (best infidelity %.3e "
         "at %d layers)", best.infidelity, best.layers());
    return best;
}

} // namespace qbasis
