#include "synth/numerical.hpp"

#include <cmath>

#include "linalg/factor.hpp"
#include "linalg/su2.hpp"
#include "monodromy/depth.hpp"
#include "opt/adam.hpp"
#include "synth/depth_cache.hpp"
#include "opt/lbfgs.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

namespace {

/**
 * Trace-infidelity objective over the U3 angles of the local layers.
 *
 * Parameter layout: 6 angles per local layer
 * (theta, phi, lambda for qubit 1, then for qubit 0), n+1 layers.
 * The 2Q layer gates may differ per layer (heterogeneous sequences,
 * e.g. a gate and its SWAP mirror).
 *
 * All intermediates live in scratch buffers sized at construction, so
 * valueAndGrad performs no allocation: one objective instance is the
 * whole per-restart working set, and every product uses the fused
 * Kronecker kernels from linalg/mat4.hpp instead of materializing
 * 4x4 local operators.
 */
class SynthObjective
{
  public:
    SynthObjective(const Mat4 &target, const std::vector<Mat4> &layers)
        : target_(target), target_dag_(target.dagger()),
          layers_(layers), n_(static_cast<int>(layers.size())),
          right_(n_ + 1), bright_(n_ + 1), u1_(n_ + 1), u0_(n_ + 1)
    {
    }

    int paramCount() const { return 6 * (n_ + 1); }

    /** Objective value and analytic gradient. */
    double
    valueAndGrad(const std::vector<double> &p,
                 std::vector<double> &grad)
    {
        // Forward pass with right partial products:
        //   bright[j] = B_j K_{j-1} ... K_0,
        //   right[j]  = K_j bright[j]   (so right[n] = V).
        for (int j = 0; j <= n_; ++j) {
            const double *a = &p[6 * j];
            u1_[j] = u3(a[0], a[1], a[2]);
            u0_[j] = u3(a[3], a[4], a[5]);
        }
        right_[0] = Mat4::kron(u1_[0], u0_[0]);
        for (int j = 1; j <= n_; ++j) {
            // One dispatched call per layer: bright[j] and right[j]
            // in a single fused kernel (mat4_kernels.hpp).
            fusedLayerForward(layers_[j - 1], u1_[j], u0_[j],
                              right_[j - 1], bright_[j], right_[j]);
        }
        const Mat4 &v = right_[n_];

        const Complex tr = adjointTraceDot(target_, v);
        const double f = 1.0 - std::norm(tr) / 16.0;

        // Backward pass: left = K_n B ... B (up to, excluding K_j).
        // G_j = (right-of-K_j) T^dag (left-of-K_j), so that
        // dTr/dp = Tr(G_j dK_j/dp).
        left_ = Mat4::identity();
        for (int j = n_; j >= 0; --j) {
            matmulInto(target_dag_, left_, tdl_);
            if (j == 0)
                g_ = tdl_;
            else
                matmulInto(bright_[j], tdl_, g_);

            // Half-contract the trace against the fixed factor once,
            // then each of the six U3 partials costs a 4-term dot.
            kronTracePartialQ1(g_, u0_[j], s1_);
            kronTracePartialQ0(g_, u1_[j], s0_);

            const double *a = &p[6 * j];
            const Complex dtr[6] = {
                mat2ElementDot(du3DTheta(a[0], a[1], a[2]), s1_),
                mat2ElementDot(du3DPhi(a[0], a[1], a[2]), s1_),
                mat2ElementDot(du3DLambda(a[0], a[1], a[2]), s1_),
                mat2ElementDot(du3DTheta(a[3], a[4], a[5]), s0_),
                mat2ElementDot(du3DPhi(a[3], a[4], a[5]), s0_),
                mat2ElementDot(du3DLambda(a[3], a[4], a[5]), s0_),
            };
            for (int k = 0; k < 6; ++k) {
                grad[6 * j + k] =
                    -2.0 * std::real(std::conj(tr) * dtr[k]) / 16.0;
            }

            // Extend the left product to include K_j (and the basis
            // gate separating it from layer j-1), fused into one
            // dispatched call; the kernel's internal scratch makes
            // the in-place update on left_ safe.
            fusedLayerBackward(left_, u1_[j], u0_[j],
                               j > 0 ? &layers_[j - 1] : nullptr,
                               left_);
        }
        return f;
    }

  private:
    Mat4 target_, target_dag_;
    const std::vector<Mat4> &layers_;
    int n_;
    // Scratch (see class comment).
    std::vector<Mat4> right_, bright_;
    std::vector<Mat2> u1_, u0_;
    Mat4 left_, tdl_, g_;
    Mat2 s1_, s0_;
};

} // namespace

uint64_t
synthRestartSeed(uint64_t base_seed, size_t depth, int restart)
{
    return Rng::deriveSeed(Rng::deriveSeed(base_seed, depth),
                           static_cast<uint64_t>(restart));
}

SynthRestartResult
synthesizeRestart(const Mat4 &target, const std::vector<Mat4> &layers,
                  uint64_t stream_seed, const SynthOptions &opts,
                  const std::function<bool()> &should_stop)
{
    SynthObjective obj(target, layers);
    Rng rng(stream_seed);
    std::vector<double> x0(obj.paramCount());
    for (double &v : x0)
        v = rng.uniform(-kPi, kPi);

    const auto grad_obj = [&obj](const std::vector<double> &x,
                                 std::vector<double> &g) {
        return obj.valueAndGrad(x, g);
    };

    // Coarse global descent with Adam (robust against the many
    // saddle points), then a superlinear L-BFGS endgame (Adam's
    // fixed-lr bounce floor sits around lr^2 and cannot certify
    // the ~1e-12 infidelities expected at feasible depths).
    AdamOptions adam;
    adam.max_iters = opts.adam_iters;
    adam.lr = 0.1;
    adam.target = opts.target_infidelity * 0.1;
    adam.should_stop = should_stop;
    OptResult ares = adamMinimize(grad_obj, std::move(x0), adam);

    LbfgsOptions lbfgs;
    lbfgs.max_iters = opts.polish_iters;
    lbfgs.target = adam.target;
    lbfgs.should_stop = should_stop;
    OptResult pres = lbfgsMinimize(grad_obj, std::move(ares.x), lbfgs);

    // L-BFGS tracks the best iterate including its start point, so
    // pres is never worse than ares.
    SynthRestartResult out;
    out.params = std::move(pres.x);
    out.infidelity = pres.fval;
    out.aborted = should_stop && should_stop();
    return out;
}

TwoQubitDecomposition
assembleDecomposition(const Mat4 &target,
                      const std::vector<Mat4> &basis_layers,
                      const std::vector<double> &params, double infid)
{
    const int layers = static_cast<int>(basis_layers.size());
    TwoQubitDecomposition d;
    d.infidelity = infid;
    d.basis = basis_layers;
    d.locals.resize(layers + 1);
    for (int j = 0; j <= layers; ++j) {
        const double *a = &params[6 * j];
        d.locals[j].q1 = u3(a[0], a[1], a[2]);
        d.locals[j].q0 = u3(a[3], a[4], a[5]);
    }
    // Phase aligning the reconstruction with the target.
    const Mat4 v = d.reconstruct();
    const Complex overlap = adjointTraceDot(v, target);
    const double mag = std::abs(overlap);
    d.phase = mag > 1e-300 ? overlap / mag : Complex(1.0);
    return d;
}

TwoQubitDecomposition
synthesizeLocalTarget(const Mat4 &target)
{
    const TensorFactor f = factorTensorProduct(target);
    TwoQubitDecomposition d;
    d.locals.resize(1);
    d.locals[0].q1 = f.a;
    d.locals[0].q0 = f.b;
    d.phase = f.phase;
    d.infidelity = traceInfidelity(d.reconstruct(), target);
    return d;
}

TwoQubitDecomposition
synthesizeGateSequence(const Mat4 &target,
                       const std::vector<Mat4> &layers,
                       const SynthOptions &opts)
{
    if (layers.empty())
        return synthesizeLocalTarget(target);

    // Serial multistart over independently seeded restart streams.
    // Selection takes the first restart (in index order) that reaches
    // the target, else the best infidelity with earliest-index
    // tie-break -- the same deterministic rule the parallel engine
    // applies, so both produce bit-identical decompositions.
    TwoQubitDecomposition best;
    best.infidelity = 1.0;
    std::vector<double> best_p;

    for (int r = 0; r < opts.restarts; ++r) {
        SynthRestartResult res = synthesizeRestart(
            target, layers,
            synthRestartSeed(opts.seed, layers.size(), r), opts);
        if (res.infidelity < best.infidelity) {
            best_p = std::move(res.params);
            best.infidelity = res.infidelity;
        }
        if (best.infidelity <= opts.target_infidelity)
            break;
    }

    if (best_p.empty())
        panic("synthesis produced no candidate parameters");
    return assembleDecomposition(target, layers, best_p,
                                 best.infidelity);
}

TwoQubitDecomposition
synthesizeGateFixedDepth(const Mat4 &target, const Mat4 &basis,
                         int layers, const SynthOptions &opts)
{
    if (layers < 0)
        panic("synthesizeGateFixedDepth: negative layer count");
    return synthesizeGateSequence(
        target, std::vector<Mat4>(layers, basis), opts);
}

TwoQubitDecomposition
synthesizeGate(const Mat4 &target, const Mat4 &basis,
               const SynthOptions &opts)
{
    int start = 1;
    if (opts.use_depth_prediction) {
        // Verdicts are cached process-wide: the oracle's multistart
        // Nelder-Mead search runs once per (basis, options, class).
        start = DepthOracleCache::shared().predict(
            target, basis, opts.max_layers, opts.oracle);
        if (start == 0)
            return synthesizeLocalTarget(target);
        if (start > opts.max_layers)
            start = opts.max_layers; // best effort at the cap
    }

    TwoQubitDecomposition best;
    best.infidelity = 1.0;
    for (int n = start; n <= opts.max_layers; ++n) {
        TwoQubitDecomposition d =
            synthesizeGateFixedDepth(target, basis, n, opts);
        if (d.infidelity < best.infidelity)
            best = std::move(d);
        if (best.infidelity <= opts.target_infidelity)
            return best;
    }
    warn("synthesizeGate: target not reached (best infidelity %.3e "
         "at %d layers)", best.infidelity, best.layers());
    return best;
}

} // namespace qbasis
