#include "synth/textbook.hpp"

#include "linalg/su2.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

TwoQubitDecomposition
swapFromThreeCnots()
{
    // SWAP = CNOT(a,b) CNOT(b,a) CNOT(a,b) and
    // CNOT(b,a) = (H (x) H) CNOT(a,b) (H (x) H).
    TwoQubitDecomposition d;
    d.basis.assign(3, cnotGate());
    d.locals.resize(4);
    d.locals[0] = {Mat2::identity(), Mat2::identity()};
    d.locals[1] = {hadamard(), hadamard()};
    d.locals[2] = {hadamard(), hadamard()};
    d.locals[3] = {Mat2::identity(), Mat2::identity()};
    d.phase = Complex(1.0);
    d.infidelity = traceInfidelity(d.reconstruct(), swapGate());
    return d;
}

TwoQubitDecomposition
cnotFromCz()
{
    TwoQubitDecomposition d;
    d.basis.assign(1, czGate());
    d.locals.resize(2);
    d.locals[0] = {Mat2::identity(), hadamard()};
    d.locals[1] = {Mat2::identity(), hadamard()};
    d.phase = Complex(1.0);
    d.infidelity = traceInfidelity(d.reconstruct(), cnotGate());
    return d;
}

} // namespace qbasis
