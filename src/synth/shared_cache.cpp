#include "synth/shared_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

/** Spread the class key over the stripes (splitmix derivation). */
uint64_t
hashKey(const DecompositionCache::ClassKey &key)
{
    uint64_t h =
        Rng::deriveSeed(key.context, static_cast<uint64_t>(key.qx));
    h = Rng::deriveSeed(h, static_cast<uint64_t>(key.qy));
    return Rng::deriveSeed(h, static_cast<uint64_t>(key.qz));
}

/** Registry mirrors of the cache's hit/miss atomics plus the
 *  claim-protocol traffic counters. */
struct CacheMetrics
{
    Counter &hits;
    Counter &misses;
    Counter &waits;
    Counter &publishes;
    Counter &abandons;

    static CacheMetrics &
    instance()
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        static CacheMetrics m{reg.counter("cache.hits"),
                              reg.counter("cache.misses"),
                              reg.counter("cache.waits"),
                              reg.counter("cache.publishes"),
                              reg.counter("cache.abandons")};
        return m;
    }
};

} // namespace

void
SharedDecompositionCache::Entry::credit(int device, uint64_t lookups)
{
    for (auto &dl : device_lookups) {
        if (dl.first == device) {
            dl.second += lookups;
            return;
        }
    }
    device_lookups.emplace_back(device, lookups);
}

SharedDecompositionCache::SharedDecompositionCache(int stripes)
{
    if (stripes < 1)
        stripes = 1;
    stripes_.reserve(static_cast<size_t>(stripes));
    for (int i = 0; i < stripes; ++i)
        stripes_.push_back(std::make_unique<Stripe>());
}

SharedDecompositionCache::Stripe &
SharedDecompositionCache::stripeOf(const ClassKey &key)
{
    return *stripes_[hashKey(key) % stripes_.size()];
}

const SharedDecompositionCache::Stripe &
SharedDecompositionCache::stripeOf(const ClassKey &key) const
{
    return *stripes_[hashKey(key) % stripes_.size()];
}

SharedDecompositionCache::Claim
SharedDecompositionCache::acquire(const ClassKey &key, int device,
                                  uint64_t lookups,
                                  const TwoQubitDecomposition **out)
{
    QBASIS_TRACE_SCOPE("cache.claim", "context", key.context);
    CacheMetrics &metrics = CacheMetrics::instance();
    Stripe &s = stripeOf(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto [it, inserted] = s.entries.try_emplace(key);
    it->second.credit(device, lookups);
    if (inserted) {
        // One miss for the claim; the remaining batched lookups of
        // this class are hits against the about-to-exist entry.
        misses_.fetch_add(1, std::memory_order_relaxed);
        metrics.misses.add();
        if (lookups > 1) {
            hits_.fetch_add(lookups - 1, std::memory_order_relaxed);
            metrics.hits.add(lookups - 1);
        }
        return Claim::Owner;
    }
    if (it->second.ready) {
        hits_.fetch_add(lookups, std::memory_order_relaxed);
        metrics.hits.add(lookups);
        if (out != nullptr)
            *out = &it->second.dec;
        return Claim::Ready;
    }
    return Claim::Pending;
}

const TwoQubitDecomposition *
SharedDecompositionCache::publish(const ClassKey &key,
                                  TwoQubitDecomposition dec)
{
    QBASIS_TRACE_SCOPE("cache.publish", "context", key.context);
    CacheMetrics::instance().publishes.add();
    Stripe &s = stripeOf(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end() || it->second.ready)
        panic("SharedDecompositionCache: publish without a claim");
    it->second.dec = std::move(dec);
    it->second.ready = true;
    s.cv.notify_all();
    return &it->second.dec;
}

void
SharedDecompositionCache::abandon(const ClassKey &key)
{
    CacheMetrics::instance().abandons.add();
    Stripe &s = stripeOf(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end() || it->second.ready)
        return; // already published or never claimed: nothing to undo
    s.entries.erase(it);
    s.cv.notify_all();
}

const TwoQubitDecomposition *
SharedDecompositionCache::wait(const ClassKey &key, uint64_t lookups)
{
    // The span brackets the whole blocking wait: on a slow-tail
    // trace, time spent here is time spent waiting for another
    // client's claim, not this request's own synthesis.
    QBASIS_TRACE_SCOPE("cache.wait", "context", key.context);
    CacheMetrics &metrics = CacheMetrics::instance();
    metrics.waits.add();
    Stripe &s = stripeOf(key);
    std::unique_lock<std::mutex> lock(s.mutex);
    for (;;) {
        const auto it = s.entries.find(key);
        if (it == s.entries.end())
            return nullptr; // owner abandoned; caller re-acquires
        if (it->second.ready) {
            hits_.fetch_add(lookups, std::memory_order_relaxed);
            metrics.hits.add(lookups);
            return &it->second.dec;
        }
        s.cv.wait(lock);
    }
}

const TwoQubitDecomposition *
SharedDecompositionCache::peekPublished(const ClassKey &key) const
{
    const Stripe &s = stripeOf(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end() || !it->second.ready)
        return nullptr;
    return &it->second.dec;
}

SharedDecompositionCache::Stats
SharedDecompositionCache::stats() const
{
    Stats st;
    st.hits = hits_.load();
    st.misses = misses_.load();
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        for (const auto &[key, entry] : stripe->entries) {
            (void)key;
            if (!entry.ready)
                continue;
            ++st.classes;
            if (entry.device_lookups.empty())
                continue; // loaded from a snapshot, never looked up
            if (entry.device_lookups.size() > 1)
                ++st.multi_device_classes;
            // Everything beyond the lowest-numbered device's own
            // lookups was served across devices.
            int min_device = entry.device_lookups.front().first;
            uint64_t total = 0, min_dev_lookups = 0;
            for (const auto &[dev, n] : entry.device_lookups) {
                total += n;
                if (dev < min_device) {
                    min_device = dev;
                    min_dev_lookups = n;
                } else if (dev == min_device) {
                    min_dev_lookups = n;
                }
            }
            st.cross_device_hits += total - min_dev_lookups;
        }
    }
    return st;
}

size_t
SharedDecompositionCache::size() const
{
    size_t n = 0;
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        for (const auto &[key, entry] : stripe->entries) {
            (void)key;
            if (entry.ready)
                ++n;
        }
    }
    return n;
}

std::vector<std::pair<SharedDecompositionCache::ClassKey,
                      TwoQubitDecomposition>>
SharedDecompositionCache::exportEntries() const
{
    std::vector<std::pair<ClassKey, TwoQubitDecomposition>> out;
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        for (const auto &[key, entry] : stripe->entries) {
            if (entry.ready)
                out.emplace_back(key, entry.dec);
        }
    }
    // Stripe order interleaves keys; sort so the export (and hence
    // the snapshot bytes) depends only on the entry set.
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return out;
}

void
SharedDecompositionCache::forEachPublished(
    const std::function<void(const ClassKey &,
                             const TwoQubitDecomposition &)> &fn)
    const
{
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        for (const auto &[key, entry] : stripe->entries) {
            if (entry.ready)
                fn(key, entry.dec);
        }
    }
}

bool
SharedDecompositionCache::insertLoaded(const ClassKey &key,
                                       TwoQubitDecomposition dec)
{
    Stripe &s = stripeOf(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto [it, inserted] = s.entries.try_emplace(key);
    if (!inserted)
        return false; // existing entry (ready or claimed) wins
    it->second.dec = std::move(dec);
    it->second.ready = true;
    return true;
}

size_t
SharedDecompositionCache::retireExcept(
    const std::vector<uint64_t> &live_contexts)
{
    size_t dropped = 0;
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        for (auto it = stripe->entries.begin();
             it != stripe->entries.end();) {
            const bool live = std::binary_search(
                live_contexts.begin(), live_contexts.end(),
                it->first.context);
            if (!live && it->second.ready) {
                it = stripe->entries.erase(it);
                ++dropped;
            } else {
                ++it;
            }
        }
    }
    return dropped;
}

void
SharedDecompositionCache::clear()
{
    for (const auto &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe->mutex);
        stripe->entries.clear();
    }
    hits_.store(0);
    misses_.store(0);
}

} // namespace qbasis
