#ifndef QBASIS_SYNTH_NUMERICAL_HPP
#define QBASIS_SYNTH_NUMERICAL_HPP

/**
 * @file
 * NuOp-style numerical gate synthesis (paper Section VII).
 *
 * Finds the local (1Q) layers that realize a target 2Q gate from a
 * fixed number of basis-gate applications by minimizing the trace
 * infidelity 1 - |Tr(T^dag V)|^2/16 with analytic gradients (Adam)
 * plus a Nelder-Mead polish. Following the paper's key optimization,
 * the layer count starts at the analytically predicted feasible
 * depth instead of 1, which both speeds up synthesis and guarantees
 * depth-optimal results.
 */

#include "monodromy/oracle.hpp"
#include "synth/decomposition.hpp"

namespace qbasis {

/** Options for synthesizeGate(). */
struct SynthOptions
{
    int max_layers = 4;              ///< Depth search upper bound.
    double target_infidelity = 1e-9; ///< Acceptable decomposition error.
    int restarts = 6;                ///< Random restarts per depth.
    int adam_iters = 700;            ///< Gradient steps per restart.
    int polish_iters = 250;          ///< Nelder-Mead polish steps.
    bool use_depth_prediction = true; ///< Start at the analytic depth.
    uint64_t seed = 0x5399ull;       ///< Deterministic search seed.
    OracleOptions oracle;            ///< Oracle settings for depth.
};

/**
 * Synthesize `target` from layers of `basis` with interleaved 1Q
 * gates.
 *
 * The returned decomposition satisfies
 * infidelity <= opts.target_infidelity when synthesis succeeded;
 * otherwise the best effort at max_layers is returned (check the
 * infidelity field).
 */
TwoQubitDecomposition synthesizeGate(const Mat4 &target,
                                     const Mat4 &basis,
                                     const SynthOptions &opts = {});

/**
 * Synthesize with a fixed layer count (no depth search). Exposed for
 * ablation studies of the depth-prediction speedup.
 */
TwoQubitDecomposition synthesizeGateFixedDepth(
    const Mat4 &target, const Mat4 &basis, int layers,
    const SynthOptions &opts = {});

/**
 * Synthesize with an explicit (possibly heterogeneous) sequence of
 * 2Q layer gates -- e.g. the paper's Fig. 3(b) two-layer SWAP from a
 * gate and its Appendix-B mirror: layers = {B, mirror(B)}.
 */
TwoQubitDecomposition synthesizeGateSequence(
    const Mat4 &target, const std::vector<Mat4> &layers,
    const SynthOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_SYNTH_NUMERICAL_HPP
