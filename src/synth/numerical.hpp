#ifndef QBASIS_SYNTH_NUMERICAL_HPP
#define QBASIS_SYNTH_NUMERICAL_HPP

/**
 * @file
 * NuOp-style numerical gate synthesis (paper Section VII).
 *
 * Finds the local (1Q) layers that realize a target 2Q gate from a
 * fixed number of basis-gate applications by minimizing the trace
 * infidelity 1 - |Tr(T^dag V)|^2/16 with analytic gradients (Adam)
 * plus a Nelder-Mead polish. Following the paper's key optimization,
 * the layer count starts at the analytically predicted feasible
 * depth instead of 1, which both speeds up synthesis and guarantees
 * depth-optimal results.
 */

#include <functional>

#include "monodromy/oracle.hpp"
#include "synth/decomposition.hpp"

namespace qbasis {

/** Options for synthesizeGate(). */
struct SynthOptions
{
    int max_layers = 4;              ///< Depth search upper bound.
    double target_infidelity = 1e-9; ///< Acceptable decomposition error.
    int restarts = 6;                ///< Random restarts per depth.
    int adam_iters = 700;            ///< Gradient steps per restart.
    int polish_iters = 250;          ///< Nelder-Mead polish steps.
    bool use_depth_prediction = true; ///< Start at the analytic depth.
    uint64_t seed = 0x5399ull;       ///< Deterministic search seed.
    OracleOptions oracle;            ///< Oracle settings for depth.
};

/**
 * Synthesize `target` from layers of `basis` with interleaved 1Q
 * gates.
 *
 * The returned decomposition satisfies
 * infidelity <= opts.target_infidelity when synthesis succeeded;
 * otherwise the best effort at max_layers is returned (check the
 * infidelity field).
 */
TwoQubitDecomposition synthesizeGate(const Mat4 &target,
                                     const Mat4 &basis,
                                     const SynthOptions &opts = {});

/**
 * Synthesize with a fixed layer count (no depth search). Exposed for
 * ablation studies of the depth-prediction speedup.
 */
TwoQubitDecomposition synthesizeGateFixedDepth(
    const Mat4 &target, const Mat4 &basis, int layers,
    const SynthOptions &opts = {});

/**
 * Synthesize with an explicit (possibly heterogeneous) sequence of
 * 2Q layer gates -- e.g. the paper's Fig. 3(b) two-layer SWAP from a
 * gate and its Appendix-B mirror: layers = {B, mirror(B)}.
 */
TwoQubitDecomposition synthesizeGateSequence(
    const Mat4 &target, const std::vector<Mat4> &layers,
    const SynthOptions &opts = {});

// ---------------------------------------------------------------------------
// Restart-level primitives shared by the serial paths above and the
// parallel SynthEngine. Both drive the exact same optimizer code with
// the exact same derived seeds, which is what makes engine results
// bit-identical to serial ones for a fixed SynthOptions::seed.
// ---------------------------------------------------------------------------

/** Outcome of one multistart restart at a fixed layer sequence. */
struct SynthRestartResult
{
    std::vector<double> params; ///< Best U3-angle vector found.
    double infidelity = 1.0;    ///< Objective value at params.
    /** True when should_stop fired; the result may be half-converged
     *  and must not participate in best-of selection. */
    bool aborted = false;
};

/**
 * Seed of the RNG stream for restart `restart` at depth `depth`
 * (splitmix-derived; see Rng::deriveSeed). Consecutive restarts and
 * depths get statistically independent streams.
 */
uint64_t synthRestartSeed(uint64_t base_seed, size_t depth,
                          int restart);

/**
 * Run a single synthesis restart: draw the initial point from
 * `stream_seed`, descend with Adam, polish with L-BFGS.
 *
 * @param should_stop optional cooperative-cancellation poll (see
 *                    AdamOptions::should_stop); when it fires the
 *                    result comes back with aborted = true.
 */
SynthRestartResult synthesizeRestart(
    const Mat4 &target, const std::vector<Mat4> &layers,
    uint64_t stream_seed, const SynthOptions &opts,
    const std::function<bool()> &should_stop = {});

/**
 * Assemble a TwoQubitDecomposition from optimizer parameters (6 U3
 * angles per local layer), fixing the global phase against `target`.
 */
TwoQubitDecomposition assembleDecomposition(
    const Mat4 &target, const std::vector<Mat4> &basis_layers,
    const std::vector<double> &params, double infidelity);

/** Zero-layer decomposition of a (nearly) local target. */
TwoQubitDecomposition synthesizeLocalTarget(const Mat4 &target);

} // namespace qbasis

#endif // QBASIS_SYNTH_NUMERICAL_HPP
