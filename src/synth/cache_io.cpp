#include "synth/cache_io.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

namespace qbasis {

namespace {

constexpr char kMagic[8] = {'Q', 'B', 'W', 'C', 'A', 'C', 'H', 'E'};
constexpr size_t kHeaderBytes = 124;
constexpr size_t kIndexEntryBytes = 48;
constexpr size_t kSectionCount = 3; // index, payload, plans
/** Sanity cap on a decoded plan's device size: far above any real
 *  device, low enough that a crafted record cannot make the replay
 *  validator allocate absurd scratch. */
constexpr uint64_t kMaxPlanQubits = 1u << 20;

// -- Little-endian primitives ------------------------------------------------

void
putU32(std::vector<uint8_t> &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putI64(std::vector<uint8_t> &buf, int64_t v)
{
    putU64(buf, static_cast<uint64_t>(v));
}

void
putF64(std::vector<uint8_t> &buf, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double width");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf, bits);
}

void
putMat2(std::vector<uint8_t> &buf, const Mat2 &m)
{
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            putF64(buf, m(r, c).real());
            putF64(buf, m(r, c).imag());
        }
    }
}

void
putMat4(std::vector<uint8_t> &buf, const Mat4 &m)
{
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            putF64(buf, m(r, c).real());
            putF64(buf, m(r, c).imag());
        }
    }
}

/** Bounds-checked little-endian reader over a byte range. */
struct Cursor
{
    const uint8_t *data;
    size_t size;
    size_t off = 0;
    bool ok = true;

    bool
    need(size_t n)
    {
        if (!ok || size - off < n || off > size) {
            ok = false;
            return false;
        }
        return true;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data[off + static_cast<size_t>(i)])
                 << (8 * i);
        off += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[off + static_cast<size_t>(i)])
                 << (8 * i);
        off += 8;
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    Mat2
    mat2()
    {
        Mat2 m;
        for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 2; ++c) {
                const double re = f64();
                const double im = f64();
                m(r, c) = Complex(re, im);
            }
        }
        return m;
    }

    Mat4
    mat4()
    {
        Mat4 m;
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                const double re = f64();
                const double im = f64();
                m(r, c) = Complex(re, im);
            }
        }
        return m;
    }
};

CacheIoResult
fail(CacheIoStatus status, std::string message)
{
    CacheIoResult r;
    r.status = status;
    r.message = std::move(message);
    return r;
}

} // namespace

const char *
cacheIoStatusName(CacheIoStatus status)
{
    switch (status) {
    case CacheIoStatus::Ok:
        return "ok";
    case CacheIoStatus::IoError:
        return "io_error";
    case CacheIoStatus::BadMagic:
        return "bad_magic";
    case CacheIoStatus::VersionMismatch:
        return "version_mismatch";
    case CacheIoStatus::QuantumMismatch:
        return "quantum_mismatch";
    case CacheIoStatus::Truncated:
        return "truncated";
    case CacheIoStatus::ChecksumMismatch:
        return "checksum_mismatch";
    case CacheIoStatus::Malformed:
        return "malformed";
    }
    return "unknown";
}

size_t
cacheEntryEncodedBytes(const TwoQubitDecomposition &dec)
{
    // n_locals + n_basis + phase + infidelity, then 8 f64 per Mat2
    // (two per local layer) and 32 f64 per basis Mat4.
    return 4 + 4 + 8 + 8 + 8 + dec.locals.size() * 128
           + dec.basis.size() * 256;
}

size_t
cacheSnapshotEncodedBytes(size_t entries, size_t payload_bytes)
{
    return kHeaderBytes + entries * kIndexEntryBytes + payload_bytes;
}

uint32_t
cacheCrc32(const uint8_t *data, size_t size)
{
    // Standard reflected CRC-32 (IEEE 802.3), table built on first
    // use; thread-safe via static-local initialization.
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

size_t
planEncodedBytes(const TranspilePlan &plan)
{
    // hashes (2 u64) + six u32 counts + swaps u64, then the
    // variable-length vectors.
    return 16 + 24 + 8 + plan.key.epochs.size() * 16
           + (plan.initial_layout.size() + plan.final_layout.size()) * 8
           + plan.ops.size() * 24 + plan.class_keys.size() * 32;
}

std::vector<uint8_t>
encodeCacheSnapshot(std::vector<CacheSnapshotEntry> entries)
{
    return encodeCacheSnapshot(std::move(entries), {});
}

std::vector<uint8_t>
encodeCacheSnapshot(std::vector<CacheSnapshotEntry> entries,
                    std::vector<TranspilePlan> plans)
{
    // Unique byte encoding per entry set: sort by key so snapshot ->
    // restore -> snapshot is the identity on bytes.
    std::sort(entries.begin(), entries.end(),
              [](const CacheSnapshotEntry &a, const CacheSnapshotEntry &b) {
                  return a.first < b.first;
              });
    std::sort(plans.begin(), plans.end(),
              [](const TranspilePlan &a, const TranspilePlan &b) {
                  return a.key < b.key;
              });

    std::vector<uint8_t> index;
    std::vector<uint8_t> payload;
    index.reserve(entries.size() * kIndexEntryBytes);
    for (const CacheSnapshotEntry &e : entries) {
        const DecompositionCache::ClassKey &key = e.first;
        const TwoQubitDecomposition &dec = e.second;
        putU64(index, key.context);
        putI64(index, key.qx);
        putI64(index, key.qy);
        putI64(index, key.qz);
        putU64(index, static_cast<uint64_t>(payload.size()));
        putU64(index,
               static_cast<uint64_t>(cacheEntryEncodedBytes(dec)));

        putU32(payload, static_cast<uint32_t>(dec.locals.size()));
        putU32(payload, static_cast<uint32_t>(dec.basis.size()));
        putF64(payload, dec.phase.real());
        putF64(payload, dec.phase.imag());
        putF64(payload, dec.infidelity);
        for (const LocalPair &lp : dec.locals) {
            putMat2(payload, lp.q1);
            putMat2(payload, lp.q0);
        }
        for (const Mat4 &b : dec.basis)
            putMat4(payload, b);
    }

    std::vector<uint8_t> plan_bytes;
    for (const TranspilePlan &plan : plans) {
        putU64(plan_bytes, plan.key.structural_hash);
        putU64(plan_bytes, plan.key.options_hash);
        putU32(plan_bytes,
               static_cast<uint32_t>(plan.key.epochs.size()));
        putU32(plan_bytes, static_cast<uint32_t>(plan.ops.size()));
        putU32(plan_bytes,
               static_cast<uint32_t>(plan.class_keys.size()));
        putU32(plan_bytes, static_cast<uint32_t>(plan.num_physical));
        putU32(plan_bytes,
               static_cast<uint32_t>(plan.initial_layout.size()));
        putU32(plan_bytes,
               static_cast<uint32_t>(plan.final_layout.size()));
        putU64(plan_bytes, plan.swaps_inserted);
        for (const DeviceEpoch &de : plan.key.epochs) {
            putI64(plan_bytes, de.device_id);
            putU64(plan_bytes, de.epoch);
        }
        for (const int p : plan.initial_layout)
            putI64(plan_bytes, p);
        for (const int p : plan.final_layout)
            putI64(plan_bytes, p);
        for (const PlanOp &op : plan.ops) {
            putI64(plan_bytes, op.source);
            putI64(plan_bytes, op.q0);
            putI64(plan_bytes, op.q1);
        }
        for (const DecompositionCache::ClassKey &key : plan.class_keys) {
            putU64(plan_bytes, key.context);
            putI64(plan_bytes, key.qx);
            putI64(plan_bytes, key.qy);
            putI64(plan_bytes, key.qz);
        }
    }

    std::vector<uint8_t> buf;
    buf.reserve(kHeaderBytes + index.size() + payload.size()
                + plan_bytes.size());
    buf.insert(buf.end(), kMagic, kMagic + 8);
    putU32(buf, kCacheFormatVersion);
    putU32(buf, static_cast<uint32_t>(kHeaderBytes));
    putF64(buf, DecompositionCache::kCoordQuantum);
    putF64(buf, DecompositionCache::kGateHashQuantum);
    putU64(buf, static_cast<uint64_t>(entries.size()));
    putU64(buf, static_cast<uint64_t>(plans.size()));
    // Section table: index, payload, plans -- back to back after the
    // header, each with its own CRC.
    const uint64_t index_off = kHeaderBytes;
    const uint64_t payload_off = index_off + index.size();
    const uint64_t plans_off = payload_off + payload.size();
    putU64(buf, index_off);
    putU64(buf, static_cast<uint64_t>(index.size()));
    putU32(buf, cacheCrc32(index.data(), index.size()));
    putU32(buf, 0); // pad
    putU64(buf, payload_off);
    putU64(buf, static_cast<uint64_t>(payload.size()));
    putU32(buf, cacheCrc32(payload.data(), payload.size()));
    putU32(buf, 0); // pad
    putU64(buf, plans_off);
    putU64(buf, static_cast<uint64_t>(plan_bytes.size()));
    putU32(buf, cacheCrc32(plan_bytes.data(), plan_bytes.size()));
    putU32(buf, 0); // pad
    putU32(buf, cacheCrc32(buf.data(), buf.size()));

    buf.insert(buf.end(), index.begin(), index.end());
    buf.insert(buf.end(), payload.begin(), payload.end());
    buf.insert(buf.end(), plan_bytes.begin(), plan_bytes.end());
    return buf;
}

CacheIoResult
decodeCacheSnapshot(const uint8_t *data, size_t size,
                    std::vector<CacheSnapshotEntry> *out)
{
    return decodeCacheSnapshot(data, size, out, nullptr);
}

CacheIoResult
decodeCacheSnapshot(const uint8_t *data, size_t size,
                    std::vector<CacheSnapshotEntry> *out,
                    std::vector<TranspilePlan> *plans_out)
{
    if (data == nullptr || size < kHeaderBytes)
        return fail(CacheIoStatus::Truncated,
                    "snapshot shorter than its header");
    if (std::memcmp(data, kMagic, 8) != 0)
        return fail(CacheIoStatus::BadMagic,
                    "not a Weyl-class cache snapshot");

    Cursor cur{data, size, 8, true};
    const uint32_t version = cur.u32();
    if (version != kCacheFormatVersion)
        return fail(CacheIoStatus::VersionMismatch,
                    "snapshot format v" + std::to_string(version)
                        + ", expected v"
                        + std::to_string(kCacheFormatVersion));
    const uint32_t header_bytes = cur.u32();
    if (header_bytes != kHeaderBytes)
        return fail(CacheIoStatus::Malformed,
                    "unexpected header size "
                        + std::to_string(header_bytes));
    // Header CRC covers everything before the CRC field itself; it
    // must be checked before any header field is *trusted* (magic and
    // version were compared against constants, which is safe either
    // way).
    const uint32_t header_crc = cacheCrc32(data, kHeaderBytes - 4);
    {
        Cursor crc_cur{data, size, kHeaderBytes - 4, true};
        if (crc_cur.u32() != header_crc)
            return fail(CacheIoStatus::ChecksumMismatch,
                        "header checksum mismatch");
    }
    const double coord_quantum = cur.f64();
    const double gate_quantum = cur.f64();
    if (coord_quantum != DecompositionCache::kCoordQuantum
        || gate_quantum != DecompositionCache::kGateHashQuantum)
        return fail(CacheIoStatus::QuantumMismatch,
                    "snapshot quantization parameters differ from "
                    "this build");
    const uint64_t entry_count = cur.u64();
    const uint64_t plan_count = cur.u64();
    const uint64_t index_off = cur.u64();
    const uint64_t index_size = cur.u64();
    const uint32_t index_crc = cur.u32();
    cur.u32(); // pad
    const uint64_t payload_off = cur.u64();
    const uint64_t payload_size = cur.u64();
    const uint32_t payload_crc = cur.u32();
    cur.u32(); // pad
    const uint64_t plans_off = cur.u64();
    const uint64_t plans_size = cur.u64();
    const uint32_t plans_crc = cur.u32();

    // Overflow-safe section-table validation: every arithmetic term
    // below is bounded *before* it is formed, so a crafted header
    // cannot wrap these u64 sums around and slip a huge section size
    // past the bounds checks into the CRC scans.
    if (index_off != kHeaderBytes
        || entry_count > (UINT64_MAX - kHeaderBytes) / kIndexEntryBytes
        || index_size != entry_count * kIndexEntryBytes
        || payload_off != kHeaderBytes + index_size
        || payload_size > UINT64_MAX - payload_off
        || plans_off != payload_off + payload_size
        || plans_size > UINT64_MAX - plans_off)
        return fail(CacheIoStatus::Malformed,
                    "inconsistent section table");
    const uint64_t expected_size = plans_off + plans_size;
    if (size < expected_size)
        return fail(CacheIoStatus::Truncated,
                    "snapshot truncated: "
                        + std::to_string(size) + " of "
                        + std::to_string(expected_size) + " bytes");
    if (size > expected_size)
        return fail(CacheIoStatus::Malformed,
                    "trailing bytes after the plans section");
    if (cacheCrc32(data + index_off, index_size) != index_crc)
        return fail(CacheIoStatus::ChecksumMismatch,
                    "index section checksum mismatch");
    if (cacheCrc32(data + payload_off, payload_size) != payload_crc)
        return fail(CacheIoStatus::ChecksumMismatch,
                    "payload section checksum mismatch");
    if (cacheCrc32(data + plans_off, plans_size) != plans_crc)
        return fail(CacheIoStatus::ChecksumMismatch,
                    "plans section checksum mismatch");

    std::vector<CacheSnapshotEntry> entries;
    entries.reserve(static_cast<size_t>(entry_count));
    Cursor idx{data + index_off, static_cast<size_t>(index_size), 0,
               true};
    for (uint64_t i = 0; i < entry_count; ++i) {
        DecompositionCache::ClassKey key;
        key.context = idx.u64();
        key.qx = idx.i64();
        key.qy = idx.i64();
        key.qz = idx.i64();
        const uint64_t off = idx.u64();
        const uint64_t len = idx.u64();
        if (!idx.ok || len > payload_size || off > payload_size - len)
            return fail(CacheIoStatus::Malformed,
                        "entry " + std::to_string(i)
                            + ": payload out of bounds");

        Cursor pay{data + payload_off + off, static_cast<size_t>(len),
                   0, true};
        TwoQubitDecomposition dec;
        const uint32_t n_locals = pay.u32();
        const uint32_t n_basis = pay.u32();
        if (!pay.ok || n_basis + 1 != n_locals
            || len != 32 + static_cast<uint64_t>(n_locals) * 128
                          + static_cast<uint64_t>(n_basis) * 256)
            return fail(CacheIoStatus::Malformed,
                        "entry " + std::to_string(i)
                            + ": inconsistent layer counts");
        const double re = pay.f64();
        const double im = pay.f64();
        dec.phase = Complex(re, im);
        dec.infidelity = pay.f64();
        dec.locals.reserve(n_locals);
        for (uint32_t l = 0; l < n_locals; ++l) {
            LocalPair lp;
            lp.q1 = pay.mat2();
            lp.q0 = pay.mat2();
            dec.locals.push_back(lp);
        }
        dec.basis.reserve(n_basis);
        for (uint32_t b = 0; b < n_basis; ++b)
            dec.basis.push_back(pay.mat4());
        if (!pay.ok || pay.off != len)
            return fail(CacheIoStatus::Malformed,
                        "entry " + std::to_string(i)
                            + ": payload size mismatch");
        entries.emplace_back(key, std::move(dec));
    }

    std::vector<TranspilePlan> plans;
    plans.reserve(static_cast<size_t>(plan_count));
    Cursor pcur{data + plans_off, static_cast<size_t>(plans_size), 0,
                true};
    for (uint64_t i = 0; i < plan_count; ++i) {
        TranspilePlan plan;
        plan.key.structural_hash = pcur.u64();
        plan.key.options_hash = pcur.u64();
        const uint32_t n_epochs = pcur.u32();
        const uint32_t n_ops = pcur.u32();
        const uint32_t n_classes = pcur.u32();
        const uint32_t num_physical = pcur.u32();
        const uint32_t n_init = pcur.u32();
        const uint32_t n_final = pcur.u32();
        plan.swaps_inserted = pcur.u64();
        if (!pcur.ok || num_physical == 0
            || num_physical > kMaxPlanQubits
            || n_classes > n_ops)
            return fail(CacheIoStatus::Malformed,
                        "plan " + std::to_string(i)
                            + ": inconsistent counts");
        plan.num_physical = static_cast<int>(num_physical);
        // Vector lengths are bounded by the (already CRC-validated)
        // section size through the cursor's ok flag: a short section
        // flips it before any oversized reserve can happen.
        const uint64_t body_bytes =
            static_cast<uint64_t>(n_epochs) * 16
            + (static_cast<uint64_t>(n_init)
               + static_cast<uint64_t>(n_final)) * 8
            + static_cast<uint64_t>(n_ops) * 24
            + static_cast<uint64_t>(n_classes) * 32;
        if (body_bytes > plans_size - pcur.off)
            return fail(CacheIoStatus::Malformed,
                        "plan " + std::to_string(i)
                            + ": record out of bounds");
        plan.key.epochs.reserve(n_epochs);
        for (uint32_t e = 0; e < n_epochs; ++e) {
            DeviceEpoch de;
            de.device_id = static_cast<int>(pcur.i64());
            de.epoch = pcur.u64();
            plan.key.epochs.push_back(de);
        }
        plan.initial_layout.reserve(n_init);
        for (uint32_t l = 0; l < n_init; ++l)
            plan.initial_layout.push_back(
                static_cast<int>(pcur.i64()));
        plan.final_layout.reserve(n_final);
        for (uint32_t l = 0; l < n_final; ++l)
            plan.final_layout.push_back(static_cast<int>(pcur.i64()));
        plan.ops.reserve(n_ops);
        for (uint32_t o = 0; o < n_ops; ++o) {
            PlanOp op;
            op.source = static_cast<int>(pcur.i64());
            op.q0 = static_cast<int>(pcur.i64());
            op.q1 = static_cast<int>(pcur.i64());
            plan.ops.push_back(op);
        }
        plan.class_keys.reserve(n_classes);
        for (uint32_t c = 0; c < n_classes; ++c) {
            DecompositionCache::ClassKey key;
            key.context = pcur.u64();
            key.qx = pcur.i64();
            key.qy = pcur.i64();
            key.qz = pcur.i64();
            plan.class_keys.push_back(key);
        }
        if (!pcur.ok)
            return fail(CacheIoStatus::Malformed,
                        "plan " + std::to_string(i)
                            + ": record truncated");
        plans.push_back(std::move(plan));
    }
    if (pcur.off != plans_size)
        return fail(CacheIoStatus::Malformed,
                    "plans section size mismatch");

    CacheIoResult r;
    r.entries = entries.size();
    r.bytes = size;
    if (out != nullptr)
        out->insert(out->end(),
                    std::make_move_iterator(entries.begin()),
                    std::make_move_iterator(entries.end()));
    if (plans_out != nullptr)
        plans_out->insert(plans_out->end(),
                          std::make_move_iterator(plans.begin()),
                          std::make_move_iterator(plans.end()));
    return r;
}

CacheIoResult
saveCacheSnapshot(const SharedDecompositionCache &cache,
                  const std::string &path)
{
    std::vector<CacheSnapshotEntry> entries = cache.exportEntries();
    const size_t entry_count = entries.size();
    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot(std::move(entries));
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return fail(CacheIoStatus::IoError,
                    "cannot open " + path + " for writing");
    const size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !closed)
        return fail(CacheIoStatus::IoError, "short write to " + path);
    CacheIoResult r;
    r.entries = entry_count;
    r.bytes = bytes.size();
    return r;
}

CacheIoResult
saveCacheSnapshot(const SharedDecompositionCache &cache,
                  const PlanCache &plans, const std::string &path)
{
    std::vector<CacheSnapshotEntry> entries = cache.exportEntries();
    const size_t entry_count = entries.size();
    const std::vector<uint8_t> bytes = encodeCacheSnapshot(
        std::move(entries), plans.exportPlans());
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return fail(CacheIoStatus::IoError,
                    "cannot open " + path + " for writing");
    const size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !closed)
        return fail(CacheIoStatus::IoError, "short write to " + path);
    CacheIoResult r;
    r.entries = entry_count;
    r.bytes = bytes.size();
    return r;
}

bool
readFileBytes(const std::string &path, std::vector<uint8_t> *out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    out->clear();
    uint8_t chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out->insert(out->end(), chunk, chunk + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    return !read_error;
}

CacheIoResult
loadCacheSnapshot(const std::string &path,
                  SharedDecompositionCache &cache)
{
    return loadCacheSnapshot(path, cache, nullptr);
}

CacheIoResult
loadCacheSnapshot(const std::string &path,
                  SharedDecompositionCache &cache, PlanCache *plans)
{
    std::vector<uint8_t> bytes;
    if (!readFileBytes(path, &bytes))
        return fail(CacheIoStatus::IoError, "cannot read " + path);

    std::vector<CacheSnapshotEntry> entries;
    std::vector<TranspilePlan> loaded_plans;
    CacheIoResult r =
        decodeCacheSnapshot(bytes.data(), bytes.size(), &entries,
                            plans != nullptr ? &loaded_plans : nullptr);
    if (!r.ok())
        return r;
    for (CacheSnapshotEntry &e : entries) {
        if (cache.insertLoaded(e.first, std::move(e.second)))
            ++r.merged;
    }
    if (plans != nullptr) {
        for (TranspilePlan &plan : loaded_plans)
            plans->insertLoaded(std::move(plan));
    }
    return r;
}

} // namespace qbasis
