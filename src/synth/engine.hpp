#ifndef QBASIS_SYNTH_ENGINE_HPP
#define QBASIS_SYNTH_ENGINE_HPP

/**
 * @file
 * Parallel two-qubit synthesis engine.
 *
 * The engine batches every synthesis job of a compilation pass (all
 * 2Q gates of a circuit, or all SWAP/CNOT summaries of a device
 * sweep), dedupes them through the Weyl-class cache, and fans the
 * remaining class syntheses over a work-stealing thread pool:
 *
 *  - one *job* per distinct (basis, options, canonical-coords) class;
 *  - per job, a *wave* of multistart restarts at the current depth
 *    runs concurrently, each restart on its own splitmix-derived RNG
 *    stream;
 *  - the first restart (in index order) that reaches the target
 *    infidelity wins; restarts with larger indices are cooperatively
 *    cancelled (lower indices run to completion so the winner never
 *    depends on thread timing);
 *  - if a wave fails, the job advances one depth and launches the
 *    next wave (waves of different jobs interleave freely).
 *
 * Results are bit-identical to the serial path for a fixed seed,
 * independent of thread count and completion order: restart streams
 * are derived (not shared), selection is by index rather than by
 * completion time, and cache insertion happens in submission order.
 */

#include <vector>

#include "synth/cache.hpp"
#include "util/thread_pool.hpp"

namespace qbasis {

/** One two-qubit synthesis request (a target gate against a basis). */
struct SynthRequest
{
    int edge_id = -1; ///< Originating device edge (diagnostics only).
    Mat4 target;      ///< Gate to decompose.
    Mat4 basis;       ///< Edge basis gate to decompose into.
};

/** Thread-pooled batch synthesizer. */
class SynthEngine
{
  public:
    /** Create an engine with its own pool; 0 threads = hardware. */
    explicit SynthEngine(int threads = 0);

    /**
     * Synthesize every request, using and filling `cache`.
     *
     * Returns one decomposition per request, in request order. The
     * cache's hit/miss counters advance exactly as if the requests
     * had been looked up serially in order.
     */
    std::vector<TwoQubitDecomposition>
    synthesizeBatch(const std::vector<SynthRequest> &requests,
                    DecompositionCache &cache,
                    const SynthOptions &opts);

    /** Worker threads in the pool. */
    int threadCount() const { return pool_.size(); }

    /**
     * Process-wide engine sized from QBASIS_SYNTH_THREADS (or the
     * hardware concurrency when unset); shared by the transpiler and
     * the experiment drivers.
     */
    static SynthEngine &shared();

  private:
    ThreadPool pool_;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_ENGINE_HPP
