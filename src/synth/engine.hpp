#ifndef QBASIS_SYNTH_ENGINE_HPP
#define QBASIS_SYNTH_ENGINE_HPP

/**
 * @file
 * Parallel two-qubit synthesis engine.
 *
 * The engine batches every synthesis job of a compilation pass (all
 * 2Q gates of a circuit, or all SWAP/CNOT summaries of a device
 * sweep), dedupes them through the Weyl-class cache, and fans the
 * remaining class syntheses over a work-stealing thread pool:
 *
 *  - one *job* per distinct (basis, options, canonical-coords) class;
 *  - per job, a *wave* of multistart restarts at the current depth
 *    runs concurrently, each restart on its own splitmix-derived RNG
 *    stream;
 *  - the first restart (in index order) that reaches the target
 *    infidelity wins; restarts with larger indices are cooperatively
 *    cancelled (lower indices run to completion so the winner never
 *    depends on thread timing), and queued restarts that have not
 *    started yet are *pruned* outright once a smaller index succeeds
 *    (they would have been cancelled anyway, so skipping their setup
 *    cannot change the winner);
 *  - if a wave fails, the job advances one depth and launches the
 *    next wave (waves of different jobs interleave freely).
 *
 * Results are bit-identical to the serial path for a fixed seed,
 * independent of thread count and completion order: restart streams
 * are derived (not shared), selection is by index rather than by
 * completion time, and cache insertion happens in submission order.
 *
 * Batches accept a TaskPriority: recalibration resynthesis submits
 * at TaskPriority::Background so its waves never outcompete
 * compile-path (Normal) jobs for pool workers. Priority only biases
 * dequeue order; results are bit-identical across lanes.
 */

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "synth/cache.hpp"
#include "synth/shared_cache.hpp"
#include "util/thread_pool.hpp"

namespace qbasis {

/** One two-qubit synthesis request (a target gate against a basis). */
struct SynthRequest
{
    int edge_id = -1; ///< Originating device edge (diagnostics only).
    Mat4 target;      ///< Gate to decompose.
    Mat4 basis;       ///< Edge basis gate to decompose into.
};

/** Thread-pooled batch synthesizer. */
class SynthEngine
{
  public:
    /** Create an engine with its own pool; 0 threads = hardware. */
    explicit SynthEngine(int threads = 0);

    /**
     * Create an engine on a borrowed pool (the fleet driver runs one
     * engine per shard on one process-wide pool). The pool must
     * outlive the engine.
     */
    explicit SynthEngine(ThreadPool &pool);

    /**
     * Synthesize every request, using and filling `cache`.
     *
     * Returns one decomposition per request, in request order. The
     * cache's hit/miss counters advance exactly as if the requests
     * had been looked up serially in order.
     */
    std::vector<TwoQubitDecomposition>
    synthesizeBatch(const std::vector<SynthRequest> &requests,
                    DecompositionCache &cache,
                    const SynthOptions &opts,
                    TaskPriority priority = TaskPriority::Normal);

    /**
     * Multi-client batch submission against the fleet-wide shared
     * cache, on behalf of device `device_id`.
     *
     * Safe to call concurrently from multiple (non-pool) threads on
     * the same engine or on sibling engines sharing the pool. Classes
     * already claimed by a concurrent batch are awaited rather than
     * re-synthesized, so each class is synthesized once per process.
     * Results are bit-identical to the single-device path for a fixed
     * SynthOptions::seed, independent of shard count, as long as
     * clients sharing a class hash use byte-identical basis matrices
     * (true for replicated fleet devices; sub-1e-9 basis differences
     * would share the class anyway by construction of the key).
     */
    std::vector<TwoQubitDecomposition>
    synthesizeBatch(const std::vector<SynthRequest> &requests,
                    SharedDecompositionCache &cache,
                    const SynthOptions &opts, int device_id = 0,
                    TaskPriority priority = TaskPriority::Normal);

    /** Worker threads in the pool. */
    int threadCount() const { return pool_->size(); }

    /** Cumulative restart accounting across batches. */
    struct Stats
    {
        /** Restarts that actually ran the optimizer. */
        uint64_t restarts_run = 0;
        /** Queued restarts skipped at dequeue time because a
         *  smaller-index restart of their wave had already reached
         *  the target (submission-time pruning). */
        uint64_t restarts_pruned = 0;
        /** Restarts that threw and were contained as aborted slots
         *  (the job fails only when every restart of every wave
         *  fails; see the failure-model notes in the README). */
        uint64_t restarts_failed = 0;
        /** Mat4 kernel backend the engine's synthesis math ran on
         *  ("scalar" or "avx2"; see linalg/mat4_kernels.hpp). */
        const char *mat4_backend = "";
    };

    Stats stats() const;
    void resetStats();

    /**
     * Process-wide engine sized from QBASIS_SYNTH_THREADS (or the
     * hardware concurrency when unset); shared by the transpiler and
     * the experiment drivers.
     */
    static SynthEngine &shared();

  private:
    std::unique_ptr<ThreadPool> owned_; ///< Null for borrowed pools.
    ThreadPool *pool_;
    std::atomic<uint64_t> restarts_run_{0};
    std::atomic<uint64_t> restarts_pruned_{0};
    std::atomic<uint64_t> restarts_failed_{0};
};

/**
 * One synthesis client: a device's submissions routed through a
 * (per-shard) engine into the fleet-wide shared cache. Experiment
 * drivers, the transpiler, and the bench drivers all submit through
 * this handle, which is what lets identical bases on different
 * devices dedupe onto one synthesis.
 */
struct SynthClient
{
    SynthEngine &engine;
    SharedDecompositionCache &cache;
    int device_id = 0;
    /** Lane of this client's pool submissions; recalibration clients
     *  use Background so they never starve compile-path batches. */
    TaskPriority priority = TaskPriority::Normal;

    std::vector<TwoQubitDecomposition>
    synthesizeBatch(const std::vector<SynthRequest> &requests,
                    const SynthOptions &opts) const
    {
        return engine.synthesizeBatch(requests, cache, opts,
                                      device_id, priority);
    }
};

/**
 * Unified synthesis routing handle for the compile API.
 *
 * Historically every compile entry point picked its own synthesis
 * plumbing: the serial transpiler took a raw `DecompositionCache *`
 * (null = synthesize inline without caching), while the fleet path
 * hand-threaded a `SynthClient` (engine + shared cache + device id +
 * lane). A SynthRoute is either of those behind one value type, so
 * one `transpileCircuit` / `runCompile` signature serves both worlds:
 *
 *   SynthRoute{}             — private per-call cache (the old
 *                              default-options path); whether waves
 *                              run on SynthEngine::shared() or
 *                              serially in-thread is still governed
 *                              by TranspileOptions::parallel_synth;
 *   SynthRoute::local(&c)    — same, but into a caller-owned cache
 *                              shared across circuits of one
 *                              calibration cycle;
 *   SynthRoute(client)       — fleet path: batches submitted through
 *                              the client's engine into the
 *                              fleet-wide SharedDecompositionCache.
 *
 * The route never owns what it points at; everything referenced must
 * outlive the compile call.
 */
class SynthRoute
{
  public:
    /** Local route with a private, per-call cache. */
    SynthRoute() = default;

    /** Fleet route through a shared-cache client. */
    explicit SynthRoute(const SynthClient &client) : client_(client) {}

    /** Local route into a caller-owned cache (must be non-null). */
    static SynthRoute local(DecompositionCache *cache)
    {
        SynthRoute r;
        r.local_cache_ = cache;
        return r;
    }

    bool isFleet() const { return client_.has_value(); }

    /** Fleet client; only valid when isFleet(). */
    const SynthClient &client() const { return *client_; }

    /** Caller-owned local cache, or null for a private one; only
     *  meaningful when !isFleet(). */
    DecompositionCache *localCache() const { return local_cache_; }

  private:
    std::optional<SynthClient> client_;
    DecompositionCache *local_cache_ = nullptr;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_ENGINE_HPP
