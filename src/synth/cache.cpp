#include "synth/cache.hpp"

#include <cmath>
#include <cstring>

#include "weyl/gates.hpp"

namespace qbasis {

namespace {

/** FNV-1a accumulator. */
struct Fnv
{
    uint64_t h = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffull;
            h *= 1099511628211ull;
        }
    }

    void
    mixDouble(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v), "double width");
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }
};

} // namespace

uint64_t
DecompositionCache::hashGate(const Mat4 &m)
{
    // FNV-1a over quantized entries; quantization makes hashes stable
    // against sub-1e-9 rounding differences.
    Fnv f;
    const double scale = 1.0 / kGateHashQuantum;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            f.mix(static_cast<uint64_t>(
                std::llround(m(i, j).real() * scale)));
            f.mix(static_cast<uint64_t>(
                std::llround(m(i, j).imag() * scale)));
        }
    }
    return f.h;
}

uint64_t
DecompositionCache::hashOptions(const SynthOptions &opts)
{
    Fnv f;
    f.mix(static_cast<uint64_t>(opts.max_layers));
    f.mixDouble(opts.target_infidelity);
    f.mix(static_cast<uint64_t>(opts.restarts));
    f.mix(static_cast<uint64_t>(opts.adam_iters));
    f.mix(static_cast<uint64_t>(opts.polish_iters));
    f.mix(opts.use_depth_prediction ? 1u : 0u);
    f.mix(opts.seed);
    f.mix(static_cast<uint64_t>(opts.oracle.restarts));
    f.mix(static_cast<uint64_t>(opts.oracle.nm_iters));
    f.mixDouble(opts.oracle.residual_tol);
    f.mix(opts.oracle.seed);
    return f.h;
}

uint64_t
DecompositionCache::contextHash(const Mat4 &basis,
                                const SynthOptions &opts)
{
    // Combine the two content hashes asymmetrically so swapping
    // basis and options cannot collide.
    return hashGate(basis) * 0x9e3779b97f4a7c15ull
           + hashOptions(opts);
}

DecompositionCache::ClassKey
DecompositionCache::classKey(const CartanCoords &canonical,
                             const Mat4 &basis,
                             const SynthOptions &opts)
{
    ClassKey key;
    key.context = contextHash(basis, opts);
    key.qx = std::llround(canonical.tx / kCoordQuantum);
    key.qy = std::llround(canonical.ty / kCoordQuantum);
    key.qz = std::llround(canonical.tz / kCoordQuantum);
    return key;
}

Mat4
DecompositionCache::classGate(const ClassKey &key)
{
    return canonicalGate(static_cast<double>(key.qx) * kCoordQuantum,
                         static_cast<double>(key.qy) * kCoordQuantum,
                         static_cast<double>(key.qz) * kCoordQuantum);
}

const TwoQubitDecomposition *
DecompositionCache::peekClass(const ClassKey &key) const
{
    const auto it = cache_.find(key);
    return it == cache_.end() ? nullptr : &it->second;
}

void
DecompositionCache::storeClass(const ClassKey &key,
                               TwoQubitDecomposition dec)
{
    ++misses_;
    cache_[key] = std::move(dec);
}

TwoQubitDecomposition
DecompositionCache::dressClassDecomposition(
    const TwoQubitDecomposition &cls, const CanonicalKak &kak,
    const Mat4 &target)
{
    // target = phase * (a1 (x) a0) * CAN(c) * (b1 (x) b0) and cls
    // reconstructs CAN(c), so grafting b* onto the innermost local
    // layer and a* onto the outermost gives a decomposition of the
    // target (for zero-layer classes both graft onto the same local).
    TwoQubitDecomposition d = cls;
    d.locals.front().q1 = d.locals.front().q1 * kak.b1;
    d.locals.front().q0 = d.locals.front().q0 * kak.b0;
    d.locals.back().q1 = kak.a1 * d.locals.back().q1;
    d.locals.back().q0 = kak.a0 * d.locals.back().q0;

    // Recompute phase and exact infidelity against the target; the
    // class infidelity carries over up to the O(kCoordQuantum^2)
    // quantization residue, but measuring it directly is cheap.
    d.phase = Complex(1.0);
    const Mat4 v = d.reconstruct();
    Complex overlap{};
    for (int i = 0; i < 4; ++i)
        for (int k = 0; k < 4; ++k)
            overlap += std::conj(v(i, k)) * target(i, k);
    const double mag = std::abs(overlap);
    d.phase = mag > 1e-300 ? overlap / mag : Complex(1.0);
    d.infidelity = traceInfidelity(v, target);
    return d;
}

TwoQubitDecomposition
DecompositionCache::getOrSynthesize(int edge_id, const Mat4 &target,
                                    const Mat4 &basis,
                                    const SynthOptions &opts)
{
    (void)edge_id; // subsumed by the basis hash in the class key
    const CanonicalKak kak = canonicalKakDecompose(target);
    const ClassKey key = classKey(kak.coords, basis, opts);
    if (const TwoQubitDecomposition *cls = peekClass(key)) {
        ++hits_;
        return dressClassDecomposition(*cls, kak, target);
    }
    storeClass(key, synthesizeGate(classGate(key), basis, opts));
    return dressClassDecomposition(*peekClass(key), kak, target);
}

void
DecompositionCache::clear()
{
    cache_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace qbasis
