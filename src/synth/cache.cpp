#include "synth/cache.hpp"

#include <cmath>

namespace qbasis {

uint64_t
DecompositionCache::hashGate(const Mat4 &m)
{
    // FNV-1a over quantized entries; quantization makes hashes stable
    // against sub-1e-9 rounding differences.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](int64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= static_cast<uint64_t>(v >> (8 * byte)) & 0xffull;
            h *= 1099511628211ull;
        }
    };
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            mix(static_cast<int64_t>(
                std::llround(m(i, j).real() * 1e9)));
            mix(static_cast<int64_t>(
                std::llround(m(i, j).imag() * 1e9)));
        }
    }
    return h;
}

const TwoQubitDecomposition &
DecompositionCache::getOrSynthesize(int edge_id, const Mat4 &target,
                                    const Mat4 &basis,
                                    const SynthOptions &opts)
{
    const std::pair<int, uint64_t> key{edge_id, hashGate(target)};
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto inserted = cache_.emplace(key,
                                   synthesizeGate(target, basis, opts));
    return inserted.first->second;
}

void
DecompositionCache::clear()
{
    cache_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace qbasis
