#include "synth/decomposition.hpp"

namespace qbasis {

Mat4
TwoQubitDecomposition::reconstruct() const
{
    if (locals.empty())
        return Mat4::identity();
    Mat4 v = locals[0].toMat4();
    for (size_t i = 0; i < basis.size(); ++i)
        v = locals[i + 1].toMat4() * basis[i] * v;
    return v * phase;
}

double
TwoQubitDecomposition::duration(double t_basis_ns, double t_1q_ns) const
{
    const double n = static_cast<double>(layers());
    return n * t_basis_ns + (n + 1.0) * t_1q_ns;
}

bool
TwoQubitDecomposition::wellFormed(double tol) const
{
    if (locals.size() != basis.size() + 1)
        return false;
    for (const auto &l : locals) {
        if (!l.q1.isUnitary(tol) || !l.q0.isUnitary(tol))
            return false;
    }
    for (const auto &b : basis) {
        if (!b.isUnitary(tol))
            return false;
    }
    return true;
}

} // namespace qbasis
