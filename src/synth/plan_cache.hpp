#ifndef QBASIS_SYNTH_PLAN_CACHE_HPP
#define QBASIS_SYNTH_PLAN_CACHE_HPP

/**
 * @file
 * Plan cache: the tier above the Weyl-class cache.
 *
 * Two tiers, both keyed on PlanKey = (structural circuit hash,
 * transpile-options hash, basis-epoch vector):
 *
 *  - The *plan* tier stores the replayable TranspilePlan of the last
 *    full transpile of that shape: routing program, layouts, and the
 *    per-2Q-gate Weyl-class keys. A hit skips layout/routing and
 *    translates against already-published classes (transpile/plan.hpp
 *    replay), re-dressing only the 1Q local factors for the request's
 *    parameters.
 *
 *  - The *memo* tier additionally remembers the finished compile
 *    result for ONE exact parameter assignment per key (the most
 *    recent): an exact repeat -- same shape, same parameter
 *    fingerprint, same timing model -- skips transpile, scheduling,
 *    and scoring entirely. Zipf-skewed serving traffic is dominated
 *    by exact repeats, which is where the >=10x p50 win comes from.
 *
 * Invalidation is by key death, not mutation: a recalibration bumps a
 * device's basis epoch, so new requests carry a new epoch vector and
 * miss; retire() sweeps the orphaned plans. Memo entries ride on
 * their plan entry and die with it.
 *
 * Thread-safe; a single mutex guards the map (plan counts are small
 * and lookups are O(log n) map walks -- contention is negligible next
 * to even a memo-hit request's other work).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "transpile/plan.hpp"

namespace qbasis {

/** Memoized compile result of one exact (shape, params) repeat.
 *  Field-for-field the serving layer's CompiledCircuitResult; defined
 *  here so the synth layer stays free of core/ includes. */
struct PlanMemoResult
{
    double fidelity = 0.0;
    double makespan_ns = 0.0;
    uint64_t swaps_inserted = 0;
    uint64_t two_qubit_gates = 0;
    int depth = 0;
};

/** Aggregate plan-cache statistics. */
struct PlanCacheStats
{
    uint64_t memo_hits = 0;   ///< Exact repeats served from the memo.
    uint64_t replay_hits = 0; ///< Plans replayed with new parameters.
    uint64_t misses = 0;      ///< Lookups that fell through.
    uint64_t stores = 0;      ///< Plans captured.
    uint64_t retired = 0;     ///< Plans epoch-swept (cumulative).
    uint64_t loaded = 0;      ///< Plans merged from a snapshot.
    size_t plans = 0;         ///< Plans currently resident.
};

/** Thread-safe two-tier transpile-plan cache. */
class PlanCache
{
  public:
    /**
     * Plan-tier lookup. Returns the stored plan (shared ownership --
     * valid across concurrent stores and retirement) or nullptr on
     * miss. Counts neither a hit nor a miss: the caller reports the
     * request's final disposition through noteMemoHit() /
     * noteReplayHit() / noteMiss() once it knows which path served.
     */
    std::shared_ptr<const TranspilePlan> lookup(const PlanKey &key)
        const;

    /**
     * Memo-tier lookup: the finished result of an exact repeat, if
     * the memoized fingerprint matches. Counts a memo hit on success.
     */
    bool lookupMemo(const PlanKey &key, uint64_t fingerprint,
                    PlanMemoResult *out);

    /** Insert (or replace) the plan for plan.key. Replacing drops the
     *  old entry's memo. Counts one store. */
    void store(TranspilePlan plan);

    /**
     * Attach the finished result for one exact parameter assignment
     * to plan.key's entry (latest wins; no-op if the plan is absent,
     * e.g. retired concurrently).
     */
    void memoize(const PlanKey &key, uint64_t fingerprint,
                 const PlanMemoResult &result);

    void noteReplayHit();
    void noteMiss();

    /**
     * Epoch-sweep: drop every plan whose epoch vector is not live --
     * i.e. some (device, epoch) coordinate differs from `live`'s
     * entry for that device, or references a device not in `live`.
     * `live` must be sorted by device id. Returns plans dropped.
     */
    size_t retire(const std::vector<DeviceEpoch> &live);

    /** Plans currently resident. */
    size_t size() const;

    /** Drop everything (counters keep their cumulative values). */
    void clear();

    PlanCacheStats stats() const;

    // -- Persistence (synth/cache_io) -------------------------------

    /** Copy every plan, sorted by key (stable snapshot bytes). Memo
     *  entries are process-local timing-model-dependent and are NOT
     *  exported. */
    std::vector<TranspilePlan> exportPlans() const;

    /** Merge one deserialized plan; an entry already present wins.
     *  Returns true when inserted. Counts toward `loaded`, never
     *  toward stores/hits/misses. */
    bool insertLoaded(TranspilePlan plan);

  private:
    struct Entry
    {
        std::shared_ptr<const TranspilePlan> plan;
        bool has_memo = false;
        uint64_t memo_fingerprint = 0;
        PlanMemoResult memo;
    };

    mutable std::mutex mutex_;
    std::map<PlanKey, Entry> plans_;
    uint64_t memo_hits_ = 0;
    uint64_t replay_hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t stores_ = 0;
    uint64_t retired_ = 0;
    uint64_t loaded_ = 0;
};

} // namespace qbasis

#endif // QBASIS_SYNTH_PLAN_CACHE_HPP
