#include "transpile/pipeline.hpp"

#include "obs/trace.hpp"
#include "synth/engine.hpp"
#include "transpile/merge_1q.hpp"

namespace qbasis {

TranspileResult
transpileCircuit(const Circuit &logical, const CouplingMap &cm,
                 const std::vector<EdgeBasis> &bases,
                 const SynthRoute &route, const TranspileOptions &opts,
                 RoutedCircuit *captured_routing)
{
    QBASIS_TRACE_SCOPE("transpile.pipeline", "gates", logical.size(),
                       "qubits",
                       static_cast<uint64_t>(logical.numQubits()));
    TranspileResult result;

    const std::vector<int> layout =
        sabreLayout(logical, cm, opts.layout_iterations, opts.sabre);
    RoutedCircuit routed = [&] {
        QBASIS_TRACE_SCOPE("transpile.route");
        return sabreRoute(logical, cm, layout, opts.sabre);
    }();

    result.initial_layout = routed.initial_layout;
    result.final_layout = routed.final_layout;
    result.swaps_inserted = routed.swaps_inserted;
    if (captured_routing != nullptr)
        *captured_routing = routed;

    const Circuit merged = mergeSingleQubitRuns(routed.circuit);
    QBASIS_TRACE_SCOPE("transpile.translate", "gates", merged.size());
    Circuit translated{merged.numQubits()};
    if (route.isFleet()) {
        translated =
            translateToEdgeBases(merged, cm, bases, route.client(),
                                 opts.synth, &result.translation);
    } else {
        DecompositionCache private_cache;
        DecompositionCache &cache = route.localCache()
                                        ? *route.localCache()
                                        : private_cache;
        SynthEngine *engine =
            opts.parallel_synth ? &SynthEngine::shared() : nullptr;
        translated =
            translateToEdgeBases(merged, cm, bases, cache, opts.synth,
                                 &result.translation, engine);
    }
    result.physical = mergeSingleQubitRuns(translated);
    return result;
}

TranspileResult
transpileCircuit(const Circuit &logical, const CouplingMap &cm,
                 const std::vector<EdgeBasis> &bases,
                 DecompositionCache &cache, const TranspileOptions &opts)
{
    return transpileCircuit(logical, cm, bases,
                            SynthRoute::local(&cache), opts);
}

TranspileResult
transpileCircuit(const Circuit &logical, const CouplingMap &cm,
                 const std::vector<EdgeBasis> &bases,
                 const SynthClient &client, const TranspileOptions &opts)
{
    return transpileCircuit(logical, cm, bases, SynthRoute(client),
                            opts);
}

} // namespace qbasis
