#include "transpile/pipeline.hpp"

#include "synth/engine.hpp"
#include "transpile/merge_1q.hpp"

namespace qbasis {

TranspileResult
transpileCircuit(const Circuit &logical, const CouplingMap &cm,
                 const std::vector<EdgeBasis> &bases,
                 DecompositionCache &cache, const TranspileOptions &opts)
{
    TranspileResult result;

    const std::vector<int> layout =
        sabreLayout(logical, cm, opts.layout_iterations, opts.sabre);
    RoutedCircuit routed = sabreRoute(logical, cm, layout, opts.sabre);

    result.initial_layout = routed.initial_layout;
    result.final_layout = routed.final_layout;
    result.swaps_inserted = routed.swaps_inserted;

    const Circuit merged = mergeSingleQubitRuns(routed.circuit);
    SynthEngine *engine =
        opts.parallel_synth ? &SynthEngine::shared() : nullptr;
    const Circuit translated =
        translateToEdgeBases(merged, cm, bases, cache, opts.synth,
                             &result.translation, engine);
    result.physical = mergeSingleQubitRuns(translated);
    return result;
}

TranspileResult
transpileCircuit(const Circuit &logical, const CouplingMap &cm,
                 const std::vector<EdgeBasis> &bases,
                 const SynthClient &client,
                 const TranspileOptions &opts)
{
    TranspileResult result;

    const std::vector<int> layout =
        sabreLayout(logical, cm, opts.layout_iterations, opts.sabre);
    RoutedCircuit routed = sabreRoute(logical, cm, layout, opts.sabre);

    result.initial_layout = routed.initial_layout;
    result.final_layout = routed.final_layout;
    result.swaps_inserted = routed.swaps_inserted;

    const Circuit merged = mergeSingleQubitRuns(routed.circuit);
    const Circuit translated =
        translateToEdgeBases(merged, cm, bases, client, opts.synth,
                             &result.translation);
    result.physical = mergeSingleQubitRuns(translated);
    return result;
}

} // namespace qbasis
