#ifndef QBASIS_TRANSPILE_PIPELINE_HPP
#define QBASIS_TRANSPILE_PIPELINE_HPP

/**
 * @file
 * End-to-end transpilation pipeline reproducing the paper's flow
 * (Section VIII-C): SABRE layout -> SABRE routing -> 1Q merging ->
 * per-edge basis translation -> final 1Q merging.
 */

#include "synth/cache.hpp"
#include "transpile/basis_translate.hpp"
#include "transpile/layout.hpp"
#include "transpile/routing.hpp"

namespace qbasis {

/** Options for transpileCircuit(). */
struct TranspileOptions
{
    SabreOptions sabre;      ///< Routing heuristic tunables.
    SynthOptions synth;      ///< Gate-synthesis settings.
    int layout_iterations = 3; ///< SABRE layout refinement passes.
    /**
     * Batch-synthesize decompositions on SynthEngine::shared()'s
     * thread pool. Results are bit-identical to the serial path for
     * a fixed synth.seed; disable only to benchmark or debug the
     * serial path.
     */
    bool parallel_synth = true;
};

/** Result of the full pipeline. */
struct TranspileResult
{
    Circuit physical;        ///< Final circuit on device qubits.
    std::vector<int> initial_layout; ///< logical -> physical.
    std::vector<int> final_layout;   ///< logical -> physical at end.
    size_t swaps_inserted = 0;       ///< Routing SWAP count.
    BasisTranslationStats translation; ///< Synthesis statistics.

    TranspileResult() : physical(1) {}
};

/**
 * Compile a logical circuit to a device with per-edge basis gates.
 *
 * @param logical  input circuit on logical qubits.
 * @param cm       device coupling graph.
 * @param bases    per-edge basis gates (indexed by edge id).
 * @param cache    decomposition cache shared across circuits in one
 *                 calibration cycle.
 */
TranspileResult transpileCircuit(const Circuit &logical,
                                 const CouplingMap &cm,
                                 const std::vector<EdgeBasis> &bases,
                                 DecompositionCache &cache,
                                 const TranspileOptions &opts = {});

/**
 * Fleet-mode pipeline: synthesis is batched through `client` (a
 * per-shard engine bound to the fleet-wide shared cache), so
 * compiling the same circuit against identical bases on another
 * device reuses every Weyl-class decomposition.
 */
TranspileResult transpileCircuit(const Circuit &logical,
                                 const CouplingMap &cm,
                                 const std::vector<EdgeBasis> &bases,
                                 const SynthClient &client,
                                 const TranspileOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_TRANSPILE_PIPELINE_HPP
