#ifndef QBASIS_TRANSPILE_PIPELINE_HPP
#define QBASIS_TRANSPILE_PIPELINE_HPP

/**
 * @file
 * End-to-end transpilation pipeline reproducing the paper's flow
 * (Section VIII-C): SABRE layout -> SABRE routing -> 1Q merging ->
 * per-edge basis translation -> final 1Q merging.
 */

#include "synth/cache.hpp"
#include "synth/engine.hpp"
#include "transpile/basis_translate.hpp"
#include "transpile/layout.hpp"
#include "transpile/routing.hpp"

namespace qbasis {

/** Options for transpileCircuit(). */
struct TranspileOptions
{
    SabreOptions sabre;      ///< Routing heuristic tunables.
    SynthOptions synth;      ///< Gate-synthesis settings.
    int layout_iterations = 3; ///< SABRE layout refinement passes.
    /**
     * Batch-synthesize decompositions on SynthEngine::shared()'s
     * thread pool. Results are bit-identical to the serial path for
     * a fixed synth.seed; disable only to benchmark or debug the
     * serial path.
     */
    bool parallel_synth = true;
};

/** Result of the full pipeline. */
struct TranspileResult
{
    Circuit physical;        ///< Final circuit on device qubits.
    std::vector<int> initial_layout; ///< logical -> physical.
    std::vector<int> final_layout;   ///< logical -> physical at end.
    size_t swaps_inserted = 0;       ///< Routing SWAP count.
    BasisTranslationStats translation; ///< Synthesis statistics.

    TranspileResult() : physical(1) {}
};

/**
 * Compile a logical circuit to a device with per-edge basis gates.
 *
 * This is the single pipeline entry point: `route` selects where
 * two-qubit synthesis runs and which cache it fills (local cache vs
 * the fleet-wide shared cache through a SynthClient) — see SynthRoute
 * in synth/engine.hpp. Results are bit-identical across routes for a
 * fixed synth seed whenever the routes see the same basis matrices.
 *
 * @param logical  input circuit on logical qubits.
 * @param cm       device coupling graph.
 * @param bases    per-edge basis gates (indexed by edge id).
 * @param route    synthesis routing (cache + engine selection).
 * @param captured_routing  when non-null, receives a copy of the
 *        routed circuit (with its source map) so the caller can
 *        capture a transpile plan (see transpile/plan.hpp).
 */
TranspileResult transpileCircuit(const Circuit &logical,
                                 const CouplingMap &cm,
                                 const std::vector<EdgeBasis> &bases,
                                 const SynthRoute &route = {},
                                 const TranspileOptions &opts = {},
                                 RoutedCircuit *captured_routing =
                                     nullptr);

/**
 * @deprecated Legacy overload; use the SynthRoute entry point with
 * `SynthRoute::local(&cache)`. Kept as a thin shim so out-of-tree
 * callers keep building.
 */
[[deprecated("use transpileCircuit(..., SynthRoute::local(&cache), "
             "opts)")]]
TranspileResult transpileCircuit(const Circuit &logical,
                                 const CouplingMap &cm,
                                 const std::vector<EdgeBasis> &bases,
                                 DecompositionCache &cache,
                                 const TranspileOptions &opts = {});

/**
 * @deprecated Legacy fleet-mode overload; use the SynthRoute entry
 * point with `SynthRoute(client)`.
 */
[[deprecated("use transpileCircuit(..., SynthRoute(client), opts)")]]
TranspileResult transpileCircuit(const Circuit &logical,
                                 const CouplingMap &cm,
                                 const std::vector<EdgeBasis> &bases,
                                 const SynthClient &client,
                                 const TranspileOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_TRANSPILE_PIPELINE_HPP
