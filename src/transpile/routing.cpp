#include "transpile/routing.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

namespace {

/** Dependency DAG over gate indices, per-qubit chains. */
struct GateDag
{
    explicit GateDag(const Circuit &c)
        : num_preds(c.size(), 0), successors(c.size())
    {
        std::vector<int> last(c.numQubits(), -1);
        for (size_t i = 0; i < c.gates().size(); ++i) {
            for (int q : c.gates()[i].qubits) {
                if (last[q] >= 0) {
                    successors[last[q]].push_back(i);
                    ++num_preds[i];
                }
                last[q] = static_cast<int>(i);
            }
        }
    }

    std::vector<int> num_preds;
    std::vector<std::vector<size_t>> successors;
};

} // namespace

RoutedCircuit
sabreRoute(const Circuit &logical, const CouplingMap &cm,
           std::vector<int> initial_layout, const SabreOptions &opts)
{
    const int nl = logical.numQubits();
    const int np = cm.numQubits();
    if (nl > np)
        fatal("circuit has %d qubits but device only %d", nl, np);
    if (initial_layout.size() != static_cast<size_t>(nl))
        fatal("initial layout size %zu != logical qubits %d",
              initial_layout.size(), nl);

    // layout[l] = physical wire of logical qubit l;
    // inverse[p] = logical qubit on physical wire p (-1 if none).
    std::vector<int> layout = std::move(initial_layout);
    std::vector<int> inverse(np, -1);
    for (int l = 0; l < nl; ++l) {
        const int p = layout[l];
        if (p < 0 || p >= np || inverse[p] >= 0)
            fatal("invalid initial layout (physical %d)", p);
        inverse[p] = l;
    }

    RoutedCircuit out;
    out.circuit = Circuit(np);
    out.initial_layout = layout;

    GateDag dag(logical);
    std::vector<size_t> front;
    for (size_t i = 0; i < logical.size(); ++i)
        if (dag.num_preds[i] == 0)
            front.push_back(i);

    std::vector<double> decay(np, 1.0);
    Rng rng(opts.seed);
    int swaps_since_reset = 0;

    auto executable = [&](size_t gi) {
        const Gate &g = logical.gates()[gi];
        if (!g.isTwoQubit())
            return true;
        return cm.connected(layout[g.qubits[0]], layout[g.qubits[1]]);
    };

    auto emit = [&](size_t gi) {
        Gate g = logical.gates()[gi];
        for (int &q : g.qubits)
            q = layout[q];
        out.circuit.append(std::move(g));
        out.sources.push_back(static_cast<int>(gi));
    };

    auto advance = [&](size_t gi, std::vector<size_t> &next_front) {
        for (size_t s : dag.successors[gi]) {
            if (--dag.num_preds[s] == 0)
                next_front.push_back(s);
        }
    };

    size_t executed = 0;
    const size_t total = logical.size();
    size_t stall_guard = 0;
    const size_t stall_limit = 10 * total + 1000;

    while (executed < total) {
        // Execute every ready gate.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            std::vector<size_t> next_front;
            std::vector<size_t> still_blocked;
            for (size_t gi : front) {
                if (executable(gi)) {
                    emit(gi);
                    advance(gi, next_front);
                    ++executed;
                    progressed = true;
                } else {
                    still_blocked.push_back(gi);
                }
            }
            front = std::move(still_blocked);
            front.insert(front.end(), next_front.begin(),
                         next_front.end());
            if (progressed) {
                std::fill(decay.begin(), decay.end(), 1.0);
                swaps_since_reset = 0;
            }
        }
        if (executed >= total)
            break;

        if (++stall_guard > stall_limit)
            panic("sabreRoute made no progress (stall guard hit)");

        // All front gates are blocked 2Q gates: pick the best SWAP.
        // Candidate swaps touch a physical qubit of a blocked gate.
        std::vector<int> candidate_edges;
        for (size_t gi : front) {
            const Gate &g = logical.gates()[gi];
            if (!g.isTwoQubit())
                continue;
            for (int lq : g.qubits) {
                const int p = layout[lq];
                for (int nb : cm.neighbors(p))
                    candidate_edges.push_back(cm.edgeId(p, nb));
            }
        }
        std::sort(candidate_edges.begin(), candidate_edges.end());
        candidate_edges.erase(std::unique(candidate_edges.begin(),
                                          candidate_edges.end()),
                              candidate_edges.end());
        if (candidate_edges.empty())
            panic("sabreRoute: blocked without swap candidates");

        // Extended set: successors of the front (lookahead).
        std::vector<size_t> extended;
        {
            std::vector<size_t> frontier = front;
            std::vector<int> preds_copy; // shallow lookahead walk
            size_t cursor = 0;
            std::vector<size_t> walk = front;
            while (cursor < walk.size()
                   && extended.size()
                          < static_cast<size_t>(
                              opts.extended_set_size)) {
                const size_t gi = walk[cursor++];
                for (size_t s : dag.successors[gi]) {
                    if (logical.gates()[s].isTwoQubit())
                        extended.push_back(s);
                    walk.push_back(s);
                    if (extended.size()
                        >= static_cast<size_t>(
                            opts.extended_set_size))
                        break;
                }
            }
        }

        auto scoreWith = [&](int pa, int pb) {
            // Score the layout obtained by swapping wires pa, pb.
            std::swap(inverse[pa], inverse[pb]);
            if (inverse[pa] >= 0)
                layout[inverse[pa]] = pa;
            if (inverse[pb] >= 0)
                layout[inverse[pb]] = pb;

            double basic = 0.0;
            int front_2q = 0;
            for (size_t gi : front) {
                const Gate &g = logical.gates()[gi];
                if (!g.isTwoQubit())
                    continue;
                basic += cm.distance(layout[g.qubits[0]],
                                     layout[g.qubits[1]]);
                ++front_2q;
            }
            if (front_2q > 0)
                basic /= front_2q;
            double ext = 0.0;
            if (!extended.empty()) {
                for (size_t gi : extended) {
                    const Gate &g = logical.gates()[gi];
                    ext += cm.distance(layout[g.qubits[0]],
                                       layout[g.qubits[1]]);
                }
                ext /= static_cast<double>(extended.size());
            }

            // Undo.
            std::swap(inverse[pa], inverse[pb]);
            if (inverse[pa] >= 0)
                layout[inverse[pa]] = pa;
            if (inverse[pb] >= 0)
                layout[inverse[pb]] = pb;

            const double decay_factor =
                std::max(decay[pa], decay[pb]);
            return decay_factor
                   * (basic + opts.extended_weight * ext);
        };

        int best_edge = -1;
        double best_score = std::numeric_limits<double>::max();
        for (int eid : candidate_edges) {
            const auto [pa, pb] = cm.edges()[eid];
            const double score =
                scoreWith(pa, pb)
                + 1e-9 * static_cast<double>(rng.uniformInt(1000));
            if (score < best_score) {
                best_score = score;
                best_edge = eid;
            }
        }

        const auto [pa, pb] = cm.edges()[best_edge];
        out.circuit.swap(pa, pb);
        out.sources.push_back(-1);
        ++out.swaps_inserted;
        std::swap(inverse[pa], inverse[pb]);
        if (inverse[pa] >= 0)
            layout[inverse[pa]] = pa;
        if (inverse[pb] >= 0)
            layout[inverse[pb]] = pb;
        decay[pa] += opts.decay_increment;
        decay[pb] += opts.decay_increment;
        if (++swaps_since_reset >= opts.decay_reset_interval) {
            std::fill(decay.begin(), decay.end(), 1.0);
            swaps_since_reset = 0;
        }
    }

    out.final_layout = layout;
    return out;
}

} // namespace qbasis
