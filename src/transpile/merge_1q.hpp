#ifndef QBASIS_TRANSPILE_MERGE_1Q_HPP
#define QBASIS_TRANSPILE_MERGE_1Q_HPP

/**
 * @file
 * Single-qubit gate merging: adjacent 1Q gates on one qubit collapse
 * into one U3-equivalent gate (and vanish when the product is the
 * identity up to phase). This realizes the paper's duration model in
 * which each local layer costs one 20 ns single-qubit gate slot.
 */

#include "circuit/circuit.hpp"

namespace qbasis {

/**
 * Merge runs of adjacent 1Q gates. Products within `identity_tol`
 * of the identity (up to global phase) are dropped entirely.
 */
Circuit mergeSingleQubitRuns(const Circuit &c,
                             double identity_tol = 1e-10);

} // namespace qbasis

#endif // QBASIS_TRANSPILE_MERGE_1Q_HPP
