#include "transpile/merge_1q.hpp"

#include <cmath>

namespace qbasis {

namespace {

bool
isIdentityUpToPhase(const Mat2 &u, double tol)
{
    return std::abs(u.trace()) >= 2.0 - tol;
}

} // namespace

Circuit
mergeSingleQubitRuns(const Circuit &c, double identity_tol)
{
    const int n = c.numQubits();
    Circuit out(n);
    std::vector<Mat2> pending(n, Mat2::identity());
    std::vector<bool> has_pending(n, false);

    auto flush = [&](int q) {
        if (!has_pending[q])
            return;
        if (!isIdentityUpToPhase(pending[q], identity_tol))
            out.unitary1q(q, pending[q], "u");
        pending[q] = Mat2::identity();
        has_pending[q] = false;
    };

    for (const Gate &g : c.gates()) {
        if (!g.isTwoQubit()) {
            const int q = g.qubits[0];
            pending[q] = g.matrix2() * pending[q];
            has_pending[q] = true;
        } else {
            flush(g.qubits[0]);
            flush(g.qubits[1]);
            out.append(g);
        }
    }
    for (int q = 0; q < n; ++q)
        flush(q);
    return out;
}

} // namespace qbasis
