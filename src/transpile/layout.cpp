#include "transpile/layout.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {

std::vector<int>
trivialLayout(int num_logical)
{
    std::vector<int> layout(num_logical);
    std::iota(layout.begin(), layout.end(), 0);
    return layout;
}

namespace {

Circuit
reversedCircuit(const Circuit &c)
{
    Circuit r(c.numQubits());
    for (auto it = c.gates().rbegin(); it != c.gates().rend(); ++it)
        r.append(*it);
    return r;
}

} // namespace

std::vector<int>
sabreLayout(const Circuit &logical, const CouplingMap &cm,
            int iterations, const SabreOptions &opts)
{
    const Circuit reversed = reversedCircuit(logical);
    const int nl = logical.numQubits();

    std::vector<int> best_layout = trivialLayout(nl);
    size_t best_swaps = ~size_t{0};

    // Several starting placements (trivial + random), each refined
    // by forward/backward reverse-traversal passes; keep the initial
    // layout whose forward routing inserts the fewest SWAPs. This
    // mirrors Qiskit's multi-seed SABRE layout.
    Rng seed_rng(opts.seed ^ 0x1a707ull);
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<int> layout;
        if (trial == 0) {
            layout = trivialLayout(nl);
        } else {
            std::vector<size_t> wires(cm.numQubits());
            for (size_t i = 0; i < wires.size(); ++i)
                wires[i] = i;
            seed_rng.shuffle(wires);
            layout.resize(nl);
            for (int l = 0; l < nl; ++l)
                layout[l] = static_cast<int>(wires[l]);
        }

        for (int iter = 0; iter < iterations; ++iter) {
            SabreOptions fwd_opts = opts;
            fwd_opts.seed = opts.seed + 16 * trial + 2 * iter;
            const RoutedCircuit fwd =
                sabreRoute(logical, cm, layout, fwd_opts);
            if (fwd.swaps_inserted < best_swaps) {
                best_swaps = fwd.swaps_inserted;
                best_layout = layout;
            }
            // Reverse pass starts from where the forward pass
            // ended; its final layout is a refined placement.
            SabreOptions bwd_opts = opts;
            bwd_opts.seed = opts.seed + 16 * trial + 2 * iter + 1;
            const RoutedCircuit bwd =
                sabreRoute(reversed, cm, fwd.final_layout, bwd_opts);
            layout = bwd.final_layout;
        }
    }
    return best_layout;
}

} // namespace qbasis
