#include "transpile/plan.hpp"

#include <utility>

#include "transpile/basis_translate.hpp"
#include "transpile/merge_1q.hpp"
#include "util/fnv.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

namespace {

/** Mirror of basis_translate's target orientation: lo-qubit-first. */
Mat4
orientedPlanTarget(const Gate &g, const CouplingMap &cm, int eid)
{
    const auto [lo, hi] = cm.edges()[static_cast<size_t>(eid)];
    (void)hi;
    Mat4 target = g.matrix4();
    if (g.qubits[0] != lo) {
        const Mat4 s = swapGate();
        target = s * target * s;
    }
    return target;
}

} // namespace

uint64_t
structuralCircuitHash(const Circuit &c)
{
    Fnv64 f;
    f.mix(static_cast<uint64_t>(c.numQubits()));
    f.mix(static_cast<uint64_t>(c.size()));
    for (const Gate &g : c.gates()) {
        f.mix(static_cast<uint64_t>(g.kind));
        f.mix(static_cast<uint64_t>(g.qubits.size()));
        for (const int q : g.qubits)
            f.mix(static_cast<uint64_t>(static_cast<int64_t>(q)));
        // Parameter *count* is structure; values are not.
        f.mix(static_cast<uint64_t>(g.params.size()));
    }
    return f.h;
}

uint64_t
circuitParamFingerprint(const Circuit &c)
{
    Fnv64 f;
    for (const Gate &g : c.gates()) {
        f.mix(static_cast<uint64_t>(g.params.size()));
        for (const double p : g.params)
            f.mixDouble(p);
        if (g.kind == GateKind::Unitary1Q) {
            for (int r = 0; r < 2; ++r)
                for (int col = 0; col < 2; ++col) {
                    f.mixDouble(g.custom2(r, col).real());
                    f.mixDouble(g.custom2(r, col).imag());
                }
        } else if (g.kind == GateKind::Unitary2Q) {
            for (int r = 0; r < 4; ++r)
                for (int col = 0; col < 4; ++col) {
                    f.mixDouble(g.custom4(r, col).real());
                    f.mixDouble(g.custom4(r, col).imag());
                }
        }
    }
    return f.h;
}

uint64_t
transpilePlanOptionsHash(const TranspileOptions &opts)
{
    Fnv64 f;
    f.mix(static_cast<uint64_t>(
        static_cast<int64_t>(opts.sabre.extended_set_size)));
    f.mixDouble(opts.sabre.extended_weight);
    f.mixDouble(opts.sabre.decay_increment);
    f.mix(static_cast<uint64_t>(
        static_cast<int64_t>(opts.sabre.decay_reset_interval)));
    f.mix(opts.sabre.seed);
    f.mix(static_cast<uint64_t>(
        static_cast<int64_t>(opts.layout_iterations)));
    // parallel_synth is bit-identical to the serial path by contract,
    // so it does not participate.
    f.mix(DecompositionCache::hashOptions(opts.synth));
    return f.h;
}

TranspilePlan
captureTranspilePlan(PlanKey key, const RoutedCircuit &routed,
                     const CouplingMap &cm,
                     const std::vector<EdgeBasis> &bases,
                     const SynthOptions &synth_opts)
{
    if (routed.sources.size() != routed.circuit.size())
        panic("plan capture: source map has %zu entries for %zu "
              "routed gates",
              routed.sources.size(), routed.circuit.size());

    TranspilePlan plan;
    plan.key = std::move(key);
    plan.num_physical = routed.circuit.numQubits();
    plan.initial_layout = routed.initial_layout;
    plan.final_layout = routed.final_layout;
    plan.swaps_inserted = routed.swaps_inserted;

    plan.ops.reserve(routed.circuit.size());
    for (size_t i = 0; i < routed.circuit.size(); ++i) {
        const Gate &g = routed.circuit.gates()[i];
        PlanOp op;
        op.source = routed.sources[i];
        op.q0 = g.qubits[0];
        op.q1 = g.isTwoQubit() ? g.qubits[1] : -1;
        plan.ops.push_back(op);
    }

    // Class keys of the routed 2Q gates, in circuit order. 1Q merging
    // never touches 2Q gates, so this matches the translated
    // circuit's 2Q sequence exactly.
    for (const Gate &g : routed.circuit.gates()) {
        if (!g.isTwoQubit())
            continue;
        const int eid = cm.edgeId(g.qubits[0], g.qubits[1]);
        if (eid < 0)
            panic("plan capture: routed 2Q gate on uncoupled pair "
                  "(%d, %d)",
                  g.qubits[0], g.qubits[1]);
        const Mat4 target = orientedPlanTarget(g, cm, eid);
        const CanonicalKak kak = canonicalKakDecompose(target);
        plan.class_keys.push_back(DecompositionCache::classKey(
            kak.coords, bases[static_cast<size_t>(eid)].gate,
            synth_opts));
    }
    return plan;
}

bool
replayTranspilePlan(const TranspilePlan &plan, const Circuit &logical,
                    const CouplingMap &cm,
                    const std::vector<EdgeBasis> &bases,
                    const SynthOptions &synth_opts,
                    const PlanClassLookup &peek, TranspileResult *out)
{
    // Structural-fit validation. A plan is looked up by structural
    // hash, so a collision (or a corrupt snapshot) could hand us a
    // plan that does not fit this circuit; every check below returns
    // false instead of trusting the hash.
    if (plan.num_physical != cm.numQubits())
        return false;
    if (bases.size() != cm.edges().size())
        return false;
    if (plan.initial_layout.size() !=
            static_cast<size_t>(logical.numQubits()) ||
        plan.final_layout.size() !=
            static_cast<size_t>(logical.numQubits()))
        return false;
    for (const int p : plan.initial_layout)
        if (p < 0 || p >= plan.num_physical)
            return false;
    for (const int p : plan.final_layout)
        if (p < 0 || p >= plan.num_physical)
            return false;

    std::vector<char> seen(logical.size(), 0);
    size_t emitted = 0;
    for (const PlanOp &op : plan.ops) {
        const bool is_2q = op.q1 >= 0;
        if (op.q0 < 0 || op.q0 >= plan.num_physical)
            return false;
        if (is_2q &&
            (op.q1 >= plan.num_physical || op.q1 == op.q0 ||
             cm.edgeId(op.q0, op.q1) < 0))
            return false;
        if (op.source < 0) {
            if (!is_2q) // routing SWAPs are two-qubit
                return false;
            continue;
        }
        if (static_cast<size_t>(op.source) >= logical.size() ||
            seen[static_cast<size_t>(op.source)])
            return false;
        seen[static_cast<size_t>(op.source)] = 1;
        ++emitted;
        const Gate &g = logical.gates()[static_cast<size_t>(op.source)];
        if (g.isTwoQubit() != is_2q)
            return false;
    }
    if (emitted != logical.size())
        return false;

    // Fast bail-out before any KAK work: every class key must already
    // be published.
    for (const DecompositionCache::ClassKey &key : plan.class_keys)
        if (peek(key) == nullptr)
            return false;

    // Rebuild the routed circuit with the live gate parameters, then
    // run the *same* merge + translate + merge sequence as the full
    // pipeline so the output is bit-identical to a fresh transpile.
    Circuit routed(plan.num_physical);
    for (const PlanOp &op : plan.ops) {
        if (op.source < 0) {
            routed.swap(op.q0, op.q1);
            continue;
        }
        Gate g = logical.gates()[static_cast<size_t>(op.source)];
        g.qubits = op.q1 >= 0 ? std::vector<int>{op.q0, op.q1}
                              : std::vector<int>{op.q0};
        routed.append(std::move(g));
    }

    const Circuit merged = mergeSingleQubitRuns(routed);
    BasisTranslationStats stats;
    std::optional<Circuit> translated = translateFromPublishedClasses(
        merged, cm, bases, synth_opts, peek, &stats);
    if (!translated)
        return false;

    out->physical = mergeSingleQubitRuns(*translated);
    out->initial_layout = plan.initial_layout;
    out->final_layout = plan.final_layout;
    out->swaps_inserted = plan.swaps_inserted;
    out->translation = stats;
    return true;
}

} // namespace qbasis
