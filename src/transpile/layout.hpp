#ifndef QBASIS_TRANSPILE_LAYOUT_HPP
#define QBASIS_TRANSPILE_LAYOUT_HPP

/**
 * @file
 * Initial qubit placement: trivial layout and SABRE layout (the
 * reverse-traversal refinement of Li et al. that the paper uses via
 * Qiskit's "SABRE" layout method).
 */

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/coupling.hpp"
#include "transpile/routing.hpp"

namespace qbasis {

/** Identity layout: logical i -> physical i. */
std::vector<int> trivialLayout(int num_logical);

/**
 * SABRE layout: alternate forward/backward routing passes, feeding
 * each pass's final layout into the next, and keep the initial
 * layout whose forward pass inserts the fewest SWAPs.
 */
std::vector<int> sabreLayout(const Circuit &logical,
                             const CouplingMap &cm, int iterations = 3,
                             const SabreOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_TRANSPILE_LAYOUT_HPP
