#ifndef QBASIS_TRANSPILE_PLAN_HPP
#define QBASIS_TRANSPILE_PLAN_HPP

/**
 * @file
 * Transpile plans: the replayable residue of one full pipeline run.
 *
 * Production traffic repeats circuit *shapes* -- the same QFT/QAOA/BV
 * structure at different rotation angles and on different days. SABRE
 * layout and routing never read gate parameters (they see only qubit
 * indices and the DAG), so the routing program of one run is valid
 * for every parameter assignment of the same shape. A TranspilePlan
 * records that program -- which logical gate lands where, where SWAPs
 * were inserted -- plus the per-2Q-gate Weyl-class keys, so a repeat
 * request can skip layout/routing entirely and re-translate against
 * already-published class decompositions (re-dressing only the 1Q
 * local factors for the new parameters).
 *
 * Determinism contract: replaying a plan runs the *same* 1Q-merge and
 * emission code as the full pipeline, so for a fixed basis epoch the
 * replayed physical circuit is bit-identical to a from-scratch
 * transpile (enforced in tests/test_plan and bench_serve's Zipf
 * sub-suite).
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "synth/cache.hpp"
#include "transpile/pipeline.hpp"
#include "transpile/routing.hpp"

namespace qbasis {

/**
 * One step of the routing program. `source >= 0` emits logical gate
 * `source` on physical qubits (q0[, q1]); `source == -1` emits a
 * routing SWAP on (q0, q1). `q1 == -1` marks a single-qubit gate.
 */
struct PlanOp
{
    int source = -1;
    int q0 = 0;
    int q1 = -1;

    bool
    operator==(const PlanOp &o) const
    {
        return source == o.source && q0 == o.q0 && q1 == o.q1;
    }
};

/** One (device, basis-epoch) coordinate of a plan key. */
struct DeviceEpoch
{
    int device_id = 0;
    uint64_t epoch = 0;

    bool
    operator<(const DeviceEpoch &o) const
    {
        if (device_id != o.device_id)
            return device_id < o.device_id;
        return epoch < o.epoch;
    }

    bool
    operator==(const DeviceEpoch &o) const
    {
        return device_id == o.device_id && epoch == o.epoch;
    }
};

/**
 * Key of one transpile plan: the structural circuit hash (shape, not
 * parameters), the hash of every transpile option that can change the
 * output, and the basis-epoch vector of the devices the plan's class
 * keys were derived from. A recalibration bumps the device's epoch,
 * so stale plans simply stop matching and get epoch-swept by
 * retireCache().
 */
struct PlanKey
{
    uint64_t structural_hash = 0;
    uint64_t options_hash = 0;
    std::vector<DeviceEpoch> epochs;

    bool
    operator<(const PlanKey &o) const
    {
        if (structural_hash != o.structural_hash)
            return structural_hash < o.structural_hash;
        if (options_hash != o.options_hash)
            return options_hash < o.options_hash;
        return epochs < o.epochs;
    }

    bool
    operator==(const PlanKey &o) const
    {
        return structural_hash == o.structural_hash &&
               options_hash == o.options_hash && epochs == o.epochs;
    }
};

/** The replayable residue of one transpile. */
struct TranspilePlan
{
    PlanKey key;
    int num_physical = 1;            ///< Device qubit count.
    std::vector<int> initial_layout; ///< logical -> physical.
    std::vector<int> final_layout;   ///< logical -> physical at end.
    uint64_t swaps_inserted = 0;     ///< Routing SWAP count.
    std::vector<PlanOp> ops;         ///< Routing program.
    /** Weyl-class key of each routed 2Q gate, in circuit order.
     *  Replay pre-checks these against the published class set before
     *  doing any KAK work. */
    std::vector<DecompositionCache::ClassKey> class_keys;
};

/**
 * Structure-only circuit hash: mixes qubit count, gate count, and
 * each gate's kind, qubit mapping, and parameter *count* -- never
 * parameter values or custom matrices. Two circuits share a hash iff
 * one's routing program is valid for the other; gate order and qubit
 * permutations change the hash (routing reads both).
 */
uint64_t structuralCircuitHash(const Circuit &c);

/**
 * Value fingerprint of everything structuralCircuitHash ignores:
 * parameter values and custom 1Q/2Q matrices. (structural hash,
 * fingerprint) identifies a circuit exactly; the exact-repeat memo
 * tier keys on it.
 */
uint64_t circuitParamFingerprint(const Circuit &c);

/** Hash of every TranspileOptions field that can change the output
 *  circuit (SABRE tunables, layout iterations, synthesis options). */
uint64_t transpilePlanOptionsHash(const TranspileOptions &opts);

/**
 * Capture the plan of a just-routed circuit. `routed` must carry its
 * source map (RoutedCircuit::sources); class keys are derived from
 * the routed 2Q gates against the given bases.
 */
TranspilePlan captureTranspilePlan(
    PlanKey key, const RoutedCircuit &routed, const CouplingMap &cm,
    const std::vector<EdgeBasis> &bases,
    const SynthOptions &synth_opts);

/** Published-class lookup used during replay (no synthesis, no cache
 *  mutation; pointer validity per SharedDecompositionCache rules). */
using PlanClassLookup = std::function<const TwoQubitDecomposition *(
    const DecompositionCache::ClassKey &)>;

/**
 * Replay `plan` on a live logical circuit: rebuild the routed
 * circuit with the request's parameters, re-merge 1Q runs, and
 * translate against published classes only.
 *
 * Returns false -- leaving `*out` untouched -- if the plan does not
 * fit the circuit (defends against structural-hash collisions and
 * corrupt snapshots) or any class key is not yet published; the
 * caller then falls back to a full transpile.
 */
bool replayTranspilePlan(const TranspilePlan &plan,
                         const Circuit &logical, const CouplingMap &cm,
                         const std::vector<EdgeBasis> &bases,
                         const SynthOptions &synth_opts,
                         const PlanClassLookup &peek,
                         TranspileResult *out);

} // namespace qbasis

#endif // QBASIS_TRANSPILE_PLAN_HPP
