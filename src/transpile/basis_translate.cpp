#include "transpile/basis_translate.hpp"

#include <algorithm>
#include <functional>

#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {

namespace {

/** Conjugate a 4x4 gate by SWAP (reverse the qubit roles). */
Mat4
swapConjugate(const Mat4 &m)
{
    const Mat4 s = swapGate();
    return s * m * s;
}

/** Edge id of a (routed) 2Q gate, with diagnostics. */
int
edgeIdOf(const Gate &g, const CouplingMap &cm)
{
    const int eid = cm.edgeId(g.qubits[0], g.qubits[1]);
    if (eid < 0) {
        fatal("translate: 2Q gate '%s' on uncoupled pair "
              "(%d, %d); route the circuit first",
              g.name().c_str(), g.qubits[0], g.qubits[1]);
    }
    return eid;
}

/** Oriented synthesis target of one routed 2Q gate. */
Mat4
orientedTarget(const Gate &g, const CouplingMap &cm, int eid)
{
    // Orient the target with the edge's lo qubit as the most
    // significant slot so decompositions are shared between both
    // gate orientations.
    const auto [lo, hi] = cm.edges()[eid];
    (void)hi;
    Mat4 target = g.matrix4();
    if (g.qubits[0] != lo)
        target = swapConjugate(target);
    return target;
}

/**
 * Shared emission loop: rewrite every 2Q gate using `dec_of`, which
 * returns the decomposition of the idx-th 2Q gate (in circuit order).
 */
Circuit
emitTranslation(const Circuit &physical, const CouplingMap &cm,
                const std::vector<EdgeBasis> &bases,
                BasisTranslationStats *stats,
                const std::function<TwoQubitDecomposition(
                    const Gate &, int, size_t)> &dec_of)
{
    Circuit out(physical.numQubits());
    BasisTranslationStats local_stats;
    size_t next_2q = 0;

    for (const Gate &g : physical.gates()) {
        if (!g.isTwoQubit()) {
            out.append(g);
            continue;
        }
        const int eid = edgeIdOf(g, cm);
        const auto [lo, hi] = cm.edges()[eid];

        const TwoQubitDecomposition dec = dec_of(g, eid, next_2q++);
        if (dec.infidelity > 1e-6) {
            warn("translate: decomposition infidelity %.2e on edge "
                 "%d for gate '%s'", dec.infidelity, eid,
                 g.name().c_str());
        }

        // Emit K_0, then (B, K_j) pairs; locals[j].q1 acts on `lo`.
        out.unitary1q(lo, dec.locals[0].q1, "u");
        out.unitary1q(hi, dec.locals[0].q0, "u");
        for (int layer = 0; layer < dec.layers(); ++layer) {
            out.unitary2q(lo, hi, dec.basis[layer],
                          bases[static_cast<size_t>(eid)].label.empty()
                              ? "basis"
                              : bases[static_cast<size_t>(eid)].label);
            out.unitary1q(lo, dec.locals[layer + 1].q1, "u");
            out.unitary1q(hi, dec.locals[layer + 1].q0, "u");
        }

        ++local_stats.translated_2q;
        local_stats.total_layers +=
            static_cast<size_t>(dec.layers());
        local_stats.max_infidelity =
            std::max(local_stats.max_infidelity, dec.infidelity);
    }

    if (stats)
        *stats = local_stats;
    return out;
}

} // namespace

std::vector<SynthRequest>
collectSynthRequests(const Circuit &physical, const CouplingMap &cm,
                     const std::vector<EdgeBasis> &bases)
{
    if (bases.size() != cm.edges().size())
        fatal("edge basis table size %zu != edge count %zu",
              bases.size(), cm.edges().size());
    std::vector<SynthRequest> requests;
    for (const Gate &g : physical.gates()) {
        if (!g.isTwoQubit())
            continue;
        const int eid = edgeIdOf(g, cm);
        SynthRequest req;
        req.edge_id = eid;
        req.target = orientedTarget(g, cm, eid);
        req.basis = bases[static_cast<size_t>(eid)].gate;
        requests.push_back(std::move(req));
    }
    return requests;
}

Circuit
translateToEdgeBases(const Circuit &physical, const CouplingMap &cm,
                     const std::vector<EdgeBasis> &bases,
                     DecompositionCache &cache,
                     const SynthOptions &synth_opts,
                     BasisTranslationStats *stats, SynthEngine *engine)
{
    if (bases.size() != cm.edges().size())
        fatal("edge basis table size %zu != edge count %zu",
              bases.size(), cm.edges().size());

    // With an engine, batch-synthesize every 2Q gate's decomposition
    // up front (deduped by Weyl class, fanned over the pool);
    // otherwise decompositions are pulled from the cache on demand.
    std::vector<TwoQubitDecomposition> batched;
    if (engine != nullptr) {
        batched = engine->synthesizeBatch(
            collectSynthRequests(physical, cm, bases), cache,
            synth_opts);
    }
    return emitTranslation(
        physical, cm, bases, stats,
        [&](const Gate &g, int eid, size_t idx) {
            return engine != nullptr
                       ? std::move(batched[idx])
                       : cache.getOrSynthesize(
                             eid, orientedTarget(g, cm, eid),
                             bases[static_cast<size_t>(eid)].gate,
                             synth_opts);
        });
}

Circuit
translateToEdgeBases(const Circuit &physical, const CouplingMap &cm,
                     const std::vector<EdgeBasis> &bases,
                     const SynthClient &client,
                     const SynthOptions &synth_opts,
                     BasisTranslationStats *stats)
{
    if (bases.size() != cm.edges().size())
        fatal("edge basis table size %zu != edge count %zu",
              bases.size(), cm.edges().size());

    // Fleet path: always batched, against the shared cross-device
    // cache, on the client's shard engine.
    std::vector<TwoQubitDecomposition> batched = client.synthesizeBatch(
        collectSynthRequests(physical, cm, bases), synth_opts);
    return emitTranslation(physical, cm, bases, stats,
                           [&](const Gate &, int, size_t idx) {
                               return std::move(batched[idx]);
                           });
}

std::optional<Circuit>
translateFromPublishedClasses(
    const Circuit &physical, const CouplingMap &cm,
    const std::vector<EdgeBasis> &bases,
    const SynthOptions &synth_opts,
    const std::function<const TwoQubitDecomposition *(
        const DecompositionCache::ClassKey &)> &peek,
    BasisTranslationStats *stats)
{
    if (bases.size() != cm.edges().size())
        fatal("edge basis table size %zu != edge count %zu",
              bases.size(), cm.edges().size());

    // Pre-pass: dress every 2Q gate from its published class. Bail
    // before emitting anything if a class is missing, so a partial
    // replay never escapes.
    std::vector<TwoQubitDecomposition> dressed;
    for (const Gate &g : physical.gates()) {
        if (!g.isTwoQubit())
            continue;
        const int eid = edgeIdOf(g, cm);
        const Mat4 target = orientedTarget(g, cm, eid);
        const CanonicalKak kak = canonicalKakDecompose(target);
        const DecompositionCache::ClassKey key =
            DecompositionCache::classKey(
                kak.coords, bases[static_cast<size_t>(eid)].gate,
                synth_opts);
        const TwoQubitDecomposition *cls = peek(key);
        if (cls == nullptr)
            return std::nullopt;
        dressed.push_back(DecompositionCache::dressClassDecomposition(
            *cls, kak, target));
    }

    return emitTranslation(physical, cm, bases, stats,
                           [&](const Gate &, int, size_t idx) {
                               return std::move(dressed[idx]);
                           });
}

DurationModel
edgeDurationModel(const CouplingMap &cm,
                  const std::vector<EdgeBasis> &bases, double t_1q_ns)
{
    if (bases.size() != cm.edges().size())
        fatal("edge basis table size %zu != edge count %zu",
              bases.size(), cm.edges().size());
    // Copy the durations; the model may outlive the basis table.
    std::vector<double> durations(bases.size());
    for (size_t i = 0; i < bases.size(); ++i)
        durations[i] = bases[i].duration_ns;
    return [&cm, durations, t_1q_ns](const Gate &g) {
        if (!g.isTwoQubit())
            return t_1q_ns;
        const int eid = cm.edgeId(g.qubits[0], g.qubits[1]);
        if (eid < 0)
            fatal("duration model: 2Q gate on uncoupled pair "
                  "(%d, %d)", g.qubits[0], g.qubits[1]);
        return durations[static_cast<size_t>(eid)];
    };
}

} // namespace qbasis
