#ifndef QBASIS_TRANSPILE_ROUTING_HPP
#define QBASIS_TRANSPILE_ROUTING_HPP

/**
 * @file
 * SABRE swap-insertion routing (Li, Ding, Xie, ASPLOS'19), the
 * routing method the paper uses via Qiskit (Section VIII-C).
 */

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/coupling.hpp"

namespace qbasis {

/** Tunables of the SABRE heuristic. */
struct SabreOptions
{
    int extended_set_size = 20;   ///< Lookahead window size.
    double extended_weight = 0.5; ///< Weight of the lookahead term.
    double decay_increment = 0.001; ///< Per-swap decay penalty.
    int decay_reset_interval = 5; ///< Swaps between decay resets.
    uint64_t seed = 0x5ab3eull;   ///< Tie-breaking seed.
};

/** Result of routing a logical circuit onto a device. */
struct RoutedCircuit
{
    Circuit circuit;              ///< Physical circuit (with SWAPs).
    std::vector<int> initial_layout; ///< logical -> physical.
    std::vector<int> final_layout;   ///< logical -> physical at end.
    size_t swaps_inserted = 0;    ///< Number of SWAP gates added.
    /// Logical gate index behind each emitted gate; -1 for inserted
    /// SWAPs. Lets a transpile plan replay the routing program on a
    /// structurally identical circuit with different parameters.
    std::vector<int> sources;

    RoutedCircuit() : circuit(1) {}
};

/**
 * Route `logical` onto the device described by `cm`, starting from
 * the given layout (logical -> physical).
 *
 * All emitted gates act on physical qubit indices; every 2Q gate in
 * the result acts on a coupled pair.
 */
RoutedCircuit sabreRoute(const Circuit &logical, const CouplingMap &cm,
                         std::vector<int> initial_layout,
                         const SabreOptions &opts = {});

} // namespace qbasis

#endif // QBASIS_TRANSPILE_ROUTING_HPP
