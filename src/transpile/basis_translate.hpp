#ifndef QBASIS_TRANSPILE_BASIS_TRANSLATE_HPP
#define QBASIS_TRANSPILE_BASIS_TRANSLATE_HPP

/**
 * @file
 * Basis-translation pass: rewrite every 2Q gate of a routed physical
 * circuit into the per-edge 2Q basis gate plus local gates, using
 * the numerical synthesis engine with per-calibration-cycle caching
 * (paper Section VII).
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/schedule.hpp"
#include "synth/cache.hpp"
#include "synth/engine.hpp"
#include "circuit/coupling.hpp"

namespace qbasis {

/** Basis gate calibrated on one device edge. */
struct EdgeBasis
{
    Mat4 gate;               ///< Unitary, oriented lo-qubit-first.
    double duration_ns = 0;  ///< Calibrated pulse duration.
    std::string label;       ///< Display label (e.g. "xy40").
};

/** Statistics of one translation pass. */
struct BasisTranslationStats
{
    size_t translated_2q = 0;       ///< 2Q gates rewritten.
    size_t total_layers = 0;        ///< Basis applications emitted.
    double max_infidelity = 0.0;    ///< Worst decomposition error.
};

/**
 * List the synthesis requests the translation of `physical` needs:
 * one per 2Q gate, with the target oriented lo-qubit-first so both
 * gate orientations share decompositions. This is the batch the
 * SynthEngine fans out before emission.
 */
std::vector<SynthRequest>
collectSynthRequests(const Circuit &physical, const CouplingMap &cm,
                     const std::vector<EdgeBasis> &bases);

/**
 * Rewrite `physical` so every 2Q gate becomes applications of the
 * corresponding edge's basis gate plus 1Q gates.
 *
 * All 2Q gates must act on coupled pairs (i.e. the circuit is
 * routed). Basis-gate applications are labeled "basis".
 *
 * With `engine` set, all decompositions are batch-synthesized up
 * front on the engine's thread pool; otherwise each gate is looked
 * up serially. Both paths produce bit-identical circuits for a fixed
 * SynthOptions::seed.
 */
Circuit translateToEdgeBases(const Circuit &physical,
                             const CouplingMap &cm,
                             const std::vector<EdgeBasis> &bases,
                             DecompositionCache &cache,
                             const SynthOptions &synth_opts,
                             BasisTranslationStats *stats = nullptr,
                             SynthEngine *engine = nullptr);

/**
 * Fleet-mode translation: decompositions are batch-synthesized
 * through `client` into the fleet-wide shared cache, so identical
 * bases on other devices dedupe onto already-synthesized classes.
 */
Circuit translateToEdgeBases(const Circuit &physical,
                             const CouplingMap &cm,
                             const std::vector<EdgeBasis> &bases,
                             const SynthClient &client,
                             const SynthOptions &synth_opts,
                             BasisTranslationStats *stats = nullptr);

/**
 * Plan-replay translation: rewrite `physical` using only already
 * published Weyl-class decompositions, looked up through `peek`
 * (no synthesis, no cache mutation). Returns std::nullopt as soon as
 * any 2Q gate's class is not yet published, in which case the caller
 * must fall back to a full translate.
 *
 * Emission goes through the same loop as the synthesizing paths, so
 * for a fixed published class set the output is bit-identical to
 * what translateToEdgeBases would produce.
 */
std::optional<Circuit> translateFromPublishedClasses(
    const Circuit &physical, const CouplingMap &cm,
    const std::vector<EdgeBasis> &bases,
    const SynthOptions &synth_opts,
    const std::function<const TwoQubitDecomposition *(
        const DecompositionCache::ClassKey &)> &peek,
    BasisTranslationStats *stats = nullptr);

/**
 * Duration model for translated circuits: 1Q gates take t_1q_ns,
 * 2Q gates take their edge's calibrated basis duration.
 *
 * The model copies the durations but keeps a reference to `cm`; the
 * coupling map must outlive the returned callable.
 */
DurationModel edgeDurationModel(const CouplingMap &cm,
                                const std::vector<EdgeBasis> &bases,
                                double t_1q_ns);

} // namespace qbasis

#endif // QBASIS_TRANSPILE_BASIS_TRANSLATE_HPP
