#include "calib/qpt.hpp"

#include <array>
#include <cmath>

#include "linalg/eig_herm.hpp"
#include "linalg/polar.hpp"
#include "linalg/solve.hpp"
#include "linalg/su2.hpp"
#include "util/logging.hpp"

namespace qbasis {

namespace {

/** The 16 two-qubit Paulis, index = 4*first + second (I,X,Y,Z). */
const std::array<Mat4, 16> &
pauli16()
{
    static const std::array<Mat4, 16> paulis = [] {
        const Mat2 p1[4] = {Mat2::identity(), pauliX(), pauliY(),
                            pauliZ()};
        std::array<Mat4, 16> out;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                out[4 * i + j] = Mat4::kron(p1[i], p1[j]);
        return out;
    }();
    return paulis;
}

/** Single-qubit IC preparation states |0>, |1>, |+>, |+i>. */
std::array<std::array<Complex, 2>, 4>
prepStates()
{
    const double s = 1.0 / std::sqrt(2.0);
    return {{{Complex(1), Complex(0)},
             {Complex(0), Complex(1)},
             {Complex(s), Complex(s)},
             {Complex(s), Complex(0, s)}}};
}

} // namespace

QptResult
simulateQpt(const Mat4 &true_gate, const QptOptions &opts, Rng &rng)
{
    const auto &paulis = pauli16();
    const auto preps = prepStates();

    // Input coefficient matrix C[k][n] = tr(P_n rho_k); product
    // structure: c = kron of single-qubit coefficient rows.
    auto pauli1Coeffs = [](const std::array<Complex, 2> &psi) {
        std::array<double, 4> c{};
        const Mat2 p1[4] = {Mat2::identity(), pauliX(), pauliY(),
                            pauliZ()};
        for (int n = 0; n < 4; ++n) {
            Complex e{};
            for (int r = 0; r < 2; ++r)
                for (int col = 0; col < 2; ++col)
                    e += std::conj(psi[r]) * p1[n](r, col) * psi[col];
            c[n] = e.real();
        }
        return c;
    };

    RMat coeff(16, 16);
    RMat measured(16, 16); // measured[m][k] = est tr(P_m E(rho_k))
    for (int ka = 0; ka < 4; ++ka) {
        const auto ca = pauli1Coeffs(preps[ka]);
        for (int kb = 0; kb < 4; ++kb) {
            const auto cb = pauli1Coeffs(preps[kb]);
            const int k = 4 * ka + kb;
            for (int na = 0; na < 4; ++na)
                for (int nb = 0; nb < 4; ++nb)
                    coeff(k, 4 * na + nb) = ca[na] * cb[nb];

            // Output state psi = U (prep_a (x) prep_b).
            std::array<Complex, 4> psi_in{};
            for (int r = 0; r < 2; ++r)
                for (int c = 0; c < 2; ++c)
                    psi_in[2 * r + c] = preps[ka][r] * preps[kb][c];
            std::array<Complex, 4> psi{};
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    psi[r] += true_gate(r, c) * psi_in[c];

            for (int m = 0; m < 16; ++m) {
                if (m == 0) {
                    measured(0, k) = 1.0;
                    continue;
                }
                // True expectation of P_m.
                Complex e{};
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        e += std::conj(psi[r]) * paulis[m](r, c)
                             * psi[c];
                double expect = e.real();
                // Depolarizing SPAM shrinks the visibility.
                expect *= (1.0 - opts.spam_error);
                if (opts.shots > 0) {
                    // Binomial sampling of the +1 outcome counts.
                    const double p_up = 0.5 * (1.0 + expect);
                    int up = 0;
                    for (int s = 0; s < opts.shots; ++s)
                        up += (rng.uniform() < p_up);
                    expect =
                        2.0 * up / static_cast<double>(opts.shots)
                        - 1.0;
                }
                measured(m, k) = expect;
            }
        }
    }

    // PTM: measured = R * coeff^T  ->  R^T = solve(coeff, measured^T).
    const RMat rt =
        solveLinearSystem(coeff, measured.transpose());
    const RMat r = rt.transpose();

    // Choi matrix J = (1/d^2) sum_{mn} R_mn P_m (x) P_n^T.
    CMat choi(16, 16);
    for (int m = 0; m < 16; ++m) {
        for (int n = 0; n < 16; ++n) {
            const double w = r(m, n) / 16.0;
            if (w == 0.0)
                continue;
            const Mat4 &pm = paulis[m];
            const Mat4 pnt = paulis[n].transpose();
            for (int i = 0; i < 4; ++i)
                for (int j = 0; j < 4; ++j) {
                    const Complex a = pm(i, j);
                    if (a == Complex{})
                        continue;
                    for (int k2 = 0; k2 < 4; ++k2)
                        for (int l = 0; l < 4; ++l) {
                            choi(4 * i + k2, 4 * j + l) +=
                                w * a * pnt(k2, l);
                        }
                }
        }
    }

    // Dominant eigenvector ~ vec(U)/2.
    const HermEig eig = jacobiEigHerm(choi);
    const size_t top = 15;
    Mat4 u_raw;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            u_raw(i, j) = 2.0 * eig.vectors(4 * i + j, top);

    QptResult out;
    out.estimate = nearestUnitary4(u_raw);
    out.choi_purity = eig.values[top];
    return out;
}

} // namespace qbasis
