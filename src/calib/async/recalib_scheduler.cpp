#include "calib/async/recalib_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"
#include "weyl/kak.hpp"

namespace qbasis {

namespace {

/** Registry mirrors of the scheduler's retry/quarantine stats. */
struct RecalibMetrics
{
    Counter &scheduled;
    Counter &completed;
    Counter &published;
    Counter &retries;
    Counter &contained_errors;
    Counter &quarantine_skipped;

    static RecalibMetrics &
    instance()
    {
        MetricsRegistry &reg = MetricsRegistry::instance();
        static RecalibMetrics m{
            reg.counter("recalib.scheduled"),
            reg.counter("recalib.completed"),
            reg.counter("recalib.published"),
            reg.counter("recalib.retries"),
            reg.counter("recalib.contained_errors"),
            reg.counter("recalib.quarantine_skipped")};
        return m;
    }
};

// One probe per pipeline stage; keys are the logical edge identity,
// so a fault campaign replays bit-identically at any shard count.
const FaultSite kFaultRecalibSimulate("recalib.simulate");
const FaultSite kFaultRecalibSelect("recalib.select");
const FaultSite kFaultRecalibResynth("recalib.resynth");

uint64_t
edgeFaultKey(int device_id, int edge_id)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(device_id))
            << 32)
           | static_cast<uint32_t>(edge_id);
}

std::string
describeError(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

} // namespace

/** One in-flight edge pipeline (owned by its stage closures). */
struct RecalibScheduler::Task
{
    RecalibJob job;
    std::unique_ptr<PairSimulator> sim;
    double window_ns = 0.0;
    int extensions_used = 0;
    /** Whole-pipeline restarts already consumed by this task. */
    int retries_used = 0;
    bool selected = false;
    Trajectory traj;
    EdgeCalibration cal;
};

RecalibScheduler::RecalibScheduler(ThreadPool &pool,
                                   SharedDecompositionCache &cache,
                                   RecalibSchedulerOptions opts)
    : pool_(pool), cache_(cache), opts_(std::move(opts)),
      epoch_(std::chrono::steady_clock::now())
{
}

RecalibScheduler::~RecalibScheduler()
{
    try {
        drain();
    } catch (const std::exception &e) {
        warn("RecalibScheduler: dropping error at destruction: %s",
             e.what());
    } catch (...) {
        warn("RecalibScheduler: dropping error at destruction");
    }
}

double
RecalibScheduler::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
RecalibScheduler::noteStage(double t0_ms)
{
    const double t1_ms = nowMs();
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.busy_ms += t1_ms - t0_ms;
    if (stats_.window_start_ms < 0.0
        || t0_ms < stats_.window_start_ms)
        stats_.window_start_ms = t0_ms;
    if (t1_ms > stats_.window_end_ms)
        stats_.window_end_ms = t1_ms;
}

void
RecalibScheduler::schedule(RecalibJob job)
{
    if (job.device == nullptr || job.target == nullptr)
        panic("RecalibScheduler: job without device/target");
    const EdgeKey key{job.device_id, job.edge_id};
    std::shared_ptr<Task> start;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto quarantined = quarantine_.find(key);
        if (quarantined != quarantine_.end()) {
            if (job.cycle < quarantined->second.release_cycle) {
                // Cycle-denominated backoff: the edge sits out until
                // a job stamped at/after the release cycle arrives.
                // The device keeps serving the last-good basis.
                ++stats_.quarantine_skipped;
                RecalibMetrics::instance().quarantine_skipped.add();
                return;
            }
            quarantine_.erase(quarantined);
        }
        ++stats_.scheduled;
        RecalibMetrics::instance().scheduled.add();
        EdgeQueue &q = queues_[key];
        if (q.running) {
            // The edge already has a pipeline in flight: strict FIFO
            // per edge, so cycle c+1 observes cycle c's publish.
            q.pending.push_back(std::move(job));
        } else {
            q.running = true;
            ++inflight_;
            start = std::make_shared<Task>();
            start->job = std::move(job);
        }
    }
    if (start)
        submitSimulate(std::move(start));
}

void
RecalibScheduler::submitSimulate(std::shared_ptr<Task> task)
{
    pool_.submit(
        [this, task = std::move(task)] {
            const double t0 = nowMs();
            try {
                stageSimulate(task);
            } catch (...) {
                noteStage(t0);
                completeTask(task, std::current_exception());
                return;
            }
            noteStage(t0);
            submitSelect(task);
        },
        TaskPriority::Background);
}

void
RecalibScheduler::submitSelect(std::shared_ptr<Task> task)
{
    pool_.submit(
        [this, task = std::move(task)] {
            const double t0 = nowMs();
            try {
                stageSelect(task);
            } catch (...) {
                noteStage(t0);
                completeTask(task, std::current_exception());
                return;
            }
            noteStage(t0);
            // No crossing in this window: double it and loop the
            // pipeline back to stage 1, mirroring the serial
            // calibrateDevice() extension loop.
            if (task->selected)
                submitResynthesize(task);
            else
                submitSimulate(task);
        },
        TaskPriority::Background);
}

void
RecalibScheduler::submitResynthesize(std::shared_ptr<Task> task)
{
    pool_.submit(
        [this, task = std::move(task)] {
            const double t0 = nowMs();
            try {
                stageResynthesize(task);
            } catch (...) {
                noteStage(t0);
                completeTask(task, std::current_exception());
                return;
            }
            noteStage(t0);
            completeTask(task, nullptr);
        },
        TaskPriority::Background);
}

void
RecalibScheduler::stageSimulate(const std::shared_ptr<Task> &task)
{
    RecalibJob &job = task->job;
    QBASIS_TRACE_SCOPE(
        "recalib.simulate", "device",
        static_cast<uint64_t>(static_cast<uint32_t>(job.device_id)),
        "edge",
        static_cast<uint64_t>(static_cast<uint32_t>(job.edge_id)));
    faultPoint(kFaultRecalibSimulate,
               edgeFaultKey(job.device_id, job.edge_id));
    if (!task->sim) {
        task->sim = std::make_unique<PairSimulator>(
            job.params, job.device->couplerOmegaMax(),
            opts_.calib.sim);
        task->window_ns = opts_.calib.max_ns;
        task->cal = EdgeCalibration{};
        task->cal.edge_id = job.edge_id;
        task->cal.xi = job.xi;
        task->cal.omega_c0 = task->sim->omegaC0();
        task->cal.zz_residual = task->sim->zzResidual();
        task->cal.omega_d = task->sim->calibrateDriveFrequency(job.xi);
    } else {
        // Window extension re-entry.
        task->window_ns *= 2.0;
        ++task->extensions_used;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.window_extensions;
    }
    task->traj = task->sim->simulateTrajectory(
        job.xi, task->cal.omega_d, task->window_ns);
}

void
RecalibScheduler::stageSelect(const std::shared_ptr<Task> &task)
{
    QBASIS_TRACE_SCOPE("recalib.select", "device",
                       static_cast<uint64_t>(static_cast<uint32_t>(
                           task->job.device_id)),
                       "edge",
                       static_cast<uint64_t>(static_cast<uint32_t>(
                           task->job.edge_id)));
    faultPoint(kFaultRecalibSelect,
               edgeFaultKey(task->job.device_id, task->job.edge_id));
    const std::optional<SelectedBasisGate> sel = selectBasisGate(
        task->traj, task->job.criterion, opts_.calib.selector);
    if (sel) {
        task->cal.gate = *sel;
        task->selected = true;
        return;
    }
    if (task->extensions_used >= opts_.calib.max_extensions) {
        throw std::runtime_error(
            "recalibration: edge " + std::to_string(task->job.edge_id)
            + " of device " + std::to_string(task->job.device_id)
            + ": no basis gate satisfied criterion '"
            + criterionName(task->job.criterion) + "' within "
            + std::to_string(task->window_ns) + " ns");
    }
    task->selected = false;
}

void
RecalibScheduler::stageResynthesize(const std::shared_ptr<Task> &task)
{
    QBASIS_TRACE_SCOPE("recalib.resynth", "device",
                       static_cast<uint64_t>(static_cast<uint32_t>(
                           task->job.device_id)),
                       "edge",
                       static_cast<uint64_t>(static_cast<uint32_t>(
                           task->job.edge_id)));
    // Probe before any side effect: a firing probe must leave the
    // edge's published state untouched (no torn publish).
    faultPoint(kFaultRecalibResynth,
               edgeFaultKey(task->job.device_id, task->job.edge_id));
    EdgeCalibration &cal = task->cal;
    cal.calibrated_cycle = task->job.cycle;

    if (opts_.presynthesize) {
        // Warm the SWAP and CNOT classes of the new basis through
        // the shared cache's claim/publish protocol so the first
        // compile against the new basis pays no synthesis. Never
        // wait(): this runs on a pool worker, and a Pending class is
        // already being synthesized by its claim owner.
        const Mat4 targets[] = {swapGate(), cnotGate()};
        for (const Mat4 &target : targets) {
            const CanonicalKak kak = canonicalKakDecompose(target);
            const DecompositionCache::ClassKey key =
                DecompositionCache::classKey(kak.coords, cal.gate.gate,
                                             opts_.synth);
            const TwoQubitDecomposition *dec = nullptr;
            switch (cache_.acquire(key, task->job.device_id, 1,
                                   &dec)) {
            case SharedDecompositionCache::Claim::Owner: {
                // The guard abandons the claim if synthesis throws,
                // so a waiter re-claims instead of blocking forever.
                ClaimGuard guard(&cache_, key);
                cache_.publish(key,
                               synthesizeGate(
                                   DecompositionCache::classGate(key),
                                   cal.gate.gate, opts_.synth));
                guard.release();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.presynth_owned;
                }
                break;
            }
            case SharedDecompositionCache::Claim::Ready: {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.presynth_ready;
                break;
            }
            case SharedDecompositionCache::Claim::Pending: {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.presynth_pending;
                break;
            }
            }
        }
    }

    // Atomic swap: readers see the new edges[e]/bases[e] pair
    // together or not at all.
    EdgeBasis basis;
    basis.gate = cal.gate.gate;
    basis.duration_ns = cal.gate.duration_ns;
    basis.label = task->job.label;
    task->job.target->publishEdge(cal, basis);
    RecalibMetrics::instance().published.add();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.published;
    }
}

void
RecalibScheduler::completeTask(const std::shared_ptr<Task> &task,
                               std::exception_ptr error)
{
    const RecalibPolicy &policy = opts_.policy;
    const EdgeKey key{task->job.device_id, task->job.edge_id};
    std::shared_ptr<Task> next;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error && policy.contain_failures
            && task->retries_used < policy.max_stage_retries) {
            // Bounded retry: restart the whole pipeline on a fresh
            // Task (stage 1 is not re-entrant after a mid-stage
            // failure -- a half-built Task would wrongly take the
            // window-extension branch). The edge queue stays
            // `running`, so FIFO order is preserved.
            ++stats_.retries;
            RecalibMetrics::instance().retries.add();
            next = std::make_shared<Task>();
            next->job = task->job;
            next->retries_used = task->retries_used + 1;
        } else {
            ++stats_.completed;
            RecalibMetrics::instance().completed.add();
            uint64_t release_cycle = 0;
            bool quarantined = false;
            if (error) {
                if (policy.contain_failures) {
                    // Retry budget exhausted: quarantine the edge.
                    // Its device keeps serving the last-good basis;
                    // drain() does not fail.
                    ++stats_.contained_errors;
                    RecalibMetrics::instance().contained_errors.add();
                    Quarantine &quar = quarantine_[key];
                    quar.since_cycle = task->job.cycle;
                    quar.release_cycle =
                        task->job.cycle
                        + std::max<uint64_t>(1,
                                             policy.quarantine_cycles);
                    quar.failures +=
                        static_cast<uint64_t>(task->retries_used) + 1;
                    quar.error = describeError(error);
                    release_cycle = quar.release_cycle;
                    quarantined = true;
                    warn("RecalibScheduler: quarantined edge %d of "
                         "device %d until cycle %llu: %s",
                         task->job.edge_id, task->job.device_id,
                         static_cast<unsigned long long>(
                             release_cycle),
                         quar.error.c_str());
                } else {
                    errors_.emplace(
                        std::make_tuple(task->job.device_id,
                                        task->job.edge_id,
                                        task->job.cycle),
                        error);
                }
            }
            EdgeQueue &q = queues_[key];
            if (quarantined) {
                // Drop queued jobs inside the quarantine window; a
                // queued job at/after the release cycle lifts it.
                while (!q.pending.empty()
                       && q.pending.front().cycle < release_cycle) {
                    ++stats_.quarantine_skipped;
                    RecalibMetrics::instance().quarantine_skipped.add();
                    q.pending.pop_front();
                }
                if (!q.pending.empty())
                    quarantine_.erase(key);
            }
            if (!q.pending.empty()) {
                next = std::make_shared<Task>();
                next->job = std::move(q.pending.front());
                q.pending.pop_front();
            } else {
                q.running = false;
                if (--inflight_ == 0)
                    idle_cv_.notify_all();
            }
        }
    }
    if (next)
        submitSimulate(std::move(next));
}

void
RecalibScheduler::drain()
{
    std::exception_ptr first;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_cv_.wait(lock, [this] { return inflight_ == 0; });
        if (!errors_.empty()) {
            first = errors_.begin()->second;
            errors_.clear();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

RecalibScheduler::Stats
RecalibScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<EdgeQuarantine>
RecalibScheduler::quarantined() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<EdgeQuarantine> out;
    out.reserve(quarantine_.size());
    for (const auto &[key, quar] : quarantine_) {
        EdgeQuarantine e;
        e.device_id = key.first;
        e.edge_id = key.second;
        e.since_cycle = quar.since_cycle;
        e.release_cycle = quar.release_cycle;
        e.failures = quar.failures;
        e.error = quar.error;
        out.push_back(std::move(e));
    }
    return out;
}

void
RecalibScheduler::resetWindow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.window_start_ms = -1.0;
    stats_.window_end_ms = -1.0;
}

} // namespace qbasis
