#ifndef QBASIS_CALIB_ASYNC_RECALIB_SCHEDULER_HPP
#define QBASIS_CALIB_ASYNC_RECALIB_SCHEDULER_HPP

/**
 * @file
 * Asynchronous per-edge recalibration scheduler -- the paper's daily
 * "retuning" stage reorganized so a retuning edge never stalls fleet
 * compilation.
 *
 * Each drifted edge becomes a three-stage pipeline running on the
 * fleet's shared ThreadPool, entirely in the Background lane:
 *
 *   1. *simulate*  -- rebuild the unit-cell simulator on the drifted
 *      parameters, recalibrate the drive frequency, and integrate
 *      the Cartan trajectory (re-entered with a doubled window when
 *      no sample satisfies the criterion, exactly like the
 *      synchronous calibrateDevice() loop);
 *   2. *select*    -- first-intersection basis-gate selection on the
 *      sampled trajectory (core/selector);
 *   3. *resynthesize + publish* -- warm the SWAP/CNOT Weyl classes
 *      of the *new* basis through SharedDecompositionCache's
 *      claim/publish protocol (never wait(): pool workers must not
 *      block, and a Pending class is already being synthesized by
 *      its claim owner), then atomically swap the edge's
 *      EdgeCalibration into the device's VersionedBasisSet.
 *
 * Tasks for the same (device, edge) run in FIFO order -- cycle c+1
 * can be scheduled while cycle c is still in flight and will observe
 * its result -- while distinct edges recalibrate concurrently.
 *
 * Compilation never blocks on any of this: transpile passes snapshot
 * the versioned set and keep serving the last published basis; the
 * basis hash inside every cache key keeps decompositions against the
 * old and new basis coexisting. Barenco et al. universality is what
 * makes serving the stale basis sound -- it still realizes every
 * gate, just at yesterday's fidelity.
 *
 * Determinism: a recalibration outcome is a pure function of
 * (drifted parameters, options), drifted parameters are pure
 * functions of (seed, edge, cycle), and per-edge FIFO order fixes
 * the final published state -- so the post-drain calibration state
 * is bit-identical whether the cycle ran synchronously (schedule +
 * drain before compiling) or fully overlapped, at any shard or
 * thread count.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/recalib.hpp"

namespace qbasis {

/** One edge-recalibration request. */
struct RecalibJob
{
    const GridDevice *device = nullptr; ///< Owning device (outlives
                                        ///< the scheduler's tasks).
    VersionedBasisSet *target = nullptr; ///< Publish destination.
    int device_id = 0;
    int edge_id = 0;
    uint64_t cycle = 0;                 ///< Drift cycle index.
    PairDeviceParams params;            ///< Drifted unit cell.
    double xi = 0.04;
    SelectionCriterion criterion = SelectionCriterion::Criterion1;
    std::string label;                  ///< For the EdgeBasis table.
};

/**
 * Failure-domain policy: what happens when an edge's pipeline throws.
 *
 * Backoff is cycle-denominated, never wall-clock: a failed task is
 * retried immediately (bounded by max_stage_retries), and when the
 * retry budget is exhausted the edge is quarantined until a job
 * stamped `failure cycle + quarantine_cycles` arrives. The quarantined
 * edge keeps serving its last-good VersionedBasisSet -- Barenco
 * universality makes the stale basis sound, just at yesterday's
 * fidelity -- and per-edge staleness is surfaced via quarantined()
 * and the fleet's HealthReport.
 */
struct RecalibPolicy
{
    /** Contain pipeline failures (retry/quarantine). When false,
     *  failures propagate out of drain() exactly as before. */
    bool contain_failures = true;
    /** Whole-pipeline restarts of a failed task before the edge is
     *  quarantined (stage 1 is not re-entrant mid-failure, so a
     *  retry restarts the task from scratch). */
    int max_stage_retries = 2;
    /** Drift cycles a quarantined edge sits out; jobs stamped below
     *  `failure cycle + quarantine_cycles` are skipped (clamped to
     *  >= 1 so a quarantined edge never retries in-cycle). */
    uint64_t quarantine_cycles = 2;
};

/** One quarantined edge, as reported by quarantined(). */
struct EdgeQuarantine
{
    int device_id = 0;
    int edge_id = 0;
    uint64_t since_cycle = 0;   ///< Cycle whose task exhausted retries.
    uint64_t release_cycle = 0; ///< First cycle allowed to retune.
    /** Contained attempts (initial + retries) accumulated across
     *  every quarantine of this edge. */
    uint64_t failures = 0;
    std::string error; ///< Last contained error message.
    /** Cycles since the edge's basis was last published; filled by
     *  FleetDriver::cycleReport from the live snapshot (the
     *  scheduler itself does not track publish ages). */
    uint64_t stale_cycles = 0;
};

/** Options of the scheduler (shared by every job). */
struct RecalibSchedulerOptions
{
    DeviceCalibrationOptions calib; ///< Sim/selector/window settings.
    SynthOptions synth;             ///< For the class warm-up; must
                                    ///< match the fleet's compile
                                    ///< options to share cache lines.
    bool presynthesize = true;      ///< Run stage 3's class warm-up.
    RecalibPolicy policy;           ///< Retry/quarantine behavior.
};

/** Per-edge async recalibration pipeline on a borrowed pool. */
class RecalibScheduler
{
  public:
    /** Pool and cache must outlive the scheduler. */
    RecalibScheduler(ThreadPool &pool, SharedDecompositionCache &cache,
                     RecalibSchedulerOptions opts = {});

    /** Drains before destruction (swallows nothing: terminate-safe
     *  only when drain() was called; see ~RecalibScheduler()). */
    ~RecalibScheduler();

    RecalibScheduler(const RecalibScheduler &) = delete;
    RecalibScheduler &operator=(const RecalibScheduler &) = delete;

    /**
     * Enqueue one edge recalibration and return immediately. Jobs
     * for the same (device, edge) run in submission order; distinct
     * edges interleave freely.
     */
    void schedule(RecalibJob job);

    /**
     * Block until every scheduled job has completed, then rethrow
     * the first error in (device, edge, cycle) order, if any. Must
     * be called from a non-pool thread.
     */
    void drain();

    /** Pipeline accounting (all counters cumulative). */
    struct Stats
    {
        uint64_t scheduled = 0;
        uint64_t completed = 0;
        uint64_t published = 0;
        uint64_t window_extensions = 0;
        /** Stage-3 class warm-ups this scheduler synthesized /
         *  found published / found claimed by a concurrent owner. */
        uint64_t presynth_owned = 0;
        uint64_t presynth_ready = 0;
        uint64_t presynth_pending = 0;
        /** Failed tasks restarted under RecalibPolicy (one per
         *  whole-pipeline retry, not per stage). */
        uint64_t retries = 0;
        /** Tasks whose retry budget ran out and whose edge was
         *  quarantined instead of failing drain(). */
        uint64_t contained_errors = 0;
        /** Jobs dropped because their edge was quarantined and the
         *  job's cycle was below the release cycle. */
        uint64_t quarantine_skipped = 0;
        double busy_ms = 0.0; ///< Sum of stage execution times.
        /** Task-execution window since the scheduler epoch (or the
         *  last resetWindow()); <0 when no task ran yet. The bench
         *  intersects this with its compile window to measure the
         *  overlap ratio. */
        double window_start_ms = -1.0;
        double window_end_ms = -1.0;
    };

    Stats stats() const;

    /**
     * Currently quarantined edges, sorted by (device, edge) --
     * deterministic for a fixed fault seed. stale_cycles is zero
     * here; the fleet driver fills it from live snapshots.
     */
    std::vector<EdgeQuarantine> quarantined() const;

    /** Restart the stats window (per-cycle overlap measurements). */
    void resetWindow();

    /** Milliseconds since the scheduler epoch, on the same clock the
     *  stats window uses (bench-side timestamps). */
    double nowMs() const;

  private:
    struct Task; // One in-flight edge pipeline.

    using EdgeKey = std::pair<int, int>; // (device_id, edge_id)

    struct EdgeQueue
    {
        std::deque<RecalibJob> pending;
        bool running = false;
    };

    void submitSimulate(std::shared_ptr<Task> task);
    void submitSelect(std::shared_ptr<Task> task);
    void submitResynthesize(std::shared_ptr<Task> task);
    void stageSimulate(const std::shared_ptr<Task> &task);
    void stageSelect(const std::shared_ptr<Task> &task);
    void stageResynthesize(const std::shared_ptr<Task> &task);
    void completeTask(const std::shared_ptr<Task> &task,
                      std::exception_ptr error);
    void noteStage(double t0_ms);

    ThreadPool &pool_;
    SharedDecompositionCache &cache_;
    RecalibSchedulerOptions opts_;
    std::chrono::steady_clock::time_point epoch_;

    /** Quarantine record of one edge (map key carries the ids). */
    struct Quarantine
    {
        uint64_t since_cycle = 0;
        uint64_t release_cycle = 0;
        uint64_t failures = 0;
        std::string error;
    };

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    std::map<EdgeKey, EdgeQueue> queues_;
    std::map<EdgeKey, Quarantine> quarantine_;
    size_t inflight_ = 0; ///< Edges with a running pipeline.
    std::map<std::tuple<int, int, uint64_t>, std::exception_ptr>
        errors_;
    Stats stats_;
};

} // namespace qbasis

#endif // QBASIS_CALIB_ASYNC_RECALIB_SCHEDULER_HPP
