#ifndef QBASIS_CALIB_GST_HPP
#define QBASIS_CALIB_GST_HPP

/**
 * @file
 * Gate-set-tomography stand-in (paper Section VI).
 *
 * Real GST reconstructs the full gate set self-consistently and
 * reaches far better accuracy than QPT at the cost of hours of
 * classical processing. This module models GST as an unbiased
 * estimator with a configurable (small) error floor, preserving the
 * protocol's decision structure -- QPT narrows the candidate list,
 * GST delivers the precise unitary used for compilation. DESIGN.md
 * section 4 documents this substitution.
 */

#include "linalg/mat4.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Options of the simulated GST characterization. */
struct GstOptions
{
    double error_floor = 1e-4; ///< Entry-wise perturbation scale.
};

/** Simulated GST estimate of a gate unitary. */
Mat4 simulateGst(const Mat4 &true_gate, const GstOptions &opts,
                 Rng &rng);

} // namespace qbasis

#endif // QBASIS_CALIB_GST_HPP
