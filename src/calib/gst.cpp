#include "calib/gst.hpp"

#include "linalg/polar.hpp"

namespace qbasis {

Mat4
simulateGst(const Mat4 &true_gate, const GstOptions &opts, Rng &rng)
{
    Mat4 noisy = true_gate;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            noisy(i, j) += Complex(rng.normal(0.0, opts.error_floor),
                                   rng.normal(0.0, opts.error_floor));
        }
    return nearestUnitary4(noisy);
}

} // namespace qbasis
