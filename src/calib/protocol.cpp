#include "calib/protocol.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "weyl/cartan.hpp"

namespace qbasis {

TuneupResult
initialTuneup(const PairSimulator &sim, const CoordsPredicate &criterion,
              const TuneupOptions &opts, Rng &rng)
{
    TuneupResult result;
    result.xi = opts.xi;

    // Step 1: coarse amplitude/frequency calibration.
    result.omega_d = sim.calibrateDriveFrequency(opts.xi);

    // Step 2: QPT along the trajectory at controller resolution.
    const Trajectory true_traj =
        sim.simulateTrajectory(opts.xi, result.omega_d, opts.max_ns);
    for (const TrajectoryPoint &pt : true_traj.points()) {
        TrajectoryPoint measured = pt;
        const QptResult qpt = simulateQpt(pt.unitary, opts.qpt, rng);
        measured.unitary = qpt.estimate;
        measured.coords = cartanCoords(qpt.estimate);
        result.measured.append(std::move(measured));
    }

    // Step 3: candidate filtering on the (imprecise) QPT coordinates.
    const auto first = result.measured.firstIndexWhere(
        [&](const TrajectoryPoint &pt) {
            return pt.duration > 0.0 && criterion(pt.coords);
        });
    if (!first) {
        warn("initial tuneup: no trajectory point satisfied the "
             "criterion within %.1f ns", opts.max_ns);
        return result;
    }
    const size_t lo =
        *first >= static_cast<size_t>(opts.candidate_halo)
            ? *first - opts.candidate_halo
            : 1;
    const size_t hi = std::min(result.measured.size() - 1,
                               *first + opts.candidate_halo);
    for (size_t i = lo; i <= hi; ++i)
        result.candidates.push_back(i);

    // Step 4: GST on each candidate; pick the fastest one whose
    // precise coordinates satisfy the criterion.
    for (size_t idx : result.candidates) {
        const Mat4 precise =
            simulateGst(true_traj.at(idx).unitary, opts.gst, rng);
        if (criterion(cartanCoords(precise))) {
            result.chosen = idx;
            result.gate = precise;
            result.duration_ns = true_traj.at(idx).duration;
            result.success = true;
            return result;
        }
    }
    warn("initial tuneup: no GST candidate satisfied the criterion");
    return result;
}

RetuneResult
retune(const PairSimulator &drifted_sim, const TuneupResult &previous,
       const GstOptions &gst, Rng &rng)
{
    RetuneResult result;
    if (!previous.success) {
        // Status-carrying failure instead of fatal(): the async
        // scheduler's retry/quarantine path owns the decision of
        // what a dead edge means for the fleet.
        result.error = "retune requires a successful initial tuneup";
        return result;
    }
    result.success = true;
    result.duration_ns = previous.duration_ns;

    // Quick frequency recalibration at the tuneup's amplitude; the
    // initial tuneup's duration is reused.
    result.omega_d =
        drifted_sim.calibrateDriveFrequency(previous.xi);

    const Trajectory short_traj = drifted_sim.simulateTrajectory(
        previous.xi, result.omega_d, previous.duration_ns + 1.0);
    const size_t idx = short_traj.size() - 1;
    result.gate =
        simulateGst(short_traj.at(idx).unitary, gst, rng);
    result.gate_shift = traceInfidelity(result.gate, previous.gate);
    return result;
}

} // namespace qbasis
