#ifndef QBASIS_CALIB_DRIFT_HPP
#define QBASIS_CALIB_DRIFT_HPP

/**
 * @file
 * Slow device-parameter drift between calibration cycles: qubit
 * frequencies and couplings wander by a small relative amount,
 * motivating the daily "retuning" stage of the paper's protocol.
 */

#include "sim/hamiltonian.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Drift magnitudes (relative standard deviations). */
struct DriftModel
{
    double freq_rel = 2e-5;     ///< Qubit frequency drift.
    double coupling_rel = 1e-3; ///< Coupling strength drift.
};

/** Sample a drifted copy of the unit-cell parameters. */
PairDeviceParams driftParams(const PairDeviceParams &params,
                             const DriftModel &model, Rng &rng);

} // namespace qbasis

#endif // QBASIS_CALIB_DRIFT_HPP
