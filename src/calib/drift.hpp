#ifndef QBASIS_CALIB_DRIFT_HPP
#define QBASIS_CALIB_DRIFT_HPP

/**
 * @file
 * Slow device-parameter drift between calibration cycles: qubit
 * frequencies and couplings wander by a small relative amount,
 * motivating the daily "retuning" stage of the paper's protocol.
 *
 * Cycle-resolved drift is organized as *per-edge streams*: the
 * parameters of edge e at cycle c are a pure function of
 * (base parameters, drift model, base seed, e, c), obtained by
 * folding one splitmix-derived draw per cycle. Streams of different
 * edges are statistically independent and -- crucially for the async
 * recalibration subsystem -- independent of shard layout, task
 * scheduling, and of which other edges drift in a given cycle, so a
 * fixed-seed drift cycle reproduces bit-identically whether it is
 * replayed serially or fully overlapped with compilation.
 */

#include <cstdint>
#include <vector>

#include "sim/hamiltonian.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Drift magnitudes (relative standard deviations). */
struct DriftModel
{
    double freq_rel = 2e-5;     ///< Qubit frequency drift.
    double coupling_rel = 1e-3; ///< Coupling strength drift.
};

/** Sample a drifted copy of the unit-cell parameters. */
PairDeviceParams driftParams(const PairDeviceParams &params,
                             const DriftModel &model, Rng &rng);

/**
 * Per-edge drift stream: parameters of edge `edge` after `cycles`
 * drift cycles from `base` (cycles = 0 returns `base` unchanged).
 * Each cycle folds one deterministic draw from a per-(edge, cycle)
 * derived stream (a fixed stream tag is mixed in first so these
 * draws can never collide with DriftCycle's retune-decision draws),
 * so the result depends only on (base, model, seed, edge, cycles).
 */
PairDeviceParams driftParamsAt(const PairDeviceParams &base,
                               const DriftModel &model, uint64_t seed,
                               int edge, uint64_t cycles);

/** Options of the cycle driver. */
struct DriftCycleOptions
{
    DriftModel model;
    /**
     * Fraction of edges whose drift crosses the retune threshold in
     * any one cycle. Whether edge e retunes in cycle c is an
     * independent deterministic draw (its *parameter* stream advances
     * every cycle regardless, so the retune decision never perturbs
     * the drift trajectory).
     */
    double recalibrate_fraction = 1.0;
    uint64_t seed = 2022; ///< Base seed of every per-edge stream.
    /**
     * Recommend a cache-retirement epoch sweep every N cycles
     * (0 = never). Surfaced as Step::retire_cache; serving loops
     * react by calling FleetDriver::retireCache() after the cycle's
     * drain and before any snapshot write, so persisted caches never
     * accumulate classes of drifted-away bases unboundedly.
     */
    uint64_t retire_period = 0;
};

/**
 * Deterministic drift-cycle driver for one device: advances all
 * per-edge drift streams in lockstep and reports which edges drifted
 * past the retune threshold each cycle.
 */
class DriftCycle
{
  public:
    DriftCycle(int n_edges, DriftCycleOptions opts = {});

    /** One advance() outcome. */
    struct Step
    {
        uint64_t cycle = 0; ///< 1-based cycle index.
        std::vector<int> drifted_edges; ///< Edges to recalibrate.
        /** True when this cycle hits the retire_period cadence: run
         *  the cache-retirement sweep after the cycle's drain. */
        bool retire_cache = false;
    };

    /** Advance one cycle; returns the edges that need retuning. */
    Step advance();

    /** Cycles advanced so far. */
    uint64_t cycle() const { return cycle_; }

    /**
     * Parameters of `edge` at cycle `cycle` given its base (cycle-0)
     * parameters. Pure function of the constructor seed -- callable
     * from any thread, in any order.
     */
    PairDeviceParams paramsAt(const PairDeviceParams &base, int edge,
                              uint64_t cycle) const;

    const DriftCycleOptions &options() const { return opts_; }

  private:
    int n_edges_;
    DriftCycleOptions opts_;
    uint64_t cycle_ = 0;
};

} // namespace qbasis

#endif // QBASIS_CALIB_DRIFT_HPP
