#ifndef QBASIS_CALIB_QPT_HPP
#define QBASIS_CALIB_QPT_HPP

/**
 * @file
 * Simulated two-qubit quantum process tomography (paper Section VI,
 * initial-tuneup step 2).
 *
 * A full linear-inversion QPT is simulated: 16 informationally
 * complete product inputs, shot-sampled Pauli expectation values,
 * Pauli-transfer-matrix reconstruction, Choi-matrix extraction, and
 * a closest-unitary fit from the dominant Choi eigenvector. SPAM
 * imperfection is modeled as depolarizing mixing on preparation and
 * measurement, which (as the paper notes) QPT cannot separate from
 * the gate -- it raises the estimation noise floor.
 */

#include "linalg/mat4.hpp"
#include "util/rng.hpp"

namespace qbasis {

/** Options of the simulated tomography experiment. */
struct QptOptions
{
    int shots = 2000;        ///< Shots per (input, observable) pair;
                             ///< 0 means exact expectation values.
    double spam_error = 0.0; ///< Depolarizing SPAM strength [0, 1).
};

/** Result of one QPT experiment. */
struct QptResult
{
    Mat4 estimate;          ///< Closest-unitary gate estimate.
    double choi_purity = 0.0; ///< Dominant Choi eigenvalue (1 = pure).
};

/** Run simulated QPT of a (true) gate unitary. */
QptResult simulateQpt(const Mat4 &true_gate, const QptOptions &opts,
                      Rng &rng);

} // namespace qbasis

#endif // QBASIS_CALIB_QPT_HPP
