#ifndef QBASIS_CALIB_PROTOCOL_HPP
#define QBASIS_CALIB_PROTOCOL_HPP

/**
 * @file
 * The paper's two-stage calibration protocol (Section VI):
 *
 * Initial tuneup:
 *  1. coarse amplitude/frequency calibration of the entangling pulse
 *     (population-swap maximization),
 *  2. QPT of each trajectory point at controller resolution,
 *  3. candidate filtering with the Section V criteria on the noisy
 *     QPT coordinates (QPT imprecision keeps a small halo of
 *     candidates),
 *  4. GST on each candidate for the precise unitary; the final basis
 *     gate is the fastest candidate that (precisely) satisfies the
 *     criterion.
 *
 * Retuning: re-run the coarse frequency calibration and refresh the
 * gate unitary with GST at the previously chosen duration.
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "calib/gst.hpp"
#include "calib/qpt.hpp"
#include "sim/propagator.hpp"
#include "weyl/trajectory.hpp"

namespace qbasis {

/** Predicate on canonical Cartan coordinates (selection criterion). */
using CoordsPredicate = std::function<bool(const CartanCoords &)>;

/** Options of the initial tuneup. */
struct TuneupOptions
{
    double xi = 0.04;        ///< Entangling pulse amplitude.
    double max_ns = 30.0;    ///< Trajectory window to characterize.
    QptOptions qpt;          ///< Tomography settings.
    GstOptions gst;          ///< Refinement settings.
    int candidate_halo = 2;  ///< Extra candidates around the first
                             ///< (QPT imprecision margin).
};

/** Result of the initial tuneup. */
struct TuneupResult
{
    double xi = 0.0;         ///< Amplitude the tuneup ran at.
    double omega_d = 0.0;    ///< Calibrated drive frequency.
    Trajectory measured;     ///< QPT-estimated trajectory.
    std::vector<size_t> candidates; ///< Indices passed to GST.
    size_t chosen = 0;       ///< Final selected index.
    double duration_ns = 0.0; ///< Basis gate duration.
    Mat4 gate;               ///< GST-refined basis gate unitary.
    bool success = false;    ///< Whether a gate satisfied the
                             ///< criterion.
};

/** Run the initial tuneup on a simulated pair. */
TuneupResult initialTuneup(const PairSimulator &sim,
                           const CoordsPredicate &criterion,
                           const TuneupOptions &opts, Rng &rng);

/** Result of the quick retuning stage. */
struct RetuneResult
{
    /** False when the retune could not run (e.g. the previous
     *  tuneup had failed); all other fields are then defaulted. */
    bool success = false;
    std::string error;      ///< Why success is false (diagnostics).
    double omega_d = 0.0;   ///< Refreshed drive frequency.
    Mat4 gate;              ///< Refreshed gate unitary.
    double duration_ns = 0.0; ///< Unchanged from the tuneup.
    double gate_shift = 0.0; ///< Trace infidelity between old and
                            ///< new gate (how much drift moved it).
};

/**
 * Retune on a (possibly drifted) simulator using the previous
 * tuneup's duration; only the coarse frequency calibration and a
 * GST refresh are repeated (1-5 minutes on hardware vs. the hour-
 * scale initial tuneup).
 *
 * A retune against an unsuccessful previous tuneup returns a failed
 * (status-carrying) result rather than aborting, so schedulers can
 * route it through their retry/quarantine path.
 */
RetuneResult retune(const PairSimulator &drifted_sim,
                    const TuneupResult &previous,
                    const GstOptions &gst, Rng &rng);

} // namespace qbasis

#endif // QBASIS_CALIB_PROTOCOL_HPP
