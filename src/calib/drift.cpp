#include "calib/drift.hpp"

namespace qbasis {

PairDeviceParams
driftParams(const PairDeviceParams &params, const DriftModel &model,
            Rng &rng)
{
    PairDeviceParams d = params;
    d.qubit_a.omega *= 1.0 + rng.normal(0.0, model.freq_rel);
    d.qubit_b.omega *= 1.0 + rng.normal(0.0, model.freq_rel);
    d.g_ac *= 1.0 + rng.normal(0.0, model.coupling_rel);
    d.g_bc *= 1.0 + rng.normal(0.0, model.coupling_rel);
    d.g_ab *= 1.0 + rng.normal(0.0, model.coupling_rel);
    return d;
}

} // namespace qbasis
