#include "calib/drift.hpp"

#include "util/logging.hpp"

namespace qbasis {

namespace {

/** Distinct stream tags so the "how it drifts" draws and the "does
 *  it retune" draws of one (seed, edge, cycle) never collide. */
constexpr uint64_t kParamStreamTag = 0x00d21f7ull;
constexpr uint64_t kRetuneStreamTag = 0x0027e7e1ull;

} // namespace

PairDeviceParams
driftParams(const PairDeviceParams &params, const DriftModel &model,
            Rng &rng)
{
    PairDeviceParams d = params;
    d.qubit_a.omega *= 1.0 + rng.normal(0.0, model.freq_rel);
    d.qubit_b.omega *= 1.0 + rng.normal(0.0, model.freq_rel);
    d.g_ac *= 1.0 + rng.normal(0.0, model.coupling_rel);
    d.g_bc *= 1.0 + rng.normal(0.0, model.coupling_rel);
    d.g_ab *= 1.0 + rng.normal(0.0, model.coupling_rel);
    return d;
}

PairDeviceParams
driftParamsAt(const PairDeviceParams &base, const DriftModel &model,
              uint64_t seed, int edge, uint64_t cycles)
{
    // Fold one independent draw per cycle. Each cycle's draw comes
    // from its own derived stream (not a shared walking Rng), so
    // paramsAt(c) can be recomputed from scratch by any thread and
    // always lands on the same bytes.
    const uint64_t edge_seed = Rng::deriveSeed(
        Rng::deriveSeed(seed, kParamStreamTag),
        static_cast<uint64_t>(edge));
    PairDeviceParams p = base;
    for (uint64_t c = 1; c <= cycles; ++c) {
        Rng rng(Rng::deriveSeed(edge_seed, c));
        p = driftParams(p, model, rng);
    }
    return p;
}

DriftCycle::DriftCycle(int n_edges, DriftCycleOptions opts)
    : n_edges_(n_edges), opts_(opts)
{
    if (n_edges < 0)
        fatal("DriftCycle: negative edge count %d", n_edges);
}

DriftCycle::Step
DriftCycle::advance()
{
    ++cycle_;
    Step step;
    step.cycle = cycle_;
    step.retire_cache = opts_.retire_period > 0
                        && cycle_ % opts_.retire_period == 0;
    step.drifted_edges.reserve(static_cast<size_t>(n_edges_));
    const uint64_t retune_seed =
        Rng::deriveSeed(opts_.seed, kRetuneStreamTag);
    for (int e = 0; e < n_edges_; ++e) {
        // Independent per-(edge, cycle) draw: the retune set of one
        // cycle is the same no matter how many devices share the
        // driver pattern or how work was sharded.
        Rng rng(Rng::deriveSeed(
            Rng::deriveSeed(retune_seed, static_cast<uint64_t>(e)),
            cycle_));
        if (rng.uniform() < opts_.recalibrate_fraction)
            step.drifted_edges.push_back(e);
    }
    return step;
}

PairDeviceParams
DriftCycle::paramsAt(const PairDeviceParams &base, int edge,
                     uint64_t cycle) const
{
    return driftParamsAt(base, opts_.model, opts_.seed, edge, cycle);
}

} // namespace qbasis
