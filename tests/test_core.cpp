/**
 * @file
 * Tests for the core library: criteria, trajectory selection, and
 * the end-to-end device experiment on a small grid (calibrate ->
 * summarize -> compile-and-score).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/bv.hpp"
#include "apps/qft.hpp"
#include "core/criteria.hpp"
#include "core/experiment.hpp"
#include "core/selector.hpp"
#include "serve/api.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

TEST(Criteria, NamedPoints)
{
    using SC = SelectionCriterion;
    // sqiSW satisfies both paper criteria.
    EXPECT_TRUE(criterionSatisfied(SC::Criterion1, coords::sqrtIswap()));
    EXPECT_TRUE(criterionSatisfied(SC::Criterion2, coords::sqrtIswap()));
    // CNOT: SWAP-3 yes, CNOT-2 yes.
    EXPECT_TRUE(criterionSatisfied(SC::Criterion2, coords::cnot()));
    // Identity: nothing.
    EXPECT_FALSE(
        criterionSatisfied(SC::Criterion1, coords::identity0()));
    EXPECT_FALSE(
        criterionSatisfied(SC::PerfectEntangler, coords::identity0()));
    // SWAP: PE no; SWAP-1 means Criterion1 holds trivially.
    EXPECT_TRUE(criterionSatisfied(SC::Criterion1, coords::swap()));
    EXPECT_FALSE(
        criterionSatisfied(SC::PerfectEntangler, coords::swap()));
    // B gate: everything.
    EXPECT_TRUE(criterionSatisfied(SC::Criterion2, coords::bGate()));
    EXPECT_TRUE(criterionSatisfied(SC::PeAndSwap3, coords::bGate()));
}

TEST(Criteria, NamesDistinct)
{
    EXPECT_NE(criterionName(SelectionCriterion::Criterion1),
              criterionName(SelectionCriterion::Criterion2));
}

Trajectory
syntheticXyTrajectory(double speed_per_ns, double tz_slope = 0.0,
                      double max_ns = 80.0)
{
    Trajectory tr;
    for (double t = 0.0; t <= max_ns; t += 1.0) {
        TrajectoryPoint p;
        p.duration = t;
        const double s = speed_per_ns * t;
        p.coords = canonicalize({s, s, tz_slope * t});
        p.unitary =
            canonicalGate(p.coords.tx, p.coords.ty, p.coords.tz);
        tr.append(std::move(p));
    }
    return tr;
}

TEST(Selector, PicksFirstCrossingOnXy)
{
    // XY trajectory at 0.005/ns reaches sqiSW (tx = 0.25) at 50 ns.
    const Trajectory tr = syntheticXyTrajectory(0.005);
    const auto sel =
        selectBasisGate(tr, SelectionCriterion::Criterion1);
    ASSERT_TRUE(sel.has_value());
    EXPECT_NEAR(sel->duration_ns, 50.0, 1.0);
    EXPECT_NEAR(sel->coords.tx, 0.25, 0.01);
    // Continuous crossing agrees with the sampled one within 1 ns.
    EXPECT_NEAR(sel->continuous_crossing_ns, 50.0, 1.0);
}

TEST(Selector, Criterion2OnDeviatedTrajectory)
{
    // With a ZZ component the Criterion-2 crossing comes slightly
    // later than Criterion 1 (the paper's 10.15 vs 10.76 pattern).
    const Trajectory tr = syntheticXyTrajectory(0.01, 0.002, 60.0);
    const auto c1 =
        selectBasisGate(tr, SelectionCriterion::Criterion1);
    const auto c2 =
        selectBasisGate(tr, SelectionCriterion::Criterion2);
    ASSERT_TRUE(c1.has_value());
    ASSERT_TRUE(c2.has_value());
    EXPECT_LE(c1->duration_ns, c2->duration_ns);
}

TEST(Selector, PerfectEntanglerCriterion)
{
    const Trajectory tr = syntheticXyTrajectory(0.005);
    const auto pe =
        selectBasisGate(tr, SelectionCriterion::PerfectEntangler);
    ASSERT_TRUE(pe.has_value());
    // On XY the first PE is sqiSW as well.
    EXPECT_NEAR(pe->duration_ns, 50.0, 1.5);
}

TEST(Selector, EmptyWhenNeverCrossing)
{
    const Trajectory tr = syntheticXyTrajectory(0.001, 0.0, 40.0);
    EXPECT_FALSE(
        selectBasisGate(tr, SelectionCriterion::Criterion1)
            .has_value());
}

TEST(Selector, LeakageGateRejectsNoisySamples)
{
    Trajectory tr;
    for (double t = 0.0; t <= 60.0; t += 1.0) {
        TrajectoryPoint p;
        p.duration = t;
        const double s = 0.005 * t;
        p.coords = canonicalize({s, s, 0.0});
        p.unitary =
            canonicalGate(p.coords.tx, p.coords.ty, p.coords.tz);
        p.leakage = (t < 55.0) ? 0.5 : 0.0; // early samples leak
        tr.append(std::move(p));
    }
    SelectorOptions opts;
    opts.max_leakage = 0.1;
    const auto sel =
        selectBasisGate(tr, SelectionCriterion::Criterion1, opts);
    ASSERT_TRUE(sel.has_value());
    EXPECT_GE(sel->duration_ns, 55.0);
}

// --- End-to-end experiment on a small device -----------------------

class SmallDeviceExperiment : public ::testing::Test
{
  protected:
    static GridDeviceParams
    smallParams()
    {
        GridDeviceParams p;
        p.rows = 2;
        p.cols = 2;
        p.seed = 11;
        return p;
    }

    static const GridDevice &
    device()
    {
        static const GridDevice dev{smallParams()};
        return dev;
    }

    static const CalibratedBasisSet &
    nonstandardSet()
    {
        static const CalibratedBasisSet set = calibrateDevice(
            device(), 0.04, SelectionCriterion::Criterion1, "ns-c1");
        return set;
    }

    static const CalibratedBasisSet &
    baselineSet()
    {
        DeviceCalibrationOptions opts;
        opts.max_ns = 120.0;
        static const CalibratedBasisSet set =
            calibrateDevice(device(), 0.005,
                            SelectionCriterion::Criterion1,
                            "baseline", opts);
        return set;
    }
};

TEST_F(SmallDeviceExperiment, CalibratesEveryEdge)
{
    const CalibratedBasisSet &set = nonstandardSet();
    ASSERT_EQ(set.edges.size(), device().coupling().edges().size());
    for (const EdgeCalibration &cal : set.edges) {
        EXPECT_GT(cal.gate.duration_ns, 2.0);
        EXPECT_LT(cal.gate.duration_ns, 40.0);
        EXPECT_LT(cal.zz_residual, 1e-7);
        EXPECT_TRUE(criterionSatisfied(SelectionCriterion::Criterion1,
                                       cal.gate.coords));
        EXPECT_TRUE(cal.gate.gate.isUnitary(1e-8));
    }
}

TEST_F(SmallDeviceExperiment, HeterogeneousGates)
{
    // Each pair gets its own gate: durations and coordinates differ
    // across edges (frequencies are sampled per qubit).
    const CalibratedBasisSet &set = nonstandardSet();
    bool any_different = false;
    for (size_t i = 1; i < set.edges.size(); ++i) {
        if (std::abs(set.edges[i].gate.duration_ns
                     - set.edges[0].gate.duration_ns) > 0.5
            || set.edges[i].gate.coords.distance(
                   set.edges[0].gate.coords)
                   > 1e-3) {
            any_different = true;
        }
    }
    EXPECT_TRUE(any_different);
}

TEST_F(SmallDeviceExperiment, NonstandardFasterThanBaseline)
{
    // The 8x amplitude ratio should produce roughly 8x faster basis
    // gates (speed linear in xi).
    const CalibratedBasisSet &fast = nonstandardSet();
    const CalibratedBasisSet &slow = baselineSet();
    double fast_avg = 0.0, slow_avg = 0.0;
    for (size_t i = 0; i < fast.edges.size(); ++i) {
        fast_avg += fast.edges[i].gate.duration_ns;
        slow_avg += slow.edges[i].gate.duration_ns;
    }
    fast_avg /= fast.edges.size();
    slow_avg /= slow.edges.size();
    EXPECT_GT(slow_avg / fast_avg, 5.0);
    EXPECT_LT(slow_avg / fast_avg, 12.0);
}

TEST_F(SmallDeviceExperiment, SummaryMatchesPaperShapes)
{
    DecompositionCache cache;
    const SynthOptions synth;
    const GateSetSummary ns = summarizeGateSet(
        device(), nonstandardSet(), cache, synth, 20.0, 80e3);
    DecompositionCache cache2;
    const GateSetSummary base = summarizeGateSet(
        device(), baselineSet(), cache2, synth, 20.0, 80e3);

    // SWAP in 3 layers on both sets; durations follow the paper's
    // model n*t2q + (n+1)*t1q.
    EXPECT_NEAR(ns.avg_swap_layers, 3.0, 0.01);
    EXPECT_NEAR(base.avg_swap_layers, 3.0, 0.01);
    EXPECT_NEAR(ns.avg_swap_ns,
                3.0 * ns.avg_basis_ns + 4.0 * 20.0, 1.0);
    // Fidelity ordering: nonstandard wins everywhere.
    EXPECT_GT(ns.avg_basis_fidelity, base.avg_basis_fidelity);
    EXPECT_GT(ns.avg_swap_fidelity, base.avg_swap_fidelity);
    EXPECT_GT(ns.avg_cnot_fidelity, base.avg_cnot_fidelity);
    // 1Q share: ~24% for baseline, ~70+% for nonstandard
    // (Section VIII-D).
    EXPECT_LT(base.one_q_share_swap, 0.35);
    EXPECT_GT(ns.one_q_share_swap, 0.55);
    // Decomposition errors negligible.
    EXPECT_LT(ns.max_decomposition_infidelity, 1e-6);
}

TEST_F(SmallDeviceExperiment, CompiledCircuitFidelityOrdering)
{
    DecompositionCache cache_ns, cache_base;
    const Circuit bench = bvAllOnesCircuit(4);
    const CompileRequest req(1, 0, "bv4", bench);

    const CompileResponse resp_ns = runCompile(
        device(), nonstandardSet(), SynthRoute::local(&cache_ns), req);
    const CompileResponse resp_base = runCompile(
        device(), baselineSet(), SynthRoute::local(&cache_base), req);
    ASSERT_EQ(resp_ns.status, CompileStatus::Ok);
    ASSERT_EQ(resp_base.status, CompileStatus::Ok);
    const CompiledCircuitResult &ns = resp_ns.result;
    const CompiledCircuitResult &base = resp_base.result;

    EXPECT_GT(ns.fidelity, base.fidelity);
    EXPECT_LT(ns.makespan_ns, base.makespan_ns);
    EXPECT_GT(ns.fidelity, 0.9);
    EXPECT_GT(base.fidelity, 0.5);
    EXPECT_GT(ns.two_qubit_gates, 0u);
}

TEST_F(SmallDeviceExperiment, FastModeReplicatesEdges)
{
    DeviceCalibrationOptions opts;
    opts.edge_limit = 1;
    const CalibratedBasisSet set =
        calibrateDevice(device(), 0.04,
                        SelectionCriterion::Criterion1, "fast", opts);
    ASSERT_EQ(set.bases.size(), device().coupling().edges().size());
    for (size_t i = 1; i < set.bases.size(); ++i) {
        EXPECT_DOUBLE_EQ(set.bases[i].duration_ns,
                         set.bases[0].duration_ns);
    }
}

} // namespace
} // namespace qbasis
