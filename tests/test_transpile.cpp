/**
 * @file
 * Tests for the transpiler: coupling maps, SABRE routing validity and
 * semantic equivalence, layout, 1Q merging, basis translation onto
 * per-edge (including nonstandard) basis gates, and the full
 * pipeline.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/qft.hpp"
#include "circuit/schedule.hpp"
#include "circuit/unitary.hpp"
#include "linalg/random.hpp"
#include "transpile/merge_1q.hpp"
#include "transpile/pipeline.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

TEST(CouplingMap, GridStructure)
{
    const CouplingMap cm = CouplingMap::grid(3, 4);
    EXPECT_EQ(cm.numQubits(), 12);
    // Grid edges: 3*3 horizontal... rows*(cols-1) + (rows-1)*cols.
    EXPECT_EQ(cm.edges().size(), 3u * 3u + 2u * 4u);
    EXPECT_TRUE(cm.connected(0, 1));
    EXPECT_TRUE(cm.connected(0, 4));
    EXPECT_FALSE(cm.connected(0, 5));
    EXPECT_TRUE(cm.isConnected());
}

TEST(CouplingMap, Distances)
{
    const CouplingMap cm = CouplingMap::grid(3, 3);
    EXPECT_EQ(cm.distance(0, 0), 0);
    EXPECT_EQ(cm.distance(0, 8), 4); // corner to corner
    EXPECT_EQ(cm.distance(0, 4), 2);
    const CouplingMap line = CouplingMap::line(5);
    EXPECT_EQ(line.distance(0, 4), 4);
    const CouplingMap ring = CouplingMap::ring(6);
    EXPECT_EQ(ring.distance(0, 5), 1);
    EXPECT_EQ(ring.distance(0, 3), 3);
}

TEST(CouplingMap, EdgeIds)
{
    const CouplingMap cm = CouplingMap::line(4);
    EXPECT_GE(cm.edgeId(0, 1), 0);
    EXPECT_EQ(cm.edgeId(0, 1), cm.edgeId(1, 0));
    EXPECT_EQ(cm.edgeId(0, 2), -1);
    EXPECT_EQ(cm.edgeId(0, 99), -1);
}

TEST(CouplingMap, RejectsBadEdges)
{
    EXPECT_THROW(CouplingMap(3, {{0, 0}}), std::runtime_error);
    EXPECT_THROW(CouplingMap(3, {{0, 7}}), std::runtime_error);
}

TEST(Routing, AlreadyRoutedCircuitUnchanged)
{
    const CouplingMap cm = CouplingMap::line(3);
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    const RoutedCircuit r = sabreRoute(c, cm, trivialLayout(3));
    EXPECT_EQ(r.swaps_inserted, 0u);
    EXPECT_EQ(r.circuit.size(), c.size());
}

TEST(Routing, InsertsSwapsForDistantPairs)
{
    const CouplingMap cm = CouplingMap::line(4);
    Circuit c(4);
    c.cx(0, 3);
    const RoutedCircuit r = sabreRoute(c, cm, trivialLayout(4));
    EXPECT_GE(r.swaps_inserted, 2u);
    for (const Gate &g : r.circuit.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(cm.connected(g.qubits[0], g.qubits[1]));
        }
    }
}

TEST(Routing, PreservesSemantics)
{
    // Random logical circuits on a line device; the routed circuit
    // must equal the original up to the final qubit permutation.
    Rng rng(7);
    for (int trial = 0; trial < 5; ++trial) {
        const int n = 4;
        Circuit c(n);
        for (int i = 0; i < 12; ++i) {
            const int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            while (b == a)
                b = static_cast<int>(rng.uniformInt(n));
            switch (rng.uniformInt(3)) {
              case 0: c.h(a); break;
              case 1: c.cx(a, b); break;
              default: c.cphase(a, b, rng.uniform(0, kPi)); break;
            }
        }
        const CouplingMap cm = CouplingMap::line(n);
        const RoutedCircuit r = sabreRoute(c, cm, trivialLayout(n));
        // logical qubit l sits on wire final_layout[l].
        EXPECT_TRUE(circuitsEquivalentUpToPermutation(
            c, r.circuit, r.final_layout))
            << "trial " << trial;
    }
}

TEST(Routing, GridSemantics)
{
    Rng rng(8);
    const CouplingMap cm = CouplingMap::grid(2, 3);
    Circuit c(6);
    for (int i = 0; i < 15; ++i) {
        const int a = static_cast<int>(rng.uniformInt(6));
        int b = static_cast<int>(rng.uniformInt(6));
        while (b == a)
            b = static_cast<int>(rng.uniformInt(6));
        c.cx(a, b);
    }
    const RoutedCircuit r = sabreRoute(c, cm, trivialLayout(6));
    EXPECT_TRUE(circuitsEquivalentUpToPermutation(c, r.circuit,
                                                  r.final_layout));
}

TEST(Layout, SabreLayoutIsValidPermutation)
{
    const CouplingMap cm = CouplingMap::grid(3, 3);
    const Circuit c = qftCircuit(7);
    const std::vector<int> layout = sabreLayout(c, cm, 3);
    EXPECT_EQ(layout.size(), 7u);
    std::vector<bool> used(9, false);
    for (int p : layout) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 9);
        EXPECT_FALSE(used[p]);
        used[p] = true;
    }
}

TEST(Layout, SabreBeatsTrivialOnQft)
{
    // SABRE layout should not be (much) worse than trivial on a
    // routing-heavy benchmark.
    const CouplingMap cm = CouplingMap::grid(4, 4);
    const Circuit c = qftCircuit(12);
    const RoutedCircuit trivial =
        sabreRoute(c, cm, trivialLayout(12));
    const std::vector<int> layout = sabreLayout(c, cm, 3);
    const RoutedCircuit tuned = sabreRoute(c, cm, layout);
    EXPECT_LE(tuned.swaps_inserted, trivial.swaps_inserted + 5);
}

TEST(Merge1q, CollapsesRuns)
{
    Circuit c(2);
    c.h(0);
    c.rz(0, 0.3);
    c.h(0);
    c.cx(0, 1);
    c.h(1);
    const Circuit merged = mergeSingleQubitRuns(c);
    // One merged 1Q gate before the CX, the CX, one H after.
    EXPECT_EQ(merged.size(), 3u);
    EXPECT_TRUE(circuitsEquivalent(c, merged));
}

TEST(Merge1q, DropsIdentityProducts)
{
    Circuit c(1);
    c.h(0);
    c.h(0); // H H = I
    const Circuit merged = mergeSingleQubitRuns(c);
    EXPECT_EQ(merged.size(), 0u);
}

TEST(Merge1q, PreservesSemanticsOnRandom)
{
    Rng rng(9);
    Circuit c(3);
    for (int i = 0; i < 30; ++i) {
        const int q = static_cast<int>(rng.uniformInt(3));
        switch (rng.uniformInt(4)) {
          case 0: c.h(q); break;
          case 1: c.rz(q, rng.uniform(0, kTwoPi)); break;
          case 2: c.rx(q, rng.uniform(0, kTwoPi)); break;
          default: {
              int b = static_cast<int>(rng.uniformInt(3));
              while (b == q)
                  b = static_cast<int>(rng.uniformInt(3));
              c.cz(q, b);
              break;
          }
        }
    }
    const Circuit merged = mergeSingleQubitRuns(c);
    EXPECT_TRUE(circuitsEquivalent(c, merged));
    EXPECT_LE(merged.size(), c.size());
}

std::vector<EdgeBasis>
uniformBases(const CouplingMap &cm, const Mat4 &gate, double dur,
             const std::string &label)
{
    std::vector<EdgeBasis> bases(cm.edges().size());
    for (auto &b : bases) {
        b.gate = gate;
        b.duration_ns = dur;
        b.label = label;
    }
    return bases;
}

TEST(Translate, CxCircuitOntoSqrtIswap)
{
    const CouplingMap cm = CouplingMap::line(3);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    DecompositionCache cache;
    BasisTranslationStats stats;
    const Circuit t = translateToEdgeBases(c, cm, bases, cache,
                                           SynthOptions{}, &stats);
    EXPECT_EQ(stats.translated_2q, 2u);
    // CNOT from sqiSW takes 2 layers each.
    EXPECT_EQ(stats.total_layers, 4u);
    EXPECT_LT(stats.max_infidelity, 1e-8);
    EXPECT_TRUE(circuitsEquivalent(c, t));
    // All 2Q gates in the result are basis applications on edges.
    for (const Gate &g : t.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_EQ(g.name(), "sqisw");
            EXPECT_TRUE(cm.connected(g.qubits[0], g.qubits[1]));
        }
    }
}

TEST(Translate, NonstandardBasisPreservesSemantics)
{
    // A nonstandard basis gate with a ZZ component, as selected from
    // strong-drive trajectories.
    const Mat4 basis = canonicalGate(0.45, 0.23, 0.07);
    const CouplingMap cm = CouplingMap::line(3);
    const auto bases = uniformBases(cm, basis, 12.0, "ns");
    Circuit c(3);
    c.h(2);
    c.cx(2, 1);
    c.swap(0, 1);
    c.cphase(1, 2, 0.77);
    DecompositionCache cache;
    const Circuit t = translateToEdgeBases(c, cm, bases, cache,
                                           SynthOptions{});
    EXPECT_TRUE(circuitsEquivalent(c, t));
}

TEST(Translate, EngineMatchesSerialBitExactly)
{
    // Batched (thread-pooled) translation must emit exactly the same
    // circuit as the serial per-gate path for a fixed seed.
    const Mat4 basis = canonicalGate(0.45, 0.23, 0.07);
    const CouplingMap cm = CouplingMap::line(3);
    const auto bases = uniformBases(cm, basis, 12.0, "ns");
    Circuit c(3);
    c.h(2);
    c.cx(2, 1);
    c.swap(0, 1);
    c.cphase(1, 2, 0.77);
    c.cphase(0, 1, 0.77);

    DecompositionCache cache_serial, cache_engine;
    const Circuit serial = translateToEdgeBases(
        c, cm, bases, cache_serial, SynthOptions{});
    SynthEngine engine(4);
    const Circuit batched = translateToEdgeBases(
        c, cm, bases, cache_engine, SynthOptions{}, nullptr, &engine);

    ASSERT_EQ(serial.gates().size(), batched.gates().size());
    for (size_t i = 0; i < serial.gates().size(); ++i) {
        const Gate &a = serial.gates()[i];
        const Gate &b = batched.gates()[i];
        ASSERT_EQ(a.qubits, b.qubits);
        if (a.isTwoQubit())
            EXPECT_EQ(a.matrix4().maxAbsDiff(b.matrix4()), 0.0);
        else
            EXPECT_EQ(a.matrix2().maxAbsDiff(b.matrix2()), 0.0);
    }
    EXPECT_EQ(cache_serial.hits(), cache_engine.hits());
    EXPECT_EQ(cache_serial.misses(), cache_engine.misses());
}

TEST(Translate, ReversedEdgeOrientationHandled)
{
    // Gates given as (hi, lo) must still translate correctly.
    const CouplingMap cm = CouplingMap::line(2);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    Circuit c(2);
    c.cx(1, 0); // control is the higher-numbered qubit
    DecompositionCache cache;
    const Circuit t = translateToEdgeBases(c, cm, bases, cache,
                                           SynthOptions{});
    EXPECT_TRUE(circuitsEquivalent(c, t));
}

TEST(Translate, CacheSharedAcrossIdenticalGates)
{
    const CouplingMap cm = CouplingMap::line(2);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(0, 1);
    DecompositionCache cache;
    translateToEdgeBases(c, cm, bases, cache, SynthOptions{});
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Translate, RejectsUnroutedCircuits)
{
    const CouplingMap cm = CouplingMap::line(3);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    Circuit c(3);
    c.cx(0, 2); // not an edge
    DecompositionCache cache;
    EXPECT_THROW(translateToEdgeBases(c, cm, bases, cache,
                                      SynthOptions{}),
                 std::runtime_error);
}

TEST(Translate, EdgeDurationModel)
{
    const CouplingMap cm = CouplingMap::line(3);
    auto bases = uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    bases[1].duration_ns = 10.0;
    const DurationModel model = edgeDurationModel(cm, bases, 20.0);
    EXPECT_DOUBLE_EQ(model(makeGate1(GateKind::H, 0)), 20.0);
    EXPECT_DOUBLE_EQ(model(makeGate2(GateKind::CX, 0, 1)), 83.0);
    EXPECT_DOUBLE_EQ(model(makeGate2(GateKind::CX, 2, 1)), 10.0);
}

TEST(Pipeline, EndToEndSmallDevice)
{
    const CouplingMap cm = CouplingMap::grid(2, 3);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    const Circuit logical = qftCircuit(5);
    DecompositionCache cache;
    const TranspileResult result =
        transpileCircuit(logical, cm, bases, SynthRoute::local(&cache));

    // Structure: all 2Q gates are coupled basis gates.
    for (const Gate &g : result.physical.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_EQ(g.name(), "sqisw");
            EXPECT_TRUE(cm.connected(g.qubits[0], g.qubits[1]));
        }
    }
    EXPECT_LT(result.translation.max_infidelity, 1e-7);

    // Semantics: embed the logical circuit by the initial layout and
    // compare against the physical circuit up to the final layout.
    Circuit embedded(cm.numQubits());
    for (const Gate &g : logical.gates()) {
        Gate gg = g;
        for (int &q : gg.qubits)
            q = result.initial_layout[q];
        embedded.append(std::move(gg));
    }
    std::vector<int> perm(cm.numQubits());
    for (int p = 0; p < cm.numQubits(); ++p)
        perm[p] = p; // identity for unused wires
    for (size_t l = 0; l < result.initial_layout.size(); ++l)
        perm[result.initial_layout[l]] = result.final_layout[l];
    EXPECT_TRUE(circuitsEquivalentUpToPermutation(
        embedded, result.physical, perm));
}

TEST(Pipeline, ScheduleOfTranspiledCircuit)
{
    const CouplingMap cm = CouplingMap::line(4);
    const auto bases =
        uniformBases(cm, sqrtIswapGate(), 83.0, "sqisw");
    const Circuit logical = qftCircuit(4);
    DecompositionCache cache;
    const TranspileResult result =
        transpileCircuit(logical, cm, bases, SynthRoute::local(&cache));
    const Schedule sched = scheduleAsap(
        result.physical, edgeDurationModel(cm, bases, 20.0));
    EXPECT_GT(sched.makespan, 0.0);
    // Makespan at least (#layers on critical path) * basis duration.
    EXPECT_GT(sched.makespan, 83.0);
}


TEST(CouplingMap, HeavyHexStructure)
{
    const CouplingMap hh = CouplingMap::heavyHex(2, 2);
    EXPECT_TRUE(hh.isConnected());
    // Degree <= 3 everywhere (the heavy-hex defining property).
    for (int q = 0; q < hh.numQubits(); ++q)
        EXPECT_LE(hh.neighbors(q).size(), 3u) << q;
    // Sparser than a grid with the same qubit count: fewer than
    // 2 * n edges.
    EXPECT_LT(hh.edges().size(),
              2u * static_cast<size_t>(hh.numQubits()));
}

TEST(CouplingMap, HeavyHexRoutable)
{
    // Routing works on the heavy-hex lattice too.
    const CouplingMap hh = CouplingMap::heavyHex(1, 2);
    Circuit c(4);
    c.cx(0, 3);
    c.cx(1, 2);
    const RoutedCircuit r = sabreRoute(c, hh, trivialLayout(4));
    for (const Gate &g : r.circuit.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(hh.connected(g.qubits[0], g.qubits[1]));
        }
    }
    // Equivalence on the full device register (trivial embedding).
    Circuit embedded(hh.numQubits());
    for (const Gate &g : c.gates())
        embedded.append(g);
    std::vector<int> perm(hh.numQubits());
    for (int p = 0; p < hh.numQubits(); ++p)
        perm[p] = p;
    for (size_t l = 0; l < r.final_layout.size(); ++l)
        perm[r.initial_layout[l]] = r.final_layout[l];
    EXPECT_TRUE(circuitsEquivalentUpToPermutation(embedded, r.circuit,
                                                  perm));
}

TEST(CouplingMap, HeavyHexEdgeColoringBound)
{
    // Section VI: degree-3 connectivity needs at most 4 colors for
    // parallel calibration (Vizing); verify a greedy coloring fits.
    const CouplingMap hh = CouplingMap::heavyHex(2, 3);
    std::vector<int> color(hh.edges().size(), -1);
    int max_color = 0;
    for (size_t e = 0; e < hh.edges().size(); ++e) {
        const auto [a, b] = hh.edges()[e];
        std::vector<bool> used(16, false);
        for (size_t f = 0; f < e; ++f) {
            const auto [x, y] = hh.edges()[f];
            if (x == a || x == b || y == a || y == b)
                used[color[f]] = true;
        }
        int c = 0;
        while (used[c])
            ++c;
        color[e] = c;
        max_color = std::max(max_color, c);
    }
    EXPECT_LE(max_color + 1, 4);
}

} // namespace
} // namespace qbasis
