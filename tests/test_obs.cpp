/**
 * @file
 * Observability-layer tests: log-histogram/percentile math, span
 * recording round-trips through the Chrome trace exporter, registry
 * counters tracking the legacy per-instance stats structs, the
 * zero-perturbation contract (tracing ON vs OFF keeps every
 * committed digest byte-identical), and request-id correlation from
 * admission through cache publish.
 */

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bv.hpp"
#include "apps/qft.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/compile_service.hpp"
#include "synth/engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

/** Turn tracing on for one test body; always restores OFF. */
struct ScopedTraceEnable
{
    ScopedTraceEnable()
    {
        clearTrace();
        setTraceEnabled(true);
    }

    ~ScopedTraceEnable()
    {
        setTraceEnabled(false);
        clearTrace();
    }
};

/** Same cheap fleet fixture as tests/test_serve. */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

FleetDeviceSpec
quadSpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 2;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

CompileServiceOptions
tinyServiceOptions()
{
    CompileServiceOptions opts;
    opts.fleet.shards = 2;
    opts.fleet.threads = 2;
    opts.fleet.synth = cheapSynth();
    opts.fleet.calib.edge_limit = 1;
    opts.queue_capacity = 64;
    opts.dispatchers = 3;
    opts.max_batch = 4;
    return opts;
}

std::vector<CompileRequest>
requestMix()
{
    std::vector<CompileRequest> reqs;
    uint64_t id = 1;
    for (int d = 0; d < 2; ++d) {
        reqs.emplace_back(id++, d, "qft2", qftCircuit(2));
        reqs.emplace_back(id++, d, "qft3", qftCircuit(3));
        reqs.emplace_back(id++, d, "qft4", qftCircuit(4));
        reqs.emplace_back(id++, d, "bv3", bvAllOnesCircuit(3));
    }
    return reqs;
}

class ObsTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

// --- util/stats: percentile + log-histogram math --------------------

TEST_F(ObsTest, PercentileSortedMatchesHistoricalRule)
{
    EXPECT_EQ(percentileSorted({}, 0.5), 0.0);
    EXPECT_EQ(percentileSorted({7.0}, 0.0), 7.0);
    EXPECT_EQ(percentileSorted({7.0}, 0.5), 7.0);
    EXPECT_EQ(percentileSorted({7.0}, 1.0), 7.0);

    // bench_serve's rule: v[round(p * (n - 1))].
    std::vector<double> v;
    for (int i = 0; i <= 100; ++i)
        v.push_back(static_cast<double>(i));
    EXPECT_EQ(percentileSorted(v, 0.0), 0.0);
    EXPECT_EQ(percentileSorted(v, 0.5), 50.0);
    EXPECT_EQ(percentileSorted(v, 0.95), 95.0);
    EXPECT_EQ(percentileSorted(v, 0.99), 99.0);
    EXPECT_EQ(percentileSorted(v, 1.0), 100.0);
}

TEST_F(ObsTest, LogBucketBoundariesAreExact)
{
    // Bucket 0 holds exactly {0}; bucket b >= 1 holds
    // [2^(b-1), 2^b - 1].
    EXPECT_EQ(logBucketIndex(0), 0);
    EXPECT_EQ(logBucketIndex(1), 1);
    EXPECT_EQ(logBucketIndex(2), 2);
    EXPECT_EQ(logBucketIndex(3), 2);
    EXPECT_EQ(logBucketIndex(4), 3);
    EXPECT_EQ(logBucketIndex(~uint64_t{0}), 64);
    for (int b = 1; b < kLogHistogramBuckets; ++b) {
        const uint64_t lo = logBucketLowerBound(b);
        const uint64_t hi = logBucketUpperBound(b);
        EXPECT_EQ(lo, uint64_t{1} << (b - 1));
        EXPECT_EQ(logBucketIndex(lo), b) << "bucket " << b;
        EXPECT_EQ(logBucketIndex(hi), b) << "bucket " << b;
        if (b > 1)
            EXPECT_EQ(logBucketIndex(lo - 1), b - 1);
    }
    EXPECT_EQ(logBucketLowerBound(0), 0u);
    EXPECT_EQ(logBucketUpperBound(0), 0u);
    EXPECT_EQ(logBucketUpperBound(64), ~uint64_t{0});
}

TEST_F(ObsTest, LogHistogramEdgeCases)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentileBucket(0.5), -1);
    EXPECT_EQ(h.percentile(0.99), 0u);

    // Single sample: every percentile resolves to its bucket.
    h.record(42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 42u);
    EXPECT_EQ(h.mean(), 42.0);
    for (const double p : {0.0, 0.5, 0.99, 1.0}) {
        const int b = h.percentileBucket(p);
        ASSERT_EQ(b, logBucketIndex(42));
        EXPECT_LE(logBucketLowerBound(b), 42u);
        EXPECT_GE(logBucketUpperBound(b), 42u);
        EXPECT_EQ(h.percentile(p), logBucketUpperBound(b));
    }
    EXPECT_EQ(h.bucketCount(logBucketIndex(42)), 1u);
}

TEST_F(ObsTest, LogHistogramPercentilesAgreeWithSortedQuantiles)
{
    // Deterministic sample set spanning several decades; the
    // histogram percentile must land in (or adjacent to, for the
    // nearest-rank vs nearest-index tie at a bucket edge) the bucket
    // of the exact sorted-vector quantile -- i.e. exact to within
    // one factor-of-two bucket width.
    Rng rng(2022);
    LogHistogram h;
    std::vector<double> sorted;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.uniformInt(1000000);
        h.record(v);
        sorted.push_back(static_cast<double>(v));
    }
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {0.5, 0.9, 0.95, 0.99}) {
        const uint64_t exact = static_cast<uint64_t>(
            percentileSorted(sorted, p));
        const int hb = h.percentileBucket(p);
        EXPECT_NEAR(hb, logBucketIndex(exact), 1)
            << "p=" << p << " exact=" << exact;
        // The reported upper bound never underestimates by more
        // than a bucket, never overestimates by more than a bucket.
        EXPECT_GE(h.percentile(p),
                  logBucketLowerBound(std::max(0, hb)));
        EXPECT_LE(static_cast<double>(logBucketLowerBound(hb)) / 2.0,
                  std::max(1.0, static_cast<double>(exact)));
    }
    EXPECT_EQ(h.count(), 2000u);

    // All-one-bucket data (1024..1123 all live in [1024, 2047]):
    // every percentile is exact to the bucket.
    LogHistogram narrow;
    for (int i = 0; i < 100; ++i)
        narrow.record(1024 + static_cast<uint64_t>(i));
    EXPECT_EQ(narrow.percentileBucket(0.5), logBucketIndex(1024));
    EXPECT_EQ(narrow.percentile(0.99), logBucketUpperBound(11));
}

// --- TraceRecorder round trip ---------------------------------------

TEST_F(ObsTest, DisabledTracingRecordsNothing)
{
    setTraceEnabled(false);
    clearTrace();
    {
        QBASIS_TRACE_SCOPE("obs.test.disabled", "k", uint64_t{1});
        QBASIS_TRACE_SCOPE("obs.test.disabled2");
    }
    EXPECT_TRUE(traceSnapshot().empty());
    EXPECT_EQ(traceDroppedEvents(), 0u);
}

TEST_F(ObsTest, SpanNestingAndThreadAttributionRoundTrip)
{
    ScopedTraceEnable trace;
    setTraceThreadName("obs-test-main");
    {
        TraceCorrelation correlation(77);
        QBASIS_TRACE_SCOPE("obs.outer", "alpha", uint64_t{3});
        QBASIS_TRACE_SCOPE("obs.inner", "beta", uint64_t{4}, "gamma",
                           uint64_t{5});
    }
    std::thread worker([] {
        setTraceThreadName("obs-test-worker");
        QBASIS_TRACE_SCOPE("obs.worker");
    });
    worker.join();

    const std::vector<TraceEvent> events = traceSnapshot();
    const auto find = [&](const char *name) -> const TraceEvent * {
        for (const TraceEvent &ev : events)
            if (std::string(ev.name) == name)
                return &ev;
        return nullptr;
    };
    const TraceEvent *outer = find("obs.outer");
    const TraceEvent *inner = find("obs.inner");
    const TraceEvent *worker_ev = find("obs.worker");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(worker_ev, nullptr);

    // Nesting: the inner span starts after and ends before the
    // outer one, on the same thread.
    EXPECT_GE(inner->start_ns, outer->start_ns);
    EXPECT_LE(inner->start_ns + inner->dur_ns,
              outer->start_ns + outer->dur_ns);
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_NE(worker_ev->tid, outer->tid);

    // Correlation + args round-trip.
    EXPECT_EQ(outer->correlation, 77u);
    EXPECT_EQ(inner->correlation, 77u);
    EXPECT_EQ(worker_ev->correlation, 0u);
    ASSERT_STREQ(outer->arg_names[0], "alpha");
    EXPECT_EQ(outer->arg_values[0], 3u);
    ASSERT_STREQ(inner->arg_names[1], "gamma");
    EXPECT_EQ(inner->arg_values[1], 5u);

    // Chrome exporter: thread metadata, complete events, args.
    const std::string json = chromeTraceJson();
    EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("obs-test-main"), std::string::npos);
    EXPECT_NE(json.find("obs-test-worker"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"obs.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"request_id\":77"), std::string::npos);
    EXPECT_NE(json.find("\"gamma\":5"), std::string::npos);
    // Balanced braces (cheap well-formedness proxy; the CI obs job
    // runs a real JSON parse).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    clearTrace();
    EXPECT_TRUE(traceSnapshot().empty());
}

TEST_F(ObsTest, CorrelationNestsAndRestores)
{
    EXPECT_EQ(currentTraceCorrelation(), 0u);
    {
        TraceCorrelation a(10);
        EXPECT_EQ(currentTraceCorrelation(), 10u);
        {
            TraceCorrelation b(20);
            EXPECT_EQ(currentTraceCorrelation(), 20u);
        }
        EXPECT_EQ(currentTraceCorrelation(), 10u);
    }
    EXPECT_EQ(currentTraceCorrelation(), 0u);
}

// --- MetricsRegistry vs the legacy stats structs --------------------

TEST_F(ObsTest, RegistryCountersMatchLegacyEngineStats)
{
    MetricsRegistry::instance().reset();
    SynthEngine engine(2);
    DecompositionCache cache;
    std::vector<SynthRequest> reqs;
    reqs.push_back({0, swapGate(), sqrtIswapGate()});
    reqs.push_back({1, cnotGate(), sqrtIswapGate()});
    reqs.push_back({0, swapGate(), sqrtIswapGate()}); // cache hit
    const auto decs = engine.synthesizeBatch(reqs, cache,
                                             cheapSynth());
    ASSERT_EQ(decs.size(), 3u);

    const SynthEngine::Stats legacy = engine.stats();
    const MetricsSnapshot snap = metricsSnapshot();
    EXPECT_GT(legacy.restarts_run, 0u);
    EXPECT_EQ(snap.counterValue("synth.restarts_run"),
              legacy.restarts_run);
    EXPECT_EQ(snap.counterValue("synth.restarts_pruned"),
              legacy.restarts_pruned);
    EXPECT_EQ(snap.counterValue("synth.restarts_failed"),
              legacy.restarts_failed);
    EXPECT_EQ(snap.counterValue("synth.batches"), 1u);
    EXPECT_EQ(snap.counterValue("synth.requests"), 3u);
}

TEST_F(ObsTest, RegistryCountersMatchLegacyServiceStats)
{
    MetricsRegistry::instance().reset();
    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11), quadSpec(12)});
    for (const CompileRequest &req : requestMix()) {
        const CompileResponse resp = service.compileSync(req);
        ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
    }

    const CompileServiceStats legacy = service.snapshot();
    const MetricsSnapshot snap = metricsSnapshot();
    EXPECT_EQ(legacy.submitted, 8u);
    EXPECT_EQ(snap.counterValue("serve.submitted"), legacy.submitted);
    EXPECT_EQ(snap.counterValue("serve.admitted"), legacy.admitted);
    EXPECT_EQ(snap.counterValue("serve.rejected"), legacy.rejected);
    EXPECT_EQ(snap.counterValue("serve.completed"), legacy.completed);
    EXPECT_EQ(snap.counterValue("serve.failed"), legacy.failed);
    EXPECT_EQ(snap.counterValue("serve.batches"), legacy.batches);

    // Shared-cache mirrors track the cache's own counters.
    const SharedDecompositionCache::Stats cache =
        service.driver().cache().stats();
    EXPECT_EQ(snap.counterValue("cache.hits"), cache.hits);
    EXPECT_EQ(snap.counterValue("cache.misses"), cache.misses);

    // Latency histograms saw every served request.
    bool found_compile_hist = false;
    for (const auto &hv : snap.histograms) {
        if (hv.name == "serve.compile_us") {
            found_compile_hist = true;
            EXPECT_EQ(hv.hist.count(), legacy.completed);
        }
    }
    EXPECT_TRUE(found_compile_hist);

    // The exporters render every registered metric.
    const std::string text = snap.text();
    EXPECT_NE(text.find("serve.submitted"), std::string::npos);
    EXPECT_NE(text.find("serve.compile_us"), std::string::npos);
    const std::string json = snap.json();
    EXPECT_NE(json.find("\"serve.submitted\":8"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    service.stop();
}

// --- Zero-perturbation: tracing ON vs OFF ---------------------------

TEST_F(ObsTest, TracingOnVsOffKeepsDigestsByteIdentical)
{
    const std::vector<CompileRequest> reqs = requestMix();

    // Pass 1: tracing off (the default).
    setTraceEnabled(false);
    std::vector<uint64_t> off_digests;
    uint64_t off_health = 0;
    {
        CompileService service(tinyServiceOptions());
        service.start({quadSpec(11), quadSpec(12)});
        for (const CompileRequest &req : reqs) {
            const CompileResponse resp = service.compileSync(req);
            ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
            off_digests.push_back(compileResponseDigest(resp));
        }
        off_health =
            healthReportDigest(service.driver().cycleReport(0).health);
        service.stop();
    }

    // Pass 2: identical fresh service, tracing on.
    ScopedTraceEnable trace;
    std::vector<uint64_t> on_digests;
    uint64_t on_health = 0;
    {
        CompileService service(tinyServiceOptions());
        service.start({quadSpec(11), quadSpec(12)});
        for (const CompileRequest &req : reqs) {
            const CompileResponse resp = service.compileSync(req);
            ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
            on_digests.push_back(compileResponseDigest(resp));
        }
        on_health =
            healthReportDigest(service.driver().cycleReport(0).health);
        service.stop();
    }
    ASSERT_FALSE(traceSnapshot().empty()); // tracing really ran
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(on_digests[r], off_digests[r])
            << "request " << reqs[r].request_id
            << " perturbed by tracing";
    EXPECT_EQ(on_health, off_health);
}

TEST_F(ObsTest, TracingDoesNotPerturbFleetReportDigest)
{
    FleetOptions fopts;
    fopts.shards = 1;
    fopts.threads = 2;
    fopts.synth = cheapSynth();
    fopts.calib.edge_limit = 1;
    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft2", qftCircuit(2)});

    setTraceEnabled(false);
    uint64_t off_digest = 0;
    {
        FleetDriver driver(fopts);
        off_digest = fleetReportDigest(
            driver.run({quadSpec(11)}, circuits));
    }
    ScopedTraceEnable trace;
    uint64_t on_digest = 0;
    {
        FleetDriver driver(fopts);
        on_digest = fleetReportDigest(
            driver.run({quadSpec(11)}, circuits));
    }
    EXPECT_EQ(on_digest, off_digest);
}

// --- Request-id correlation admit -> ... -> cache publish -----------

TEST_F(ObsTest, RequestIdPropagatesFromAdmitToCachePublish)
{
    ScopedTraceEnable trace;
    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11)}); // cold cache: request 1 publishes
    for (const CompileRequest &req : requestMix()) {
        if (req.device_id != 0)
            continue;
        const CompileResponse resp = service.compileSync(req);
        ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
    }
    service.stop();
    ASSERT_EQ(traceDroppedEvents(), 0u);

    const std::vector<TraceEvent> events = traceSnapshot();
    // serve.admit carries the id as an explicit arg (the admitting
    // client thread has no correlation scope yet).
    bool admit_seen = false;
    std::set<std::string> correlated; // span names with request_id 1
    for (const TraceEvent &ev : events) {
        const std::string name(ev.name);
        if (name == "serve.admit" && ev.arg_names[0] != nullptr
            && std::string(ev.arg_names[0]) == "request_id"
            && ev.arg_values[0] == 1)
            admit_seen = true;
        if (ev.correlation == 1)
            correlated.insert(name);
    }
    EXPECT_TRUE(admit_seen);
    // The first request on a cold cache must claim, synthesize, and
    // publish under its own id -- across the dispatcher thread and
    // the synthesis pool workers.
    for (const char *name :
         {"serve.compile", "compile.run", "transpile.pipeline",
          "synth.batch", "synth.restart", "cache.claim",
          "cache.publish"}) {
        EXPECT_TRUE(correlated.count(name) != 0)
            << "no span '" << name << "' correlated to request 1";
    }
}

} // namespace
} // namespace qbasis
