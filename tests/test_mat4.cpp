/**
 * @file
 * Mat4 SIMD kernel layer: exhaustive scalar-vs-AVX2 bit-identity on
 * random unitaries (including denormal / near-zero / signed-zero
 * entries), alignment edge cases, and the dispatch-override round
 * trip. When the host (or build) has no AVX2 backend, the
 * equality tests skip and only the scalar/dispatch plumbing runs.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "linalg/mat4.hpp"
#include "linalg/mat4_kernels.hpp"
#include "linalg/random.hpp"
#include "linalg/su2.hpp"
#include "util/rng.hpp"

using namespace qbasis;

namespace {

bool
bitIdentical16(const Complex *a, const Complex *b)
{
    return std::memcmp(a, b, 16 * sizeof(Complex)) == 0;
}

bool
bitIdentical4(const Complex *a, const Complex *b)
{
    return std::memcmp(a, b, 4 * sizeof(Complex)) == 0;
}

bool
bitIdentical1(Complex a, Complex b)
{
    return std::memcmp(&a, &b, sizeof(Complex)) == 0;
}

Mat2
randomMat2(Rng &rng)
{
    Mat2 m;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            m(i, j) = Complex(rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0));
    return m;
}

/** Matrix stressing rounding edge cases: denormals, exact zeros,
 *  signed zeros, and magnitudes spanning ~600 orders. */
Mat4
edgeCaseMat4(Rng &rng, int variant)
{
    Mat4 m;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const double scale = (i + j + variant) % 4 == 0
                                     ? 4.9e-324 // denormal floor
                                 : (i + j + variant) % 4 == 1
                                     ? 1e-300
                                 : (i + j + variant) % 4 == 2 ? 0.0
                                                              : 1.0;
            double re = rng.uniform(-1.0, 1.0) * scale;
            double im = rng.uniform(-1.0, 1.0) * scale;
            if ((i * 4 + j + variant) % 5 == 0)
                re = -0.0;
            m(i, j) = Complex(re, im);
        }
    }
    return m;
}

Mat2
edgeCaseMat2(Rng &rng, int variant)
{
    const Mat4 m = edgeCaseMat4(rng, variant);
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = m(i, j);
    return r;
}

/** Runs every kernel under both tables and requires bitwise equal
 *  outputs. */
void
expectKernelsBitIdentical(const Mat4KernelTable &s,
                          const Mat4KernelTable &v, const Mat4 &a,
                          const Mat4 &b, const Mat2 &u1,
                          const Mat2 &u0, const char *what)
{
    Mat4 so, vo, so2, vo2;

    s.matmul(a.data(), b.data(), so.data());
    v.matmul(a.data(), b.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "matmul: " << what;

    s.adjoint_mul(a.data(), b.data(), so.data());
    v.adjoint_mul(a.data(), b.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "adjoint_mul: " << what;

    s.kron2(u1.data(), u0.data(), so.data());
    v.kron2(u1.data(), u0.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "kron2: " << what;

    s.kron_mul_left(u1.data(), u0.data(), a.data(), so.data());
    v.kron_mul_left(u1.data(), u0.data(), a.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "kron_mul_left: " << what;

    s.mul_kron_right(a.data(), u1.data(), u0.data(), so.data());
    v.mul_kron_right(a.data(), u1.data(), u0.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "mul_kron_right: " << what;

    EXPECT_TRUE(bitIdentical1(s.adjoint_trace_dot(a.data(), b.data()),
                              v.adjoint_trace_dot(a.data(),
                                                  b.data())))
        << "adjoint_trace_dot: " << what;

    Mat2 ss, vs;
    s.kron_trace_q1(a.data(), u0.data(), ss.data());
    v.kron_trace_q1(a.data(), u0.data(), vs.data());
    EXPECT_TRUE(bitIdentical4(ss.data(), vs.data()))
        << "kron_trace_q1: " << what;

    s.kron_trace_q0(a.data(), u1.data(), ss.data());
    v.kron_trace_q0(a.data(), u1.data(), vs.data());
    EXPECT_TRUE(bitIdentical4(ss.data(), vs.data()))
        << "kron_trace_q0: " << what;

    s.layer_fwd(a.data(), u1.data(), u0.data(), b.data(), so.data(),
                so2.data());
    v.layer_fwd(a.data(), u1.data(), u0.data(), b.data(), vo.data(),
                vo2.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "layer_fwd bright: " << what;
    EXPECT_TRUE(bitIdentical16(so2.data(), vo2.data()))
        << "layer_fwd right: " << what;

    s.layer_bwd(a.data(), u1.data(), u0.data(), b.data(), so.data());
    v.layer_bwd(a.data(), u1.data(), u0.data(), b.data(), vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "layer_bwd: " << what;

    s.layer_bwd(a.data(), u1.data(), u0.data(), nullptr, so.data());
    v.layer_bwd(a.data(), u1.data(), u0.data(), nullptr, vo.data());
    EXPECT_TRUE(bitIdentical16(so.data(), vo.data()))
        << "layer_bwd (no layer): " << what;
}

const Mat4KernelTable *
avx2OrSkip()
{
    const Mat4KernelTable *t = mat4BackendTable(Mat4Backend::Avx2);
    if (t == nullptr) {
        // GTEST_SKIP needs a void context; callers re-check null.
        return nullptr;
    }
    return t;
}

} // namespace

TEST(Mat4Kernels, ScalarVsAvx2OnRandomUnitaries)
{
    const Mat4KernelTable *v = avx2OrSkip();
    if (v == nullptr)
        GTEST_SKIP() << "AVX2 backend unavailable on this host/build";
    const Mat4KernelTable *s = mat4BackendTable(Mat4Backend::Scalar);
    ASSERT_NE(s, nullptr);

    Rng rng(0xC0FFEEull);
    for (int trial = 0; trial < 200; ++trial) {
        const Mat4 a = randomUnitary4(rng);
        const Mat4 b = randomUnitary4(rng);
        const Mat2 u1 = randomMat2(rng);
        const Mat2 u0 = randomMat2(rng);
        expectKernelsBitIdentical(*s, *v, a, b, u1, u0, "unitary");
    }
}

TEST(Mat4Kernels, ScalarVsAvx2OnDenormalAndSignedZeroEntries)
{
    const Mat4KernelTable *v = avx2OrSkip();
    if (v == nullptr)
        GTEST_SKIP() << "AVX2 backend unavailable on this host/build";
    const Mat4KernelTable *s = mat4BackendTable(Mat4Backend::Scalar);
    ASSERT_NE(s, nullptr);

    Rng rng(0xD15EA5Eull);
    for (int trial = 0; trial < 100; ++trial) {
        const Mat4 a = edgeCaseMat4(rng, trial);
        const Mat4 b = edgeCaseMat4(rng, trial + 1);
        const Mat2 u1 = edgeCaseMat2(rng, trial + 2);
        const Mat2 u0 = edgeCaseMat2(rng, trial + 3);
        expectKernelsBitIdentical(*s, *v, a, b, u1, u0,
                                  "denormal/zero");
    }
}

TEST(Mat4Kernels, AlignmentEdgeCases)
{
    // The kernels promise unaligned correctness: place operands at
    // every 8-byte offset of a 32-byte period (Mat4 guarantees only
    // alignof(double)) and require bit-identical results from both
    // backends at every placement.
    const Mat4KernelTable *v = avx2OrSkip();
    if (v == nullptr)
        GTEST_SKIP() << "AVX2 backend unavailable on this host/build";
    const Mat4KernelTable *s = mat4BackendTable(Mat4Backend::Scalar);
    ASSERT_NE(s, nullptr);

    Rng rng(0xA11C7ull);
    const Mat4 a = randomUnitary4(rng);
    const Mat4 b = randomUnitary4(rng);

    alignas(32) unsigned char raw[3][16 * sizeof(Complex) + 64];
    Mat4 ref;
    s->matmul(a.data(), b.data(), ref.data());

    for (size_t off_a = 0; off_a < 32; off_a += 8) {
        for (size_t off_b = 8; off_b < 40; off_b += 16) {
            Complex *pa = reinterpret_cast<Complex *>(raw[0] + off_a);
            Complex *pb = reinterpret_cast<Complex *>(raw[1] + off_b);
            Complex *po =
                reinterpret_cast<Complex *>(raw[2] + off_a);
            std::memcpy(pa, a.data(), 16 * sizeof(Complex));
            std::memcpy(pb, b.data(), 16 * sizeof(Complex));

            v->matmul(pa, pb, po);
            EXPECT_TRUE(bitIdentical16(ref.data(), po))
                << "offsets " << off_a << ", " << off_b;

            Complex tr_s = s->adjoint_trace_dot(pa, pb);
            Complex tr_v = v->adjoint_trace_dot(pa, pb);
            EXPECT_TRUE(bitIdentical1(tr_s, tr_v))
                << "trace offsets " << off_a << ", " << off_b;
        }
    }
}

TEST(Mat4Kernels, DispatchOverrideRoundTrip)
{
    const Mat4Backend original = activeMat4Backend();

    // Force scalar: the wrapper entry points must follow.
    ASSERT_TRUE(setMat4Backend(Mat4Backend::Scalar));
    EXPECT_EQ(activeMat4Backend(), Mat4Backend::Scalar);
    EXPECT_STREQ(mat4BackendName(activeMat4Backend()), "scalar");

    Rng rng(0x5EEDull);
    const Mat4 a = randomUnitary4(rng);
    const Mat4 b = randomUnitary4(rng);
    Mat4 scalar_out;
    matmulInto(a, b, scalar_out);
    Mat4 direct;
    mat4BackendTable(Mat4Backend::Scalar)
        ->matmul(a.data(), b.data(), direct.data());
    EXPECT_TRUE(bitIdentical16(scalar_out.data(), direct.data()));

    // Round-trip to AVX2 when available; results stay bit-identical
    // through the public wrappers.
    if (mat4BackendTable(Mat4Backend::Avx2) != nullptr) {
        ASSERT_TRUE(setMat4Backend(Mat4Backend::Avx2));
        EXPECT_EQ(activeMat4Backend(), Mat4Backend::Avx2);
        Mat4 simd_out;
        matmulInto(a, b, simd_out);
        EXPECT_TRUE(
            bitIdentical16(scalar_out.data(), simd_out.data()));
    } else {
        EXPECT_FALSE(setMat4Backend(Mat4Backend::Avx2));
        EXPECT_EQ(activeMat4Backend(), Mat4Backend::Scalar);
    }

    ASSERT_TRUE(setMat4Backend(original));
    EXPECT_EQ(activeMat4Backend(), original);
}

TEST(Mat4Kernels, ForceScalarEnvResolution)
{
    // The pure rule behind the startup QBASIS_FORCE_SCALAR handling.
    EXPECT_EQ(resolveMat4Backend(nullptr, true), Mat4Backend::Avx2);
    EXPECT_EQ(resolveMat4Backend(nullptr, false),
              Mat4Backend::Scalar);
    EXPECT_EQ(resolveMat4Backend("", true), Mat4Backend::Avx2);
    EXPECT_EQ(resolveMat4Backend("0", true), Mat4Backend::Avx2);
    EXPECT_EQ(resolveMat4Backend("1", true), Mat4Backend::Scalar);
    EXPECT_EQ(resolveMat4Backend("yes", true), Mat4Backend::Scalar);
    EXPECT_EQ(resolveMat4Backend("1", false), Mat4Backend::Scalar);
}

TEST(Mat4Kernels, WrappersMatchDispatchedTable)
{
    // The Mat4-level wrappers (operator*, kron, traceInfidelity,
    // isUnitary) must route through the active table: flipping the
    // backend must not change their bits.
    const Mat4Backend original = activeMat4Backend();
    Rng rng(0xFACEull);
    const Mat4 a = randomUnitary4(rng);
    const Mat4 b = randomUnitary4(rng);
    const Mat2 u1 = randomMat2(rng);
    const Mat2 u0 = randomMat2(rng);

    ASSERT_TRUE(setMat4Backend(Mat4Backend::Scalar));
    const Mat4 prod_s = a * b;
    const Mat4 kron_s = Mat4::kron(u1, u0);
    const double infid_s = traceInfidelity(a, b);
    const Complex dot_s = adjointTraceDot(a, b);

    if (mat4BackendTable(Mat4Backend::Avx2) != nullptr) {
        ASSERT_TRUE(setMat4Backend(Mat4Backend::Avx2));
        const Mat4 prod_v = a * b;
        const Mat4 kron_v = Mat4::kron(u1, u0);
        const double infid_v = traceInfidelity(a, b);
        const Complex dot_v = adjointTraceDot(a, b);
        EXPECT_TRUE(bitIdentical16(prod_s.data(), prod_v.data()));
        EXPECT_TRUE(bitIdentical16(kron_s.data(), kron_v.data()));
        EXPECT_EQ(infid_s, infid_v);
        EXPECT_TRUE(bitIdentical1(dot_s, dot_v));
    }

    ASSERT_TRUE(setMat4Backend(original));
}
