/**
 * @file
 * Persistence + retirement subsystem tests: snapshot encode/decode
 * bit-exactness and byte stability, merge semantics into a warm
 * shared cache (claim/publish dedupe unaffected), cycle-aware
 * retirement that never drops a basis referenced by a live
 * VersionedBasisSet, and graceful rejection of corrupt, truncated,
 * and version-mismatched snapshots.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "core/fleet.hpp"
#include "synth/cache_io.hpp"
#include "synth/engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

using ClassKey = DecompositionCache::ClassKey;

class PersistTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

Mat2
randomMat2(Rng &rng)
{
    Mat2 m;
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            m(r, c) = Complex(rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0));
    return m;
}

Mat4
randomMat4(Rng &rng)
{
    Mat4 m;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            m(r, c) = Complex(rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0));
    return m;
}

/** Deterministic fake decomposition with `layers` 2Q layers (the
 *  codec is agnostic to unitarity, so random matrices exercise the
 *  full double range harder than real synthesis output would). */
TwoQubitDecomposition
makeDec(int layers, uint64_t seed)
{
    Rng rng(seed);
    TwoQubitDecomposition dec;
    for (int l = 0; l <= layers; ++l) {
        LocalPair lp;
        lp.q1 = randomMat2(rng);
        lp.q0 = randomMat2(rng);
        dec.locals.push_back(lp);
    }
    for (int l = 0; l < layers; ++l)
        dec.basis.push_back(randomMat4(rng));
    dec.phase = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    dec.infidelity = rng.uniform(0.0, 1e-6);
    return dec;
}

ClassKey
makeKey(uint64_t context, int64_t qx, int64_t qy, int64_t qz)
{
    ClassKey key;
    key.context = context;
    key.qx = qx;
    key.qy = qy;
    key.qz = qz;
    return key;
}

bool
mat2Bitwise(const Mat2 &a, const Mat2 &b)
{
    for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
            if (std::memcmp(&a(r, c), &b(r, c), sizeof(Complex)) != 0)
                return false;
        }
    }
    return true;
}

bool
mat4Bitwise(const Mat4 &a, const Mat4 &b)
{
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            if (std::memcmp(&a(r, c), &b(r, c), sizeof(Complex)) != 0)
                return false;
        }
    }
    return true;
}

bool
decsBitwise(const TwoQubitDecomposition &a,
            const TwoQubitDecomposition &b)
{
    if (a.locals.size() != b.locals.size()
        || a.basis.size() != b.basis.size())
        return false;
    if (std::memcmp(&a.phase, &b.phase, sizeof(Complex)) != 0)
        return false;
    if (std::memcmp(&a.infidelity, &b.infidelity, sizeof(double)) != 0)
        return false;
    for (size_t i = 0; i < a.locals.size(); ++i) {
        if (!mat2Bitwise(a.locals[i].q1, b.locals[i].q1)
            || !mat2Bitwise(a.locals[i].q0, b.locals[i].q0))
            return false;
    }
    for (size_t i = 0; i < a.basis.size(); ++i) {
        if (!mat4Bitwise(a.basis[i], b.basis[i]))
            return false;
    }
    return true;
}

/** A varied entry set: several contexts, layer counts 0 through 3
 *  (zero-layer = local-only class), negative coords. */
std::vector<CacheSnapshotEntry>
sampleEntries()
{
    std::vector<CacheSnapshotEntry> entries;
    entries.emplace_back(makeKey(0xA11CEull, 1, 2, 3), makeDec(2, 7));
    entries.emplace_back(makeKey(0xA11CEull, -4, 0, 9), makeDec(3, 8));
    entries.emplace_back(makeKey(0xB0Bull, 0, 0, 0), makeDec(0, 9));
    entries.emplace_back(makeKey(0xB0Bull, 5, -5, 5), makeDec(1, 10));
    entries.emplace_back(makeKey(0xC0FFEEull, 12345678901ll, -1, 2),
                         makeDec(2, 11));
    return entries;
}

// --- Codec round trips ---------------------------------------------

TEST_F(PersistTest, EncodeDecodeRoundTripIsBitExact)
{
    const std::vector<CacheSnapshotEntry> entries = sampleEntries();
    const std::vector<uint8_t> bytes = encodeCacheSnapshot(entries);

    std::vector<CacheSnapshotEntry> decoded;
    const CacheIoResult r =
        decodeCacheSnapshot(bytes.data(), bytes.size(), &decoded);
    ASSERT_TRUE(r.ok()) << r.message;
    ASSERT_EQ(decoded.size(), entries.size());

    // decode returns entries in sorted-key order; match by key.
    for (const CacheSnapshotEntry &want : entries) {
        bool found = false;
        for (const CacheSnapshotEntry &got : decoded) {
            if (!(got.first < want.first)
                && !(want.first < got.first)) {
                EXPECT_TRUE(decsBitwise(got.second, want.second));
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST_F(PersistTest, SnapshotRestoreSnapshotIsByteStable)
{
    // Encoding is a pure function of the entry *set*: any input
    // permutation produces the same bytes, and re-encoding a decode
    // reproduces them exactly.
    std::vector<CacheSnapshotEntry> entries = sampleEntries();
    const std::vector<uint8_t> bytes = encodeCacheSnapshot(entries);

    std::reverse(entries.begin(), entries.end());
    EXPECT_EQ(encodeCacheSnapshot(entries), bytes);

    std::vector<CacheSnapshotEntry> decoded;
    ASSERT_TRUE(
        decodeCacheSnapshot(bytes.data(), bytes.size(), &decoded)
            .ok());
    EXPECT_EQ(encodeCacheSnapshot(std::move(decoded)), bytes);
}

TEST_F(PersistTest, EncodedSizeArithmeticMatchesTheEncoder)
{
    // cacheManifest() computes snapshot bytes arithmetically instead
    // of running the encoder; the two must never drift apart.
    const std::vector<CacheSnapshotEntry> entries = sampleEntries();
    size_t payload = 0;
    for (const CacheSnapshotEntry &e : entries)
        payload += cacheEntryEncodedBytes(e.second);
    EXPECT_EQ(cacheSnapshotEncodedBytes(entries.size(), payload),
              encodeCacheSnapshot(entries).size());
    EXPECT_EQ(cacheSnapshotEncodedBytes(0, 0),
              encodeCacheSnapshot({}).size());
}

TEST_F(PersistTest, EmptySnapshotRoundTrips)
{
    const std::vector<uint8_t> bytes = encodeCacheSnapshot({});
    std::vector<CacheSnapshotEntry> decoded;
    const CacheIoResult r =
        decodeCacheSnapshot(bytes.data(), bytes.size(), &decoded);
    EXPECT_TRUE(r.ok()) << r.message;
    EXPECT_TRUE(decoded.empty());
}

TEST_F(PersistTest, FileSaveLoadSaveIsByteStable)
{
    const std::string path =
        ::testing::TempDir() + "qbasis_persist_stable.qbwc";
    SharedDecompositionCache cache(4);
    for (const CacheSnapshotEntry &e : sampleEntries())
        ASSERT_TRUE(cache.insertLoaded(e.first, e.second));

    ASSERT_TRUE(saveCacheSnapshot(cache, path).ok());

    SharedDecompositionCache restored(8); // stripe count is irrelevant
    const CacheIoResult loaded = loadCacheSnapshot(path, restored);
    ASSERT_TRUE(loaded.ok()) << loaded.message;
    EXPECT_EQ(loaded.entries, sampleEntries().size());
    EXPECT_EQ(loaded.merged, loaded.entries);

    const std::string path2 =
        ::testing::TempDir() + "qbasis_persist_stable2.qbwc";
    ASSERT_TRUE(saveCacheSnapshot(restored, path2).ok());

    const auto slurp = [](const std::string &p) {
        std::vector<uint8_t> bytes;
        EXPECT_TRUE(readFileBytes(p, &bytes));
        return bytes;
    };
    EXPECT_EQ(slurp(path), slurp(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

// --- Merge semantics -----------------------------------------------

TEST_F(PersistTest, ExistingEntriesWinTheMerge)
{
    const ClassKey key = makeKey(1, 2, 3, 4);
    const TwoQubitDecomposition published = makeDec(2, 100);
    const TwoQubitDecomposition loaded = makeDec(2, 200);
    ASSERT_FALSE(decsBitwise(published, loaded));

    SharedDecompositionCache cache(2);
    const TwoQubitDecomposition *out = nullptr;
    ASSERT_EQ(cache.acquire(key, 0, 1, &out),
              SharedDecompositionCache::Claim::Owner);
    cache.publish(key, published);

    EXPECT_FALSE(cache.insertLoaded(key, loaded));
    ASSERT_EQ(cache.acquire(key, 0, 1, &out),
              SharedDecompositionCache::Claim::Ready);
    EXPECT_TRUE(decsBitwise(*out, published));
}

TEST_F(PersistTest, LoadNeverStealsAnInFlightClaim)
{
    // A class claimed by a synthesizing owner must survive a
    // concurrent snapshot load: the loaded copy is dropped, the
    // owner's publish() still succeeds, and waiters see the
    // published bytes.
    const ClassKey key = makeKey(9, 9, 9, 9);
    SharedDecompositionCache cache(2);
    const TwoQubitDecomposition *out = nullptr;
    ASSERT_EQ(cache.acquire(key, 0, 1, &out),
              SharedDecompositionCache::Claim::Owner);

    EXPECT_FALSE(cache.insertLoaded(key, makeDec(1, 300)));
    // Still pending for a second client (not flipped to Ready).
    ASSERT_EQ(cache.acquire(key, 1, 1, &out),
              SharedDecompositionCache::Claim::Pending);

    const TwoQubitDecomposition published = makeDec(2, 400);
    cache.publish(key, published); // must not panic
    const TwoQubitDecomposition *waited = cache.wait(key, 1);
    ASSERT_NE(waited, nullptr);
    EXPECT_TRUE(decsBitwise(*waited, published));
}

TEST_F(PersistTest, LoadedEntriesDoNotPerturbCounters)
{
    SharedDecompositionCache cache(2);
    for (const CacheSnapshotEntry &e : sampleEntries())
        cache.insertLoaded(e.first, e.second);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), sampleEntries().size());
    // stats() must tolerate never-looked-up entries.
    const SharedDecompositionCache::Stats st = cache.stats();
    EXPECT_EQ(st.classes, sampleEntries().size());
    EXPECT_EQ(st.cross_device_hits, 0u);
}

// --- Retirement ----------------------------------------------------

TEST_F(PersistTest, RetireDropsExactlyTheDeadContexts)
{
    SharedDecompositionCache cache(4);
    for (const CacheSnapshotEntry &e : sampleEntries())
        cache.insertLoaded(e.first, e.second);

    std::vector<uint64_t> live = {0xA11CEull, 0xC0FFEEull};
    std::sort(live.begin(), live.end());
    const size_t dropped = cache.retireExcept(live);
    EXPECT_EQ(dropped, 2u); // the two 0xB0B entries
    EXPECT_EQ(cache.size(), 3u);

    // Survivors are exactly the live-context entries.
    for (const CacheSnapshotEntry &e : sampleEntries()) {
        const TwoQubitDecomposition *out = nullptr;
        const auto claim = cache.acquire(e.first, 0, 1, &out);
        if (e.first.context == 0xB0Bull) {
            EXPECT_EQ(claim, SharedDecompositionCache::Claim::Owner);
            cache.abandon(e.first);
        } else {
            EXPECT_EQ(claim, SharedDecompositionCache::Claim::Ready);
        }
    }
}

TEST_F(PersistTest, RetireSkipsInFlightClaims)
{
    SharedDecompositionCache cache(2);
    const ClassKey key = makeKey(0xDEADull, 1, 1, 1);
    const TwoQubitDecomposition *out = nullptr;
    ASSERT_EQ(cache.acquire(key, 0, 1, &out),
              SharedDecompositionCache::Claim::Owner);
    EXPECT_EQ(cache.retireExcept({}), 0u); // claimed, not published
    cache.publish(key, makeDec(1, 500));   // must not panic
    EXPECT_EQ(cache.retireExcept({}), 1u); // now retirable
}

TEST_F(PersistTest, RetirementNeverDropsALiveVersionedBasis)
{
    // Property: for any split of contexts into live/dead, a sweep
    // against the live VersionedBasisSet snapshots keeps every entry
    // whose basis appears in some snapshot and drops the rest.
    const SynthOptions opts;
    const std::vector<Mat4> gates = {cnotGate(), czGate(), iswapGate(),
                                     bGate(), sqrtIswapGate()};
    Rng rng(20260730ull);
    for (int trial = 0; trial < 20; ++trial) {
        SharedDecompositionCache cache(4);
        std::vector<uint64_t> all_contexts;
        for (size_t g = 0; g < gates.size(); ++g) {
            const uint64_t ctx =
                DecompositionCache::contextHash(gates[g], opts);
            all_contexts.push_back(ctx);
            cache.insertLoaded(
                makeKey(ctx, static_cast<int64_t>(g), 0, 0),
                makeDec(1, 600 + static_cast<uint64_t>(g)));
        }

        // Random non-empty live subset, realized as VersionedBasisSet
        // snapshots (one single-edge set per live gate).
        std::vector<bool> live(gates.size(), false);
        bool any = false;
        for (size_t g = 0; g < gates.size(); ++g) {
            live[g] = rng.uniform() < 0.5;
            any = any || live[g];
        }
        if (!any)
            live[rng.uniformInt(gates.size())] = true;

        std::vector<std::unique_ptr<VersionedBasisSet>> sets;
        std::vector<uint64_t> contexts;
        for (size_t g = 0; g < gates.size(); ++g) {
            if (!live[g])
                continue;
            CalibratedBasisSet set;
            EdgeBasis basis;
            basis.gate = gates[g];
            basis.duration_ns = 40.0;
            set.bases.push_back(basis);
            sets.push_back(
                std::make_unique<VersionedBasisSet>(std::move(set)));
            appendLiveContexts(sets.back()->snapshot(), opts,
                               contexts);
        }
        std::sort(contexts.begin(), contexts.end());
        contexts.erase(
            std::unique(contexts.begin(), contexts.end()),
            contexts.end());

        const size_t expected_drops = static_cast<size_t>(
            std::count(live.begin(), live.end(), false));
        EXPECT_EQ(cache.retireExcept(contexts), expected_drops);
        for (size_t g = 0; g < gates.size(); ++g) {
            const TwoQubitDecomposition *out = nullptr;
            const auto claim = cache.acquire(
                makeKey(all_contexts[g], static_cast<int64_t>(g), 0,
                        0),
                0, 1, &out);
            if (live[g]) {
                EXPECT_EQ(claim,
                          SharedDecompositionCache::Claim::Ready)
                    << "trial " << trial << ": live basis " << g
                    << " was retired";
            } else {
                EXPECT_EQ(claim,
                          SharedDecompositionCache::Claim::Owner);
                cache.abandon(
                    makeKey(all_contexts[g],
                            static_cast<int64_t>(g), 0, 0));
            }
        }
    }
}

// --- Corrupt / truncated / mismatched inputs -----------------------

TEST_F(PersistTest, EverySingleByteFlipIsRejected)
{
    // Every byte of the snapshot is covered by the magic, the
    // version, or a CRC, so any one-byte corruption must fail to
    // decode -- and must never crash (the ASan job runs this too).
    // Exhaustive: every position of the ~4 KB sample snapshot.
    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot(sampleEntries());
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
        std::vector<uint8_t> mutated = bytes;
        mutated[pos] ^= 0x20u;
        std::vector<CacheSnapshotEntry> out;
        const CacheIoResult r =
            decodeCacheSnapshot(mutated.data(), mutated.size(), &out);
        EXPECT_FALSE(r.ok()) << "flip at byte " << pos << " accepted";
        EXPECT_TRUE(out.empty()) << "flip at byte " << pos
                                 << " leaked entries";
    }
}

TEST_F(PersistTest, EveryTruncationIsRejected)
{
    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot(sampleEntries());
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::vector<CacheSnapshotEntry> out;
        const CacheIoResult r =
            decodeCacheSnapshot(bytes.data(), len, &out);
        EXPECT_FALSE(r.ok()) << "prefix of " << len << " accepted";
        EXPECT_TRUE(out.empty());
    }
    // The untruncated buffer still decodes (the loop above must not
    // have been vacuously green).
    EXPECT_TRUE(
        decodeCacheSnapshot(bytes.data(), bytes.size(), nullptr).ok());
}

TEST_F(PersistTest, MismatchesReportTheSpecificStatus)
{
    std::vector<uint8_t> bytes = encodeCacheSnapshot(sampleEntries());

    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xFFu;
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr)
                      .status,
                  CacheIoStatus::BadMagic);
    }
    {
        std::vector<uint8_t> bad = bytes;
        bad[8] += 1; // format_version (checked before the header CRC)
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr)
                      .status,
                  CacheIoStatus::VersionMismatch);
    }
    {
        // Forge a different coord quantum WITH a recomputed header
        // CRC: the quantum check itself must fire.
        std::vector<uint8_t> bad = bytes;
        bad[16] ^= 0x01u; // low mantissa byte of coord_quantum
        const uint32_t crc = cacheCrc32(bad.data(), 120);
        for (int i = 0; i < 4; ++i)
            bad[120 + static_cast<size_t>(i)] =
                static_cast<uint8_t>(crc >> (8 * i));
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr)
                      .status,
                  CacheIoStatus::QuantumMismatch);
    }
    {
        std::vector<uint8_t> bad = bytes;
        bad.back() ^= 0x10u;
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr)
                      .status,
                  CacheIoStatus::ChecksumMismatch);
    }
    {
        std::vector<uint8_t> bad = bytes;
        bad.push_back(0); // trailing garbage
        EXPECT_EQ(decodeCacheSnapshot(bad.data(), bad.size(), nullptr)
                      .status,
                  CacheIoStatus::Malformed);
    }
    {
        EXPECT_EQ(
            decodeCacheSnapshot(bytes.data(), 10, nullptr).status,
            CacheIoStatus::Truncated);
    }

    // A failed load leaves the destination cache untouched.
    const std::string path =
        ::testing::TempDir() + "qbasis_persist_corrupt.qbwc";
    bytes[bytes.size() - 1] ^= 0x10u;
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
    SharedDecompositionCache cache(2);
    EXPECT_FALSE(loadCacheSnapshot(path, cache).ok());
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

TEST_F(PersistTest, CraftedOverflowHeadersAreRejected)
{
    // A forged section table whose u64 sums wrap around (so
    // offset + size checks would pass modulo 2^64) must be rejected
    // before any section scan -- this is the decoder's defense
    // against out-of-bounds CRC reads, so it must never crash.
    const std::vector<uint8_t> bytes =
        encodeCacheSnapshot(sampleEntries());
    const auto patch_u64 = [](std::vector<uint8_t> &buf, size_t off,
                              uint64_t v) {
        for (int i = 0; i < 8; ++i)
            buf[off + static_cast<size_t>(i)] =
                static_cast<uint8_t>(v >> (8 * i));
    };
    const auto reseal = [](std::vector<uint8_t> &buf) {
        const uint32_t crc = cacheCrc32(buf.data(), 120);
        for (int i = 0; i < 4; ++i)
            buf[120 + static_cast<size_t>(i)] =
                static_cast<uint8_t>(crc >> (8 * i));
    };
    // Header layout (v3): entry_count @32, index_size @56,
    // payload_off @72, payload_size @80.
    struct Forge
    {
        uint64_t entry_count, index_size, payload_off, payload_size;
    };
    std::vector<Forge> forges;
    {
        // entry_count * 48 wraps; index_size matches the wrapped
        // product and payload_off/size close the file-size equation
        // modulo 2^64.
        const uint64_t count = UINT64_MAX / 48 + 2;
        const uint64_t wrapped = count * 48ull; // intentional wrap
        forges.push_back({count, wrapped, 124ull + wrapped,
                          static_cast<uint64_t>(0)});
    }
    forges.push_back({0, 0, 124, UINT64_MAX - 50}); // off + size wraps
    forges.push_back(
        {UINT64_MAX, UINT64_MAX - 15, 76, UINT64_MAX});
    for (const Forge &forge : forges) {
        std::vector<uint8_t> bad = bytes;
        patch_u64(bad, 32, forge.entry_count);
        patch_u64(bad, 56, forge.index_size);
        patch_u64(bad, 72, forge.payload_off);
        patch_u64(bad, 80, forge.payload_size);
        reseal(bad);
        std::vector<CacheSnapshotEntry> out;
        const CacheIoResult r =
            decodeCacheSnapshot(bad.data(), bad.size(), &out);
        EXPECT_FALSE(r.ok());
        EXPECT_TRUE(out.empty());
    }
}

// --- Warm entries are bit-identical through the engine -------------

TEST_F(PersistTest, WarmCacheReproducesFreshSynthesisBitwise)
{
    // Synthesize a class cold, round-trip it through the snapshot
    // into a fresh cache, and synthesize the same request warm: the
    // dressed result must be bitwise equal (same class bytes, same
    // canonicalKakDecompose re-dressing path) with zero warm misses.
    SynthOptions opts;
    opts.restarts = 2;
    opts.adam_iters = 250;
    opts.polish_iters = 100;
    opts.target_infidelity = 1e-7;

    std::vector<SynthRequest> requests;
    SynthRequest req;
    req.edge_id = 0;
    req.target = cnotGate();
    req.basis = bGate();
    requests.push_back(req);
    req.target = cphaseGate(0.77);
    requests.push_back(req);

    SynthEngine engine(2);
    SharedDecompositionCache cold(4);
    const std::vector<TwoQubitDecomposition> cold_out =
        engine.synthesizeBatch(requests, cold, opts);

    const std::string path =
        ::testing::TempDir() + "qbasis_persist_warm.qbwc";
    ASSERT_TRUE(saveCacheSnapshot(cold, path).ok());
    SharedDecompositionCache warm(4);
    const CacheIoResult loaded = loadCacheSnapshot(path, warm);
    ASSERT_TRUE(loaded.ok()) << loaded.message;
    EXPECT_EQ(loaded.merged, cold.size());

    const std::vector<TwoQubitDecomposition> warm_out =
        engine.synthesizeBatch(requests, warm, opts);
    EXPECT_EQ(warm.misses(), 0u);
    ASSERT_EQ(warm_out.size(), cold_out.size());
    for (size_t i = 0; i < cold_out.size(); ++i)
        EXPECT_TRUE(decsBitwise(cold_out[i], warm_out[i]))
            << "request " << i;
    std::remove(path.c_str());
}

} // namespace
} // namespace qbasis
