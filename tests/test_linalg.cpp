/**
 * @file
 * Tests for the linalg library: fixed and dynamic matrices,
 * eigensolvers, simultaneous diagonalization, exponentials, SU(2)
 * helpers, tensor factorization, Haar sampling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eig_herm.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/expm.hpp"
#include "linalg/factor.hpp"
#include "linalg/mat2.hpp"
#include "linalg/mat4.hpp"
#include "linalg/matrix.hpp"
#include "linalg/random.hpp"
#include "linalg/simdiag.hpp"
#include "linalg/su2.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace qbasis {
namespace {

TEST(Mat2, IdentityMultiplication)
{
    Rng rng(1);
    const Mat2 u = randomSU2(rng);
    EXPECT_LT((u * Mat2::identity()).maxAbsDiff(u), 1e-14);
    EXPECT_LT((Mat2::identity() * u).maxAbsDiff(u), 1e-14);
}

TEST(Mat2, DaggerInvertsUnitary)
{
    Rng rng(2);
    const Mat2 u = randomSU2(rng);
    EXPECT_LT((u * u.dagger()).maxAbsDiff(Mat2::identity()), 1e-13);
}

TEST(Mat2, DetOfSU2IsOne)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const Mat2 u = randomSU2(rng);
        EXPECT_NEAR(std::abs(u.det() - Complex(1.0)), 0.0, 1e-12);
    }
}

TEST(Mat2, TraceAndNorm)
{
    const Mat2 m(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(m.trace(), Complex(5.0));
    EXPECT_NEAR(m.frobeniusNorm(), std::sqrt(30.0), 1e-14);
}

TEST(Mat4, IdentityAndDiag)
{
    const Mat4 d = Mat4::diag(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(d.trace(), Complex(10.0));
    EXPECT_LT((Mat4::identity() * d).maxAbsDiff(d), 1e-15);
}

TEST(Mat4, KronMatchesManual)
{
    const Mat2 a(1.0, 2.0, 3.0, 4.0);
    const Mat2 b(0.0, 1.0, 1.0, 0.0);
    const Mat4 k = Mat4::kron(a, b);
    // (a kron b)(0,1) = a(0,0) b(0,1) = 1
    EXPECT_EQ(k(0, 1), Complex(1.0));
    // (a kron b)(2,3): row 2 = a-row 1, b-row 0; col 3 = a-col 1,
    // b-col 1 -> a(1,1) b(0,1) = 4.
    EXPECT_EQ(k(2, 3), Complex(4.0));
    // (a kron b)(3,2) = a(1,1) b(1,0) = 4.
    EXPECT_EQ(k(3, 2), Complex(4.0));
}

TEST(Mat4, KronMixedProductProperty)
{
    Rng rng(4);
    const Mat2 a = randomSU2(rng), b = randomSU2(rng);
    const Mat2 c = randomSU2(rng), d = randomSU2(rng);
    const Mat4 lhs = Mat4::kron(a, b) * Mat4::kron(c, d);
    const Mat4 rhs = Mat4::kron(a * c, b * d);
    EXPECT_LT(lhs.maxAbsDiff(rhs), 1e-13);
}

TEST(Mat4, DetOfUnitaryHasUnitModulus)
{
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        const Mat4 u = randomUnitary4(rng);
        EXPECT_NEAR(std::abs(u.det()), 1.0, 1e-11);
    }
}

TEST(Mat4, DetMatchesKnownValue)
{
    // Permutation (SWAP-like) matrix has det -1... SWAP det is -1.
    Mat4 swap;
    swap(0, 0) = 1.0;
    swap(1, 2) = 1.0;
    swap(2, 1) = 1.0;
    swap(3, 3) = 1.0;
    EXPECT_NEAR(std::abs(swap.det() - Complex(-1.0)), 0.0, 1e-14);
}

TEST(Mat4, ToSU4HasUnitDet)
{
    Rng rng(6);
    for (int i = 0; i < 20; ++i) {
        const Mat4 u = randomUnitary4(rng);
        const Mat4 s = u.toSU4();
        EXPECT_NEAR(std::abs(s.det() - Complex(1.0)), 0.0, 1e-10);
        // Same gate up to phase.
        EXPECT_NEAR(traceInfidelity(u, s), 0.0, 1e-10);
    }
}

TEST(Mat4, TraceInfidelityZeroIffPhaseEqual)
{
    Rng rng(7);
    const Mat4 u = randomUnitary4(rng);
    const Mat4 v = u * std::exp(Complex(0.0, 1.234));
    EXPECT_NEAR(traceInfidelity(u, v), 0.0, 1e-12);
    const Mat4 w = randomUnitary4(rng);
    EXPECT_GT(traceInfidelity(u, w), 1e-3);
}

TEST(Mat4, IsUnitaryDetectsNonUnitary)
{
    Mat4 m = Mat4::identity();
    m(0, 0) = 1.5;
    EXPECT_FALSE(m.isUnitary());
    EXPECT_TRUE(Mat4::identity().isUnitary());
}

TEST(DynamicMatrix, MultiplyShapes)
{
    RMat a(2, 3), b(3, 4);
    a(0, 0) = 1.0;
    a(1, 2) = 2.0;
    b(0, 3) = 5.0;
    b(2, 1) = 7.0;
    const RMat c = a * b;
    EXPECT_EQ(c.rows(), 2u);
    EXPECT_EQ(c.cols(), 4u);
    EXPECT_DOUBLE_EQ(c(0, 3), 5.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 14.0);
}

TEST(DynamicMatrix, DaggerConjugates)
{
    CMat m(2, 2);
    m(0, 1) = Complex(1.0, 2.0);
    const CMat d = m.dagger();
    EXPECT_EQ(d(1, 0), Complex(1.0, -2.0));
}

TEST(DynamicMatrix, KronDims)
{
    CMat a = CMat::identity(3);
    CMat b = CMat::identity(4);
    const CMat k = kron(a, b);
    EXPECT_EQ(k.rows(), 12u);
    EXPECT_TRUE(k.isUnitary(1e-12));
}

class JacobiSymParam : public ::testing::TestWithParam<int>
{
};

TEST_P(JacobiSymParam, ReconstructsRandomSymmetric)
{
    const int n = GetParam();
    Rng rng(100 + n);
    RMat a(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j <= i; ++j) {
            const double v = rng.normal();
            a(i, j) = v;
            a(j, i) = v;
        }
    const SymEig e = jacobiEigSym(a);
    // V orthogonal
    EXPECT_LT((e.vectors.transpose() * e.vectors)
                  .maxAbsDiff(RMat::identity(n)),
              1e-10);
    // Reconstruction
    RMat d(n, n);
    for (int i = 0; i < n; ++i)
        d(i, i) = e.values[i];
    const RMat rec = e.vectors * d * e.vectors.transpose();
    EXPECT_LT(rec.maxAbsDiff(a), 1e-9);
    // Ascending order
    for (int i = 1; i < n; ++i)
        EXPECT_LE(e.values[i - 1], e.values[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSymParam,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 27));

TEST(JacobiSym, KnownEigenvalues)
{
    RMat a(2, 2);
    a(0, 0) = 2.0;
    a(1, 1) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    const SymEig e = jacobiEigSym(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

class JacobiHermParam : public ::testing::TestWithParam<int>
{
};

TEST_P(JacobiHermParam, ReconstructsRandomHermitian)
{
    const int n = GetParam();
    Rng rng(200 + n);
    CMat h(n, n);
    for (int i = 0; i < n; ++i) {
        h(i, i) = rng.normal();
        for (int j = 0; j < i; ++j) {
            const Complex v(rng.normal(), rng.normal());
            h(i, j) = v;
            h(j, i) = std::conj(v);
        }
    }
    const HermEig e = jacobiEigHerm(h);
    EXPECT_TRUE(e.vectors.isUnitary(1e-10));
    CMat d(n, n);
    for (int i = 0; i < n; ++i)
        d(i, i) = e.values[i];
    const CMat rec = e.vectors * d * e.vectors.dagger();
    EXPECT_LT(rec.maxAbsDiff(h), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiHermParam,
                         ::testing::Values(1, 2, 3, 4, 9, 27));

TEST(JacobiHerm, PauliYEigenvalues)
{
    CMat h(2, 2);
    h(0, 1) = Complex(0.0, -1.0);
    h(1, 0) = Complex(0.0, 1.0);
    const HermEig e = jacobiEigHerm(h);
    EXPECT_NEAR(e.values[0], -1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(SimDiag, CommutingPairJointlyDiagonalized)
{
    // Build commuting symmetric matrices with shared eigenvectors and
    // deliberately degenerate spectra in the first factor.
    Rng rng(300);
    const int n = 4;
    // Random orthogonal V from QR of Gaussian via jacobi of symmetric.
    RMat g(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j <= i; ++j) {
            const double v = rng.normal();
            g(i, j) = v;
            g(j, i) = v;
        }
    const RMat v = jacobiEigSym(g).vectors;

    RMat da(n, n), db(n, n);
    const double a_vals[4] = {1.0, 1.0, 2.0, 2.0}; // degenerate
    const double b_vals[4] = {3.0, 4.0, 5.0, 6.0};
    for (int i = 0; i < n; ++i) {
        da(i, i) = a_vals[i];
        db(i, i) = b_vals[i];
    }
    const RMat a = v * da * v.transpose();
    const RMat b = v * db * v.transpose();

    const RMat w = simultaneouslyDiagonalize(a, b);
    EXPECT_LT((w.transpose() * w).maxAbsDiff(RMat::identity(n)), 1e-10);

    const RMat wa = w.transpose() * a * w;
    const RMat wb = w.transpose() * b * w;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            EXPECT_NEAR(wa(i, j), 0.0, 1e-9);
            EXPECT_NEAR(wb(i, j), 0.0, 1e-9);
        }
}

TEST(SimDiag, SymmetricUnitaryDiagonalization)
{
    // m = V diag(e^{i phi}) V^T with V special orthogonal is
    // symmetric unitary; recover the factorization.
    Rng rng(301);
    RMat g(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j <= i; ++j) {
            const double v = rng.normal();
            g(i, j) = v;
            g(j, i) = v;
        }
    const RMat v = jacobiEigSym(g).vectors;
    const double phis[4] = {0.3, -1.2, 2.2, 0.0};
    CMat m(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            Complex s{};
            for (int k = 0; k < 4; ++k)
                s += v(i, k) * std::exp(Complex(0.0, phis[k])) * v(j, k);
            m(i, j) = s;
        }

    std::vector<Complex> d;
    const RMat w = diagonalizeSymmetricUnitary(m, d);
    // w orthogonal, det +1
    EXPECT_LT((w.transpose() * w).maxAbsDiff(RMat::identity(4)), 1e-9);
    // Diagonal entries unit modulus, reconstruct m.
    CMat rec(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            Complex s{};
            for (int k = 0; k < 4; ++k)
                s += w(i, k) * d[k] * w(j, k);
            rec(i, j) = s;
        }
    EXPECT_LT(rec.maxAbsDiff(m), 1e-8);
    for (const auto &dk : d)
        EXPECT_NEAR(std::abs(dk), 1.0, 1e-9);
}

TEST(Expm, HermitianExponentialIsUnitary)
{
    Rng rng(400);
    CMat h(5, 5);
    for (int i = 0; i < 5; ++i) {
        h(i, i) = rng.normal();
        for (int j = 0; j < i; ++j) {
            const Complex v(rng.normal(), rng.normal());
            h(i, j) = v;
            h(j, i) = std::conj(v);
        }
    }
    const CMat u = expiHermitian(h, -0.7);
    EXPECT_TRUE(u.isUnitary(1e-9));
}

TEST(Expm, MatchesClosedFormPauliZ)
{
    CMat h(2, 2);
    h(0, 0) = 1.0;
    h(1, 1) = -1.0;
    const double t = 0.37;
    const CMat u = expiHermitian(h, -t);
    EXPECT_NEAR(std::abs(u(0, 0) - std::exp(Complex(0, -t))), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u(1, 1) - std::exp(Complex(0, t))), 0.0, 1e-12);
}

TEST(Expm, GroupProperty)
{
    Rng rng(401);
    CMat h(3, 3);
    for (int i = 0; i < 3; ++i) {
        h(i, i) = rng.normal();
        for (int j = 0; j < i; ++j) {
            const Complex v(rng.normal(), rng.normal());
            h(i, j) = v;
            h(j, i) = std::conj(v);
        }
    }
    const CMat u1 = expiHermitian(h, 0.3);
    const CMat u2 = expiHermitian(h, 0.5);
    const CMat u3 = expiHermitian(h, 0.8);
    EXPECT_LT((u1 * u2).maxAbsDiff(u3), 1e-9);
}

TEST(Su2, PauliAlgebra)
{
    const Mat2 x = pauliX(), y = pauliY(), z = pauliZ();
    EXPECT_LT((x * x).maxAbsDiff(Mat2::identity()), 1e-15);
    EXPECT_LT((y * y).maxAbsDiff(Mat2::identity()), 1e-15);
    EXPECT_LT((z * z).maxAbsDiff(Mat2::identity()), 1e-15);
    // XY = iZ
    EXPECT_LT((x * y).maxAbsDiff(z * kI), 1e-15);
}

TEST(Su2, RotationsMatchU3)
{
    // RY(theta) == U3(theta, 0, 0); RZ up to phase.
    const double theta = 0.83;
    EXPECT_LT(ry(theta).maxAbsDiff(u3(theta, 0.0, 0.0)), 1e-14);
    const Mat2 rz_u3 = u3(0.0, 0.0, theta);
    const Mat2 rz_m = rz(theta) * std::exp(kI * (theta / 2.0));
    EXPECT_LT(rz_u3.maxAbsDiff(rz_m), 1e-14);
}

TEST(Su2, U3IsUnitary)
{
    Rng rng(500);
    for (int i = 0; i < 50; ++i) {
        const Mat2 u = u3(rng.uniform(0, kPi), rng.uniform(0, kTwoPi),
                          rng.uniform(0, kTwoPi));
        EXPECT_TRUE(u.isUnitary(1e-12));
    }
}

TEST(Su2, U3AngleRoundTrip)
{
    Rng rng(501);
    for (int i = 0; i < 200; ++i) {
        const Mat2 u = randomSU2(rng);
        const U3Angles a = toU3Angles(u);
        const Mat2 rec =
            u3(a.theta, a.phi, a.lambda) * std::exp(kI * a.alpha);
        EXPECT_LT(rec.maxAbsDiff(u), 1e-10);
    }
}

TEST(Su2, U3AngleRoundTripEdgeCases)
{
    for (const Mat2 &u : {Mat2::identity(), pauliX(), pauliZ(),
                          pauliY(), hadamard(), rz(0.5), rx(kPi)}) {
        const U3Angles a = toU3Angles(u);
        const Mat2 rec =
            u3(a.theta, a.phi, a.lambda) * std::exp(kI * a.alpha);
        EXPECT_LT(rec.maxAbsDiff(u), 1e-10);
    }
}

TEST(Su2, DerivativesMatchFiniteDifference)
{
    const double t = 0.7, p = 1.1, l = -0.4, h = 1e-6;
    const Mat2 dth = du3DTheta(t, p, l);
    const Mat2 fd_t =
        (u3(t + h, p, l) - u3(t - h, p, l)) * Complex(1.0 / (2 * h));
    EXPECT_LT(dth.maxAbsDiff(fd_t), 1e-8);

    const Mat2 dph = du3DPhi(t, p, l);
    const Mat2 fd_p =
        (u3(t, p + h, l) - u3(t, p - h, l)) * Complex(1.0 / (2 * h));
    EXPECT_LT(dph.maxAbsDiff(fd_p), 1e-8);

    const Mat2 dla = du3DLambda(t, p, l);
    const Mat2 fd_l =
        (u3(t, p, l + h) - u3(t, p, l - h)) * Complex(1.0 / (2 * h));
    EXPECT_LT(dla.maxAbsDiff(fd_l), 1e-8);
}

TEST(Factor, ExactTensorProductRecovered)
{
    Rng rng(600);
    for (int i = 0; i < 100; ++i) {
        const Mat2 a = randomSU2(rng);
        const Mat2 b = randomSU2(rng);
        const Complex ph = std::exp(Complex(0.0, rng.uniform(0, kTwoPi)));
        const Mat4 m = Mat4::kron(a, b) * ph;
        const TensorFactor f = factorTensorProduct(m);
        EXPECT_LT(f.residual, 1e-10);
        const Mat4 rec = Mat4::kron(f.a, f.b) * f.phase;
        EXPECT_LT(rec.maxAbsDiff(m), 1e-10);
        // Factors are special.
        EXPECT_NEAR(std::abs(f.a.det() - Complex(1.0)), 0.0, 1e-10);
        EXPECT_NEAR(std::abs(f.b.det() - Complex(1.0)), 0.0, 1e-10);
    }
}

TEST(Factor, NonProductHasLargeResidual)
{
    // CNOT is not a tensor product.
    Mat4 cnot;
    cnot(0, 0) = 1.0;
    cnot(1, 1) = 1.0;
    cnot(2, 3) = 1.0;
    cnot(3, 2) = 1.0;
    const TensorFactor f = factorTensorProduct(cnot);
    EXPECT_GT(f.residual, 0.1);
}

TEST(Random, Unitary4IsUnitary)
{
    Rng rng(700);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(randomUnitary4(rng).isUnitary(1e-10));
}

TEST(Random, SU4HasUnitDet)
{
    Rng rng(701);
    for (int i = 0; i < 20; ++i) {
        EXPECT_NEAR(std::abs(randomSU4(rng).det() - Complex(1.0)), 0.0,
                    1e-9);
    }
}

TEST(Random, DynamicUnitary)
{
    Rng rng(702);
    const CMat u = randomUnitary(9, rng);
    EXPECT_TRUE(u.isUnitary(1e-10));
}

TEST(Random, TraceDistributionRoughlyHaar)
{
    // |Tr U|^2 averages to 1 under Haar on U(n).
    Rng rng(703);
    RunningStats s;
    for (int i = 0; i < 4000; ++i) {
        const Mat4 u = randomUnitary4(rng);
        s.add(std::norm(u.trace()));
    }
    EXPECT_NEAR(s.mean(), 1.0, 0.1);
}

} // namespace
} // namespace qbasis
