/**
 * @file
 * Tests for the device-simulation library: flux curve, Hamiltonian
 * structure, zero-ZZ bias search, dressed states, propagator frames
 * (identity without drive), trajectory physics (XY at weak drive,
 * speed linear in amplitude), integrator convergence, and the grid
 * device sampling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/eig_herm.hpp"
#include "sim/bias.hpp"
#include "sim/device.hpp"
#include "sim/flux.hpp"
#include "sim/hamiltonian.hpp"
#include "sim/propagator.hpp"
#include "util/rng.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {
namespace {

/** Shared small-probe fixture: one edge of the default device. */
const GridDevice &
testDevice()
{
    static const GridDevice dev{GridDeviceParams{}};
    return dev;
}

const PairSimulator &
testSimulator()
{
    static const PairSimulator sim(testDevice().edgeParams(0),
                                   testDevice().couplerOmegaMax());
    return sim;
}

TEST(FluxCurve, RoundTripAndMonotone)
{
    const FluxCurve f(ghz(7.5));
    for (double w : {2.0, 4.0, 5.0, 7.0}) {
        const double phi = f.fluxForFrequency(ghz(w));
        EXPECT_NEAR(f.frequency(phi), ghz(w), 1e-9);
        EXPECT_GE(phi, 0.0);
        EXPECT_LT(phi, 0.5);
    }
    EXPECT_THROW(f.fluxForFrequency(ghz(8.0)), std::runtime_error);
}

TEST(FluxCurve, SlopeMatchesFiniteDifference)
{
    const FluxCurve f(ghz(7.5));
    const double h = 1e-7;
    for (double phi : {0.1, 0.25, 0.35, 0.42}) {
        const double fd =
            (f.frequency(phi + h) - f.frequency(phi - h)) / (2 * h);
        EXPECT_NEAR(f.slope(phi), fd, 1e-3 * std::abs(fd) + 1e-9);
    }
}

TEST(Hamiltonian, DimensionsAndIndexing)
{
    PairDeviceParams p = testDevice().edgeParams(0);
    const PairHamiltonian h(p);
    EXPECT_EQ(h.dim(), 27);
    int na, nb, nc;
    h.occupations(h.index(2, 1, 0), na, nb, nc);
    EXPECT_EQ(na, 2);
    EXPECT_EQ(nb, 1);
    EXPECT_EQ(nc, 0);
    // Round trip over all states.
    for (int i = 0; i < 27; ++i) {
        h.occupations(i, na, nb, nc);
        EXPECT_EQ(h.index(na, nb, nc), i);
    }
}

TEST(Hamiltonian, StaticIsHermitianWithExpectedSpectrumScale)
{
    PairDeviceParams p = testDevice().edgeParams(0);
    const PairHamiltonian h(p);
    const CMat hm = h.staticHamiltonian(ghz(5.0));
    EXPECT_LT(hm.maxAbsDiff(hm.dagger()), 1e-12);
    const HermEig eig = jacobiEigHerm(hm);
    // Ground state near zero energy, top near sum of double
    // excitations.
    EXPECT_NEAR(eig.values.front(), 0.0, 1.0);
    EXPECT_GT(eig.values.back(), ghz(15.0));
}

TEST(Hamiltonian, BareEnergiesDuffingFormula)
{
    PairDeviceParams p = testDevice().edgeParams(0);
    const PairHamiltonian h(p);
    const double wc = ghz(5.0);
    const auto e = h.bareEnergies(wc);
    EXPECT_DOUBLE_EQ(e[h.index(0, 0, 0)], 0.0);
    EXPECT_NEAR(e[h.index(1, 0, 0)], p.qubit_a.omega, 1e-12);
    EXPECT_NEAR(e[h.index(0, 1, 0)], p.qubit_b.omega, 1e-12);
    EXPECT_NEAR(e[h.index(2, 0, 0)],
                2 * p.qubit_a.omega + p.qubit_a.alpha, 1e-9);
    EXPECT_NEAR(e[h.index(0, 0, 2)], 2 * wc + p.coupler.alpha, 1e-9);
}

TEST(Hamiltonian, CouplingCountForThreeLevels)
{
    PairDeviceParams p = testDevice().edgeParams(0);
    const PairHamiltonian h(p);
    // Each exchange term couples 2*2*3 = 12 state pairs for 3-level
    // modes; three terms -> 36 entries.
    EXPECT_EQ(h.couplings().size(), 36u);
    for (const auto &e : h.couplings())
        EXPECT_LT(e.row, e.col);
}

TEST(Bias, FindsDeepZeroZz)
{
    const PairSimulator &sim = testSimulator();
    EXPECT_LT(sim.zzResidual(), 1e-8);
    // The bias point sits between the qubit frequencies.
    PairDeviceParams p = testDevice().edgeParams(0);
    EXPECT_GT(sim.omegaC0(), p.qubit_a.omega);
    EXPECT_LT(sim.omegaC0(), p.qubit_b.omega);
}

TEST(Bias, DressedStatesNearBare)
{
    const DressedStates &d = testSimulator().dressed();
    // Orthonormal columns.
    for (int k = 0; k < 4; ++k) {
        for (int l = 0; l < 4; ++l) {
            Complex ov{};
            for (size_t i = 0; i < d.vectors.rows(); ++i)
                ov += std::conj(d.vectors(i, k)) * d.vectors(i, l);
            EXPECT_NEAR(std::abs(ov), k == l ? 1.0 : 0.0, 1e-9);
        }
    }
    // Ground below the single excitations, both below |11>; the
    // relative order of |01| and |10| depends on which qubit is the
    // high-frequency one.
    EXPECT_LT(d.energies[0], d.energies[1]);
    EXPECT_LT(d.energies[0], d.energies[2]);
    EXPECT_LT(d.energies[1], d.energies[3]);
    EXPECT_LT(d.energies[2], d.energies[3]);
}

TEST(Bias, ZzChangesSignAcrossWindow)
{
    PairDeviceParams p = testDevice().edgeParams(0);
    const PairHamiltonian h(p);
    const double zz_lo = staticZZ(h, ghz(4.9));
    const double zz_hi = staticZZ(h, ghz(5.3));
    EXPECT_LT(zz_lo * zz_hi, 0.0);
}

TEST(Propagator, NoDriveGivesIdentity)
{
    // With xi = 0 the gate must stay the identity in the dressed
    // rotating frame -- a strong check of the frame bookkeeping.
    const PairSimulator &sim = testSimulator();
    const Trajectory tr = sim.simulateTrajectory(0.0, ghz(2.0), 30.0);
    for (size_t i = 0; i < tr.size(); i += 5) {
        EXPECT_NEAR(
            traceInfidelity(tr.at(i).unitary, Mat4::identity()), 0.0,
            1e-5)
            << "t=" << tr.at(i).duration;
        EXPECT_LT(tr.at(i).leakage, 1e-6);
    }
}

TEST(Propagator, SampledGatesAreUnitary)
{
    const PairSimulator &sim = testSimulator();
    const double wd = sim.dressedSplitting();
    const Trajectory tr = sim.simulateTrajectory(0.005, wd, 40.0);
    for (const auto &pt : tr.points())
        EXPECT_TRUE(pt.unitary.isUnitary(1e-8));
}

TEST(Propagator, WeakDriveIsXyTrajectory)
{
    // Baseline amplitude: tx == ty, tz ~ 0 (standard XY family).
    const PairSimulator &sim = testSimulator();
    const double wd = sim.calibrateDriveFrequency(0.005);
    const Trajectory tr = sim.simulateTrajectory(0.005, wd, 90.0);
    for (size_t i = 5; i < tr.size(); i += 10) {
        const CartanCoords &c = tr.at(i).coords;
        // Near-identity points may canonicalize at the I1 corner;
        // fold tx back for the XY comparison.
        const double tx_folded = std::min(c.tx, 1.0 - c.tx);
        EXPECT_NEAR(tx_folded, c.ty, 0.01) << tr.at(i).duration;
        EXPECT_LT(c.tz, 0.02) << tr.at(i).duration;
        EXPECT_LT(tr.at(i).leakage, 0.01);
    }
    // Interaction grows monotonically over the first half-period.
    EXPECT_GT(tr.at(80).coords.tx, tr.at(40).coords.tx);
    EXPECT_GT(tr.at(40).coords.tx, tr.at(10).coords.tx);
}

TEST(Propagator, SpeedScalesLinearlyWithAmplitude)
{
    const PairSimulator &sim = testSimulator();
    const double wd1 = sim.calibrateDriveFrequency(0.005);
    const double wd2 = sim.calibrateDriveFrequency(0.010);
    const Trajectory t1 = sim.simulateTrajectory(0.005, wd1, 110.0);
    const Trajectory t2 = sim.simulateTrajectory(0.010, wd2, 60.0);
    // Entangling power >= 1/6 marks the sqrt(iSWAP)-like point;
    // unlike raw tx it is immune to the I0/I1 corner ambiguity of
    // near-identity gates.
    auto crossing = [](const Trajectory &tr) {
        const auto idx =
            tr.firstIndexWhere([](const TrajectoryPoint &p) {
                return entanglingPower(p.coords) >= 1.0 / 6.0;
            });
        return idx ? tr.at(*idx).duration : -1.0;
    };
    const double c1 = crossing(t1);
    const double c2 = crossing(t2);
    ASSERT_GT(c1, 0.0);
    ASSERT_GT(c2, 0.0);
    // Doubling the amplitude should halve the time (Fig. 5).
    EXPECT_NEAR(c1 / c2, 2.0, 0.3);
}

TEST(Propagator, StrongDriveDeviatesFromStandard)
{
    // The tz component at the SWAP3 crossing grows with amplitude
    // (strong-drive nonstandard trajectory, Section VIII-B).
    const PairSimulator &sim = testSimulator();
    const double wd_weak = sim.calibrateDriveFrequency(0.005);
    const double wd_strong = sim.calibrateDriveFrequency(0.04);
    const Trajectory weak =
        sim.simulateTrajectory(0.005, wd_weak, 95.0);
    const Trajectory strong =
        sim.simulateTrajectory(0.04, wd_strong, 16.0);
    auto tz_at_crossing = [](const Trajectory &tr) {
        const auto idx =
            tr.firstIndexWhere([](const TrajectoryPoint &p) {
                return entanglingPower(p.coords) >= 1.0 / 6.0;
            });
        return idx ? tr.at(*idx).coords.tz : -1.0;
    };
    const double tz_weak = tz_at_crossing(weak);
    const double tz_strong = tz_at_crossing(strong);
    ASSERT_GE(tz_weak, 0.0);
    ASSERT_GE(tz_strong, 0.0);
    EXPECT_GT(tz_strong, 4.0 * tz_weak);
}

TEST(Propagator, IntegratorConvergence)
{
    // Halving dt should not move the sampled gates appreciably.
    PairDeviceParams p = testDevice().edgeParams(0);
    SimOptions coarse;
    coarse.dt = 0.01;
    SimOptions fine;
    fine.dt = 0.0025;
    const PairSimulator sim_coarse(p, testDevice().couplerOmegaMax(),
                                   coarse);
    const PairSimulator sim_fine(p, testDevice().couplerOmegaMax(),
                                 fine);
    const double wd = sim_coarse.dressedSplitting();
    const Trajectory tc = sim_coarse.simulateTrajectory(0.01, wd, 20.0);
    const Trajectory tf = sim_fine.simulateTrajectory(0.01, wd, 20.0);
    ASSERT_EQ(tc.size(), tf.size());
    for (size_t i = 0; i < tc.size(); i += 4) {
        EXPECT_LT(traceInfidelity(tc.at(i).unitary, tf.at(i).unitary),
                  1e-6)
            << "t=" << tc.at(i).duration;
    }
}

TEST(Propagator, SwapTransferPeaksOnResonance)
{
    const PairSimulator &sim = testSimulator();
    const double wd = sim.dressedSplitting();
    const double on = sim.swapTransferScore(0.01, wd, 120.0, 0.02);
    const double off =
        sim.swapTransferScore(0.01, wd + ghz(0.15), 120.0, 0.02);
    EXPECT_GT(on, 0.5);
    EXPECT_LT(off, 0.5 * on);
}

TEST(Device, CheckerboardColoring)
{
    const GridDevice &dev = testDevice();
    const CouplingMap &cm = dev.coupling();
    for (const auto &[a, b] : cm.edges()) {
        EXPECT_NE(dev.isHighFrequency(a), dev.isHighFrequency(b))
            << a << "," << b;
    }
}

TEST(Device, FrequencyGroupsMatchSpec)
{
    const GridDevice &dev = testDevice();
    double low_sum = 0.0, high_sum = 0.0;
    int low_n = 0, high_n = 0;
    for (int q = 0; q < dev.numQubits(); ++q) {
        const double f = dev.qubitFrequency(q) / kTwoPi;
        if (dev.isHighFrequency(q)) {
            high_sum += f;
            ++high_n;
        } else {
            low_sum += f;
            ++low_n;
        }
    }
    EXPECT_EQ(low_n + high_n, 100);
    EXPECT_NEAR(low_sum / low_n, 4.2, 0.2);
    EXPECT_NEAR(high_sum / high_n, 6.2, 0.3);
    // Means differ by ~2 GHz.
    EXPECT_NEAR(high_sum / high_n - low_sum / low_n, 2.0, 0.3);
}

TEST(Device, EdgeParamsOrientation)
{
    const GridDevice &dev = testDevice();
    const auto &[lo, hi] = dev.coupling().edges()[0];
    const PairDeviceParams p = dev.edgeParams(0);
    EXPECT_DOUBLE_EQ(p.qubit_a.omega, dev.qubitFrequency(lo));
    EXPECT_DOUBLE_EQ(p.qubit_b.omega, dev.qubitFrequency(hi));
}

TEST(Device, DeterministicPerSeed)
{
    GridDeviceParams a;
    a.seed = 7;
    GridDeviceParams b;
    b.seed = 7;
    GridDeviceParams c;
    c.seed = 8;
    const GridDevice da(a), db(b), dc(c);
    EXPECT_DOUBLE_EQ(da.qubitFrequency(13), db.qubitFrequency(13));
    EXPECT_NE(da.qubitFrequency(13), dc.qubitFrequency(13));
}

} // namespace
} // namespace qbasis
