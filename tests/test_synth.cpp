/**
 * @file
 * Tests for the synthesis library: gradient correctness, depth-
 * optimal synthesis of the paper's key targets (SWAP in 3, CNOT in 2
 * from sqiSW, etc.), textbook circuits, the decomposition cache, and
 * the depth-prediction fast path.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "linalg/su2.hpp"
#include "synth/cache.hpp"
#include "synth/engine.hpp"
#include "synth/numerical.hpp"
#include "synth/textbook.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "weyl/cartan.hpp"
#include "weyl/gates.hpp"
#include "weyl/kak.hpp"

namespace qbasis {
namespace {

SynthOptions
fastSynth()
{
    SynthOptions o;
    o.restarts = 6;
    o.adam_iters = 600;
    return o;
}

TEST(Decomposition, ReconstructAndDuration)
{
    TwoQubitDecomposition d = swapFromThreeCnots();
    EXPECT_TRUE(d.wellFormed());
    EXPECT_EQ(d.layers(), 3);
    // Paper's duration model: 3 * t2q + 4 * t1q.
    EXPECT_DOUBLE_EQ(d.duration(83.04, 20.0), 3 * 83.04 + 4 * 20.0);
}

TEST(Textbook, SwapFromThreeCnotsIsExact)
{
    const TwoQubitDecomposition d = swapFromThreeCnots();
    EXPECT_LT(d.infidelity, 1e-12);
    EXPECT_LT(d.reconstruct().maxAbsDiff(swapGate()), 1e-12);
}

TEST(Textbook, CnotFromCzIsExact)
{
    const TwoQubitDecomposition d = cnotFromCz();
    EXPECT_LT(d.infidelity, 1e-12);
    EXPECT_LT(d.reconstruct().maxAbsDiff(cnotGate()), 1e-12);
}

TEST(Synth, GradientMatchesFiniteDifference)
{
    // Validate the analytic gradient of the synthesis objective by
    // synthesizing "one step" manually: run zero Adam iterations is
    // not exposed, so probe through a tiny synthesis fixture.
    // Instead: build the objective indirectly -- synthesize with one
    // restart and few iters, then check improvement happened, plus a
    // finite-difference probe through the public fixed-depth API is
    // impractical; the real gradient check lives in test_linalg's
    // dU3 tests and here via convergence quality below.
    SynthOptions o = fastSynth();
    o.restarts = 2;
    const TwoQubitDecomposition d =
        synthesizeGateFixedDepth(cnotGate(), sqrtIswapGate(), 2, o);
    EXPECT_LT(d.infidelity, 1e-8);
}

struct SynthCase
{
    const char *name;
    Mat4 (*target)();
    Mat4 (*basis)();
    int expected_layers;
};

class SynthKnownDepth : public ::testing::TestWithParam<SynthCase>
{
};

TEST_P(SynthKnownDepth, ReachesTargetAtKnownDepth)
{
    const auto &c = GetParam();
    const TwoQubitDecomposition d =
        synthesizeGate(c.target(), c.basis(), fastSynth());
    EXPECT_EQ(d.layers(), c.expected_layers) << c.name;
    EXPECT_LT(d.infidelity, 1e-8) << c.name;
    EXPECT_TRUE(d.wellFormed()) << c.name;
    // Reconstruction matches the target up to global phase.
    EXPECT_LT(traceInfidelity(d.reconstruct(), c.target()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, SynthKnownDepth,
    ::testing::Values(
        SynthCase{"SwapFrom3Cnot", swapGate, cnotGate, 3},
        SynthCase{"SwapFrom3Iswap", swapGate, iswapGate, 3},
        SynthCase{"SwapFrom3SqrtIswap", swapGate, sqrtIswapGate, 3},
        SynthCase{"SwapFrom2B", swapGate, bGate, 2},
        SynthCase{"CnotFrom2SqrtIswap", cnotGate, sqrtIswapGate, 2},
        SynthCase{"CnotFrom2B", cnotGate, bGate, 2},
        SynthCase{"CnotFrom1Cz", cnotGate, czGate, 1},
        SynthCase{"IswapFrom2SqrtIswap", iswapGate, sqrtIswapGate, 2},
        SynthCase{"CzFrom1Cnot", czGate, cnotGate, 1}),
    [](const ::testing::TestParamInfo<SynthCase> &info) {
        return info.param.name;
    });

TEST(Synth, LocalTargetNeedsZeroLayers)
{
    Rng rng(1);
    const Mat4 local = randomLocal4(rng);
    const TwoQubitDecomposition d =
        synthesizeGate(local, cnotGate(), fastSynth());
    EXPECT_EQ(d.layers(), 0);
    EXPECT_LT(d.infidelity, 1e-9);
}

TEST(Synth, RandomTargetsFromBGate)
{
    // Any 2Q gate synthesizes from 2 B gates (Section II-C).
    Rng rng(2);
    for (int i = 0; i < 4; ++i) {
        const Mat4 target = randomSU4(rng);
        const TwoQubitDecomposition d =
            synthesizeGate(target, bGate(), fastSynth());
        EXPECT_LE(d.layers(), 2);
        EXPECT_LT(d.infidelity, 1e-7);
    }
}

TEST(Synth, RandomTargetsFromSqrtIswapWithinThree)
{
    // Huang et al.: any 2Q gate within 3 sqiSW layers.
    Rng rng(3);
    for (int i = 0; i < 4; ++i) {
        const Mat4 target = randomSU4(rng);
        const TwoQubitDecomposition d =
            synthesizeGate(target, sqrtIswapGate(), fastSynth());
        EXPECT_LE(d.layers(), 3);
        EXPECT_LT(d.infidelity, 1e-7);
    }
}

TEST(Synth, CrzIntoNonstandardBasis)
{
    // QFT-style controlled-phase targets into a nonstandard basis
    // gate (off-trajectory canonical point with a ZZ component).
    const Mat4 basis = canonicalGate(0.28, 0.21, 0.05);
    for (double theta : {kPi / 2.0, kPi / 4.0, kPi / 8.0}) {
        const TwoQubitDecomposition d =
            synthesizeGate(cphaseGate(theta), basis, fastSynth());
        EXPECT_LE(d.layers(), 3);
        EXPECT_LT(d.infidelity, 1e-7) << theta;
    }
}

TEST(Synth, FixedDepthMatchesRequestedDepth)
{
    const TwoQubitDecomposition d = synthesizeGateFixedDepth(
        swapGate(), cnotGate(), 3, fastSynth());
    EXPECT_EQ(d.layers(), 3);
    EXPECT_LT(d.infidelity, 1e-8);
}

TEST(Synth, InfeasibleDepthReportsHighInfidelity)
{
    // SWAP cannot be reached from 2 CNOT layers.
    const TwoQubitDecomposition d = synthesizeGateFixedDepth(
        swapGate(), cnotGate(), 2, fastSynth());
    EXPECT_GT(d.infidelity, 1e-3);
}

TEST(Synth, DepthPredictionSkipsInfeasibleDepths)
{
    // With prediction on, SWAP-from-CNOT goes straight to 3 layers;
    // both paths give the same (depth-3) result.
    SynthOptions with_pred = fastSynth();
    with_pred.use_depth_prediction = true;
    SynthOptions without_pred = fastSynth();
    without_pred.use_depth_prediction = false;

    const TwoQubitDecomposition a =
        synthesizeGate(swapGate(), cnotGate(), with_pred);
    const TwoQubitDecomposition b =
        synthesizeGate(swapGate(), cnotGate(), without_pred);
    EXPECT_EQ(a.layers(), 3);
    EXPECT_EQ(b.layers(), 3);
    EXPECT_LT(a.infidelity, 1e-8);
    EXPECT_LT(b.infidelity, 1e-8);
}

TEST(Synth, DurationModelMatchesPaperTableOne)
{
    // Baseline row of Table I: SWAP = 3 layers -> 329.1 ns,
    // CNOT = 2 layers -> 226.1 ns at t_basis = 83.04, t_1q = 20.
    const TwoQubitDecomposition swap_d = swapFromThreeCnots();
    EXPECT_NEAR(swap_d.duration(83.04, 20.0), 329.1, 0.05);
    TwoQubitDecomposition cnot_d;
    cnot_d.basis.assign(2, sqrtIswapGate());
    cnot_d.locals.resize(3);
    EXPECT_NEAR(cnot_d.duration(83.04, 20.0), 226.1, 0.05);
}

TEST(Cache, HitsAndMisses)
{
    DecompositionCache cache;
    const SynthOptions o = fastSynth();
    const auto d1 =
        cache.getOrSynthesize(0, cnotGate(), sqrtIswapGate(), o);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    const auto d2 =
        cache.getOrSynthesize(0, cnotGate(), sqrtIswapGate(), o);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_LT(d1.reconstruct().maxAbsDiff(d2.reconstruct()), 1e-12);
    // Same Weyl class on a different edge -> shared entry (the basis
    // hash, not the edge id, scopes the cache).
    cache.getOrSynthesize(1, cnotGate(), sqrtIswapGate(), o);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    // Different target class -> separate entry.
    cache.getOrSynthesize(0, swapGate(), sqrtIswapGate(), o);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, HashDistinguishesGates)
{
    EXPECT_NE(DecompositionCache::hashGate(cnotGate()),
              DecompositionCache::hashGate(czGate()));
    EXPECT_NE(DecompositionCache::hashGate(cphaseGate(0.5)),
              DecompositionCache::hashGate(cphaseGate(0.5001)));
    EXPECT_EQ(DecompositionCache::hashGate(swapGate()),
              DecompositionCache::hashGate(swapGate()));
}

TEST(Cache, WeylClassSharing)
{
    // Random local dressings of one canonical gate are all locally
    // equivalent: the first lookup synthesizes the class, every
    // dressed variant afterwards is a hit, and each dressed result
    // still reconstructs its own target exactly.
    DecompositionCache cache;
    const SynthOptions o = fastSynth();
    const Mat4 basis = canonicalGate(0.28, 0.21, 0.05);
    const Mat4 core = canonicalGate(0.37, 0.16, 0.02);

    Rng rng(11);
    cache.getOrSynthesize(0, core, basis, o);
    EXPECT_EQ(cache.misses(), 1u);
    for (int i = 0; i < 4; ++i) {
        const Mat4 dressed =
            Mat4::kron(randomSU2(rng), randomSU2(rng)) * core
            * Mat4::kron(randomSU2(rng), randomSU2(rng));
        const TwoQubitDecomposition d =
            cache.getOrSynthesize(i, dressed, basis, o);
        EXPECT_LT(d.infidelity, 1e-7);
        EXPECT_LT(traceInfidelity(d.reconstruct(), dressed), 1e-7);
        EXPECT_TRUE(d.wellFormed());
    }
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 4u);
}

TEST(Cache, OrientationSharing)
{
    // SWAP-conjugated (qubit-reversed) targets keep their canonical
    // coordinates, so both orientations of a gate share one class.
    DecompositionCache cache;
    const SynthOptions o = fastSynth();
    const Mat4 basis = canonicalGate(0.28, 0.21, 0.05);
    const Mat4 target = cphaseGate(0.9) * Mat4::kron(rx(0.3), rz(0.7));
    const Mat4 reversed = swapGate() * target * swapGate();

    cache.getOrSynthesize(0, target, basis, o);
    const TwoQubitDecomposition d =
        cache.getOrSynthesize(0, reversed, basis, o);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_LT(traceInfidelity(d.reconstruct(), reversed), 1e-7);
}

TEST(Cache, BasisChangeInvalidates)
{
    // The drift-cycle bug the raw (edge, target) key had: after the
    // edge's basis gate changes, the same target must re-synthesize
    // instead of returning the stale decomposition.
    DecompositionCache cache;
    const SynthOptions o = fastSynth();
    const Mat4 basis_old = canonicalGate(0.28, 0.21, 0.05);
    const Mat4 basis_new = canonicalGate(0.30, 0.22, 0.06);

    const TwoQubitDecomposition d_old =
        cache.getOrSynthesize(0, swapGate(), basis_old, o);
    EXPECT_EQ(cache.misses(), 1u);
    const TwoQubitDecomposition d_new =
        cache.getOrSynthesize(0, swapGate(), basis_new, o);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
    // Both decompose SWAP, but into their own basis gates.
    for (const Mat4 &b : d_old.basis)
        EXPECT_LT(b.maxAbsDiff(basis_old), 1e-12);
    for (const Mat4 &b : d_new.basis)
        EXPECT_LT(b.maxAbsDiff(basis_new), 1e-12);
}

TEST(Cache, OptionsChangeInvalidates)
{
    DecompositionCache cache;
    SynthOptions o = fastSynth();
    cache.getOrSynthesize(0, cnotGate(), sqrtIswapGate(), o);
    SynthOptions o2 = o;
    o2.seed += 1;
    cache.getOrSynthesize(0, cnotGate(), sqrtIswapGate(), o2);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CanonicalKakForCache, ExactDressingAndClassStability)
{
    // The cache's correctness rests on canonicalKakDecompose being an
    // exact identity with chamber coordinates: spot-check both here
    // on the gate family the transpiler actually feeds it.
    Rng rng(23);
    for (int i = 0; i < 8; ++i) {
        const Mat4 u = randomSU4(rng);
        const CanonicalKak ck = canonicalKakDecompose(u);
        EXPECT_LT(ck.reconstruct().maxAbsDiff(u), 1e-9);
        EXPECT_TRUE(inCanonicalChamber(ck.coords, 1e-8));
        // Coordinates agree with the coordinate-only canonicalizer.
        EXPECT_LT(ck.coords.distance(cartanCoords(u)), 1e-8);
        // Local dressing does not move the class.
        const Mat4 dressed =
            Mat4::kron(randomSU2(rng), randomSU2(rng)) * u
            * Mat4::kron(randomSU2(rng), randomSU2(rng));
        const CanonicalKak cd = canonicalKakDecompose(dressed);
        EXPECT_LT(ck.coords.distance(cd.coords), 1e-9);
    }
}

namespace {

/** Bitwise equality of two decompositions (no tolerance). */
bool
bitIdentical(const TwoQubitDecomposition &a,
             const TwoQubitDecomposition &b)
{
    auto same = [](const Complex &x, const Complex &y) {
        return std::memcmp(&x, &y, sizeof(Complex)) == 0;
    };
    if (a.layers() != b.layers() || a.infidelity != b.infidelity
        || !same(a.phase, b.phase))
        return false;
    for (size_t j = 0; j < a.locals.size(); ++j) {
        for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 2; ++c) {
                if (!same(a.locals[j].q1(r, c), b.locals[j].q1(r, c))
                    || !same(a.locals[j].q0(r, c),
                             b.locals[j].q0(r, c)))
                    return false;
            }
        }
    }
    return true;
}

std::vector<SynthRequest>
engineTestRequests()
{
    const Mat4 basis = canonicalGate(0.28, 0.21, 0.05);
    std::vector<SynthRequest> reqs;
    Rng rng(31);
    for (double theta : {kPi / 2.0, kPi / 4.0, kPi / 2.0}) {
        SynthRequest r;
        r.target = cphaseGate(theta);
        r.basis = basis;
        reqs.push_back(r);
        SynthRequest dressed;
        dressed.target = Mat4::kron(randomSU2(rng), randomSU2(rng))
                         * cphaseGate(theta)
                         * Mat4::kron(randomSU2(rng), randomSU2(rng));
        dressed.basis = basis;
        reqs.push_back(dressed);
    }
    SynthRequest s;
    s.target = swapGate();
    s.basis = basis;
    reqs.push_back(s);
    return reqs;
}

} // namespace

TEST(Engine, DeterministicAcrossThreadCounts)
{
    // Same seed => bit-identical selected decompositions at 1 and N
    // threads, and identical to the serial cache path.
    const SynthOptions o = fastSynth();
    const std::vector<SynthRequest> reqs = engineTestRequests();

    SynthEngine e1(1), e4(4);
    DecompositionCache c1, c4, cs;
    const auto r1 = e1.synthesizeBatch(reqs, c1, o);
    const auto r4 = e4.synthesizeBatch(reqs, c4, o);
    std::vector<TwoQubitDecomposition> rs;
    for (const SynthRequest &q : reqs)
        rs.push_back(cs.getOrSynthesize(q.edge_id, q.target, q.basis,
                                        o));

    ASSERT_EQ(r1.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(bitIdentical(r1[i], r4[i])) << "request " << i;
        EXPECT_TRUE(bitIdentical(r1[i], rs[i])) << "request " << i;
        EXPECT_LT(traceInfidelity(r1[i].reconstruct(),
                                  reqs[i].target), 1e-7);
    }
    // Counter semantics match the serial lookup loop.
    EXPECT_EQ(c1.hits(), cs.hits());
    EXPECT_EQ(c1.misses(), cs.misses());
    EXPECT_EQ(c4.size(), cs.size());
}

TEST(Engine, ReusesWarmCacheAcrossBatches)
{
    const SynthOptions o = fastSynth();
    const std::vector<SynthRequest> reqs = engineTestRequests();
    SynthEngine engine(2);
    DecompositionCache cache;
    engine.synthesizeBatch(reqs, cache, o);
    const uint64_t misses_first = cache.misses();
    engine.synthesizeBatch(reqs, cache, o);
    EXPECT_EQ(cache.misses(), misses_first);
    EXPECT_GE(cache.hits(), reqs.size());
}


/** Arms fault injection for one test scope; disarms on exit. */
struct ScopedFaults
{
    explicit ScopedFaults(const FaultPlan &plan)
    {
        configureFaults(plan);
    }
    ~ScopedFaults() { disableFaults(); }
};

TEST(EngineFaults, OneBadRestartDoesNotKillTheBatch)
{
    // A deliberately-throwing restart (injected at the synth.restart
    // probe) is contained as an aborted slot: the remaining restarts
    // of the wave still synthesize the class and the batch succeeds.
    FaultPlan plan;
    plan.seed = 1234;
    plan.probability = 1.0;
    plan.site_filter = "synth.restart";
    plan.max_fires = 1; // deterministic: single-threaded engine
    ScopedFaults faults(plan);

    const SynthOptions o = fastSynth();
    SynthEngine engine(1);
    DecompositionCache cache;
    const std::vector<SynthRequest> reqs{
        {0, swapGate(), sqrtIswapGate()}};
    std::vector<TwoQubitDecomposition> out;
    ASSERT_NO_THROW(out = engine.synthesizeBatch(reqs, cache, o));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_LT(traceInfidelity(out[0].reconstruct(), swapGate()),
              1e-7);
    EXPECT_EQ(engine.stats().restarts_failed, 1u);
    EXPECT_EQ(faultStats().fired, 1u);
}

TEST(EngineFaults, AllRestartsFailSurfacesOneCleanError)
{
    // When every restart of every wave throws, the job fails with a
    // single clean runtime_error (not the raw first exception, not a
    // panic about missing candidates).
    FaultPlan plan;
    plan.seed = 7;
    plan.probability = 1.0;
    plan.site_filter = "synth.restart";
    ScopedFaults faults(plan);

    const SynthOptions o = fastSynth();
    SynthEngine engine(2);
    DecompositionCache cache;
    const std::vector<SynthRequest> reqs{
        {0, swapGate(), sqrtIswapGate()}};
    try {
        engine.synthesizeBatch(reqs, cache, o);
        FAIL() << "expected an all-restarts-failed error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("restarts failed"),
                  std::string::npos)
            << "unexpected message: " << e.what();
    }
    EXPECT_GT(engine.stats().restarts_failed, 0u);
}

TEST(SynthSequence, CnotPlusIswapMakesSwapInTwoLayers)
{
    // The paper's Fig. 4(b) example pair: CNOT and its Appendix-B
    // mirror iSWAP synthesize SWAP in two layers.
    const TwoQubitDecomposition dec = synthesizeGateSequence(
        swapGate(), {cnotGate(), iswapGate()}, fastSynth());
    EXPECT_EQ(dec.layers(), 2);
    EXPECT_LT(dec.infidelity, 1e-8);
    EXPECT_LT(traceInfidelity(dec.reconstruct(), swapGate()), 1e-8);
    // Order must not matter for feasibility.
    const TwoQubitDecomposition rev = synthesizeGateSequence(
        swapGate(), {iswapGate(), cnotGate()}, fastSynth());
    EXPECT_LT(rev.infidelity, 1e-8);
}

TEST(SynthSequence, TwoCnotsCannotMakeSwap)
{
    const TwoQubitDecomposition dec = synthesizeGateSequence(
        swapGate(), {cnotGate(), cnotGate()}, fastSynth());
    EXPECT_GT(dec.infidelity, 1e-3);
}

TEST(SynthSequence, EmptySequenceMeansLocalTarget)
{
    const TwoQubitDecomposition dec =
        synthesizeGateSequence(Mat4::identity(), {}, fastSynth());
    EXPECT_EQ(dec.layers(), 0);
    EXPECT_LT(dec.infidelity, 1e-10);
}

} // namespace
} // namespace qbasis
