/**
 * @file
 * Cross-module integration tests: semantic correctness of the whole
 * compile path against the statevector simulator, duration-model
 * consistency between synthesis and scheduling, QFT-adder routing on
 * a device, and baseline-vs-nonstandard invariants the paper's
 * results rest on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/cuccaro.hpp"
#include "apps/qft.hpp"
#include "circuit/statevector.hpp"
#include "circuit/unitary.hpp"
#include "core/experiment.hpp"
#include "noise/coherence.hpp"
#include "synth/textbook.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

std::vector<EdgeBasis>
uniformBases(const CouplingMap &cm, const Mat4 &gate, double dur)
{
    std::vector<EdgeBasis> bases(cm.edges().size());
    for (auto &b : bases) {
        b.gate = gate;
        b.duration_ns = dur;
        b.label = "basis";
    }
    return bases;
}

TEST(Integration, QftAdderCompiledOnLineStillAdds)
{
    // Full pipeline (SABRE + translation into sqiSW) must preserve
    // the adder's arithmetic, checked through the statevector.
    const int bits = 2;
    const Circuit adder = qftAdderCircuit(bits); // 4 qubits
    const CouplingMap cm = CouplingMap::line(4);
    const auto bases = uniformBases(cm, sqrtIswapGate(), 50.0);
    DecompositionCache cache;
    const TranspileResult compiled =
        transpileCircuit(adder, cm, bases, SynthRoute::local(&cache), TranspileOptions{});

    const size_t mod = 1u << bits;
    for (size_t a = 0; a < mod; ++a) {
        for (size_t b = 0; b < mod; ++b) {
            // Input on logical wires -> physical by initial layout.
            Statevector sv(4);
            size_t phys_state = 0;
            for (int bit = 0; bit < 2 * bits; ++bit) {
                const bool on =
                    bit < bits ? (a >> bit) & 1
                               : (b >> (bit - bits)) & 1;
                if (on) {
                    phys_state |=
                        1u << compiled.initial_layout[bit];
                }
            }
            sv.setBasisState(phys_state);
            sv.applyCircuit(compiled.physical);

            // Expected output collected through the final layout.
            const size_t sum = (a + b) % mod;
            size_t expect = 0;
            for (int bit = 0; bit < 2 * bits; ++bit) {
                const bool on =
                    bit < bits ? (a >> bit) & 1
                               : (sum >> (bit - bits)) & 1;
                if (on)
                    expect |= 1u << compiled.final_layout[bit];
            }
            EXPECT_NEAR(sv.probability(expect), 1.0, 1e-6)
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Integration, NonstandardBasisCompilesToffoliCorrectly)
{
    // A Toffoli-bearing circuit through a ZZ-deviated basis gate.
    Circuit c(3);
    appendToffoli(c, 0, 1, 2);
    const CouplingMap cm = CouplingMap::line(3);
    const Mat4 basis = canonicalGate(0.24, 0.22, 0.04);
    const auto bases = uniformBases(cm, basis, 12.0);
    DecompositionCache cache;
    const TranspileResult compiled =
        transpileCircuit(c, cm, bases, SynthRoute::local(&cache), TranspileOptions{});
    // Verify truth table through layouts.
    for (size_t in = 0; in < 8; ++in) {
        Statevector sv(3);
        size_t phys = 0;
        for (int bit = 0; bit < 3; ++bit)
            if ((in >> bit) & 1)
                phys |= 1u << compiled.initial_layout[bit];
        sv.setBasisState(phys);
        sv.applyCircuit(compiled.physical);
        size_t logical_out = in;
        if ((in & 1) && (in & 2))
            logical_out ^= 4;
        size_t expect = 0;
        for (int bit = 0; bit < 3; ++bit)
            if ((logical_out >> bit) & 1)
                expect |= 1u << compiled.final_layout[bit];
        EXPECT_NEAR(sv.probability(expect), 1.0, 1e-6) << in;
    }
}

TEST(Integration, ScheduleDurationMatchesDecompositionModel)
{
    // A single CX compiled into sqiSW: schedule makespan must equal
    // the decomposition's duration model (2 layers + 3 1Q layers),
    // since the two local gates of each layer run in parallel.
    Circuit c(2);
    c.cx(0, 1);
    const CouplingMap cm = CouplingMap::line(2);
    const auto bases = uniformBases(cm, sqrtIswapGate(), 83.0);
    DecompositionCache cache;
    const TranspileResult compiled =
        transpileCircuit(c, cm, bases, SynthRoute::local(&cache), TranspileOptions{});
    const Schedule sched = scheduleAsap(
        compiled.physical, edgeDurationModel(cm, bases, 20.0));
    const TwoQubitDecomposition &dec = cache.getOrSynthesize(
        0, cnotGate(), sqrtIswapGate(), SynthOptions{});
    EXPECT_EQ(dec.layers(), 2);
    // Some locals may merge away (identity products), so the
    // schedule can only be shorter or equal.
    EXPECT_LE(sched.makespan, dec.duration(83.0, 20.0) + 1e-9);
    EXPECT_GE(sched.makespan, 2 * 83.0);
}

TEST(Integration, TextbookSwapMatchesSynthesizedDuration)
{
    const TwoQubitDecomposition textbook = swapFromThreeCnots();
    const TwoQubitDecomposition synthesized = synthesizeGate(
        swapGate(), cnotGate(), SynthOptions{});
    EXPECT_EQ(textbook.layers(), synthesized.layers());
    EXPECT_DOUBLE_EQ(textbook.duration(90.0, 20.0),
                     synthesized.duration(90.0, 20.0));
}

TEST(Integration, FidelityModelFavorsShorterBasisGates)
{
    // Same circuit, same topology, two uniform basis sets differing
    // only in duration: the faster set must win under the paper's
    // e^{-t/T} model.
    const Circuit qft = qftCircuit(5);
    const CouplingMap cm = CouplingMap::grid(2, 3);
    const auto slow = uniformBases(cm, sqrtIswapGate(), 83.0);
    const auto fast = uniformBases(cm, sqrtIswapGate(), 10.0);
    DecompositionCache cache_slow, cache_fast;
    const TranspileResult cs =
        transpileCircuit(qft, cm, slow, SynthRoute::local(&cache_slow),
                         TranspileOptions{});
    const TranspileResult cf =
        transpileCircuit(qft, cm, fast, SynthRoute::local(&cache_fast),
                         TranspileOptions{});
    const double fs = circuitCoherenceFidelity(
        scheduleAsap(cs.physical, edgeDurationModel(cm, slow, 20.0)),
        80e3);
    const double ff = circuitCoherenceFidelity(
        scheduleAsap(cf.physical, edgeDurationModel(cm, fast, 20.0)),
        80e3);
    EXPECT_GT(ff, fs);
}

TEST(Integration, HeterogeneousBasesCompileCorrectly)
{
    // Different gate on every edge (the paper's core premise): the
    // translated circuit must still be semantically correct.
    const CouplingMap cm = CouplingMap::line(4);
    std::vector<EdgeBasis> bases(cm.edges().size());
    const CartanCoords pts[3] = {{0.26, 0.22, 0.03},
                                 {0.30, 0.25, 0.06},
                                 {0.24, 0.24, 0.0}};
    for (size_t e = 0; e < bases.size(); ++e) {
        bases[e].gate =
            canonicalGate(pts[e].tx, pts[e].ty, pts[e].tz);
        bases[e].duration_ns = 10.0 + e;
        bases[e].label = "edge" + std::to_string(e);
    }
    Circuit c(4);
    c.h(0);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    c.cphase(3, 2, 0.7);
    DecompositionCache cache;
    const TranspileResult compiled =
        transpileCircuit(c, cm, bases, SynthRoute::local(&cache), TranspileOptions{});

    Circuit embedded(4);
    for (const Gate &g : c.gates()) {
        Gate gg = g;
        for (int &q : gg.qubits)
            q = compiled.initial_layout[q];
        embedded.append(std::move(gg));
    }
    std::vector<int> perm(4);
    for (int p = 0; p < 4; ++p)
        perm[p] = p;
    for (size_t l = 0; l < compiled.initial_layout.size(); ++l)
        perm[compiled.initial_layout[l]] = compiled.final_layout[l];
    EXPECT_TRUE(circuitsEquivalentUpToPermutation(
        embedded, compiled.physical, perm, 1e-6));
}

} // namespace
} // namespace qbasis
