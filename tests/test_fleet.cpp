/**
 * @file
 * Fleet-driver and shared-cache tests: claim/publish semantics,
 * concurrent insert/lookup stress (the sanitizer job's canary),
 * cross-device Weyl-class dedupe, and bit-determinism of fleet
 * results at 1 vs N shards.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bv.hpp"
#include "core/fleet.hpp"
#include "synth/engine.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"

namespace qbasis {
namespace {

/** Cheap-but-converging synthesis settings for test fleets. */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

/** Minimal fleet device: a 1x2 grid (single edge). */
FleetDeviceSpec
tinySpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 1;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

FleetOptions
tinyFleetOptions(int shards)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = 2;
    opts.synth = cheapSynth();
    return opts;
}

TwoQubitDecomposition
dummyDecomposition(double tag)
{
    TwoQubitDecomposition dec;
    dec.locals.resize(1);
    dec.infidelity = tag;
    return dec;
}

// --- SharedDecompositionCache unit behavior ------------------------

TEST(SharedCache, ClaimPublishLookupCounters)
{
    SharedDecompositionCache cache(4);
    DecompositionCache::ClassKey key{42u, 1, 2, 3};

    const TwoQubitDecomposition *out = nullptr;
    ASSERT_EQ(cache.acquire(key, 0, 3, &out),
              SharedDecompositionCache::Claim::Owner);
    // The claim is one miss; the other two batched lookups are hits.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.size(), 0u); // not published yet

    const TwoQubitDecomposition *stored =
        cache.publish(key, dummyDecomposition(0.5));
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(cache.size(), 1u);

    // Second device: plain hit, counted as cross-device in stats.
    ASSERT_EQ(cache.acquire(key, 1, 2, &out),
              SharedDecompositionCache::Claim::Ready);
    EXPECT_EQ(out, stored);
    EXPECT_EQ(cache.hits(), 4u);
    EXPECT_EQ(cache.misses(), 1u);

    const auto st = cache.stats();
    EXPECT_EQ(st.classes, 1u);
    EXPECT_EQ(st.multi_device_classes, 1u);
    EXPECT_EQ(st.cross_device_hits, 2u);
    EXPECT_NEAR(st.crossDeviceHitRate(), 2.0 / 5.0, 1e-12);
}

TEST(SharedCache, AbandonReleasesClaim)
{
    SharedDecompositionCache cache(2);
    DecompositionCache::ClassKey key{7u, 0, 0, 0};
    ASSERT_EQ(cache.acquire(key, 0, 1, nullptr),
              SharedDecompositionCache::Claim::Owner);
    cache.abandon(key);
    // Abandoned entry is gone; the next client re-claims.
    ASSERT_EQ(cache.acquire(key, 1, 1, nullptr),
              SharedDecompositionCache::Claim::Owner);
    cache.publish(key, dummyDecomposition(0.25));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedCache, PendingWaitersSeePublishedEntry)
{
    SharedDecompositionCache cache(2);
    DecompositionCache::ClassKey key{9u, 4, 5, 6};
    ASSERT_EQ(cache.acquire(key, 0, 1, nullptr),
              SharedDecompositionCache::Claim::Owner);
    ASSERT_EQ(cache.acquire(key, 1, 1, nullptr),
              SharedDecompositionCache::Claim::Pending);

    std::thread publisher(
        [&] { cache.publish(key, dummyDecomposition(0.125)); });
    const TwoQubitDecomposition *dec = cache.wait(key, 1);
    publisher.join();
    ASSERT_NE(dec, nullptr);
    EXPECT_EQ(dec->infidelity, 0.125);
    EXPECT_EQ(cache.hits() + cache.misses(), 2u);
}

TEST(SharedCache, ConcurrentInsertLookupStress)
{
    // Many threads race acquire/publish/wait over a small key space;
    // under the CI sanitizer job this is the striped-lock canary.
    constexpr int kThreads = 8;
    constexpr int kKeys = 48;
    constexpr int kRounds = 40;

    SharedDecompositionCache cache(4);
    std::atomic<uint64_t> observed{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &observed, t] {
            for (int r = 0; r < kRounds; ++r) {
                for (int k = 0; k < kKeys; ++k) {
                    // Distinct walk order per thread.
                    const int key_id =
                        (k * (t + 1) + r) % kKeys;
                    DecompositionCache::ClassKey key{
                        static_cast<uint64_t>(key_id), key_id, 0, 0};
                    const TwoQubitDecomposition *dec = nullptr;
                    switch (cache.acquire(key, t, 1, &dec)) {
                    case SharedDecompositionCache::Claim::Owner:
                        cache.publish(
                            key, dummyDecomposition(
                                     static_cast<double>(key_id)));
                        break;
                    case SharedDecompositionCache::Claim::Pending:
                        dec = cache.wait(key, 0);
                        ASSERT_NE(dec, nullptr);
                        [[fallthrough]];
                    case SharedDecompositionCache::Claim::Ready:
                        ASSERT_NE(dec, nullptr);
                        ASSERT_EQ(dec->infidelity,
                                  static_cast<double>(key_id));
                        observed.fetch_add(1);
                        break;
                    }
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Each class synthesized exactly once; every lookup accounted.
    EXPECT_EQ(cache.misses(), static_cast<uint64_t>(kKeys));
    EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
    const uint64_t lookups =
        static_cast<uint64_t>(kThreads) * kRounds * kKeys;
    // wait(key, 0) credits no hits, so the counter totals fall short
    // of `lookups` by exactly the number of Pending resolutions.
    EXPECT_LE(cache.hits() + cache.misses(), lookups);
    EXPECT_GE(cache.hits() + cache.misses() + observed.load(),
              lookups);
    const auto st = cache.stats();
    EXPECT_EQ(st.classes, static_cast<size_t>(kKeys));
    EXPECT_EQ(st.multi_device_classes, static_cast<size_t>(kKeys));
}

// --- Engine shared-cache batches -----------------------------------

bool
decompositionsBitIdentical(const TwoQubitDecomposition &a,
                           const TwoQubitDecomposition &b)
{
    if (a.layers() != b.layers()
        || a.locals.size() != b.locals.size()
        || a.infidelity != b.infidelity
        || a.phase.real() != b.phase.real()
        || a.phase.imag() != b.phase.imag())
        return false;
    for (size_t l = 0; l < a.locals.size(); ++l) {
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                const Complex ca1 = a.locals[l].q1(i, j);
                const Complex cb1 = b.locals[l].q1(i, j);
                const Complex ca0 = a.locals[l].q0(i, j);
                const Complex cb0 = b.locals[l].q0(i, j);
                if (ca1.real() != cb1.real()
                    || ca1.imag() != cb1.imag()
                    || ca0.real() != cb0.real()
                    || ca0.imag() != cb0.imag())
                    return false;
            }
        }
    }
    return true;
}

TEST(SharedBatch, BitIdenticalToLocalCacheBatch)
{
    // The multi-client path through the shared cache must produce
    // byte-for-byte the same decompositions as the single-device
    // batch through a local DecompositionCache.
    const SynthOptions opts = cheapSynth();
    std::vector<SynthRequest> requests;
    const Mat4 basis = canonicalGate(0.28, 0.21, 0.05);
    for (int e = 0; e < 3; ++e) {
        SynthRequest swap_req;
        swap_req.edge_id = e;
        swap_req.target = swapGate();
        swap_req.basis = basis;
        requests.push_back(swap_req);
        SynthRequest cnot_req = swap_req;
        cnot_req.target = cnotGate();
        requests.push_back(cnot_req);
    }

    SynthEngine engine(2);
    DecompositionCache local;
    const auto base = engine.synthesizeBatch(requests, local, opts);

    SharedDecompositionCache shared(4);
    const auto fleet =
        engine.synthesizeBatch(requests, shared, opts, /*device=*/5);

    ASSERT_EQ(base.size(), fleet.size());
    for (size_t i = 0; i < base.size(); ++i)
        EXPECT_TRUE(decompositionsBitIdentical(base[i], fleet[i]))
            << "request " << i;

    // Counter parity with the serial lookup loop.
    EXPECT_EQ(shared.hits(), local.hits());
    EXPECT_EQ(shared.misses(), local.misses());
}

TEST(SharedBatch, SecondDeviceHitsFirstDevicesClasses)
{
    const SynthOptions opts = cheapSynth();
    const Mat4 basis = canonicalGate(0.26, 0.2, 0.04);
    std::vector<SynthRequest> requests;
    SynthRequest req;
    req.edge_id = 0;
    req.target = cnotGate();
    req.basis = basis;
    requests.push_back(req);

    SynthEngine engine(2);
    SharedDecompositionCache shared(4);
    const auto a = engine.synthesizeBatch(requests, shared, opts, 0);
    const uint64_t misses_after_first = shared.misses();
    const auto b = engine.synthesizeBatch(requests, shared, opts, 1);

    EXPECT_EQ(shared.misses(), misses_after_first); // pure reuse
    const auto st = shared.stats();
    EXPECT_GT(st.cross_device_hits, 0u);
    EXPECT_EQ(st.multi_device_classes, st.classes);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(decompositionsBitIdentical(a[0], b[0]));
}

// --- Fleet driver --------------------------------------------------

class FleetTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

TEST_F(FleetTest, CrossDeviceDedupeOnReplicatedDevices)
{
    // Two byte-identical devices: the second must reuse every class
    // the first synthesized.
    std::vector<FleetDeviceSpec> specs{tinySpec(11), tinySpec(11)};
    FleetDriver fleet(tinyFleetOptions(2));
    const FleetReport report = fleet.run(specs);

    ASSERT_EQ(report.devices.size(), 2u);
    // Replicated devices produce identical summaries.
    EXPECT_EQ(report.devices[0].summary.avg_swap_ns,
              report.devices[1].summary.avg_swap_ns);
    EXPECT_EQ(report.devices[0].summary.avg_cnot_fidelity,
              report.devices[1].summary.avg_cnot_fidelity);
    EXPECT_GT(report.cache.multi_device_classes, 0u);
    EXPECT_GT(report.cache.cross_device_hits, 0u);
    // Dedupe means fleet-wide misses equal one device's classes.
    EXPECT_EQ(report.cache.misses,
              static_cast<uint64_t>(report.cache.classes));
    EXPECT_GT(report.cache.crossDeviceHitRate(), 0.0);
}

TEST_F(FleetTest, BitDeterministicAcrossShardCounts)
{
    // A pair of replicated devices plus one drifted outlier,
    // compiled workload included; 1 shard vs 3 shards must agree
    // bit-for-bit.
    std::vector<FleetDeviceSpec> specs{tinySpec(11), tinySpec(11),
                                       tinySpec(11)};
    specs[2].apply_drift = true;
    specs[2].drift.freq_rel = 1e-3;
    specs[2].drift.coupling_rel = 1e-2;
    std::vector<FleetCircuit> circuits;
    circuits.push_back({"bv2", bvAllOnesCircuit(2)});

    FleetDriver serial(tinyFleetOptions(1));
    const FleetReport a = serial.run(specs, circuits);
    FleetDriver sharded(tinyFleetOptions(3));
    const FleetReport b = sharded.run(specs, circuits);

    EXPECT_EQ(a.shards, 1);
    EXPECT_EQ(b.shards, 3);
    EXPECT_TRUE(fleetReportsBitIdentical(a, b));
    // Cross-device stats are deterministic too (defined against the
    // lowest device id, not the racy claim winner).
    EXPECT_EQ(a.cache.cross_device_hits, b.cache.cross_device_hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.cache.hits, b.cache.hits);

    // The drifted device genuinely diverged from the replicas.
    EXPECT_NE(a.devices[2].set.bases[0].duration_ns,
              a.devices[0].set.bases[0].duration_ns);
    // And circuit compilation produced sane scores everywhere.
    for (const FleetDeviceReport &dev : a.devices) {
        ASSERT_EQ(dev.circuits.size(), 1u);
        EXPECT_GT(dev.circuits[0].result.fidelity, 0.0);
        EXPECT_LE(dev.circuits[0].result.fidelity, 1.0);
        EXPECT_GT(dev.circuits[0].result.two_qubit_gates, 0u);
    }
}

TEST_F(FleetTest, DriftedCalibrationIsDeterministic)
{
    FleetDeviceSpec spec = tinySpec(11);
    spec.apply_drift = true;
    spec.drift.freq_rel = 1e-3;

    FleetDriver fleet_a(tinyFleetOptions(1));
    const FleetReport a = fleet_a.run({spec});
    FleetDriver fleet_b(tinyFleetOptions(1));
    const FleetReport b = fleet_b.run({spec});
    EXPECT_TRUE(fleetReportsBitIdentical(a, b));
}

} // namespace
} // namespace qbasis
