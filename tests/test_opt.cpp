/**
 * @file
 * Tests for the optimizer library: Nelder-Mead, Adam, multistart.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "opt/adam.hpp"
#include "opt/multistart.hpp"
#include "opt/nelder_mead.hpp"

namespace qbasis {
namespace {

double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - static_cast<double>(i);
        s += (i + 1) * d * d;
    }
    return s;
}

TEST(NelderMead, MinimizesQuadratic)
{
    const OptResult r = nelderMead(quadratic, {5.0, -3.0, 2.0});
    EXPECT_LT(r.fval, 1e-10);
    EXPECT_NEAR(r.x[0], 0.0, 1e-4);
    EXPECT_NEAR(r.x[1], 1.0, 1e-4);
    EXPECT_NEAR(r.x[2], 2.0, 1e-4);
}

TEST(NelderMead, MinimizesRosenbrock)
{
    auto rosen = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions opts;
    opts.max_iters = 4000;
    opts.ftol = 1e-16;
    const OptResult r = nelderMead(rosen, {-1.2, 1.0}, opts);
    EXPECT_LT(r.fval, 1e-8);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, EarlyStopOnTarget)
{
    NelderMeadOptions opts;
    opts.target = 1e-3;
    const OptResult r = nelderMead(quadratic, {3.0}, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.fval, 1e-3);
}

TEST(NelderMead, OneDimensional)
{
    auto f = [](const std::vector<double> &x) {
        return std::pow(x[0] - 2.5, 2.0);
    };
    const OptResult r = nelderMead(f, {10.0});
    EXPECT_NEAR(r.x[0], 2.5, 1e-5);
}

TEST(Adam, MinimizesQuadraticWithGradient)
{
    auto f = [](const std::vector<double> &x, std::vector<double> &g) {
        double s = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            const double d = x[i] - static_cast<double>(i);
            s += (i + 1) * d * d;
            g[i] = 2.0 * (i + 1) * d;
        }
        return s;
    };
    AdamOptions opts;
    opts.max_iters = 3000;
    opts.lr = 0.1;
    const OptResult r = adamMinimize(f, {4.0, -2.0, 7.0}, opts);
    EXPECT_LT(r.fval, 1e-8);
}

TEST(Adam, StopsAtGradientTolerance)
{
    auto f = [](const std::vector<double> &x, std::vector<double> &g) {
        g[0] = 0.0;
        return 1.0 + 0.0 * x[0];
    };
    const OptResult r = adamMinimize(f, {1.0});
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.iterations, 5);
}

TEST(Adam, TrigObjective)
{
    // min of -cos(x) at x = 0 (mod 2 pi).
    auto f = [](const std::vector<double> &x, std::vector<double> &g) {
        g[0] = std::sin(x[0]);
        return 1.0 - std::cos(x[0]);
    };
    AdamOptions opts;
    opts.max_iters = 2000;
    const OptResult r = adamMinimize(f, {0.7}, opts);
    EXPECT_LT(r.fval, 1e-8);
}

TEST(Multistart, FindsGlobalMinimumOfMultimodal)
{
    // f(x) = (x^2 - 1)^2 + 0.1 (x - 1): the tilt lowers the left
    // well, so the global minimum sits near x = -1.01 (f ~ -0.20)
    // with a local minimum near x = +0.99 (f ~ -0.0007).
    auto f = [](const std::vector<double> &x) {
        const double a = x[0] * x[0] - 1.0;
        return a * a + 0.1 * (x[0] - 1.0);
    };
    MultistartOptions ms;
    ms.max_restarts = 20;
    ms.target = -0.19; // global min value ~ -0.2006
    const OptResult r = multistart(
        [](Rng &rng) {
            return std::vector<double>{rng.uniform(-3.0, 3.0)};
        },
        [&](std::vector<double> x0) {
            return nelderMead(f, std::move(x0));
        },
        ms);
    EXPECT_NEAR(r.x[0], -1.01, 0.05);
    EXPECT_LE(r.fval, -0.19);
    EXPECT_TRUE(r.converged);
}

TEST(Multistart, StopsEarlyWhenTargetMet)
{
    int calls = 0;
    auto f = [&](const std::vector<double> &x) {
        return x[0] * x[0];
    };
    MultistartOptions ms;
    ms.max_restarts = 50;
    ms.target = 1e-8;
    multistart(
        [&calls](Rng &rng) {
            ++calls;
            return std::vector<double>{rng.uniform(-1.0, 1.0)};
        },
        [&](std::vector<double> x0) {
            return nelderMead(f, std::move(x0));
        },
        ms);
    EXPECT_LT(calls, 5);
}

} // namespace
} // namespace qbasis
