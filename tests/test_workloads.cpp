/**
 * @file
 * Workload-zoo tests: registry completeness and lookup, generator
 * determinism (the zoo must be a pure function of WorkloadParams for
 * the serving determinism contract to hold), width clamping, and the
 * structural-hash contract that makes trotter workloads plan-replay
 * traffic (same structure at a fresh angle) rather than plan misses.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "transpile/plan.hpp"

namespace qbasis {
namespace {

bool
sameGates(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits() ||
        a.gates().size() != b.gates().size())
        return false;
    for (size_t i = 0; i < a.gates().size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        if (ga.kind != gb.kind || ga.qubits != gb.qubits ||
            ga.params != gb.params)
            return false;
    }
    return true;
}

TEST(Workloads, RegistryIsCompleteAndLookupWorks)
{
    const auto &zoo = workloadZoo();
    ASSERT_EQ(zoo.size(), 4u);
    for (const char *name :
         {"ising", "heisenberg", "rcs", "adder_chain"}) {
        const WorkloadInfo *info = findWorkload(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_EQ(info->name, name);
        EXPECT_NE(info->make, nullptr);
        EXPECT_FALSE(info->family.empty());
    }
    EXPECT_EQ(findWorkload("no_such_workload"), nullptr);
}

TEST(Workloads, GeneratorsArePureFunctionsOfParams)
{
    // Two calls with identical params must emit identical gate
    // streams -- the zoo inherits serve/api's determinism contract
    // only if there is no hidden state.
    for (const auto &info : workloadZoo()) {
        WorkloadParams p;
        p.qubits = 8;
        p.depth = 2;
        EXPECT_TRUE(sameGates(info.make(p), info.make(p)))
            << info.name;
    }
}

TEST(Workloads, RcsSeedSelectsTheGateStream)
{
    WorkloadParams p;
    p.qubits = 6;
    p.depth = 2;
    p.seed = 2022;
    WorkloadParams q = p;
    q.seed = 7;
    EXPECT_TRUE(sameGates(rcsLayersCircuit(p), rcsLayersCircuit(p)));
    EXPECT_FALSE(sameGates(rcsLayersCircuit(p), rcsLayersCircuit(q)));
}

TEST(Workloads, WidthClampingRespectsGeneratorMinimums)
{
    // Cuccaro needs an even register of >= 6 qubits; the chain
    // generator clamps rather than fataling on narrow requests.
    for (int qubits : {1, 5, 6, 7, 10}) {
        WorkloadParams p;
        p.qubits = qubits;
        const Circuit c = adderChainCircuit(p);
        EXPECT_GE(c.numQubits(), 6) << qubits;
        EXPECT_EQ(c.numQubits() % 2, 0) << qubits;
    }
    // Trotter chains need at least one bond.
    WorkloadParams narrow;
    narrow.qubits = 1;
    EXPECT_GE(trotterIsingCircuit(narrow).numQubits(), 2);
    EXPECT_GE(trotterHeisenbergCircuit(narrow).numQubits(), 2);
}

TEST(Workloads, DepthScalesTwoQubitCount)
{
    for (const auto &info : workloadZoo()) {
        WorkloadParams p1;
        p1.qubits = 8;
        p1.depth = 1;
        WorkloadParams p3 = p1;
        p3.depth = 3;
        const size_t per_step = info.make(p1).countTwoQubit();
        ASSERT_GT(per_step, 0u) << info.name;
        if (info.name == "rcs") {
            // RCS alternates brickwork parity per layer, so growth
            // is monotone but not an exact multiple.
            EXPECT_GT(info.make(p3).countTwoQubit(), per_step);
        } else {
            EXPECT_EQ(info.make(p3).countTwoQubit(), 3 * per_step)
                << info.name;
        }
    }
}

TEST(Workloads, TrotterAngleIsParametricNotStructural)
{
    // The plan-cache replay tier keys on structure and falls back on
    // parameter values: a fresh trotter angle must keep the
    // structural hash and move only the fingerprint.
    WorkloadParams a;
    a.qubits = 8;
    a.theta = 0.35;
    WorkloadParams b = a;
    b.theta = 0.42;
    for (const char *name : {"ising", "heisenberg"}) {
        const Circuit ca = makeWorkload(name, a);
        const Circuit cb = makeWorkload(name, b);
        EXPECT_EQ(structuralCircuitHash(ca),
                  structuralCircuitHash(cb))
            << name;
        EXPECT_NE(circuitParamFingerprint(ca),
                  circuitParamFingerprint(cb))
            << name;
    }
}

TEST(Workloads, MakeWorkloadDispatchesThroughTheRegistry)
{
    WorkloadParams p;
    p.qubits = 6;
    p.depth = 2;
    EXPECT_TRUE(sameGates(makeWorkload("ising", p),
                          trotterIsingCircuit(p)));
    EXPECT_TRUE(sameGates(makeWorkload("rcs", p),
                          rcsLayersCircuit(p)));
}

TEST(Workloads, WorkloadRequestCarriesNameAndCircuit)
{
    WorkloadParams p;
    p.qubits = 8;
    const CompileRequest req = workloadRequest(42, 1, "ising", p);
    EXPECT_EQ(req.request_id, 42u);
    EXPECT_EQ(req.device_id, 1);
    EXPECT_EQ(req.name, "ising8");
    EXPECT_TRUE(sameGates(req.circuit, trotterIsingCircuit(p)));
}

} // namespace
} // namespace qbasis
