/**
 * @file
 * Async recalibration subsystem tests: per-edge drift streams
 * independent of evaluation order, versioned basis sets that never
 * tear under concurrent publish (the sanitizer job's canary for this
 * subsystem), sync-vs-async bit-identical post-cycle reports, the
 * depth-oracle verdict cache, and engine restart pruning.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "monodromy/depth.hpp"
#include "synth/depth_cache.hpp"
#include "synth/engine.hpp"
#include "util/logging.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"

namespace qbasis {
namespace {

/** Cheap-but-converging synthesis settings for test fleets. */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

/** Minimal fleet device: a 1x2 grid (single edge). */
FleetDeviceSpec
tinySpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 1;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

FleetOptions
tinyFleetOptions(int shards)
{
    FleetOptions opts;
    opts.shards = shards;
    opts.threads = 2;
    opts.synth = cheapSynth();
    return opts;
}

class RecalibTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

// --- Per-edge drift streams ----------------------------------------

TEST(DriftStream, IndependentOfEvaluationOrder)
{
    PairDeviceParams base;
    base.qubit_a.omega = 26.4; // rad/ns, ~4.2 GHz
    base.qubit_b.omega = 38.9;
    base.g_ac = 1.26;
    base.g_bc = 1.26;
    base.g_ab = 0.057;
    const DriftModel model;
    const uint64_t seed = 99;

    // Evaluating edge 3's cycle-2 parameters directly equals
    // evaluating it after touching other edges and cycles in any
    // order: streams are derived, not shared.
    const PairDeviceParams direct =
        driftParamsAt(base, model, seed, 3, 2);
    (void)driftParamsAt(base, model, seed, 0, 1);
    (void)driftParamsAt(base, model, seed, 7, 5);
    const PairDeviceParams replay =
        driftParamsAt(base, model, seed, 3, 2);
    EXPECT_EQ(direct.qubit_a.omega, replay.qubit_a.omega);
    EXPECT_EQ(direct.qubit_b.omega, replay.qubit_b.omega);
    EXPECT_EQ(direct.g_ac, replay.g_ac);
    EXPECT_EQ(direct.g_bc, replay.g_bc);
    EXPECT_EQ(direct.g_ab, replay.g_ab);

    // Distinct edges and distinct cycles drift differently.
    const PairDeviceParams other_edge =
        driftParamsAt(base, model, seed, 4, 2);
    const PairDeviceParams other_cycle =
        driftParamsAt(base, model, seed, 3, 3);
    EXPECT_NE(direct.qubit_a.omega, other_edge.qubit_a.omega);
    EXPECT_NE(direct.qubit_a.omega, other_cycle.qubit_a.omega);

    // Cycle 0 is the base, and drift accumulates across cycles.
    const PairDeviceParams zero =
        driftParamsAt(base, model, seed, 3, 0);
    EXPECT_EQ(zero.qubit_a.omega, base.qubit_a.omega);
}

TEST(DriftStream, CycleDriverIsDeterministic)
{
    DriftCycleOptions opts;
    opts.recalibrate_fraction = 0.5;
    opts.seed = 7;

    DriftCycle a(16, opts);
    DriftCycle b(16, opts);
    for (int c = 0; c < 4; ++c) {
        const DriftCycle::Step sa = a.advance();
        const DriftCycle::Step sb = b.advance();
        EXPECT_EQ(sa.cycle, sb.cycle);
        EXPECT_EQ(sa.drifted_edges, sb.drifted_edges);
    }

    DriftCycleOptions all;
    all.recalibrate_fraction = 1.0;
    DriftCycle c(5, all);
    EXPECT_EQ(c.advance().drifted_edges,
              (std::vector<int>{0, 1, 2, 3, 4}));

    DriftCycleOptions none;
    none.recalibrate_fraction = 0.0;
    DriftCycle d(5, none);
    EXPECT_TRUE(d.advance().drifted_edges.empty());
}

// --- Versioned basis sets ------------------------------------------

CalibratedBasisSet
makeSet(size_t edges, double duration)
{
    CalibratedBasisSet set;
    set.label = "test";
    set.edges.resize(edges);
    set.bases.resize(edges);
    for (size_t e = 0; e < edges; ++e) {
        set.edges[e].edge_id = static_cast<int>(e);
        set.edges[e].gate.duration_ns = duration;
        set.bases[e].duration_ns = duration;
        set.bases[e].gate = canonicalGate(0.25, 0.1, 0.05);
    }
    return set;
}

TEST(VersionedBasisSet, SnapshotsAreImmutableAcrossPublishes)
{
    VersionedBasisSet vset(makeSet(2, 10.0));
    EXPECT_EQ(vset.version(), 1u);

    const CalibrationSnapshot before = vset.snapshot();
    EXPECT_EQ(before.version, 1u);
    EXPECT_EQ(before->edges[1].gate.duration_ns, 10.0);

    EdgeCalibration cal;
    cal.edge_id = 1;
    cal.gate.duration_ns = 25.0;
    cal.calibrated_cycle = 3;
    EdgeBasis basis;
    basis.duration_ns = 25.0;
    EXPECT_EQ(vset.publishEdge(cal, basis), 2u);

    // The old snapshot is frozen; a fresh one sees the swap, with
    // edges[] and bases[] updated together.
    EXPECT_EQ(before->edges[1].gate.duration_ns, 10.0);
    const CalibrationSnapshot after = vset.snapshot();
    EXPECT_EQ(after.version, 2u);
    EXPECT_EQ(after->edges[1].gate.duration_ns, 25.0);
    EXPECT_EQ(after->bases[1].duration_ns, 25.0);
    EXPECT_EQ(after->edges[1].calibrated_cycle, 3u);
    EXPECT_EQ(after->edges[0].gate.duration_ns, 10.0);
}

TEST(VersionedBasisSet, NeverTearsUnderConcurrentPublish)
{
    // Writers republish edges with matching edge/basis durations;
    // readers must never observe edges[e] and bases[e] disagreeing
    // (a torn half-published basis). Under the CI sanitizer job this
    // is the subsystem's data-race canary.
    constexpr size_t kEdges = 4;
    constexpr int kWriters = 2;
    constexpr int kRounds = 400;

    VersionedBasisSet vset(makeSet(kEdges, 1.0));
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> snapshots{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                const CalibrationSnapshot snap = vset.snapshot();
                for (size_t e = 0; e < kEdges; ++e) {
                    ASSERT_EQ(snap->edges[e].gate.duration_ns,
                              snap->bases[e].duration_ns);
                }
                snapshots.fetch_add(1);
            }
        });
    }

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (int r = 1; r <= kRounds; ++r) {
                const int edge = (r + w) % kEdges;
                EdgeCalibration cal;
                cal.edge_id = edge;
                cal.gate.duration_ns = static_cast<double>(r);
                cal.calibrated_cycle = static_cast<uint64_t>(r);
                EdgeBasis basis;
                basis.duration_ns = static_cast<double>(r);
                vset.publishEdge(cal, basis);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(snapshots.load(), 0u);
    // Every publish bumped the version exactly once.
    EXPECT_EQ(vset.version(),
              1u + static_cast<uint64_t>(kWriters) * kRounds);
}

// --- Scheduler determinism -----------------------------------------

/** One drift cycle on a 2-device fleet; sync or overlapped. */
RecalibCycleReport
runTinyCycle(int shards, bool overlap)
{
    FleetDriver driver(tinyFleetOptions(shards));
    driver.initDevices({tinySpec(11), tinySpec(12)});

    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft2", qftCircuit(2)});

    // Both devices retune their single edge with drifted parameters
    // from the same per-edge streams.
    const DriftModel model{1e-4, 5e-3};
    std::vector<RecalibEdgeRequest> requests;
    for (int d = 0; d < 2; ++d) {
        RecalibEdgeRequest req;
        req.device_id = d;
        req.edge_id = 0;
        req.cycle = 1;
        req.params = driftParamsAt(
            driver.device(d).device.edgeParams(0), model,
            Rng::deriveSeed(55, static_cast<uint64_t>(d)), 0, 1);
        requests.push_back(std::move(req));
    }

    driver.recalibrate(requests);
    if (!overlap)
        driver.drainRecalibration();
    const FleetCompilePass pass = driver.compileCircuits(circuits);
    if (overlap)
        driver.drainRecalibration();

    // The compile path never blocks on recalibration state: snapshot
    // acquisition is a pointer copy.
    EXPECT_LT(pass.snapshot_wait_ms, 50.0);
    for (const auto &device_results : pass.results) {
        for (const VersionedCompileResult &r : device_results) {
            EXPECT_GT(r.basis_version, 0u);
            EXPECT_GT(r.result.fidelity, 0.0);
        }
    }
    return driver.cycleReport(1, circuits);
}

TEST_F(RecalibTest, SyncAndOverlappedCyclesAreBitIdentical)
{
    const RecalibCycleReport sync = runTinyCycle(1, false);
    const RecalibCycleReport overlapped = runTinyCycle(2, true);
    EXPECT_TRUE(recalibReportsBitIdentical(sync, overlapped));

    // The cycle genuinely retuned: versions moved past the initial
    // publish and the edge carries the cycle stamp.
    ASSERT_EQ(sync.devices.size(), 2u);
    for (const RecalibDeviceCycle &dev : sync.devices) {
        EXPECT_EQ(dev.calibration_version, 2u);
        ASSERT_EQ(dev.edges.size(), 1u);
        EXPECT_EQ(dev.edges[0].calibrated_cycle, 1u);
    }
}

TEST_F(RecalibTest, PerEdgeQueueRunsCyclesInOrder)
{
    FleetDriver driver(tinyFleetOptions(1));
    driver.initDevices({tinySpec(11)});

    const DriftModel model{1e-4, 5e-3};
    // Schedule cycles 1 and 2 for the same edge back-to-back; FIFO
    // order means the final published state is cycle 2's.
    std::vector<RecalibEdgeRequest> requests;
    for (uint64_t c = 1; c <= 2; ++c) {
        RecalibEdgeRequest req;
        req.device_id = 0;
        req.edge_id = 0;
        req.cycle = c;
        req.params = driftParamsAt(
            driver.device(0).device.edgeParams(0), model, 55, 0, c);
        requests.push_back(std::move(req));
    }
    driver.recalibrate(requests);
    driver.drainRecalibration();

    const CalibrationSnapshot snap = driver.calibrationSnapshot(0);
    EXPECT_EQ(snap.version, 3u); // initial + two publishes
    EXPECT_EQ(snap->edges[0].calibrated_cycle, 2u);

    const RecalibScheduler::Stats st = driver.recalibStats();
    EXPECT_EQ(st.scheduled, 2u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.published, 2u);
}

// --- Depth-oracle verdict cache ------------------------------------

TEST(DepthOracleCacheTest, CachesVerdictsExactly)
{
    DepthOracleCache cache;
    const Mat4 basis = canonicalGate(0.3, 0.15, 0.05);
    const OracleOptions opts;

    const int direct = predictDepth(swapGate(), basis, 4, opts);
    EXPECT_EQ(cache.predict(swapGate(), basis, 4, opts), direct);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Second lookup is a pure hit with the same verdict.
    EXPECT_EQ(cache.predict(swapGate(), basis, 4, opts), direct);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // A different basis is a different verdict namespace.
    EXPECT_EQ(cache.predict(swapGate(), cnotGate(), 4, opts),
              predictDepth(swapGate(), cnotGate(), 4, opts));
    EXPECT_EQ(cache.misses(), 2u);
}

// --- Engine restart pruning ----------------------------------------

bool
decompositionsBitIdentical(const TwoQubitDecomposition &a,
                           const TwoQubitDecomposition &b)
{
    if (a.layers() != b.layers() || a.locals.size() != b.locals.size()
        || a.infidelity != b.infidelity
        || a.phase.real() != b.phase.real()
        || a.phase.imag() != b.phase.imag())
        return false;
    for (size_t l = 0; l < a.locals.size(); ++l) {
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                const Complex ca1 = a.locals[l].q1(i, j);
                const Complex cb1 = b.locals[l].q1(i, j);
                const Complex ca0 = a.locals[l].q0(i, j);
                const Complex cb0 = b.locals[l].q0(i, j);
                if (ca1.real() != cb1.real()
                    || ca1.imag() != cb1.imag()
                    || ca0.real() != cb0.real()
                    || ca0.imag() != cb0.imag())
                    return false;
            }
        }
    }
    return true;
}

TEST(EnginePruning, PrunesLateRestartsWithoutChangingResults)
{
    // Single worker, easy target (CNOT from a CNOT-class basis, one
    // layer): restart 0 succeeds before restarts 1..n dequeue, so
    // the whole remaining wave is pruned at submission time. Results
    // must stay bit-identical across thread counts even though the
    // pruning pattern differs (2 workers may race real restarts
    // where 1 worker pruned them).
    SynthOptions opts = cheapSynth();
    opts.restarts = 5;

    std::vector<SynthRequest> requests;
    SynthRequest req;
    req.edge_id = 0;
    req.target = cnotGate();
    req.basis = cnotGate();
    requests.push_back(req);

    SynthEngine serial_engine(1);
    DecompositionCache serial_cache;
    const auto pruned =
        serial_engine.synthesizeBatch(requests, serial_cache, opts);
    ASSERT_EQ(pruned.size(), 1u);
    EXPECT_LE(pruned[0].infidelity, opts.target_infidelity);

    // With one worker the wave runs strictly in index order: restart
    // 0 wins, all four later restarts are pruned unstarted.
    const SynthEngine::Stats st = serial_engine.stats();
    EXPECT_EQ(st.restarts_run, 1u);
    EXPECT_EQ(st.restarts_pruned, 4u);

    SynthEngine racy_engine(2);
    DecompositionCache racy_cache;
    const auto racy =
        racy_engine.synthesizeBatch(requests, racy_cache, opts);
    ASSERT_EQ(racy.size(), 1u);
    EXPECT_TRUE(decompositionsBitIdentical(pruned[0], racy[0]));
}

} // namespace
} // namespace qbasis
