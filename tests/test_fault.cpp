/**
 * @file
 * Fault-injection and failure-domain isolation tests: the
 * deterministic fault registry, claim abandonment in the shared
 * cache, scheduler retry/quarantine with cycle-denominated backoff,
 * snapshot quarantine on load, and the fixed-fault-seed replay
 * contract (same seed => same HealthReport, same compiled output).
 *
 * The full-site sweep runs every registered probe at probability 1.0
 * through a small serving fleet and asserts the system neither hangs
 * (ctest --timeout is the backstop) nor crashes, and that a
 * quarantined edge always serves its last-good VersionedBasisSet --
 * never a torn or empty one.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/qft.hpp"
#include "core/fleet.hpp"
#include "serve/compile_service.hpp"
#include "synth/textbook.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace qbasis {
namespace {

/** Arms fault injection for one test scope; disarms on exit. */
struct ScopedFaults
{
    explicit ScopedFaults(const FaultPlan &plan)
    {
        configureFaults(plan);
    }
    ~ScopedFaults() { disableFaults(); }
};

const FaultSite kTestProbe("test.probe");

class FaultTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Silent);
    }
};

SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

FleetDeviceSpec
tinySpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 1;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

FleetOptions
tinyFleetOptions()
{
    FleetOptions opts;
    opts.shards = 1;
    opts.threads = 2;
    opts.synth = cheapSynth();
    return opts;
}

RecalibEdgeRequest
driftRequest(const FleetDriver &driver, int device_id, uint64_t cycle)
{
    const DriftModel model{1e-4, 5e-3};
    RecalibEdgeRequest req;
    req.device_id = device_id;
    req.edge_id = 0;
    req.cycle = cycle;
    req.params = driftParamsAt(
        driver.device(device_id).device.edgeParams(0), model,
        Rng::deriveSeed(55, static_cast<uint64_t>(device_id)), 0,
        cycle);
    return req;
}

bool
edgeBasesBitIdentical(const CalibrationSnapshot &a,
                      const CalibrationSnapshot &b, size_t edge)
{
    const Mat4 &ga = a->bases[edge].gate;
    const Mat4 &gb = b->bases[edge].gate;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (ga(i, j).real() != gb(i, j).real()
                || ga(i, j).imag() != gb(i, j).imag())
                return false;
        }
    }
    return a->bases[edge].duration_ns == b->bases[edge].duration_ns
           && a->edges[edge].calibrated_cycle
                  == b->edges[edge].calibrated_cycle;
}

// --- Registry -------------------------------------------------------

TEST_F(FaultTest, EveryLayerRegistersItsSites)
{
    // The serving layer's site registers from compile_service.cpp's
    // static initializer; reference the type so the linker keeps that
    // TU in this binary.
    const CompileService serve_layer_anchor;
    (void)serve_layer_anchor;

    const std::vector<std::string> sites = registeredFaultSites();
    const auto has = [&](const char *name) {
        for (const std::string &s : sites)
            if (s == name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("recalib.simulate"));
    EXPECT_TRUE(has("recalib.select"));
    EXPECT_TRUE(has("recalib.resynth"));
    EXPECT_TRUE(has("synth.restart"));
    EXPECT_TRUE(has("synth.fallback"));
    EXPECT_TRUE(has("fleet.load_cache"));
    EXPECT_TRUE(has("serve.admit"));
}

TEST_F(FaultTest, FireDecisionIsAPureFunctionOfThePlan)
{
    // Record the fire pattern over (key, invocation), then reset the
    // same plan and replay: the pattern must be bit-identical, and a
    // different seed must produce a different one.
    const auto pattern = [](uint64_t seed) {
        FaultPlan plan;
        plan.seed = seed;
        plan.probability = 0.4;
        plan.site_filter = "test.probe";
        ScopedFaults faults(plan);
        std::vector<bool> fired;
        for (uint64_t key = 0; key < 8; ++key) {
            for (int invocation = 0; invocation < 16; ++invocation) {
                bool f = false;
                try {
                    faultPoint(kTestProbe, key);
                } catch (const FaultInjected &) {
                    f = true;
                }
                fired.push_back(f);
            }
        }
        return fired;
    };
    const std::vector<bool> a = pattern(101);
    const std::vector<bool> b = pattern(101);
    const std::vector<bool> c = pattern(102);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);

    size_t fires = 0;
    for (const bool f : a)
        fires += f ? 1 : 0;
    EXPECT_GT(fires, 0u);
    EXPECT_LT(fires, a.size());
}

TEST_F(FaultTest, DisabledProbesNeverFire)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(faultPoint(kTestProbe, 7));
    EXPECT_FALSE(faultsEnabled());
}

// --- Shared-cache claim abandonment ---------------------------------

TEST_F(FaultTest, ThrowingClaimantReleasesClaimAndAWaiterReclaims)
{
    // Regression test for the waiter-hang: a claimant that unwinds
    // (here: its ClaimGuard is destroyed without release()) must wake
    // the waiter with nullptr so exactly one waiter re-claims --
    // synthesized-once semantics without a deadlock.
    SharedDecompositionCache cache(4);
    DecompositionCache::ClassKey key{};
    key.context = 0xfeedULL;
    key.qx = 1;
    key.qy = 2;
    key.qz = 3;

    const TwoQubitDecomposition *dec = nullptr;
    ASSERT_EQ(cache.acquire(key, 0, 1, &dec),
              SharedDecompositionCache::Claim::Owner);

    std::atomic<bool> waiter_pending{false};
    std::atomic<bool> waiter_reclaimed{false};
    std::thread waiter([&] {
        const TwoQubitDecomposition *d = nullptr;
        ASSERT_EQ(cache.acquire(key, 1, 1, &d),
                  SharedDecompositionCache::Claim::Pending);
        waiter_pending.store(true);
        d = cache.wait(key, 0);
        // The owner died: wait() must not block forever; it reports
        // the abandonment and this waiter becomes the new owner.
        EXPECT_EQ(d, nullptr);
        ASSERT_EQ(cache.acquire(key, 1, 0, &d),
                  SharedDecompositionCache::Claim::Owner);
        waiter_reclaimed.store(true);
        cache.publish(key, swapFromThreeCnots());
    });

    while (!waiter_pending.load())
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    {
        // The claimant "throws": its guard abandons the claim.
        ClaimGuard guard(&cache, key);
    }
    waiter.join();
    EXPECT_TRUE(waiter_reclaimed.load());
    EXPECT_EQ(cache.size(), 1u);
}

// --- Scheduler quarantine + staleness -------------------------------

TEST_F(FaultTest, FailingEdgeIsQuarantinedAndServesLastGoodBasis)
{
    FleetOptions opts = tinyFleetOptions();
    opts.recalib.max_stage_retries = 1;
    opts.recalib.quarantine_cycles = 2;
    FleetDriver driver(opts);
    driver.initDevices({tinySpec(11)});
    const CalibrationSnapshot last_good =
        driver.calibrationSnapshot(0);

    {
        FaultPlan plan;
        plan.seed = 42;
        plan.probability = 1.0;
        plan.site_filter = "recalib.simulate";
        ScopedFaults faults(plan);
        driver.recalibrate({driftRequest(driver, 0, 1)});
        driver.drainRecalibration(); // contained: must not throw
    }

    const RecalibScheduler::Stats st = driver.recalibStats();
    EXPECT_EQ(st.retries, 1u);        // initial attempt + 1 retry
    EXPECT_EQ(st.published, 0u);
    EXPECT_EQ(st.completed, 1u);

    const RecalibCycleReport report = driver.cycleReport(1);
    ASSERT_EQ(report.health.quarantined.size(), 1u);
    const EdgeQuarantine &quar = report.health.quarantined[0];
    EXPECT_EQ(quar.device_id, 0);
    EXPECT_EQ(quar.edge_id, 0);
    EXPECT_EQ(quar.since_cycle, 1u);
    EXPECT_EQ(quar.release_cycle, 3u);
    EXPECT_EQ(quar.failures, 2u); // initial + 1 retry
    EXPECT_FALSE(quar.error.empty());
    EXPECT_EQ(quar.stale_cycles, 1u); // last publish was cycle 0
    EXPECT_EQ(report.health.max_stale_cycles, 1u);
    EXPECT_EQ(report.health.contained_errors, 1u);

    // The quarantined edge serves its last-good basis: same bytes,
    // same version -- never a torn or empty set.
    const CalibrationSnapshot now = driver.calibrationSnapshot(0);
    EXPECT_EQ(now.version, last_good.version);
    ASSERT_EQ(now->bases.size(), 1u);
    EXPECT_TRUE(edgeBasesBitIdentical(now, last_good, 0));
}

TEST_F(FaultTest, QuarantineReleasesAfterCycleDenominatedBackoff)
{
    FleetOptions opts = tinyFleetOptions();
    opts.recalib.max_stage_retries = 0;
    opts.recalib.quarantine_cycles = 2;
    FleetDriver driver(opts);
    driver.initDevices({tinySpec(11)});

    {
        FaultPlan plan;
        plan.seed = 9;
        plan.probability = 1.0;
        plan.site_filter = "recalib.select";
        ScopedFaults faults(plan);
        driver.recalibrate({driftRequest(driver, 0, 1)});
        driver.drainRecalibration();
    }
    // Quarantined until cycle 1 + 2 = 3. Cycle 2 is skipped...
    driver.recalibrate({driftRequest(driver, 0, 2)});
    driver.drainRecalibration();
    EXPECT_EQ(driver.recalibStats().quarantine_skipped, 1u);
    EXPECT_EQ(driver.calibrationSnapshot(0)->edges[0].calibrated_cycle,
              0u);

    // ...and cycle 3 lifts the quarantine and retunes normally.
    driver.recalibrate({driftRequest(driver, 0, 3)});
    driver.drainRecalibration();
    const CalibrationSnapshot snap = driver.calibrationSnapshot(0);
    EXPECT_EQ(snap->edges[0].calibrated_cycle, 3u);

    const RecalibCycleReport report = driver.cycleReport(3);
    EXPECT_TRUE(report.health.quarantined.empty());
    EXPECT_EQ(report.health.quarantine_skipped, 1u);
    EXPECT_EQ(driver.recalibStats().published, 1u);
}

TEST_F(FaultTest, ContainmentOffPreservesTheOldFailFastPath)
{
    FleetOptions opts = tinyFleetOptions();
    opts.recalib.contain_failures = false;
    FleetDriver driver(opts);
    driver.initDevices({tinySpec(11)});

    FaultPlan plan;
    plan.seed = 13;
    plan.probability = 1.0;
    plan.site_filter = "recalib.simulate";
    ScopedFaults faults(plan);
    driver.recalibrate({driftRequest(driver, 0, 1)});
    EXPECT_THROW(driver.drainRecalibration(), FaultInjected);
}

// --- Full-site sweep ------------------------------------------------

TEST_F(FaultTest, SweepEverySiteNoHangNoCrashAlwaysLastGoodBasis)
{
    // Fire every registered site at probability 1.0 through one
    // serving cycle. Contained layers must absorb their faults;
    // layers that legitimately fail (an all-restarts-dead compile)
    // must surface a clean exception -- never a hang (ctest timeout
    // is the backstop) and never a torn or empty served basis.
    for (const std::string &site : registeredFaultSites()) {
        SCOPED_TRACE(site);
        FleetDriver driver(tinyFleetOptions());
        driver.initDevices({tinySpec(11), tinySpec(12)});
        const CalibrationSnapshot before0 =
            driver.calibrationSnapshot(0);

        std::vector<FleetCircuit> circuits;
        circuits.push_back({"qft2", qftCircuit(2)});

        FaultPlan plan;
        plan.seed = 2022;
        plan.probability = 1.0;
        plan.site_filter = site;
        bool compile_failed = false;
        {
            ScopedFaults faults(plan);
            driver.recalibrate({driftRequest(driver, 0, 1),
                                driftRequest(driver, 1, 1)});
            EXPECT_NO_THROW(driver.drainRecalibration());
            try {
                driver.compileCircuits(circuits);
            } catch (const std::exception &) {
                // Legitimate total failure (e.g. every synthesis
                // restart dead); containment demands a clean error,
                // not a hang.
                compile_failed = true;
            }
        }

        // Post-fault, every device still serves a well-formed basis
        // set: edges and bases paired, positive durations.
        for (int d = 0; d < 2; ++d) {
            const CalibrationSnapshot snap =
                driver.calibrationSnapshot(d);
            ASSERT_EQ(snap->bases.size(), snap->edges.size());
            ASSERT_EQ(snap->bases.size(), 1u);
            EXPECT_GT(snap->bases[0].duration_ns, 0.0);
        }

        // Faults disarmed: the fleet recovers without rebuilding.
        const RecalibCycleReport report = driver.cycleReport(1);
        for (const EdgeQuarantine &quar : report.health.quarantined) {
            EXPECT_GT(quar.release_cycle, quar.since_cycle);
            EXPECT_GT(quar.failures, 0u);
            // A quarantined edge serves the last-good basis.
            if (quar.device_id == 0) {
                EXPECT_TRUE(edgeBasesBitIdentical(
                    driver.calibrationSnapshot(0), before0, 0));
            }
        }
        if (site.rfind("recalib.", 0) == 0) {
            EXPECT_EQ(report.health.quarantined.size(), 2u);
            EXPECT_FALSE(compile_failed);
        }
        const FleetCompilePass recovered =
            driver.compileCircuits(circuits);
        for (const auto &device_results : recovered.results) {
            for (const VersionedCompileResult &r : device_results)
                EXPECT_GT(r.result.fidelity, 0.0);
        }
    }
}

// --- Replay determinism ---------------------------------------------

struct FaultedRun
{
    RecalibCycleReport report;
    FleetCompilePass pass;
};

FaultedRun
runFaultedScenario(uint64_t fault_seed)
{
    FleetOptions opts = tinyFleetOptions();
    opts.recalib.max_stage_retries = 1;
    opts.recalib.quarantine_cycles = 2;
    FleetDriver driver(opts);
    driver.initDevices({tinySpec(11), tinySpec(12)});

    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft2", qftCircuit(2)});

    FaultPlan plan;
    plan.seed = fault_seed;
    plan.probability = 0.6;
    plan.site_filter = "recalib.simulate";
    ScopedFaults faults(plan);

    for (uint64_t cycle = 1; cycle <= 3; ++cycle) {
        driver.recalibrate({driftRequest(driver, 0, cycle),
                            driftRequest(driver, 1, cycle)});
        driver.drainRecalibration();
    }
    FaultedRun run;
    run.pass = driver.compileCircuits(circuits);
    run.report = driver.cycleReport(3, circuits);
    return run;
}

TEST_F(FaultTest, SameFaultSeedReplaysBitIdentically)
{
    const FaultedRun a = runFaultedScenario(77);
    const FaultedRun b = runFaultedScenario(77);

    // Same fault seed => same HealthReport (bit-identical, and the
    // digest the bench gates on agrees) and same compiled output.
    EXPECT_TRUE(healthReportsBitIdentical(a.report.health,
                                          b.report.health));
    EXPECT_EQ(healthReportDigest(a.report.health),
              healthReportDigest(b.report.health));
    EXPECT_TRUE(recalibReportsBitIdentical(a.report, b.report));
    EXPECT_TRUE(compilePassesBitIdentical(a.pass, b.pass));

    // The scenario is non-trivial: the fault seed actually produced
    // contained failures.
    EXPECT_GT(a.report.health.stage_retries
                  + a.report.health.contained_errors,
              0u);

    // And a different fault seed diverges in health accounting.
    const FaultedRun c = runFaultedScenario(78);
    EXPECT_FALSE(healthReportsBitIdentical(a.report.health,
                                           c.report.health));
}

// --- Snapshot quarantine --------------------------------------------

TEST_F(FaultTest, LoadCacheQuarantinesRejectedSnapshot)
{
    const std::string path =
        ::testing::TempDir() + "qbasis_fault_cache.qbwc";
    const std::string quarantine_path = path + ".quarantine";
    std::remove(path.c_str());
    std::remove(quarantine_path.c_str());
    {
        std::ofstream f(path, std::ios::binary);
        f << "this is not a cache snapshot";
    }

    FleetDriver driver(tinyFleetOptions());
    const CacheIoResult r = driver.loadCache(path);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.status, CacheIoStatus::IoError);

    // The rejected file was renamed aside and the fleet cold-starts.
    std::ifstream gone(path, std::ios::binary);
    EXPECT_FALSE(gone.good());
    std::ifstream kept(quarantine_path, std::ios::binary);
    EXPECT_TRUE(kept.good());
    EXPECT_EQ(driver.cache().size(), 0u);

    driver.initDevices({tinySpec(11)});
    const RecalibCycleReport report = driver.cycleReport(0);
    EXPECT_EQ(report.health.cache_quarantines, 1u);
    EXPECT_EQ(report.health.last_cache_quarantine,
              std::string(cacheIoStatusName(r.status)));
    std::remove(quarantine_path.c_str());
}

TEST_F(FaultTest, MissingSnapshotIsAColdStartNotAQuarantine)
{
    const std::string path =
        ::testing::TempDir() + "qbasis_fault_missing.qbwc";
    std::remove(path.c_str());
    FleetDriver driver(tinyFleetOptions());
    const CacheIoResult r = driver.loadCache(path);
    EXPECT_EQ(r.status, CacheIoStatus::IoError);
    driver.initDevices({tinySpec(11)});
    EXPECT_EQ(driver.cycleReport(0).health.cache_quarantines, 0u);
}

TEST_F(FaultTest, LoadCacheFaultSiteForcesTheQuarantinePath)
{
    // The fleet.load_cache probe turns a perfectly valid snapshot
    // into a rejected one -- exercising the quarantine path without
    // hand-crafted corruption.
    const std::string path =
        ::testing::TempDir() + "qbasis_fault_forced.qbwc";
    const std::string quarantine_path = path + ".quarantine";
    std::remove(path.c_str());
    std::remove(quarantine_path.c_str());

    FleetDriver writer(tinyFleetOptions());
    ASSERT_TRUE(writer.saveCache(path).ok());

    FleetDriver driver(tinyFleetOptions());
    FaultPlan plan;
    plan.seed = 5;
    plan.probability = 1.0;
    plan.site_filter = "fleet.load_cache";
    ScopedFaults faults(plan);
    const CacheIoResult r = driver.loadCache(path);
    EXPECT_EQ(r.status, CacheIoStatus::Malformed);
    std::ifstream kept(quarantine_path, std::ios::binary);
    EXPECT_TRUE(kept.good());
    std::remove(quarantine_path.c_str());
}

} // namespace
} // namespace qbasis
