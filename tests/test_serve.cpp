/**
 * @file
 * CompileService tests: the per-request determinism contract under
 * arrival interleaving (same request + basis epoch -> bit-identical
 * response, any client-thread schedule), legitimate digest changes
 * across an epoch swap, bounded-queue admission control that rejects
 * with a status instead of blocking, the serve.admit fault site, the
 * deprecated-shim equivalence of the collapsed compile API, and
 * FleetDriver::run()'s contained per-device failure statuses.
 */

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bv.hpp"
#include "apps/qft.hpp"
#include "calib/drift.hpp"
#include "serve/compile_service.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qbasis {
namespace {

/** Cheap-but-converging synthesis settings for test fleets. */
SynthOptions
cheapSynth()
{
    SynthOptions s;
    s.restarts = 2;
    s.adam_iters = 250;
    s.polish_iters = 100;
    s.max_layers = 4;
    s.target_infidelity = 1e-7;
    return s;
}

/** A 2x2 grid device (4 qubits); edge_limit keeps calibration fast. */
FleetDeviceSpec
quadSpec(uint64_t grid_seed)
{
    FleetDeviceSpec spec;
    spec.grid.rows = 2;
    spec.grid.cols = 2;
    spec.grid.seed = grid_seed;
    spec.xi = 0.04;
    return spec;
}

CompileServiceOptions
tinyServiceOptions()
{
    CompileServiceOptions opts;
    opts.fleet.shards = 2;
    opts.fleet.threads = 2;
    opts.fleet.synth = cheapSynth();
    opts.fleet.calib.edge_limit = 1;
    opts.queue_capacity = 64;
    opts.dispatchers = 3;
    opts.max_batch = 4;
    return opts;
}

/** The fixed request mix both serial and concurrent passes replay. */
std::vector<CompileRequest>
requestMix()
{
    std::vector<CompileRequest> reqs;
    uint64_t id = 1;
    for (int d = 0; d < 2; ++d) {
        reqs.emplace_back(id++, d, "qft2", qftCircuit(2));
        reqs.emplace_back(id++, d, "qft3", qftCircuit(3));
        reqs.emplace_back(id++, d, "qft4", qftCircuit(4));
        reqs.emplace_back(id++, d, "bv3", bvAllOnesCircuit(3));
    }
    return reqs;
}

/** Submit every request from `threads` client threads in `order`,
 *  then gather all responses (indexed like `reqs`). */
std::vector<CompileResponse>
submitConcurrently(CompileService &service,
                   const std::vector<CompileRequest> &reqs,
                   const std::vector<size_t> &order, int threads)
{
    std::vector<std::future<CompileResponse>> futures(reqs.size());
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = static_cast<size_t>(t); i < order.size();
                 i += static_cast<size_t>(threads)) {
                const size_t r = order[i];
                futures[r] = service.submit(reqs[r]);
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    std::vector<CompileResponse> responses;
    responses.reserve(reqs.size());
    for (auto &f : futures)
        responses.push_back(f.get());
    return responses;
}

class ServeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogLevel(LogLevel::Warn);
    }
};

// --- Per-request determinism under interleaving ---------------------

TEST_F(ServeTest, InterleavedStreamsAreBitIdenticalPerRequest)
{
    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11), quadSpec(12)});
    const std::vector<CompileRequest> reqs = requestMix();

    // Serial baseline: one request at a time, canonical order.
    std::map<uint64_t, uint64_t> serial_digest;
    std::map<uint64_t, uint64_t> serial_epoch;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
        EXPECT_GT(resp.result.fidelity, 0.0);
        serial_digest[req.request_id] = compileResponseDigest(resp);
        serial_epoch[req.request_id] = resp.basis_epoch;
    }

    // Concurrent replays: shuffled arrival order, several client
    // threads, several interleavings. Same basis epoch -> every
    // per-request digest must match the serial pass bit for bit.
    for (const uint64_t shuffle_seed : {1u, 2u, 3u}) {
        std::vector<size_t> order(reqs.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        Rng rng(shuffle_seed);
        rng.shuffle(order);
        const std::vector<CompileResponse> responses =
            submitConcurrently(service, reqs, order, 4);
        for (size_t r = 0; r < reqs.size(); ++r) {
            const CompileResponse &resp = responses[r];
            ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
            EXPECT_EQ(resp.request_id, reqs[r].request_id);
            EXPECT_EQ(resp.basis_epoch,
                      serial_epoch[resp.request_id]);
            EXPECT_EQ(compileResponseDigest(resp),
                      serial_digest[resp.request_id])
                << "request " << resp.request_id
                << " diverged at shuffle seed " << shuffle_seed;
        }
    }

    const CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.completed, stats.admitted);
    service.stop();
}

TEST_F(ServeTest, EpochSwapMidStreamChangesDigestsLegitimately)
{
    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11), quadSpec(12)});
    const std::vector<CompileRequest> reqs = requestMix();

    std::map<uint64_t, uint64_t> before_digest;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
        before_digest[req.request_id] = compileResponseDigest(resp);
    }
    const uint64_t epoch0_dev0 = service.basisEpoch(0);
    const uint64_t epoch0_dev1 = service.basisEpoch(1);

    // Retune device 0's (replicated) edge 0 with drifted parameters
    // while traffic keeps flowing: mid-swap responses must resolve
    // Ok at either the old or the new epoch, never block.
    const DriftModel model{1e-4, 5e-3};
    RecalibEdgeRequest retune;
    retune.device_id = 0;
    retune.edge_id = 0;
    retune.cycle = 1;
    retune.params = driftParamsAt(
        service.driver().device(0).device.edgeParams(0), model, 55, 0,
        1);
    service.recalibrate({retune});
    std::vector<size_t> order(reqs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const std::vector<CompileResponse> mid =
        submitConcurrently(service, reqs, order, 4);
    for (size_t r = 0; r < reqs.size(); ++r) {
        ASSERT_EQ(mid[r].status, CompileStatus::Ok) << mid[r].error;
        if (reqs[r].device_id == 0) {
            EXPECT_GE(mid[r].basis_epoch, epoch0_dev0);
            EXPECT_LE(mid[r].basis_epoch, epoch0_dev0 + 1);
        } else {
            EXPECT_EQ(mid[r].basis_epoch, epoch0_dev1);
        }
    }
    service.drainRecalibration();
    ASSERT_EQ(service.basisEpoch(0), epoch0_dev0 + 1);
    ASSERT_EQ(service.basisEpoch(1), epoch0_dev1);

    // Post-swap: device-0 digests legitimately change (new basis),
    // device-1 digests are untouched.
    size_t dev0_changed = 0;
    for (const CompileRequest &req : reqs) {
        const CompileResponse resp = service.compileSync(req);
        ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
        if (req.device_id == 0) {
            EXPECT_EQ(resp.basis_epoch, epoch0_dev0 + 1);
            if (compileResponseDigest(resp)
                != before_digest[req.request_id])
                ++dev0_changed;
        } else {
            EXPECT_EQ(compileResponseDigest(resp),
                      before_digest[req.request_id]);
        }
    }
    // The digest moves via basis_epoch alone, and for a genuinely
    // drifted basis via the scored results too.
    EXPECT_EQ(dev0_changed, reqs.size() / 2);
    service.stop();
}

// --- Admission control ----------------------------------------------

TEST_F(ServeTest, SaturationRejectsWithStatusAndNeverHangs)
{
    CompileServiceOptions opts = tinyServiceOptions();
    opts.queue_capacity = 1;
    opts.dispatchers = 1;
    opts.max_batch = 1;
    CompileService service(opts);
    service.start({quadSpec(11)});

    // A cold qft4 compile keeps the single dispatcher busy for
    // milliseconds; the burst behind it lands in microseconds, so
    // the 1-deep queue must overflow into rejections.
    std::vector<std::future<CompileResponse>> futures;
    futures.push_back(
        service.submit(CompileRequest(1, 0, "qft4", qftCircuit(4))));
    for (uint64_t id = 2; id <= 17; ++id) {
        futures.push_back(service.submit(
            CompileRequest(id, 0, "qft2", qftCircuit(2))));
    }

    size_t ok = 0, rejected = 0;
    for (auto &f : futures) {
        const CompileResponse resp = f.get(); // resolves: no hangs
        if (resp.status == CompileStatus::Rejected) {
            ++rejected;
            EXPECT_FALSE(resp.error.empty());
            EXPECT_EQ(resp.result.fidelity, 0.0);
        } else {
            ASSERT_EQ(resp.status, CompileStatus::Ok) << resp.error;
            ++ok;
        }
    }
    EXPECT_GE(ok, 1u);      // the head of the burst is served
    EXPECT_GE(rejected, 1u); // the tail is shed, not queued
    const CompileServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, rejected);
    EXPECT_EQ(stats.admitted, ok);
    service.stop();

    // Stopped service: immediate rejection, future still resolves.
    const CompileResponse after = service
                                      .submit(CompileRequest(
                                          99, 0, "qft2",
                                          qftCircuit(2)))
                                      .get();
    EXPECT_EQ(after.status, CompileStatus::Rejected);
}

// --- Snapshot coherence ---------------------------------------------

TEST_F(ServeTest, SnapshotIsCoherentMidFlight)
{
    CompileServiceOptions opts = tinyServiceOptions();
    opts.queue_capacity = 4; // force a mix of admits and rejects
    CompileService service(opts);
    service.start({quadSpec(11)});

    // Hammer snapshot() from a reader thread while client threads
    // submit a burst: every mid-flight view must satisfy the
    // counter invariants (no torn submitted-vs-outcome reads).
    std::atomic<bool> stop_reader{false};
    std::thread reader([&] {
        while (!stop_reader.load()) {
            const CompileServiceStats s = service.snapshot();
            EXPECT_GE(s.submitted, s.admitted + s.rejected);
            EXPECT_GE(s.admitted, s.completed);
            EXPECT_GE(s.completed, s.failed);
        }
    });
    std::vector<CompileRequest> reqs;
    for (uint64_t id = 1; id <= 32; ++id)
        reqs.emplace_back(id, 0, "qft2", qftCircuit(2));
    std::vector<size_t> order(reqs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    const std::vector<CompileResponse> responses =
        submitConcurrently(service, reqs, order, 4);
    stop_reader.store(true);
    reader.join();

    // Quiescent view: fully consistent accounting.
    for (const CompileResponse &resp : responses)
        EXPECT_NE(resp.status, CompileStatus::Failed) << resp.error;
    const CompileServiceStats s = service.snapshot();
    EXPECT_EQ(s.submitted, reqs.size());
    EXPECT_EQ(s.submitted, s.admitted + s.rejected);
    EXPECT_EQ(s.completed, s.admitted);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_GE(s.max_queue_depth, 1u);
    EXPECT_LE(s.max_queue_depth, opts.queue_capacity);
    service.stop();
}

// --- serve.admit fault site -----------------------------------------

TEST_F(ServeTest, AdmitFaultSiteIsRegisteredAndRepliesDeterministically)
{
    const std::vector<std::string> sites = registeredFaultSites();
    EXPECT_TRUE(std::find(sites.begin(), sites.end(), "serve.admit")
                != sites.end());

    CompileService service(tinyServiceOptions());
    service.start({quadSpec(11)});
    std::vector<CompileRequest> reqs;
    for (uint64_t id = 1; id <= 16; ++id)
        reqs.emplace_back(id, 0, "qft2", qftCircuit(2));
    std::vector<size_t> order(reqs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    FaultPlan plan;
    plan.seed = 2022;
    plan.probability = 0.5;
    plan.site_filter = "serve.admit";

    // Two armed replays with different client interleavings: the
    // fire decision keys on the request fingerprint (request_id
    // included), so the per-request admit/reject pattern is a pure
    // function of the plan -- identical across runs and schedules.
    configureFaults(plan);
    const std::vector<CompileResponse> first =
        submitConcurrently(service, reqs, order, 4);
    disableFaults();

    std::reverse(order.begin(), order.end());
    configureFaults(plan); // resets invocation counters
    const std::vector<CompileResponse> second =
        submitConcurrently(service, reqs, order, 2);
    disableFaults();

    size_t faulted = 0;
    for (size_t r = 0; r < reqs.size(); ++r) {
        EXPECT_EQ(first[r].status, second[r].status)
            << "request " << reqs[r].request_id;
        if (first[r].status == CompileStatus::Rejected)
            ++faulted;
        else
            EXPECT_EQ(compileResponseDigest(first[r]),
                      compileResponseDigest(second[r]));
    }
    // p=0.5 over 16 independent requests: both tails are
    // astronomically unlikely to be empty, and either way the run
    // must degrade to rejections -- never hang.
    EXPECT_GT(faulted, 0u);
    EXPECT_LT(faulted, reqs.size());
    service.stop();
}

// --- Deprecated shim equivalence ------------------------------------

TEST_F(ServeTest, DeprecatedShimsMatchUnifiedApi)
{
    const GridDevice device{quadSpec(11).grid};
    DeviceCalibrationOptions copts;
    copts.edge_limit = 1;
    const CalibratedBasisSet set = calibrateDevice(
        device, 0.04, SelectionCriterion::Criterion1, "shim", copts);

    CompileRequest req(7, 0, "qft3", qftCircuit(3));
    req.options.transpile.synth = cheapSynth();
    DecompositionCache cache_new;
    const CompileResponse unified = runCompile(
        device, set, SynthRoute::local(&cache_new), req);
    ASSERT_EQ(unified.status, CompileStatus::Ok) << unified.error;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    DecompositionCache cache_old;
    const CompiledCircuitResult legacy = compileAndScore(
        device, set, cache_old, req.circuit, req.options.transpile,
        req.options.t_1q_ns, req.options.t_coherence_ns);
    DecompositionCache cache_pipe;
    const TranspileResult legacy_pipe = transpileCircuit(
        req.circuit, device.coupling(), set.bases, cache_pipe,
        req.options.transpile);
#pragma GCC diagnostic pop

    EXPECT_EQ(unified.result.fidelity, legacy.fidelity);
    EXPECT_EQ(unified.result.makespan_ns, legacy.makespan_ns);
    EXPECT_EQ(unified.result.swaps_inserted, legacy.swaps_inserted);
    EXPECT_EQ(unified.result.two_qubit_gates, legacy.two_qubit_gates);
    EXPECT_EQ(unified.result.depth, legacy.depth);
    EXPECT_EQ(legacy_pipe.physical.depth(), unified.result.depth);
    EXPECT_EQ(legacy_pipe.swaps_inserted,
              unified.result.swaps_inserted);
}

// --- run() per-device failure containment ---------------------------

TEST_F(ServeTest, RunContainsPerDeviceFailuresInStatusVector)
{
    FleetOptions opts;
    opts.shards = 2;
    opts.threads = 2;
    opts.synth = cheapSynth();
    opts.calib.edge_limit = 1;
    FleetDriver driver(opts);

    // Device 1's drive is absurdly weak: no trajectory crossing ever
    // satisfies the criterion, so its calibration fails -- and must
    // be contained, not tear down device 0.
    FleetDeviceSpec healthy = quadSpec(11);
    FleetDeviceSpec broken = quadSpec(12);
    broken.xi = 1e-9;

    std::vector<FleetCircuit> circuits;
    circuits.push_back({"qft2", qftCircuit(2)});
    const FleetReport report = driver.run({healthy, broken}, circuits);

    ASSERT_EQ(report.statuses.size(), 2u);
    EXPECT_TRUE(report.statuses[0].ok);
    EXPECT_FALSE(report.statuses[1].ok);
    EXPECT_FALSE(report.statuses[1].error.empty());
    EXPECT_EQ(report.failedDevices(), 1u);

    // The healthy device finished its full pipeline.
    ASSERT_EQ(report.devices.size(), 2u);
    EXPECT_EQ(report.devices[0].circuits.size(), 1u);
    EXPECT_GT(report.devices[0].circuits[0].result.fidelity, 0.0);
    // The failed device keeps id/label but carries no results.
    EXPECT_EQ(report.devices[1].device_id, 1);
    EXPECT_TRUE(report.devices[1].circuits.empty());

    // Wired through the HealthReport (cycleReport reads the driver's
    // contained-failure counters even with no live devices).
    const HealthReport health = driver.cycleReport(0).health;
    EXPECT_EQ(health.device_failures, 1u);
    EXPECT_EQ(health.first_device_error, report.statuses[1].error);
    const uint64_t digest = healthReportDigest(health);
    HealthReport other = health;
    other.device_failures = 0;
    other.first_device_error.clear();
    EXPECT_FALSE(healthReportsBitIdentical(health, other));
    EXPECT_NE(digest, healthReportDigest(other));
}

} // namespace
} // namespace qbasis
