/**
 * @file
 * Property-based sweeps across the Weyl chamber (TEST_P):
 *  - KAK round trips on canonical-gate grids and random products,
 *  - canonicalization invariance under random symmetry-group words,
 *  - the Appendix-B mirror theorem exercised through the actual
 *    synthesizer: for ANY class B, {B, mirror(B)} yields SWAP in two
 *    layers,
 *  - depth-prediction consistency with direct synthesis across
 *    sampled chamber points,
 *  - entangling-power / PE consistency along XY- and deviated
 *    trajectories.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/random.hpp"
#include "monodromy/depth.hpp"
#include "monodromy/mirror.hpp"
#include "monodromy/regions.hpp"
#include "monodromy/volume.hpp"
#include "synth/numerical.hpp"
#include "util/rng.hpp"
#include "weyl/gates.hpp"
#include "weyl/invariants.hpp"
#include "weyl/kak.hpp"

namespace qbasis {
namespace {

// ---- KAK round trips over a chamber grid ---------------------------

struct GridPoint
{
    double tx, ty, tz;
};

class KakGridSweep : public ::testing::TestWithParam<GridPoint>
{
};

TEST_P(KakGridSweep, CoordsRoundTripAndLocalsCompose)
{
    const GridPoint g = GetParam();
    const CartanCoords in = canonicalize({g.tx, g.ty, g.tz});
    if (!inCanonicalChamber(in))
        GTEST_SKIP();
    const Mat4 can = canonicalGate(in.tx, in.ty, in.tz);

    // Dress with random locals; class must be preserved.
    Rng rng(static_cast<uint64_t>(g.tx * 977 + g.ty * 131 + g.tz * 7)
            + 1);
    const Mat4 u = randomLocal4(rng) * can * randomLocal4(rng);
    const KakDecomposition kak = kakDecompose(u);
    EXPECT_LT(kak.reconstruct().maxAbsDiff(u), 1e-8);
    const CartanCoords out = canonicalize(kak.coords);
    const MakhlinInvariants ia = invariantsFromCoords(in);
    const MakhlinInvariants ib = invariantsFromCoords(out);
    EXPECT_LT(invariantDistanceSq(ia, ib), 1e-12)
        << in.str() << " vs " << out.str();
}

std::vector<GridPoint>
chamberGrid()
{
    std::vector<GridPoint> pts;
    for (double tx = 0.05; tx <= 0.96; tx += 0.15)
        for (double ty = 0.0; ty <= 0.5; ty += 0.125)
            for (double tz = 0.0; tz <= ty + 1e-9; tz += 0.125)
                pts.push_back({tx, ty, tz});
    return pts;
}

INSTANTIATE_TEST_SUITE_P(Chamber, KakGridSweep,
                         ::testing::ValuesIn(chamberGrid()));

// ---- canonicalization under random group words ----------------------

class SymmetryWords : public ::testing::TestWithParam<int>
{
};

TEST_P(SymmetryWords, CanonicalizeInvariantUnderGroupAction)
{
    Rng rng(GetParam());
    const CartanCoords base = sampleChamberPoint(rng);
    double v[3] = {base.tx, base.ty, base.tz};
    // Apply a random word of shifts / pairwise flips / permutations.
    for (int step = 0; step < 12; ++step) {
        switch (rng.uniformInt(3)) {
          case 0: { // integer shift on one coordinate
              const int i = static_cast<int>(rng.uniformInt(3));
              v[i] += static_cast<double>(
                          static_cast<int>(rng.uniformInt(5)))
                      - 2.0;
              break;
          }
          case 1: { // pairwise sign flip
              const int i = static_cast<int>(rng.uniformInt(3));
              const int j = (i + 1 + static_cast<int>(
                                 rng.uniformInt(2)))
                            % 3;
              v[i] = -v[i];
              v[j] = -v[j];
              break;
          }
          default: { // swap two coordinates
              const int i = static_cast<int>(rng.uniformInt(3));
              const int j = (i + 1) % 3;
              std::swap(v[i], v[j]);
              break;
          }
        }
    }
    const CartanCoords image = canonicalize({v[0], v[1], v[2]});
    const CartanCoords expect = canonicalize(base);
    const MakhlinInvariants ia = invariantsFromCoords(image);
    const MakhlinInvariants ib = invariantsFromCoords(expect);
    EXPECT_LT(invariantDistanceSq(ia, ib), 1e-12)
        << expect.str() << " vs " << image.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryWords,
                         ::testing::Range(1, 41));

// ---- Appendix B through the synthesizer -----------------------------

class MirrorSynthesis : public ::testing::TestWithParam<int>
{
};

TEST_P(MirrorSynthesis, GatePlusMirrorYieldsSwapInTwoLayers)
{
    Rng rng(1000 + GetParam());
    const CartanCoords b = sampleChamberPoint(rng);
    // Skip (near-)zero-entangling classes where the mirror pair
    // degenerates numerically.
    if (entanglingPower(b) < 0.01)
        GTEST_SKIP();
    const CartanCoords m = swapMirror(b);

    const Mat4 gate_b = canonicalGate(b.tx, b.ty, b.tz);
    const Mat4 gate_m = canonicalGate(m.tx, m.ty, m.tz);

    SynthOptions opts;
    opts.restarts = 8;
    const TwoQubitDecomposition dec =
        synthesizeGateSequence(swapGate(), {gate_b, gate_m}, opts);
    EXPECT_LT(dec.infidelity, 1e-7)
        << "B " << b.str() << " mirror " << m.str();
    EXPECT_LT(traceInfidelity(dec.reconstruct(), swapGate()), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MirrorSynthesis,
                         ::testing::Range(1, 13));

TEST(MirrorSynthesis, NonMirrorPairsFail)
{
    // A pair that is NOT a mirror pair cannot give SWAP in 2 layers.
    Rng rng(5);
    const CartanCoords b{0.3, 0.2, 0.05};
    const CartanCoords not_mirror{0.35, 0.1, 0.0};
    ASSERT_GT(swapMirror(b).distance(canonicalize(not_mirror)), 0.05);
    const TwoQubitDecomposition dec = synthesizeGateSequence(
        swapGate(),
        {canonicalGate(b.tx, b.ty, b.tz),
         canonicalGate(not_mirror.tx, not_mirror.ty, not_mirror.tz)},
        SynthOptions{});
    EXPECT_GT(dec.infidelity, 1e-4);
}

// ---- depth prediction vs direct synthesis ---------------------------

class DepthConsistency : public ::testing::TestWithParam<int>
{
};

TEST_P(DepthConsistency, PredictionMatchesAchievableDepth)
{
    Rng rng(2000 + GetParam());
    // Basis gates drawn from the PE-ish midsection of the chamber
    // (weak gates need >4 layers and slow the test down).
    CartanCoords b = sampleChamberPoint(rng);
    while (entanglingPower(b) < 0.1)
        b = sampleChamberPoint(rng);
    const Mat4 basis = canonicalGate(b.tx, b.ty, b.tz);

    const int predicted = predictSwapDepth(b);
    if (predicted > 3)
        GTEST_SKIP();
    SynthOptions opts;
    opts.restarts = 8;
    const TwoQubitDecomposition at_depth =
        synthesizeGateFixedDepth(swapGate(), basis, predicted, opts);
    EXPECT_LT(at_depth.infidelity, 1e-7)
        << b.str() << " predicted " << predicted;
    if (predicted > 1) {
        const TwoQubitDecomposition below = synthesizeGateFixedDepth(
            swapGate(), basis, predicted - 1, opts);
        EXPECT_GT(below.infidelity, 1e-5)
            << b.str() << " depth " << predicted - 1
            << " unexpectedly feasible";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthConsistency,
                         ::testing::Range(1, 11));

// ---- invariants along trajectories ----------------------------------

TEST(TrajectoryProperties, EpMonotoneUntilPeOnXy)
{
    // Along XY, entangling power grows monotonically up to the PE
    // region boundary.
    double prev = -1.0;
    for (double s = 0.0; s <= 0.25 + 1e-9; s += 0.01) {
        const double ep = entanglingPower(canonicalize({s, s, 0.0}));
        EXPECT_GE(ep, prev - 1e-12);
        prev = ep;
    }
    EXPECT_NEAR(prev, 1.0 / 6.0, 1e-9);
}

TEST(TrajectoryProperties, DeviatedTrajectoryCrossesLater)
{
    // A ZZ deviation tilts the SWAP-3 entry face crossing to smaller
    // tx: the crossing time (in tx units) decreases as tz grows.
    auto crossing_tx = [](double tz_ratio) {
        for (double s = 0.0; s < 0.5; s += 0.0005) {
            if (canSynthesizeSwapIn3Layers(
                    canonicalize({s, s, tz_ratio * s})))
                return s;
        }
        return 0.5;
    };
    const double flat = crossing_tx(0.0);
    const double tilted = crossing_tx(0.2);
    EXPECT_NEAR(flat, 0.25, 0.002);
    EXPECT_LT(tilted, flat);
}

} // namespace
} // namespace qbasis
