/**
 * @file
 * Tests for the coherence-limited fidelity models.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "noise/coherence.hpp"

namespace qbasis {
namespace {

TEST(Coherence, IdleSurvivalBasics)
{
    EXPECT_DOUBLE_EQ(idleSurvival(0.0, 80000.0), 1.0);
    EXPECT_NEAR(idleSurvival(80000.0, 80000.0), std::exp(-1.0), 1e-12);
    EXPECT_GT(idleSurvival(10.0, 80000.0), 0.999);
}

TEST(Coherence, GateErrorZeroAtZeroDuration)
{
    EXPECT_NEAR(coherenceLimitError(1, 0.0, 80000.0), 0.0, 1e-15);
    EXPECT_NEAR(coherenceLimitError(2, 0.0, 80000.0), 0.0, 1e-15);
}

TEST(Coherence, TwoQubitErrorLinearSmallT)
{
    // err ~ 1.2 t/T for T1 = T2 = T at small t.
    const double T = 80000.0;
    for (double t : {10.0, 50.0, 100.0, 300.0}) {
        const double err = coherenceLimitError(2, t, T);
        EXPECT_NEAR(err, 1.2 * t / T, 0.02 * 1.2 * t / T) << t;
    }
}

TEST(Coherence, PaperTableOneScale)
{
    // Paper Table I: a 10.15 ns basis gate has ~99.98x% fidelity and
    // a 329.1 ns synthesized SWAP ~99.5x% at T = 80 us. Check we're
    // in the same bands.
    const double T = 80e3;
    EXPECT_NEAR(1.0 - coherenceLimitError(2, 10.15, T), 0.99985,
                2e-4);
    EXPECT_NEAR(1.0 - coherenceLimitError(2, 329.1, T), 0.9951, 8e-4);
}

TEST(Coherence, OneQubitLessThanTwoQubit)
{
    const double T = 80000.0;
    EXPECT_LT(coherenceLimitError(1, 100.0, T),
              coherenceLimitError(2, 100.0, T));
}

TEST(Coherence, DistinctT1T2)
{
    // Pure dephasing limit (T1 -> inf) still decoheres.
    const double err =
        coherenceLimitError(1, 100.0, 1e12, 50000.0);
    EXPECT_GT(err, 0.0);
    // And slower than with amplitude damping too.
    EXPECT_LT(err, coherenceLimitError(1, 100.0, 50000.0, 50000.0));
}

TEST(Coherence, RejectsBadQubitCount)
{
    EXPECT_THROW(coherenceLimitError(3, 1.0, 1.0, 1.0),
                 std::runtime_error);
}

TEST(Coherence, CircuitFidelityMatchesPaperModel)
{
    // Two qubits busy [0, 100) and [50, 200); one untouched.
    Circuit c(3);
    c.unitary1q(0, Mat2::identity());
    c.unitary1q(1, Mat2::identity());
    Schedule s;
    s.first_busy = {0.0, 50.0, -1.0};
    s.last_busy = {100.0, 200.0, -1.0};
    const double T = 80000.0;
    const double f = circuitCoherenceFidelity(s, T);
    EXPECT_NEAR(f, std::exp(-100.0 / T) * std::exp(-150.0 / T),
                1e-12);
}

TEST(Coherence, FidelityDecreasesWithSpan)
{
    Schedule a;
    a.first_busy = {0.0};
    a.last_busy = {100.0};
    Schedule b;
    b.first_busy = {0.0};
    b.last_busy = {1000.0};
    EXPECT_GT(circuitCoherenceFidelity(a, 80000.0),
              circuitCoherenceFidelity(b, 80000.0));
}

} // namespace
} // namespace qbasis
